module packetgame

go 1.22
