package packetgame

import (
	"bytes"
	"net"
	"testing"

	"packetgame/internal/stream"
)

// TestPublicAPIQuickstart walks the public API exactly like a downstream
// user would: build a fleet, train a predictor, gate a simulation, and
// compare against a baseline.
func TestPublicAPIQuickstart(t *testing.T) {
	const m, window = 10, 5

	// 1. A small camera fleet.
	streams := make([]*Stream, m)
	for i := range streams {
		streams[i] = NewStream(
			SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			EncoderConfig{StreamID: i, GOPSize: 25},
			int64(i)*17,
		)
	}

	// 2. Offline training data for the PC task.
	trainStreams := make([]*Stream, m)
	for i := range trainStreams {
		trainStreams[i] = NewStream(
			SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			EncoderConfig{StreamID: i, GOPSize: 25, GOPPhase: i * 7},
			1000+int64(i)*17,
		)
	}
	samples, err := CollectSamples(trainStreams, []Task{PersonCounting{}}, window, 800)
	if err != nil {
		t.Fatal(err)
	}
	balanced := BalanceSamples(samples, 0, 1)
	if len(balanced) == 0 {
		t.Fatal("no balanced samples")
	}

	// 3. Train the contextual predictor.
	p, err := NewPredictor(DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(balanced, TrainOptions{Epochs: 8, BatchSize: 256}); err != nil {
		t.Fatal(err)
	}

	// 4. Save and reload the binary runtime file.
	var weights bytes.Buffer
	if err := p.Save(&weights); err != nil {
		t.Fatal(err)
	}
	deployed, err := NewPredictor(DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := deployed.Load(&weights); err != nil {
		t.Fatal(err)
	}

	// 5. Gate the fleet online.
	gate, err := NewGate(GateConfig{
		Streams: m, Window: window, Budget: 4,
		Predictor: deployed, UseTemporal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulation(streams, PersonCounting{}, DefaultCosts)
	sim.SetDecider(gate)
	res, err := sim.Run(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy <= 0.5 {
		t.Errorf("gated accuracy = %.3f", res.Accuracy)
	}
	if res.FilterRate <= 0.3 {
		t.Errorf("filter rate = %.3f, expected heavy gating at budget 4/%d", res.FilterRate, m)
	}

	// 6. Compare against the round-robin baseline at the same budget.
	rrStreams := make([]*Stream, m)
	for i := range rrStreams {
		rrStreams[i] = NewStream(
			SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			EncoderConfig{StreamID: i, GOPSize: 25},
			int64(i)*17,
		)
	}
	rrSim := NewSimulation(rrStreams, PersonCounting{}, DefaultCosts)
	rrSim.SetDecider(NewBaselineGate(m, DefaultCosts, &RoundRobin{}, nil, 4))
	rrRes, err := rrSim.Run(600, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("PacketGame %.3f vs round-robin %.3f accuracy at budget 4", res.Accuracy, rrRes.Accuracy)
}

func TestPublicAPIParserRoundTrip(t *testing.T) {
	st := NewStream(SceneConfig{}, EncoderConfig{GOPSize: 5}, 3)
	var buf bytes.Buffer
	// The codec-internal bitstream writer is not re-exported; containers
	// are the public serialization. Exercise PGV round-trip instead.
	w, err := NewPGVWriter(&buf, PGVHeader{StreamID: 1, Codec: H264, FPS: 25, GOPSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.WritePacket(st.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewPGVReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().Codec != H264 {
		t.Errorf("header codec = %v", r.Header().Codec)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != PictureI || p.StreamID != 1 {
		t.Errorf("first packet = %v", p)
	}
}

func TestPublicAPITaskByName(t *testing.T) {
	for _, name := range []string{"PC", "AD", "SR", "FD"} {
		task, err := TaskByName(name)
		if err != nil || task.Name() != name {
			t.Errorf("TaskByName(%q) = %v, %v", name, task, err)
		}
	}
}

func TestPublicAPIDatasets(t *testing.T) {
	if got := len(Campus1K(Campus1KConfig{Cameras: 7, Seed: 1})); got != 7 {
		t.Errorf("campus = %d", got)
	}
	if got := len(YTUGC(YTUGCConfig{Videos: 5, Seed: 1})); got != 5 {
		t.Errorf("ugc = %d", got)
	}
	if got := len(FireNet(FireNetConfig{Videos: 4, Seed: 1})); got != 4 {
		t.Errorf("fire = %d", got)
	}
}

func TestPublicAPICurve(t *testing.T) {
	points, err := TradeoffCurve([]float64{0.1, 0.9}, []bool{false, true})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := FilterRateAt(points, 0.99); !ok || r != 0.5 {
		t.Errorf("FilterRateAt = %v, %v", r, ok)
	}
}

func TestPublicAPIDecoderAndParser(t *testing.T) {
	st := NewStream(SceneConfig{}, EncoderConfig{GOPSize: 4}, 7)
	p := st.Next()
	d := NewDecoder(DefaultCosts)
	f, err := d.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 0 {
		t.Errorf("frame seq = %d", f.Seq)
	}
	// Parser facade over an empty chunk stream.
	pr := NewParser(ParserOptions{})
	if n, err := pr.Feed(nil); err != nil || n != 0 {
		t.Errorf("Feed(nil) = %d, %v", n, err)
	}
	if pkts, err := ParseAll(nil, ParserOptions{}); err != nil || len(pkts) != 0 {
		t.Errorf("ParseAll(nil) = %v, %v", pkts, err)
	}
}

func TestPublicAPITrainerAndOnlineGate(t *testing.T) {
	p, err := NewPredictor(DefaultPredictorConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(p, 0.01)
	s := Sample{
		F:      Features{ISizes: make([]float64, 5), PSizes: make([]float64, 5)},
		Labels: []float64{1},
	}
	if _, err := tr.Step([]Sample{s}); err != nil {
		t.Fatal(err)
	}
	// Online gate through the facade.
	gate, err := NewGate(GateConfig{
		Streams: 2, Budget: 3, Predictor: p, UseTemporal: true, OnlineLR: 0.001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gate.Stats().Rounds != 0 {
		t.Error("fresh gate has rounds")
	}
}

func TestPublicAPIEngineOverLocalSource(t *testing.T) {
	streams := []*Stream{
		NewStream(SceneConfig{BaseActivity: 0.5}, EncoderConfig{StreamID: 0, GOPSize: 5}, 1),
		NewStream(SceneConfig{BaseActivity: 0.5}, EncoderConfig{StreamID: 1, GOPSize: 5}, 2),
	}
	gate, err := NewGate(GateConfig{Streams: 2, Budget: 4, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(EngineConfig{
		Source: NewLocalSource(streams, 30),
		Gate:   gate,
		Task:   AnomalyDetection{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 30 || rep.Decoded == 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPublicAPINetStreaming(t *testing.T) {
	// The facade's DialStream against an in-process server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := stream.Serve(ln, stream.ServerConfig{
		NewStreams: func() []*Stream {
			return []*Stream{NewStream(SceneConfig{}, EncoderConfig{GOPSize: 5}, 3)}
		},
		Rounds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialStream(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	src := NewNetSource(c)
	n := 0
	for {
		if _, err := src.NextRound(); err != nil {
			break
		}
		n++
	}
	if n != 5 {
		t.Errorf("rounds over the wire = %d, want 5", n)
	}
}
