// Command pggate runs the gated video-inference pipeline: it ingests a
// camera fleet (local synthetic fleet or a PGSP server), gates packets
// before decoding under a budget, decodes the survivors, runs the inference
// task, and reports the end-to-end efficiency.
//
// Usage:
//
//	pggate -streams 32 -budget 8 -task PC -rounds 2000
//	pggate -connect 127.0.0.1:9560 -budget 8 -task AD -weights ad.pgw
//	pggate -streams 32 -budget 8 -policy roundrobin    # baseline
//	pggate -slo 50ms -priorities fd:0,ad:1,pc:2,sr:3   # governed mixed fleet
//	pggate -join 127.0.0.1:9570 -name w0               # cluster data-plane worker
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"packetgame/internal/capture"
	"packetgame/internal/cluster"
	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/fault"
	"packetgame/internal/infer"
	"packetgame/internal/knapsack"
	"packetgame/internal/metrics"
	"packetgame/internal/overload"
	"packetgame/internal/pipeline"
	"packetgame/internal/predictor"
	"packetgame/internal/stream"
)

func main() {
	var (
		connect   = flag.String("connect", "", "PGSP server address (empty = local synthetic fleet)")
		streams   = flag.Int("streams", 16, "local fleet size (ignored with -connect)")
		rounds    = flag.Int("rounds", 2000, "rounds to process (0 = until source ends)")
		budget    = flag.Float64("budget", 8, "decode budget per round (P-frame units)")
		taskName  = flag.String("task", "PC", "inference task: PC, AD, SR, FD")
		weights   = flag.String("weights", "", "predictor weight file from pgtrain (empty = temporal only)")
		window    = flag.Int("window", 5, "temporal window length")
		policy    = flag.String("policy", "packetgame", "packetgame, roundrobin, or random")
		workers   = flag.Int("workers", 4, "decode workers")
		seed      = flag.Int64("seed", 1, "random seed")
		pipelined = flag.Bool("pipelined", false, "overlap rounds through the staged engine")
		inflight  = flag.Int("inflight", 1, "feedback lag k: rounds in flight (pipelined) / ack deferral (sequential)")
		fresh     = flag.Bool("fresh", false, "apply feedback on round completion instead of the deterministic lag schedule (pipelined only)")
		shards    = flag.Int("shards", 0, "gate state shards (0 = default)")
		burn      = flag.Int64("burn", 0, "CPU nanoseconds burned per decode-cost unit (software decoder model)")
		latency   = flag.Int64("latency", 0, "wall-clock nanoseconds per decode-cost unit (offloaded decoder model)")
		faults    = flag.String("faults", "", "fault profile: none, light, chaos, heavy, or key=value list (arms circuit breakers)")
		slo       = flag.Duration("slo", 0, "per-round latency SLO arming the overload governor (0 = ungoverned; packetgame policy only)")
		deadline  = flag.Duration("deadline", 0, "round decode deadline: rounds still pending settle with Deferred feedback (pipelined only, 0 = off)")
		prioSpec  = flag.String("priorities", "", "admission tiers as task:tier pairs, e.g. fd:0,ad:1,pc:2,sr:3 — stream i runs (and is tiered by) entry i mod n; packetgame policy only")
		record    = flag.String("record", "", "record the session (packets + decision trace) to this .pgc capture file")
		recStep   = flag.Duration("record-step", 0, "virtual per-round timestamp step for -record (0 = wall-clock arrival offsets)")
		join      = flag.String("join", "", "pgcoord address: run as a cluster data-plane worker (most other flags come from the coordinator)")
		name      = flag.String("name", "", "worker name reported to the coordinator (with -join)")
		orphan    = flag.Int64("orphan", 0, "orphan mode: when the coordinator dies, gate this many rounds locally (temporal-only, last granted budget) instead of re-homing, then reconcile with the elected standby; -streams/-seed must match the coordinator's fleet")
	)
	flag.Parse()

	// Cluster worker mode: the coordinator owns the fleet source, budget,
	// policy, and round loop; this process runs the data-plane gate over its
	// hash arc until the coordinator says goodbye.
	if *join != "" {
		wname := *name
		if wname == "" {
			wname = fmt.Sprintf("pggate-%d", os.Getpid())
		}
		wopts := cluster.WorkerOptions{Name: wname, DecodeWorkers: *workers}
		if *orphan > 0 {
			// Orphan mode keeps gating locally across a coordinator death, so
			// it needs its own identically-seeded copy of the fleet (the same
			// construction pgcoord uses) to read packet metadata from.
			fleet := make([]*codec.Stream, *streams)
			for i := range fleet {
				fleet[i] = codec.NewStream(
					codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3, AnomalyRate: 30,
						FireRate: 30, QualityDropRate: 30},
					codec.EncoderConfig{StreamID: i, GOPSize: 25},
					*seed+int64(i)*7919)
			}
			wopts.Orphan = &cluster.OrphanOptions{
				Source: pipeline.NewLocalSource(fleet, 0),
				Rounds: *orphan,
			}
		}
		w, err := cluster.Dial(*join, wopts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pggate: joined cluster at %s as worker %d (%s)\n", *join, w.ID(), wname)
		if err := w.Wait(); err != nil {
			fatal(err)
		}
		st := w.Gate().Stats()
		fmt.Printf("pggate: session over: %d rounds, %d decoded on this worker\n", st.Rounds, st.Decoded)
		if or := w.Orphan(); or.Entered {
			fmt.Printf("pggate: orphan mode: %d local rounds, %d decoded, reconciled %v\n",
				or.Rounds, or.Decoded, or.Reconciled)
		}
		return
	}

	task, err := infer.ByName(*taskName)
	if err != nil {
		fatal(err)
	}

	// Overload controls. -priorities stripes a mixed-task fleet across
	// admission tiers; -slo arms the AIMD budget governor and degradation
	// ladder. Both act through the tiered gate, so they require the
	// packetgame policy.
	if (*slo != 0 || *prioSpec != "") && *policy != "packetgame" {
		fatal(fmt.Errorf("-slo and -priorities require -policy packetgame (the baselines have no admission control)"))
	}
	var prioTasks []infer.Task
	var prioTiers []uint8
	if *prioSpec != "" {
		prioTasks, prioTiers, err = parsePriorities(*prioSpec)
		if err != nil {
			fatal(err)
		}
	}
	var gov *overload.Governor
	var ostats *metrics.OverloadStats
	if *slo != 0 {
		ostats = &metrics.OverloadStats{}
		gov, err = overload.NewGovernor(overload.Config{SLO: *slo, Budget: *budget, Stats: ostats})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pggate: governor armed: SLO %v on nominal budget %.1f\n", *slo, *budget)
	}

	// Faults. A named (or custom) profile injects deterministic faults at the
	// packet source, the decoder, and — with -connect — the transport, and
	// arms the gate's per-stream circuit breakers.
	var inj *fault.Injector
	if *faults != "" {
		prof, err := fault.ParseProfile(*faults, *seed)
		if err != nil {
			fatal(err)
		}
		inj = fault.NewInjector(prof)
		fmt.Printf("pggate: fault profile %q armed (seed %d)\n", prof.Name, *seed)
	}

	// Source.
	var src pipeline.RoundSource
	var faultFleet []*fault.Stream
	var resilient *stream.Resilient
	var recStreams []capture.StreamMeta
	m := *streams
	if *connect != "" {
		// The reconnecting client heals resets and framing desyncs; with
		// -faults its transport also carries the injected wire faults.
		rcfg := stream.ResilientConfig{Addr: *connect, Seed: *seed}
		if inj != nil {
			rcfg.WrapConn = inj.WrapConn
		}
		resilient, err = stream.NewResilient(rcfg)
		if err != nil {
			fatal(err)
		}
		defer resilient.Close()
		m = len(resilient.Streams())
		src = pipeline.NewNetSource(resilient)
		for _, si := range resilient.Streams() {
			recStreams = append(recStreams, capture.StreamMeta{
				Codec: si.Codec.String(), FPS: si.FPS, GOPSize: si.GOPSize,
			})
		}
		fmt.Printf("pggate: connected to %s (%d streams)\n", *connect, m)
	} else {
		fleet := make([]*codec.Stream, m)
		for i := range fleet {
			fleet[i] = codec.NewStream(
				codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3, AnomalyRate: 30,
					FireRate: 30, QualityDropRate: 30},
				codec.EncoderConfig{StreamID: i, GOPSize: 25},
				*seed+int64(i)*7919)
		}
		for _, st := range fleet {
			ec := st.Encoder.Config()
			recStreams = append(recStreams, capture.StreamMeta{
				Codec: ec.Codec.String(), FPS: ec.FPS, GOPSize: ec.GOPSize,
			})
		}
		if inj != nil {
			faultFleet = inj.WrapFleet(fleet)
			cams := make([]pipeline.Camera, m)
			for i, w := range faultFleet {
				cams[i] = w
			}
			src = pipeline.NewCameraSource(cams, *rounds)
		} else {
			src = pipeline.NewLocalSource(fleet, *rounds)
		}
	}

	// Recording. The capture gets every ingested packet via a source tap;
	// with the packetgame policy the gate's decision trace lands in the same
	// file. The decision trace is audit-grade (replayable bit-identically by
	// `pgcap audit`) only when the run is sequential with immediate feedback
	// and no learned predictor or fault injection — otherwise the gate
	// metadata is omitted so audits fail loudly instead of lying.
	var capw *capture.Writer
	var capFile *os.File
	openCapture := func(gm *capture.GateMeta) {
		f, err := os.Create(*record)
		if err != nil {
			fatal(err)
		}
		capFile = f
		capw, err = capture.NewWriter(f, capture.SessionMeta{
			Label:          fmt.Sprintf("pggate %s %s", *taskName, *policy),
			StartUnixNanos: time.Now().UnixNano(),
			Streams:        recStreams,
			Gate:           gm,
		})
		if err != nil {
			fatal(err)
		}
	}
	auditGrade := *weights == "" && !*pipelined && *inflight <= 1 && inj == nil

	// Policy.
	var gate core.Decider
	var coreGate *core.Gate
	switch *policy {
	case "roundrobin":
		gate = core.NewBaselineGate(m, decode.DefaultCosts, &knapsack.RoundRobin{}, nil, *budget)
	case "random":
		gate = core.NewBaselineGate(m, decode.DefaultCosts, knapsack.NewRandom(*seed), nil, *budget)
	case "packetgame":
		cfg := core.Config{Streams: m, Window: *window, Budget: *budget, UseTemporal: true, Shards: *shards}
		if inj != nil {
			cfg.Breaker = &core.BreakerConfig{}
		}
		if len(prioTiers) != 0 {
			pr := make([]uint8, m)
			for i := range pr {
				pr[i] = prioTiers[i%len(prioTiers)]
			}
			cfg.Priorities = pr
		}
		cfg.Governor = gov
		cfg.Overload = ostats
		if *weights != "" {
			pcfg := predictor.DefaultConfig()
			pcfg.Window = *window
			p, err := predictor.New(pcfg)
			if err != nil {
				fatal(err)
			}
			f, err := os.Open(*weights)
			if err != nil {
				fatal(err)
			}
			if err := p.Load(f); err != nil {
				f.Close()
				fatal(err)
			}
			f.Close()
			cfg.Predictor = p
			fmt.Printf("pggate: loaded predictor from %s\n", *weights)
		}
		if *record != "" {
			var gm *capture.GateMeta
			if auditGrade {
				probe, err := core.NewGate(cfg)
				if err != nil {
					fatal(err)
				}
				pc := probe.Config()
				gm = &capture.GateMeta{
					Window: pc.Window, Budget: pc.Budget, UseTemporal: pc.UseTemporal,
					Explore: *pc.Explore, DependencyAware: *pc.DependencyAware,
					Priorities: pc.Priorities, Governed: gov != nil,
				}
			} else {
				fmt.Println("pggate: recording packets only (decision trace not audit-grade with a predictor, pipelining, feedback lag, or faults)")
			}
			openCapture(gm)
			cfg.Trace = capw
		}
		g, err := core.NewGate(cfg)
		if err != nil {
			fatal(err)
		}
		gate = g
		coreGate = g
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	var tap *capture.Tap
	if *record != "" {
		if capw == nil {
			openCapture(nil) // baseline policies: packets only
		}
		tap = capture.NewTap(src, capw, *recStep, nil)
		src = tap
	}

	stages := &metrics.StageSet{}
	pcfg := pipeline.Config{
		Source: src, Gate: gate, Task: task, Tasks: prioTasks, Workers: *workers,
		Pipelined: *pipelined, MaxInFlight: *inflight, FreshFeedback: *fresh,
		BurnNanosPerUnit: *burn, LatencyNanosPerUnit: *latency,
		Stages: stages, Deadline: *deadline, Governor: gov, Overload: ostats,
	}
	if inj != nil {
		pcfg.Retry = decode.RetryPolicy{MaxRetries: 2, Backoff: time.Millisecond}
		pcfg.WrapDecoder = func(d decode.PacketDecoder) decode.PacketDecoder {
			return inj.WrapDecoder(d)
		}
	}
	eng, err := pipeline.New(pcfg)
	if err != nil {
		fatal(err)
	}
	rep, err := eng.Run(*rounds)
	if err != nil {
		fatal(err)
	}
	if capw != nil {
		if err := capw.Close(); err != nil {
			fatal(err)
		}
		if err := capFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("pggate: recorded %d rounds to %s\n", tap.Rounds(), *record)
	}

	fmt.Printf("\npggate report (%s, policy %s, budget %.1f)\n", task.Name(), *policy, *budget)
	fmt.Printf("  rounds            %d\n", rep.Rounds)
	fmt.Printf("  packets           %d\n", rep.Packets)
	fmt.Printf("  decoded           %d (gate filter rate %.1f%%)\n", rep.Decoded, rep.GateFilterRate*100)
	fmt.Printf("  inferred          %d (necessary: %d)\n", rep.Inferred, rep.NecessaryDecoded)
	if rep.Accuracy >= 0 {
		fmt.Printf("  accuracy          %.3f\n", rep.Accuracy)
	} else {
		fmt.Printf("  accuracy          n/a (no ground truth over the network)\n")
	}
	fmt.Printf("  wall time         %v (%.0f decoded FPS)\n", rep.Elapsed.Round(1e6), rep.DecodedFPS)
	mode := "sequential"
	if *pipelined {
		mode = "pipelined"
	}
	k := *inflight
	if k < 1 {
		k = 1 // the engine normalizes MaxInFlight 0 to 1
	}
	fmt.Printf("  engine            %s (in-flight %d)\n", mode, k)
	for _, st := range []struct {
		name string
		s    metrics.StageSnapshot
	}{
		{"gate", stages.Gate.Snapshot()},
		{"decode", stages.Decode.Snapshot()},
		{"infer", stages.Infer.Snapshot()},
	} {
		fmt.Printf("  stage %-8s    %d rounds, mean %.2fms, max depth %d\n",
			st.name, st.s.Done, st.s.MeanNanos()/1e6, st.s.MaxDepth)
	}
	if gov != nil {
		gs := gov.Snapshot()
		ov := rep.Overload
		fmt.Printf("  governor          SLO %v: %d/%d rounds missed, B_eff %.1f/%.1f, mode %s (ewma %v)\n",
			gov.Config().SLO, gs.SLOMisses, gs.Rounds, gs.BEff, *budget, gs.Mode, gs.EWMA.Round(time.Microsecond))
		fmt.Printf("  AIMD/ladder       %d cuts, %d raises; %d steps down, %d up (rounds full/temporal/keyframe/shed %d/%d/%d/%d)\n",
			gs.Cuts, gs.Raises, gs.StepDowns, gs.StepUps,
			gs.ModeRounds[0], gs.ModeRounds[1], gs.ModeRounds[2], gs.ModeRounds[3])
		fmt.Printf("  admission         %d packets shed, %d slots deferred, %d deadline-aborted\n",
			ov.Shed, ov.Deferred, ov.Aborted)
	}
	if inj != nil {
		fmt.Printf("  decode failures   %d (after retries)\n", rep.DecodeFailed)
		if faultFleet != nil {
			var injected int64
			for _, w := range faultFleet {
				st := w.Stats()
				injected += st.Corrupted + st.Truncated + st.Lost + st.Stalled
			}
			fmt.Printf("  injected faults   %d packet-level\n", injected)
		}
		if coreGate != nil {
			open, quarRounds := 0, int64(0)
			for _, snap := range coreGate.Breakers() {
				if snap.Opens > 0 {
					open++
				}
				quarRounds += snap.QuarantinedRounds
			}
			fmt.Printf("  breakers tripped  %d streams (%d quarantined rounds)\n", open, quarRounds)
		}
	}
	if resilient != nil && (resilient.Reconnects() > 0 || resilient.CorruptDropped() > 0) {
		fmt.Printf("  transport         %d reconnects, %d CRC-dropped frames\n",
			resilient.Reconnects(), resilient.CorruptDropped())
	}
}

// parsePriorities parses a "task:tier,task:tier" admission spec into the
// striped class lists: stream i runs tasks[i mod n] at tier tiers[i mod n].
func parsePriorities(spec string) ([]infer.Task, []uint8, error) {
	var tasks []infer.Task
	var tiers []uint8
	for _, part := range strings.Split(spec, ",") {
		name, tier, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, nil, fmt.Errorf("priorities: %q is not task:tier", part)
		}
		task, err := infer.ByName(strings.ToUpper(strings.TrimSpace(name)))
		if err != nil {
			return nil, nil, fmt.Errorf("priorities: %w", err)
		}
		t, err := strconv.ParseUint(strings.TrimSpace(tier), 10, 8)
		if err != nil {
			return nil, nil, fmt.Errorf("priorities: tier %q: %w", tier, err)
		}
		tasks = append(tasks, task)
		tiers = append(tiers, uint8(t))
	}
	return tasks, tiers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pggate:", err)
	os.Exit(1)
}
