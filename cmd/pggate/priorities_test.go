package main

import "testing"

func TestParsePriorities(t *testing.T) {
	tasks, tiers, err := parsePriorities("fd:0,ad:1,pc:2,sr:3")
	if err != nil {
		t.Fatal(err)
	}
	wantTasks := []string{"FD", "AD", "PC", "SR"}
	wantTiers := []uint8{0, 1, 2, 3}
	if len(tasks) != len(wantTasks) {
		t.Fatalf("parsed %d classes, want %d", len(tasks), len(wantTasks))
	}
	for i := range tasks {
		if tasks[i].Name() != wantTasks[i] {
			t.Errorf("class %d task = %s, want %s", i, tasks[i].Name(), wantTasks[i])
		}
		if tiers[i] != wantTiers[i] {
			t.Errorf("class %d tier = %d, want %d", i, tiers[i], wantTiers[i])
		}
	}

	if _, _, err := parsePriorities("fd=0"); err == nil {
		t.Error("missing colon must error")
	}
	if _, _, err := parsePriorities("xx:0"); err == nil {
		t.Error("unknown task must error")
	}
	if _, _, err := parsePriorities("fd:banana"); err == nil {
		t.Error("non-numeric tier must error")
	}
	if _, _, err := parsePriorities("fd:300"); err == nil {
		t.Error("tier beyond uint8 must error")
	}
}
