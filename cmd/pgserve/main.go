// Command pgserve serves a synthetic camera fleet over PGSP/TCP, standing
// in for an RTSP camera farm. Pair it with pggate.
//
// Usage:
//
//	pgserve -addr :9560 -streams 32 -realtime
//	pgserve -addr :9560 -streams 8 -rounds 1000 -codec h265
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"time"

	"packetgame/internal/capture"
	"packetgame/internal/codec"
	"packetgame/internal/stream"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9560", "listen address")
		streams  = flag.Int("streams", 16, "number of muxed camera streams")
		rounds   = flag.Int("rounds", 0, "rounds per connection (0 = until disconnect)")
		realtime = flag.Bool("realtime", false, "pace rounds at -fps")
		fps      = flag.Int("fps", 25, "frame rate")
		gop      = flag.Int("gop", 25, "GOP size")
		codecStr = flag.String("codec", "h264", "codec: h264, h265, vp9, jpeg2000")
		seed     = flag.Int64("seed", 1, "random seed")
		sparse   = flag.Bool("sparse", false, "send each round as one sparse frame holding only the active streams (requires sparse-aware clients)")
		drain    = flag.Duration("drain", 5*time.Second, "shutdown grace period before force-closing connections")
		record   = flag.String("record", "", "record the first served session to this .pgc capture file (virtual 1/fps timestamps)")
	)
	flag.Parse()

	c, err := codec.ParseCodec(*codecStr)
	if err != nil {
		fatal(err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}

	// Recording taps the first accepted session server-side: packets only
	// (the gate and its decision trace live on the pggate side).
	var capw *capture.Writer
	var capFile *os.File
	if *record != "" {
		capFile, err = os.Create(*record)
		if err != nil {
			fatal(err)
		}
		metas := make([]capture.StreamMeta, *streams)
		for i := range metas {
			metas[i] = capture.StreamMeta{Codec: c.String(), FPS: *fps, GOPSize: *gop}
		}
		capw, err = capture.NewWriter(capFile, capture.SessionMeta{
			Label:          fmt.Sprintf("pgserve %s x%d", c, *streams),
			StartUnixNanos: time.Now().UnixNano(),
			Streams:        metas,
		})
		if err != nil {
			fatal(err)
		}
	}

	scfg := stream.ServerConfig{
		Rounds:       *rounds,
		Realtime:     *realtime,
		FPS:          *fps,
		SparseRounds: *sparse,
		NewStreams: func() []*codec.Stream {
			fleet := make([]*codec.Stream, *streams)
			for i := range fleet {
				fleet[i] = codec.NewStream(
					codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3, AnomalyRate: 30, FPS: *fps},
					codec.EncoderConfig{StreamID: i, Codec: c, GOPSize: *gop, FPS: *fps},
					*seed+int64(i)*7919)
			}
			return fleet
		},
	}
	if capw != nil {
		// Virtual timestamps at the nominal frame interval keep server-side
		// captures deterministic whether or not -realtime paces the send.
		step := time.Second / time.Duration(*fps)
		scfg.Record = func(round int64, streamID int, p *codec.Packet) {
			_ = capw.WritePacket(time.Duration(round)*step, round, p)
		}
	}
	srv, err := stream.Serve(ln, scfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pgserve: serving %d %s streams on %s (realtime=%v)\n",
		*streams, c, srv.Addr(), *realtime)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	// Graceful stop: quit accepting, let every active connection finish its
	// current round and send the goodbye marker, then force-close stragglers.
	// A second SIGINT aborts immediately.
	fmt.Println("pgserve: draining connections (interrupt again to abort)")
	done := make(chan struct{})
	go func() {
		srv.Shutdown(*drain)
		close(done)
	}()
	select {
	case <-done:
		if capw != nil {
			if err := capw.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pgserve: finalizing capture:", err)
			} else if err := capFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "pgserve: closing capture:", err)
			} else {
				fmt.Printf("pgserve: capture written to %s\n", *record)
			}
		}
		fmt.Println("pgserve: shut down cleanly")
	case <-sig:
		fmt.Println("pgserve: aborted")
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgserve:", err)
	os.Exit(1)
}
