// Command pgcap captures, inspects, transforms, and replays PGSP sessions
// as PGC capture files.
//
// Usage:
//
//	pgcap record -connect 127.0.0.1:9560 -out farm.pgc -rounds 500
//	pgcap map farm.pgc                     # per-stream rates, GOPs, sizes
//	pgcap filter -in farm.pgc -out cut.pgc -from 2s -to 10s -streams 0,3,5
//	pgcap replay -listen 127.0.0.1:9571 -speedup 2 captures/
//	pgcap audit testdata/captures/corpus-burst.pgc
//	pgcap corpus -out testdata/captures    # regenerate the committed corpus
//
// replay serves every capture in the given files/directories as one muxed
// PGSP session, each capture replayed concurrently with its recorded
// inter-round timing (scaled by -speedup, or flattened to the average rate
// with -flat — the control that shows why timestamp-preserving replay
// matters). audit re-runs a capture's packets through a gate rebuilt from
// its recorded configuration and fails loudly if any round's selected set
// diverges from the recorded decision trace.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"packetgame/internal/capture"
	"packetgame/internal/pipeline"
	"packetgame/internal/stream"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	verb, args := os.Args[1], os.Args[2:]
	var err error
	switch verb {
	case "record":
		err = cmdRecord(args)
	case "map":
		err = cmdMap(args)
	case "filter":
		err = cmdFilter(args)
	case "replay":
		err = cmdReplay(args)
	case "audit":
		err = cmdAudit(args)
	case "corpus":
		err = cmdCorpus(args)
	case "-h", "-help", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pgcap: unknown verb %q\n\n", verb)
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgcap:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pgcap <verb> [flags]

verbs:
  record   dial a PGSP server and record the session to a capture file
  map      print per-stream metadata of capture files (rates, GOPs, sizes)
  filter   cut a capture by time window and/or stream subset
  replay   serve captures as live PGSP sessions with recorded timing
  audit    re-run recorded packets through the gate, diff decisions
  corpus   regenerate the committed deterministic corpus

run 'pgcap <verb> -h' for verb flags`)
	os.Exit(2)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("pgcap record", flag.ExitOnError)
	connect := fs.String("connect", "127.0.0.1:9560", "PGSP server address")
	out := fs.String("out", "capture.pgc", "output capture file")
	rounds := fs.Int64("rounds", 0, "rounds to record (0 = until the server says goodbye)")
	step := fs.Duration("step", 0, "virtual per-round timestamp step (0 = wall-clock arrival offsets)")
	label := fs.String("label", "", "capture label (default: the server address)")
	strip := fs.Bool("strip", false, "drop payloads (metadata-only capture)")
	fs.Parse(args)

	r, err := stream.NewResilient(stream.ResilientConfig{Addr: *connect})
	if err != nil {
		return err
	}
	defer r.Close()
	metas := make([]capture.StreamMeta, 0, len(r.Streams()))
	for _, si := range r.Streams() {
		metas = append(metas, capture.StreamMeta{
			Codec: si.Codec.String(), FPS: si.FPS, GOPSize: si.GOPSize,
		})
	}
	lbl := *label
	if lbl == "" {
		lbl = "pgsp " + *connect
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	w, err := capture.NewWriter(f, capture.SessionMeta{
		Label:          lbl,
		StartUnixNanos: time.Now().UnixNano(),
		Streams:        metas,
	})
	if err != nil {
		f.Close()
		return err
	}
	w.StripPayloads = *strip
	src := pipeline.NewNetSource(r)
	n, err := capture.RecordRounds(src.NextRound, w, *rounds, *step, nil)
	if err != nil {
		f.Close()
		return err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("pgcap: recorded %d rounds (%d streams) to %s\n", n, len(metas), *out)
	return nil
}

func cmdMap(args []string) error {
	fs := flag.NewFlagSet("pgcap map", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the raw session header and index as JSON")
	fs.Parse(args)
	paths, err := capturePaths(fs.Args())
	if err != nil {
		return err
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		meta, idx, err := capture.ReadIndex(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if *asJSON {
			out, err := json.MarshalIndent(struct {
				File    string              `json:"file"`
				Session capture.SessionMeta `json:"session"`
				Index   capture.Index       `json:"index"`
			}{path, meta, idx}, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(out))
			continue
		}
		printMap(path, meta, idx)
	}
	return nil
}

func printMap(path string, meta capture.SessionMeta, idx capture.Index) {
	fmt.Printf("%s: %q, %d streams, %d rounds, %d packets, %v\n",
		path, meta.Label, len(meta.Streams), idx.Rounds, idx.Packets,
		idx.Duration().Round(time.Millisecond))
	if meta.Gate != nil {
		audit := "auditable"
		if idx.Decisions == 0 {
			audit = "no decisions"
		}
		fmt.Printf("  gate: budget %.1f window %d, %d decision rounds (%s)\n",
			meta.Gate.Budget, meta.Gate.Window, idx.Decisions, audit)
	} else {
		fmt.Printf("  gate: none recorded (packets only)\n")
	}
	for _, st := range idx.PerStream {
		sm := capture.StreamMeta{}
		if st.ID < len(meta.Streams) {
			sm = meta.Streams[st.ID]
		}
		fmt.Printf("  stream %2d: %-8s %6d pkts %8.2f pkt/s  gop %-3d key %-5d size %d..%d B\n",
			st.ID, sm.Codec, st.Packets, st.MeanRate, st.GOPSize, st.Keyframes,
			st.SizeMin, st.SizeMax)
	}
}

func cmdFilter(args []string) error {
	fs := flag.NewFlagSet("pgcap filter", flag.ExitOnError)
	in := fs.String("in", "", "input capture file")
	out := fs.String("out", "", "output capture file")
	from := fs.Duration("from", 0, "window start (capture time)")
	to := fs.Duration("to", 0, "window end, exclusive (0 = open-ended)")
	streams := fs.String("streams", "", "comma-separated stream IDs to keep (empty = all)")
	rebase := fs.Bool("rebase", false, "shift the kept window back to t=0, round 0")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("filter: -in and -out are required")
	}
	c, err := capture.LoadFile(*in)
	if err != nil {
		return err
	}
	if *from != 0 || *to != 0 {
		c = c.FilterWindow(capture.Window{From: *from, To: *to}, *rebase)
	} else if *rebase {
		c = c.FilterWindow(capture.Window{}, true)
	}
	if *streams != "" {
		var keep []int
		for _, part := range strings.Split(*streams, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("filter: stream id %q: %w", part, err)
			}
			keep = append(keep, id)
		}
		c, err = c.FilterStreams(keep)
		if err != nil {
			return err
		}
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := c.Save(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("pgcap: wrote %d rounds (%d streams) to %s\n", len(c.Rounds), len(c.Meta.Streams), *out)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("pgcap replay", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9570", "PGSP listen address")
	speedup := fs.Float64("speedup", 1, "time scale: 2 halves every recorded gap")
	from := fs.Duration("from", 0, "replay window start (capture time)")
	to := fs.Duration("to", 0, "replay window end, exclusive (0 = open-ended)")
	flat := fs.Bool("flat", false, "flatten to the average round rate (tcpreplay-style control)")
	fs.Parse(args)
	paths, err := capturePaths(fs.Args())
	if err != nil {
		return err
	}
	var captures []*capture.Capture
	for _, path := range paths {
		c, err := capture.LoadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		captures = append(captures, c)
		fmt.Printf("pgcap: loaded %s: %d streams, %d rounds, %v\n",
			path, len(c.Meta.Streams), len(c.Rounds), c.Duration().Round(time.Millisecond))
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv, err := capture.ServeReplay(ln, captures, capture.ReplayOptions{
		Speedup: *speedup,
		Window:  capture.Window{From: *from, To: *to},
		Flat:    *flat,
	})
	if err != nil {
		ln.Close()
		return err
	}
	mode := "recorded timing"
	if *flat {
		mode = "flat average rate"
	}
	fmt.Printf("pgcap: replaying %d captures (%d muxed streams) on %s at %gx, %s\n",
		len(captures), srv.Streams(), srv.Addr(), *speedup, mode)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("pgcap: stopping replay")
	return srv.Close()
}

func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("pgcap audit", flag.ExitOnError)
	verbose := fs.Bool("v", false, "print each divergent round")
	maxReport := fs.Int("max-report", 10, "cap on divergence detail lines")
	fs.Parse(args)
	paths, err := capturePaths(fs.Args())
	if err != nil {
		return err
	}
	failed := 0
	for _, path := range paths {
		c, err := capture.LoadFile(path)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		opts := capture.AuditOptions{MaxReport: *maxReport}
		if *verbose {
			opts.Verbose = os.Stdout
		}
		res, err := capture.Audit(c, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		if res.Ok() {
			fmt.Printf("%s: OK — %d rounds replayed bit-identically\n", path, res.Rounds)
			continue
		}
		failed++
		fmt.Printf("%s: DIVERGED — %d/%d rounds differ (first at round %d)\n",
			path, res.Divergent, res.Rounds, res.FirstDivergence)
	}
	if failed > 0 {
		return fmt.Errorf("%d capture(s) diverged from their recorded decision trace", failed)
	}
	return nil
}

func cmdCorpus(args []string) error {
	fs := flag.NewFlagSet("pgcap corpus", flag.ExitOnError)
	out := fs.String("out", filepath.Join("testdata", "captures"), "output directory")
	fs.Parse(args)
	paths, err := capture.WriteCorpusDir(*out)
	if err != nil {
		return err
	}
	for _, p := range paths {
		fmt.Println("pgcap: wrote", p)
	}
	return nil
}

// capturePaths expands file and directory arguments into the sorted list of
// capture files to operate on.
func capturePaths(args []string) ([]string, error) {
	if len(args) == 0 {
		return nil, fmt.Errorf("no capture files given")
	}
	var paths []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, arg)
			continue
		}
		matches, err := filepath.Glob(filepath.Join(arg, "*.pgc"))
		if err != nil {
			return nil, err
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("%s: no .pgc captures", arg)
		}
		paths = append(paths, matches...)
	}
	sort.Strings(paths)
	return paths, nil
}
