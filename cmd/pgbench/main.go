// Command pgbench regenerates the paper's tables and figures on the
// synthetic substrate.
//
// Usage:
//
//	pgbench -exp all                 # every experiment, paper order
//	pgbench -exp fig9,tab3           # a subset
//	pgbench -exp list                # list experiments
//	pgbench -scale 0.2 -seed 7       # quicker, differently seeded run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"packetgame/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "comma-separated experiment names, 'all', or 'list'")
		seed  = flag.Int64("seed", 1, "random seed")
		scale = flag.Float64("scale", 1.0, "workload scale in (0,1]; 1.0 = paper-scale")
	)
	flag.Parse()

	if *exp == "list" {
		for _, e := range experiments.Registry() {
			fmt.Printf("%-10s %s\n", e.Name, e.Title)
		}
		return
	}

	var selected []experiments.Experiment
	if *exp == "all" {
		selected = experiments.Registry()
	} else {
		for _, name := range strings.Split(*exp, ",") {
			e, ok := experiments.ByName(strings.TrimSpace(name))
			if !ok {
				fmt.Fprintf(os.Stderr, "pgbench: unknown experiment %q (try -exp list)\n", name)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := experiments.Options{Out: os.Stdout, Seed: *seed, Scale: *scale}
	for _, e := range selected {
		fmt.Printf("################ %s — %s ################\n", e.Name, e.Title)
		start := time.Now()
		if err := e.Run(opts); err != nil {
			fmt.Fprintf(os.Stderr, "pgbench: %s: %v\n", e.Name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
}
