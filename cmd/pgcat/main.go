// Command pgcat inspects PacketGame artifacts: PGV container files and
// JSONL gating traces.
//
// Usage:
//
//	pgcat -pgv clip.pgv            # per-packet listing + summary
//	pgcat -pgv clip.pgv -q         # summary only
//	pgcat -trace gate.jsonl        # gating trace summary
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"packetgame/internal/codec"
	"packetgame/internal/container"
	"packetgame/internal/stats"
	"packetgame/internal/trace"
)

func main() {
	var (
		pgvPath   = flag.String("pgv", "", "PGV container file to inspect")
		tracePath = flag.String("trace", "", "JSONL gating trace to summarize")
		quiet     = flag.Bool("q", false, "summary only (no per-packet listing)")
	)
	flag.Parse()

	switch {
	case *pgvPath != "":
		if err := catPGV(*pgvPath, *quiet); err != nil {
			fatal(err)
		}
	case *tracePath != "":
		if err := catTrace(*tracePath); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "pgcat: provide -pgv or -trace (see -h)")
		os.Exit(2)
	}
}

func catPGV(path string, quiet bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := container.NewReader(f)
	if err != nil {
		return err
	}
	hdr := r.Header()
	fmt.Printf("%s: stream %d, codec %s, %d FPS, GOP %d\n",
		path, hdr.StreamID, hdr.Codec, hdr.FPS, hdr.GOPSize)

	var sizes []float64
	counts := map[codec.PictureType]int{}
	var totalBytes int64
	n := 0
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if !quiet {
			fmt.Printf("%8d %6s %10dB pts=%dms gop=%d/%d\n",
				p.Seq, p.Type, p.Size, p.PTS, p.GOPIndex, p.GOPSize)
		}
		sizes = append(sizes, float64(p.Size))
		counts[p.Type]++
		totalBytes += int64(p.Size)
		n++
	}
	fmt.Printf("\n%d packets (%d I, %d P, %d B), %.2f MB on the wire\n",
		n, counts[codec.PictureI], counts[codec.PictureP], counts[codec.PictureB],
		float64(totalBytes)/1e6)
	if n > 0 {
		fmt.Printf("packet sizes: %s\n", stats.Summarize(sizes))
		duration := float64(n) / float64(hdr.FPS)
		fmt.Printf("duration %.1fs, mean bitrate %.0f kbit/s\n",
			duration, float64(totalBytes)*8/duration/1000)
	}
	return nil
}

func catTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	s, err := trace.Summarize(trace.NewReader(f))
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rounds, %d packets\n", path, s.Rounds, s.Packets)
	fmt.Printf("  selected            %d (filter rate %.1f%%)\n", s.Selected, s.FilterRate*100)
	fmt.Printf("  necessary           %d (precision %.1f%%)\n", s.Necessary, s.Precision*100)
	fmt.Printf("  budget utilization  %.1f%%\n", s.BudgetUtilization*100)
	if len(s.PerStreamSelected) > 0 {
		ids := make([]int, 0, len(s.PerStreamSelected))
		for id := range s.PerStreamSelected {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Println("  per-stream selections:")
		for _, id := range ids {
			fmt.Printf("    stream %4d: %d\n", id, s.PerStreamSelected[id])
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgcat:", err)
	os.Exit(1)
}
