// Command pgcoord runs the cluster control plane: it owns the fleet
// source, the global decode budget, the consistent-hash placement ring,
// and the per-round knapsack solve, and drives N pggate data-plane
// workers over the cluster protocol (heartbeats, leases, state-transfer,
// budget grants). Workers join with `pggate -join <addr>`; on crash or
// leave the coordinator rebalances only the affected hash arcs and
// migrates stream state to the new owners.
//
// Usage:
//
//	pgcoord -listen 127.0.0.1:9570 -workers 4 -streams 1000 -rounds 2000 &
//	pggate -join 127.0.0.1:9570 -name w0   # x4
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"packetgame/internal/cluster"
	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/pipeline"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9570", "address to accept worker joins on")
		streams   = flag.Int("streams", 64, "synthetic fleet size")
		rounds    = flag.Int("rounds", 2000, "rounds to run")
		budget    = flag.Float64("budget", 8, "global decode budget per round (P-frame units)")
		taskName  = flag.String("task", "PC", "inference task: PC, AD, SR, FD")
		window    = flag.Int("window", 5, "temporal window length")
		workers   = flag.Int("workers", 2, "worker quorum to wait for before round 0")
		seed      = flag.Int64("seed", 1, "random seed")
		slo       = flag.Duration("slo", 0, "per-round latency SLO arming the per-worker governors (0 = exact oracle mode)")
		lease     = flag.Duration("lease", 10*time.Second, "worker lease: silence longer than this reaps the worker")
		heartbeat = flag.Duration("heartbeat", 0, "worker heartbeat period (0 = lease/4)")
		pipelined = flag.Bool("pipelined", false, "overlap rounds: gather round r's reports while round r+1 runs (bit-identical to lockstep at equal -lag)")
		lag       = flag.Int("lag", 1, "feedback lag k: rounds granted but not yet observed when a round is planned")
		rtt       = flag.Duration("rtt", 0, "deterministic report-delivery delay model (lockstep serializes it into every round; -pipelined hides it)")
		verbose   = flag.Bool("v", false, "log membership changes")
	)
	flag.Parse()

	fleet := make([]*codec.Stream, *streams)
	for i := range fleet {
		fleet[i] = codec.NewStream(
			codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3, AnomalyRate: 30,
				FireRate: 30, QualityDropRate: 30},
			codec.EncoderConfig{StreamID: i, GOPSize: 25},
			*seed+int64(i)*7919)
	}

	cfg := cluster.CoordConfig{
		Listen:  *listen,
		Streams: *streams, Window: *window, Budget: *budget,
		UseTemporal: true,
		Breaker:     &core.BreakerConfig{},
		Task:        *taskName, Rounds: *rounds, MinWorkers: *workers,
		Source:    pipeline.NewLocalSource(fleet, *rounds),
		SLO:       *slo, Lease: *lease, Heartbeat: *heartbeat,
		Pipelined: *pipelined, MaxInFlight: *lag, ReportDelay: *rtt,
	}
	if *verbose {
		cfg.OnMembership = func(round int64, joined, died []int) {
			fmt.Printf("pgcoord: round %d membership: joined %v died %v\n", round, joined, died)
		}
	}
	c, err := cluster.NewCoordinator(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("pgcoord: listening on %s, waiting for %d workers (%d streams, budget %.1f)\n",
		c.Addr(), *workers, *streams, *budget)
	rep, err := c.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("\npgcoord report (%s, budget %.1f)\n", *taskName, *budget)
	fmt.Printf("  rounds            %d\n", rep.Rounds)
	fmt.Printf("  workers           %d admitted, %d joins mid-run, %d deaths\n", rep.Workers, rep.Joins, rep.Deaths)
	fmt.Printf("  decoded           %d\n", rep.Decoded)
	fmt.Printf("  accuracy          %.3f (balanced %.3f, recall %.3f)\n", rep.Accuracy, rep.BalancedAccuracy, rep.Recall)
	fmt.Printf("  migrations        %d state transfers, %d lost, %d fresh adoptions\n",
		rep.Transfers, rep.TransfersLost, rep.FreshAdoptions)
	fmt.Printf("  decision hash     %016x\n", rep.DecisionHash)
	if *slo != 0 {
		fmt.Printf("  SLO               %v: p99 %v, %d rounds missed (mode rounds full/temporal/keyframe/shed %d/%d/%d/%d)\n",
			*slo, rep.P99.Round(time.Microsecond), rep.SLOMisses,
			rep.ModeRounds[0], rep.ModeRounds[1], rep.ModeRounds[2], rep.ModeRounds[3])
	}
	for id, reason := range rep.DeadReasons {
		fmt.Printf("  death             worker %d: %s\n", id, reason)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgcoord:", err)
	os.Exit(1)
}
