// Command pgcoord runs the cluster control plane: it owns the fleet
// source, the global decode budget, the consistent-hash placement ring,
// and the per-round knapsack solve, and drives N pggate data-plane
// workers over the cluster protocol (heartbeats, leases, state-transfer,
// budget grants). Workers join with `pggate -join <addr>`; on crash or
// leave the coordinator rebalances only the affected hash arcs and
// migrates stream state to the new owners.
//
// With -journal the control plane is durable: ring membership, the round
// clock, and per-worker governor state land in a snapshot+journal file a
// replacement can resume from. A warm standby (`pgcoord -standby <addr>`)
// follows the primary's journal stream live and takes over on lease
// expiry; a cold one (`pgcoord -takeover <journal>`) elects itself from
// the file a dead coordinator left behind. Workers re-home to the elected
// coordinator through the usual state-transfer path.
//
// Usage:
//
//	pgcoord -listen 127.0.0.1:9570 -workers 4 -streams 1000 -rounds 2000 &
//	pggate -join 127.0.0.1:9570 -name w0   # x4
//
//	pgcoord -listen :9570 -journal coord.pgj ... &       # durable primary
//	pgcoord -listen :9571 -standby 127.0.0.1:9570 ... &  # warm standby
//	pgcoord -listen :9571 -takeover coord.pgj ...        # cold takeover
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"packetgame/internal/cluster"
	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/pipeline"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:9570", "address to accept worker joins on")
		streams   = flag.Int("streams", 64, "synthetic fleet size")
		rounds    = flag.Int("rounds", 2000, "rounds to run")
		budget    = flag.Float64("budget", 8, "global decode budget per round (P-frame units)")
		taskName  = flag.String("task", "PC", "inference task: PC, AD, SR, FD")
		window    = flag.Int("window", 5, "temporal window length")
		workers   = flag.Int("workers", 2, "worker quorum to wait for before round 0")
		seed      = flag.Int64("seed", 1, "random seed")
		slo       = flag.Duration("slo", 0, "per-round latency SLO arming the per-worker governors (0 = exact oracle mode)")
		lease     = flag.Duration("lease", 10*time.Second, "worker lease: silence longer than this reaps the worker")
		heartbeat = flag.Duration("heartbeat", 0, "worker heartbeat period (0 = lease/4)")
		pipelined = flag.Bool("pipelined", false, "overlap rounds: gather round r's reports while round r+1 runs (bit-identical to lockstep at equal -lag)")
		lag       = flag.Int("lag", 1, "feedback lag k: rounds granted but not yet observed when a round is planned")
		rtt       = flag.Duration("rtt", 0, "deterministic report-delivery delay model (lockstep serializes it into every round; -pipelined hides it)")
		journal   = flag.String("journal", "", "durable control-plane state: write a snapshot+journal file here (crash-recoverable via -takeover)")
		standby   = flag.String("standby", "", "primary pgcoord address: run as a warm standby replica that takes over on lease expiry")
		sbName    = flag.String("name", "", "standby name reported to the primary (with -standby)")
		takeover  = flag.String("takeover", "", "journal file of a dead coordinator: elect this process from it (cold takeover, no live primary)")
		rejoin    = flag.Duration("rejoin-wait", 0, "how long an elected standby holds the re-home window before declaring absent workers dead (0 = default)")
		verbose   = flag.Bool("v", false, "log membership changes")
	)
	flag.Parse()

	fleet := make([]*codec.Stream, *streams)
	for i := range fleet {
		fleet[i] = codec.NewStream(
			codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3, AnomalyRate: 30,
				FireRate: 30, QualityDropRate: 30},
			codec.EncoderConfig{StreamID: i, GOPSize: 25},
			*seed+int64(i)*7919)
	}

	cfg := cluster.CoordConfig{
		Listen:  *listen,
		Streams: *streams, Window: *window, Budget: *budget,
		UseTemporal: true,
		Breaker:     &core.BreakerConfig{},
		Task:        *taskName, Rounds: *rounds, MinWorkers: *workers,
		Source: pipeline.NewLocalSource(fleet, *rounds),
		SLO:    *slo, Lease: *lease, Heartbeat: *heartbeat,
		Pipelined: *pipelined, MaxInFlight: *lag, ReportDelay: *rtt,
		JournalPath: *journal, RejoinWait: *rejoin,
	}
	if *verbose {
		cfg.OnMembership = func(round int64, joined, died []int) {
			fmt.Printf("pgcoord: round %d membership: joined %v died %v\n", round, joined, died)
		}
	}
	if *standby != "" && *takeover != "" {
		fatal(fmt.Errorf("-standby and -takeover are mutually exclusive"))
	}

	var rep cluster.Report
	switch {
	case *standby != "":
		name := *sbName
		if name == "" {
			name = fmt.Sprintf("standby-%d", os.Getpid())
		}
		sb, err := cluster.NewStandby(*standby, name, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pgcoord: standby %s on %s following primary %s\n", name, sb.Addr(), *standby)
		rep, err = sb.Run()
		if err != nil {
			fatal(err)
		}
		if !sb.TookOver() {
			fmt.Println("pgcoord: primary completed cleanly; standing down")
			return
		}
		fmt.Println("pgcoord: primary lease expired — took over the cluster")
	case *takeover != "":
		c, err := cluster.NewCoordinator(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pgcoord: cold takeover from %s, listening on %s\n", *takeover, c.Addr())
		rep, err = c.TakeoverFromJournal(*takeover)
		if err != nil {
			fatal(err)
		}
	default:
		c, err := cluster.NewCoordinator(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("pgcoord: listening on %s, waiting for %d workers (%d streams, budget %.1f)\n",
			c.Addr(), *workers, *streams, *budget)
		rep, err = c.Run()
		if err != nil {
			fatal(err)
		}
	}

	fmt.Printf("\npgcoord report (%s, budget %.1f)\n", *taskName, *budget)
	fmt.Printf("  rounds            %d\n", rep.Rounds)
	fmt.Printf("  workers           %d admitted, %d joins mid-run, %d deaths\n", rep.Workers, rep.Joins, rep.Deaths)
	fmt.Printf("  decoded           %d\n", rep.Decoded)
	fmt.Printf("  accuracy          %.3f (balanced %.3f, recall %.3f)\n", rep.Accuracy, rep.BalancedAccuracy, rep.Recall)
	fmt.Printf("  migrations        %d state transfers, %d lost, %d fresh adoptions\n",
		rep.Transfers, rep.TransfersLost, rep.FreshAdoptions)
	fmt.Printf("  decision hash     %016x\n", rep.DecisionHash)
	if *slo != 0 {
		fmt.Printf("  SLO               %v: p99 %v, %d rounds missed (mode rounds full/temporal/keyframe/shed %d/%d/%d/%d)\n",
			*slo, rep.P99.Round(time.Microsecond), rep.SLOMisses,
			rep.ModeRounds[0], rep.ModeRounds[1], rep.ModeRounds[2], rep.ModeRounds[3])
	}
	for id, reason := range rep.DeadReasons {
		fmt.Printf("  death             worker %d: %s\n", id, reason)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgcoord:", err)
	os.Exit(1)
}
