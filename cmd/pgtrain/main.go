// Command pgtrain trains PacketGame's contextual predictor offline on a
// synthetic corpus and exports the binary runtime weight file the gate
// loads at deployment (§6.1 workflow).
//
// Usage:
//
//	pgtrain -task PC -out pc.pgw
//	pgtrain -task PC,AD -out multi.pgw        # multi-task heads
//	pgtrain -task SR -rounds 8000 -epochs 50
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"packetgame/internal/codec"
	"packetgame/internal/dataset"
	"packetgame/internal/infer"
	"packetgame/internal/predictor"
)

func main() {
	var (
		taskNames = flag.String("task", "PC", "comma-separated tasks: PC, AD, SR, FD")
		out       = flag.String("out", "predictor.pgw", "weight file to write")
		streams   = flag.Int("streams", 24, "training fleet size")
		rounds    = flag.Int("rounds", 5000, "rounds of training data per stream set")
		window    = flag.Int("window", 5, "temporal window length")
		epochs    = flag.Int("epochs", 40, "training epochs")
		lr        = flag.Float64("lr", 0.003, "learning rate (RMSprop)")
		seed      = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	var tasks []infer.Task
	for _, name := range strings.Split(*taskNames, ",") {
		task, err := infer.ByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		tasks = append(tasks, task)
	}

	// Corpus: the first task picks the dataset family (multi-task training
	// uses a shared fleet, like the paper's Campus1K PC+AD study).
	corpus := corpusFor(tasks[0], *streams, *seed)
	fmt.Printf("collecting %d rounds from %d streams for %s...\n", *rounds, *streams, *taskNames)
	samples, err := dataset.Collect(corpus, tasks, *window, *rounds)
	if err != nil {
		fatal(err)
	}
	train := dataset.Balance(samples, 0, *seed)
	fmt.Printf("%d samples (%d balanced), positive rate %.3f\n",
		len(samples), len(train), dataset.PositiveRate(samples, 0))

	cfg := predictor.DefaultConfig()
	cfg.Window = *window
	cfg.Tasks = len(tasks)
	cfg.Seed = *seed
	p, err := predictor.New(cfg)
	if err != nil {
		fatal(err)
	}
	loss, err := p.Train(train, predictor.TrainOptions{
		Epochs: *epochs, LR: *lr, Seed: *seed,
		Progress: func(epoch int, loss float64) {
			if epoch%5 == 0 || epoch == *epochs-1 {
				fmt.Printf("epoch %3d  loss %.4f\n", epoch, loss)
			}
		},
	})
	if err != nil {
		fatal(err)
	}
	accs := p.Evaluate(train, 0.5)
	fmt.Printf("final loss %.4f, train accuracy %v\n", loss, accs)
	fmt.Printf("model: %d params, %d FLOPs/inference\n", p.NumParams(), p.FLOPs())

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		fatal(err)
	}
	fmt.Printf("weights written to %s\n", *out)
}

func corpusFor(task infer.Task, n int, seed int64) []*codec.Stream {
	switch task.Name() {
	case "SR":
		return dataset.YTUGC(dataset.YTUGCConfig{Videos: n, Seed: seed})
	case "FD":
		return dataset.FireNet(dataset.FireNetConfig{Videos: n, Seed: seed})
	default:
		return dataset.Campus1K(dataset.Campus1KConfig{Cameras: n, Seed: seed})
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pgtrain:", err)
	os.Exit(1)
}
