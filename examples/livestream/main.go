// Livestream: super-resolution gating over the network. A PGSP server
// muxes a YT-UGC-style fleet of live streams over TCP (standing in for
// RTSP ingest); the client parses packets off the wire, gates them before
// decoding, and enhances only the frames inside bandwidth-induced quality
// drops.
//
//	go run ./examples/livestream
package main

import (
	"fmt"
	"log"
	"net"

	"packetgame"
	"packetgame/internal/stream"
)

const (
	streamsN = 24
	rounds   = 1500
	budget   = 6.0
)

func fleet() []*packetgame.Stream {
	out := make([]*packetgame.Stream, streamsN)
	for i := range out {
		out[i] = packetgame.NewStream(packetgame.SceneConfig{
			BaseActivity:        0.4,
			QualityDropRate:     60, // drops per hour
			QualityDropDuration: 12,
		}, packetgame.EncoderConfig{StreamID: i, Codec: packetgame.H264, GOPSize: 50, GOPPhase: i * 13},
			7000+int64(i)*311)
	}
	return out
}

func main() {
	// 1. Start the ingest server (in-process here; pgserve runs the same
	// protocol as a standalone binary).
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv, err := stream.Serve(ln, stream.ServerConfig{
		NewStreams: fleet,
		Rounds:     rounds,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("PGSP server muxing %d live streams on %s\n", streamsN, srv.Addr())

	// 2. Connect the analytics client and gate before decoding.
	client, err := packetgame.DialStream(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	infos := client.Streams()
	fmt.Printf("connected: %d streams, codec %v, %d FPS, GOP %d\n\n",
		len(infos), infos[0].Codec, infos[0].FPS, infos[0].GOPSize)

	gate, err := packetgame.NewGate(packetgame.GateConfig{
		Streams: len(infos), Budget: budget, UseTemporal: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := packetgame.NewEngine(packetgame.EngineConfig{
		Source: packetgame.NewNetSource(client),
		Gate:   gate,
		Task:   packetgame.SuperResolution{},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("processed %d rounds off the wire\n", rep.Rounds)
	fmt.Printf("  packets received   %d\n", rep.Packets)
	fmt.Printf("  packets decoded    %d (gate saved %.1f%% of decoding)\n",
		rep.Decoded, rep.GateFilterRate*100)
	fmt.Printf("  frames enhanced    %d (necessary: %d)\n", rep.Inferred, rep.NecessaryDecoded)
	fmt.Printf("  wall time          %v\n", rep.Elapsed.Round(1e6))
	fmt.Println("\nthe gate only decodes streams whose feedback says enhancement is needed —")
	fmt.Println("quality-dropped live streams — and skips the healthy ones before decode.")
}
