// Multitask: one gate serving two models. Smart-city deployments run
// several inference models on the same streams (§5.2); training a single
// contextual predictor with one output head per task and gating on the
// maximum confidence decodes a packet if *any* model needs it.
//
//	go run ./examples/multitask
package main

import (
	"fmt"
	"log"

	"packetgame"
)

const (
	cameras = 32
	budget  = 8.0
	window  = 5
	rounds  = 2500
)

func fleet(seed int64) []*packetgame.Stream {
	streams := make([]*packetgame.Stream, cameras)
	for i := range streams {
		streams[i] = packetgame.NewStream(packetgame.SceneConfig{
			BaseActivity: 0.4, PersonRate: 0.25,
			AnomalyRate: 90, AnomalyDuration: 20,
		}, packetgame.EncoderConfig{StreamID: i, Codec: packetgame.H265, GOPSize: 25, GOPPhase: i * 7},
			seed+int64(i)*401)
	}
	return streams
}

func main() {
	tasks := []packetgame.Task{packetgame.PersonCounting{}, packetgame.AnomalyDetection{}}

	// 1. One training pass labels every packet for both tasks.
	fmt.Println("training a two-head predictor on PC+AD labels...")
	samples, err := packetgame.CollectSamples(fleet(9000), tasks, window, 4000)
	if err != nil {
		log.Fatal(err)
	}
	train := packetgame.BalanceSamples(samples, 0, 1)
	cfg := packetgame.DefaultPredictorConfig()
	cfg.Tasks = len(tasks)
	pred, err := packetgame.NewPredictor(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pred.Train(train, packetgame.TrainOptions{Epochs: 30, BatchSize: 256, LR: 0.003}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d samples; %d params shared across %d heads\n\n",
		len(train), pred.NumParams(), len(tasks))

	// 2. Gate with the max-over-heads confidence and score each task's
	// accuracy on its own monitor fleet.
	run := func(name string, taskIndex int, task packetgame.Task) {
		gate, err := packetgame.NewGate(packetgame.GateConfig{
			Streams: cameras, Window: window, Budget: budget,
			Predictor: pred, TaskIndex: taskIndex, UseTemporal: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		sim := packetgame.NewSimulation(fleet(42), task, packetgame.DefaultCosts)
		sim.SetDecider(gate)
		res, err := sim.Run(rounds, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s balanced accuracy %.3f  filter %.1f%%\n",
			name, res.BalancedAccuracy, res.FilterRate*100)
	}

	// A multi-task deployment gates once for all models: use AllTasks.
	// For comparison, gate the same fleet with each single head.
	fmt.Printf("gating %d cameras at budget %.0f units/round:\n", cameras, budget)
	run("PC head only", 0, packetgame.PersonCounting{})
	run("AD head only", 1, packetgame.AnomalyDetection{})
	run("max-over-heads (PC)", packetgame.AllTaskHeads, packetgame.PersonCounting{})
	run("max-over-heads (AD)", packetgame.AllTaskHeads, packetgame.AnomalyDetection{})
	fmt.Println("\nthe max-over-heads gate serves both models from one decode stream:")
	fmt.Println("a packet is decoded if either counting or anomaly detection needs it.")
}
