// Firewatch: offline-video gating. FireNet-style mobile clips are written
// to PGV container files (the stand-in for stored MP4s), then re-opened and
// gated for fire detection without transcoding — the paper's offline-video
// applicability claim (Tab 1).
//
//	go run ./examples/firewatch
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"packetgame"
	"packetgame/internal/container"
	"packetgame/internal/pipeline"
)

const (
	clips   = 12
	clipLen = 1500 // frames per clip (60s at 25FPS)
	budget  = 3.0
)

func main() {
	dir, err := os.MkdirTemp("", "firewatch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. "Record" the mobile clips into PGV files.
	fmt.Printf("writing %d FireNet-style clips to %s...\n", clips, dir)
	fleet := packetgame.FireNet(packetgame.FireNetConfig{Videos: clips, Seed: 11})
	var paths []string
	var totalBytes int64
	for i, st := range fleet {
		path := filepath.Join(dir, fmt.Sprintf("clip%02d.pgv", i))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		w, err := packetgame.NewPGVWriter(f, packetgame.PGVHeader{
			StreamID: i, Codec: packetgame.H264, FPS: 25, GOPSize: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		for j := 0; j < clipLen; j++ {
			if err := w.WritePacket(st.Next()); err != nil {
				log.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			log.Fatal(err)
		}
		info, err := f.Stat()
		if err != nil {
			log.Fatal(err)
		}
		totalBytes += info.Size()
		f.Close()
		paths = append(paths, path)
	}
	fmt.Printf("wrote %.1f MB of containers\n\n", float64(totalBytes)/1e6)

	// 2. Re-open the files and gate fire detection across all clips.
	var readers []*container.Reader
	var files []*os.File
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, f)
		r, err := container.NewReader(f)
		if err != nil {
			log.Fatal(err)
		}
		readers = append(readers, r)
	}
	defer func() {
		for _, f := range files {
			f.Close()
		}
	}()
	src, err := pipeline.NewFileSource(readers)
	if err != nil {
		log.Fatal(err)
	}
	gate, err := packetgame.NewGate(packetgame.GateConfig{
		Streams: clips, Budget: budget, UseTemporal: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := packetgame.NewEngine(packetgame.EngineConfig{
		Source: src, Gate: gate, Task: packetgame.FireDetection{},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("gated fire detection over %d stored clips:\n", clips)
	fmt.Printf("  packets read     %d\n", rep.Packets)
	fmt.Printf("  packets decoded  %d (%.1f%% of decoding avoided, no transcoding)\n",
		rep.Decoded, rep.GateFilterRate*100)
	fmt.Printf("  frames inferred  %d (fire-relevant: %d)\n", rep.Inferred, rep.NecessaryDecoded)
	fmt.Printf("  wall time        %v\n", rep.Elapsed.Round(1e6))
}
