// Campus: the paper's headline deployment scenario. A Campus1K-style
// diurnal camera fleet runs person counting; the contextual predictor is
// trained offline on a held-out fleet, then the gate processes a full
// (time-compressed) day under a tight decode budget, reporting accuracy
// per daypart against the round-robin baseline.
//
//	go run ./examples/campus
package main

import (
	"fmt"
	"log"

	"packetgame"
)

const (
	cameras = 64
	budget  = 16.0 // ≈ a quarter of the decode-everything cost
	window  = 5
)

func diurnalFleet(seed int64) []*packetgame.Stream {
	streams := make([]*packetgame.Stream, cameras)
	for i := range streams {
		streams[i] = packetgame.NewStream(packetgame.SceneConfig{
			Diurnal: true, TimeCompress: 720, // 2 minutes of frames = 24 hours
			BaseActivity: 0.4, PersonRate: 0.3,
		}, packetgame.EncoderConfig{StreamID: i, Codec: packetgame.H265, GOPSize: 25, GOPPhase: i * 7},
			seed+int64(i)*577)
	}
	return streams
}

func main() {
	// 1. Offline: collect labeled packets from a training fleet and fit
	// the contextual predictor (the §6.1 train-then-freeze workflow).
	fmt.Println("training the contextual predictor on a held-out fleet...")
	trainFleet := make([]*packetgame.Stream, 24)
	for i := range trainFleet {
		trainFleet[i] = packetgame.NewStream(
			packetgame.SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			packetgame.EncoderConfig{StreamID: i, Codec: packetgame.H265, GOPSize: 25, GOPPhase: i * 7},
			9000+int64(i)*131)
	}
	samples, err := packetgame.CollectSamples(trainFleet,
		[]packetgame.Task{packetgame.PersonCounting{}}, window, 4000)
	if err != nil {
		log.Fatal(err)
	}
	train := packetgame.BalanceSamples(samples, 0, 1)
	pred, err := packetgame.NewPredictor(packetgame.DefaultPredictorConfig())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := pred.Train(train, packetgame.TrainOptions{Epochs: 30, BatchSize: 256, LR: 0.003}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %d balanced samples (%d params, %d FLOPs/decision)\n\n",
		len(train), pred.NumParams(), pred.FLOPs())

	// 2. Online: one simulated day on the diurnal fleet.
	run := func(name string, d packetgame.Decider) packetgame.SimResult {
		sim := packetgame.NewSimulation(diurnalFleet(42), packetgame.PersonCounting{}, packetgame.DefaultCosts)
		sim.SetDecider(d)
		res, err := sim.Run(25*60*2, 4) // 24h in 4 dayparts
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s accuracy %.3f  filter %.1f%%  dayparts:", name, res.Accuracy, res.FilterRate*100)
		for _, a := range res.SegmentAccuracy {
			fmt.Printf(" %.3f", a)
		}
		fmt.Println()
		return res
	}

	fmt.Printf("gating %d diurnal cameras for one day at budget %.0f units/round\n", cameras, budget)
	gate, err := packetgame.NewGate(packetgame.GateConfig{
		Streams: cameras, Window: window, Budget: budget,
		Predictor: pred, UseTemporal: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	pg := run("PacketGame", gate)
	rr := run("round-robin", packetgame.NewBaselineGate(
		cameras, packetgame.DefaultCosts, &packetgame.RoundRobin{}, nil, budget))

	fmt.Printf("\nday-long accuracy: PacketGame %.3f vs round-robin %.3f at the same budget\n",
		pg.Accuracy, rr.Accuracy)
	fmt.Println("(expect the gap to widen in the commute-peak dayparts)")
}
