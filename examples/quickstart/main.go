// Quickstart: gate a small synthetic camera fleet with the temporal
// estimator only (no trained predictor needed), and compare the outcome
// against decoding everything and against round-robin at the same budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"packetgame"
)

func main() {
	const (
		cameras = 16
		budget  = 5.0 // decode units per round; decoding all 16 needs ~17
		rounds  = 2000
	)

	// A fleet where half the cameras are busy and half are quiet — the
	// regime where cross-stream coordination matters.
	fleet := func(seed int64) []*packetgame.Stream {
		streams := make([]*packetgame.Stream, cameras)
		for i := range streams {
			sc := packetgame.SceneConfig{BaseActivity: 0.05, PersonRate: 0.02}
			if i%2 == 0 {
				sc = packetgame.SceneConfig{BaseActivity: 0.9, PersonRate: 0.8}
			}
			streams[i] = packetgame.NewStream(sc,
				packetgame.EncoderConfig{StreamID: i, GOPSize: 25, GOPPhase: i * 7}, seed+int64(i)*31)
		}
		return streams
	}

	run := func(name string, decider packetgame.Decider) packetgame.SimResult {
		sim := packetgame.NewSimulation(fleet(42), packetgame.PersonCounting{}, packetgame.DefaultCosts)
		sim.SetDecider(decider)
		res, err := sim.Run(rounds, 0)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("%-12s accuracy %.3f  filter rate %.1f%%  decoded %d/%d packets\n",
			name, res.Accuracy, res.FilterRate*100, res.Decoded, res.Packets)
		return res
	}

	fmt.Printf("gating %d cameras at budget %.1f units/round (PC task)\n\n", cameras, budget)

	gate, err := packetgame.NewGate(packetgame.GateConfig{
		Streams: cameras, Budget: budget, UseTemporal: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	pg := run("PacketGame", gate)

	rr := run("round-robin", packetgame.NewBaselineGate(
		cameras, packetgame.DefaultCosts, &packetgame.RoundRobin{}, nil, budget))

	all := run("decode-all", packetgame.NewBaselineGate(
		cameras, packetgame.DefaultCosts, &packetgame.Greedy{}, nil, 1e9))

	fmt.Printf("\nPacketGame kept %.1f%% of decode-all accuracy using %.1f%% of its decode work\n",
		pg.Accuracy/all.Accuracy*100, pg.CostSpent/all.CostSpent*100)
	if pg.Accuracy > rr.Accuracy {
		fmt.Println("and beat round-robin at the same budget — cross-stream coordination pays.")
	}
}
