package container

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"packetgame/internal/codec"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	f := func(seq, pts int64, typ uint8, gi, gs uint16, size uint32, payload []byte) bool {
		p := &codec.Packet{
			Seq: seq & 0x7fffffffffffffff, PTS: pts & 0x7fffffffffffffff,
			Type:     codec.PictureType(typ % 3),
			GOPIndex: int(gi), GOPSize: int(gs),
			Size:    int(size & 0x7fffffff),
			Payload: payload,
		}
		buf := MarshalPacket(nil, p)
		got, used, err := UnmarshalPacket(buf)
		if err != nil || used != len(buf) {
			return false
		}
		return got.Seq == p.Seq && got.PTS == p.PTS && got.Type == p.Type &&
			got.GOPIndex == p.GOPIndex && got.GOPSize == p.GOPSize &&
			got.Size == p.Size && bytes.Equal(got.Payload, p.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := UnmarshalPacket([]byte{1, 2, 3}); err == nil {
		t.Error("short record must error")
	}
	p := &codec.Packet{Type: codec.PictureP, Payload: []byte{1, 2, 3}}
	buf := MarshalPacket(nil, p)
	if _, _, err := UnmarshalPacket(buf[:len(buf)-1]); err == nil {
		t.Error("truncated payload must error")
	}
	buf[16] = 7 // invalid picture type
	if _, _, err := UnmarshalPacket(buf); err == nil {
		t.Error("bad picture type must error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.5},
		codec.EncoderConfig{StreamID: 9, Codec: codec.H265, GOPSize: 12, FPS: 25}, 77)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{StreamID: 9, Codec: codec.H265, FPS: 25, GOPSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	var want []*codec.Packet
	for i := 0; i < 50; i++ {
		p := st.Next()
		want = append(want, p)
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 50 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	if hdr.StreamID != 9 || hdr.Codec != codec.H265 || hdr.FPS != 25 || hdr.GOPSize != 12 {
		t.Errorf("header = %+v", hdr)
	}
	for i, wp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.Seq != wp.Seq || got.Type != wp.Type || got.Size != wp.Size ||
			got.StreamID != 9 || got.Codec != codec.H265 {
			t.Fatalf("packet %d: got %v want %v", i, got, wp)
		}
		// Payload survives: the decoder can recover the scene.
		if _, err := codec.DecodePayload(got.Payload); err != nil {
			t.Fatalf("packet %d payload: %v", i, err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("after last packet err = %v, want io.EOF", err)
	}
}

func TestWriterValidation(t *testing.T) {
	if _, err := NewWriter(&bytes.Buffer{}, Header{}); err == nil {
		t.Error("zero FPS must error")
	}
}

func TestWriterClosedRejectsWrites(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{FPS: 25})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(&codec.Packet{}); err == nil {
		t.Error("write after close must error")
	}
	if err := w.Close(); err != nil {
		t.Error("double close must be a no-op")
	}
}

func TestEmptyFileStillHasHeader(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{FPS: 30, GOPSize: 10})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().FPS != 30 {
		t.Errorf("header = %+v", r.Header())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("err = %v, want io.EOF", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a pgv file at all"))); err == nil {
		t.Error("bad magic must error")
	}
	if _, err := NewReader(bytes.NewReader([]byte("PG"))); err == nil {
		t.Error("truncated magic must error")
	}
}
