// Package container implements PGV, the offline video file format of this
// reproduction: a self-describing single-stream container (header with codec
// metadata, then length-prefixed packet records). It plays the role MP4
// files play in the paper's offline-video use case — packet gating reads
// packet metadata straight from the container without decoding.
package container

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"packetgame/internal/codec"
)

// Magic identifies PGV files.
var Magic = [4]byte{'P', 'G', 'V', '1'}

// Header carries the stream metadata stored at the front of a PGV file.
type Header struct {
	StreamID int
	Codec    codec.Codec
	FPS      int
	GOPSize  int
}

// MarshalPacket appends the wire encoding of one packet record to dst:
// seq(8) pts(8) type(1) gopIndex(2) gopSize(2) size(4) payloadLen(4) payload.
// The record is used both by PGV files and the PGSP stream protocol.
func MarshalPacket(dst []byte, p *codec.Packet) []byte {
	var tmp [29]byte
	binary.BigEndian.PutUint64(tmp[0:], uint64(p.Seq))
	binary.BigEndian.PutUint64(tmp[8:], uint64(p.PTS))
	tmp[16] = byte(p.Type)
	binary.BigEndian.PutUint16(tmp[17:], uint16(p.GOPIndex))
	binary.BigEndian.PutUint16(tmp[19:], uint16(p.GOPSize))
	binary.BigEndian.PutUint32(tmp[21:], uint32(p.Size))
	binary.BigEndian.PutUint32(tmp[25:], uint32(len(p.Payload)))
	dst = append(dst, tmp[:]...)
	return append(dst, p.Payload...)
}

// UnmarshalPacket decodes a record produced by MarshalPacket. It returns the
// packet (with StreamID and Codec left zero; callers fill them from context)
// and the number of bytes consumed.
func UnmarshalPacket(data []byte) (*codec.Packet, int, error) {
	if len(data) < 29 {
		return nil, 0, fmt.Errorf("container: record truncated: %d bytes", len(data))
	}
	plen := int(binary.BigEndian.Uint32(data[25:]))
	if len(data) < 29+plen {
		return nil, 0, fmt.Errorf("container: payload truncated: have %d, need %d", len(data)-29, plen)
	}
	t := codec.PictureType(data[16])
	if t > codec.PictureB {
		return nil, 0, fmt.Errorf("container: invalid picture type %d", t)
	}
	p := &codec.Packet{
		Seq:      int64(binary.BigEndian.Uint64(data[0:])),
		PTS:      int64(binary.BigEndian.Uint64(data[8:])),
		Type:     t,
		GOPIndex: int(binary.BigEndian.Uint16(data[17:])),
		GOPSize:  int(binary.BigEndian.Uint16(data[19:])),
		Size:     int(binary.BigEndian.Uint32(data[21:])),
	}
	if plen > 0 {
		p.Payload = append([]byte(nil), data[29:29+plen]...)
	}
	return p, 29 + plen, nil
}

// Writer writes a PGV file.
type Writer struct {
	w      *bufio.Writer
	hdr    Header
	buf    []byte
	wrote  bool
	closed bool
	count  int64
}

// NewWriter starts a PGV file with the given header.
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	if hdr.FPS <= 0 {
		return nil, fmt.Errorf("container: FPS must be positive, got %d", hdr.FPS)
	}
	return &Writer{w: bufio.NewWriter(w), hdr: hdr}, nil
}

func (w *Writer) writeHeader() error {
	if _, err := w.w.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [13]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(w.hdr.StreamID))
	hdr[4] = byte(w.hdr.Codec)
	binary.BigEndian.PutUint32(hdr[5:], uint32(w.hdr.FPS))
	binary.BigEndian.PutUint32(hdr[9:], uint32(w.hdr.GOPSize))
	_, err := w.w.Write(hdr[:])
	return err
}

// WritePacket appends one packet record.
func (w *Writer) WritePacket(p *codec.Packet) error {
	if w.closed {
		return errors.New("container: writer closed")
	}
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
		w.wrote = true
	}
	w.buf = MarshalPacket(w.buf[:0], p)
	var lenHdr [4]byte
	binary.BigEndian.PutUint32(lenHdr[:], uint32(len(w.buf)))
	if _, err := w.w.Write(lenHdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.buf); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of packets written.
func (w *Writer) Count() int64 { return w.count }

// Close flushes the file. The writer must not be reused.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if !w.wrote {
		if err := w.writeHeader(); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader reads a PGV file.
type Reader struct {
	r   *bufio.Reader
	hdr Header
	buf []byte
}

// NewReader opens a PGV stream and parses its header.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("container: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("container: bad magic %q", magic[:])
	}
	var hdr [13]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("container: reading header: %w", err)
	}
	return &Reader{r: br, hdr: Header{
		StreamID: int(binary.BigEndian.Uint32(hdr[0:])),
		Codec:    codec.Codec(hdr[4]),
		FPS:      int(binary.BigEndian.Uint32(hdr[5:])),
		GOPSize:  int(binary.BigEndian.Uint32(hdr[9:])),
	}}, nil
}

// Header returns the file header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next packet, or io.EOF at end of file.
func (r *Reader) Next() (*codec.Packet, error) {
	var lenHdr [4]byte
	if _, err := io.ReadFull(r.r, lenHdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("container: reading record length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenHdr[:])
	if n > 64<<20 {
		return nil, fmt.Errorf("container: record of %d bytes exceeds limit", n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		return nil, fmt.Errorf("container: reading record: %w", err)
	}
	p, used, err := UnmarshalPacket(r.buf)
	if err != nil {
		return nil, err
	}
	if used != int(n) {
		return nil, fmt.Errorf("container: record has %d trailing bytes", int(n)-used)
	}
	p.StreamID = r.hdr.StreamID
	p.Codec = r.hdr.Codec
	return p, nil
}
