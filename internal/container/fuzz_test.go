package container

import (
	"bytes"
	"testing"

	"packetgame/internal/codec"
)

// validPGV builds a well-formed PGV file to seed the fuzz corpus.
func validPGV(tb testing.TB, n int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Header{FPS: 25, GOPSize: 5})
	if err != nil {
		tb.Fatal(err)
	}
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 5}, 7)
	for i := 0; i < n; i++ {
		if err := w.WritePacket(st.Next()); err != nil {
			tb.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReader feeds arbitrary bytes to the PGV demuxer: truncated, corrupt,
// or adversarial inputs must surface as errors, never as panics or runaway
// allocations.
func FuzzReader(f *testing.F) {
	valid := validPGV(f, 3)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])           // truncated mid-record
	f.Add(valid[:14])                     // header only
	f.Add([]byte{})                       // empty
	f.Add([]byte("PGV1"))                 // magic only
	f.Add([]byte("PGV0garbagegarbage"))   // wrong magic
	f.Add(bytes.Repeat([]byte{0xff}, 64)) // absurd record lengths
	mut := append([]byte(nil), valid...)
	mut[20] ^= 0xff // corrupt first record header
	f.Add(mut)
	f.Add(valid[:len(valid)-1]) // truncated one byte short of a full file
	f.Add(valid[:14+29])        // cut exactly at a record boundary
	f.Add(valid[:14+29+10])     // cut inside the second record's header
	body := append([]byte(nil), valid...)
	body[len(body)-3] ^= 0xff // corrupt the tail of the last record's body
	f.Add(body)
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<16; i++ {
			if _, err := r.Next(); err != nil {
				return // io.EOF or a decode error: both acceptable
			}
		}
	})
}

// FuzzUnmarshalPacket exercises the record codec directly: any input must
// either round out to a packet or error, without panicking.
func FuzzUnmarshalPacket(f *testing.F) {
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 5}, 11)
	rec := MarshalPacket(nil, st.Next())
	f.Add(rec)
	f.Add(rec[:len(rec)-1])
	f.Add(rec[:5]) // truncated mid-header
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	crc := append([]byte(nil), rec...)
	crc[len(crc)-1] ^= 0xff // corrupted record tail
	f.Add(crc)
	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := UnmarshalPacket(data)
		if err != nil {
			return
		}
		if p == nil {
			t.Fatal("nil packet without error")
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
	})
}
