package pipeline

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
)

// waitGoroutines polls until the goroutine count returns to within slack of
// base (worker pools need a moment to observe channel closes).
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, base, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseDrainsPipelinedEngine is the shutdown-leak regression test: Close
// while rounds are still decoding must drain the collector, join the decode
// pool, and leave no goroutines behind.
func TestCloseDrainsPipelinedEngine(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, workers, k = 16, 6, 4
	g, err := core.NewGate(core.Config{Streams: m, Budget: 12, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var once bool
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 7), 0), // unlimited: only Close ends the run
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             workers,
		MaxInFlight:         k,
		Pipelined:           true,
		LatencyNanosPerUnit: 200_000, // slow decodes keep rounds in flight
		OnRound: func(round int64, sel []int) {
			if !once && round >= 2 {
				once = true
				close(started)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := eng.Run(0)
		done <- result{rep, err}
	}()
	<-started // several rounds decided, decodes in flight
	eng.Close()
	res := <-done
	if res.err != nil {
		t.Fatalf("closed run returned error: %v", res.err)
	}
	if res.rep.Rounds < 2 {
		t.Fatalf("partial report lost settled rounds: %+v", res.rep)
	}
	if g.Pending() != 0 {
		t.Fatalf("gate left with %d unacked rounds after Close", g.Pending())
	}
	waitGoroutines(t, base)
}

// TestCloseStopsSequentialEngine covers the reference engine: Close between
// rounds ends the run with all pending feedback flushed.
func TestCloseStopsSequentialEngine(t *testing.T) {
	base := runtime.NumGoroutine()
	const m = 8
	g, err := core.NewGate(core.Config{Streams: m, Budget: 8, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	var eng *Engine
	eng, err = New(Config{
		Source:      NewLocalSource(mkFleet(m, 11), 0),
		Gate:        g,
		Task:        infer.PersonCounting{},
		MaxInFlight: 2,
		OnRound: func(round int64, sel []int) {
			if round == 5 {
				eng.Close()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds < 5 {
		t.Fatalf("rounds = %d, want ≥ 5", rep.Rounds)
	}
	if g.Pending() != 0 {
		t.Fatalf("gate left with %d unacked rounds", g.Pending())
	}
	waitGoroutines(t, base)
}

// failEvery wraps a decoder, failing every packet of the victim stream.
type failEvery struct {
	inner  decode.PacketDecoder
	victim int
}

func (f *failEvery) Decode(p *codec.Packet) (decode.Frame, error) {
	if p.StreamID == f.victim {
		return decode.Frame{}, errors.New("wedged decoder")
	}
	return f.inner.Decode(p)
}

// TestPoisonPillDoesNotWedgePipeline runs both engines against a decoder
// that always fails one stream: the run must complete every round, account
// the failures, and ack every round to the gate.
func TestPoisonPillDoesNotWedgePipeline(t *testing.T) {
	for _, pipelined := range []bool{false, true} {
		const m, rounds = 8, 40
		g, err := core.NewGate(core.Config{Streams: m, Budget: 40, UseTemporal: true})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := New(Config{
			Source:      NewLocalSource(mkFleet(m, 23), rounds),
			Gate:        g,
			Task:        infer.PersonCounting{},
			Pipelined:   pipelined,
			MaxInFlight: 3,
			Retry:       decode.RetryPolicy{MaxRetries: 1, Backoff: time.Microsecond},
			WrapDecoder: func(d decode.PacketDecoder) decode.PacketDecoder {
				return &failEvery{inner: d, victim: 0}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(0)
		if err != nil {
			t.Fatalf("pipelined=%v: %v", pipelined, err)
		}
		if rep.Rounds != rounds {
			t.Fatalf("pipelined=%v: completed %d/%d rounds", pipelined, rep.Rounds, rounds)
		}
		if rep.DecodeFailed == 0 {
			t.Fatalf("pipelined=%v: victim stream failures not accounted: %+v", pipelined, rep)
		}
		if g.Pending() != 0 {
			t.Fatalf("pipelined=%v: %d unacked rounds", pipelined, g.Pending())
		}
	}
}

// TestBreakerQuarantinesPoisonPillStream is the end-to-end fault loop: with
// breakers armed, the wedged stream's failures open its breaker and the
// engine stops selecting it, so failures stop accumulating.
func TestBreakerQuarantinesPoisonPillStream(t *testing.T) {
	const m, rounds = 8, 120
	g, err := core.NewGate(core.Config{Streams: m, Budget: 40, UseTemporal: true,
		Breaker: &core.BreakerConfig{FailureThreshold: 3, Cooldown: 1 << 20, GapThreshold: -1}})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Source:    NewLocalSource(mkFleet(m, 29), rounds),
		Gate:      g,
		Task:      infer.PersonCounting{},
		Pipelined: true,
		WrapDecoder: func(d decode.PacketDecoder) decode.PacketDecoder {
			return &failEvery{inner: d, victim: 0}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Fatalf("completed %d/%d rounds", rep.Rounds, rounds)
	}
	snap := g.Breakers()[0]
	if snap.State != core.BreakerOpen {
		t.Fatalf("victim breaker = %+v, want open", snap)
	}
	// Once open (after FailureThreshold fails), the stream is out of the
	// selection: failures stop near the threshold instead of growing with
	// the round count.
	if rep.DecodeFailed > 6 {
		t.Fatalf("quarantine did not stop the bleeding: %d decode failures", rep.DecodeFailed)
	}
	if snap.QuarantinedRounds < int64(rounds)/2 {
		t.Fatalf("victim quarantined for only %d of %d rounds", snap.QuarantinedRounds, rounds)
	}
}
