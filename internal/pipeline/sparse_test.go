package pipeline

import (
	"fmt"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/infer"
)

// churnCam wraps a synthetic stream with seeded random idleness: each round
// it emits nothing with probability idlePct/100. Rebuilding with the same
// seed replays the identical activity pattern, which is what lets the twin
// engines below consume the same rounds through different representations.
type churnCam struct {
	st      *codec.Stream
	rng     uint64
	idlePct uint64
	last    codec.Scene
	ok      bool
}

func (c *churnCam) Next() *codec.Packet {
	c.rng = c.rng*6364136223846793005 + 1442695040888963407
	if (c.rng>>33)%100 < c.idlePct {
		c.ok = false
		return nil
	}
	p := c.st.Next()
	c.last = c.st.LastScene
	c.ok = true
	return p
}

func (c *churnCam) Truth() (codec.Scene, bool) { return c.last, c.ok }

func mkChurnFleet(m int, seed int64, idlePct uint64) []Camera {
	cams := make([]Camera, m)
	for i := range cams {
		cams[i] = &churnCam{
			st: codec.NewStream(
				codec.SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
				codec.EncoderConfig{StreamID: i, GOPSize: 10},
				seed+int64(i)*31),
			rng:     uint64(seed)*2862933555777941757 + uint64(i)*3037000493 + 1,
			idlePct: idlePct,
		}
	}
	return cams
}

// runChurn runs one engine over a seeded churn fleet. dense forces the
// DenseRounds oracle knob — the byte-for-byte pre-sparse code path — so any
// divergence from a dense=false twin is a sparse-representation bug.
func runChurn(t *testing.T, dense, pipelined bool, k, workers, m, rounds int, budget float64, seed int64, idlePct uint64) ([][]int, Report, core.Stats) {
	t.Helper()
	g, err := core.NewGate(core.Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	var decisions [][]int
	eng, err := New(Config{
		Source:      NewCameraSource(mkChurnFleet(m, seed, idlePct), rounds),
		Gate:        g,
		Task:        infer.PersonCounting{},
		Workers:     workers,
		MaxInFlight: k,
		Pipelined:   pipelined,
		DenseRounds: dense,
		OnRound: func(round int64, sel []int) {
			if int64(len(decisions)) != round {
				t.Errorf("OnRound out of order: round %d after %d rounds", round, len(decisions))
			}
			decisions = append(decisions, sel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return decisions, rep, g.Stats()
}

// TestSparseRoundsMatchDense is the sparse-representation property test:
// across randomized activity levels (including heavy idleness and fully
// dense rounds) and both engine modes, the sparse round path must be
// bit-identical to the DenseRounds oracle — same per-round decode sets,
// same report counters, same gate statistics.
func TestSparseRoundsMatchDense(t *testing.T) {
	cases := []struct {
		pipelined bool
		k         int
		idlePct   uint64
		seed      int64
	}{
		{pipelined: false, k: 1, idlePct: 0, seed: 101},
		{pipelined: false, k: 2, idlePct: 35, seed: 102},
		{pipelined: false, k: 1, idlePct: 90, seed: 103},
		{pipelined: true, k: 1, idlePct: 35, seed: 104},
		{pipelined: true, k: 3, idlePct: 60, seed: 105},
		{pipelined: true, k: 4, idlePct: 95, seed: 106},
	}
	const m, rounds = 24, 140
	for _, tc := range cases {
		name := fmt.Sprintf("pipelined=%v/k=%d/idle=%d", tc.pipelined, tc.k, tc.idlePct)
		t.Run(name, func(t *testing.T) {
			selD, repD, stD := runChurn(t, true, tc.pipelined, tc.k, 6, m, rounds, 8, tc.seed, tc.idlePct)
			selS, repS, stS := runChurn(t, false, tc.pipelined, tc.k, 6, m, rounds, 8, tc.seed, tc.idlePct)
			if repD.Rounds != int64(rounds) {
				t.Fatalf("dense oracle ran %d rounds, want %d", repD.Rounds, rounds)
			}
			compareRuns(t, name, selD, selS, repD, repS, stD, stS)
		})
	}
}

// TestSparsePipelinedMatchesSparseSequential closes the square: with both
// twins on the sparse path, the pipelined engine at lag k must still match
// the sequential engine at the same lag (the pre-sparse determinism
// guarantee carries over to recycled roundWorks).
func TestSparsePipelinedMatchesSparseSequential(t *testing.T) {
	const m, rounds = 20, 120
	for _, k := range []int{1, 3} {
		name := fmt.Sprintf("k%d", k)
		t.Run(name, func(t *testing.T) {
			selSeq, repSeq, stSeq := runChurn(t, false, false, k, 5, m, rounds, 7, 201, 50)
			selPipe, repPipe, stPipe := runChurn(t, false, true, k, 5, m, rounds, 7, 201, 50)
			compareRuns(t, name, selSeq, selPipe, repSeq, repPipe, stSeq, stPipe)
		})
	}
}

// TestSparseLocalAndFileSources smoke-tests the remaining SparseRoundSource
// implementations end to end: a LocalSource fleet (never idle) must settle
// every packet, matching its dense twin exactly.
func TestSparseLocalSourceMatchesDense(t *testing.T) {
	const m, rounds = 12, 100
	run := func(dense bool) ([][]int, Report, core.Stats) {
		g, err := core.NewGate(core.Config{Streams: m, Budget: 5, UseTemporal: true})
		if err != nil {
			t.Fatal(err)
		}
		var decisions [][]int
		eng, err := New(Config{
			Source:      NewLocalSource(mkFleet(m, 55), rounds),
			Gate:        g,
			Task:        infer.PersonCounting{},
			DenseRounds: dense,
			OnRound:     func(_ int64, sel []int) { decisions = append(decisions, sel) },
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return decisions, rep, g.Stats()
	}
	selD, repD, stD := run(true)
	selS, repS, stS := run(false)
	if repS.Packets != int64(m*rounds) {
		t.Errorf("sparse local packets = %d, want %d", repS.Packets, m*rounds)
	}
	compareRuns(t, "local", selD, selS, repD, repS, stD, stS)
}
