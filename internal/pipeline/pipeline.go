// Package pipeline assembles the end-to-end concurrent video inference
// pipeline of Fig 1 with PacketGame plugged between parser and decoder:
// a round source (local fleet, PGSP network client, or PGV files) feeds the
// gate; selected packets are decoded on a worker pool; decoded frames pass
// an optional frame filter and the inference task; redundancy feedback
// closes the loop.
//
// The engine runs in one of two modes with identical decision semantics:
//
//   - sequential (default): rounds execute one after another in the calling
//     goroutine, with decode fanned out per round;
//   - pipelined (Config.Pipelined): rounds flow through gate → decode →
//     filter/infer as channel-connected stages, so round t+1 is gated and
//     queued while round t is still decoding.
//
// Both modes honor the same feedback-lag schedule: with MaxInFlight = k,
// the decision for round t observes redundancy feedback through round t−k.
// The sequential engine applies that schedule inline (it is the reference
// implementation); the pipelined engine realizes it concurrently. At k = 1
// both reduce to the strict Decide/Feedback alternation of the paper.
package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/filter"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
	"packetgame/internal/overload"
)

// RoundSource yields one round of packets per call: a slice indexed by
// stream ID (nil entries = idle). It returns io.EOF when exhausted.
type RoundSource interface {
	NextRound() ([]*codec.Packet, error)
	// Truth returns the ground-truth scene for stream i's current-round
	// packet and whether ground truth is available (network sources
	// cannot know the content of packets that were never decoded).
	Truth(i int) (codec.Scene, bool)
}

// RoundLister is optionally implemented by sources that know which streams
// delivered a packet in the round just returned by NextRound: NonIdle
// returns their indices, strictly ascending, valid until the next NextRound
// call. Sources assemble rounds stream by stream, so the list costs them
// nothing extra — and handing it to a churn-scaled gate saves the gate its
// own O(m) scan, keeping sparse rounds in a large fleet cheap end to end.
type RoundLister interface {
	NonIdle() []int32
}

// SparseRoundSource is optionally implemented by sources that can hand the
// round over in sparse form — active ids plus packets, no nil padding. The
// engine prefers it (unless Config.DenseRounds pins the dense oracle path),
// which makes the whole producer side O(active) per round: a source that
// knows its activity never materializes the idle streams at all. The
// returned Round is valid until the next NextRoundSparse call; Truth is
// still indexed by stream id.
type SparseRoundSource interface {
	RoundSource
	NextRoundSparse() (*codec.Round, error)
}

// sparseDecider is optionally implemented by gates (a *core.Gate) that
// accept the round's non-idle list directly.
type sparseDecider interface {
	DecideRoundAppend(pkts []*codec.Packet, nonIdle []int32, dst []int) ([]int, error)
}

// roundDecider is optionally implemented by gates (a *core.Gate) that accept
// a sparse round directly.
type roundDecider interface {
	DecideSparseAppend(r *codec.Round, dst []int) ([]int, error)
}

// decide routes one round to the gate, handing over the non-idle list when
// both the source produced one and the gate can consume it.
func (e *Engine) decide(pkts []*codec.Packet, nonIdle []int32) ([]int, error) {
	if nonIdle != nil {
		if sd, ok := e.cfg.Gate.(sparseDecider); ok {
			return sd.DecideRoundAppend(pkts, nonIdle, nil)
		}
	}
	return e.cfg.Gate.Decide(pkts)
}

// decideSparse routes a sparse round to the gate. Gates without a sparse
// entry point (baselines) get the round scattered into a persistent dense
// scratch — correctness for every Decider, O(active) only for gates that
// understand rounds.
func (e *Engine) decideSparse(r *codec.Round) ([]int, error) {
	if rd, ok := e.cfg.Gate.(roundDecider); ok {
		return rd.DecideSparseAppend(r, nil)
	}
	if cap(e.scatter) < r.M {
		e.scatter = make([]*codec.Packet, r.M)
	}
	dense := e.scatter[:r.M]
	r.Scatter(dense)
	sel, err := e.decide(dense, r.IDs)
	r.ClearScatter(dense)
	return sel, err
}

// Config parameterizes an Engine.
type Config struct {
	// Source supplies rounds.
	Source RoundSource
	// Gate is the gating policy (a *core.Gate or baseline).
	Gate core.Decider
	// Task is the inference workload.
	Task infer.Task
	// Tasks, when non-empty, assigns per-stream workloads instead: stream i
	// runs Tasks[i mod len(Tasks)] (the mixed-priority deployment that
	// pairs with core.Config.Priorities). Task remains required as the
	// reporting default.
	Tasks []infer.Task
	// Costs is the decode cost model (default decode.DefaultCosts).
	Costs decode.CostModel
	// Workers is the decode worker count (default 4).
	Workers int
	// BurnNanosPerUnit makes decoding burn CPU per cost unit (wall-clock
	// realism for concurrency benchmarks on multi-core hosts; 0 disables).
	BurnNanosPerUnit int64
	// LatencyNanosPerUnit makes decoding hold a decode session for
	// cost-proportional wall-clock time without burning CPU, modelling
	// offloaded hardware decoders (0 disables; exclusive with
	// BurnNanosPerUnit).
	LatencyNanosPerUnit int64
	// Filter optionally drops decoded frames before inference (the
	// on-server frame filter stage; nil disables).
	Filter filter.FrameFilter
	// Retry bounds decode retries: each selected packet is attempted up to
	// 1+MaxRetries times with exponential backoff and an optional
	// per-attempt deadline. A packet that exhausts its attempts is a poison
	// pill: the round still settles (the failed slot reports conservative
	// redundancy feedback and counts in Report.DecodeFailed) instead of
	// aborting the run. The zero value keeps single-attempt decoding —
	// failures are still tolerated, just never retried.
	Retry decode.RetryPolicy
	// WrapDecoder, when non-nil, wraps the engine's decoder before the
	// retry layer (fault injection hooks in here, so every retry re-draws
	// its injected faults).
	WrapDecoder func(decode.PacketDecoder) decode.PacketDecoder
	// MaxInFlight is the feedback lag k: the number of rounds that may be
	// decided but not yet acked, and the pipelined engine's in-flight
	// round bound. Decide(t) observes feedback through round t−k in both
	// engines, so sequential and pipelined runs of the same k make
	// identical decisions. 0 defaults to 1 (strict alternation).
	MaxInFlight int
	// Pipelined selects the concurrent staged engine.
	Pipelined bool
	// DenseRounds disables the sparse round path: even when the Source
	// implements SparseRoundSource, rounds are pulled dense (nil-padded
	// m-length arrays) and settled with the dense O(m) walks, exactly like
	// the pre-sparse engine. Decisions are bit-identical either way — the
	// sparse property tests use this knob as their oracle — so the only
	// reason to set it is A/B benchmarking the representation itself.
	DenseRounds bool
	// FreshFeedback (pipelined only) applies each round's redundancy
	// feedback the moment the round completes, instead of deferring it to
	// the gate stage's deterministic lag-k schedule. Decisions become
	// timing-dependent (feedback may land earlier than the schedule
	// promises, never later than needed) in exchange for the freshest
	// possible UCB state. Feedback is still applied in strict round order.
	FreshFeedback bool
	// OnRound, when non-nil, is invoked synchronously after every gating
	// decision with the round number and the selected stream indices.
	// Both engines call it from the deciding goroutine in round order.
	OnRound func(round int64, selected []int)
	// Stages, when non-nil, receives per-stage queue-depth and latency
	// counters for the gate, decode, and infer stages.
	Stages *metrics.StageSet
	// Deadline, when positive (pipelined only), bounds each round's
	// decode-to-settle time: a round still incomplete when its deadline
	// expires is settled immediately — slots whose decode never finished
	// are fed back as Deferred (outcome unknown, no learned state touched),
	// their queued decode jobs are cancelled, and late completions are
	// discarded — instead of dragging the collector and every round behind
	// it past the SLO.
	Deadline time.Duration
	// Governor, when non-nil, receives each settled round's observed
	// latency (decode enqueue → settle) and the in-flight round depth, and
	// supplies the gate's effective budget and degradation mode (wire the
	// same governor into core.Config.Governor). This closes the overload
	// control loop through the pipeline.
	Governor *overload.Governor
	// Overload, when non-nil, receives deadline-abort counters (share it
	// with core.Config.Overload and the governor's Stats for one unified
	// snapshot).
	Overload *metrics.OverloadStats
}

// Report summarizes an Engine run.
type Report struct {
	Rounds   int64
	Packets  int64
	Decoded  int64
	Filtered int64 // decoded frames dropped by the frame filter
	Inferred int64
	// DecodeFailed counts selected packets whose decode failed even after
	// the retry policy was exhausted (poison pills, injected faults).
	DecodeFailed int64
	// DeadlineAborted counts selected packets abandoned by a round
	// deadline (settled as Deferred; excluded from Decoded).
	DeadlineAborted int64
	// Overload is the shared overload snapshot at run end (zero when
	// Config.Overload is unwired): shed/deferred/abort counters, governor
	// AIMD and ladder transitions, and the B_eff gauge.
	Overload metrics.OverloadSnapshot
	// NecessaryDecoded counts decoded frames whose inference was necessary.
	NecessaryDecoded int64
	// Accuracy is the mean emitted-result accuracy over rounds with ground
	// truth (−1 when the source provides no truth).
	Accuracy float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// DecodedFPS is Decoded/Elapsed.
	DecodedFPS float64
	// GateFilterRate is 1 − Decoded/Packets.
	GateFilterRate float64
}

// Engine runs the pipeline.
type Engine struct {
	cfg      Config
	fleet    *infer.Fleet
	sawTruth bool

	stop      chan struct{}
	closeOnce sync.Once

	// selMask is settleRound scratch (settles are serial in both engines).
	// The sparse settle path keeps it all-false between rounds (set and
	// cleared per selection) so it never pays an O(m) wipe.
	selMask []bool
	// scatter is decideSparse's dense scratch for gates without a sparse
	// entry point (all-nil between rounds).
	scatter []*codec.Packet
	// freeMasks recycles per-round necessary masks between settleRound and
	// the feedback release sites, which may run on different goroutines in
	// the pipelined engine.
	maskMu    sync.Mutex
	freeMasks [][]bool

	// rwMu guards the pipelined engine's roundWork free list: sparse rounds
	// recycle their id/packet/truth/frame buffers through it, so a
	// steady-state in-flight round allocates O(active), not O(m).
	rwMu   sync.Mutex
	rwFree []*roundWork
}

// getMask returns a zeroed n-element mask, recycled when possible.
func (e *Engine) getMask(n int) []bool {
	e.maskMu.Lock()
	var s []bool
	if l := len(e.freeMasks); l > 0 {
		s = e.freeMasks[l-1]
		e.freeMasks = e.freeMasks[:l-1]
	}
	e.maskMu.Unlock()
	if cap(s) < n {
		s = make([]bool, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = false
	}
	return s
}

// putMask releases a mask for reuse. The caller must not touch it after.
func (e *Engine) putMask(s []bool) {
	if s == nil {
		return
	}
	e.maskMu.Lock()
	e.freeMasks = append(e.freeMasks, s)
	e.maskMu.Unlock()
}

// New creates an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Source == nil || cfg.Gate == nil || cfg.Task == nil {
		return nil, errors.New("pipeline: Source, Gate, and Task are required")
	}
	if cfg.Costs == (decode.CostModel{}) {
		cfg.Costs = decode.DefaultCosts
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BurnNanosPerUnit > 0 && cfg.LatencyNanosPerUnit > 0 {
		return nil, errors.New("pipeline: BurnNanosPerUnit and LatencyNanosPerUnit are exclusive decode models")
	}
	if cfg.MaxInFlight < 0 {
		return nil, fmt.Errorf("pipeline: MaxInFlight must be non-negative, got %d", cfg.MaxInFlight)
	}
	if cfg.MaxInFlight == 0 {
		cfg.MaxInFlight = 1
	}
	if cfg.FreshFeedback && !cfg.Pipelined {
		return nil, errors.New("pipeline: FreshFeedback requires Pipelined")
	}
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("pipeline: Deadline must be non-negative, got %v", cfg.Deadline)
	}
	if cfg.Deadline > 0 && !cfg.Pipelined {
		return nil, errors.New("pipeline: Deadline requires Pipelined (the sequential engine settles rounds synchronously)")
	}
	return &Engine{cfg: cfg, stop: make(chan struct{})}, nil
}

// Close asks a running engine to stop at the next round boundary. Run then
// drains its in-flight rounds — outstanding decodes complete, the collector
// settles and acks them, and the decode pool joins — before returning its
// partial report. Close is idempotent, safe from any goroutine, and a no-op
// after Run has returned.
func (e *Engine) Close() {
	e.closeOnce.Do(func() { close(e.stop) })
}

// closed reports whether Close has been called.
func (e *Engine) closed() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

// Fleet exposes the per-stream inference monitors (nil before the first
// round). Read it only after Run returns.
func (e *Engine) Fleet() *infer.Fleet { return e.fleet }

// EnsureFleet builds the per-stream inference monitors for m streams before
// the first round, and returns them. The run loops normally build the fleet
// lazily from the first round's width; a cluster worker that must import
// migrated monitor state before its engine sees a round calls this first.
// Idempotent once built (m is then ignored).
func (e *Engine) EnsureFleet(m int) *infer.Fleet {
	if e.fleet == nil {
		e.fleet = e.newFleet(m)
	}
	return e.fleet
}

// newDecoder builds the configured decode model, wrapped by the fault hook
// and the retry layer (innermost to outermost: model → WrapDecoder → retry).
func (e *Engine) newDecoder() decode.PacketDecoder {
	var d decode.PacketDecoder
	switch {
	case e.cfg.BurnNanosPerUnit > 0:
		d = decode.NewBurnDecoder(e.cfg.Costs, e.cfg.BurnNanosPerUnit)
	case e.cfg.LatencyNanosPerUnit > 0:
		d = decode.NewLatencyDecoder(e.cfg.Costs, e.cfg.LatencyNanosPerUnit)
	default:
		d = decode.NewDecoder(e.cfg.Costs)
	}
	if e.cfg.WrapDecoder != nil {
		d = e.cfg.WrapDecoder(d)
	}
	if !e.cfg.Retry.Zero() {
		d = decode.NewRetrier(d, e.cfg.Retry)
	}
	return d
}

// feedbackExt routes a settled round's ack to the gate, carrying the decode
// failure mask when the gate understands it (a fault-aware *core.Gate);
// baselines fall back to the plain Feedback protocol.
func feedbackExt(g core.Decider, sel []int, necessary, failed []bool) error {
	if ext, ok := g.(interface {
		FeedbackExt([]int, []bool, []bool) error
	}); ok {
		return ext.FeedbackExt(sel, necessary, failed)
	}
	return g.Feedback(sel, necessary)
}

// feedbackFull is feedbackExt carrying deadline-abort deferral flags when
// present: an overload-aware gate keeps deferred slots out of its learned
// state; older gates degrade to the failure/plain protocols (deferred slots
// then carry necessary=false, which is the pre-overload behavior).
func feedbackFull(g core.Decider, sel []int, necessary, failed, deferred []bool) error {
	if deferred != nil {
		if full, ok := g.(interface {
			FeedbackFull([]int, []bool, []bool, []bool) error
		}); ok {
			return full.FeedbackFull(sel, necessary, failed, deferred)
		}
	}
	return feedbackExt(g, sel, necessary, failed)
}

// newFleet builds the per-stream inference monitors for m streams.
func (e *Engine) newFleet(m int) *infer.Fleet {
	if len(e.cfg.Tasks) > 0 {
		return infer.NewFleetOf(e.cfg.Tasks, m)
	}
	return infer.NewFleet(e.cfg.Task, m)
}

// raiseGatePending lifts the gate's pending-round bound to the engine's
// feedback lag, when the gate supports multi-pending operation.
func (e *Engine) raiseGatePending() {
	if g, ok := e.cfg.Gate.(interface{ SetMaxPending(int) }); ok && e.cfg.MaxInFlight > 1 {
		g.SetMaxPending(e.cfg.MaxInFlight)
	}
}

// Run processes up to maxRounds rounds (0 = until the source ends).
func (e *Engine) Run(maxRounds int) (Report, error) {
	start := time.Now()
	var rep Report
	var err error
	if e.cfg.Pipelined {
		rep, err = e.runPipelined(maxRounds)
	} else {
		rep, err = e.runSequential(maxRounds)
	}
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.DecodedFPS = float64(rep.Decoded) / rep.Elapsed.Seconds()
	}
	if rep.Packets > 0 {
		rep.GateFilterRate = 1 - float64(rep.Decoded)/float64(rep.Packets)
	}
	rep.Accuracy = -1
	if e.fleet != nil && e.sawTruth {
		if r, _, _, _ := e.fleet.Totals(); r > 0 {
			rep.Accuracy = e.fleet.Accuracy()
		}
	}
	rep.Overload = e.cfg.Overload.Snapshot()
	return rep, err
}

// pendingAck is one settled round whose feedback the lag schedule has not
// yet released to the gate.
type pendingAck struct {
	sel       []int
	necessary []bool
	failed    []bool
}

// runSequential executes rounds one at a time in the calling goroutine,
// deferring each round's feedback by the lag k. It is the reference
// implementation of the engine's decision semantics.
func (e *Engine) runSequential(maxRounds int) (Report, error) {
	var rep Report
	decoder := e.newDecoder()
	e.raiseGatePending()
	k := e.cfg.MaxInFlight
	// Round-scoped scratch, reused across rounds: the ack FIFO (ring via
	// head index), the decode result slices, and the worker semaphore.
	var acks []pendingAck
	ackHead := 0
	release := func() error {
		a := acks[ackHead]
		acks[ackHead] = pendingAck{}
		ackHead++
		if ackHead == len(acks) {
			acks = acks[:0]
			ackHead = 0
		}
		if err := feedbackExt(e.cfg.Gate, a.sel, a.necessary, a.failed); err != nil {
			return fmt.Errorf("pipeline: feedback: %w", err)
		}
		e.putMask(a.necessary)
		return nil
	}
	var frames []decode.Frame
	var errs []error
	sem := make(chan struct{}, e.cfg.Workers)
	sparseSrc, _ := e.cfg.Source.(SparseRoundSource)
	if e.cfg.DenseRounds {
		sparseSrc = nil
	}

	for rounds := 0; maxRounds == 0 || rounds < maxRounds; rounds++ {
		if e.closed() {
			break
		}
		// Release feedback due under the lag schedule: Decide(t) must
		// observe rounds 0..t−k. This runs before NextRound so a blocking
		// source (a cluster worker awaiting its round frame) blocks with
		// the gate quiescent — no pending feedback — which is what lets
		// stream state migrate between rounds. The decisions are
		// unchanged: NextRound never touches the gate, so Decide(t) sees
		// exactly the same released set either side of it.
		for len(acks)-ackHead >= k {
			if err := release(); err != nil {
				return rep, err
			}
		}
		var pkts []*codec.Packet
		var rnd *codec.Round
		var err error
		if sparseSrc != nil {
			rnd, err = sparseSrc.NextRoundSparse()
		} else {
			pkts, err = e.cfg.Source.NextRound()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("pipeline: source: %w", err)
		}
		if e.fleet == nil {
			if rnd != nil {
				e.fleet = e.newFleet(rnd.M)
			} else {
				e.fleet = e.newFleet(len(pkts))
			}
		}

		var nonIdle []int32
		if rnd == nil {
			if rl, ok := e.cfg.Source.(RoundLister); ok {
				nonIdle = rl.NonIdle()
			}
		}
		metrics.StageEnter(e.cfg.Stages.GateStage())
		t0 := time.Now()
		var sel []int
		if rnd != nil {
			sel, err = e.decideSparse(rnd)
		} else {
			sel, err = e.decide(pkts, nonIdle)
		}
		metrics.StageExit(e.cfg.Stages.GateStage(), time.Since(t0).Nanoseconds())
		if err != nil {
			return rep, fmt.Errorf("pipeline: gate: %w", err)
		}
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(int64(rounds), append([]int(nil), sel...))
		}

		// Decode selected packets in parallel.
		metrics.StageEnter(e.cfg.Stages.DecodeStage())
		t1 := time.Now()
		if cap(frames) < len(sel) {
			frames = make([]decode.Frame, len(sel))
			errs = make([]error, len(sel))
		}
		frames = frames[:len(sel)]
		errs = errs[:len(sel)]
		for i := range errs {
			frames[i] = decode.Frame{}
			errs[i] = nil
		}
		var wg sync.WaitGroup
		for k, i := range sel {
			var p *codec.Packet
			if rnd != nil {
				p = rnd.Get(int32(i))
			} else {
				p = pkts[i]
			}
			wg.Add(1)
			go func(k int, p *codec.Packet) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				frames[k], errs[k] = decoder.Decode(p)
			}(k, p)
		}
		wg.Wait()
		metrics.StageExit(e.cfg.Stages.DecodeStage(), time.Since(t1).Nanoseconds())
		var failed []bool
		for k, err := range errs {
			if err != nil {
				if failed == nil {
					failed = make([]bool, len(sel))
				}
				failed[k] = true
			}
		}

		// Filter + inference + accounting, sequential (cheap relative to
		// decode; the fleet monitors are not concurrency-safe).
		metrics.StageEnter(e.cfg.Stages.InferStage())
		t2 := time.Now()
		var necessary []bool
		if rnd != nil {
			necessary = e.settleRoundSparse(&rep, rnd.IDs, rnd.Pkts, nil, sel, frames, failed, nil, e.cfg.Source.Truth)
		} else {
			necessary = e.settleRound(&rep, pkts, sel, frames, failed, nil, e.cfg.Source.Truth)
		}
		metrics.StageExit(e.cfg.Stages.InferStage(), time.Since(t2).Nanoseconds())
		if e.cfg.Governor != nil {
			// Sequential rounds never queue: depth is the feedback backlog,
			// latency spans gate entry through settle.
			e.cfg.Governor.Observe(time.Since(t0), len(acks)-ackHead)
		}
		if ackHead > 0 && len(acks) == cap(acks) {
			n := copy(acks, acks[ackHead:])
			for j := n; j < len(acks); j++ {
				acks[j] = pendingAck{}
			}
			acks = acks[:n]
			ackHead = 0
		}
		acks = append(acks, pendingAck{sel: sel, necessary: necessary, failed: failed})
	}
	for len(acks)-ackHead > 0 {
		if err := release(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// settleRound applies the frame filter, inference, and report accounting
// for one decoded round. frames[k] holds the decoded frame for stream
// sel[k]; failed[k] (nil = none) marks selections whose decode never
// produced a frame; deferred[k] (nil = none) marks selections abandoned by
// a round deadline; truth reads the (possibly captured) ground truth for a
// stream. It returns the per-selection redundancy feedback.
//
// Failed selections settle conservatively: the budget was spent but no
// content was seen, so the slot reports necessary feedback (the gate must
// not learn "redundant" from a packet nobody decoded) and the stream's
// monitor observes a skip, exactly as if the gate had not selected it.
// Deferred selections also observe a skip but settle with no feedback
// verdict at all — the gate keeps them out of its learned state — and are
// excluded from the Decoded count (nothing was decoded).
//
// The returned mask comes from the engine's recycler; the feedback release
// site hands it back via putMask once the gate has consumed it.
func (e *Engine) settleRound(rep *Report, pkts []*codec.Packet, sel []int, frames []decode.Frame, failed, deferred []bool, truth func(int) (codec.Scene, bool)) []bool {
	necessary := e.getMask(len(sel))
	if cap(e.selMask) < len(pkts) {
		e.selMask = make([]bool, len(pkts))
	}
	isSel := e.selMask[:len(pkts)]
	for i := range isSel {
		isSel[i] = false
	}
	for _, i := range sel {
		isSel[i] = true
	}
	aborted := e.settleSelected(rep, necessary, sel, frames, failed, deferred, truth)
	for i, p := range pkts {
		if p == nil || isSel[i] {
			continue
		}
		if t, ok := truth(i); ok {
			e.sawTruth = true
			e.fleet.Stream(i).ObserveSkipped(t)
		}
		rep.Packets++
	}
	rep.Packets += int64(len(sel))
	rep.Decoded += int64(len(sel)) - aborted
	rep.DeadlineAborted += aborted
	e.cfg.Overload.AddAborted(aborted)
	rep.Rounds++
	return necessary
}

// settleRoundSparse is settleRound for a sparse round (ids + parallel
// packets): the skipped-stream walk visits only the round's active ids and
// the selection mask is set and cleared per selection, so settling costs
// O(active) instead of O(m). Identical accounting, identical feedback.
func (e *Engine) settleRoundSparse(rep *Report, ids []int32, pkts []*codec.Packet, truths []truthVal, sel []int, frames []decode.Frame, failed, deferred []bool, truth func(int) (codec.Scene, bool)) []bool {
	necessary := e.getMask(len(sel))
	m := 0
	if n := len(ids); n > 0 {
		m = int(ids[n-1]) + 1
	}
	if cap(e.selMask) < m {
		grown := make([]bool, m)
		e.selMask = grown
	}
	// selMask is all-false between rounds: set exactly the selections, clear
	// them again below.
	isSel := e.selMask[:cap(e.selMask)]
	for _, i := range sel {
		isSel[i] = true
	}
	aborted := e.settleSelected(rep, necessary, sel, frames, failed, deferred, truth)
	// Non-selected actives read their captured truth positionally — the
	// parallel truths slice — instead of re-searching the id list per
	// stream. The sequential engine settles straight from the source
	// (truths == nil) and falls back to the by-id lookup.
	for k, id := range ids {
		if pkts[k] == nil || isSel[id] {
			continue
		}
		var tv truthVal
		if truths != nil {
			tv = truths[k]
		} else {
			tv.scene, tv.ok = truth(int(id))
		}
		if tv.ok {
			e.sawTruth = true
			e.fleet.Stream(int(id)).ObserveSkipped(tv.scene)
		}
		rep.Packets++
	}
	for _, i := range sel {
		isSel[i] = false
	}
	rep.Packets += int64(len(sel))
	rep.Decoded += int64(len(sel)) - aborted
	rep.DeadlineAborted += aborted
	e.cfg.Overload.AddAborted(aborted)
	rep.Rounds++
	return necessary
}

// settleSelected settles the selected slots of one round — deferred, failed,
// filtered, or inferred — filling the per-selection feedback mask. Shared by
// the dense and sparse settle paths; it never touches the round's packet
// array.
func (e *Engine) settleSelected(rep *Report, necessary []bool, sel []int, frames []decode.Frame, failed, deferred []bool, truth func(int) (codec.Scene, bool)) int64 {
	var aborted int64
	for k, i := range sel {
		if deferred != nil && deferred[k] {
			aborted++
			if t, ok := truth(i); ok {
				e.sawTruth = true
				e.fleet.Stream(i).ObserveSkipped(t)
			}
			continue
		}
		if failed != nil && failed[k] {
			necessary[k] = true
			rep.DecodeFailed++
			if t, ok := truth(i); ok {
				e.sawTruth = true
				e.fleet.Stream(i).ObserveSkipped(t)
			}
			continue
		}
		scene := frames[k].Scene
		t, ok := truth(i)
		if ok {
			e.sawTruth = true
		} else {
			t = scene // the decoded content is the best truth we have
		}
		if e.cfg.Filter != nil && !e.cfg.Filter.Pass(scene) {
			rep.Filtered++
			// A filtered frame is treated as redundant feedback: the
			// filter judged its content unchanged.
			e.fleet.Stream(i).ObserveSkipped(t)
			continue
		}
		necessary[k] = e.fleet.Stream(i).ObserveDecoded(t, scene)
		rep.Inferred++
		if necessary[k] {
			rep.NecessaryDecoded++
		}
	}
	return aborted
}
