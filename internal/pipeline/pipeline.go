// Package pipeline assembles the end-to-end concurrent video inference
// pipeline of Fig 1 with PacketGame plugged between parser and decoder:
// a round source (local fleet, PGSP network client, or PGV files) feeds the
// gate; selected packets are decoded on a worker pool; decoded frames pass
// an optional frame filter and the inference task; redundancy feedback
// closes the loop.
package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/filter"
	"packetgame/internal/infer"
)

// RoundSource yields one round of packets per call: a slice indexed by
// stream ID (nil entries = idle). It returns io.EOF when exhausted.
type RoundSource interface {
	NextRound() ([]*codec.Packet, error)
	// Truth returns the ground-truth scene for stream i's current-round
	// packet and whether ground truth is available (network sources
	// cannot know the content of packets that were never decoded).
	Truth(i int) (codec.Scene, bool)
}

// Config parameterizes an Engine.
type Config struct {
	// Source supplies rounds.
	Source RoundSource
	// Gate is the gating policy (a *core.Gate or baseline).
	Gate core.Decider
	// Task is the inference workload.
	Task infer.Task
	// Costs is the decode cost model (default decode.DefaultCosts).
	Costs decode.CostModel
	// Workers is the decode worker count (default 4).
	Workers int
	// BurnNanosPerUnit makes decoding burn CPU per cost unit (wall-clock
	// realism for concurrency benchmarks; 0 disables).
	BurnNanosPerUnit int64
	// Filter optionally drops decoded frames before inference (the
	// on-server frame filter stage; nil disables).
	Filter filter.FrameFilter
}

// Report summarizes an Engine run.
type Report struct {
	Rounds   int64
	Packets  int64
	Decoded  int64
	Filtered int64 // decoded frames dropped by the frame filter
	Inferred int64
	// NecessaryDecoded counts decoded frames whose inference was necessary.
	NecessaryDecoded int64
	// Accuracy is the mean emitted-result accuracy over rounds with ground
	// truth (−1 when the source provides no truth).
	Accuracy float64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// DecodedFPS is Decoded/Elapsed.
	DecodedFPS float64
	// GateFilterRate is 1 − Decoded/Packets.
	GateFilterRate float64
}

// Engine runs the pipeline.
type Engine struct {
	cfg      Config
	fleet    *infer.Fleet
	sawTruth bool
}

// New creates an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Source == nil || cfg.Gate == nil || cfg.Task == nil {
		return nil, errors.New("pipeline: Source, Gate, and Task are required")
	}
	if cfg.Costs == (decode.CostModel{}) {
		cfg.Costs = decode.DefaultCosts
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	return &Engine{cfg: cfg}, nil
}

// Run processes up to maxRounds rounds (0 = until the source ends).
func (e *Engine) Run(maxRounds int) (Report, error) {
	var rep Report
	start := time.Now()

	var decoder interface {
		Decode(*codec.Packet) (decode.Frame, error)
	}
	if e.cfg.BurnNanosPerUnit > 0 {
		decoder = decode.NewBurnDecoder(e.cfg.Costs, e.cfg.BurnNanosPerUnit)
	} else {
		decoder = decode.NewDecoder(e.cfg.Costs)
	}

	for rounds := 0; maxRounds == 0 || rounds < maxRounds; rounds++ {
		pkts, err := e.cfg.Source.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rep, fmt.Errorf("pipeline: source: %w", err)
		}
		if e.fleet == nil {
			e.fleet = infer.NewFleet(e.cfg.Task, len(pkts))
		}
		sel, err := e.cfg.Gate.Decide(pkts)
		if err != nil {
			return rep, fmt.Errorf("pipeline: gate: %w", err)
		}

		// Decode selected packets in parallel.
		frames := make([]decode.Frame, len(sel))
		errs := make([]error, len(sel))
		var wg sync.WaitGroup
		sem := make(chan struct{}, e.cfg.Workers)
		for k, i := range sel {
			wg.Add(1)
			go func(k, i int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				frames[k], errs[k] = decoder.Decode(pkts[i])
			}(k, i)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return rep, fmt.Errorf("pipeline: decode: %w", err)
			}
		}

		// Filter + inference + feedback, sequential (cheap relative to
		// decode; the fleet monitors are not concurrency-safe).
		necessary := make([]bool, len(sel))
		isSel := make(map[int]bool, len(sel))
		for k, i := range sel {
			isSel[i] = true
			scene := frames[k].Scene
			truth, ok := e.cfg.Source.Truth(i)
			if ok {
				e.sawTruth = true
			} else {
				truth = scene // the decoded content is the best truth we have
			}
			if e.cfg.Filter != nil && !e.cfg.Filter.Pass(scene) {
				rep.Filtered++
				// A filtered frame is treated as redundant feedback: the
				// filter judged its content unchanged.
				e.fleet.Stream(i).ObserveSkipped(truth)
				continue
			}
			necessary[k] = e.fleet.Stream(i).ObserveDecoded(truth, scene)
			rep.Inferred++
			if necessary[k] {
				rep.NecessaryDecoded++
			}
		}
		for i, p := range pkts {
			if p == nil || isSel[i] {
				continue
			}
			if truth, ok := e.cfg.Source.Truth(i); ok {
				e.sawTruth = true
				e.fleet.Stream(i).ObserveSkipped(truth)
			}
			rep.Packets++
		}
		rep.Packets += int64(len(sel))
		rep.Decoded += int64(len(sel))
		rep.Rounds++
		if err := e.cfg.Gate.Feedback(sel, necessary); err != nil {
			return rep, fmt.Errorf("pipeline: feedback: %w", err)
		}
	}
	rep.Elapsed = time.Since(start)
	if rep.Elapsed > 0 {
		rep.DecodedFPS = float64(rep.Decoded) / rep.Elapsed.Seconds()
	}
	if rep.Packets > 0 {
		rep.GateFilterRate = 1 - float64(rep.Decoded)/float64(rep.Packets)
	}
	rep.Accuracy = -1
	if e.fleet != nil && e.sawTruth {
		if r, _, _, _ := e.fleet.Totals(); r > 0 {
			rep.Accuracy = e.fleet.Accuracy()
		}
	}
	return rep, nil
}
