package pipeline

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/metrics"
)

// The pipelined engine splits a round's lifecycle across three actors:
//
//	gate loop (caller's goroutine)
//	    NextRound → Decide → publish roundWork → submit decode jobs,
//	    and apply due feedback under the lag-k schedule;
//	decode pool (Workers goroutines)
//	    decode tagged jobs, emit completions in any order;
//	collector (one goroutine)
//	    reassemble completions per round, settle rounds strictly in round
//	    order (filter/infer/accounting), and ack each settled round.
//
// Feedback ordering: every settled round produces exactly one ack, and the
// collector settles rounds in ascending round order, so acks reach the gate
// in decision order — the UCB reward windows never observe out-of-order
// rewards. In the default deterministic mode the acks travel back to the
// gate loop, which applies Feedback only when the lag schedule demands it
// (before Decide(t), rounds ≤ t−k are acked). With FreshFeedback the
// collector applies Feedback itself the moment a round settles, giving the
// estimator the freshest state at the cost of timing-dependent decisions.
//
// Liveness: acks and tokens are buffered beyond the in-flight bound, so the
// collector never blocks sending; the collector therefore always drains
// pool completions, so the pool never blocks; rounds with decode errors are
// still acked (with the error attached), so the gate loop's drain always
// terminates.

// truthVal is ground truth captured at gate time, so settling a round later
// does not race the source's per-round truth state.
type truthVal struct {
	scene codec.Scene
	ok    bool
}

// roundWork is one in-flight round: the gate's decision plus everything the
// collector needs to settle it. cancel is non-nil only under a round
// deadline: the collector sets it when the round is abandoned, and queued
// decode jobs carrying it short-circuit with decode.ErrAborted.
//
// Two representations share the struct: dense rounds (ids == nil) index
// pkts/truth by stream id, exactly the pre-sparse layout; sparse rounds
// carry the active id list with pkts/truth packed parallel to it. Sparse
// roundWorks recycle through the engine's free list — ids, pkts, truth, and
// the settle-time frames scratch all reach steady-state capacity — so an
// in-flight round costs O(active) allocations, not O(m).
type roundWork struct {
	round    int64
	m        int     // fleet width the round was drawn from
	ids      []int32 // nil = dense round
	pkts     []*codec.Packet
	truth    []truthVal
	frames   []decode.Frame // sparse settle scratch (collector-owned)
	sel      []int
	enqueued time.Time
	cancel   *atomic.Bool
}

// pktOf returns stream i's packet in either representation.
func (rw *roundWork) pktOf(i int) *codec.Packet {
	if rw.ids == nil {
		return rw.pkts[i]
	}
	if k := findID(rw.ids, int32(i)); k >= 0 {
		return rw.pkts[k]
	}
	return nil
}

// truthOf returns stream i's captured truth in either representation.
func (rw *roundWork) truthOf(i int) truthVal {
	if rw.ids == nil {
		return rw.truth[i]
	}
	if k := findID(rw.ids, int32(i)); k >= 0 {
		return rw.truth[k]
	}
	return truthVal{}
}

// findID binary-searches a strictly-ascending id list.
func findID(ids []int32, id int32) int {
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(ids) && ids[lo] == id {
		return lo
	}
	return -1
}

// getRW pulls a recycled roundWork (sparse path only); putRW returns one
// after settle. The sel slice is never recycled here — it travels onward in
// the round's ack.
func (e *Engine) getRW() *roundWork {
	e.rwMu.Lock()
	defer e.rwMu.Unlock()
	if n := len(e.rwFree); n > 0 {
		rw := e.rwFree[n-1]
		e.rwFree = e.rwFree[:n-1]
		return rw
	}
	return &roundWork{}
}

func (e *Engine) putRW(rw *roundWork) {
	rw.ids = rw.ids[:0]
	for i := range rw.pkts {
		rw.pkts[i] = nil // drop packet refs so the pool does not pin payloads
	}
	rw.pkts = rw.pkts[:0]
	rw.truth = rw.truth[:0]
	rw.frames = rw.frames[:0]
	rw.sel = nil
	rw.cancel = nil
	e.rwMu.Lock()
	e.rwFree = append(e.rwFree, rw)
	e.rwMu.Unlock()
}

// roundAck is one settled round's redundancy feedback, traveling from the
// collector back to the gate loop. failed marks selections whose decode
// errored out (nil = clean round); such rounds still settle — partial
// failures degrade feedback, they don't abort the run. deferred marks
// selections abandoned by a deadline abort (nil = none): those slots carry
// no verdict and the gate keeps them out of its learned state.
type roundAck struct {
	sel       []int
	necessary []bool
	failed    []bool
	deferred  []bool
}

// runPipelined executes rounds through the staged engine with up to
// MaxInFlight rounds overlapping.
func (e *Engine) runPipelined(maxRounds int) (Report, error) {
	k := e.cfg.MaxInFlight
	e.raiseGatePending()
	pool := decode.NewTaggedPool(e.newDecoder(), e.cfg.Workers)
	fresh := e.cfg.FreshFeedback

	roundsCh := make(chan *roundWork, k+2)
	acks := make(chan roundAck, k+2)
	tokens := make(chan struct{}, k)
	for i := 0; i < k; i++ {
		tokens <- struct{}{}
	}
	c := &collector{
		engine: e,
		comps:  pool.Completions(),
		rounds: roundsCh,
		acks:   acks,
		tokens: tokens,
		fresh:  fresh,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.run()
	}()

	var runErr error
	var nonIdle []int32         // per-round scratch, rebuilt while capturing truth
	var jobPkts []*codec.Packet // per-round scratch for decode-job submission
	sparseSrc, _ := e.cfg.Source.(SparseRoundSource)
	if e.cfg.DenseRounds {
		sparseSrc = nil
	}
	inflight := 0
	applyDue := func(min int) {
		for inflight > min && runErr == nil {
			a := <-acks
			inflight--
			if err := feedbackFull(e.cfg.Gate, a.sel, a.necessary, a.failed, a.deferred); err != nil {
				runErr = fmt.Errorf("pipeline: feedback: %w", err)
			}
			e.putMask(a.necessary)
		}
	}

	for next := int64(0); maxRounds == 0 || next < int64(maxRounds); next++ {
		if e.closed() {
			break
		}
		var pkts []*codec.Packet
		var rnd *codec.Round
		var err error
		if sparseSrc != nil {
			rnd, err = sparseSrc.NextRoundSparse()
		} else {
			pkts, err = e.cfg.Source.NextRound()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			runErr = fmt.Errorf("pipeline: source: %w", err)
			break
		}
		// Admission control: at most k rounds in flight. Deterministic
		// mode applies the feedback of rounds ≤ next−k here, on the
		// deciding goroutine; fresh mode just takes an in-flight token
		// (the collector applied feedback already).
		if fresh {
			<-tokens
		} else {
			applyDue(k - 1)
			if runErr != nil {
				break
			}
		}

		// The source may reuse its packet and truth storage each round, so
		// copy the round and capture truth before overlapping with the next
		// NextRound call. Sparse rounds copy into a recycled roundWork —
		// three O(active) appends; dense rounds keep the pre-sparse O(m)
		// copies. The non-idle list feeds the gate's churn-scaled entry.
		var rw *roundWork
		var sel []int
		if rnd != nil {
			rw = e.getRW()
			rw.round = next
			rw.m = rnd.M
			rw.ids = append(rw.ids[:0], rnd.IDs...)
			rw.pkts = append(rw.pkts[:0], rnd.Pkts...)
			rw.truth = rw.truth[:0]
			for _, id := range rnd.IDs {
				s, ok := e.cfg.Source.Truth(int(id))
				rw.truth = append(rw.truth, truthVal{scene: s, ok: ok})
			}

			metrics.StageEnter(e.cfg.Stages.GateStage())
			t0 := time.Now()
			sel, err = e.decideSparse(rnd)
			metrics.StageExit(e.cfg.Stages.GateStage(), time.Since(t0).Nanoseconds())
		} else {
			cp := append([]*codec.Packet(nil), pkts...)
			truth := make([]truthVal, len(pkts))
			nonIdle = nonIdle[:0]
			for i, p := range cp {
				if p == nil {
					continue
				}
				nonIdle = append(nonIdle, int32(i))
				s, ok := e.cfg.Source.Truth(i)
				truth[i] = truthVal{scene: s, ok: ok}
			}
			rw = &roundWork{round: next, m: len(cp), pkts: cp, truth: truth}

			metrics.StageEnter(e.cfg.Stages.GateStage())
			t0 := time.Now()
			sel, err = e.decide(cp, nonIdle)
			metrics.StageExit(e.cfg.Stages.GateStage(), time.Since(t0).Nanoseconds())
		}
		if err != nil {
			runErr = fmt.Errorf("pipeline: gate: %w", err)
			if fresh {
				tokens <- struct{}{} // round never entered flight
			}
			break
		}
		if e.cfg.OnRound != nil {
			e.cfg.OnRound(next, append([]int(nil), sel...))
		}

		rw.sel = sel
		rw.enqueued = time.Now()
		var cancel *atomic.Bool
		if e.cfg.Deadline > 0 {
			cancel = new(atomic.Bool)
			rw.cancel = cancel
		}
		// Capture job packets before publishing rw: a deadline abort can
		// settle and recycle a sparse roundWork while this loop is still
		// submitting, so jobs must not read rw afterwards.
		jobPkts = jobPkts[:0]
		for _, i := range sel {
			jobPkts = append(jobPkts, rw.pktOf(i))
		}
		metrics.StageEnter(e.cfg.Stages.DecodeStage())
		roundsCh <- rw
		for slot := range sel {
			pool.Submit(decode.Job{Round: next, Slot: slot, Pkt: jobPkts[slot], Cancel: cancel})
		}
		inflight++
	}

	// Shutdown: stop the stages, then drain outstanding acks in order.
	pool.Close()
	close(roundsCh)
	if !fresh {
		applyDue(0)
		for inflight > 0 { // error path: drain without applying
			a := <-acks
			e.putMask(a.necessary)
			inflight--
		}
	}
	<-done
	if runErr == nil {
		runErr = c.err
	}
	return c.rep, runErr
}

// pendingCollect accumulates one round's completions until it can settle.
type pendingCollect struct {
	work  *roundWork
	comps []decode.Completion
}

func (p *pendingCollect) ready() bool {
	return p.work != nil && len(p.comps) == len(p.work.sel)
}

// collector reassembles decode completions into rounds and settles them
// strictly in round order. It is the sole owner of the inference fleet and
// the run report while the pipeline is live.
type collector struct {
	engine *Engine
	comps  <-chan decode.Completion
	rounds <-chan *roundWork
	acks   chan<- roundAck
	tokens chan<- struct{}
	fresh  bool

	rep Report
	err error
}

func (c *collector) run() {
	pending := map[int64]*pendingCollect{}
	next := int64(0)
	roundsCh, comps := c.rounds, c.comps
	get := func(round int64) *pendingCollect {
		st := pending[round]
		if st == nil {
			st = &pendingCollect{}
			pending[round] = st
		}
		return st
	}

	// Deadline machinery: one timer tracks the head round only. Rounds
	// settle strictly in order, so the head is always the first to expire;
	// rearm repoints the timer whenever the head changes.
	deadline := c.engine.cfg.Deadline
	var timer *time.Timer
	var timerC <-chan time.Time
	rearm := func() {
		if deadline <= 0 {
			return
		}
		if timer != nil && timerC != nil && !timer.Stop() {
			<-timer.C // drain: only this goroutine receives from timer.C
		}
		timerC = nil
		st := pending[next]
		if st == nil || st.work == nil {
			return
		}
		d := time.Until(st.work.enqueued.Add(deadline))
		if timer == nil {
			timer = time.NewTimer(d)
		} else {
			timer.Reset(d)
		}
		timerC = timer.C
	}
	defer func() {
		if timer != nil && timerC != nil {
			timer.Stop()
		}
	}()

	for roundsCh != nil || comps != nil {
		select {
		case rw, ok := <-roundsCh:
			if !ok {
				roundsCh = nil
				break
			}
			get(rw.round).work = rw
		case comp, ok := <-comps:
			if !ok {
				comps = nil
				break
			}
			if comp.Round < next {
				// Straggler of a deadline-settled round: its fate was
				// already acked as deferred. Dropping it here (instead of
				// get()) keeps the pending map from resurrecting the round.
				break
			}
			st := get(comp.Round)
			st.comps = append(st.comps, comp)
		case <-timerC:
			timerC = nil
			st := pending[next]
			if st != nil && st.work != nil && !st.ready() {
				// The head round missed its deadline: cancel whatever is
				// still queued and settle now with the frames in hand.
				if st.work.cancel != nil {
					st.work.cancel.Store(true)
				}
				delete(pending, next)
				next++
				c.settle(st, true, len(pending))
			}
		}
		for {
			st := pending[next]
			if st == nil || !st.ready() {
				break
			}
			delete(pending, next)
			next++
			c.settle(st, false, len(pending))
		}
		rearm()
	}
}

// settle runs filter/infer/accounting for one collected round and acks it.
// Slots whose decode errored settle with conservative feedback and a
// failure flag — partial-failure rounds complete normally, so the gate
// loop's drain always terminates and poison pills never wedge the pipeline.
//
// aborted marks a deadline-settled round: completions the round never
// received, plus jobs the pool short-circuited with decode.ErrAborted,
// settle as deferred — no feedback verdict, the stream just observes a
// skip. depth is the number of rounds still pending behind this one, fed
// to the overload governor as its queue-pressure signal.
func (c *collector) settle(st *pendingCollect, aborted bool, depth int) {
	e := c.engine
	rw := st.work
	metrics.StageExit(e.cfg.Stages.DecodeStage(), time.Since(rw.enqueued).Nanoseconds())
	if e.fleet == nil {
		e.fleet = e.newFleet(rw.m)
	}
	var frames []decode.Frame
	if rw.ids != nil {
		// Sparse rounds settle from the roundWork's recycled scratch.
		if cap(rw.frames) < len(rw.sel) {
			rw.frames = make([]decode.Frame, len(rw.sel))
		}
		frames = rw.frames[:len(rw.sel)]
		for i := range frames {
			frames[i] = decode.Frame{}
		}
	} else {
		frames = make([]decode.Frame, len(rw.sel))
	}
	var failed, deferred []bool
	if aborted {
		// Every slot starts deferred; slots with a real completion below
		// flip back to their actual outcome.
		deferred = make([]bool, len(rw.sel))
		for k := range deferred {
			deferred[k] = true
		}
	}
	for _, comp := range st.comps {
		if errors.Is(comp.Err, decode.ErrAborted) {
			if deferred == nil {
				deferred = make([]bool, len(rw.sel))
			}
			deferred[comp.Slot] = true
			continue
		}
		if aborted {
			deferred[comp.Slot] = false
		}
		if comp.Err != nil {
			if failed == nil {
				failed = make([]bool, len(rw.sel))
			}
			failed[comp.Slot] = true
			continue
		}
		frames[comp.Slot] = comp.Frame
	}
	metrics.StageEnter(e.cfg.Stages.InferStage())
	t0 := time.Now()
	truth := func(i int) (codec.Scene, bool) {
		tv := rw.truthOf(i)
		return tv.scene, tv.ok
	}
	var necessary []bool
	if rw.ids != nil {
		necessary = e.settleRoundSparse(&c.rep, rw.ids, rw.pkts, rw.truth, rw.sel, frames, failed, deferred, truth)
	} else {
		necessary = e.settleRound(&c.rep, rw.pkts, rw.sel, frames, failed, deferred, truth)
	}
	metrics.StageExit(e.cfg.Stages.InferStage(), time.Since(t0).Nanoseconds())
	if e.cfg.Governor != nil {
		e.cfg.Governor.Observe(time.Since(rw.enqueued), depth)
	}
	a := roundAck{sel: rw.sel, necessary: necessary, failed: failed, deferred: deferred}
	if rw.ids != nil {
		e.putRW(rw) // sel travels on in the ack; buffers recycle now
	}
	if c.fresh {
		if err := feedbackFull(e.cfg.Gate, a.sel, a.necessary, a.failed, a.deferred); err != nil && c.err == nil {
			c.err = fmt.Errorf("pipeline: feedback: %w", err)
		}
		e.putMask(a.necessary)
		c.tokens <- struct{}{}
	} else {
		c.acks <- a
	}
}
