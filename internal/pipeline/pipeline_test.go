package pipeline

import (
	"bytes"
	"io"
	"net"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/container"
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/filter"
	"packetgame/internal/infer"
	"packetgame/internal/stream"
)

func mkFleet(m int, seed int64) []*codec.Stream {
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(
			codec.SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			codec.EncoderConfig{StreamID: i, GOPSize: 10},
			seed+int64(i)*31)
	}
	return streams
}

func mkGate(t *testing.T, m int, budget float64) *core.Gate {
	t.Helper()
	g, err := core.NewGate(core.Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must error")
	}
}

func TestEngineLocalRun(t *testing.T) {
	const m, rounds = 8, 200
	src := NewLocalSource(mkFleet(m, 1), rounds)
	eng, err := New(Config{Source: src, Gate: mkGate(t, m, 4), Task: infer.PersonCounting{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", rep.Rounds, rounds)
	}
	if rep.Packets != m*rounds {
		t.Errorf("packets = %d, want %d", rep.Packets, m*rounds)
	}
	if rep.Decoded == 0 || rep.Decoded >= rep.Packets {
		t.Errorf("decoded = %d of %d", rep.Decoded, rep.Packets)
	}
	if rep.GateFilterRate <= 0 || rep.GateFilterRate >= 1 {
		t.Errorf("filter rate = %v", rep.GateFilterRate)
	}
	if rep.Accuracy < 0 || rep.Accuracy > 1 {
		t.Errorf("accuracy = %v (local source has truth)", rep.Accuracy)
	}
	if rep.Inferred != rep.Decoded {
		t.Errorf("without a frame filter, inferred (%d) must equal decoded (%d)",
			rep.Inferred, rep.Decoded)
	}
}

func TestEngineMaxRoundsCap(t *testing.T) {
	const m = 4
	src := NewLocalSource(mkFleet(m, 2), 0) // unlimited source
	eng, err := New(Config{Source: src, Gate: mkGate(t, m, 3), Task: infer.PersonCounting{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 50 {
		t.Errorf("rounds = %d, want 50", rep.Rounds)
	}
}

func TestEngineWithFrameFilter(t *testing.T) {
	const m, rounds = 6, 300
	src := NewLocalSource(mkFleet(m, 3), rounds)
	eng, err := New(Config{
		Source: src, Gate: mkGate(t, m, 5), Task: infer.PersonCounting{},
		Filter: filter.NewReducto(0.4, 0, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filtered == 0 {
		t.Error("frame filter never fired")
	}
	if rep.Inferred+rep.Filtered != rep.Decoded {
		t.Errorf("inferred %d + filtered %d != decoded %d", rep.Inferred, rep.Filtered, rep.Decoded)
	}
}

func TestEngineBurnDecoder(t *testing.T) {
	const m, rounds = 4, 30
	src := NewLocalSource(mkFleet(m, 4), rounds)
	eng, err := New(Config{
		Source: src, Gate: mkGate(t, m, 8), Task: infer.PersonCounting{},
		BurnNanosPerUnit: 50_000, Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecodedFPS <= 0 {
		t.Errorf("decoded FPS = %v", rep.DecodedFPS)
	}
}

func TestEngineOverNetwork(t *testing.T) {
	const m, rounds = 3, 40
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := stream.Serve(ln, stream.ServerConfig{
		NewStreams: func() []*codec.Stream { return mkFleet(m, 5) },
		Rounds:     rounds,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := stream.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	eng, err := New(Config{
		Source: NewNetSource(client), Gate: mkGate(t, m, 3), Task: infer.AnomalyDetection{},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", rep.Rounds, rounds)
	}
	if rep.Decoded == 0 {
		t.Error("nothing decoded over the network path")
	}
}

func TestFileSourceRoundsAndEOF(t *testing.T) {
	// Write two PGV files of different lengths; the source must zip them
	// and keep going until both are exhausted.
	mkFile := func(n int, seed int64) *container.Reader {
		var buf bytes.Buffer
		w, err := container.NewWriter(&buf, container.Header{FPS: 25, GOPSize: 5})
		if err != nil {
			t.Fatal(err)
		}
		st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 5}, seed)
		for i := 0; i < n; i++ {
			if err := w.WritePacket(st.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := container.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	src, err := NewFileSource([]*container.Reader{mkFile(5, 1), mkFile(8, 2)})
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for {
		pkts, err := src.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		if rounds <= 5 {
			if pkts[0] == nil || pkts[1] == nil {
				t.Fatalf("round %d: missing packets", rounds)
			}
		} else if pkts[0] != nil {
			t.Fatalf("round %d: file 0 should be exhausted", rounds)
		}
	}
	if rounds != 8 {
		t.Errorf("rounds = %d, want 8", rounds)
	}
	if _, ok := src.Truth(0); ok {
		t.Error("file source must report no truth")
	}
}

func TestFileSourceValidation(t *testing.T) {
	if _, err := NewFileSource(nil); err == nil {
		t.Error("empty reader list must error")
	}
}

func TestLocalSourceTruthMatchesPackets(t *testing.T) {
	src := NewLocalSource(mkFleet(2, 9), 5)
	d := decode.NewDecoder(decode.DefaultCosts)
	for {
		pkts, err := src.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pkts {
			truth, ok := src.Truth(i)
			if !ok {
				t.Fatal("local source must have truth")
			}
			f, err := d.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			if f.Scene != truth {
				t.Fatalf("stream %d: truth %+v != decoded %+v", i, truth, f.Scene)
			}
		}
	}
}
