package pipeline

import (
	"testing"

	"packetgame/internal/core"
	"packetgame/internal/infer"
)

// runForDecisions runs a freshly built engine over a seeded fleet and
// returns every round's decode set plus the final report. The fleet, gate,
// and source are rebuilt identically each call, so any divergence between
// two calls comes from the engine mode under test.
func runForDecisions(t *testing.T, pipelined, fresh bool, k, workers, m, rounds int, budget float64, seed int64) ([][]int, Report, core.Stats) {
	t.Helper()
	g, err := core.NewGate(core.Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	var decisions [][]int
	eng, err := New(Config{
		Source:        NewLocalSource(mkFleet(m, seed), rounds),
		Gate:          g,
		Task:          infer.PersonCounting{},
		Workers:       workers,
		MaxInFlight:   k,
		Pipelined:     pipelined,
		FreshFeedback: fresh,
		OnRound: func(round int64, sel []int) {
			if int64(len(decisions)) != round {
				t.Errorf("OnRound out of order: got round %d after %d rounds", round, len(decisions))
			}
			decisions = append(decisions, sel)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return decisions, rep, g.Stats()
}

// stripTiming zeroes a report's wall-clock-dependent fields so the
// remaining counters can be compared exactly.
func stripTiming(rep Report) Report {
	rep.Elapsed = 0
	rep.DecodedFPS = 0
	return rep
}

func compareRuns(t *testing.T, name string, selA, selB [][]int, repA, repB Report, stA, stB core.Stats) {
	t.Helper()
	if len(selA) != len(selB) {
		t.Fatalf("%s: %d vs %d rounds of decisions", name, len(selA), len(selB))
	}
	for r := range selA {
		a, b := selA[r], selB[r]
		if len(a) != len(b) {
			t.Fatalf("%s: round %d decode sets differ: %v vs %v", name, r, a, b)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("%s: round %d decode sets differ: %v vs %v", name, r, a, b)
			}
		}
	}
	if ra, rb := stripTiming(repA), stripTiming(repB); ra != rb {
		t.Errorf("%s: reports differ:\n  a: %+v\n  b: %+v", name, ra, rb)
	}
	if stA != stB {
		t.Errorf("%s: gate stats differ:\n  a: %+v\n  b: %+v", name, stA, stB)
	}
}

// TestPipelinedMatchesSequentialDecisions is the determinism regression
// test: at equal feedback lag k, the sequential (reference) engine and the
// pipelined engine must produce bit-identical per-round decode sets, final
// report counters, and gate statistics on a seeded fleet — for the strict
// k=1 schedule, a deeper k=3 schedule, and a stress-scale configuration.
func TestPipelinedMatchesSequentialDecisions(t *testing.T) {
	cases := []struct {
		name       string
		k, workers int
		m, rounds  int
		budget     float64
		seed       int64
	}{
		{name: "k1", k: 1, workers: 4, m: 16, rounds: 120, budget: 6, seed: 21},
		{name: "k3", k: 3, workers: 7, m: 24, rounds: 150, budget: 9, seed: 22},
		{name: "k4-wide", k: 4, workers: 8, m: 64, rounds: 100, budget: 20, seed: 23},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			selSeq, repSeq, stSeq := runForDecisions(t, false, false, tc.k, tc.workers, tc.m, tc.rounds, tc.budget, tc.seed)
			selPipe, repPipe, stPipe := runForDecisions(t, true, false, tc.k, tc.workers, tc.m, tc.rounds, tc.budget, tc.seed)
			if int64(len(selSeq)) != repSeq.Rounds || repSeq.Rounds != int64(tc.rounds) {
				t.Fatalf("sequential ran %d rounds (OnRound saw %d), want %d", repSeq.Rounds, len(selSeq), tc.rounds)
			}
			compareRuns(t, tc.name, selSeq, selPipe, repSeq, repPipe, stSeq, stPipe)
		})
	}
}

// TestSequentialLagOneMatchesSeedSchedule pins the generalized lag-k
// sequential engine at k=1 against the default configuration (MaxInFlight
// unset), which is the seed engine's strict Decide/Feedback alternation.
func TestSequentialLagOneMatchesSeedSchedule(t *testing.T) {
	selDefault, repDefault, stDefault := runForDecisions(t, false, false, 0, 4, 12, 100, 5, 31)
	selK1, repK1, stK1 := runForDecisions(t, false, false, 1, 4, 12, 100, 5, 31)
	compareRuns(t, "default-vs-k1", selDefault, selK1, repDefault, repK1, stDefault, stK1)
}

// TestFreshFeedbackRunCompletes checks the timing-dependent feedback mode
// end to end: same round count and packet accounting, valid report, no
// deadlock — decision equality is deliberately not asserted.
func TestFreshFeedbackRunCompletes(t *testing.T) {
	const m, rounds = 24, 150
	sel, rep, _ := runForDecisions(t, true, true, 4, 8, m, rounds, 9, 41)
	if rep.Rounds != rounds || int64(len(sel)) != rep.Rounds {
		t.Fatalf("rounds = %d (OnRound saw %d), want %d", rep.Rounds, len(sel), rounds)
	}
	if rep.Packets != int64(m*rounds) {
		t.Errorf("packets = %d, want %d", rep.Packets, m*rounds)
	}
	if rep.Decoded == 0 || rep.Inferred != rep.Decoded {
		t.Errorf("decoded = %d, inferred = %d", rep.Decoded, rep.Inferred)
	}
}
