package pipeline

import (
	"testing"

	"packetgame/internal/core"
	"packetgame/internal/infer"
)

// benchEngine builds an engine over a fresh seeded fleet. burn and latency
// select the decode time model (CPU-burning for multi-core wall-clock
// benchmarks, session-latency for overlap measurements on any host).
func benchEngine(tb testing.TB, pipelined bool, k, workers, m, rounds int, budget float64, burn, latency int64) *Engine {
	tb.Helper()
	g, err := core.NewGate(core.Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		tb.Fatal(err)
	}
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 7), rounds),
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             workers,
		MaxInFlight:         k,
		Pipelined:           pipelined,
		BurnNanosPerUnit:    burn,
		LatencyNanosPerUnit: latency,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return eng
}

// TestPipelinedThroughputGain measures round throughput of the pipelined
// engine against the sequential engine under the offloaded-decoder latency
// model (decode holds a session for cost-proportional wall-clock time, no
// host CPU), where pipeline overlap is visible regardless of host core
// count. Decisions must stay identical — the speedup may not come from
// deciding differently.
func TestPipelinedThroughputGain(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	const (
		m, rounds, workers, k = 64, 40, 8, 4
		budget                = 6.0
		latency               = int64(1_000_000) // 1ms per decode unit
	)
	run := func(pipelined bool) (Report, [][]int) {
		eng := benchEngine(t, pipelined, k, workers, m, rounds, budget, 0, latency)
		var decisions [][]int
		eng.cfg.OnRound = func(_ int64, sel []int) { decisions = append(decisions, sel) }
		rep, err := eng.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return rep, decisions
	}
	repSeq, selSeq := run(false)
	repPipe, selPipe := run(true)

	if len(selSeq) != len(selPipe) {
		t.Fatalf("round counts differ: %d vs %d", len(selSeq), len(selPipe))
	}
	for r := range selSeq {
		a, b := selSeq[r], selPipe[r]
		if len(a) != len(b) {
			t.Fatalf("round %d decode sets differ: %v vs %v", r, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("round %d decode sets differ: %v vs %v", r, a, b)
			}
		}
	}
	seqRPS := float64(repSeq.Rounds) / repSeq.Elapsed.Seconds()
	pipeRPS := float64(repPipe.Rounds) / repPipe.Elapsed.Seconds()
	gain := pipeRPS / seqRPS
	t.Logf("sequential %.1f rounds/s, pipelined %.1f rounds/s, gain %.2fx", seqRPS, pipeRPS, gain)
	if gain < 1.5 {
		t.Errorf("pipelined gain %.2fx below 1.5x (sequential %v, pipelined %v for %d rounds)",
			gain, repSeq.Elapsed, repPipe.Elapsed, rounds)
	}
}

// BenchmarkEngineRounds compares round throughput of the two engines under
// the CPU-burning decode model at Workers=8 — the multi-core wall-clock
// comparison (run on a host with ≥8 cores for the full effect; on smaller
// hosts the latency-model test above measures overlap instead).
func BenchmarkEngineRounds(b *testing.B) {
	const (
		m, workers, k = 64, 8, 4
		budget        = 9.0
		burn          = int64(20_000) // 20µs CPU per decode unit
	)
	for _, mode := range []struct {
		name      string
		pipelined bool
	}{{"sequential", false}, {"pipelined", true}} {
		b.Run(mode.name, func(b *testing.B) {
			eng := benchEngine(b, mode.pipelined, k, workers, m, 0, budget, burn, 0)
			b.ResetTimer()
			rep, err := eng.Run(b.N)
			if err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if rep.Rounds != int64(b.N) {
				b.Fatalf("ran %d rounds, want %d", rep.Rounds, b.N)
			}
			b.ReportMetric(float64(rep.Decoded)/b.Elapsed().Seconds(), "decodes/s")
		})
	}
}
