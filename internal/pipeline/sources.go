package pipeline

import (
	"fmt"
	"io"

	"packetgame/internal/codec"
	"packetgame/internal/container"
)

// LocalSource feeds rounds from an in-process camera fleet and retains
// ground truth for accuracy accounting.
type LocalSource struct {
	streams []*codec.Stream
	rounds  int
	done    int
	pkts    []*codec.Packet
	truth   []codec.Scene
	nonIdle []int32
	round   codec.Round
}

// NewLocalSource wraps a fleet; rounds caps the run (0 = unlimited).
func NewLocalSource(streams []*codec.Stream, rounds int) *LocalSource {
	return &LocalSource{
		streams: streams,
		rounds:  rounds,
		pkts:    make([]*codec.Packet, len(streams)),
		truth:   make([]codec.Scene, len(streams)),
	}
}

// NextRound implements RoundSource.
func (s *LocalSource) NextRound() ([]*codec.Packet, error) {
	if s.rounds > 0 && s.done >= s.rounds {
		return nil, io.EOF
	}
	s.nonIdle = s.nonIdle[:0]
	for i, st := range s.streams {
		s.pkts[i] = st.Next()
		s.truth[i] = st.LastScene
		if s.pkts[i] != nil {
			s.nonIdle = append(s.nonIdle, int32(i))
		}
	}
	s.done++
	return s.pkts, nil
}

// NextRoundSparse implements SparseRoundSource.
func (s *LocalSource) NextRoundSparse() (*codec.Round, error) {
	if s.rounds > 0 && s.done >= s.rounds {
		return nil, io.EOF
	}
	s.round.Reset(len(s.streams))
	for i, st := range s.streams {
		p := st.Next()
		s.truth[i] = st.LastScene
		if p != nil {
			s.round.Append(int32(i), p)
		}
	}
	s.done++
	return &s.round, nil
}

// Truth implements RoundSource.
func (s *LocalSource) Truth(i int) (codec.Scene, bool) { return s.truth[i], true }

// NonIdle implements RoundLister.
func (s *LocalSource) NonIdle() []int32 { return s.nonIdle }

// Camera is a one-packet-per-round feed. *codec.Stream satisfies it, as do
// fault-injecting wrappers.
type Camera interface {
	Next() *codec.Packet
}

// CameraTruth is optionally implemented by cameras that can report the
// ground-truth scene of their most recent packet.
type CameraTruth interface {
	Truth() (codec.Scene, bool)
}

// CameraSource feeds rounds from arbitrary Camera implementations — the
// injection point for fault-wrapped fleets. Cameras that also implement
// CameraTruth contribute ground truth for accuracy accounting; a camera may
// return nil from Next (an idle or stalled round).
type CameraSource struct {
	cams    []Camera
	rounds  int
	done    int
	pkts    []*codec.Packet
	truth   []truthVal
	nonIdle []int32
	round   codec.Round
}

// NewCameraSource wraps a camera fleet; rounds caps the run (0 = unlimited).
func NewCameraSource(cams []Camera, rounds int) *CameraSource {
	return &CameraSource{
		cams:   cams,
		rounds: rounds,
		pkts:   make([]*codec.Packet, len(cams)),
		truth:  make([]truthVal, len(cams)),
	}
}

// NextRound implements RoundSource.
func (s *CameraSource) NextRound() ([]*codec.Packet, error) {
	if s.rounds > 0 && s.done >= s.rounds {
		return nil, io.EOF
	}
	s.nonIdle = s.nonIdle[:0]
	for i, cam := range s.cams {
		s.pkts[i] = cam.Next()
		s.truth[i] = truthVal{}
		if ct, ok := cam.(CameraTruth); ok {
			sc, tok := ct.Truth()
			s.truth[i] = truthVal{scene: sc, ok: tok}
		}
		if s.pkts[i] != nil {
			s.nonIdle = append(s.nonIdle, int32(i))
		}
	}
	s.done++
	return s.pkts, nil
}

// NextRoundSparse implements SparseRoundSource.
func (s *CameraSource) NextRoundSparse() (*codec.Round, error) {
	if s.rounds > 0 && s.done >= s.rounds {
		return nil, io.EOF
	}
	s.round.Reset(len(s.cams))
	for i, cam := range s.cams {
		p := cam.Next()
		s.truth[i] = truthVal{}
		if ct, ok := cam.(CameraTruth); ok {
			sc, tok := ct.Truth()
			s.truth[i] = truthVal{scene: sc, ok: tok}
		}
		if p != nil {
			s.round.Append(int32(i), p)
		}
	}
	s.done++
	return &s.round, nil
}

// Truth implements RoundSource.
func (s *CameraSource) Truth(i int) (codec.Scene, bool) {
	return s.truth[i].scene, s.truth[i].ok
}

// NonIdle implements RoundLister.
func (s *CameraSource) NonIdle() []int32 { return s.nonIdle }

// RoundClient yields PGSP rounds: *stream.Client satisfies it, as does the
// reconnecting *stream.Resilient.
type RoundClient interface {
	NextRound() ([]*codec.Packet, error)
}

// SparseRoundClient is the optional sparse extension of RoundClient;
// *stream.Client satisfies it.
type SparseRoundClient interface {
	NextRoundSparse() (*codec.Round, error)
}

// NetSource adapts a PGSP client into a RoundSource. Ground truth is not
// available over the network.
type NetSource struct {
	client RoundClient
	round  codec.Round
}

// NewNetSource wraps a connected PGSP client.
func NewNetSource(c RoundClient) *NetSource { return &NetSource{client: c} }

// NextRound implements RoundSource.
func (s *NetSource) NextRound() ([]*codec.Packet, error) { return s.client.NextRound() }

// NextRoundSparse implements SparseRoundSource: clients speaking the sparse
// wire format pass rounds through in O(active); plain clients gather a
// dense round and compact it here.
func (s *NetSource) NextRoundSparse() (*codec.Round, error) {
	if sc, ok := s.client.(SparseRoundClient); ok {
		return sc.NextRoundSparse()
	}
	pkts, err := s.client.NextRound()
	if err != nil {
		return nil, err
	}
	s.round.FromDense(pkts)
	return &s.round, nil
}

// Truth implements RoundSource: network sources have none.
func (s *NetSource) Truth(i int) (codec.Scene, bool) { return codec.Scene{}, false }

// FileSource feeds rounds by zipping several PGV container readers: one
// packet per file per round — the offline-video ingest path.
type FileSource struct {
	readers []*container.Reader
	pkts    []*codec.Packet
	eof     []bool
	nonIdle []int32
	round   codec.Round
}

// NewFileSource wraps PGV readers. Stream IDs are reassigned to the reader
// index so the round slice is dense.
func NewFileSource(readers []*container.Reader) (*FileSource, error) {
	if len(readers) == 0 {
		return nil, fmt.Errorf("pipeline: no readers")
	}
	return &FileSource{
		readers: readers,
		pkts:    make([]*codec.Packet, len(readers)),
		eof:     make([]bool, len(readers)),
	}, nil
}

// NextRound implements RoundSource.
func (s *FileSource) NextRound() ([]*codec.Packet, error) {
	alive := false
	s.nonIdle = s.nonIdle[:0]
	for i, r := range s.readers {
		s.pkts[i] = nil
		if s.eof[i] {
			continue
		}
		p, err := r.Next()
		if err == io.EOF {
			s.eof[i] = true
			continue
		}
		if err != nil {
			return nil, err
		}
		p.StreamID = i
		s.pkts[i] = p
		s.nonIdle = append(s.nonIdle, int32(i))
		alive = true
	}
	if !alive {
		return nil, io.EOF
	}
	return s.pkts, nil
}

// NextRoundSparse implements SparseRoundSource.
func (s *FileSource) NextRoundSparse() (*codec.Round, error) {
	alive := false
	s.round.Reset(len(s.readers))
	for i, r := range s.readers {
		if s.eof[i] {
			continue
		}
		p, err := r.Next()
		if err == io.EOF {
			s.eof[i] = true
			continue
		}
		if err != nil {
			return nil, err
		}
		p.StreamID = i
		s.round.Append(int32(i), p)
		alive = true
	}
	if !alive {
		return nil, io.EOF
	}
	return &s.round, nil
}

// Truth implements RoundSource: container files carry no side-channel truth.
func (s *FileSource) Truth(i int) (codec.Scene, bool) { return codec.Scene{}, false }

// NonIdle implements RoundLister.
func (s *FileSource) NonIdle() []int32 { return s.nonIdle }
