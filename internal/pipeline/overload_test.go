package pipeline

import (
	"runtime"
	"testing"
	"time"

	"packetgame/internal/core"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
	"packetgame/internal/overload"
)

func TestDeadlineValidation(t *testing.T) {
	const m = 4
	if _, err := New(Config{
		Source: NewLocalSource(mkFleet(m, 1), 10),
		Gate:   mkGate(t, m, 4),
		Task:   infer.PersonCounting{},
		// Deadline without Pipelined: the sequential engine has no decode
		// queue to shed, so a deadline is a configuration error.
		Deadline: 10 * time.Millisecond,
	}); err == nil {
		t.Error("Deadline without Pipelined must error")
	}
	if _, err := New(Config{
		Source:    NewLocalSource(mkFleet(m, 1), 10),
		Gate:      mkGate(t, m, 4),
		Task:      infer.PersonCounting{},
		Pipelined: true,
		Deadline:  -time.Millisecond,
	}); err == nil {
		t.Error("negative Deadline must error")
	}
}

// TestDeadlineAbortSettlesRounds drives the pipelined engine with decodes
// far slower than the round deadline: every round must still settle and ack
// (the run never wedges on abandoned work), aborted selections must be
// accounted as DeadlineAborted rather than Decoded, and the decode pool
// plus collector must wind down cleanly.
func TestDeadlineAbortSettlesRounds(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, rounds = 8, 40
	stats := &metrics.OverloadStats{}
	g, err := core.NewGate(core.Config{Streams: m, Budget: 6, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 17), rounds),
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             2,
		MaxInFlight:         4,
		Pipelined:           true,
		Deadline:            2 * time.Millisecond,
		LatencyNanosPerUnit: 500_000, // decodes dwarf the deadline
		Overload:            stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Fatalf("completed %d/%d rounds", rep.Rounds, rounds)
	}
	if rep.DeadlineAborted == 0 {
		t.Fatalf("no deadline aborts despite decodes exceeding the deadline: %+v", rep)
	}
	if rep.Overload.Aborted != rep.DeadlineAborted {
		t.Fatalf("overload stats aborted = %d, report = %d",
			rep.Overload.Aborted, rep.DeadlineAborted)
	}
	// Aborted selections were never decoded: the packet count still covers
	// them, the decode count must not.
	if rep.Decoded+rep.DeadlineAborted > rep.Packets {
		t.Fatalf("accounting overlap: decoded %d + aborted %d > packets %d",
			rep.Decoded, rep.DeadlineAborted, rep.Packets)
	}
	if g.Pending() != 0 {
		t.Fatalf("gate left with %d unacked rounds", g.Pending())
	}
	waitGoroutines(t, base)
}

// TestDeadlineAbortFreshFeedback covers the collector-applied feedback path
// under deadline pressure: deferred slots reach FeedbackFull from the
// collector goroutine and the token flow still bounds in-flight rounds.
func TestDeadlineAbortFreshFeedback(t *testing.T) {
	base := runtime.NumGoroutine()
	const m, rounds = 8, 30
	g, err := core.NewGate(core.Config{Streams: m, Budget: 6, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 19), rounds),
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             2,
		MaxInFlight:         3,
		Pipelined:           true,
		FreshFeedback:       true,
		Deadline:            time.Millisecond,
		LatencyNanosPerUnit: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Fatalf("completed %d/%d rounds", rep.Rounds, rounds)
	}
	if rep.DeadlineAborted == 0 {
		t.Fatalf("no deadline aborts despite decodes exceeding the deadline: %+v", rep)
	}
	waitGoroutines(t, base)
}

// TestCloseDuringDeadlineAborts is the leak regression for abandoned
// rounds: Close while deadline aborts are in flight must still drain the
// collector and decode pool with no goroutines left behind.
func TestCloseDuringDeadlineAborts(t *testing.T) {
	base := runtime.NumGoroutine()
	const m = 8
	g, err := core.NewGate(core.Config{Streams: m, Budget: 6, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{})
	var once bool
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 23), 0), // unlimited: only Close ends the run
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             2,
		MaxInFlight:         4,
		Pipelined:           true,
		Deadline:            time.Millisecond,
		LatencyNanosPerUnit: 500_000,
		OnRound: func(round int64, sel []int) {
			if !once && round >= 6 {
				once = true
				close(started)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := eng.Run(0)
		done <- result{rep, err}
	}()
	<-started // rounds in flight, deadline timer armed, aborts likely underway
	eng.Close()
	res := <-done
	if res.err != nil {
		t.Fatalf("closed run returned error: %v", res.err)
	}
	if g.Pending() != 0 {
		t.Fatalf("gate left with %d unacked rounds after Close", g.Pending())
	}
	waitGoroutines(t, base)
}

// brownedOutGovernor builds a governor pre-stepped to the shed rung and
// pinned there: the SLO is set far above any wall-clock round latency so no
// in-run observation registers pressure, and ExitAfter is unreachable so it
// never climbs back. B_eff stays at Budget (no cuts ever fire).
func brownedOutGovernor(t *testing.T, budget float64, rungs int) *overload.Governor {
	t.Helper()
	gov, err := overload.NewGovernor(overload.Config{
		SLO:        time.Hour,
		Budget:     budget,
		MinBudget:  budget,
		EnterAfter: 1,
		ExitAfter:  1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rungs; i++ {
		gov.Observe(2*time.Hour, 0)
	}
	return gov
}

// TestBrownoutShedDeterminismPipelined runs the pipelined engine twice with
// identical seeds and a governor pinned below the full rung: the admission
// filter's shed decisions — and therefore every round's selection — must be
// bit-identical across runs regardless of decode timing.
func TestBrownoutShedDeterminismPipelined(t *testing.T) {
	const m, rounds = 16, 120
	priorities := make([]uint8, m)
	for i := range priorities {
		priorities[i] = uint8(i % 4)
	}
	run := func() ([][]int, Report) {
		gov := brownedOutGovernor(t, 8, 2) // ModeKeyframeOnly
		g, err := core.NewGate(core.Config{
			Streams:     m,
			Budget:      8,
			UseTemporal: true,
			Priorities:  priorities,
			Governor:    gov,
		})
		if err != nil {
			t.Fatal(err)
		}
		var sels [][]int
		eng, err := New(Config{
			Source:      NewLocalSource(mkFleet(m, 41), rounds),
			Gate:        g,
			Task:        infer.PersonCounting{},
			Workers:     3,
			MaxInFlight: 4,
			Pipelined:   true,
			Governor:    gov,
			OnRound: func(round int64, sel []int) {
				sels = append(sels, append([]int(nil), sel...))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(0)
		if err != nil {
			t.Fatal(err)
		}
		return sels, rep
	}
	selsA, repA := run()
	selsB, repB := run()
	if len(selsA) != rounds || len(selsB) != rounds {
		t.Fatalf("rounds decided: %d vs %d, want %d", len(selsA), len(selsB), rounds)
	}
	for r := range selsA {
		a, b := selsA[r], selsB[r]
		if len(a) != len(b) {
			t.Fatalf("round %d: selection size %d vs %d", r, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("round %d slot %d: stream %d vs %d", r, k, a[k], b[k])
			}
		}
	}
	if repA.Decoded != repB.Decoded || repA.Rounds != repB.Rounds {
		t.Fatalf("reports diverged: %+v vs %+v", repA, repB)
	}
	// Keyframe-only brownout: with GOPSize 10 only every tenth round carries
	// admissible packets, so most rounds must select nothing.
	var empty int
	for _, s := range selsA {
		if len(s) == 0 {
			empty++
		}
	}
	if empty < rounds/2 {
		t.Fatalf("keyframe-only mode admitted too much: %d/%d empty rounds", empty, rounds)
	}
}
