package pipeline

import (
	"sync"
	"testing"
	"time"

	"packetgame/internal/core"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
)

// TestPipelinedStressManyStreams is the staged engine's race stress test:
// 64 streams, 8 decode workers, 4 rounds in flight, fresh (concurrent)
// feedback, stage metrics on, and concurrent gate-state readers — run under
// `go test -race` (see Makefile `race` target) this validates the sharded
// gate and the collector topology end to end.
func TestPipelinedStressManyStreams(t *testing.T) {
	const m, rounds, workers, k = 64, 120, 8, 4
	g, err := core.NewGate(core.Config{Streams: m, Budget: 24, UseTemporal: true, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	stages := &metrics.StageSet{}
	eng, err := New(Config{
		Source:              NewLocalSource(mkFleet(m, 99), rounds),
		Gate:                g,
		Task:                infer.PersonCounting{},
		Workers:             workers,
		MaxInFlight:         k,
		Pipelined:           true,
		FreshFeedback:       true,
		LatencyNanosPerUnit: 20_000, // keep decoders busy enough to overlap
		Stages:              stages,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = g.Stats()
				_ = g.Pending()
				_ = g.Confidence(w * 16)
				_ = stages.Decode.Snapshot()
				time.Sleep(50 * time.Microsecond) // don't starve the pipeline on small hosts
			}
		}(w)
	}
	rep, err := eng.Run(0)
	close(stop)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds {
		t.Fatalf("rounds = %d, want %d", rep.Rounds, rounds)
	}
	if rep.Packets != int64(m*rounds) {
		t.Errorf("packets = %d, want %d", rep.Packets, m*rounds)
	}
	if rep.Decoded == 0 {
		t.Error("nothing decoded")
	}
	st := g.Stats()
	if st.Rounds != rounds || st.Decoded != rep.Decoded {
		t.Errorf("gate stats %+v inconsistent with report %+v", st, rep)
	}
	if g.Pending() != 0 {
		t.Errorf("gate left %d rounds unacked", g.Pending())
	}
	for name, s := range map[string]metrics.StageSnapshot{
		"gate":   stages.Gate.Snapshot(),
		"decode": stages.Decode.Snapshot(),
		"infer":  stages.Infer.Snapshot(),
	} {
		if s.Enqueued != rounds || s.Done != rounds || s.Depth != 0 {
			t.Errorf("%s stage snapshot %+v, want %d enqueued/done and empty", name, s, rounds)
		}
	}
	if d := stages.Decode.Snapshot().MaxDepth; d < 2 || d > k {
		t.Errorf("decode stage max depth = %d, want within (1, %d]", d, k)
	}
}

// TestPipelinedStressDeterministicSchedule repeats the stress shape in the
// deterministic (deferred-ack) mode, where the gate loop applies feedback:
// Decide and Feedback then interleave with decode/infer via the collector.
func TestPipelinedStressDeterministicSchedule(t *testing.T) {
	const m, rounds, workers, k = 64, 120, 8, 4
	g, err := core.NewGate(core.Config{Streams: m, Budget: 24, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{
		Source:      NewLocalSource(mkFleet(m, 99), rounds),
		Gate:        g,
		Task:        infer.PersonCounting{},
		Workers:     workers,
		MaxInFlight: k,
		Pipelined:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != rounds || rep.Packets != int64(m*rounds) {
		t.Fatalf("report %+v, want %d rounds, %d packets", rep, rounds, m*rounds)
	}
}
