package metrics

import (
	"math"
	"testing"
)

func TestCurvePerfectScores(t *testing.T) {
	// Scores perfectly separate necessity: filtering up to the negative
	// fraction costs no accuracy.
	scores := []float64{0.1, 0.2, 0.9, 0.95}
	labels := []bool{false, false, true, true}
	points, err := Curve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	// At filter rate 0.5 (both negatives filtered) accuracy is still 1.
	for _, p := range points {
		if p.FilterRate == 0.5 && p.Accuracy != 1 {
			t.Errorf("perfect scores: accuracy at r=0.5 is %v", p.Accuracy)
		}
		if p.FilterRate == 1 && p.Accuracy != 0.5 {
			t.Errorf("full filtering accuracy = %v, want 0.5", p.Accuracy)
		}
	}
}

func TestCurveRandomScoresDegrade(t *testing.T) {
	// Anti-correlated scores: filtering removes necessary samples first.
	scores := []float64{0.9, 0.8, 0.1, 0.2}
	labels := []bool{false, false, true, true}
	points, err := Curve(scores, labels)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.FilterRate == 0.5 && p.Accuracy != 0.5 {
			t.Errorf("anti-correlated: accuracy at r=0.5 is %v, want 0.5", p.Accuracy)
		}
	}
}

func TestCurveValidation(t *testing.T) {
	if _, err := Curve([]float64{1}, []bool{true, false}); err == nil {
		t.Error("length mismatch must error")
	}
	if _, err := Curve(nil, nil); err == nil {
		t.Error("empty input must error")
	}
}

func TestOptimalCurve(t *testing.T) {
	points := OptimalCurve(0.6, []float64{0, 0.3, 0.6, 0.8, 1})
	want := []float64{1, 1, 1, 0.8, 0.6}
	for i, p := range points {
		if math.Abs(p.Accuracy-want[i]) > 1e-12 {
			t.Errorf("optimal a(r=%v) = %v, want %v", p.FilterRate, p.Accuracy, want[i])
		}
	}
}

func TestFilterRateAt(t *testing.T) {
	points := []CurvePoint{
		{FilterRate: 0.2, Accuracy: 1},
		{FilterRate: 0.5, Accuracy: 0.95},
		{FilterRate: 0.7, Accuracy: 0.9},
		{FilterRate: 0.9, Accuracy: 0.6},
	}
	r, ok := FilterRateAt(points, 0.9)
	if !ok || r != 0.7 {
		t.Errorf("FilterRateAt(0.9) = %v,%v, want 0.7,true", r, ok)
	}
	if _, ok := FilterRateAt(points, 1.1); ok {
		t.Error("unreachable target must report !ok")
	}
}

func TestAUC(t *testing.T) {
	// Flat accuracy 1 over [0,1] integrates to 1.
	points := []CurvePoint{{FilterRate: 0, Accuracy: 1}, {FilterRate: 1, Accuracy: 1}}
	if auc := AUC(points); math.Abs(auc-1) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	// Linear decay from 1 to 0 integrates to 0.5, regardless of order.
	points = []CurvePoint{{FilterRate: 1, Accuracy: 0}, {FilterRate: 0, Accuracy: 1}}
	if auc := AUC(points); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("AUC = %v, want 0.5", auc)
	}
}

func TestTPRAtFPR(t *testing.T) {
	// Perfect separation: TPR 1 at any FPR.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	tpr, err := TPRAtFPR(scores, labels, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 1 {
		t.Errorf("perfect TPR = %v", tpr)
	}
	// Inverted scores: at FPR 0 we can catch nothing.
	tpr, err = TPRAtFPR([]float64{0.1, 0.2, 0.8, 0.9}, labels, 0)
	if err != nil {
		t.Fatal(err)
	}
	if tpr != 0 {
		t.Errorf("inverted TPR = %v, want 0", tpr)
	}
}

func TestTPRAtFPRValidation(t *testing.T) {
	if _, err := TPRAtFPR([]float64{1}, []bool{true}, 0.1); err == nil {
		t.Error("single-class input must error")
	}
	if _, err := TPRAtFPR(nil, nil, 0.1); err == nil {
		t.Error("empty input must error")
	}
}

func TestConcurrencyBottleneck(t *testing.T) {
	// The paper's Fig 2b numbers: 25FPS streams; decoder 870 FPS (load 1),
	// filter 3569 FPS (load 1), inference 753.9 FPS with 99% filtered
	// (load 0.01). Decoder should bottleneck at 34-35 streams.
	mods := []Module{
		{Name: "decode", Throughput: 870, Load: 1},
		{Name: "filter", Throughput: 3569.4, Load: 1},
		{Name: "infer", Throughput: 753.9, Load: 0.01},
	}
	n, bottleneck, err := Concurrency(25, mods)
	if err != nil {
		t.Fatal(err)
	}
	if bottleneck != "decode" {
		t.Errorf("bottleneck = %s, want decode", bottleneck)
	}
	if n < 33 || n > 35 {
		t.Errorf("concurrency = %d, want ~34", n)
	}
}

func TestConcurrencyZeroLoadModules(t *testing.T) {
	n, name, err := Concurrency(25, []Module{{Name: "x", Throughput: 100, Load: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if name != "none" || n != math.MaxInt32 {
		t.Errorf("zero-load pipeline: %d %s", n, name)
	}
}

func TestConcurrencyValidation(t *testing.T) {
	if _, _, err := Concurrency(0, []Module{{Throughput: 1, Load: 1}}); err == nil {
		t.Error("zero FPS must error")
	}
	if _, _, err := Concurrency(25, nil); err == nil {
		t.Error("no modules must error")
	}
}
