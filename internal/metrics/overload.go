package metrics

import "sync/atomic"

// OverloadStats aggregates the load governor's observable state with
// lock-free counters, following the Stage pattern: cheap enough to leave on
// in production, and nil-safe so instrumentation can stay unwired. The gate
// publishes admission-control counters (shed, deferred), the governor
// publishes its AIMD and ladder counters plus the B_eff gauge, and the
// pipelined engine publishes deadline aborts.
type OverloadStats struct {
	shed       atomic.Int64 // packets refused admission by the brownout mode
	deferred   atomic.Int64 // feedback slots settled as Deferred (outcome unknown)
	aborted    atomic.Int64 // decodes abandoned by a round deadline
	sloMisses  atomic.Int64 // rounds whose observed latency exceeded the SLO
	cuts       atomic.Int64 // multiplicative budget cuts
	raises     atomic.Int64 // additive budget raises
	stepDowns  atomic.Int64 // degradation-ladder descents (brownout entries)
	stepUps    atomic.Int64 // degradation-ladder ascents (brownout exits)
	bEffMilli  atomic.Int64 // gauge: effective budget ×1000
	modeRounds [4]atomic.Int64
}

// OverloadSnapshot is a point-in-time read of OverloadStats.
type OverloadSnapshot struct {
	Shed      int64
	Deferred  int64
	Aborted   int64
	SLOMisses int64
	Cuts      int64
	Raises    int64
	StepDowns int64
	StepUps   int64
	// BEff is the last published effective budget (the gauge).
	BEff float64
	// ModeRounds counts governed rounds spent in each degradation mode,
	// indexed by the overload.Mode ordinal (full, temporal-only,
	// keyframe-only, shed).
	ModeRounds [4]int64
}

// AddShed counts packets refused admission. Nil-safe.
func (o *OverloadStats) AddShed(n int64) {
	if o != nil && n != 0 {
		o.shed.Add(n)
	}
}

// AddDeferred counts feedback slots settled as Deferred. Nil-safe.
func (o *OverloadStats) AddDeferred(n int64) {
	if o != nil && n != 0 {
		o.deferred.Add(n)
	}
}

// AddAborted counts deadline-abandoned decodes. Nil-safe.
func (o *OverloadStats) AddAborted(n int64) {
	if o != nil && n != 0 {
		o.aborted.Add(n)
	}
}

// AddSLOMiss counts one SLO-violating round. Nil-safe.
func (o *OverloadStats) AddSLOMiss() {
	if o != nil {
		o.sloMisses.Add(1)
	}
}

// AddCut counts one multiplicative budget cut. Nil-safe.
func (o *OverloadStats) AddCut() {
	if o != nil {
		o.cuts.Add(1)
	}
}

// AddRaise counts one additive budget raise. Nil-safe.
func (o *OverloadStats) AddRaise() {
	if o != nil {
		o.raises.Add(1)
	}
}

// AddStepDown counts one ladder descent. Nil-safe.
func (o *OverloadStats) AddStepDown() {
	if o != nil {
		o.stepDowns.Add(1)
	}
}

// AddStepUp counts one ladder ascent. Nil-safe.
func (o *OverloadStats) AddStepUp() {
	if o != nil {
		o.stepUps.Add(1)
	}
}

// SetBEff publishes the effective-budget gauge. Nil-safe.
func (o *OverloadStats) SetBEff(b float64) {
	if o != nil {
		o.bEffMilli.Store(int64(b * 1000))
	}
}

// AddModeRound counts one governed round spent in the given mode ordinal.
// Out-of-range ordinals are ignored. Nil-safe.
func (o *OverloadStats) AddModeRound(mode int) {
	if o != nil && mode >= 0 && mode < len(o.modeRounds) {
		o.modeRounds[mode].Add(1)
	}
}

// Snapshot reads the counters. A nil receiver yields a zero snapshot.
func (o *OverloadStats) Snapshot() OverloadSnapshot {
	if o == nil {
		return OverloadSnapshot{}
	}
	s := OverloadSnapshot{
		Shed:      o.shed.Load(),
		Deferred:  o.deferred.Load(),
		Aborted:   o.aborted.Load(),
		SLOMisses: o.sloMisses.Load(),
		Cuts:      o.cuts.Load(),
		Raises:    o.raises.Load(),
		StepDowns: o.stepDowns.Load(),
		StepUps:   o.stepUps.Load(),
		BEff:      float64(o.bEffMilli.Load()) / 1000,
	}
	for i := range o.modeRounds {
		s.ModeRounds[i] = o.modeRounds[i].Load()
	}
	return s
}
