// Package metrics implements the evaluation metrics of the paper: offline
// filtering-rate vs inference-accuracy curves (Fig 9), ROC points (Fig 3b),
// and the end-to-end concurrency arithmetic behind Fig 2b and Table 5.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// CurvePoint is one point of the offline trade-off curve.
type CurvePoint struct {
	Threshold  float64
	FilterRate float64
	Accuracy   float64
}

// Curve sweeps the confidence threshold over scored samples and reports the
// filtering rate and inference accuracy at each threshold. labels[i] is true
// when sample i is necessary. Accuracy follows the paper's offline notion:
// a = 1 − (filtered necessary)/N, so filtering only redundant samples keeps
// accuracy at 1.
func Curve(scores []float64, labels []bool) ([]CurvePoint, error) {
	if len(scores) != len(labels) {
		return nil, fmt.Errorf("metrics: %d scores for %d labels", len(scores), len(labels))
	}
	if len(scores) == 0 {
		return nil, fmt.Errorf("metrics: empty sample set")
	}
	type sample struct {
		score     float64
		necessary bool
	}
	ss := make([]sample, len(scores))
	for i := range scores {
		ss[i] = sample{scores[i], labels[i]}
	}
	sort.Slice(ss, func(a, b int) bool { return ss[a].score < ss[b].score })

	n := float64(len(ss))
	points := make([]CurvePoint, 0, len(ss)+1)
	// Threshold below the minimum: nothing filtered.
	points = append(points, CurvePoint{Threshold: 0, FilterRate: 0, Accuracy: 1})
	filteredNecessary := 0
	for i, s := range ss {
		if s.necessary {
			filteredNecessary++
		}
		points = append(points, CurvePoint{
			Threshold:  s.score,
			FilterRate: float64(i+1) / n,
			Accuracy:   1 - float64(filteredNecessary)/n,
		})
	}
	return points, nil
}

// OptimalCurve returns the clairvoyant trade-off a = 1 − max(r − TN, 0) for
// the given true-negative (redundant) ratio, sampled at the given rates.
func OptimalCurve(tnRatio float64, rates []float64) []CurvePoint {
	points := make([]CurvePoint, len(rates))
	for i, r := range rates {
		points[i] = CurvePoint{FilterRate: r, Accuracy: 1 - math.Max(r-tnRatio, 0)}
	}
	return points
}

// FilterRateAt returns the maximal filtering rate on the curve whose
// accuracy is at least target, and whether any point qualifies.
func FilterRateAt(points []CurvePoint, target float64) (float64, bool) {
	best, ok := 0.0, false
	for _, p := range points {
		if p.Accuracy >= target && p.FilterRate >= best {
			best, ok = p.FilterRate, true
		}
	}
	return best, ok
}

// AUC integrates accuracy over filtering rate by the trapezoid rule —
// a single-number summary of a Fig 9 curve (1.0 = filter everything free).
func AUC(points []CurvePoint) float64 {
	ps := append([]CurvePoint(nil), points...)
	sort.Slice(ps, func(a, b int) bool { return ps[a].FilterRate < ps[b].FilterRate })
	var auc float64
	for i := 1; i < len(ps); i++ {
		dx := ps[i].FilterRate - ps[i-1].FilterRate
		auc += dx * (ps[i].Accuracy + ps[i-1].Accuracy) / 2
	}
	return auc
}

// FilterRateAtRecall returns the largest filtering rate whose kept set
// still contains at least minRecall of the necessary samples — the deployed
// (unbalanced) notion of "preserving 90% accuracy" used by Tab 5: skip as
// much as possible while decoding ≥ minRecall of what matters.
func FilterRateAtRecall(scores []float64, labels []bool, minRecall float64) (float64, error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0, fmt.Errorf("metrics: bad inputs: %d scores, %d labels", len(scores), len(labels))
	}
	type sample struct {
		score float64
		pos   bool
	}
	ss := make([]sample, len(scores))
	npos := 0
	for i := range scores {
		ss[i] = sample{scores[i], labels[i]}
		if labels[i] {
			npos++
		}
	}
	if npos == 0 {
		return 0, fmt.Errorf("metrics: no necessary samples")
	}
	// Filter from the lowest score upward until recall would drop below
	// the target.
	sort.Slice(ss, func(a, b int) bool { return ss[a].score < ss[b].score })
	kept := npos
	best := 0.0
	for i, s := range ss {
		if s.pos {
			kept--
		}
		if float64(kept)/float64(npos) < minRecall {
			break
		}
		best = float64(i+1) / float64(len(ss))
	}
	return best, nil
}

// TPRAtFPR computes the true-positive rate achievable at the given maximal
// false-positive rate (the Fig 3b comparison: residual features reach 6.1%
// TPR at 10% FPR where PacketGame reaches 76.6%). Higher scores must mean
// "more likely positive".
func TPRAtFPR(scores []float64, labels []bool, maxFPR float64) (float64, error) {
	if len(scores) != len(labels) || len(scores) == 0 {
		return 0, fmt.Errorf("metrics: bad inputs: %d scores, %d labels", len(scores), len(labels))
	}
	type sample struct {
		score float64
		pos   bool
	}
	ss := make([]sample, len(scores))
	var npos, nneg int
	for i := range scores {
		ss[i] = sample{scores[i], labels[i]}
		if labels[i] {
			npos++
		} else {
			nneg++
		}
	}
	if npos == 0 || nneg == 0 {
		return 0, fmt.Errorf("metrics: need both classes (%d pos, %d neg)", npos, nneg)
	}
	// Sweep thresholds from high to low; keep the best TPR within the FPR cap.
	sort.Slice(ss, func(a, b int) bool { return ss[a].score > ss[b].score })
	var tp, fp int
	best := 0.0
	for i := 0; i < len(ss); {
		j := i
		for j < len(ss) && ss[j].score == ss[i].score {
			if ss[j].pos {
				tp++
			} else {
				fp++
			}
			j++
		}
		i = j
		if float64(fp)/float64(nneg) <= maxFPR {
			if tpr := float64(tp) / float64(npos); tpr > best {
				best = tpr
			}
		}
	}
	return best, nil
}

// Module is one pipeline stage for concurrency accounting: its standalone
// throughput in frames per second and the fraction of each stream's frames
// it must process (1.0 for a decoder without gating, 1−filterRate for an
// inference model behind a filter, …).
type Module struct {
	Name       string
	Throughput float64
	Load       float64
}

// Concurrency returns how many streams of the given FPS the pipeline
// sustains and which module is the bottleneck (Fig 2b): the minimum over
// modules of throughput/(fps·load).
func Concurrency(streamFPS float64, modules []Module) (int, string, error) {
	if streamFPS <= 0 {
		return 0, "", fmt.Errorf("metrics: streamFPS must be positive")
	}
	if len(modules) == 0 {
		return 0, "", fmt.Errorf("metrics: no modules")
	}
	best := math.Inf(1)
	name := ""
	for _, m := range modules {
		if m.Load <= 0 {
			continue // module sees no traffic: never a bottleneck
		}
		c := m.Throughput / (streamFPS * m.Load)
		if c < best {
			best, name = c, m.Name
		}
	}
	if math.IsInf(best, 1) {
		return math.MaxInt32, "none", nil
	}
	n := int(best)
	if n < 0 {
		n = 0
	}
	return n, name, nil
}
