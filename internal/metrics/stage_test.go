package metrics

import (
	"sync"
	"testing"
)

func TestStageCountersAndDepth(t *testing.T) {
	var s Stage
	s.Enter()
	s.Enter()
	s.Enter()
	s.Exit(100)
	s.Exit(300)
	snap := s.Snapshot()
	if snap.Enqueued != 3 || snap.Done != 2 || snap.Depth != 1 {
		t.Errorf("snapshot %+v, want enqueued 3, done 2, depth 1", snap)
	}
	if snap.MaxDepth != 3 {
		t.Errorf("max depth %d, want 3", snap.MaxDepth)
	}
	if snap.Nanos != 400 {
		t.Errorf("nanos %d, want 400", snap.Nanos)
	}
	if got := snap.MeanNanos(); got != 200 {
		t.Errorf("mean nanos %v, want 200", got)
	}
	if (StageSnapshot{}).MeanNanos() != 0 {
		t.Error("empty snapshot mean must be 0")
	}
}

func TestStageNilSafety(t *testing.T) {
	var ss *StageSet
	// All of these must be no-ops on a nil set.
	StageEnter(ss.GateStage())
	StageExit(ss.DecodeStage(), 5)
	StageEnter(ss.InferStage())

	set := &StageSet{}
	StageEnter(set.GateStage())
	StageExit(set.GateStage(), 7)
	if snap := set.Gate.Snapshot(); snap.Done != 1 || snap.Nanos != 7 {
		t.Errorf("gate snapshot %+v", snap)
	}
}

// TestStageConcurrent hammers one stage from many goroutines; under -race
// this validates the lock-free counters, and the final snapshot must
// balance exactly.
func TestStageConcurrent(t *testing.T) {
	const workers, perWorker = 8, 500
	var s Stage
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Enter()
				s.Exit(1)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if snap.Enqueued != workers*perWorker || snap.Done != workers*perWorker || snap.Depth != 0 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.MaxDepth < 1 || snap.MaxDepth > workers {
		t.Errorf("max depth %d outside [1, %d]", snap.MaxDepth, workers)
	}
}
