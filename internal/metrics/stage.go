package metrics

import "sync/atomic"

// Stage tracks one pipeline stage's queue depth and service latency with
// lock-free counters, cheap enough to leave on in production.
type Stage struct {
	enqueued atomic.Int64 // items admitted to the stage
	done     atomic.Int64 // items the stage finished
	nanos    atomic.Int64 // total service nanoseconds
	maxDepth atomic.Int64 // high-water mark of enqueued-done
}

// Enter records an item entering the stage and updates the depth high-water
// mark.
func (s *Stage) Enter() {
	e := s.enqueued.Add(1)
	depth := e - s.done.Load()
	for {
		max := s.maxDepth.Load()
		if depth <= max || s.maxDepth.CompareAndSwap(max, depth) {
			return
		}
	}
}

// Exit records an item leaving the stage after nanos of service time.
func (s *Stage) Exit(nanos int64) {
	s.done.Add(1)
	s.nanos.Add(nanos)
}

// StageSnapshot is a consistent-enough point-in-time read of a Stage.
type StageSnapshot struct {
	Enqueued int64
	Done     int64
	Depth    int64 // currently in the stage
	MaxDepth int64
	Nanos    int64 // total service time
}

// Snapshot reads the stage counters.
func (s *Stage) Snapshot() StageSnapshot {
	e := s.enqueued.Load()
	d := s.done.Load()
	return StageSnapshot{
		Enqueued: e,
		Done:     d,
		Depth:    e - d,
		MaxDepth: s.maxDepth.Load(),
		Nanos:    s.nanos.Load(),
	}
}

// MeanNanos is the mean service time per completed item.
func (s StageSnapshot) MeanNanos() float64 {
	if s.Done == 0 {
		return 0
	}
	return float64(s.Nanos) / float64(s.Done)
}

// StageSet groups the staged engine's three stages. A nil *StageSet is
// valid and records nothing, so instrumentation can be left unwired.
type StageSet struct {
	Gate   Stage // admission: NextRound + Decide
	Decode Stage // rounds in the decode pool
	Infer  Stage // rounds in filter/infer + feedback
}

// GateStage returns the gate stage, or nil for a nil set.
func (ss *StageSet) GateStage() *Stage {
	if ss == nil {
		return nil
	}
	return &ss.Gate
}

// DecodeStage returns the decode stage, or nil for a nil set.
func (ss *StageSet) DecodeStage() *Stage {
	if ss == nil {
		return nil
	}
	return &ss.Decode
}

// InferStage returns the infer stage, or nil for a nil set.
func (ss *StageSet) InferStage() *Stage {
	if ss == nil {
		return nil
	}
	return &ss.Infer
}

// StageEnter records entry on a possibly-nil stage.
func StageEnter(s *Stage) {
	if s != nil {
		s.Enter()
	}
}

// StageExit records exit on a possibly-nil stage.
func StageExit(s *Stage, nanos int64) {
	if s != nil {
		s.Exit(nanos)
	}
}
