package infer

import (
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

func TestTaskNames(t *testing.T) {
	want := map[string]bool{"PC": true, "AD": true, "SR": true, "FD": true}
	for _, task := range AllTasks() {
		if !want[task.Name()] {
			t.Errorf("unexpected task %q", task.Name())
		}
		delete(want, task.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing tasks: %v", want)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"PC", "pc", "AD", "ad", "SR", "sr", "FD", "fd"} {
		task, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if task == nil {
			t.Fatalf("ByName(%q) returned nil task", name)
		}
	}
	if _, err := ByName("OCR"); err == nil {
		t.Error("unknown task must error")
	}
}

func TestPersonCounting(t *testing.T) {
	task := PersonCounting{}
	r := task.ResultOf(codec.Scene{PersonCount: 3})
	if r.Count != 3 {
		t.Errorf("count = %d, want 3", r.Count)
	}
	if task.Necessary(Result{Count: 3}, Result{Count: 3}) {
		t.Error("same count must be redundant")
	}
	if !task.Necessary(Result{Count: 3}, Result{Count: 4}) {
		t.Error("changed count must be necessary")
	}
	if !task.Same(Result{Count: 2}, Result{Count: 2}) || task.Same(Result{Count: 2}, Result{Count: 1}) {
		t.Error("Same must compare counts")
	}
}

func TestLabelTasks(t *testing.T) {
	cases := []struct {
		task  Task
		scene codec.Scene
	}{
		{AnomalyDetection{}, codec.Scene{Anomaly: true}},
		{SuperResolution{}, codec.Scene{QualityDrop: true}},
		{FireDetection{}, codec.Scene{Fire: true}},
	}
	for _, c := range cases {
		pos := c.task.ResultOf(c.scene)
		neg := c.task.ResultOf(codec.Scene{})
		if !pos.Label || neg.Label {
			t.Errorf("%s: labels pos=%v neg=%v", c.task.Name(), pos.Label, neg.Label)
		}
		// A positive result is always necessary.
		if !c.task.Necessary(pos, pos) {
			t.Errorf("%s: persisting positive must stay necessary", c.task.Name())
		}
		// The transition back to negative is necessary once.
		if !c.task.Necessary(pos, neg) {
			t.Errorf("%s: positive→negative transition must be necessary", c.task.Name())
		}
		// Steady negative is redundant.
		if c.task.Necessary(neg, neg) {
			t.Errorf("%s: steady negative must be redundant", c.task.Name())
		}
	}
}

func TestBaseFPSPositive(t *testing.T) {
	for _, task := range AllTasks() {
		if task.BaseFPS() <= 0 {
			t.Errorf("%s: BaseFPS = %v", task.Name(), task.BaseFPS())
		}
	}
}

func TestNoiseFlipsAtConfiguredRate(t *testing.T) {
	n := NewNoise(0.3, 7)
	flips := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if n.flip() {
			flips++
		}
	}
	rate := float64(flips) / trials
	if rate < 0.28 || rate > 0.32 {
		t.Errorf("flip rate = %.3f, want ~0.30", rate)
	}
	var nilNoise *Noise
	if nilNoise.flip() {
		t.Error("nil noise must never flip")
	}
}

func TestNoisyCountStaysNonNegative(t *testing.T) {
	task := PersonCounting{Noise: NewNoise(1, 3)}
	for i := 0; i < 1000; i++ {
		if r := task.ResultOf(codec.Scene{PersonCount: 0}); r.Count < 0 {
			t.Fatal("noisy count went negative")
		}
	}
}

func TestInferHelper(t *testing.T) {
	f := decode.Frame{Scene: codec.Scene{PersonCount: 5}}
	if r := Infer(PersonCounting{}, f); r.Count != 5 {
		t.Errorf("Infer = %+v", r)
	}
}

func TestMonitorPerfectDecodingIsAccurate(t *testing.T) {
	m := NewMonitor(PersonCounting{})
	model := codec.NewSceneModel(codec.SceneConfig{BaseActivity: 0.7}, 3)
	for i := 0; i < 2000; i++ {
		s := model.Next()
		m.ObserveDecoded(s, s)
	}
	if acc := m.Accuracy(); acc != 1 {
		t.Errorf("decode-everything accuracy = %v, want 1", acc)
	}
}

func TestMonitorStalenessCostsAccuracy(t *testing.T) {
	// Skip every round after the first; accuracy must fall below 1 once
	// the count changes.
	m := NewMonitor(PersonCounting{})
	m.ObserveDecoded(codec.Scene{PersonCount: 0}, codec.Scene{PersonCount: 0})
	for i := 0; i < 10; i++ {
		m.ObserveSkipped(codec.Scene{PersonCount: 2})
	}
	rounds, correct, decoded, _ := m.Stats()
	if rounds != 11 || decoded != 1 {
		t.Fatalf("rounds=%d decoded=%d", rounds, decoded)
	}
	if correct != 1 {
		t.Errorf("correct = %d, want 1 (only the decoded round)", correct)
	}
}

func TestMonitorFeedbackSemantics(t *testing.T) {
	m := NewMonitor(PersonCounting{})
	// First decode is always necessary (nothing emitted before).
	if !m.ObserveDecoded(codec.Scene{PersonCount: 0}, codec.Scene{PersonCount: 0}) {
		t.Error("first decode must be necessary")
	}
	if m.ObserveDecoded(codec.Scene{PersonCount: 0}, codec.Scene{PersonCount: 0}) {
		t.Error("unchanged count must be redundant")
	}
	if !m.ObserveDecoded(codec.Scene{PersonCount: 1}, codec.Scene{PersonCount: 1}) {
		t.Error("changed count must be necessary")
	}
}

func TestMonitorZeroStartAccuracy(t *testing.T) {
	// Before anything is decoded, the implicit zero result is correct for
	// zero-truth rounds only.
	m := NewMonitor(PersonCounting{})
	m.ObserveSkipped(codec.Scene{PersonCount: 0})
	m.ObserveSkipped(codec.Scene{PersonCount: 2})
	rounds, correct, _, _ := m.Stats()
	if rounds != 2 || correct != 1 {
		t.Errorf("rounds=%d correct=%d, want 2/1", rounds, correct)
	}
}

func TestMonitorEmitted(t *testing.T) {
	m := NewMonitor(AnomalyDetection{})
	if _, ok := m.Emitted(); ok {
		t.Error("nothing emitted yet")
	}
	m.ObserveDecoded(codec.Scene{Anomaly: true}, codec.Scene{Anomaly: true})
	r, ok := m.Emitted()
	if !ok || !r.Label {
		t.Errorf("emitted = %+v ok=%v", r, ok)
	}
}

func TestFleetAggregation(t *testing.T) {
	f := NewFleet(FireDetection{}, 3)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	f.Stream(0).ObserveDecoded(codec.Scene{Fire: true}, codec.Scene{Fire: true})
	f.Stream(1).ObserveSkipped(codec.Scene{Fire: true}) // stale zero → wrong
	f.Stream(2).ObserveSkipped(codec.Scene{})           // zero truth → right
	rounds, correct, decoded, necessary := f.Totals()
	if rounds != 3 || correct != 2 || decoded != 1 || necessary != 1 {
		t.Errorf("totals = %d %d %d %d", rounds, correct, decoded, necessary)
	}
	want := (1.0 + 0.0 + 1.0) / 3
	if acc := f.Accuracy(); acc != want {
		t.Errorf("fleet accuracy = %v, want %v", acc, want)
	}
}

func TestEmptyFleetAndMonitorDefaults(t *testing.T) {
	if acc := NewFleet(PersonCounting{}, 0).Accuracy(); acc != 1 {
		t.Errorf("empty fleet accuracy = %v", acc)
	}
	if acc := NewMonitor(PersonCounting{}).Accuracy(); acc != 1 {
		t.Errorf("fresh monitor accuracy = %v", acc)
	}
}

func TestPositiveClassification(t *testing.T) {
	if (PersonCounting{}).Positive(Result{Count: 0}) {
		t.Error("empty view must be negative")
	}
	if !(PersonCounting{}).Positive(Result{Count: 2}) {
		t.Error("occupied view must be positive")
	}
	for _, task := range []Task{AnomalyDetection{}, SuperResolution{}, FireDetection{}} {
		if task.Positive(Result{Label: false}) || !task.Positive(Result{Label: true}) {
			t.Errorf("%s: Positive must follow the label", task.Name())
		}
	}
}

func TestMonitorBalancedAccuracy(t *testing.T) {
	m := NewMonitor(AnomalyDetection{})
	// 9 correct quiet rounds, 1 missed anomaly round: plain accuracy 0.9,
	// balanced 0.5.
	m.ObserveDecoded(codec.Scene{}, codec.Scene{})
	for i := 0; i < 8; i++ {
		m.ObserveSkipped(codec.Scene{})
	}
	m.ObserveSkipped(codec.Scene{Anomaly: true})
	if acc := m.Accuracy(); acc != 0.9 {
		t.Errorf("plain accuracy = %v, want 0.9", acc)
	}
	if bal := m.BalancedAccuracy(); bal != 0.5 {
		t.Errorf("balanced accuracy = %v, want 0.5", bal)
	}
	nr, nc, pr, pc := m.ClassStats()
	if nr != 9 || nc != 9 || pr != 1 || pc != 0 {
		t.Errorf("class stats = %d/%d %d/%d", nc, nr, pc, pr)
	}
}

func TestMonitorBalancedSingleClass(t *testing.T) {
	// Only negative rounds: balanced equals the negative-class accuracy.
	m := NewMonitor(FireDetection{})
	m.ObserveDecoded(codec.Scene{}, codec.Scene{})
	m.ObserveSkipped(codec.Scene{})
	if bal := m.BalancedAccuracy(); bal != 1 {
		t.Errorf("single-class balanced = %v", bal)
	}
	if bal := NewMonitor(FireDetection{}).BalancedAccuracy(); bal != 1 {
		t.Errorf("fresh monitor balanced = %v", bal)
	}
}

func TestFleetBalancedAccuracyPoolsClasses(t *testing.T) {
	f := NewFleet(FireDetection{}, 2)
	// Stream 0: one correct negative round. Stream 1: one missed positive.
	f.Stream(0).ObserveDecoded(codec.Scene{}, codec.Scene{})
	f.Stream(1).ObserveSkipped(codec.Scene{Fire: true})
	if bal := f.BalancedAccuracy(); bal != 0.5 {
		t.Errorf("fleet balanced = %v, want 0.5", bal)
	}
	nr, nc, pr, pc := f.ClassTotals()
	if nr != 1 || nc != 1 || pr != 1 || pc != 0 {
		t.Errorf("class totals = %d/%d %d/%d", nc, nr, pc, pr)
	}
	if bal := NewFleet(FireDetection{}, 0).BalancedAccuracy(); bal != 1 {
		t.Errorf("empty fleet balanced = %v", bal)
	}
}

func TestNoisyLabelTask(t *testing.T) {
	task := AnomalyDetection{Noise: NewNoise(1, 5)}
	// With flip probability 1, the label always inverts.
	if task.ResultOf(codec.Scene{Anomaly: true}).Label {
		t.Error("noise P=1 must flip the label")
	}
	if !task.ResultOf(codec.Scene{}).Label {
		t.Error("noise P=1 must flip the negative label too")
	}
}
