package infer

import "packetgame/internal/codec"

// Monitor tracks the emitted (possibly stale) inference result of one stream
// under gating, producing redundancy feedback for decoded frames and
// accuracy samples against ground truth.
//
// When a packet is gated away, the stream's previously emitted result stands;
// the round counts as accurate only if that stale result still matches the
// ground-truth result of the live scene. Rounds are additionally split by
// the ground truth's event class (Task.Positive) so balanced accuracy can
// weigh rare events properly: a policy that never decodes scores ~0.5
// balanced accuracy on a rare-event task instead of ~1.0 plain accuracy.
type Monitor struct {
	task    Task
	emitted Result
	started bool

	rounds  [2]int64 // [negative, positive] ground-truth rounds
	correct [2]int64
	decoded int64
	reward  int64 // decoded frames that were necessary
}

// NewMonitor creates a monitor for one stream running the given task.
func NewMonitor(task Task) *Monitor { return &Monitor{task: task} }

// Task returns the monitored task.
func (m *Monitor) Task() Task { return m.task }

// ObserveDecoded folds in a round whose packet was decoded and inferred.
// truth is the ground-truth scene of the round (used for accuracy);
// observed is the scene recovered by the decoder (normally identical).
// It returns the redundancy feedback: true if the inference was necessary.
func (m *Monitor) ObserveDecoded(truth, observed codec.Scene) bool {
	cur := m.task.ResultOf(observed)
	necessary := m.task.Necessary(m.emitted, cur) || !m.started
	m.emitted = cur
	m.started = true
	m.decoded++
	if necessary {
		m.reward++
	}
	m.score(truth)
	return necessary
}

// ObserveSkipped folds in a round whose packet was gated away.
func (m *Monitor) ObserveSkipped(truth codec.Scene) {
	m.score(truth)
}

func (m *Monitor) score(truth codec.Scene) {
	want := m.task.ResultOf(truth)
	cls := 0
	if m.task.Positive(want) {
		cls = 1
	}
	m.rounds[cls]++
	ok := false
	if m.started {
		ok = m.task.Same(m.emitted, want)
	} else {
		// Nothing emitted yet; the zero result is correct only if the
		// ground truth is the zero result too.
		ok = m.task.Same(Result{}, want)
	}
	if ok {
		m.correct[cls]++
	}
}

// Emitted returns the currently emitted result.
func (m *Monitor) Emitted() (Result, bool) { return m.emitted, m.started }

// Accuracy returns the fraction of rounds whose emitted result matched
// ground truth.
func (m *Monitor) Accuracy() float64 {
	total := m.rounds[0] + m.rounds[1]
	if total == 0 {
		return 1
	}
	return float64(m.correct[0]+m.correct[1]) / float64(total)
}

// BalancedAccuracy averages the per-class accuracies, counting only classes
// the stream actually exhibited.
func (m *Monitor) BalancedAccuracy() float64 {
	var sum float64
	n := 0
	for c := 0; c < 2; c++ {
		if m.rounds[c] > 0 {
			sum += float64(m.correct[c]) / float64(m.rounds[c])
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Stats returns the raw counters: observed rounds, accurate rounds, decoded
// frames, and necessary decodes.
func (m *Monitor) Stats() (rounds, correct, decoded, necessary int64) {
	return m.rounds[0] + m.rounds[1], m.correct[0] + m.correct[1], m.decoded, m.reward
}

// ClassStats returns the per-class counters: (negRounds, negCorrect,
// posRounds, posCorrect).
func (m *Monitor) ClassStats() (nr, nc, pr, pc int64) {
	return m.rounds[0], m.correct[0], m.rounds[1], m.correct[1]
}

// Fleet is a set of per-stream monitors for one task.
type Fleet struct {
	task     Task
	monitors []*Monitor
}

// NewFleet creates m monitors.
func NewFleet(task Task, m int) *Fleet {
	f := &Fleet{task: task, monitors: make([]*Monitor, m)}
	for i := range f.monitors {
		f.monitors[i] = NewMonitor(task)
	}
	return f
}

// NewFleetOf creates m monitors with per-stream tasks: stream i runs
// tasks[i mod len(tasks)] — a mixed deployment where co-located models with
// different priorities share one gate. tasks must be non-empty.
func NewFleetOf(tasks []Task, m int) *Fleet {
	f := &Fleet{task: tasks[0], monitors: make([]*Monitor, m)}
	for i := range f.monitors {
		f.monitors[i] = NewMonitor(tasks[i%len(tasks)])
	}
	return f
}

// Stream returns stream i's monitor.
func (f *Fleet) Stream(i int) *Monitor { return f.monitors[i] }

// Len returns the number of streams.
func (f *Fleet) Len() int { return len(f.monitors) }

// Accuracy returns the mean plain accuracy across streams.
func (f *Fleet) Accuracy() float64 {
	if len(f.monitors) == 0 {
		return 1
	}
	var sum float64
	for _, m := range f.monitors {
		sum += m.Accuracy()
	}
	return sum / float64(len(f.monitors))
}

// BalancedAccuracy pools the class counters across the fleet and averages
// the two class accuracies.
func (f *Fleet) BalancedAccuracy() float64 {
	var nr, nc, pr, pc int64
	for _, m := range f.monitors {
		a, b, c, d := m.ClassStats()
		nr += a
		nc += b
		pr += c
		pc += d
	}
	var sum float64
	n := 0
	if nr > 0 {
		sum += float64(nc) / float64(nr)
		n++
	}
	if pr > 0 {
		sum += float64(pc) / float64(pr)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Totals aggregates raw counters across streams.
func (f *Fleet) Totals() (rounds, correct, decoded, necessary int64) {
	for _, m := range f.monitors {
		r, c, d, n := m.Stats()
		rounds += r
		correct += c
		decoded += d
		necessary += n
	}
	return
}

// ClassTotals aggregates the class-split counters across streams.
func (f *Fleet) ClassTotals() (nr, nc, pr, pc int64) {
	for _, m := range f.monitors {
		a, b, c, d := m.ClassStats()
		nr += a
		nc += b
		pr += c
		pc += d
	}
	return
}
