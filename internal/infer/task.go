// Package infer simulates the downstream inference stage: the four
// evaluation tasks of the paper (person counting, anomaly detection,
// super-resolution, fire detection), their redundancy feedback, and the
// per-stream monitors that track stale results when packets are gated away.
package infer

import (
	"fmt"
	"math/rand"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

// Result is one inference output. Count is meaningful for counting tasks,
// Label for detection/classification tasks.
type Result struct {
	Count int
	Label bool
}

// Task is a simulated inference model over decoded frames. Implementations
// are pure functions of the scene (optionally with observation noise), so
// oracles can compute ground truth without paying decode cost.
type Task interface {
	// Name returns the task's short name (PC, AD, SR, FD).
	Name() string
	// ResultOf computes the inference result for a scene.
	ResultOf(s codec.Scene) Result
	// Same reports whether two results are equivalent for accuracy and
	// redundancy purposes.
	Same(a, b Result) bool
	// Necessary reports the redundancy feedback (§5.1): true means the
	// inference on cur was necessary (reward 1), given the previously
	// emitted result prev.
	Necessary(prev, cur Result) bool
	// BaseFPS is the throughput of the unaccelerated reference model in
	// frames per second (used by the Fig 2 / Tab 5 concurrency math).
	BaseFPS() float64
	// Positive reports whether a result belongs to the event-positive
	// class (people in view, anomaly, quality drop, fire). Balanced
	// accuracy weighs positive- and negative-class rounds equally, so
	// rare-event workloads cannot score well by never decoding.
	Positive(r Result) bool
}

// Infer runs a task on a decoded frame.
func Infer(t Task, f decode.Frame) Result { return t.ResultOf(f.Scene) }

// PersonCounting (PC) counts visible people; an inference is necessary when
// the count changed versus the latest emitted one (paper §3.2).
type PersonCounting struct {
	// Noise, if non-nil, perturbs counts by ±1 with probability P.
	Noise *Noise
}

// Name implements Task.
func (PersonCounting) Name() string { return "PC" }

// ResultOf implements Task.
func (t PersonCounting) ResultOf(s codec.Scene) Result {
	c := s.PersonCount
	if t.Noise.flip() {
		if t.Noise.rng.Intn(2) == 0 && c > 0 {
			c--
		} else {
			c++
		}
	}
	return Result{Count: c}
}

// Same implements Task.
func (PersonCounting) Same(a, b Result) bool { return a.Count == b.Count }

// Necessary implements Task.
func (t PersonCounting) Necessary(prev, cur Result) bool { return !t.Same(prev, cur) }

// BaseFPS implements Task: YOLOX at 27.7 FPS (Fig 2a).
func (PersonCounting) BaseFPS() float64 { return 27.7 }

// Positive implements Task.
func (PersonCounting) Positive(r Result) bool { return r.Count > 0 }

// AnomalyDetection (AD) classifies frames as normal/abnormal; abnormal frames
// are necessary (the paper's running feedback example, §4.1).
type AnomalyDetection struct {
	Noise *Noise
}

// Name implements Task.
func (AnomalyDetection) Name() string { return "AD" }

// ResultOf implements Task.
func (t AnomalyDetection) ResultOf(s codec.Scene) Result {
	return Result{Label: s.Anomaly != t.Noise.flip()}
}

// Same implements Task.
func (AnomalyDetection) Same(a, b Result) bool { return a.Label == b.Label }

// Necessary implements Task: an abnormal result is necessary, and so is the
// transition back to normal (the emitted state must be corrected).
func (t AnomalyDetection) Necessary(prev, cur Result) bool {
	return cur.Label || prev.Label != cur.Label
}

// BaseFPS implements Task: pose-based action classification, ~31 FPS.
func (AnomalyDetection) BaseFPS() float64 { return 31 }

// Positive implements Task.
func (AnomalyDetection) Positive(r Result) bool { return r.Label }

// SuperResolution (SR) enhances quality-degraded live frames; frames inside
// a bandwidth-induced quality drop are necessary.
type SuperResolution struct {
	Noise *Noise
}

// Name implements Task.
func (SuperResolution) Name() string { return "SR" }

// ResultOf implements Task.
func (t SuperResolution) ResultOf(s codec.Scene) Result {
	return Result{Label: s.QualityDrop != t.Noise.flip()}
}

// Same implements Task.
func (SuperResolution) Same(a, b Result) bool { return a.Label == b.Label }

// Necessary implements Task.
func (t SuperResolution) Necessary(prev, cur Result) bool {
	return cur.Label || prev.Label != cur.Label
}

// BaseFPS implements Task: neural super-resolution, ~11 FPS.
func (SuperResolution) BaseFPS() float64 { return 11 }

// Positive implements Task.
func (SuperResolution) Positive(r Result) bool { return r.Label }

// FireDetection (FD) detects visible fire on mobile footage; fire frames are
// necessary.
type FireDetection struct {
	Noise *Noise
}

// Name implements Task.
func (FireDetection) Name() string { return "FD" }

// ResultOf implements Task.
func (t FireDetection) ResultOf(s codec.Scene) Result {
	return Result{Label: s.Fire != t.Noise.flip()}
}

// Same implements Task.
func (FireDetection) Same(a, b Result) bool { return a.Label == b.Label }

// Necessary implements Task.
func (t FireDetection) Necessary(prev, cur Result) bool {
	return cur.Label || prev.Label != cur.Label
}

// BaseFPS implements Task: lightweight FireNet classifier, ~52 FPS.
func (FireDetection) BaseFPS() float64 { return 52 }

// Positive implements Task.
func (FireDetection) Positive(r Result) bool { return r.Label }

// Noise injects observation errors into a task with probability P.
type Noise struct {
	P   float64
	rng *rand.Rand
}

// NewNoise creates a noise source.
func NewNoise(p float64, seed int64) *Noise {
	return &Noise{P: p, rng: rand.New(rand.NewSource(seed))}
}

// flip reports whether this observation should be corrupted. A nil Noise
// never flips.
func (n *Noise) flip() bool {
	return n != nil && n.P > 0 && n.rng.Float64() < n.P
}

// ByName returns the noiseless task with the given short name.
func ByName(name string) (Task, error) {
	switch name {
	case "PC", "pc":
		return PersonCounting{}, nil
	case "AD", "ad":
		return AnomalyDetection{}, nil
	case "SR", "sr":
		return SuperResolution{}, nil
	case "FD", "fd":
		return FireDetection{}, nil
	}
	return nil, fmt.Errorf("infer: unknown task %q", name)
}

// AllTasks returns the four evaluation tasks, noiseless.
func AllTasks() []Task {
	return []Task{PersonCounting{}, AnomalyDetection{}, SuperResolution{}, FireDetection{}}
}
