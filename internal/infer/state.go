package infer

// MonitorState is one stream's portable inference-monitor state. The emitted
// result and started flag are load-bearing for gating decisions — redundancy
// feedback ("was this inference necessary?") compares against the previously
// emitted result — so a migrating stream must carry them or its post-
// migration feedback diverges from a monitor that saw the whole history. The
// accuracy counters ride along so recall accounting follows the stream to
// its new owner instead of being double- or under-counted.
type MonitorState struct {
	Emitted Result
	Started bool

	NegRounds  int64
	NegCorrect int64
	PosRounds  int64
	PosCorrect int64
	Decoded    int64
	Reward     int64
}

// Export extracts the monitor's state. The monitor is unchanged.
func (m *Monitor) Export() MonitorState {
	return MonitorState{
		Emitted:    m.emitted,
		Started:    m.started,
		NegRounds:  m.rounds[0],
		NegCorrect: m.correct[0],
		PosRounds:  m.rounds[1],
		PosCorrect: m.correct[1],
		Decoded:    m.decoded,
		Reward:     m.reward,
	}
}

// Import overwrites the monitor's state with an exported one. The task is
// the receiver's own and must match the donor's.
func (m *Monitor) Import(st MonitorState) {
	m.emitted = st.Emitted
	m.started = st.Started
	m.rounds[0] = st.NegRounds
	m.correct[0] = st.NegCorrect
	m.rounds[1] = st.PosRounds
	m.correct[1] = st.PosCorrect
	m.decoded = st.Decoded
	m.reward = st.Reward
}

// Reset returns the monitor to the fresh (nothing emitted) state.
func (m *Monitor) Reset() {
	m.emitted = Result{}
	m.started = false
	m.rounds = [2]int64{}
	m.correct = [2]int64{}
	m.decoded = 0
	m.reward = 0
}
