package overload

import (
	"fmt"
	"sync"
)

// Planner supplies the effective budget and degradation mode a gating round
// plans against. *Governor is the closed-loop implementation; Scripted
// replays a recorded trajectory for determinism audits.
type Planner interface {
	Plan() (budget float64, mode Mode)
}

// ParseMode maps a mode name (as produced by Mode.String) back to its Mode.
// The empty string parses as ModeFull: decision traces written before the
// mode field existed carry no rung, and those runs were ungoverned.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "", "full":
		return ModeFull, nil
	case "temporal-only":
		return ModeTemporalOnly, nil
	case "keyframe-only":
		return ModeKeyframeOnly, nil
	case "shed":
		return ModeShed, nil
	default:
		return 0, fmt.Errorf("overload: unknown mode %q", name)
	}
}

// Scripted is a Planner that replays an externally supplied (budget, mode)
// trajectory: a replay harness calls Set with the recorded round's values
// before each Decide, pinning the gate to the exact overload state of the
// recorded run instead of re-running the control loop against unreproducible
// wall-clock latencies. Safe for concurrent use.
type Scripted struct {
	mu   sync.Mutex
	bEff float64
	mode Mode
}

// NewScripted starts a scripted planner at the given budget in ModeFull.
func NewScripted(budget float64) *Scripted {
	return &Scripted{bEff: budget}
}

// Set pins the budget and mode the next Plan returns.
func (s *Scripted) Set(budget float64, mode Mode) {
	s.mu.Lock()
	s.bEff = budget
	s.mode = mode
	s.mu.Unlock()
}

// Plan implements Planner.
func (s *Scripted) Plan() (float64, Mode) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bEff, s.mode
}
