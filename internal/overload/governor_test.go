package overload

import (
	"testing"
	"time"

	"packetgame/internal/metrics"
)

func mustGovernor(t *testing.T, cfg Config) *Governor {
	t.Helper()
	g, err := NewGovernor(cfg)
	if err != nil {
		t.Fatalf("NewGovernor: %v", err)
	}
	return g
}

func TestGovernorValidation(t *testing.T) {
	bad := []Config{
		{},
		{SLO: time.Millisecond},                                              // no budget
		{SLO: -time.Millisecond, Budget: 10},                                 // negative SLO
		{SLO: time.Millisecond, Budget: 10, Cut: 1.5},                        // cut >= 1
		{SLO: time.Millisecond, Budget: 10, Alpha: 2},                        // alpha > 1
		{SLO: time.Millisecond, Budget: 10, Guard: 1.2},                      // guard > 1
		{SLO: time.Millisecond, Budget: 10, Guard: 0.5, Headroom: 0.6},       // headroom >= guard
		{SLO: time.Millisecond, Budget: 10, MinBudget: 20},                   // min > budget
		{SLO: time.Millisecond, Budget: 10, EnterAfter: -1},                  // negative hysteresis
		{SLO: time.Millisecond, Budget: 10, ExitAfter: -3},                   // negative hysteresis
		{SLO: time.Millisecond, Budget: 10, SaturatedDepth: -1},              // negative depth
		{SLO: time.Millisecond, Budget: 10, Step: -1},                        // negative step
	}
	for i, cfg := range bad {
		if _, err := NewGovernor(cfg); err == nil {
			t.Errorf("config %d: expected error, got nil", i)
		}
	}
	if _, err := NewGovernor(Config{SLO: 50 * time.Millisecond, Budget: 40}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestGovernorAIMD(t *testing.T) {
	cfg := Config{
		SLO: 100 * time.Millisecond, Budget: 64,
		Cut: 0.5, Step: 2, MinBudget: 4,
		EnterAfter: 3, ExitAfter: 4,
	}
	g := mustGovernor(t, cfg)

	b, mode := g.Plan()
	if b != 64 || mode != ModeFull {
		t.Fatalf("initial plan = (%v, %v), want (64, full)", b, mode)
	}

	// One pressured round: multiplicative cut, no mode change yet.
	g.Observe(95*time.Millisecond, 0)
	b, mode = g.Plan()
	if b != 32 || mode != ModeFull {
		t.Fatalf("after 1 cut plan = (%v, %v), want (32, full)", b, mode)
	}

	// Healthy rounds with headroom raise additively back toward Budget. The
	// first healthy round is still gated by the spiked EWMA (93.75ms →
	// 73.75ms, above Headroom·SLO = 65ms), so 3 rounds yield 2 raises.
	for i := 0; i < 3; i++ {
		g.Observe(10*time.Millisecond, 0)
	}
	b, _ = g.Plan()
	if b != 36 {
		t.Fatalf("after 3 healthy rounds B_eff = %v, want 36 (2 raises)", b)
	}

	// Healthy but *without* headroom (between Headroom·SLO and Guard·SLO):
	// neither cut nor raise.
	g.Observe(80*time.Millisecond, 0)
	if b2, _ := g.Plan(); b2 != 36 {
		t.Fatalf("no-headroom round changed B_eff to %v", b2)
	}

	// Cuts floor at MinBudget.
	for i := 0; i < 20; i++ {
		g.Observe(200*time.Millisecond, 0)
	}
	if b, _ = g.Plan(); b != 4 {
		t.Fatalf("B_eff floor = %v, want MinBudget=4", b)
	}

	// Raises cap at the nominal budget. The EWMA is saturated high from the
	// cut storm, so allow it to drain first; raises resume once both the
	// sample and the EWMA show headroom.
	for i := 0; i < 200; i++ {
		g.Observe(5*time.Millisecond, 0)
	}
	if b, _ = g.Plan(); b != 64 {
		t.Fatalf("B_eff cap = %v, want Budget=64", b)
	}
}

func TestGovernorLadderHysteresis(t *testing.T) {
	cfg := Config{
		SLO: 100 * time.Millisecond, Budget: 64,
		EnterAfter: 2, ExitAfter: 3,
	}
	g := mustGovernor(t, cfg)

	press := func() { g.Observe(150*time.Millisecond, 0) }
	heal := func() { g.Observe(5*time.Millisecond, 0) }

	// A single pressured round must not step down.
	press()
	if _, mode := g.Plan(); mode != ModeFull {
		t.Fatalf("mode after 1 pressured round = %v, want full", mode)
	}
	// A healthy round resets the pressure streak.
	heal()
	press()
	if _, mode := g.Plan(); mode != ModeFull {
		t.Fatalf("streak not reset by healthy round")
	}
	// Two consecutive pressured rounds step down one rung.
	press()
	if _, mode := g.Plan(); mode != ModeTemporalOnly {
		t.Fatalf("mode after EnterAfter pressured rounds = %v, want temporal-only", mode)
	}
	// Descend all the way; the ladder clamps at shed.
	for i := 0; i < 10; i++ {
		press()
	}
	if _, mode := g.Plan(); mode != ModeShed {
		t.Fatalf("ladder did not clamp at shed")
	}

	// ExitAfter healthy rounds step back up exactly one rung at a time.
	heal()
	heal()
	if _, mode := g.Plan(); mode != ModeShed {
		t.Fatalf("stepped up before ExitAfter healthy rounds")
	}
	heal()
	if _, mode := g.Plan(); mode != ModeKeyframeOnly {
		t.Fatalf("did not step up after ExitAfter healthy rounds")
	}
	for i := 0; i < 3*3; i++ {
		heal()
	}
	if _, mode := g.Plan(); mode != ModeFull {
		t.Fatalf("ladder did not recover to full")
	}

	snap := g.Snapshot()
	if snap.StepDowns != 3 || snap.StepUps != 3 {
		t.Fatalf("transition counters = (%d down, %d up), want (3, 3)", snap.StepDowns, snap.StepUps)
	}
}

func TestGovernorSaturatedDepthIsPressure(t *testing.T) {
	g := mustGovernor(t, Config{
		SLO: 100 * time.Millisecond, Budget: 64,
		SaturatedDepth: 8, EnterAfter: 1,
	})
	// Latency is nominal but the queue is saturated: still pressure.
	g.Observe(5*time.Millisecond, 8)
	b, mode := g.Plan()
	if b >= 64 {
		t.Fatalf("saturated depth did not cut budget: B_eff=%v", b)
	}
	if mode != ModeTemporalOnly {
		t.Fatalf("saturated depth did not step ladder: mode=%v", mode)
	}
}

func TestGovernorStats(t *testing.T) {
	var stats metrics.OverloadStats
	g := mustGovernor(t, Config{
		SLO: 100 * time.Millisecond, Budget: 64,
		EnterAfter: 1, ExitAfter: 1, Alpha: 1, Stats: &stats,
	})
	g.Observe(150*time.Millisecond, 0) // miss + cut + step down
	g.Observe(5*time.Millisecond, 0)   // raise + step up
	s := stats.Snapshot()
	if s.SLOMisses != 1 || s.Cuts != 1 || s.Raises != 1 || s.StepDowns != 1 || s.StepUps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ModeRounds[0] != 1 || s.ModeRounds[1] != 1 {
		t.Fatalf("mode rounds = %v", s.ModeRounds)
	}
	want := g.Snapshot().BEff
	if s.BEff != want {
		t.Fatalf("B_eff gauge = %v, want %v", s.BEff, want)
	}
	gs := g.Snapshot()
	if gs.Rounds != 2 || gs.SLOMisses != 1 || gs.Pressured != 1 {
		t.Fatalf("governor snapshot = %+v", gs)
	}
}

func TestGovernorDeterminism(t *testing.T) {
	run := func() []Snapshot {
		g := mustGovernor(t, Config{SLO: 50 * time.Millisecond, Budget: 96})
		var out []Snapshot
		lat := int64(10 * time.Millisecond)
		for i := 0; i < 500; i++ {
			// A deterministic sawtooth crossing the guard band repeatedly.
			lat = (lat*13)%int64(90*time.Millisecond) + int64(time.Millisecond)
			g.Observe(time.Duration(lat), i%11)
			out = append(out, g.Snapshot())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trajectories diverge at round %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestModeString(t *testing.T) {
	want := map[Mode]string{
		ModeFull: "full", ModeTemporalOnly: "temporal-only",
		ModeKeyframeOnly: "keyframe-only", ModeShed: "shed",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("Mode(%d).String() = %q, want %q", m, m.String(), s)
		}
	}
	if Mode(9).String() != "Mode(9)" {
		t.Errorf("unknown mode string = %q", Mode(9).String())
	}
}
