// Package overload closes the loop from observed round latency back into
// the gating decision. PacketGame's formalization fixes the decoding budget
// B per round (§5.3), but the workloads it targets are diurnal: the campus
// deployment's necessary-decode demand roughly doubles at rush hour
// (Fig 4a), and a budget sized for the trough silently blows any latency
// objective at the peak. The Governor holds a per-round latency SLO by
// adapting the *effective* budget B_eff with AIMD — additive raise on
// healthy rounds with headroom, multiplicative cut under pressure — and,
// when budget cuts alone cannot restore the SLO, descends an ordered
// degradation ladder (full → temporal-only → keyframe-only → shed) so the
// system gives up the lowest-utility work first instead of stalling the
// pipeline. Mode transitions carry entry/exit hysteresis so a noisy latency
// signal cannot flap the ladder.
//
// The Governor is pure arithmetic over the latencies it is fed: it never
// reads a clock or a random source, so a deterministic (virtual-time)
// latency feed yields bit-identical budget and mode trajectories — the
// property the overload soak asserts.
package overload

import (
	"fmt"
	"sync"
	"time"

	"packetgame/internal/metrics"
)

// Mode is a rung of the degradation ladder, ordered from full service to
// maximal shedding.
type Mode uint8

const (
	// ModeFull is normal operation: contextual predictor, all packet types,
	// all priority tiers.
	ModeFull Mode = iota
	// ModeTemporalOnly skips the contextual predictor: confidence comes
	// from the temporal estimator alone (the same scoring path a
	// poisoned-window stream degrades to), shedding the inference cost of
	// the gate stage.
	ModeTemporalOnly
	// ModeKeyframeOnly admits only I-packets: predicted frames (and their
	// reference chains) are shed wholesale, bounding per-round decode cost
	// by the keyframe cadence.
	ModeKeyframeOnly
	// ModeShed admits only top-tier (priority 0) I-packets: everything
	// else is refused at admission.
	ModeShed
)

// NumModes is the ladder length.
const NumModes = 4

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeFull:
		return "full"
	case ModeTemporalOnly:
		return "temporal-only"
	case ModeKeyframeOnly:
		return "keyframe-only"
	case ModeShed:
		return "shed"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// Config parameterizes a Governor.
type Config struct {
	// SLO is the per-round latency objective. Required.
	SLO time.Duration
	// Budget is the nominal per-round decode budget B — the ceiling B_eff
	// is raised back toward on healthy rounds. Required.
	Budget float64
	// MinBudget floors the multiplicative cuts so the top-priority work
	// always retains some budget (default Budget/16, at least 1).
	MinBudget float64
	// Step is the additive raise applied per healthy-with-headroom round
	// (default Budget/32).
	Step float64
	// Cut is the multiplicative factor applied under pressure, in (0,1)
	// (default 0.5).
	Cut float64
	// Alpha is the EWMA weight of the newest latency sample (default 0.25).
	Alpha float64
	// Guard is the pressure threshold as a fraction of the SLO: a round
	// whose latency exceeds Guard·SLO triggers a cut *before* the SLO is
	// violated, which is what keeps p99 under the objective rather than
	// chasing it (default 0.85).
	Guard float64
	// Headroom caps raises: B_eff only grows while both the latest sample
	// and the EWMA sit below Headroom·SLO, leaving a guard band for load
	// steps (default 0.65).
	Headroom float64
	// EnterAfter is the number of consecutive pressured rounds before the
	// ladder steps down one mode (default 2).
	EnterAfter int
	// ExitAfter is the number of consecutive healthy rounds before the
	// ladder steps back up one mode (default 16).
	ExitAfter int
	// SaturatedDepth, when positive, treats an observed stage queue depth
	// at or beyond it as pressure even when latency is nominal — the
	// backpressure signal from the pipelined engine (0 disables).
	SaturatedDepth int
	// Stats, when non-nil, receives the governor's counters and the B_eff
	// gauge.
	Stats *metrics.OverloadStats
}

func (c Config) withDefaults() (Config, error) {
	if c.SLO <= 0 {
		return c, fmt.Errorf("overload: SLO must be positive, got %v", c.SLO)
	}
	if c.Budget <= 0 {
		return c, fmt.Errorf("overload: Budget must be positive, got %v", c.Budget)
	}
	if c.MinBudget == 0 {
		c.MinBudget = c.Budget / 16
		if c.MinBudget < 1 {
			c.MinBudget = 1
		}
		if c.MinBudget > c.Budget {
			c.MinBudget = c.Budget
		}
	}
	if c.MinBudget < 0 || c.MinBudget > c.Budget {
		return c, fmt.Errorf("overload: MinBudget %v outside (0, Budget=%v]", c.MinBudget, c.Budget)
	}
	if c.Step == 0 {
		c.Step = c.Budget / 32
	}
	if c.Step <= 0 {
		return c, fmt.Errorf("overload: Step must be positive, got %v", c.Step)
	}
	if c.Cut == 0 {
		c.Cut = 0.5
	}
	if c.Cut <= 0 || c.Cut >= 1 {
		return c, fmt.Errorf("overload: Cut must be in (0,1), got %v", c.Cut)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return c, fmt.Errorf("overload: Alpha must be in (0,1], got %v", c.Alpha)
	}
	if c.Guard == 0 {
		c.Guard = 0.85
	}
	if c.Guard <= 0 || c.Guard > 1 {
		return c, fmt.Errorf("overload: Guard must be in (0,1], got %v", c.Guard)
	}
	if c.Headroom == 0 {
		c.Headroom = 0.65
	}
	if c.Headroom <= 0 || c.Headroom >= c.Guard {
		return c, fmt.Errorf("overload: Headroom must be in (0, Guard=%v), got %v", c.Guard, c.Headroom)
	}
	if c.EnterAfter == 0 {
		c.EnterAfter = 2
	}
	if c.EnterAfter < 1 {
		return c, fmt.Errorf("overload: EnterAfter must be positive, got %d", c.EnterAfter)
	}
	if c.ExitAfter == 0 {
		c.ExitAfter = 16
	}
	if c.ExitAfter < 1 {
		return c, fmt.Errorf("overload: ExitAfter must be positive, got %d", c.ExitAfter)
	}
	if c.SaturatedDepth < 0 {
		return c, fmt.Errorf("overload: SaturatedDepth must be non-negative, got %d", c.SaturatedDepth)
	}
	return c, nil
}

// Snapshot is a point-in-time read of the governor's state and counters.
type Snapshot struct {
	BEff       float64
	Mode       Mode
	EWMA       time.Duration
	Rounds     int64
	SLOMisses  int64 // rounds with latency strictly above the SLO
	Pressured  int64 // rounds above the Guard threshold (incl. misses)
	Cuts       int64
	Raises     int64
	StepDowns  int64
	StepUps    int64
	ModeRounds [NumModes]int64
}

// Governor adapts the effective budget and degradation mode against the
// latency SLO. Safe for concurrent use: the pipeline Observes settled
// rounds while the gate Plans the next one.
type Governor struct {
	cfg Config

	mu   sync.Mutex
	bEff float64
	mode Mode
	ewma float64 // nanoseconds; <0 until the first observation
	snap Snapshot

	pressStreak   int
	healthyStreak int
}

// NewGovernor builds a governor holding the config's SLO. B_eff starts at
// the nominal budget in ModeFull.
func NewGovernor(cfg Config) (*Governor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Governor{cfg: cfg, bEff: cfg.Budget, ewma: -1}
	cfg.Stats.SetBEff(g.bEff)
	return g, nil
}

// Config returns the effective configuration.
func (g *Governor) Config() Config { return g.cfg }

// Plan returns the effective budget and degradation mode for the next
// round, read as one consistent pair.
func (g *Governor) Plan() (budget float64, mode Mode) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.bEff, g.mode
}

// Observe folds one settled round's latency (and, when known, the observed
// in-flight/queue depth; pass 0 when unknown) into the control loop:
//
//   - latency > SLO counts an SLO miss;
//   - latency > Guard·SLO (or a saturated queue) is pressure: B_eff is cut
//     multiplicatively, and EnterAfter consecutive pressured rounds step
//     the ladder down one mode;
//   - otherwise the round is healthy: ExitAfter consecutive healthy rounds
//     step the ladder back up, and B_eff is raised additively while the
//     latency signal shows Headroom·SLO of slack.
func (g *Governor) Observe(latency time.Duration, depth int) {
	lat := float64(latency.Nanoseconds())
	slo := float64(g.cfg.SLO.Nanoseconds())
	st := g.cfg.Stats

	g.mu.Lock()
	defer g.mu.Unlock()
	if g.ewma < 0 {
		g.ewma = lat
	} else {
		g.ewma += g.cfg.Alpha * (lat - g.ewma)
	}
	g.snap.Rounds++
	g.snap.ModeRounds[g.mode]++
	st.AddModeRound(int(g.mode))

	if lat > slo {
		g.snap.SLOMisses++
		st.AddSLOMiss()
	}
	saturated := g.cfg.SaturatedDepth > 0 && depth >= g.cfg.SaturatedDepth
	pressured := lat > g.cfg.Guard*slo || saturated
	if pressured {
		g.snap.Pressured++
		g.healthyStreak = 0
		g.pressStreak++
		if g.bEff > g.cfg.MinBudget {
			g.bEff *= g.cfg.Cut
			if g.bEff < g.cfg.MinBudget {
				g.bEff = g.cfg.MinBudget
			}
			g.snap.Cuts++
			st.AddCut()
			st.SetBEff(g.bEff)
		}
		if g.pressStreak >= g.cfg.EnterAfter && g.mode < NumModes-1 {
			g.mode++
			g.pressStreak = 0
			g.snap.StepDowns++
			st.AddStepDown()
		}
		return
	}
	g.pressStreak = 0
	g.healthyStreak++
	if g.healthyStreak >= g.cfg.ExitAfter && g.mode > ModeFull {
		g.mode--
		g.healthyStreak = 0
		g.snap.StepUps++
		st.AddStepUp()
	}
	if g.bEff < g.cfg.Budget && lat <= g.cfg.Headroom*slo && g.ewma <= g.cfg.Headroom*slo {
		g.bEff += g.cfg.Step
		if g.bEff > g.cfg.Budget {
			g.bEff = g.cfg.Budget
		}
		g.snap.Raises++
		st.AddRaise()
		st.SetBEff(g.bEff)
	}
}

// GovernorState is the complete mutable state of a Governor, exported for
// durable checkpointing: a coordinator journals each per-worker governor
// after every observed round so a standby can resume the AIMD control loop
// exactly where the dead primary left it. EWMANanos keeps the raw float64
// accumulator (not a rounded Duration) so Import reproduces the exact
// control trajectory; -1 means "no observation yet".
type GovernorState struct {
	BEff          float64
	Mode          Mode
	EWMANanos     float64
	PressStreak   int
	HealthyStreak int
	Counters      Snapshot
}

// Export reads the full mutable state for checkpointing.
func (g *Governor) Export() GovernorState {
	g.mu.Lock()
	defer g.mu.Unlock()
	return GovernorState{
		BEff: g.bEff, Mode: g.mode, EWMANanos: g.ewma,
		PressStreak: g.pressStreak, HealthyStreak: g.healthyStreak,
		Counters: g.snap,
	}
}

// Import overwrites the governor's mutable state from a checkpoint. The
// configuration is not part of the state: the importer must have been built
// with the same Config for the restored trajectory to be meaningful.
func (g *Governor) Import(st GovernorState) error {
	if st.BEff <= 0 || st.Mode >= NumModes {
		return fmt.Errorf("overload: invalid governor state (bEff=%v mode=%d)", st.BEff, st.Mode)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.bEff = st.BEff
	g.mode = st.Mode
	g.ewma = st.EWMANanos
	g.pressStreak = st.PressStreak
	g.healthyStreak = st.HealthyStreak
	g.snap = st.Counters
	g.cfg.Stats.SetBEff(g.bEff)
	return nil
}

// Snapshot reads the governor's state and lifetime counters.
func (g *Governor) Snapshot() Snapshot {
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.snap
	s.BEff = g.bEff
	s.Mode = g.mode
	s.EWMA = time.Duration(g.ewma)
	if g.ewma < 0 {
		s.EWMA = 0
	}
	return s
}
