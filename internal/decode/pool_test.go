package decode

import (
	"sort"
	"sync"
	"testing"

	"packetgame/internal/codec"
)

func poolStream(seed int64) *codec.Stream {
	return codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 6}, seed)
}

// TestTaggedPoolReportsEveryCompletion submits tagged jobs across several
// rounds from a producer goroutine and checks that exactly one completion
// arrives per job, with its tags intact and its frame matching a direct
// decode.
func TestTaggedPoolReportsEveryCompletion(t *testing.T) {
	const roundsN, perRound = 20, 7
	st := poolStream(3)
	ref := NewDecoder(DefaultCosts)
	pool := NewTaggedPool(NewDecoder(DefaultCosts), 4)

	want := make(map[[2]int64]Frame)
	var jobs []Job
	for r := int64(0); r < roundsN; r++ {
		for s := 0; s < perRound; s++ {
			p := st.Next()
			f, err := ref.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			want[[2]int64{r, int64(s)}] = f
			jobs = append(jobs, Job{Round: r, Slot: s, Pkt: p})
		}
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, j := range jobs {
			pool.Submit(j)
		}
		pool.Close()
	}()
	got := 0
	for c := range pool.Completions() {
		if c.Err != nil {
			t.Fatalf("round %d slot %d: %v", c.Round, c.Slot, c.Err)
		}
		key := [2]int64{c.Round, int64(c.Slot)}
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected or duplicate completion for round %d slot %d", c.Round, c.Slot)
		}
		delete(want, key)
		if c.Frame != w {
			t.Fatalf("round %d slot %d: frame %+v, want %+v", c.Round, c.Slot, c.Frame, w)
		}
		got++
	}
	wg.Wait()
	if got != roundsN*perRound || len(want) != 0 {
		t.Fatalf("got %d completions, want %d (%d unmatched)", got, roundsN*perRound, len(want))
	}
}

// TestTaggedPoolDeliversErrors checks that failed decodes surface as tagged
// error completions rather than being dropped (unlike Pool's best-effort
// error channel), so a collector can still account for the round.
func TestTaggedPoolDeliversErrors(t *testing.T) {
	st := poolStream(4)
	pool := NewTaggedPool(NewDecoder(DefaultCosts), 2)
	good := st.Next()
	bad := st.Next()
	bad.Payload = nil // gating-only parse: undecodable
	pool.Submit(Job{Round: 0, Slot: 0, Pkt: good})
	pool.Submit(Job{Round: 0, Slot: 1, Pkt: bad})
	pool.Close()
	var slots []int
	errs := 0
	for c := range pool.Completions() {
		slots = append(slots, c.Slot)
		if c.Err != nil {
			errs++
			if c.Slot != 1 {
				t.Errorf("error on slot %d, want slot 1", c.Slot)
			}
		}
	}
	sort.Ints(slots)
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 1 {
		t.Fatalf("completions for slots %v, want [0 1]", slots)
	}
	if errs != 1 {
		t.Fatalf("%d error completions, want 1", errs)
	}
}
