// Package decode simulates the video decoder stage: heterogeneous per-picture
// decode costs, GOP reference-dependency tracking (Fig 6 of the paper), scene
// recovery from packet payloads, and a calibrated CPU-burning decoder for
// wall-clock concurrency benchmarks.
package decode

import (
	"fmt"

	"packetgame/internal/codec"
)

// CostModel gives the decoding cost of each picture type in abstract decode
// units. The defaults are calibrated to the paper's running example (§4.1):
// an edge budget decodes 11 I-frames or 32 P/B-frames per round, so
// cost(I)/cost(P) = 32/11 ≈ 2.9.
type CostModel struct {
	I float64
	P float64
	B float64
}

// DefaultCosts is the paper-calibrated cost model.
var DefaultCosts = CostModel{I: 2.9, P: 1.0, B: 0.8}

// Of returns the cost of decoding one frame of the given type, ignoring
// dependencies.
func (c CostModel) Of(t codec.PictureType) float64 {
	switch t {
	case codec.PictureI:
		return c.I
	case codec.PictureB:
		return c.B
	default:
		return c.P
	}
}

// Max returns the maximal single-packet cost (the c in the paper's 1-c/B
// approximation ratio); note a dependent packet's total cost can exceed it.
func (c CostModel) Max() float64 {
	m := c.I
	if c.P > m {
		m = c.P
	}
	if c.B > m {
		m = c.B
	}
	return m
}

// Tracker tracks decoding dependencies for one stream. Skipped reference
// frames accumulate as pending dependencies: selecting a later dependent
// packet must pay for decoding them too (Fig 6), while selecting an I-frame
// or crossing into a new GOP clears the debt.
type Tracker struct {
	cm CostModel

	// undecodedI reports that the current GOP's I-frame was skipped.
	undecodedI bool
	// undecodedPs counts skipped reference P-frames since the last decoded
	// reference in the current GOP.
	undecodedPs int
	// nextRefPrepaid reports that the upcoming reference frame was already
	// decoded (paid for) as the forward dependency of a selected B-frame.
	nextRefPrepaid bool
	// sawAny reports whether any packet has been observed yet (mid-GOP
	// joins owe an I-frame they never saw).
	sawAny bool
}

// NewTracker creates a dependency tracker with the given cost model.
func NewTracker(cm CostModel) *Tracker { return &Tracker{cm: cm} }

// chainCost is the cost of decoding all pending reference dependencies.
func (t *Tracker) chainCost() float64 {
	var c float64
	if t.undecodedI {
		c += t.cm.I
	}
	c += float64(t.undecodedPs) * t.cm.P
	return c
}

// Cost returns the total cost of decoding p now, including every undecoded
// reference frame it depends on. It does not change tracker state.
func (t *Tracker) Cost(p *codec.Packet) float64 {
	switch p.Type {
	case codec.PictureI:
		return t.cm.I
	case codec.PictureP:
		if p.Keyframe() {
			// Defensive: a P at GOP start decodes against the prior GOP.
			return t.cm.P
		}
		if t.nextRefPrepaid {
			return 0 // already decoded as a B-frame's forward reference
		}
		return t.chain(p) + t.cm.P
	case codec.PictureB:
		// Backward chain + the B itself + its forward reference (next P).
		return t.chain(p) + t.cm.B + t.cm.P
	}
	return t.cm.P
}

// chain computes the backward dependency cost for p, accounting for a
// mid-GOP join (no I ever seen) as owing one I-frame.
func (t *Tracker) chain(p *codec.Packet) float64 {
	c := t.chainCost()
	if !t.sawAny && !p.Keyframe() {
		c += t.cm.I
	}
	return c
}

// Commit records the gating decision for p and updates dependency state.
// It must be called exactly once per observed packet, in stream order.
func (t *Tracker) Commit(p *codec.Packet, decoded bool) {
	if p.Keyframe() {
		// New GOP: prior debts are irrelevant.
		t.undecodedI = false
		t.undecodedPs = 0
		t.nextRefPrepaid = false
	}
	switch p.Type {
	case codec.PictureI:
		if decoded {
			t.undecodedI = false
			t.undecodedPs = 0
		} else {
			t.undecodedI = true
		}
	case codec.PictureP:
		prepaid := t.nextRefPrepaid
		t.nextRefPrepaid = false
		if decoded || prepaid {
			// The whole backward chain was decoded with it.
			t.undecodedI = false
			t.undecodedPs = 0
		} else {
			t.undecodedPs++
		}
	case codec.PictureB:
		if decoded {
			// Backward chain paid; the forward reference is decoded too.
			t.undecodedI = false
			t.undecodedPs = 0
			t.nextRefPrepaid = true
		}
		// Skipped B-frames are not references: no debt.
	}
	t.sawAny = true
}

// MultiTracker tracks dependencies for m concurrent streams indexed 0..m-1.
type MultiTracker struct {
	cm       CostModel
	trackers []*Tracker
}

// NewMultiTracker creates trackers for m streams.
func NewMultiTracker(m int, cm CostModel) *MultiTracker {
	mt := &MultiTracker{cm: cm, trackers: make([]*Tracker, m)}
	for i := range mt.trackers {
		mt.trackers[i] = NewTracker(cm)
	}
	return mt
}

// Len returns the number of tracked streams.
func (mt *MultiTracker) Len() int { return len(mt.trackers) }

// Stream returns the tracker for stream i.
func (mt *MultiTracker) Stream(i int) *Tracker { return mt.trackers[i] }

// Costs computes the dependency-inclusive decode cost of each round packet.
// pkts[i] may be nil (stream idle this round); idle streams report cost 0
// and callers must not select them.
func (mt *MultiTracker) Costs(pkts []*codec.Packet) ([]float64, error) {
	if len(pkts) != len(mt.trackers) {
		return nil, fmt.Errorf("decode: %d packets for %d streams", len(pkts), len(mt.trackers))
	}
	costs := make([]float64, len(pkts))
	for i, p := range pkts {
		if p == nil {
			continue
		}
		costs[i] = mt.trackers[i].Cost(p)
	}
	return costs, nil
}

// CostsAppend is Costs into caller-owned scratch: the per-stream costs are
// appended to dst (which may be nil), so a caller that recycles its buffer
// pays no allocation per round. dst is returned truncated-then-extended by
// exactly len(pkts) entries.
func (mt *MultiTracker) CostsAppend(dst []float64, pkts []*codec.Packet) ([]float64, error) {
	if len(pkts) != len(mt.trackers) {
		return dst, fmt.Errorf("decode: %d packets for %d streams", len(pkts), len(mt.trackers))
	}
	for i, p := range pkts {
		if p == nil {
			dst = append(dst, 0)
			continue
		}
		dst = append(dst, mt.trackers[i].Cost(p))
	}
	return dst, nil
}

// CostsRound computes dependency-inclusive costs for a sparse round: one
// appended entry per active stream, parallel to r.IDs. O(active).
func (mt *MultiTracker) CostsRound(dst []float64, r *codec.Round) ([]float64, error) {
	if r.M != len(mt.trackers) {
		return dst, fmt.Errorf("decode: round width %d for %d streams", r.M, len(mt.trackers))
	}
	for k, id := range r.IDs {
		dst = append(dst, mt.trackers[id].Cost(r.Pkts[k]))
	}
	return dst, nil
}

// CommitRound records a sparse round's decisions: selected[k] reports
// whether stream r.IDs[k]'s packet was decoded. Idle streams carry no
// dependency update (exactly as the dense Commit skips nil packets), so a
// sparse commit is bit-identical to a dense one over the scattered round.
func (mt *MultiTracker) CommitRound(r *codec.Round, selected []bool) error {
	if r.M != len(mt.trackers) || len(selected) != r.Len() {
		return fmt.Errorf("decode: sparse commit length mismatch")
	}
	for k, id := range r.IDs {
		mt.trackers[id].Commit(r.Pkts[k], selected[k])
	}
	return nil
}

// Commit records the round's decisions. selected[i] reports whether stream
// i's packet was decoded.
func (mt *MultiTracker) Commit(pkts []*codec.Packet, selected []bool) error {
	if len(pkts) != len(mt.trackers) || len(selected) != len(mt.trackers) {
		return fmt.Errorf("decode: commit length mismatch")
	}
	for i, p := range pkts {
		if p == nil {
			continue
		}
		mt.trackers[i].Commit(p, selected[i])
	}
	return nil
}
