package decode

import (
	"math"
	"testing"

	"packetgame/internal/codec"
)

func pkt(t codec.PictureType, gopIndex int) *codec.Packet {
	return &codec.Packet{Type: t, GOPIndex: gopIndex, GOPSize: 25}
}

func TestCostModelOf(t *testing.T) {
	cm := DefaultCosts
	if cm.Of(codec.PictureI) != 2.9 || cm.Of(codec.PictureP) != 1.0 || cm.Of(codec.PictureB) != 0.8 {
		t.Errorf("default costs wrong: %+v", cm)
	}
	if cm.Max() != 2.9 {
		t.Errorf("Max = %v, want 2.9", cm.Max())
	}
}

func TestCostModelCalibration(t *testing.T) {
	// The paper's budget example: one round's budget decodes 11 I-frames or
	// 32 P/B-frames. With B=32 P-units, 32/2.9 ≈ 11 I-frames.
	b := 32.0
	if n := math.Floor(b / DefaultCosts.I); n != 11 {
		t.Errorf("budget of 32 P-units decodes %v I-frames, want 11", n)
	}
}

// Fig 6 stream 2: a fresh I-frame costs exactly 1 I.
func TestTrackerIFrameCost(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	if got := tr.Cost(pkt(codec.PictureI, 0)); got != DefaultCosts.I {
		t.Errorf("I cost = %v, want %v", got, DefaultCosts.I)
	}
}

// Fig 6 stream 3: skipping one reference P makes the next P cost 2P.
func TestTrackerSkippedPChain(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), true)  // decode the I
	tr.Commit(pkt(codec.PictureP, 1), true)  // decode a P
	tr.Commit(pkt(codec.PictureP, 2), false) // skip a P
	if got := tr.Cost(pkt(codec.PictureP, 3)); got != 2*DefaultCosts.P {
		t.Errorf("P after one skipped P = %v, want %v", got, 2*DefaultCosts.P)
	}
	tr.Commit(pkt(codec.PictureP, 3), false) // skip another
	if got := tr.Cost(pkt(codec.PictureP, 4)); got != 3*DefaultCosts.P {
		t.Errorf("P after two skipped Ps = %v, want %v", got, 3*DefaultCosts.P)
	}
}

// Fig 6 stream 1: with the GOP's I skipped, a B costs 1I + 1B + 1P.
func TestTrackerBWithSkippedI(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), false) // skip the I
	want := DefaultCosts.I + DefaultCosts.B + DefaultCosts.P
	if got := tr.Cost(pkt(codec.PictureB, 1)); got != want {
		t.Errorf("B with skipped I = %v, want %v", got, want)
	}
}

func TestTrackerDecodeClearsDebt(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), false)
	tr.Commit(pkt(codec.PictureP, 1), false)
	// Decoding this P pays for I + skipped P + itself...
	want := DefaultCosts.I + 2*DefaultCosts.P
	if got := tr.Cost(pkt(codec.PictureP, 2)); got != want {
		t.Errorf("chained P = %v, want %v", got, want)
	}
	tr.Commit(pkt(codec.PictureP, 2), true)
	// ...after which the next P costs just 1P.
	if got := tr.Cost(pkt(codec.PictureP, 3)); got != DefaultCosts.P {
		t.Errorf("P after clearing = %v, want %v", got, DefaultCosts.P)
	}
}

func TestTrackerNewGOPClearsDebt(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), false)
	tr.Commit(pkt(codec.PictureP, 1), false)
	tr.Commit(pkt(codec.PictureI, 0), false) // next GOP begins, also skipped
	want := DefaultCosts.I + DefaultCosts.P  // only the new GOP's I is owed
	if got := tr.Cost(pkt(codec.PictureP, 1)); got != want {
		t.Errorf("P in fresh GOP = %v, want %v", got, want)
	}
}

func TestTrackerSkippedBIsFree(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), true)
	tr.Commit(pkt(codec.PictureB, 1), false) // skipped B: not a reference
	if got := tr.Cost(pkt(codec.PictureP, 2)); got != DefaultCosts.P {
		t.Errorf("P after skipped B = %v, want %v (B must add no debt)", got, DefaultCosts.P)
	}
}

func TestTrackerBPrepaysNextReference(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	tr.Commit(pkt(codec.PictureI, 0), true)
	// Selecting the B pays B + its forward reference P.
	if got := tr.Cost(pkt(codec.PictureB, 1)); got != DefaultCosts.B+DefaultCosts.P {
		t.Errorf("B cost = %v, want %v", got, DefaultCosts.B+DefaultCosts.P)
	}
	tr.Commit(pkt(codec.PictureB, 1), true)
	// The next P arrives already decoded: zero marginal cost.
	if got := tr.Cost(pkt(codec.PictureP, 2)); got != 0 {
		t.Errorf("prepaid P cost = %v, want 0", got)
	}
	tr.Commit(pkt(codec.PictureP, 2), false)
	// Prepayment consumed: a later P costs 1P again (chain cleared because
	// the prepaid P was effectively decoded).
	if got := tr.Cost(pkt(codec.PictureP, 3)); got != DefaultCosts.P {
		t.Errorf("post-prepaid P cost = %v, want %v", got, DefaultCosts.P)
	}
}

func TestTrackerMidGOPJoinOwesI(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	// First packet ever observed is a mid-GOP P: the I was never seen.
	want := DefaultCosts.I + DefaultCosts.P
	if got := tr.Cost(pkt(codec.PictureP, 5)); got != want {
		t.Errorf("mid-GOP join P = %v, want %v", got, want)
	}
}

func TestMultiTrackerCostsAndCommit(t *testing.T) {
	mt := NewMultiTracker(3, DefaultCosts)
	round1 := []*codec.Packet{pkt(codec.PictureI, 0), pkt(codec.PictureI, 0), nil}
	costs, err := mt.Costs(round1)
	if err != nil {
		t.Fatal(err)
	}
	if costs[0] != DefaultCosts.I || costs[1] != DefaultCosts.I || costs[2] != 0 {
		t.Errorf("round1 costs = %v", costs)
	}
	if err := mt.Commit(round1, []bool{true, false, false}); err != nil {
		t.Fatal(err)
	}
	round2 := []*codec.Packet{pkt(codec.PictureP, 1), pkt(codec.PictureP, 1), nil}
	costs, err = mt.Costs(round2)
	if err != nil {
		t.Fatal(err)
	}
	if costs[0] != DefaultCosts.P {
		t.Errorf("stream 0 (decoded I) P cost = %v, want %v", costs[0], DefaultCosts.P)
	}
	if costs[1] != DefaultCosts.I+DefaultCosts.P {
		t.Errorf("stream 1 (skipped I) P cost = %v, want %v", costs[1], DefaultCosts.I+DefaultCosts.P)
	}
}

func TestMultiTrackerLengthMismatch(t *testing.T) {
	mt := NewMultiTracker(2, DefaultCosts)
	if _, err := mt.Costs(make([]*codec.Packet, 3)); err == nil {
		t.Error("Costs must reject length mismatch")
	}
	if err := mt.Commit(make([]*codec.Packet, 2), make([]bool, 1)); err == nil {
		t.Error("Commit must reject length mismatch")
	}
	if mt.Len() != 2 {
		t.Errorf("Len = %d, want 2", mt.Len())
	}
	if mt.Stream(1) == nil {
		t.Error("Stream(1) must exist")
	}
}

// Property: over a long random decision sequence the tracker's quoted cost is
// always at least the packet's own cost (unless prepaid) and debt never goes
// negative.
func TestTrackerCostLowerBound(t *testing.T) {
	tr := NewTracker(DefaultCosts)
	e := codec.NewEncoder(codec.EncoderConfig{GOPSize: 12, BFrames: 2}, 3)
	for i := 0; i < 2000; i++ {
		p := e.Encode(codec.Scene{Motion: 0.3})
		cost := tr.Cost(p)
		if cost < 0 {
			t.Fatalf("packet %d: negative cost %v", i, cost)
		}
		if cost != 0 && cost < DefaultCosts.Of(p.Type)-1e-12 {
			t.Fatalf("packet %d (%v): cost %v below own cost", i, p.Type, cost)
		}
		tr.Commit(p, i%3 == 0)
	}
}
