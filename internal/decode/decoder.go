package decode

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"packetgame/internal/codec"
)

// Frame is one decoded video frame: the recovered scene plus identity.
type Frame struct {
	StreamID int
	Seq      int64
	PTS      int64
	Scene    codec.Scene
}

// ErrNoPayload reports an attempt to decode a packet whose payload was
// dropped (e.g. a gating-only parse with KeepPayload=false).
var ErrNoPayload = errors.New("decode: packet has no payload")

// Decoder turns packets into frames and accounts decode cost.
type Decoder struct {
	cm CostModel

	mu     sync.Mutex
	frames int64
	cost   float64
}

// NewDecoder creates a decoder with the given cost model.
func NewDecoder(cm CostModel) *Decoder { return &Decoder{cm: cm} }

// Decode recovers the frame carried by p. It is safe for concurrent use.
func (d *Decoder) Decode(p *codec.Packet) (Frame, error) {
	if len(p.Payload) == 0 {
		return Frame{}, fmt.Errorf("%w: stream %d seq %d", ErrNoPayload, p.StreamID, p.Seq)
	}
	s, err := codec.DecodePayload(p.Payload)
	if err != nil {
		return Frame{}, err
	}
	d.mu.Lock()
	d.frames++
	d.cost += d.cm.Of(p.Type)
	d.mu.Unlock()
	return Frame{StreamID: p.StreamID, Seq: p.Seq, PTS: p.PTS, Scene: s}, nil
}

// Stats returns the number of frames decoded and the total cost spent.
func (d *Decoder) Stats() (frames int64, cost float64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.frames, d.cost
}

// BurnDecoder wraps a Decoder and additionally burns CPU proportional to the
// decode cost, so wall-clock throughput benchmarks (Fig 2) reflect the
// heterogeneous cost model. NanosPerUnit calibrates one decode unit; the
// paper's 12-CPU software decoder sustains 870 P-frame-equivalents per
// second, i.e. ~13.8ms per unit per core at 12 cores.
type BurnDecoder struct {
	*Decoder
	// NanosPerUnit is the CPU time burned per decode-cost unit.
	NanosPerUnit int64
}

// NewBurnDecoder creates a burning decoder.
func NewBurnDecoder(cm CostModel, nanosPerUnit int64) *BurnDecoder {
	return &BurnDecoder{Decoder: NewDecoder(cm), NanosPerUnit: nanosPerUnit}
}

// sink defeats dead-code elimination of the burn loop.
var sink uint64

// Decode decodes p, burning CPU proportional to its cost.
func (b *BurnDecoder) Decode(p *codec.Packet) (Frame, error) {
	f, err := b.Decoder.Decode(p)
	if err != nil {
		return f, err
	}
	burn(int64(b.cm.Of(p.Type) * float64(b.NanosPerUnit)))
	return f, nil
}

// LatencyDecoder wraps a Decoder and additionally sleeps wall-clock time
// proportional to the decode cost, modelling decode offloaded to dedicated
// hardware (GPU/ASIC decode sessions): each request occupies a session for
// its service time but burns no host CPU. Unlike BurnDecoder, concurrent
// decodes overlap even on a single host core, so it is the right model for
// measuring pipeline overlap on machines with few cores.
type LatencyDecoder struct {
	*Decoder
	// NanosPerUnit is the wall-clock service time per decode-cost unit.
	NanosPerUnit int64
}

// NewLatencyDecoder creates a fixed-service-time decoder.
func NewLatencyDecoder(cm CostModel, nanosPerUnit int64) *LatencyDecoder {
	return &LatencyDecoder{Decoder: NewDecoder(cm), NanosPerUnit: nanosPerUnit}
}

// Decode decodes p, holding a decode session for cost-proportional time.
func (l *LatencyDecoder) Decode(p *codec.Packet) (Frame, error) {
	f, err := l.Decoder.Decode(p)
	if err != nil {
		return f, err
	}
	time.Sleep(time.Duration(l.cm.Of(p.Type) * float64(l.NanosPerUnit)))
	return f, nil
}

// burn busy-loops for approximately the given CPU nanoseconds. It uses a
// fixed work constant (~1ns per iteration on contemporary cores) rather than
// wall-clock polling so that concurrent decoders contend for CPU exactly like
// a real software decoder would.
func burn(nanos int64) {
	x := sink
	for i := int64(0); i < nanos; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	sink = x
}
