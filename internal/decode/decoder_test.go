package decode

import (
	"errors"
	"testing"

	"packetgame/internal/codec"
)

func TestDecoderRoundTrip(t *testing.T) {
	st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.5}, codec.EncoderConfig{StreamID: 2, GOPSize: 5}, 21)
	d := NewDecoder(DefaultCosts)
	for i := 0; i < 30; i++ {
		p := st.Next()
		f, err := d.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		if f.Scene != st.LastScene {
			t.Fatalf("frame %d: scene %+v, want %+v", i, f.Scene, st.LastScene)
		}
		if f.StreamID != 2 || f.Seq != int64(i) {
			t.Fatalf("frame %d identity: %+v", i, f)
		}
	}
	frames, cost := d.Stats()
	if frames != 30 {
		t.Errorf("frames = %d, want 30", frames)
	}
	// 6 GOPs of 5: 6 I + 24 P.
	want := 6*DefaultCosts.I + 24*DefaultCosts.P
	if cost != want {
		t.Errorf("cost = %v, want %v", cost, want)
	}
}

func TestDecoderNoPayload(t *testing.T) {
	d := NewDecoder(DefaultCosts)
	_, err := d.Decode(&codec.Packet{})
	if !errors.Is(err, ErrNoPayload) {
		t.Errorf("err = %v, want ErrNoPayload", err)
	}
}

func TestDecoderBadPayload(t *testing.T) {
	d := NewDecoder(DefaultCosts)
	if _, err := d.Decode(&codec.Packet{Payload: []byte("garbage!!")}); err == nil {
		t.Error("garbage payload must error")
	}
}

func TestBurnDecoderDecodes(t *testing.T) {
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 4}, 9)
	d := NewBurnDecoder(DefaultCosts, 1000)
	p := st.Next()
	f, err := d.Decode(p)
	if err != nil {
		t.Fatal(err)
	}
	if f.Scene != st.LastScene {
		t.Errorf("burn decoder corrupted scene")
	}
}

func TestPoolDecodesAll(t *testing.T) {
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 6}, 13)
	pool := NewPool(NewDecoder(DefaultCosts), 4)
	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			pool.Submit(st.Next())
		}
		pool.Close()
	}()
	seen := map[int64]bool{}
	for f := range pool.Frames() {
		if seen[f.Seq] {
			t.Errorf("duplicate frame seq %d", f.Seq)
		}
		seen[f.Seq] = true
	}
	if len(seen) != n {
		t.Errorf("decoded %d frames, want %d", len(seen), n)
	}
	for err := range pool.Errs() {
		t.Errorf("unexpected decode error: %v", err)
	}
}

func TestPoolReportsErrors(t *testing.T) {
	pool := NewPool(NewDecoder(DefaultCosts), 2)
	pool.Submit(&codec.Packet{}) // no payload
	pool.Close()
	for range pool.Frames() {
		t.Error("no frames expected")
	}
	var got error
	for err := range pool.Errs() {
		got = err
	}
	if !errors.Is(got, ErrNoPayload) {
		t.Errorf("pool error = %v, want ErrNoPayload", got)
	}
}

func TestPoolMinWorkers(t *testing.T) {
	pool := NewPool(NewDecoder(DefaultCosts), 0) // clamped to 1
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 3}, 2)
	go func() {
		pool.Submit(st.Next())
		pool.Close()
	}()
	n := 0
	for range pool.Frames() {
		n++
	}
	if n != 1 {
		t.Errorf("decoded %d frames, want 1", n)
	}
}
