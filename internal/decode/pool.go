package decode

import (
	"errors"
	"sync"
	"sync/atomic"

	"packetgame/internal/codec"
)

// ErrAborted is the completion error of a job whose round was abandoned
// (deadline abort) before a worker picked the job up. The packet was never
// decoded — the outcome is unknown, not a decoder failure.
var ErrAborted = errors.New("decode: job aborted before decoding")

// Pool decodes packets on a fixed set of worker goroutines, modelling a
// multi-core software decoder. Submit packets with Submit; decoded frames
// arrive on Frames in completion order. Close Submit-side with Close; Frames
// closes once all in-flight work drains.
type Pool struct {
	in      chan *codec.Packet
	out     chan Frame
	errs    chan error
	wg      sync.WaitGroup
	decoder interface {
		Decode(*codec.Packet) (Frame, error)
	}
}

// NewPool starts workers goroutines decoding via d (a *Decoder or
// *BurnDecoder).
func NewPool(d interface {
	Decode(*codec.Packet) (Frame, error)
}, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		in:      make(chan *codec.Packet, workers*2),
		out:     make(chan Frame, workers*2),
		errs:    make(chan error, workers),
		decoder: d,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.out)
		close(p.errs)
	}()
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for pkt := range p.in {
		f, err := p.decoder.Decode(pkt)
		if err != nil {
			select {
			case p.errs <- err:
			default: // keep only the first errors; don't block the pool
			}
			continue
		}
		p.out <- f
	}
}

// Submit queues a packet for decoding. It must not be called after Close.
func (p *Pool) Submit(pkt *codec.Packet) { p.in <- pkt }

// Frames returns the decoded frame channel.
func (p *Pool) Frames() <-chan Frame { return p.out }

// Errs returns the (best-effort) decode error channel.
func (p *Pool) Errs() <-chan error { return p.errs }

// Close stops accepting work. Frames closes after in-flight work drains.
func (p *Pool) Close() { close(p.in) }

// Job is one tagged decode request: the packet plus its position in the
// round it belongs to, so completions can be reassembled per round even
// when the pool finishes them out of order.
type Job struct {
	Round int64
	Slot  int // index into the round's selection, not the stream ID
	Pkt   *codec.Packet
	// Cancel, when non-nil and set, short-circuits the job: a worker that
	// dequeues it emits an ErrAborted completion without decoding. A job
	// already being decoded runs to completion (the decoder API is
	// synchronous); cancellation only sheds queued work.
	Cancel *atomic.Bool
}

// Completion is the outcome of one Job. Exactly one Completion is emitted
// per submitted Job; Err is non-nil when the decode failed (Frame is then
// zero).
type Completion struct {
	Round int64
	Slot  int
	Frame Frame
	Err   error
}

// TaggedPool decodes tagged jobs on a fixed set of worker goroutines and
// reports every completion — success or failure — on a single channel. It
// is the staged pipeline engine's decode stage: unlike Pool, nothing is
// dropped, so a downstream collector can account for every packet of every
// in-flight round and ack rounds in order.
type TaggedPool struct {
	in      chan Job
	out     chan Completion
	wg      sync.WaitGroup
	decoder interface {
		Decode(*codec.Packet) (Frame, error)
	}
}

// NewTaggedPool starts workers goroutines decoding via d.
func NewTaggedPool(d interface {
	Decode(*codec.Packet) (Frame, error)
}, workers int) *TaggedPool {
	if workers < 1 {
		workers = 1
	}
	p := &TaggedPool{
		in:      make(chan Job, workers*2),
		out:     make(chan Completion, workers*2),
		decoder: d,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.out)
	}()
	return p
}

func (p *TaggedPool) worker() {
	defer p.wg.Done()
	for j := range p.in {
		if j.Cancel != nil && j.Cancel.Load() {
			p.out <- Completion{Round: j.Round, Slot: j.Slot, Err: ErrAborted}
			continue
		}
		f, err := p.decoder.Decode(j.Pkt)
		p.out <- Completion{Round: j.Round, Slot: j.Slot, Frame: f, Err: err}
	}
}

// Submit queues a job. It must not be called after Close.
func (p *TaggedPool) Submit(j Job) { p.in <- j }

// Completions returns the completion channel. It closes once Close has been
// called and all in-flight jobs have drained.
func (p *TaggedPool) Completions() <-chan Completion { return p.out }

// Close stops accepting work.
func (p *TaggedPool) Close() { close(p.in) }
