package decode

import (
	"sync"

	"packetgame/internal/codec"
)

// Pool decodes packets on a fixed set of worker goroutines, modelling a
// multi-core software decoder. Submit packets with Submit; decoded frames
// arrive on Frames in completion order. Close Submit-side with Close; Frames
// closes once all in-flight work drains.
type Pool struct {
	in      chan *codec.Packet
	out     chan Frame
	errs    chan error
	wg      sync.WaitGroup
	decoder interface {
		Decode(*codec.Packet) (Frame, error)
	}
}

// NewPool starts workers goroutines decoding via d (a *Decoder or
// *BurnDecoder).
func NewPool(d interface {
	Decode(*codec.Packet) (Frame, error)
}, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{
		in:      make(chan *codec.Packet, workers*2),
		out:     make(chan Frame, workers*2),
		errs:    make(chan error, workers),
		decoder: d,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	go func() {
		p.wg.Wait()
		close(p.out)
		close(p.errs)
	}()
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for pkt := range p.in {
		f, err := p.decoder.Decode(pkt)
		if err != nil {
			select {
			case p.errs <- err:
			default: // keep only the first errors; don't block the pool
			}
			continue
		}
		p.out <- f
	}
}

// Submit queues a packet for decoding. It must not be called after Close.
func (p *Pool) Submit(pkt *codec.Packet) { p.in <- pkt }

// Frames returns the decoded frame channel.
func (p *Pool) Frames() <-chan Frame { return p.out }

// Errs returns the (best-effort) decode error channel.
func (p *Pool) Errs() <-chan error { return p.errs }

// Close stops accepting work. Frames closes after in-flight work drains.
func (p *Pool) Close() { close(p.in) }
