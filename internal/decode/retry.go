package decode

import (
	"errors"
	"fmt"
	"time"

	"packetgame/internal/codec"
)

// PacketDecoder is the decode surface shared by Decoder, BurnDecoder,
// LatencyDecoder, fault wrappers, and the retry layer.
type PacketDecoder interface {
	Decode(*codec.Packet) (Frame, error)
}

// ErrDeadline reports a decode attempt that exceeded its per-attempt
// deadline. It is retryable: a latency spike on one attempt does not doom
// the packet.
var ErrDeadline = errors.New("decode: attempt deadline exceeded")

// PoisonError reports a packet that failed every allowed decode attempt —
// a poison pill. The pipeline acks such packets as failed instead of
// wedging the collector or aborting the run.
type PoisonError struct {
	StreamID int
	Seq      int64
	Attempts int
	Last     error // the final attempt's error
}

func (e *PoisonError) Error() string {
	return fmt.Sprintf("decode: poison pill stream %d seq %d after %d attempts: %v",
		e.StreamID, e.Seq, e.Attempts, e.Last)
}

// Unwrap exposes the final attempt's error.
func (e *PoisonError) Unwrap() error { return e.Last }

// RetryPolicy bounds the retry/backoff/deadline behavior of a Retrier.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (default 0: single attempt, every failure is a poison pill).
	MaxRetries int
	// Backoff is the sleep before the first retry, doubled per retry
	// (default 1ms when retries are enabled).
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (default 100ms).
	MaxBackoff time.Duration
	// Deadline bounds one decode attempt's wall-clock time (0 = none).
	// A timed-out attempt counts as a failed attempt and is retried.
	Deadline time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.Backoff <= 0 {
		p.Backoff = time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 100 * time.Millisecond
	}
	return p
}

// Zero reports whether the policy adds nothing over a bare decoder.
func (p RetryPolicy) Zero() bool {
	return p.MaxRetries == 0 && p.Deadline == 0
}

// Retrier wraps a decoder with per-attempt deadlines and bounded
// exponential-backoff retries. Transient failures (injected faults,
// latency spikes caught by the deadline) are retried; a packet that fails
// every attempt is reported as a *PoisonError so callers can quarantine it
// rather than treat it as a pipeline-fatal condition.
//
// Deadline semantics: the attempt runs in a helper goroutine and is
// abandoned (not cancelled) on timeout — the wrapped decoder must therefore
// be safe for concurrent use, which every decoder in this package is. The
// abandoned attempt's result is discarded.
type Retrier struct {
	inner PacketDecoder
	pol   RetryPolicy
}

// NewRetrier wraps inner with the policy (defaults applied).
func NewRetrier(inner PacketDecoder, pol RetryPolicy) *Retrier {
	return &Retrier{inner: inner, pol: pol.withDefaults()}
}

// Policy returns the effective retry policy.
func (r *Retrier) Policy() RetryPolicy { return r.pol }

// Decode implements PacketDecoder with retries.
func (r *Retrier) Decode(p *codec.Packet) (Frame, error) {
	backoff := r.pol.Backoff
	attempts := r.pol.MaxRetries + 1
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > r.pol.MaxBackoff {
				backoff = r.pol.MaxBackoff
			}
		}
		f, err := r.attempt(p)
		if err == nil {
			return f, nil
		}
		lastErr = err
	}
	return Frame{}, &PoisonError{StreamID: p.StreamID, Seq: p.Seq, Attempts: attempts, Last: lastErr}
}

// attempt runs one decode under the per-attempt deadline.
func (r *Retrier) attempt(p *codec.Packet) (Frame, error) {
	if r.pol.Deadline <= 0 {
		return r.inner.Decode(p)
	}
	type result struct {
		f   Frame
		err error
	}
	ch := make(chan result, 1)
	go func() {
		f, err := r.inner.Decode(p)
		ch <- result{f, err}
	}()
	timer := time.NewTimer(r.pol.Deadline)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.f, res.err
	case <-timer.C:
		return Frame{}, fmt.Errorf("%w (stream %d seq %d, %v)", ErrDeadline, p.StreamID, p.Seq, r.pol.Deadline)
	}
}
