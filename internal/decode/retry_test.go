package decode

import (
	"errors"
	"sync"
	"testing"
	"time"

	"packetgame/internal/codec"
)

// flakyDecoder fails the first failN attempts per packet, then succeeds.
type flakyDecoder struct {
	inner *Decoder
	failN int

	mu       sync.Mutex
	attempts map[int64]int
	slow     time.Duration
}

func newFlaky(failN int) *flakyDecoder {
	return &flakyDecoder{inner: NewDecoder(DefaultCosts), failN: failN, attempts: map[int64]int{}}
}

func (f *flakyDecoder) Decode(p *codec.Packet) (Frame, error) {
	f.mu.Lock()
	n := f.attempts[p.Seq]
	f.attempts[p.Seq] = n + 1
	slow := f.slow
	f.mu.Unlock()
	if slow > 0 {
		time.Sleep(slow)
	}
	if n < f.failN {
		return Frame{}, errors.New("transient")
	}
	return f.inner.Decode(p)
}

func testPacket(tb testing.TB) *codec.Packet {
	tb.Helper()
	return codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 5}, 3).Next()
}

func TestRetrierRecoversTransientFailure(t *testing.T) {
	fd := newFlaky(2)
	r := NewRetrier(fd, RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond})
	f, err := r.Decode(testPacket(t))
	if err != nil {
		t.Fatalf("retry should recover after 2 transient failures: %v", err)
	}
	if f.Seq != 0 {
		t.Fatalf("frame seq = %d", f.Seq)
	}
}

func TestRetrierPoisonPill(t *testing.T) {
	fd := newFlaky(1 << 30) // never succeeds
	r := NewRetrier(fd, RetryPolicy{MaxRetries: 2, Backoff: time.Microsecond})
	_, err := r.Decode(testPacket(t))
	var poison *PoisonError
	if !errors.As(err, &poison) {
		t.Fatalf("want PoisonError, got %v", err)
	}
	if poison.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", poison.Attempts)
	}
	if poison.Last == nil || poison.Last.Error() != "transient" {
		t.Fatalf("last error = %v", poison.Last)
	}
}

func TestRetrierZeroPolicySingleAttempt(t *testing.T) {
	fd := newFlaky(1)
	r := NewRetrier(fd, RetryPolicy{})
	if _, err := r.Decode(testPacket(t)); err == nil {
		t.Fatal("zero policy must not retry")
	}
	fd2 := newFlaky(0)
	r2 := NewRetrier(fd2, RetryPolicy{})
	if _, err := r2.Decode(testPacket(t)); err != nil {
		t.Fatalf("clean decode failed: %v", err)
	}
}

func TestRetrierDeadline(t *testing.T) {
	fd := newFlaky(0)
	fd.slow = 50 * time.Millisecond
	r := NewRetrier(fd, RetryPolicy{Deadline: 2 * time.Millisecond, Backoff: time.Microsecond})
	start := time.Now()
	_, err := r.Decode(testPacket(t))
	var poison *PoisonError
	if !errors.As(err, &poison) || !errors.Is(poison.Last, ErrDeadline) {
		t.Fatalf("want deadline poison, got %v", err)
	}
	if d := time.Since(start); d > 40*time.Millisecond {
		t.Fatalf("deadline attempt took %v", d)
	}
}

func TestRetryPolicyZero(t *testing.T) {
	if !(RetryPolicy{}).Zero() {
		t.Fatal("empty policy must be Zero")
	}
	if (RetryPolicy{MaxRetries: 1}).Zero() || (RetryPolicy{Deadline: time.Second}).Zero() {
		t.Fatal("non-empty policy must not be Zero")
	}
}
