package decode

// TrackerState is the portable dependency state of one stream's Tracker:
// everything needed for the importing gate to charge bit-identical
// dependency-inclusive costs after a migration.
type TrackerState struct {
	UndecodedI     bool
	UndecodedPs    int
	NextRefPrepaid bool
	SawAny         bool
}

// Export extracts the tracker's dependency state. The tracker is unchanged.
func (t *Tracker) Export() TrackerState {
	return TrackerState{
		UndecodedI:     t.undecodedI,
		UndecodedPs:    t.undecodedPs,
		NextRefPrepaid: t.nextRefPrepaid,
		SawAny:         t.sawAny,
	}
}

// Import overwrites the tracker's dependency state with an exported one.
// The cost model is the receiver's own and must match the donor's.
func (t *Tracker) Import(st TrackerState) {
	t.undecodedI = st.UndecodedI
	t.undecodedPs = st.UndecodedPs
	t.nextRefPrepaid = st.NextRefPrepaid
	t.sawAny = st.SawAny
}

// Reset returns the tracker to the fresh (no packet seen) state.
func (t *Tracker) Reset() {
	t.undecodedI = false
	t.undecodedPs = 0
	t.nextRefPrepaid = false
	t.sawAny = false
}
