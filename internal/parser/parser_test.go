package parser

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"packetgame/internal/codec"
)

// encodeStream renders n packets of a synthetic stream to bitstream bytes,
// returning both the bytes and the original packets.
func encodeStream(t *testing.T, n int, cfg codec.EncoderConfig) ([]byte, []*codec.Packet) {
	t.Helper()
	st := codec.NewStream(codec.SceneConfig{}, cfg, 77)
	var buf bytes.Buffer
	bw := codec.NewBitstreamWriter(&buf)
	var pkts []*codec.Packet
	for i := 0; i < n; i++ {
		p := st.Next()
		if err := bw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	return buf.Bytes(), pkts
}

func samePacketMeta(a, b *codec.Packet) bool {
	return a.Seq == b.Seq && a.Type == b.Type && a.Codec == b.Codec &&
		a.Size == b.Size && a.GOPIndex == b.GOPIndex && a.GOPSize == b.GOPSize
}

func TestParseAllRoundTrip(t *testing.T) {
	raw, want := encodeStream(t, 60, codec.EncoderConfig{GOPSize: 12, BFrames: 2})
	got, err := ParseAll(raw, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d packets, want %d", len(got), len(want))
	}
	for i := range got {
		if !samePacketMeta(got[i], want[i]) {
			t.Errorf("packet %d: got %v want %v", i, got[i], want[i])
		}
		if got[i].PTS != want[i].PTS {
			t.Errorf("packet %d PTS: got %d want %d", i, got[i].PTS, want[i].PTS)
		}
	}
}

func TestParserChunkBoundaryIndependence(t *testing.T) {
	raw, want := encodeStream(t, 40, codec.EncoderConfig{GOPSize: 8})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		p := New(Options{})
		var got []*codec.Packet
		for off := 0; off < len(raw); {
			n := 1 + rng.Intn(700)
			if off+n > len(raw) {
				n = len(raw) - off
			}
			if _, err := p.Feed(raw[off : off+n]); err != nil {
				t.Fatal(err)
			}
			off += n
			for pkt := p.Next(); pkt != nil; pkt = p.Next() {
				got = append(got, pkt)
			}
		}
		if _, err := p.Flush(); err != nil {
			t.Fatal(err)
		}
		for pkt := p.Next(); pkt != nil; pkt = p.Next() {
			got = append(got, pkt)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: parsed %d packets, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if !samePacketMeta(got[i], want[i]) {
				t.Fatalf("trial %d packet %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestParserKeepPayloadDecodes(t *testing.T) {
	st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.6}, codec.EncoderConfig{GOPSize: 5}, 9)
	var buf bytes.Buffer
	bw := codec.NewBitstreamWriter(&buf)
	var scenes []codec.Scene
	for i := 0; i < 25; i++ {
		p := st.Next()
		scenes = append(scenes, st.LastScene)
		if err := bw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ParseAll(buf.Bytes(), Options{KeepPayload: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, pkt := range got {
		s, err := codec.DecodePayload(pkt.Payload)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if s != scenes[i] {
			t.Errorf("packet %d: scene %+v, want %+v", i, s, scenes[i])
		}
	}
}

func TestParserSkipsGarbagePrefix(t *testing.T) {
	raw, want := encodeStream(t, 5, codec.EncoderConfig{GOPSize: 5})
	dirty := append([]byte{0xde, 0xad, 0xbe, 0xef, 0x00, 0x00}, raw...)
	got, err := ParseAll(dirty, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d packets, want %d", len(got), len(want))
	}
}

func TestParserStreamIDAndFPS(t *testing.T) {
	raw, _ := encodeStream(t, 3, codec.EncoderConfig{GOPSize: 3, FPS: 10})
	got, err := ParseAll(raw, Options{StreamID: 42, FPS: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got[2].StreamID != 42 {
		t.Errorf("StreamID = %d, want 42", got[2].StreamID)
	}
	if got[2].PTS != 200 {
		t.Errorf("PTS = %d, want 200 (seq 2 at 10fps)", got[2].PTS)
	}
}

func TestParserCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(codec.StartCode)
	buf.Write([]byte{0x0f, 1, 2, 3, 4, 5, 6, 7, 8}) // picture type 15: invalid
	_, err := ParseAll(buf.Bytes(), Options{})
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestParserMaxUnitGuard(t *testing.T) {
	p := New(Options{MaxUnit: 128})
	if _, err := p.Feed(codec.StartCode); err != nil {
		t.Fatal(err)
	}
	junk := bytes.Repeat([]byte{0xaa}, 512)
	if _, err := p.Feed(junk); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt for oversized unit", err)
	}
}

func TestReaderPullParsing(t *testing.T) {
	raw, want := encodeStream(t, 30, codec.EncoderConfig{GOPSize: 10})
	pr := NewReader(bytes.NewReader(raw), Options{})
	var got []*codec.Packet
	for {
		pkt, err := pr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, pkt)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d packets, want %d", len(got), len(want))
	}
	if _, err := pr.Next(); err != io.EOF {
		t.Errorf("after EOF, err = %v, want io.EOF", err)
	}
}

func TestParserCount(t *testing.T) {
	raw, _ := encodeStream(t, 12, codec.EncoderConfig{GOPSize: 4})
	p := New(Options{})
	if _, err := p.Feed(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if p.Count() != 12 {
		t.Errorf("Count = %d, want 12", p.Count())
	}
}

func TestParserEmptyInput(t *testing.T) {
	got, err := ParseAll(nil, Options{})
	if err != nil || len(got) != 0 {
		t.Errorf("empty input: %d packets, err %v", len(got), err)
	}
}

// TestParserNeverPanicsOnGarbage feeds random byte soup (seeded) in random
// chunk sizes: the parser must never panic — every outcome is either parsed
// packets or a clean error.
func TestParserNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		p := New(Options{MaxUnit: 1 << 16})
		n := 1 + rng.Intn(4096)
		data := make([]byte, n)
		// Mix pure noise with start-code fragments to stress resync.
		rng.Read(data)
		for i := 0; i+4 < len(data); i += 97 {
			copy(data[i:], codec.StartCode)
		}
		for off := 0; off < len(data); {
			c := 1 + rng.Intn(512)
			if off+c > len(data) {
				c = len(data) - off
			}
			if _, err := p.Feed(data[off : off+c]); err != nil {
				break // clean error: acceptable
			}
			off += c
		}
		_, _ = p.Flush()
		for pkt := p.Next(); pkt != nil; pkt = p.Next() {
			if pkt.Size < 0 {
				t.Fatalf("trial %d: negative size", trial)
			}
		}
	}
}

// TestParserRecoversAfterCorruptUnit verifies the stream can resynchronize
// on the next start code after an oversized (corrupt) unit was rejected.
func TestParserRecoversAfterCorruptUnit(t *testing.T) {
	p := New(Options{MaxUnit: 256})
	if _, err := p.Feed(codec.StartCode); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Feed(bytes.Repeat([]byte{0x55}, 1024)); err == nil {
		t.Fatal("oversized unit must error")
	}
	// A small valid unit afterwards must parse.
	var buf bytes.Buffer
	bw := codec.NewBitstreamWriter(&buf)
	small := &codec.Packet{Type: codec.PictureI, GOPSize: 5, Size: 64}
	if err := bw.WritePacket(small); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Feed(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	got := 0
	for pkt := p.Next(); pkt != nil; pkt = p.Next() {
		if pkt.Size != 64 {
			t.Errorf("recovered packet size = %d", pkt.Size)
		}
		got++
	}
	if got != 1 {
		t.Errorf("recovered %d packets, want 1", got)
	}
}
