// Package parser recovers video packet metadata from raw bitstream bytes,
// mirroring FFmpeg's av_parser_parse2 workflow the paper builds on (§6.1):
// bytes go in (in arbitrary chunk sizes), parsed packets with size and
// picture type come out, without any decoding.
package parser

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"packetgame/internal/codec"
)

// ErrCorrupt reports a malformed access unit in the bitstream.
var ErrCorrupt = errors.New("parser: corrupt bitstream")

// Options configures a Parser.
type Options struct {
	// StreamID is stamped on every parsed packet. Elementary streams carry
	// no stream identity; the mux/container supplies it.
	StreamID int
	// FPS reconstructs packet PTS from sequence numbers. Default 25.
	FPS int
	// KeepPayload retains the (unescaped) payload bytes on parsed packets
	// so a downstream decoder can decode them. Gating-only consumers can
	// leave it false to avoid the copy.
	KeepPayload bool
	// MaxUnit caps the size of one access unit in bytes to bound memory on
	// corrupt input. Default 16 MiB.
	MaxUnit int
}

func (o *Options) defaults() {
	if o.FPS == 0 {
		o.FPS = 25
	}
	if o.MaxUnit == 0 {
		o.MaxUnit = 16 << 20
	}
}

// Parser is an incremental bitstream parser. Feed it byte chunks of any size
// with Feed; complete packets become available via Next. Call Flush at end of
// stream to emit the trailing unit.
type Parser struct {
	opts Options
	buf  []byte // undelivered bytes, always beginning at a start code once synced
	out  []*codec.Packet
	body []byte // reusable unescape scratch
	n    int64  // packets parsed

	synced bool
}

// New creates a parser.
func New(opts Options) *Parser {
	opts.defaults()
	return &Parser{opts: opts}
}

// Count returns the number of packets parsed so far.
func (p *Parser) Count() int64 { return p.n }

// Feed appends a chunk of bitstream bytes and parses any access units that
// are now complete. It returns the number of packets made available.
func (p *Parser) Feed(data []byte) (int, error) {
	p.buf = append(p.buf, data...)
	return p.drain(false)
}

// Flush parses the final, unterminated access unit after the input ends.
func (p *Parser) Flush() (int, error) {
	return p.drain(true)
}

// Next returns the next parsed packet, or nil if none is buffered.
func (p *Parser) Next() *codec.Packet {
	if len(p.out) == 0 {
		return nil
	}
	pkt := p.out[0]
	copy(p.out, p.out[1:])
	p.out = p.out[:len(p.out)-1]
	return pkt
}

// drain extracts all complete units from buf. With eof, the trailing bytes
// form the final unit.
func (p *Parser) drain(eof bool) (int, error) {
	emitted := 0
	for {
		if !p.synced {
			i := bytes.Index(p.buf, codec.StartCode)
			if i < 0 {
				// No start code yet; keep a tail in case one straddles
				// the chunk boundary.
				if len(p.buf) > len(codec.StartCode) {
					p.buf = p.buf[len(p.buf)-len(codec.StartCode)+1:]
				}
				return emitted, nil
			}
			p.buf = p.buf[i+len(codec.StartCode):]
			p.synced = true
		}
		// Find the next start code; everything before it is one unit.
		end := bytes.Index(p.buf, codec.StartCode)
		if end < 0 {
			if len(p.buf) > p.opts.MaxUnit {
				p.reset()
				return emitted, fmt.Errorf("%w: access unit exceeds %d bytes", ErrCorrupt, p.opts.MaxUnit)
			}
			if !eof {
				return emitted, nil
			}
			if len(p.buf) == 0 {
				return emitted, nil
			}
			end = len(p.buf)
		}
		unit := p.buf[:end]
		if end == len(p.buf) {
			p.buf = p.buf[:0]
			p.synced = false
		} else {
			p.buf = p.buf[end+len(codec.StartCode):]
		}
		pkt, err := p.parseUnit(unit)
		if err != nil {
			return emitted, err
		}
		p.out = append(p.out, pkt)
		emitted++
	}
}

func (p *Parser) reset() {
	p.buf = p.buf[:0]
	p.synced = false
}

// parseUnit unescapes one access unit and builds the packet metadata.
func (p *Parser) parseUnit(unit []byte) (*codec.Packet, error) {
	p.body = codec.UnescapeEmulation(p.body[:0], unit)
	c, t, seq, gopIndex, gopSize, err := codec.DecodeUnitHeader(p.body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	pkt := &codec.Packet{
		StreamID: p.opts.StreamID,
		Seq:      seq,
		PTS:      seq * 1000 / int64(p.opts.FPS),
		Type:     t,
		Codec:    c,
		Size:     len(p.body) - codec.UnitHeaderSize,
		GOPIndex: gopIndex,
		GOPSize:  gopSize,
	}
	if p.opts.KeepPayload {
		pkt.Payload = append([]byte(nil), p.body[codec.UnitHeaderSize:]...)
	}
	p.n++
	return pkt, nil
}

// Reader wraps a Parser around an io.Reader for pull-style parsing.
type Reader struct {
	p   *Parser
	r   io.Reader
	buf [4096]byte
	eof bool
}

// NewReader creates a pull parser over r.
func NewReader(r io.Reader, opts Options) *Reader {
	return &Reader{p: New(opts), r: r}
}

// Next returns the next packet, or io.EOF when the stream is exhausted.
func (pr *Reader) Next() (*codec.Packet, error) {
	for {
		if pkt := pr.p.Next(); pkt != nil {
			return pkt, nil
		}
		if pr.eof {
			return nil, io.EOF
		}
		n, err := pr.r.Read(pr.buf[:])
		if n > 0 {
			if _, perr := pr.p.Feed(pr.buf[:n]); perr != nil {
				return nil, perr
			}
		}
		if err == io.EOF {
			pr.eof = true
			if _, perr := pr.p.Flush(); perr != nil {
				return nil, perr
			}
			continue
		}
		if err != nil {
			return nil, err
		}
	}
}

// ParseAll parses a complete in-memory bitstream.
func ParseAll(data []byte, opts Options) ([]*codec.Packet, error) {
	return ParseAllAppend(nil, data, opts)
}

// ParseAllAppend is ParseAll into caller-owned scratch: parsed packets are
// appended to dst (which may be nil). A caller that parses many bitstreams —
// the ingest loop re-parsing one stream per round — recycles one slice
// instead of re-growing a fresh one per call.
func ParseAllAppend(dst []*codec.Packet, data []byte, opts Options) ([]*codec.Packet, error) {
	p := New(opts)
	if _, err := p.Feed(data); err != nil {
		return dst, err
	}
	if _, err := p.Flush(); err != nil {
		return dst, err
	}
	for {
		pkt := p.Next()
		if pkt == nil {
			return dst, nil
		}
		dst = append(dst, pkt)
	}
}
