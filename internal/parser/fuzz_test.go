package parser

import (
	"bytes"
	"testing"

	"packetgame/internal/codec"
)

// FuzzParser drives the incremental parser with arbitrary bytes split at an
// arbitrary boundary; it must never panic, and anything it parses from a
// well-formed prefix must be internally consistent.
func FuzzParser(f *testing.F) {
	// Seed corpus: a real two-packet stream, noise, and boundary cases.
	var buf bytes.Buffer
	bw := codec.NewBitstreamWriter(&buf)
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 2}, 7)
	for i := 0; i < 2; i++ {
		if err := bw.WritePacket(st.Next()); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes(), 1)
	f.Add([]byte{}, 0)
	f.Add(codec.StartCode, 2)
	f.Add(append(append([]byte{}, codec.StartCode...), 0x0f, 1, 2, 3, 4, 5, 6, 7, 8), 3)
	f.Add(bytes.Repeat([]byte{0}, 64), 5)

	f.Fuzz(func(t *testing.T, data []byte, split int) {
		p := New(Options{MaxUnit: 1 << 16})
		if split < 0 {
			split = 0
		}
		if split > len(data) {
			split = len(data)
		}
		if _, err := p.Feed(data[:split]); err != nil {
			return
		}
		if _, err := p.Feed(data[split:]); err != nil {
			return
		}
		if _, err := p.Flush(); err != nil {
			return
		}
		for pkt := p.Next(); pkt != nil; pkt = p.Next() {
			if pkt.Size < 0 || pkt.GOPIndex < 0 || pkt.GOPSize < 0 {
				t.Fatalf("inconsistent packet: %+v", pkt)
			}
		}
	})
}

// FuzzEmulationRoundTrip checks escape/unescape is a lossless pair for any
// payload.
func FuzzEmulationRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1})
	f.Add([]byte{0, 0, 3, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		escaped := codec.EscapeEmulation(nil, data)
		if bytes.Contains(escaped, []byte{0, 0, 0}) ||
			bytes.Contains(escaped, []byte{0, 0, 1}) ||
			bytes.Contains(escaped, []byte{0, 0, 2}) {
			t.Fatalf("escaped output contains a start-code prefix: %v", escaped)
		}
		back := codec.UnescapeEmulation(nil, escaped)
		if !bytes.Equal(back, data) {
			t.Fatalf("round trip mismatch: %v -> %v -> %v", data, escaped, back)
		}
	})
}
