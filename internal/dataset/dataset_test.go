package dataset

import (
	"math"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/infer"
)

func TestCampus1KDefaults(t *testing.T) {
	streams := Campus1K(Campus1KConfig{Seed: 1})
	if len(streams) != 1108 {
		t.Fatalf("cameras = %d, want 1108", len(streams))
	}
	p := streams[0].Next()
	if p.Codec != codec.H265 {
		t.Errorf("campus codec = %v, want h265", p.Codec)
	}
	if p.StreamID != 0 {
		t.Errorf("stream id = %d", p.StreamID)
	}
}

func TestCampus1KDiurnalLoad(t *testing.T) {
	// A small fleet started at night vs at evening peak: the peak fleet
	// must see far more people.
	count := func(startHour float64) int {
		streams := Campus1K(Campus1KConfig{Cameras: 20, Seed: 2, StartHour: startHour})
		total := 0
		for _, st := range streams {
			for i := 0; i < 25*120; i++ {
				st.Next()
				total += st.LastScene.PersonCount
			}
		}
		return total
	}
	night, evening := count(3), count(17.5)
	if evening < night*2 {
		t.Errorf("evening load (%d) should dwarf night load (%d)", evening, night)
	}
}

func TestYTUGCDefaults(t *testing.T) {
	streams := YTUGC(YTUGCConfig{Seed: 3})
	if len(streams) != 1179 {
		t.Fatalf("videos = %d, want 1179", len(streams))
	}
	if got := streams[0].Next().Codec; got != codec.H264 {
		t.Errorf("codec = %v, want h264", got)
	}
	// Quality drops must actually occur on most clips.
	drops := 0
	for _, st := range streams[:30] {
		for i := 0; i < 25*240; i++ {
			st.Next()
			if st.LastScene.QualityDrop {
				drops++
				break
			}
		}
	}
	if drops < 20 {
		t.Errorf("only %d/30 clips showed quality drops", drops)
	}
}

func TestYTUGCCodecOverride(t *testing.T) {
	streams := YTUGC(YTUGCConfig{Videos: 3, Seed: 4, Codec: codec.VP9})
	if got := streams[0].Next().Codec; got != codec.VP9 {
		t.Errorf("codec = %v, want vp9", got)
	}
}

func TestFireNetFireDistribution(t *testing.T) {
	streams := FireNet(FireNetConfig{Seed: 5})
	if len(streams) != 64 {
		t.Fatalf("videos = %d, want 64", len(streams))
	}
	fire := 0
	for _, st := range streams {
		for i := 0; i < 25*300; i++ {
			st.Next()
			if st.LastScene.Fire {
				fire++
				break
			}
		}
	}
	// 47 of 64 carry fire segments; a long window should light up most.
	if fire < 30 || fire > 47 {
		t.Errorf("%d/64 clips showed fire, want roughly 47", fire)
	}
}

func TestCollectShapesAndLabels(t *testing.T) {
	streams := Campus1K(Campus1KConfig{Cameras: 3, Seed: 6})
	tasks := []infer.Task{infer.PersonCounting{}, infer.AnomalyDetection{}}
	samples, err := Collect(streams, tasks, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3*40 {
		t.Fatalf("samples = %d, want 120", len(samples))
	}
	for i, s := range samples {
		if len(s.Labels) != 2 {
			t.Fatalf("sample %d labels = %v", i, s.Labels)
		}
		if len(s.F.ISizes) != 5 || len(s.F.PSizes) != 5 {
			t.Fatalf("sample %d window sizes wrong", i)
		}
		if s.F.Temporal < 0 || s.F.Temporal > 1 {
			t.Fatalf("sample %d temporal = %v", i, s.F.Temporal)
		}
	}
}

func TestCollectValidation(t *testing.T) {
	if _, err := Collect(nil, []infer.Task{infer.PersonCounting{}}, 5, 10); err == nil {
		t.Error("no streams must error")
	}
	streams := Campus1K(Campus1KConfig{Cameras: 1, Seed: 1})
	if _, err := Collect(streams, nil, 5, 10); err == nil {
		t.Error("no tasks must error")
	}
	if _, err := Collect(streams, []infer.Task{infer.PersonCounting{}}, 0, 10); err == nil {
		t.Error("zero window must error")
	}
}

func TestBalanceProducesOneToOne(t *testing.T) {
	streams := Campus1K(Campus1KConfig{Cameras: 5, Seed: 7})
	samples, err := Collect(streams, []infer.Task{infer.PersonCounting{}}, 5, 400)
	if err != nil {
		t.Fatal(err)
	}
	bal := Balance(samples, 0, 1)
	if len(bal) == 0 {
		t.Fatal("balanced set is empty")
	}
	rate := PositiveRate(bal, 0)
	if math.Abs(rate-0.5) > 1e-9 {
		t.Errorf("balanced positive rate = %v, want 0.5", rate)
	}
	if len(bal)%2 != 0 {
		t.Errorf("balanced size %d must be even", len(bal))
	}
}

func TestSplitPartitions(t *testing.T) {
	streams := Campus1K(Campus1KConfig{Cameras: 2, Seed: 8})
	samples, err := Collect(streams, []infer.Task{infer.PersonCounting{}}, 5, 50)
	if err != nil {
		t.Fatal(err)
	}
	train, test := Split(samples, 0.8, 1)
	if len(train)+len(test) != len(samples) {
		t.Errorf("split loses samples: %d+%d != %d", len(train), len(test), len(samples))
	}
	want := int(0.8 * float64(len(samples)))
	if len(train) != want {
		t.Errorf("train = %d, want %d", len(train), want)
	}
}

func TestLabelsExtraction(t *testing.T) {
	streams := Campus1K(Campus1KConfig{Cameras: 1, Seed: 9})
	samples, err := Collect(streams, []infer.Task{infer.PersonCounting{}}, 5, 30)
	if err != nil {
		t.Fatal(err)
	}
	labels := Labels(samples, 0)
	if len(labels) != len(samples) {
		t.Fatalf("labels = %d", len(labels))
	}
	// First round is always necessary (no prior result).
	if !labels[0] {
		t.Error("first sample must be necessary")
	}
}

func TestDeterminism(t *testing.T) {
	a := Campus1K(Campus1KConfig{Cameras: 4, Seed: 10})
	b := Campus1K(Campus1KConfig{Cameras: 4, Seed: 10})
	for i := 0; i < 100; i++ {
		for s := range a {
			pa, pb := a[s].Next(), b[s].Next()
			if pa.Size != pb.Size || pa.Type != pb.Type {
				t.Fatalf("stream %d packet %d diverged", s, i)
			}
		}
	}
}
