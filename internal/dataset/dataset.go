// Package dataset generates the synthetic analogues of the paper's three
// evaluation corpora (Tab 2): Campus1K (1108 campus IP cameras, h265,
// diurnal activity), YT-UGC (1179 user-generated h264 videos with bandwidth-
// induced quality drops), and FireNet (64 mobile clips with inserted fire
// segments). All generators are seeded and deterministic.
package dataset

import (
	"math/rand"

	"packetgame/internal/codec"
)

// Campus1KConfig parameterizes the campus corpus.
type Campus1KConfig struct {
	// Cameras is the fleet size (default 1108, the paper's deployment).
	Cameras int
	// Seed drives all randomness.
	Seed int64
	// StartHour is the simulated local hour at round 0 (default 0).
	StartHour float64
	// GOPSize for the camera encoders (default 25).
	GOPSize int
	// TimeCompress accelerates the diurnal clock (codec.SceneConfig's
	// field): 1440 sweeps 24h in one minute of frames. Default 1 (real
	// time). Soak experiments use it to replay a full campus day in a
	// short run.
	TimeCompress float64
}

// campusBuilding mirrors the Fig 8 camera distribution.
type campusBuilding struct {
	name     string
	cameras  int
	activity float64 // relative busyness multiplier
	richness float64
}

var campusBuildings = []campusBuilding{
	{"dining-hall", 150, 1.3, 0.65},
	{"library-lab", 388, 1.0, 0.55},
	{"lab-building", 230, 0.8, 0.5},
	{"apartments", 216, 0.9, 0.45},
	{"outdoor", 124, 0.6, 0.7},
}

// Campus1K builds the camera fleet. Cameras are assigned to buildings in
// the Fig 8 proportions; each camera gets a diurnal activity profile and
// per-camera jitter in richness and rates.
func Campus1K(cfg Campus1KConfig) []*codec.Stream {
	if cfg.Cameras == 0 {
		cfg.Cameras = 1108
	}
	if cfg.GOPSize == 0 {
		cfg.GOPSize = 25
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	total := 0
	for _, b := range campusBuildings {
		total += b.cameras
	}
	streams := make([]*codec.Stream, cfg.Cameras)
	for i := range streams {
		// Pick the building proportionally to the Fig 8 counts.
		slot := i * total / cfg.Cameras
		var b campusBuilding
		for _, cand := range campusBuildings {
			if slot < cand.cameras {
				b = cand
				break
			}
			slot -= cand.cameras
		}
		sc := codec.SceneConfig{
			Diurnal:      true,
			StartHour:    cfg.StartHour,
			TimeCompress: cfg.TimeCompress,
			BaseActivity: clamp(0.3*b.activity+rng.NormFloat64()*0.05, 0.05, 1),
			Richness:     clamp(b.richness+rng.NormFloat64()*0.08, 0.1, 0.95),
			PersonRate:   clamp(0.25*b.activity+rng.NormFloat64()*0.05, 0.02, 1),
			AnomalyRate:  2,
		}
		ec := codec.EncoderConfig{
			StreamID: i,
			Codec:    codec.H265, // the campus fleet records h265 (Tab 2)
			GOPSize:  cfg.GOPSize,
			GOPPhase: i * 7,
		}
		streams[i] = codec.NewStream(sc, ec, cfg.Seed+int64(i)*7919)
	}
	return streams
}

// YTUGCConfig parameterizes the user-generated-content corpus.
type YTUGCConfig struct {
	// Videos is the clip count (default 1179).
	Videos int
	// Seed drives all randomness.
	Seed int64
	// Codec of the stored videos (default H264; Fig 14 transcodes).
	Codec codec.Codec
	// Bitrate for all clips (default reference bitrate; the extreme-low
	// bitrate study overrides it).
	Bitrate int
	// GOPSize (default 50 — longer GOPs, typical for stored video).
	GOPSize int
}

// YTUGC builds the offline video corpus: diverse static content (richness
// spread), spectator-style motion, and random bandwidth-induced quality
// drops that make super-resolution necessary.
func YTUGC(cfg YTUGCConfig) []*codec.Stream {
	if cfg.Videos == 0 {
		cfg.Videos = 1179
	}
	if cfg.GOPSize == 0 {
		cfg.GOPSize = 50
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 23))
	streams := make([]*codec.Stream, cfg.Videos)
	for i := range streams {
		sc := codec.SceneConfig{
			BaseActivity:        clamp(0.2+rng.Float64()*0.6, 0.05, 1),
			Richness:            clamp(0.2+rng.Float64()*0.7, 0.1, 0.95),
			PersonRate:          clamp(rng.Float64()*0.4, 0.01, 1),
			QualityDropRate:     60 + rng.Float64()*90, // drops per hour
			QualityDropDuration: 8 + rng.Float64()*15,
		}
		ec := codec.EncoderConfig{
			StreamID: i,
			Codec:    cfg.Codec,
			GOPSize:  cfg.GOPSize,
			Bitrate:  cfg.Bitrate,
			GOPPhase: i * 13,
		}
		streams[i] = codec.NewStream(sc, ec, cfg.Seed+int64(i)*104729)
	}
	return streams
}

// FireNetConfig parameterizes the fire-detection corpus.
type FireNetConfig struct {
	// Videos is the clip count (default 64: 47 with fire, 17 without).
	Videos int
	// Seed drives all randomness.
	Seed int64
}

// FireNet builds the mobile-camera corpus: handheld motion noise, and fire
// segments randomly inserted into roughly 47/64 of the clips (the paper
// splices fire clips into fire-free footage).
func FireNet(cfg FireNetConfig) []*codec.Stream {
	if cfg.Videos == 0 {
		cfg.Videos = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 37))
	streams := make([]*codec.Stream, cfg.Videos)
	for i := range streams {
		fireRate := 0.0
		if i%64 < 47 { // 47 of every 64 clips contain fire
			fireRate = 120 + rng.Float64()*180
		}
		sc := codec.SceneConfig{
			BaseActivity: clamp(0.3+rng.Float64()*0.3, 0.05, 1),
			Richness:     clamp(0.3+rng.Float64()*0.5, 0.1, 0.95),
			PersonRate:   0.05,
			FireRate:     fireRate,
			FireDuration: 12 + rng.Float64()*18,
			MotionNoise:  0.1, // handheld shake
		}
		ec := codec.EncoderConfig{StreamID: i, Codec: codec.H264, GOPSize: 25, GOPPhase: i * 7}
		streams[i] = codec.NewStream(sc, ec, cfg.Seed+int64(i)*31337)
	}
	return streams
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
