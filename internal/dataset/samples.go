package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"packetgame/internal/codec"
	"packetgame/internal/infer"
	"packetgame/internal/predictor"
)

// Collect runs the given streams for `rounds` rounds and produces one
// labeled training sample per packet: the multi-view features (with the
// idealized temporal view computed from the full feedback history, as
// offline training has every frame decoded) and the necessity label for
// each task (§6.1 offline training protocol).
func Collect(streams []*codec.Stream, tasks []infer.Task, window, rounds int) ([]predictor.Sample, error) {
	if len(streams) == 0 || len(tasks) == 0 {
		return nil, fmt.Errorf("dataset: need streams and tasks")
	}
	if window <= 0 || rounds <= 0 {
		return nil, fmt.Errorf("dataset: window and rounds must be positive")
	}
	type streamState struct {
		win     *predictor.Window
		prev    []infer.Result // per task
		started []bool
		// history ring of labels for the temporal view
		hist [][]float64
		pos  int
	}
	states := make([]*streamState, len(streams))
	for i := range states {
		st := &streamState{
			win:     predictor.NewWindow(window),
			prev:    make([]infer.Result, len(tasks)),
			started: make([]bool, len(tasks)),
			hist:    make([][]float64, len(tasks)),
		}
		for ti := range tasks {
			st.hist[ti] = make([]float64, window)
		}
		states[i] = st
	}
	var samples []predictor.Sample
	for t := 0; t < rounds; t++ {
		for si, stream := range streams {
			p := stream.Next()
			truth := stream.LastScene
			st := states[si]
			st.win.Push(p)
			// Temporal view: mean of the last w labels of task 0 (the
			// estimator's exploitation term under decode-everything).
			temporal := mean(st.hist[0])
			f := st.win.Features(temporal).Clone()
			labels := make([]float64, len(tasks))
			for ti, task := range tasks {
				cur := task.ResultOf(truth)
				necessary := !st.started[ti] || task.Necessary(st.prev[ti], cur)
				st.prev[ti], st.started[ti] = cur, true
				if necessary {
					labels[ti] = 1
				}
				st.hist[ti][st.pos%window] = labels[ti]
			}
			st.pos++
			samples = append(samples, predictor.Sample{F: f, Labels: labels})
		}
	}
	return samples, nil
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Balance subsamples to a 1:1 positive:negative ratio on task ti, the
// paper's offline evaluation protocol (§6.3).
func Balance(samples []predictor.Sample, ti int, seed int64) []predictor.Sample {
	var pos, neg []predictor.Sample
	for _, s := range samples {
		if ti >= len(s.Labels) || math.IsNaN(s.Labels[ti]) {
			continue
		}
		if s.Labels[ti] >= 0.5 {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	rng := rand.New(rand.NewSource(seed + 613))
	rng.Shuffle(len(pos), func(a, b int) { pos[a], pos[b] = pos[b], pos[a] })
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	out := append(append(make([]predictor.Sample, 0, 2*n), pos[:n]...), neg[:n]...)
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}

// Split divides samples into train and test partitions; frac is the train
// fraction (the paper uses 0.8).
func Split(samples []predictor.Sample, frac float64, seed int64) (train, test []predictor.Sample) {
	idx := rand.New(rand.NewSource(seed + 271)).Perm(len(samples))
	cut := int(frac * float64(len(samples)))
	for k, i := range idx {
		if k < cut {
			train = append(train, samples[i])
		} else {
			test = append(test, samples[i])
		}
	}
	return train, test
}

// Labels extracts the boolean necessity labels of task ti.
func Labels(samples []predictor.Sample, ti int) []bool {
	out := make([]bool, len(samples))
	for i, s := range samples {
		out[i] = s.Labels[ti] >= 0.5
	}
	return out
}

// PositiveRate returns the fraction of positive labels on task ti.
func PositiveRate(samples []predictor.Sample, ti int) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range samples {
		if s.Labels[ti] >= 0.5 {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}
