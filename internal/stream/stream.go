// Package stream implements PGSP, the PacketGame stream protocol: a
// length-prefixed TCP protocol that muxes the encoded packets of many
// cameras toward an analytics server, standing in for the RTSP ingest of
// the paper's online use case. A Server paces synthetic camera fleets in
// rounds; a Client demuxes packets (round-aligned) into the parser/gate.
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/container"
)

// protocol constants.
var handshakeMagic = [4]byte{'P', 'G', 'S', 'P'}

// protocolVersion 2 added per-frame CRC32 and the goodbye end-of-session
// marker (see frame.go).
const protocolVersion = 2

// StreamInfo describes one muxed stream in the handshake.
type StreamInfo struct {
	Codec   codec.Codec
	FPS     int
	GOPSize int
}

// ServerConfig parameterizes a PGSP server.
type ServerConfig struct {
	// NewStreams builds a fresh camera fleet for each accepted connection
	// (streams are stateful, so connections cannot share them).
	NewStreams func() []*codec.Stream
	// Rounds is the number of rounds to send per connection (0 = until the
	// client disconnects).
	Rounds int
	// Realtime paces rounds at FPS (default: as fast as possible).
	Realtime bool
	// FPS is the pacing rate (default 25).
	FPS int
	// WriteTimeout bounds each round's write to a client (default 10s,
	// negative disables): a stalled client is disconnected instead of
	// wedging its serving goroutine forever.
	WriteTimeout time.Duration
	// SparseRounds packs each round into one frame carrying only the active
	// streams (see sparseRoundStream in frame.go) instead of one frame per
	// stream. Rounds demux identically on a current Client — packets, round
	// grouping, and NextRound results are unchanged — but the per-round wire
	// cost drops from m frame headers to one, and NextRoundSparse consumes
	// the round with O(active) work. Opt-in: clients predating the sparse
	// frame reject the reserved stream id.
	SparseRounds bool
	// Record, when non-nil, taps every packet of the first accepted
	// session, invoked synchronously from the serving goroutine with the
	// round index, stream slot, and packet. Only the first session is
	// tapped: each connection gets an independent fleet, so recording two
	// would interleave unrelated sessions into one capture.
	Record func(round int64, streamID int, p *codec.Packet)
}

// Server serves synthetic camera fleets over TCP.
type Server struct {
	cfg  ServerConfig
	ln   net.Listener
	wg   sync.WaitGroup
	stop chan struct{}

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	closed   bool
	recorded bool // the Record tap has been claimed by a session
}

// Serve starts serving on ln. It returns immediately; Close or Shutdown
// stops it.
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.NewStreams == nil {
		return nil, errors.New("stream: ServerConfig.NewStreams is required")
	}
	if cfg.FPS == 0 {
		cfg.FPS = 25
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 10 * time.Second
	}
	s := &Server{cfg: cfg, ln: ln, stop: make(chan struct{}), conns: map[net.Conn]struct{}{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server gracefully with a 5-second force-close deadline.
func (s *Server) Close() error { return s.Shutdown(5 * time.Second) }

// Shutdown stops the server gracefully: the listener closes immediately (no
// new sessions), every active connection finishes the round it is writing,
// sends the goodbye marker, and closes — never cutting a client mid-frame.
// Connections still open after the deadline (a stalled peer) are
// force-closed; deadline 0 waits indefinitely. Safe to call more than once.
func (s *Server) Shutdown(deadline time.Duration) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.stop)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var expired <-chan time.Time
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		expired = t.C
	}
	select {
	case <-done:
	case <-expired:
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
				conn.Close()
			}()
			_ = s.serveConn(conn)
		}()
	}
}

// serveConn streams rounds to one client until done, shutdown, or write
// error. Shutdown is only observed at round boundaries, so a client never
// sees a partial round before the goodbye marker.
func (s *Server) serveConn(conn net.Conn) error {
	record := s.claimRecord()
	streams := s.cfg.NewStreams()
	bw := bufio.NewWriterSize(conn, 64<<10)
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if err := writeHandshake(bw, streams); err != nil {
		return err
	}
	interval := time.Second / time.Duration(s.cfg.FPS)
	var body, frame, rbody []byte
	var ids []int32
	var pkts []*codec.Packet
	next := time.Now()
	round := int64(0)
	for ; s.cfg.Rounds == 0 || round < int64(s.cfg.Rounds); round++ {
		select {
		case <-s.stop:
			return s.sayGoodbye(conn, bw, uint64(round))
		default:
		}
		if s.cfg.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if s.cfg.SparseRounds {
			ids, pkts = ids[:0], pkts[:0]
			for i, st := range streams {
				p := st.Next()
				if record != nil {
					record(round, i, p)
				}
				if p == nil {
					continue
				}
				ids = append(ids, int32(i))
				pkts = append(pkts, p)
			}
			rbody = appendSparseRoundBody(rbody[:0], ids, pkts, &body)
			frame = appendFrame(frame[:0], uint64(round), sparseRoundStream, rbody)
			if _, err := bw.Write(frame); err != nil {
				return err
			}
		} else {
			for i, st := range streams {
				p := st.Next()
				if record != nil {
					record(round, i, p)
				}
				body = container.MarshalPacket(body[:0], p)
				frame = appendFrame(frame[:0], uint64(round), uint32(i), body)
				if _, err := bw.Write(frame); err != nil {
					return err
				}
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if s.cfg.Realtime {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return s.sayGoodbye(conn, bw, uint64(round))
}

// claimRecord hands the Record tap to the first session that asks.
func (s *Server) claimRecord() func(int64, int, *codec.Packet) {
	if s.cfg.Record == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.recorded {
		return nil
	}
	s.recorded = true
	return s.cfg.Record
}

// sayGoodbye writes the end-of-session marker so the client knows the
// session ended cleanly rather than by a reset.
func (s *Server) sayGoodbye(conn net.Conn, bw *bufio.Writer, round uint64) error {
	if s.cfg.WriteTimeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if _, err := bw.Write(appendGoodbye(nil, round)); err != nil {
		return err
	}
	return bw.Flush()
}

func writeHandshake(w *bufio.Writer, streams []*codec.Stream) error {
	infos := make([]StreamInfo, len(streams))
	for i, st := range streams {
		cfg := st.Encoder.Config()
		infos[i] = StreamInfo{Codec: cfg.Codec, FPS: cfg.FPS, GOPSize: cfg.GOPSize}
	}
	if err := WriteHandshake(w, infos); err != nil {
		return err
	}
	return w.Flush()
}

// WriteHandshake writes the PGSP handshake advertising the given streams. It
// is exported for replay tools that serve recorded sessions: the stream
// metadata comes from a capture's header instead of a live fleet.
func WriteHandshake(w io.Writer, infos []StreamInfo) error {
	if _, err := w.Write(handshakeMagic[:]); err != nil {
		return err
	}
	hdr := []byte{protocolVersion, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(infos)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	for _, info := range infos {
		var meta [5]byte
		meta[0] = byte(info.Codec)
		binary.BigEndian.PutUint16(meta[1:], uint16(info.FPS))
		binary.BigEndian.PutUint16(meta[3:], uint16(info.GOPSize))
		if _, err := w.Write(meta[:]); err != nil {
			return err
		}
	}
	return nil
}

// Client consumes a PGSP session.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	infos []StreamInfo

	// lookahead for round grouping
	pending      *codec.Packet
	pendingRound int64
	havePending  bool
	round        int64
	eof          bool

	// sparse round frames: sparseIn holds the last decoded round while it
	// is live (undelivered, or being drained packet-by-packet through Next).
	sparseIn   codec.Round
	sparseRnd  int64
	sparseLive bool
	sparsePos  int // Next()'s drain cursor into sparseIn

	// NextRoundSparse scratch for sessions on the per-stream wire format.
	sparseOut    codec.Round
	denseScratch []*codec.Packet

	goodbye    bool
	crcDropped int64
}

// Dial connects to a PGSP server and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient performs the PGSP handshake over an established connection —
// the injection point for wrapped (fault-injecting, instrumented) conns.
// It takes ownership of conn and closes it on handshake failure.
func NewClient(conn net.Conn) (*Client, error) {
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake() error {
	var magic [5]byte
	if _, err := io.ReadFull(c.br, magic[:]); err != nil {
		return fmt.Errorf("stream: handshake: %w", err)
	}
	if [4]byte(magic[:4]) != handshakeMagic {
		return fmt.Errorf("stream: bad handshake magic %q", magic[:4])
	}
	if magic[4] != protocolVersion {
		return fmt.Errorf("stream: unsupported protocol version %d", magic[4])
	}
	var nbuf [4]byte
	if _, err := io.ReadFull(c.br, nbuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(nbuf[:])
	if n == 0 || n > 1<<20 {
		return fmt.Errorf("stream: implausible stream count %d", n)
	}
	c.infos = make([]StreamInfo, n)
	for i := range c.infos {
		var meta [5]byte
		if _, err := io.ReadFull(c.br, meta[:]); err != nil {
			return err
		}
		c.infos[i] = StreamInfo{
			Codec:   codec.Codec(meta[0]),
			FPS:     int(binary.BigEndian.Uint16(meta[1:])),
			GOPSize: int(binary.BigEndian.Uint16(meta[3:])),
		}
	}
	return nil
}

// Streams returns the per-stream metadata from the handshake.
func (c *Client) Streams() []StreamInfo { return c.infos }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// SawGoodbye reports whether the session ended with the server's clean
// end-of-session marker. After an io.EOF without it, the connection was
// reset or cut mid-frame — the signal a reconnecting client keys on.
func (c *Client) SawGoodbye() bool { return c.goodbye }

// CorruptDropped returns the number of frames the demuxer dropped for CRC
// mismatch.
func (c *Client) CorruptDropped() int64 { return c.crcDropped }

// next reads one message from the wire. Frames failing their CRC are
// dropped (counted in CorruptDropped) and reading continues: the length
// field kept the reader frame-aligned, so one corrupt body must not kill
// the session. isRound reports a sparse round frame: the round now lives in
// c.sparseIn (sparseLive set) and the returned packet is nil.
func (c *Client) next() (p *codec.Packet, round int64, isRound bool, err error) {
	for {
		rnd, id, body, err := readFrame(c.br)
		switch {
		case err == nil:
		case errors.Is(err, ErrFrameCRC):
			c.crcDropped++
			continue
		case errors.Is(err, errGoodbye):
			c.goodbye = true
			return nil, 0, false, io.EOF
		case err == io.EOF, errors.Is(err, io.ErrUnexpectedEOF), errors.Is(err, net.ErrClosed):
			return nil, 0, false, io.EOF
		default:
			return nil, 0, false, err
		}
		if id == sparseRoundStream {
			if err := decodeSparseRoundBody(body, len(c.infos), &c.sparseIn); err != nil {
				return nil, 0, false, err
			}
			for k, sid := range c.sparseIn.IDs {
				c.sparseIn.Pkts[k].Codec = c.infos[sid].Codec
			}
			c.sparseRnd, c.sparseLive, c.sparsePos = int64(rnd), true, 0
			return nil, int64(rnd), true, nil
		}
		p, used, err := container.UnmarshalPacket(body)
		if err != nil {
			return nil, 0, false, err
		}
		if used != len(body) {
			return nil, 0, false, fmt.Errorf("stream: message has trailing bytes")
		}
		if int(id) >= len(c.infos) {
			return nil, 0, false, fmt.Errorf("stream: message for unknown stream %d", id)
		}
		p.StreamID = int(id)
		p.Codec = c.infos[id].Codec
		return p, int64(rnd), false, nil
	}
}

// Next returns the next packet in arrival order along with its round index.
// It returns io.EOF when the server is done. Sparse round frames demux
// transparently: their packets drain one per call in ascending stream
// order, so round grouping downstream behaves exactly as on the per-stream
// wire format.
func (c *Client) Next() (*codec.Packet, int64, error) {
	if c.havePending {
		c.havePending = false
		return c.pending, c.pendingRound, nil
	}
	for {
		if c.sparseLive {
			if c.sparsePos < c.sparseIn.Len() {
				p := c.sparseIn.Pkts[c.sparsePos]
				c.sparsePos++
				return p, c.sparseRnd, nil
			}
			c.sparseLive = false // empty or exhausted round
		}
		p, round, isRound, err := c.next()
		if err != nil {
			return nil, 0, err
		}
		if isRound {
			continue // drain it above
		}
		return p, round, nil
	}
}

// NextRoundSparse gathers one full round as a sparse codec.Round holding
// only the active streams. On a SparseRounds session this is O(active) —
// one frame decode, no per-stream scan — and empty rounds are preserved;
// on the per-stream wire format it gathers exactly like NextRound and
// compacts. The returned round is valid until the next call.
func (c *Client) NextRoundSparse() (*codec.Round, error) {
	// Fast path: a sparse round frame maps to one call wholesale.
	if !c.havePending && !c.sparseLive {
		if c.eof {
			return nil, io.EOF
		}
		p, round, isRound, err := c.next()
		if err == io.EOF {
			c.eof = true
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if isRound {
			c.sparseLive = false
			return &c.sparseIn, nil
		}
		// Per-stream wire format: stash and gather below.
		c.pending, c.pendingRound, c.havePending = p, round, true
	}
	// Compatibility path: gather through the packet-wise demux (which also
	// drains a partially-consumed sparse round) and compact.
	if cap(c.denseScratch) < len(c.infos) {
		c.denseScratch = make([]*codec.Packet, len(c.infos))
	}
	dense := c.denseScratch[:len(c.infos)]
	for i := range dense {
		dense[i] = nil
	}
	got := 0
	for {
		if c.eof {
			if got > 0 {
				break
			}
			return nil, io.EOF
		}
		p, r, err := c.Next()
		if err == io.EOF {
			c.eof = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if got == 0 {
			c.round = r
		} else if r != c.round {
			c.pending, c.pendingRound, c.havePending = p, r, true
			break
		}
		if dense[p.StreamID] != nil {
			return nil, fmt.Errorf("stream: duplicate packet for stream %d in round %d", p.StreamID, r)
		}
		dense[p.StreamID] = p
		got++
	}
	c.sparseOut.FromDense(dense)
	return &c.sparseOut, nil
}

// NextRound gathers one full round: a slice indexed by stream ID with nil
// entries for streams that sent nothing this round. It returns io.EOF once
// the stream ends and all buffered rounds are drained.
func (c *Client) NextRound() ([]*codec.Packet, error) {
	round := make([]*codec.Packet, len(c.infos))
	got := 0
	for {
		if c.eof {
			if got > 0 {
				return round, nil
			}
			return nil, io.EOF
		}
		p, r, err := c.Next()
		if err == io.EOF {
			c.eof = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if got == 0 {
			c.round = r
		} else if r != c.round {
			// Start of the next round: stash and return the current one.
			c.pending, c.pendingRound, c.havePending = p, r, true
			return round, nil
		}
		if round[p.StreamID] != nil {
			return nil, fmt.Errorf("stream: duplicate packet for stream %d in round %d", p.StreamID, r)
		}
		round[p.StreamID] = p
		got++
	}
}
