// Package stream implements PGSP, the PacketGame stream protocol: a
// length-prefixed TCP protocol that muxes the encoded packets of many
// cameras toward an analytics server, standing in for the RTSP ingest of
// the paper's online use case. A Server paces synthetic camera fleets in
// rounds; a Client demuxes packets (round-aligned) into the parser/gate.
package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/container"
)

// protocol constants.
var handshakeMagic = [4]byte{'P', 'G', 'S', 'P'}

const protocolVersion = 1

// StreamInfo describes one muxed stream in the handshake.
type StreamInfo struct {
	Codec   codec.Codec
	FPS     int
	GOPSize int
}

// ServerConfig parameterizes a PGSP server.
type ServerConfig struct {
	// NewStreams builds a fresh camera fleet for each accepted connection
	// (streams are stateful, so connections cannot share them).
	NewStreams func() []*codec.Stream
	// Rounds is the number of rounds to send per connection (0 = until the
	// client disconnects).
	Rounds int
	// Realtime paces rounds at FPS (default: as fast as possible).
	Realtime bool
	// FPS is the pacing rate (default 25).
	FPS int
}

// Server serves synthetic camera fleets over TCP.
type Server struct {
	cfg ServerConfig
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Serve starts serving on ln. It returns immediately; Close stops it.
func Serve(ln net.Listener, cfg ServerConfig) (*Server, error) {
	if cfg.NewStreams == nil {
		return nil, errors.New("stream: ServerConfig.NewStreams is required")
	}
	if cfg.FPS == 0 {
		cfg.FPS = 25
	}
	s := &Server{cfg: cfg, ln: ln}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.serveConn(conn)
		}()
	}
}

// serveConn streams rounds to one client until done or write error.
func (s *Server) serveConn(conn net.Conn) error {
	streams := s.cfg.NewStreams()
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := writeHandshake(bw, streams); err != nil {
		return err
	}
	interval := time.Second / time.Duration(s.cfg.FPS)
	var buf []byte
	next := time.Now()
	for round := int64(0); s.cfg.Rounds == 0 || round < int64(s.cfg.Rounds); round++ {
		for i, st := range streams {
			p := st.Next()
			buf = buf[:0]
			buf = container.MarshalPacket(buf, p)
			var hdr [16]byte
			binary.BigEndian.PutUint64(hdr[0:], uint64(round))
			binary.BigEndian.PutUint32(hdr[8:], uint32(i))
			binary.BigEndian.PutUint32(hdr[12:], uint32(len(buf)))
			if _, err := bw.Write(hdr[:]); err != nil {
				return err
			}
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if s.cfg.Realtime {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	return bw.Flush()
}

func writeHandshake(w *bufio.Writer, streams []*codec.Stream) error {
	if _, err := w.Write(handshakeMagic[:]); err != nil {
		return err
	}
	if err := w.WriteByte(protocolVersion); err != nil {
		return err
	}
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(streams)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	for _, st := range streams {
		cfg := st.Encoder.Config()
		var meta [5]byte
		meta[0] = byte(cfg.Codec)
		binary.BigEndian.PutUint16(meta[1:], uint16(cfg.FPS))
		binary.BigEndian.PutUint16(meta[3:], uint16(cfg.GOPSize))
		if _, err := w.Write(meta[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Client consumes a PGSP session.
type Client struct {
	conn  net.Conn
	br    *bufio.Reader
	infos []StreamInfo

	// lookahead for round grouping
	pending      *codec.Packet
	pendingRound int64
	havePending  bool
	round        int64
	eof          bool
}

// Dial connects to a PGSP server and performs the handshake.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, br: bufio.NewReaderSize(conn, 64<<10)}
	if err := c.handshake(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

func (c *Client) handshake() error {
	var magic [5]byte
	if _, err := io.ReadFull(c.br, magic[:]); err != nil {
		return fmt.Errorf("stream: handshake: %w", err)
	}
	if [4]byte(magic[:4]) != handshakeMagic {
		return fmt.Errorf("stream: bad handshake magic %q", magic[:4])
	}
	if magic[4] != protocolVersion {
		return fmt.Errorf("stream: unsupported protocol version %d", magic[4])
	}
	var nbuf [4]byte
	if _, err := io.ReadFull(c.br, nbuf[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(nbuf[:])
	if n == 0 || n > 1<<20 {
		return fmt.Errorf("stream: implausible stream count %d", n)
	}
	c.infos = make([]StreamInfo, n)
	for i := range c.infos {
		var meta [5]byte
		if _, err := io.ReadFull(c.br, meta[:]); err != nil {
			return err
		}
		c.infos[i] = StreamInfo{
			Codec:   codec.Codec(meta[0]),
			FPS:     int(binary.BigEndian.Uint16(meta[1:])),
			GOPSize: int(binary.BigEndian.Uint16(meta[3:])),
		}
	}
	return nil
}

// Streams returns the per-stream metadata from the handshake.
func (c *Client) Streams() []StreamInfo { return c.infos }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// next reads one message from the wire.
func (c *Client) next() (*codec.Packet, int64, error) {
	var hdr [16]byte
	if _, err := io.ReadFull(c.br, hdr[:]); err != nil {
		if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
			return nil, 0, io.EOF
		}
		return nil, 0, err
	}
	round := int64(binary.BigEndian.Uint64(hdr[0:]))
	id := int(binary.BigEndian.Uint32(hdr[8:]))
	n := binary.BigEndian.Uint32(hdr[12:])
	if n > 64<<20 {
		return nil, 0, fmt.Errorf("stream: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.br, body); err != nil {
		return nil, 0, err
	}
	p, used, err := container.UnmarshalPacket(body)
	if err != nil {
		return nil, 0, err
	}
	if used != int(n) {
		return nil, 0, fmt.Errorf("stream: message has trailing bytes")
	}
	if id < 0 || id >= len(c.infos) {
		return nil, 0, fmt.Errorf("stream: message for unknown stream %d", id)
	}
	p.StreamID = id
	p.Codec = c.infos[id].Codec
	return p, round, nil
}

// Next returns the next packet in arrival order along with its round index.
// It returns io.EOF when the server is done.
func (c *Client) Next() (*codec.Packet, int64, error) {
	if c.havePending {
		c.havePending = false
		return c.pending, c.pendingRound, nil
	}
	return c.next()
}

// NextRound gathers one full round: a slice indexed by stream ID with nil
// entries for streams that sent nothing this round. It returns io.EOF once
// the stream ends and all buffered rounds are drained.
func (c *Client) NextRound() ([]*codec.Packet, error) {
	round := make([]*codec.Packet, len(c.infos))
	got := 0
	for {
		if c.eof {
			if got > 0 {
				return round, nil
			}
			return nil, io.EOF
		}
		p, r, err := c.Next()
		if err == io.EOF {
			c.eof = true
			continue
		}
		if err != nil {
			return nil, err
		}
		if got == 0 {
			c.round = r
		} else if r != c.round {
			// Start of the next round: stash and return the current one.
			c.pending, c.pendingRound, c.havePending = p, r, true
			return round, nil
		}
		if round[p.StreamID] != nil {
			return nil, fmt.Errorf("stream: duplicate packet for stream %d in round %d", p.StreamID, r)
		}
		round[p.StreamID] = p
		got++
	}
}
