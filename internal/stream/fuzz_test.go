package stream

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzPGSPFrame throws arbitrary bytes at the v2 frame reader. Invariants:
// never panic, never allocate a body from a hostile length field, and after
// ErrFrameCRC the reader stays frame-aligned (the next read starts at the
// next header, so a valid trailing frame is still recovered).
func FuzzPGSPFrame(f *testing.F) {
	valid := appendFrame(nil, 3, 1, []byte("packet body"))
	f.Add(valid)
	f.Add(appendGoodbye(nil, 9))
	f.Add(appendFrame(nil, 0, 0, nil))
	// Body corruption: CRC mismatch, framing intact.
	crcBad := append([]byte(nil), valid...)
	crcBad[len(crcBad)-1] ^= 0x01
	f.Add(crcBad)
	// Header corruption scrambles round/stream/length/crc fields.
	hdrBad := append([]byte(nil), valid...)
	hdrBad[5] ^= 0xFF
	f.Add(hdrBad)
	// Truncations: mid-header and mid-body.
	f.Add(valid[:frameHeaderLen-3])
	f.Add(valid[:frameHeaderLen+4])
	// A length field promising far more than maxFrameBody.
	huge := appendFrame(nil, 1, 2, []byte("x"))
	huge[12], huge[13], huge[14], huge[15] = 0xFF, 0xFF, 0xFF, 0xFF
	f.Add(huge)
	// A corrupt frame followed by a valid one: alignment must survive.
	f.Add(append(append([]byte(nil), crcBad...), valid...))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		for i := 0; i < 1000; i++ {
			_, _, body, err := readFrame(br)
			switch {
			case err == nil, errors.Is(err, errGoodbye):
				// keep reading
			case errors.Is(err, ErrFrameCRC):
				// Framing is intact by contract: the next readFrame must
				// start exactly one frame later, so keep reading.
				if body != nil {
					t.Fatal("CRC-failed frame must not surface a body")
				}
			default:
				return // desync or EOF: reader is done
			}
		}
	})
}

// TestFrameAlignmentAfterCRCError pins the skip-and-continue contract with a
// deterministic case: corrupt frame, then a valid one the reader must reach.
func TestFrameAlignmentAfterCRCError(t *testing.T) {
	bad := appendFrame(nil, 0, 0, []byte("first"))
	bad[len(bad)-2] ^= 0x40
	buf := append(bad, appendFrame(nil, 1, 2, []byte("second"))...)
	br := bufio.NewReader(bytes.NewReader(buf))
	if _, _, _, err := readFrame(br); !errors.Is(err, ErrFrameCRC) {
		t.Fatalf("want ErrFrameCRC, got %v", err)
	}
	round, stream, body, err := readFrame(br)
	if err != nil {
		t.Fatalf("reader lost alignment after CRC error: %v", err)
	}
	if round != 1 || stream != 2 || string(body) != "second" {
		t.Fatalf("recovered frame = (%d, %d, %q)", round, stream, body)
	}
	if _, _, _, err := readFrame(br); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

// TestFrameRejectsHostileLength ensures a corrupt length field fails fast
// instead of allocating gigabytes.
func TestFrameRejectsHostileLength(t *testing.T) {
	frame := appendFrame(nil, 0, 0, []byte("tiny"))
	frame[12], frame[13] = 0xFF, 0xFF // length ≈ 4 GiB
	_, _, _, err := readFrame(bufio.NewReader(bytes.NewReader(frame)))
	if err == nil || errors.Is(err, ErrFrameCRC) {
		t.Fatalf("hostile length must be a hard framing error, got %v", err)
	}
}
