package stream

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"packetgame/internal/codec"
)

func mkFactory(m int, seed int64) func() []*codec.Stream {
	return func() []*codec.Stream {
		streams := make([]*codec.Stream, m)
		for i := range streams {
			streams[i] = codec.NewStream(
				codec.SceneConfig{BaseActivity: 0.5},
				codec.EncoderConfig{StreamID: i, Codec: codec.H265, GOPSize: 10},
				seed+int64(i))
		}
		return streams
	}
}

func startServer(t *testing.T, cfg ServerConfig) *Server {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func TestServeValidation(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Serve(ln, ServerConfig{}); err == nil {
		t.Error("missing NewStreams must error")
	}
}

func TestHandshakeMetadata(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(3, 1), Rounds: 1})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	infos := c.Streams()
	if len(infos) != 3 {
		t.Fatalf("streams = %d", len(infos))
	}
	for i, info := range infos {
		if info.Codec != codec.H265 || info.FPS != 25 || info.GOPSize != 10 {
			t.Errorf("stream %d info = %+v", i, info)
		}
	}
}

func TestPacketsArriveInRoundOrder(t *testing.T) {
	const m, rounds = 4, 20
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(m, 2), Rounds: rounds})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	count := 0
	lastRound := int64(-1)
	for {
		p, r, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if r < lastRound {
			t.Fatalf("round went backwards: %d after %d", r, lastRound)
		}
		lastRound = r
		if p.StreamID < 0 || p.StreamID >= m {
			t.Fatalf("bad stream id %d", p.StreamID)
		}
		if p.Size <= 0 {
			t.Fatalf("packet size %d", p.Size)
		}
		count++
	}
	if count != m*rounds {
		t.Errorf("received %d packets, want %d", count, m*rounds)
	}
}

func TestNextRoundGroups(t *testing.T) {
	const m, rounds = 5, 12
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(m, 3), Rounds: rounds})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	seen := 0
	for {
		round, err := c.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(round) != m {
			t.Fatalf("round slice length %d", len(round))
		}
		for i, p := range round {
			if p == nil {
				t.Fatalf("round %d missing stream %d", seen, i)
			}
			if p.StreamID != i {
				t.Fatalf("slot %d holds stream %d", i, p.StreamID)
			}
			if p.Seq != int64(seen) {
				t.Fatalf("round %d stream %d has seq %d", seen, i, p.Seq)
			}
		}
		seen++
	}
	if seen != rounds {
		t.Errorf("rounds = %d, want %d", seen, rounds)
	}
}

func TestPayloadsDecodeAfterTransport(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 4), Rounds: 5})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for {
		p, _, err := c.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := codec.DecodePayload(p.Payload); err != nil {
			t.Fatalf("payload corrupted in transit: %v", err)
		}
	}
}

func TestMultipleClientsGetIndependentFleets(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 5), Rounds: 3})
	read := func() []int {
		c, err := Dial(srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		var sizes []int
		for {
			p, _, err := c.Next()
			if err == io.EOF {
				return sizes
			}
			if err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, p.Size)
		}
	}
	a, b := read(), read()
	if len(a) != len(b) || len(a) != 6 {
		t.Fatalf("lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("clients saw different fleets at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRealtimePacing(t *testing.T) {
	srv := startServer(t, ServerConfig{
		NewStreams: mkFactory(1, 6), Rounds: 5, Realtime: true, FPS: 100,
	})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	n := 0
	for {
		if _, _, err := c.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	elapsed := time.Since(start)
	// 5 rounds at 100 FPS ≈ 40ms minimum (first round is unpaced).
	if n != 5 {
		t.Fatalf("packets = %d", n)
	}
	if elapsed < 25*time.Millisecond {
		t.Errorf("realtime pacing too fast: %v", elapsed)
	}
}

func TestDialRejectsNonPGSP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("HTTP/1.1 200 OK\r\n\r\n"))
		conn.Close()
	}()
	if _, err := Dial(ln.Addr().String()); err == nil {
		t.Error("bad handshake must error")
	}
}

// TestRecordHookFirstSessionOnly checks the server-side capture tap: the
// Record callback sees every packet of the first accepted session, in
// (round, stream) order, and later sessions are not recorded.
func TestRecordHookFirstSessionOnly(t *testing.T) {
	type rec struct {
		round  int64
		stream int
		seq    int64
	}
	var mu sync.Mutex
	var got []rec
	srv := startServer(t, ServerConfig{
		Rounds:     3,
		NewStreams: mkFactory(2, 7),
		Record: func(round int64, streamID int, p *codec.Packet) {
			mu.Lock()
			got = append(got, rec{round, streamID, p.Seq})
			mu.Unlock()
		},
	})
	drain := func() int {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		c, err := NewClient(conn)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			pkts, err := c.NextRound()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range pkts {
				if p != nil {
					n++
				}
			}
		}
		return n
	}
	first := drain()
	second := drain()
	if first != 6 || second != 6 {
		t.Fatalf("sessions delivered %d/%d packets, want 6/6", first, second)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 6 {
		t.Fatalf("record hook saw %d packets, want 6 (first session only)", len(got))
	}
	for i, r := range got {
		if want := int64(i / 2); r.round != want {
			t.Fatalf("record %d: round %d, want %d", i, r.round, want)
		}
		if want := i % 2; r.stream != want {
			t.Fatalf("record %d: stream %d, want %d", i, r.stream, want)
		}
	}
}
