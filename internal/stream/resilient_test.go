package stream

import (
	"bufio"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"packetgame/internal/container"
)

func TestGoodbyeMarksCleanEOF(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 7), Rounds: 3})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rounds := 0
	for {
		if _, err := c.NextRound(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
	if !c.SawGoodbye() {
		t.Fatal("clean session end must carry the goodbye marker")
	}
}

// rawSession accepts one connection and hands the test full control of the
// byte stream after the handshake.
func rawSession(t *testing.T, streams int, fn func(*bufio.Writer)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		if err := writeHandshake(bw, mkFactory(streams, 1)()); err != nil {
			return
		}
		fn(bw)
		bw.Flush()
	}()
	return ln.Addr().String()
}

func TestClientSkipsCorruptFrames(t *testing.T) {
	fleet := mkFactory(2, 9)()
	mkBody := func(i int) []byte {
		return container.MarshalPacket(nil, fleet[i].Next())
	}
	addr := rawSession(t, 2, func(bw *bufio.Writer) {
		// Round 0: stream 0 intact, stream 1's body corrupted on the wire.
		bw.Write(appendFrame(nil, 0, 0, mkBody(0)))
		bad := appendFrame(nil, 0, 1, mkBody(1))
		bad[len(bad)-1] ^= 0xFF
		bw.Write(bad)
		// Round 1: both intact. Then a clean goodbye.
		bw.Write(appendFrame(nil, 1, 0, mkBody(0)))
		bw.Write(appendFrame(nil, 1, 1, mkBody(1)))
		bw.Write(appendGoodbye(nil, 2))
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r0, err := c.NextRound()
	if err != nil {
		t.Fatal(err)
	}
	if r0[0] == nil || r0[1] != nil {
		t.Fatalf("round 0 = [%v %v], want stream 1's corrupt frame dropped", r0[0], r0[1])
	}
	r1, err := c.NextRound()
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] == nil || r1[1] == nil {
		t.Fatal("round 1 must be complete")
	}
	if _, err := c.NextRound(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if !c.SawGoodbye() || c.CorruptDropped() != 1 {
		t.Fatalf("goodbye=%v dropped=%d", c.SawGoodbye(), c.CorruptDropped())
	}
}

func TestResetWithoutGoodbyeIsUnclean(t *testing.T) {
	fleet := mkFactory(1, 13)()
	addr := rawSession(t, 1, func(bw *bufio.Writer) {
		body := container.MarshalPacket(nil, fleet[0].Next())
		bw.Write(appendFrame(nil, 0, 0, body))
		// Cut mid-frame: a header promising more bytes than ever arrive.
		frame := appendFrame(nil, 1, 0, body)
		bw.Write(frame[:len(frame)-3])
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NextRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextRound(); err != io.EOF {
		t.Fatalf("want EOF after cut, got %v", err)
	}
	if c.SawGoodbye() {
		t.Fatal("a mid-frame cut must not read as a clean end")
	}
}

// cutConn closes the session after a byte budget, simulating a reset.
type cutConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

func (c *cutConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	rem := c.remaining
	c.mu.Unlock()
	if rem <= 0 {
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	if len(b) > rem {
		b = b[:rem]
	}
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

func TestResilientSurvivesReset(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 17), Rounds: 4})
	dials := 0
	r, err := NewResilient(ResilientConfig{
		Addr:        srv.Addr().String(),
		BaseBackoff: time.Millisecond,
		Seed:        42,
		WrapConn: func(conn net.Conn) net.Conn {
			dials++
			if dials == 1 {
				// First session dies partway through: enough for the
				// 19-byte handshake and round 0 (two 49-byte frames),
				// then a reset mid-round-1.
				return &cutConn{Conn: conn, remaining: 150}
			}
			return conn
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rounds := 0
	for {
		pkts, err := r.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != 2 {
			t.Fatalf("round width %d", len(pkts))
		}
		rounds++
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2 (initial + one reconnect)", dials)
	}
	if r.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", r.Reconnects())
	}
	// The healed session replays a fresh fleet from its own round 0, so the
	// client sees at least the second session's full run.
	if rounds < 4 {
		t.Fatalf("rounds = %d, want ≥ 4", rounds)
	}
}

func TestResilientGivesUpEventually(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	_, err = NewResilient(ResilientConfig{Addr: addr, MaxAttempts: 2, BaseBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("connecting to a dead address must eventually fail")
	}
}

func TestServerShutdownGraceful(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, ServerConfig{NewStreams: mkFactory(2, 21)}) // unlimited rounds
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NextRound(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	// The client must observe a clean goodbye-terminated end, never a
	// mid-frame cut.
	for {
		if _, err := c.NextRound(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("shutdown cut the session uncleanly: %v", err)
		}
	}
	if !c.SawGoodbye() {
		t.Fatal("shutdown must send the goodbye marker")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	// New connections are refused after shutdown.
	if _, err := Dial(srv.Addr().String()); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
}
