package stream

import (
	"bufio"
	"io"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"packetgame/internal/container"
)

func TestGoodbyeMarksCleanEOF(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 7), Rounds: 3})
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rounds := 0
	for {
		if _, err := c.NextRound(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		rounds++
	}
	if rounds != 3 {
		t.Fatalf("rounds = %d", rounds)
	}
	if !c.SawGoodbye() {
		t.Fatal("clean session end must carry the goodbye marker")
	}
}

// rawSession accepts one connection and hands the test full control of the
// byte stream after the handshake.
func rawSession(t *testing.T, streams int, fn func(*bufio.Writer)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		bw := bufio.NewWriter(conn)
		if err := writeHandshake(bw, mkFactory(streams, 1)()); err != nil {
			return
		}
		fn(bw)
		bw.Flush()
	}()
	return ln.Addr().String()
}

func TestClientSkipsCorruptFrames(t *testing.T) {
	fleet := mkFactory(2, 9)()
	mkBody := func(i int) []byte {
		return container.MarshalPacket(nil, fleet[i].Next())
	}
	addr := rawSession(t, 2, func(bw *bufio.Writer) {
		// Round 0: stream 0 intact, stream 1's body corrupted on the wire.
		bw.Write(appendFrame(nil, 0, 0, mkBody(0)))
		bad := appendFrame(nil, 0, 1, mkBody(1))
		bad[len(bad)-1] ^= 0xFF
		bw.Write(bad)
		// Round 1: both intact. Then a clean goodbye.
		bw.Write(appendFrame(nil, 1, 0, mkBody(0)))
		bw.Write(appendFrame(nil, 1, 1, mkBody(1)))
		bw.Write(appendGoodbye(nil, 2))
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r0, err := c.NextRound()
	if err != nil {
		t.Fatal(err)
	}
	if r0[0] == nil || r0[1] != nil {
		t.Fatalf("round 0 = [%v %v], want stream 1's corrupt frame dropped", r0[0], r0[1])
	}
	r1, err := c.NextRound()
	if err != nil {
		t.Fatal(err)
	}
	if r1[0] == nil || r1[1] == nil {
		t.Fatal("round 1 must be complete")
	}
	if _, err := c.NextRound(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if !c.SawGoodbye() || c.CorruptDropped() != 1 {
		t.Fatalf("goodbye=%v dropped=%d", c.SawGoodbye(), c.CorruptDropped())
	}
}

func TestResetWithoutGoodbyeIsUnclean(t *testing.T) {
	fleet := mkFactory(1, 13)()
	addr := rawSession(t, 1, func(bw *bufio.Writer) {
		body := container.MarshalPacket(nil, fleet[0].Next())
		bw.Write(appendFrame(nil, 0, 0, body))
		// Cut mid-frame: a header promising more bytes than ever arrive.
		frame := appendFrame(nil, 1, 0, body)
		bw.Write(frame[:len(frame)-3])
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NextRound(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NextRound(); err != io.EOF {
		t.Fatalf("want EOF after cut, got %v", err)
	}
	if c.SawGoodbye() {
		t.Fatal("a mid-frame cut must not read as a clean end")
	}
}

// cutConn closes the session after a byte budget, simulating a reset.
type cutConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int
}

func (c *cutConn) Read(b []byte) (int, error) {
	c.mu.Lock()
	rem := c.remaining
	c.mu.Unlock()
	if rem <= 0 {
		c.Conn.Close()
		return 0, io.ErrUnexpectedEOF
	}
	if len(b) > rem {
		b = b[:rem]
	}
	n, err := c.Conn.Read(b)
	c.mu.Lock()
	c.remaining -= n
	c.mu.Unlock()
	return n, err
}

func TestResilientSurvivesReset(t *testing.T) {
	srv := startServer(t, ServerConfig{NewStreams: mkFactory(2, 17), Rounds: 4})
	dials := 0
	r, err := NewResilient(ResilientConfig{
		Addr:        srv.Addr().String(),
		BaseBackoff: time.Millisecond,
		Seed:        42,
		WrapConn: func(conn net.Conn) net.Conn {
			dials++
			if dials == 1 {
				// First session dies partway through: enough for the
				// 19-byte handshake and round 0 (two 49-byte frames),
				// then a reset mid-round-1.
				return &cutConn{Conn: conn, remaining: 150}
			}
			return conn
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rounds := 0
	for {
		pkts, err := r.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(pkts) != 2 {
			t.Fatalf("round width %d", len(pkts))
		}
		rounds++
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2 (initial + one reconnect)", dials)
	}
	if r.Reconnects() != 1 {
		t.Fatalf("reconnects = %d, want 1", r.Reconnects())
	}
	// The healed session replays a fresh fleet from its own round 0, so the
	// client sees at least the second session's full run.
	if rounds < 4 {
		t.Fatalf("rounds = %d, want ≥ 4", rounds)
	}
}

// scriptedServer serves one scripted behavior per accepted connection, in
// order, then stops accepting.
func scriptedServer(t *testing.T, sessions ...func(net.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for _, fn := range sessions {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			fn(conn)
		}
	}()
	return ln.Addr().String()
}

// refuseSession drops the connection before the handshake.
func refuseSession(conn net.Conn) { conn.Close() }

// flapSession handshakes and then dies before delivering any round.
func flapSession(conn net.Conn) {
	defer conn.Close()
	bw := bufio.NewWriter(conn)
	if writeHandshake(bw, mkFactory(1, 9)()) != nil {
		return
	}
	bw.Flush()
}

// servedSession handshakes and serves n full rounds; cleanly with a goodbye,
// or cut after an extra round-boundary frame so the last round still flushes.
func servedSession(n int, goodbye bool) func(net.Conn) {
	return func(conn net.Conn) {
		defer conn.Close()
		fleet := mkFactory(1, 9)()
		bw := bufio.NewWriter(conn)
		if writeHandshake(bw, fleet) != nil {
			return
		}
		for r := 0; r < n; r++ {
			bw.Write(appendFrame(nil, uint64(r), 0, container.MarshalPacket(nil, fleet[0].Next())))
		}
		if goodbye {
			bw.Write(appendGoodbye(nil, uint64(n)))
		} else {
			// A cut mid-frame: the boundary header flushes round n−1, the
			// truncated body means round n never completes.
			frame := appendFrame(nil, uint64(n), 0, container.MarshalPacket(nil, fleet[0].Next()))
			bw.Write(frame[:len(frame)-3])
		}
		bw.Flush()
	}
}

// TestReconnectBackoffEscalatesAcrossFlaps is the flapping-server
// regression: sessions that die before delivering a round must not be
// re-dialed at base rate forever — the persistent backoff escalates across
// them even though each individual dial succeeds instantly — and the first
// delivered round resets it to base.
func TestReconnectBackoffEscalatesAcrossFlaps(t *testing.T) {
	const base = 20 * time.Millisecond
	addr := scriptedServer(t,
		servedSession(1, false), // healthy, then cut
		flapSession, flapSession,
		servedSession(1, true),
	)
	r, err := NewResilient(ResilientConfig{Addr: addr, BaseBackoff: base, MaxBackoff: time.Second, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.NextRound(); err != nil {
		t.Fatal(err)
	}
	if r.backoff != base {
		t.Fatalf("backoff after a healthy round = %v, want base %v", r.backoff, base)
	}
	// Healing crosses two flaps: the dials succeed instantly, so only the
	// escalating pre-dial delays (≥ base, then ≥ 2·base, minus 25% jitter)
	// separate them. The pre-fix behavior slept 0.
	t0 := time.Now()
	if _, err := r.NextRound(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed < 40*time.Millisecond {
		t.Fatalf("healed through two flaps in %v: the backoff never escalated", elapsed)
	}
	if r.backoff != base {
		t.Fatalf("backoff after the healing round = %v, want base %v", r.backoff, base)
	}
	if r.Reconnects() != 3 {
		t.Fatalf("reconnects = %d, want 3", r.Reconnects())
	}
}

// TestReconnectBackoffResetsAfterSession is the carried-delay regression:
// an outage that inflates the backoff across failed dials must not bleed
// that delay into the next outage once a session has delivered rounds —
// the reconnect after a healthy session dials immediately again.
func TestReconnectBackoffResetsAfterSession(t *testing.T) {
	const base = 200 * time.Millisecond
	addr := scriptedServer(t,
		servedSession(1, false), // healthy, then cut
		refuseSession, refuseSession, // inflate the backoff mid-outage
		servedSession(1, false), // healthy again, then cut
		servedSession(1, true),  // final clean session
	)
	r, err := NewResilient(ResilientConfig{Addr: addr, BaseBackoff: base, MaxBackoff: time.Minute, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.NextRound(); err != nil { // session 1
		t.Fatal(err)
	}
	if _, err := r.NextRound(); err != nil { // heals through the refusals
		t.Fatal(err)
	}
	if r.backoff != base {
		t.Fatalf("backoff after the healed session's round = %v, want base %v", r.backoff, base)
	}
	// Session 4 cuts after its round; the next outage is a fresh incident
	// after a healthy session, so the re-dial happens without any carried
	// delay (the pre-fix bug slept the inflated value here).
	t0 := time.Now()
	if _, err := r.NextRound(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(t0); elapsed > 150*time.Millisecond {
		t.Fatalf("reconnect after a healthy session took %v: inflated backoff carried into the next outage", elapsed)
	}
}

func TestResilientGivesUpEventually(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // nothing listens here anymore
	_, err = NewResilient(ResilientConfig{Addr: addr, MaxAttempts: 2, BaseBackoff: time.Millisecond})
	if err == nil {
		t.Fatal("connecting to a dead address must eventually fail")
	}
}

// TestShutdownNoLeakOnMidFrameDisconnect races Server.Shutdown against
// clients that vanish mid-frame: each client consumes the handshake plus a
// few bytes of a frame header and then drops the connection with an RST
// while the server is still streaming. Shutdown must reap every serving
// goroutine — none may stay blocked writing into a dead peer.
func TestShutdownNoLeakOnMidFrameDisconnect(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, ServerConfig{
		NewStreams: mkFactory(4, 33), // unlimited rounds
		Realtime:   true, FPS: 200, // paced, so disconnects land mid-session
	})
	if err != nil {
		t.Fatal(err)
	}
	var clients sync.WaitGroup
	for i := 0; i < 4; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		clients.Add(1)
		go func(conn net.Conn, n int) {
			defer clients.Done()
			// Read up to mid-header: the 4-byte magic, version, stream
			// table, and a ragged few bytes of the first frame.
			buf := make([]byte, 40+n)
			io.ReadFull(conn, buf)
			if tc, ok := conn.(*net.TCPConn); ok {
				tc.SetLinger(0) // RST, not FIN: the hard-vanish case
			}
			conn.Close()
		}(conn, i)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Shutdown never returned with mid-frame disconnected clients")
	}
	clients.Wait()
	// Every serving goroutine must be gone; poll briefly since goroutine
	// exits trail the WaitGroup release.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked after Shutdown: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestServerShutdownGraceful(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := Serve(ln, ServerConfig{NewStreams: mkFactory(2, 21)}) // unlimited rounds
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NextRound(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	// The client must observe a clean goodbye-terminated end, never a
	// mid-frame cut.
	for {
		if _, err := c.NextRound(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("shutdown cut the session uncleanly: %v", err)
		}
	}
	if !c.SawGoodbye() {
		t.Fatal("shutdown must send the goodbye marker")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	// New connections are refused after shutdown.
	if _, err := Dial(srv.Addr().String()); err == nil {
		t.Fatal("dial after shutdown must fail")
	}
}
