package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"packetgame/internal/codec"
	"packetgame/internal/container"
)

// PGSP v2 frame layout (all big-endian):
//
//	round   uint64   // round index the packet belongs to
//	stream  uint32   // stream slot, or goodbyeStream for the end marker
//	length  uint32   // body length in bytes
//	crc     uint32   // CRC32 (IEEE) of the body
//	body    [length]byte
//
// The CRC lets the demuxer detect payload corruption on the wire and drop
// the frame instead of handing garbage to the parser. The goodbye frame
// (stream = goodbyeStream, empty body) marks a clean end of session, so a
// client can distinguish "server finished" from "connection reset mid-run"
// — the signal the reconnecting client keys on.

const frameHeaderLen = 20

// goodbyeStream is the reserved stream slot of the end-of-session marker.
const goodbyeStream = ^uint32(0)

// sparseRoundStream is the reserved stream slot carrying a whole sparse
// round in one frame (ServerConfig.SparseRounds). The body packs only the
// active streams:
//
//	count  uvarint   // number of active streams this round
//	repeat count times, in ascending stream order:
//	  gap    uvarint // stream id minus previous id minus 1 (first: the id)
//	  plen   uvarint // marshaled packet length
//	  packet [plen]byte // container.MarshalPacket encoding
//
// Gap coding makes ascending order and uniqueness structural: a decoder can
// reconstruct ids without sorting and duplicates cannot be expressed. An
// idle fleet costs one ~1-byte body per round instead of m frame headers.
const sparseRoundStream = ^uint32(0) - 1

// maxFrameBody bounds a frame body; larger lengths mean a corrupt or hostile
// header (framing is unrecoverable at that point, so it is an error, not a
// skip).
const maxFrameBody = 64 << 20

// ErrFrameCRC marks a frame whose body failed its checksum. The reader's
// framing is intact (the length field was consistent), so the caller may
// skip the frame and keep reading.
var ErrFrameCRC = errors.New("stream: frame CRC mismatch")

// errGoodbye is returned by readFrame for the end-of-session marker.
var errGoodbye = errors.New("stream: goodbye")

// AppendFrame appends one v2 frame to dst. It is exported for replay tools
// (internal/capture) that speak PGSP from recorded packets rather than a
// live fleet.
func AppendFrame(dst []byte, round uint64, stream uint32, body []byte) []byte {
	return appendFrame(dst, round, stream, body)
}

// AppendGoodbye appends the end-of-session marker to dst.
func AppendGoodbye(dst []byte, round uint64) []byte {
	return appendGoodbye(dst, round)
}

// appendFrame appends one v2 frame to dst.
func appendFrame(dst []byte, round uint64, stream uint32, body []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:], round)
	binary.BigEndian.PutUint32(hdr[8:], stream)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// appendGoodbye appends the end-of-session marker.
func appendGoodbye(dst []byte, round uint64) []byte {
	return appendFrame(dst, round, goodbyeStream, nil)
}

// appendSparseRoundBody appends the sparse round body for the given active
// packets (ids ascending, pkts parallel). scratch recycles the per-packet
// marshal buffer across calls.
func appendSparseRoundBody(dst []byte, ids []int32, pkts []*codec.Packet, scratch *[]byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	prev := int32(-1)
	for k, id := range ids {
		dst = binary.AppendUvarint(dst, uint64(id-prev-1))
		prev = id
		*scratch = container.MarshalPacket((*scratch)[:0], pkts[k])
		dst = binary.AppendUvarint(dst, uint64(len(*scratch)))
		dst = append(dst, *scratch...)
	}
	return dst
}

// decodeSparseRoundBody decodes a sparse round body into r, which is Reset
// to width m. Stream ids beyond m, truncated bodies, or trailing bytes are
// errors — the frame CRC already passed, so any of these means a peer bug,
// not wire noise.
func decodeSparseRoundBody(body []byte, m int, r *codec.Round) error {
	r.Reset(m)
	count, n := binary.Uvarint(body)
	if n <= 0 {
		return errors.New("stream: sparse round: bad count")
	}
	body = body[n:]
	if count > uint64(m) {
		return fmt.Errorf("stream: sparse round: %d entries for %d streams", count, m)
	}
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		gap, n := binary.Uvarint(body)
		if n <= 0 {
			return errors.New("stream: sparse round: bad id gap")
		}
		body = body[n:]
		id := prev + 1 + int64(gap)
		if id >= int64(m) {
			return fmt.Errorf("stream: sparse round: stream %d out of range", id)
		}
		prev = id
		plen, n := binary.Uvarint(body)
		if n <= 0 {
			return errors.New("stream: sparse round: bad packet length")
		}
		body = body[n:]
		if plen > uint64(len(body)) {
			return errors.New("stream: sparse round: truncated packet")
		}
		p, used, err := container.UnmarshalPacket(body[:plen])
		if err != nil {
			return fmt.Errorf("stream: sparse round: %w", err)
		}
		if used != int(plen) {
			return errors.New("stream: sparse round: packet has trailing bytes")
		}
		body = body[plen:]
		p.StreamID = int(id)
		r.Append(int32(id), p)
	}
	if len(body) != 0 {
		return errors.New("stream: sparse round: trailing bytes")
	}
	return nil
}

// readFrame reads one v2 frame. On ErrFrameCRC the body was consumed and the
// reader remains frame-aligned; on errGoodbye the session ended cleanly; any
// other error leaves the reader unusable.
func readFrame(br *bufio.Reader) (round uint64, stream uint32, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	round = binary.BigEndian.Uint64(hdr[0:])
	stream = binary.BigEndian.Uint32(hdr[8:])
	n := binary.BigEndian.Uint32(hdr[12:])
	crc := binary.BigEndian.Uint32(hdr[16:])
	if n > maxFrameBody {
		return 0, 0, nil, fmt.Errorf("stream: frame of %d bytes exceeds limit", n)
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a header promised a body: truncated frame
		}
		return 0, 0, nil, err
	}
	if crc32.ChecksumIEEE(body) != crc {
		return round, stream, nil, ErrFrameCRC
	}
	if stream == goodbyeStream {
		return round, stream, nil, errGoodbye
	}
	return round, stream, body, nil
}
