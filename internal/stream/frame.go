package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// PGSP v2 frame layout (all big-endian):
//
//	round   uint64   // round index the packet belongs to
//	stream  uint32   // stream slot, or goodbyeStream for the end marker
//	length  uint32   // body length in bytes
//	crc     uint32   // CRC32 (IEEE) of the body
//	body    [length]byte
//
// The CRC lets the demuxer detect payload corruption on the wire and drop
// the frame instead of handing garbage to the parser. The goodbye frame
// (stream = goodbyeStream, empty body) marks a clean end of session, so a
// client can distinguish "server finished" from "connection reset mid-run"
// — the signal the reconnecting client keys on.

const frameHeaderLen = 20

// goodbyeStream is the reserved stream slot of the end-of-session marker.
const goodbyeStream = ^uint32(0)

// maxFrameBody bounds a frame body; larger lengths mean a corrupt or hostile
// header (framing is unrecoverable at that point, so it is an error, not a
// skip).
const maxFrameBody = 64 << 20

// ErrFrameCRC marks a frame whose body failed its checksum. The reader's
// framing is intact (the length field was consistent), so the caller may
// skip the frame and keep reading.
var ErrFrameCRC = errors.New("stream: frame CRC mismatch")

// errGoodbye is returned by readFrame for the end-of-session marker.
var errGoodbye = errors.New("stream: goodbye")

// AppendFrame appends one v2 frame to dst. It is exported for replay tools
// (internal/capture) that speak PGSP from recorded packets rather than a
// live fleet.
func AppendFrame(dst []byte, round uint64, stream uint32, body []byte) []byte {
	return appendFrame(dst, round, stream, body)
}

// AppendGoodbye appends the end-of-session marker to dst.
func AppendGoodbye(dst []byte, round uint64) []byte {
	return appendGoodbye(dst, round)
}

// appendFrame appends one v2 frame to dst.
func appendFrame(dst []byte, round uint64, stream uint32, body []byte) []byte {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:], round)
	binary.BigEndian.PutUint32(hdr[8:], stream)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// appendGoodbye appends the end-of-session marker.
func appendGoodbye(dst []byte, round uint64) []byte {
	return appendFrame(dst, round, goodbyeStream, nil)
}

// readFrame reads one v2 frame. On ErrFrameCRC the body was consumed and the
// reader remains frame-aligned; on errGoodbye the session ended cleanly; any
// other error leaves the reader unusable.
func readFrame(br *bufio.Reader) (round uint64, stream uint32, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	round = binary.BigEndian.Uint64(hdr[0:])
	stream = binary.BigEndian.Uint32(hdr[8:])
	n := binary.BigEndian.Uint32(hdr[12:])
	crc := binary.BigEndian.Uint32(hdr[16:])
	if n > maxFrameBody {
		return 0, 0, nil, fmt.Errorf("stream: frame of %d bytes exceeds limit", n)
	}
	body = make([]byte, n)
	if _, err = io.ReadFull(br, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF // a header promised a body: truncated frame
		}
		return 0, 0, nil, err
	}
	if crc32.ChecksumIEEE(body) != crc {
		return round, stream, nil, ErrFrameCRC
	}
	if stream == goodbyeStream {
		return round, stream, nil, errGoodbye
	}
	return round, stream, body, nil
}
