package stream

import (
	"fmt"
	"io"
	"net"
	"time"

	"packetgame/internal/codec"
)

// ResilientConfig parameterizes the self-healing PGSP client.
type ResilientConfig struct {
	// Addr is the PGSP server address.
	Addr string
	// MaxAttempts bounds the dials per outage (default 8). Exhausting them
	// surfaces the last dial error to the caller.
	MaxAttempts int
	// BaseBackoff is the delay before the second dial of an outage; it
	// doubles per attempt (default 50ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff (default 2s).
	MaxBackoff time.Duration
	// Seed drives the deterministic backoff jitter (±25%), decorrelating
	// reconnect storms across clients without nondeterministic sleeps.
	Seed int64
	// WrapConn, when non-nil, wraps every dialed connection — the fault
	// injection hook.
	WrapConn func(net.Conn) net.Conn
}

func (c ResilientConfig) withDefaults() ResilientConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 8
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 50 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	return c
}

// Resilient is a PGSP client that survives connection outages: an io.EOF
// without the server's goodbye marker (reset, mid-frame cut) or a framing
// error triggers an automatic reconnect with jittered exponential backoff.
// Reconnection resyncs at a round boundary — the partial round in flight
// when the connection died is discarded, and consumption resumes with the
// first complete round of the new session. Only a goodbye-terminated
// session ends the stream with io.EOF.
//
// The server builds a fresh camera fleet per connection, so a reconnected
// session restarts its round numbering; NextRound's consumers (the pipeline
// engine) never observe round indices, only round boundaries.
type Resilient struct {
	cfg ResilientConfig
	cur *Client

	streams    int
	outages    uint64
	reconnects int64
	crcDropped int64

	// backoff is the starting delay of the NEXT outage's dial loop. It
	// escalates across sessions that die before delivering a single round
	// (a flapping server must not be re-dialed at base rate forever) and
	// resets to BaseBackoff only once a session proves healthy by
	// delivering a round.
	backoff   time.Duration
	gotRound  bool
	needDelay bool
}

// NewResilient connects to the server (with the same retry policy used for
// reconnects) and performs the handshake.
func NewResilient(cfg ResilientConfig) (*Resilient, error) {
	r := &Resilient{cfg: cfg.withDefaults()}
	r.backoff = r.cfg.BaseBackoff
	if err := r.connect(); err != nil {
		return nil, err
	}
	return r, nil
}

// Streams returns the per-stream metadata from the current session's
// handshake.
func (r *Resilient) Streams() []StreamInfo {
	if r.cur == nil {
		return nil
	}
	return r.cur.Streams()
}

// Reconnects returns the number of successful reconnections after outages.
func (r *Resilient) Reconnects() int64 { return r.reconnects }

// CorruptDropped returns the CRC-dropped frame count across all sessions.
func (r *Resilient) CorruptDropped() int64 {
	n := r.crcDropped
	if r.cur != nil {
		n += r.cur.CorruptDropped()
	}
	return n
}

// Close closes the current connection.
func (r *Resilient) Close() error {
	if r.cur == nil {
		return nil
	}
	err := r.cur.Close()
	r.cur = nil
	return err
}

// NextRound yields the next complete round, transparently reconnecting
// across outages. It returns io.EOF only after a clean goodbye-terminated
// session, or a non-nil error once an outage exhausts MaxAttempts dials.
func (r *Resilient) NextRound() ([]*codec.Packet, error) {
	for {
		if r.cur == nil {
			if err := r.connect(); err != nil {
				return nil, err
			}
		}
		pkts, err := r.cur.NextRound()
		if err == nil {
			if !r.gotRound {
				// The session is healthy: the next outage is a new incident
				// and starts its backoff from the base delay again.
				r.gotRound = true
				r.backoff = r.cfg.BaseBackoff
			}
			return pkts, nil
		}
		if err == io.EOF && r.cur.SawGoodbye() {
			r.retire()
			return nil, io.EOF
		}
		// Outage: reset, mid-frame cut, or framing desync. Drop the session
		// and heal. A session that died without delivering a single round
		// is a flap, not a fresh incident: the next dial must wait out the
		// (escalating) backoff even if TCP connects instantly.
		if !r.gotRound {
			r.needDelay = true
		}
		r.retire()
		r.outages++
	}
}

// retire folds the dead session's counters and discards it.
func (r *Resilient) retire() {
	if r.cur == nil {
		return
	}
	r.crcDropped += r.cur.CorruptDropped()
	r.cur.Close()
	r.cur = nil
}

// connect dials with jittered exponential backoff until a session
// handshakes or MaxAttempts is exhausted. The starting delay is r.backoff —
// base after a healthy session, carried forward (inflated) while
// consecutive sessions die without a round — and the escalated value is
// persisted so a flapping server keeps being dialed ever more slowly.
func (r *Resilient) connect() error {
	backoff := r.backoff
	var lastErr error
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		if attempt > 0 || r.needDelay {
			time.Sleep(r.jittered(backoff, attempt))
			backoff *= 2
			if backoff > r.cfg.MaxBackoff {
				backoff = r.cfg.MaxBackoff
			}
		}
		conn, err := net.Dial("tcp", r.cfg.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		if r.cfg.WrapConn != nil {
			conn = r.cfg.WrapConn(conn)
		}
		c, err := NewClient(conn)
		if err != nil {
			lastErr = err
			continue
		}
		if r.streams != 0 && len(c.Streams()) != r.streams {
			c.Close()
			return fmt.Errorf("stream: reconnected session advertises %d streams, previous had %d", len(c.Streams()), r.streams)
		}
		r.streams = len(c.Streams())
		if r.outages > 0 {
			r.reconnects++
		}
		r.cur = c
		// A handshake alone is not health: keep the escalated delay until
		// the session delivers a round.
		r.gotRound = false
		r.needDelay = false
		r.backoff = backoff
		return nil
	}
	return fmt.Errorf("stream: connect to %s failed after %d attempts: %w", r.cfg.Addr, r.cfg.MaxAttempts, lastErr)
}

// jittered perturbs a backoff by ±25%, deterministically from (Seed, outage,
// attempt) so runs at equal seeds sleep identically.
func (r *Resilient) jittered(d time.Duration, attempt int) time.Duration {
	x := uint64(r.cfg.Seed)*0x9E3779B97F4A7C15 ^ r.outages*0xBF58476D1CE4E5B9 ^ uint64(attempt)*0x94D049BB133111EB
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	frac := float64(x>>11) / float64(1<<53) // [0,1)
	return d + time.Duration((frac-0.5)*0.5*float64(d))
}
