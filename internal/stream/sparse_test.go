package stream

import (
	"io"
	"testing"

	"packetgame/internal/codec"
)

// collectRounds drains a client via NextRound into per-round packet copies.
func collectRounds(t *testing.T, c *Client) [][]*codec.Packet {
	t.Helper()
	var all [][]*codec.Packet
	for {
		round, err := c.NextRound()
		if err == io.EOF {
			return all
		}
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, append([]*codec.Packet(nil), round...))
	}
}

func samePacket(a, b *codec.Packet) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.StreamID == b.StreamID && a.Seq == b.Seq && a.PTS == b.PTS &&
		a.Type == b.Type && a.Size == b.Size && a.Codec == b.Codec &&
		string(a.Payload) == string(b.Payload)
}

// TestSparseWireMatchesDenseWire streams the same seeded fleet over both
// wire formats and checks the demuxed rounds are identical — the sparse
// frame is a transport optimization, not a semantic change.
func TestSparseWireMatchesDenseWire(t *testing.T) {
	const m, rounds = 5, 16
	dense := startServer(t, ServerConfig{NewStreams: mkFactory(m, 11), Rounds: rounds})
	sparse := startServer(t, ServerConfig{NewStreams: mkFactory(m, 11), Rounds: rounds, SparseRounds: true})

	cd, err := Dial(dense.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cd.Close()
	cs, err := Dial(sparse.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()

	rd, rs := collectRounds(t, cd), collectRounds(t, cs)
	if len(rd) != rounds || len(rs) != rounds {
		t.Fatalf("rounds: dense %d, sparse %d, want %d", len(rd), len(rs), rounds)
	}
	for r := range rd {
		for i := range rd[r] {
			if !samePacket(rd[r][i], rs[r][i]) {
				t.Fatalf("round %d stream %d: packets differ", r, i)
			}
		}
	}
	if !cd.SawGoodbye() || !cs.SawGoodbye() {
		t.Error("both sessions should end with goodbye")
	}
}

// TestNextRoundSparseBothFormats checks NextRoundSparse against NextRound on
// both wire formats: same membership, same packets, compacted layout.
func TestNextRoundSparseBothFormats(t *testing.T) {
	const m, rounds = 4, 10
	for _, sparseWire := range []bool{false, true} {
		name := "dense-wire"
		if sparseWire {
			name = "sparse-wire"
		}
		t.Run(name, func(t *testing.T) {
			ref := startServer(t, ServerConfig{NewStreams: mkFactory(m, 23), Rounds: rounds, SparseRounds: sparseWire})
			srv := startServer(t, ServerConfig{NewStreams: mkFactory(m, 23), Rounds: rounds, SparseRounds: sparseWire})

			cref, err := Dial(ref.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer cref.Close()
			c, err := Dial(srv.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			want := collectRounds(t, cref)
			for r := 0; ; r++ {
				rnd, err := c.NextRoundSparse()
				if err == io.EOF {
					if r != len(want) {
						t.Fatalf("sparse EOF after %d rounds, want %d", r, len(want))
					}
					return
				}
				if err != nil {
					t.Fatal(err)
				}
				if err := rnd.Validate(); err != nil {
					t.Fatalf("round %d invalid: %v", r, err)
				}
				if rnd.M != m {
					t.Fatalf("round %d width %d, want %d", r, rnd.M, m)
				}
				for i := 0; i < m; i++ {
					if !samePacket(want[r][i], rnd.Get(int32(i))) {
						t.Fatalf("round %d stream %d: packets differ", r, i)
					}
				}
			}
		})
	}
}
