// Package fault is a deterministic, seed-driven fault injector for the
// PacketGame pipeline. It wraps the three surfaces where a live camera farm
// actually fails — the packet source (codec.Stream), the decoder
// (decode.PacketDecoder), and the PGSP transport (net.Conn) — so any
// experiment can run under a named fault profile and reproduce bit-identical
// fault sequences at a fixed seed.
//
// Determinism: every fault decision is a pure function of
// (profile seed, fault kind, stream ID, packet seq, attempt), hashed through
// splitmix64. No goroutine timing, scheduling, or call ordering can change
// which packets are corrupted, which decodes fail, or when a stream stalls;
// two runs of the same profile over the same fleet inject exactly the same
// faults. Only latency spikes and connection-level faults have wall-clock
// effects, and even their trigger points are deterministic.
package fault

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fault kinds, used as hash domains so the per-kind decisions are
// independent draws.
const (
	kindCorrupt uint64 = iota + 1
	kindTruncate
	kindLoss
	kindStall
	kindDecodeFail
	kindDecodeSpike
	kindTarget
	kindWire
)

// Profile describes a reproducible fault mix. Rates are probabilities in
// [0,1]; a zero profile injects nothing.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Seed drives every fault decision. Two injectors with equal profiles
	// (seed included) inject identical fault sequences.
	Seed int64

	// TargetFraction limits stream-level faults (corrupt, truncate, loss,
	// stall, decode faults) to a deterministic subset of streams: stream i
	// is targetable iff hash(seed, i) < TargetFraction. 0 means 1.0 (all
	// streams). Connection faults ignore it.
	TargetFraction float64

	// CorruptRate corrupts a packet's payload (the decoder will fail on it
	// permanently — a poison pill) and is detectable by the PGSP CRC when
	// it happens on the wire instead.
	CorruptRate float64
	// TruncateRate truncates a packet's payload and zeroes its size
	// metadata, poisoning the predictor's feature window.
	TruncateRate float64
	// LossRate drops a packet entirely (the camera produced it; the
	// ingest lost it).
	LossRate float64
	// StallRate is the per-packet probability that the stream enters a
	// stall of StallRounds rounds, during which it emits nothing.
	StallRate float64
	// StallRounds is the stall duration (default 20).
	StallRounds int

	// DecodeFailRate fails one decode attempt with ErrInjectedDecode.
	// Independent per attempt, so bounded retries can succeed.
	DecodeFailRate float64
	// DecodeSpikeRate delays one decode attempt by DecodeSpike before it
	// proceeds, modelling a decoder latency spike (per-attempt, so a
	// deadline+retry can route around it).
	DecodeSpikeRate float64
	// DecodeSpike is the spike duration (default 50ms).
	DecodeSpike time.Duration

	// ResetAfterBytes force-closes the first wrapped connection after it
	// has carried this many bytes (0 = never), simulating an ingest TCP
	// reset. Only the first connection is reset so a reconnecting client
	// observes exactly one outage.
	ResetAfterBytes int64
	// WireCorruptRate flips bytes on the wire at this per-byte rate,
	// exercising the PGSP CRC path (and, when a frame header is hit, the
	// client's reconnect path).
	WireCorruptRate float64
}

func (p Profile) withDefaults() Profile {
	if p.TargetFraction <= 0 || p.TargetFraction > 1 {
		p.TargetFraction = 1
	}
	if p.StallRounds <= 0 {
		p.StallRounds = 20
	}
	if p.DecodeSpike <= 0 {
		p.DecodeSpike = 50 * time.Millisecond
	}
	p.CorruptRate = clamp01(p.CorruptRate)
	p.TruncateRate = clamp01(p.TruncateRate)
	p.LossRate = clamp01(p.LossRate)
	p.StallRate = clamp01(p.StallRate)
	p.DecodeFailRate = clamp01(p.DecodeFailRate)
	p.DecodeSpikeRate = clamp01(p.DecodeSpikeRate)
	p.WireCorruptRate = clamp01(p.WireCorruptRate)
	return p
}

// Zero reports whether the profile injects nothing.
func (p Profile) Zero() bool {
	return p.CorruptRate == 0 && p.TruncateRate == 0 && p.LossRate == 0 &&
		p.StallRate == 0 && p.DecodeFailRate == 0 && p.DecodeSpikeRate == 0 &&
		p.ResetAfterBytes == 0 && p.WireCorruptRate == 0
}

// Profiles returns the named built-in profiles, mildest first.
func Profiles() []Profile {
	return []Profile{
		{Name: "none"},
		{Name: "light", CorruptRate: 0.02, DecodeFailRate: 0.01,
			StallRate: 0.001, TargetFraction: 0.25},
		{Name: "chaos", CorruptRate: 0.10, TruncateRate: 0.02, LossRate: 0.02,
			DecodeFailRate: 0.05, StallRate: 0.002, TargetFraction: 0.25},
		{Name: "heavy", CorruptRate: 0.25, TruncateRate: 0.05, LossRate: 0.05,
			DecodeFailRate: 0.15, StallRate: 0.005, StallRounds: 40,
			TargetFraction: 0.5},
	}
}

// ParseProfile resolves a profile string: a built-in name ("none", "light",
// "chaos", "heavy") or a comma-separated key=value list, e.g.
// "corrupt=0.1,decodefail=0.05,stall=0.002,target=0.25". Keys: corrupt,
// truncate, loss, stall, stallrounds, decodefail, spike, spikems, target,
// resetbytes, wire.
func ParseProfile(s string, seed int64) (Profile, error) {
	s = strings.TrimSpace(s)
	for _, p := range Profiles() {
		if p.Name == s {
			p.Seed = seed
			return p, nil
		}
	}
	p := Profile{Name: "custom", Seed: seed}
	if s == "" {
		return p, nil
	}
	for _, kv := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
		if len(parts) != 2 {
			return p, fmt.Errorf("fault: bad profile term %q (want key=value)", kv)
		}
		key := strings.ToLower(strings.TrimSpace(parts[0]))
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return p, fmt.Errorf("fault: bad value in %q: %v", kv, err)
		}
		switch key {
		case "corrupt":
			p.CorruptRate = v
		case "truncate":
			p.TruncateRate = v
		case "loss":
			p.LossRate = v
		case "stall":
			p.StallRate = v
		case "stallrounds":
			p.StallRounds = int(v)
		case "decodefail":
			p.DecodeFailRate = v
		case "spike":
			p.DecodeSpikeRate = v
		case "spikems":
			p.DecodeSpike = time.Duration(v * float64(time.Millisecond))
		case "target":
			p.TargetFraction = v
		case "resetbytes":
			p.ResetAfterBytes = int64(v)
		case "wire":
			p.WireCorruptRate = v
		default:
			return p, fmt.Errorf("fault: unknown profile key %q", key)
		}
	}
	return p, nil
}

// ProfileNames lists the built-in profile names.
func ProfileNames() []string {
	var names []string
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	sort.Strings(names)
	return names
}

// Injector owns the (small) mutable state shared by a profile's wrappers —
// currently only the "first connection" reset bookkeeping — and hands out
// deterministic per-surface wrappers.
type Injector struct {
	prof Profile

	// connSeq counts wrapped connections so only the first one is reset.
	// Guarded by the atomic-free convention that WrapConn is called from
	// one dialing goroutine at a time; the stream.Resilient client and the
	// test harnesses satisfy it.
	connSeq int
}

// NewInjector builds an injector for the profile (defaults applied).
func NewInjector(p Profile) *Injector {
	return &Injector{prof: p.withDefaults()}
}

// Profile returns the effective profile.
func (in *Injector) Profile() Profile { return in.prof }

// Targeted reports whether stream id is in the fault-target subset.
func (in *Injector) Targeted(id int) bool {
	if in.prof.TargetFraction >= 1 {
		return true
	}
	return in.roll(kindTarget, uint64(id), 0) < in.prof.TargetFraction
}

// splitmix64 is the finalizer of the SplitMix64 generator: a high-quality
// 64-bit mix used here as a keyed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// roll draws a deterministic uniform in [0,1) keyed by (seed, kind, a, b).
func (in *Injector) roll(kind, a, b uint64) float64 {
	h := splitmix64(uint64(in.prof.Seed) ^ splitmix64(kind^splitmix64(a^splitmix64(b))))
	return float64(h>>11) / float64(1<<53)
}

// hit reports whether the deterministic draw for (kind, a, b) lands under
// rate.
func (in *Injector) hit(kind uint64, a, b uint64, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	return in.roll(kind, a, b) < rate
}

// clamp01 keeps externally supplied rates sane.
func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
