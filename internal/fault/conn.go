package fault

import (
	"errors"
	"net"
	"sync"
)

// ErrInjectedReset marks a connection killed by the injector.
var ErrInjectedReset = errors.New("fault: injected connection reset")

// Conn wraps a net.Conn and injects transport faults on the read path:
// deterministic byte flips at WireCorruptRate (caught by the PGSP frame CRC,
// or — when a frame header is hit — by the framing sanity checks, forcing a
// reconnect) and a one-shot connection reset after ResetAfterBytes bytes.
//
// Corruption is keyed by the absolute byte offset within the connection, so
// the damaged byte positions are independent of read chunking.
type Conn struct {
	net.Conn
	in      *Injector
	connID  uint64
	resetAt int64 // -1: no reset scheduled

	mu     sync.Mutex
	offset int64
	reset  bool
}

// WrapConn wraps a dialed connection. Only the first connection the
// injector wraps carries the scheduled reset, so a reconnecting client
// observes exactly one injected outage.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	if in.prof.ResetAfterBytes == 0 && in.prof.WireCorruptRate == 0 {
		return c
	}
	in.connSeq++
	resetAt := int64(-1)
	if in.prof.ResetAfterBytes > 0 && in.connSeq == 1 {
		resetAt = in.prof.ResetAfterBytes
	}
	return &Conn{Conn: c, in: in, connID: uint64(in.connSeq), resetAt: resetAt}
}

// Read implements net.Conn with injected faults.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.reset {
		c.mu.Unlock()
		return 0, ErrInjectedReset
	}
	start := c.offset
	if c.resetAt >= 0 {
		remain := c.resetAt - start
		if remain <= 0 {
			c.reset = true
			c.mu.Unlock()
			c.Conn.Close()
			return 0, ErrInjectedReset
		}
		// Cap the read so the reset lands exactly at the scheduled offset.
		if remain < int64(len(b)) {
			b = b[:remain]
		}
	}
	c.mu.Unlock()

	n, err := c.Conn.Read(b)
	if n > 0 && c.in.prof.WireCorruptRate > 0 {
		for i := 0; i < n; i++ {
			if c.in.hit(kindWire, c.connID, uint64(start)+uint64(i), c.in.prof.WireCorruptRate) {
				b[i] ^= 0x5A
			}
		}
	}
	c.mu.Lock()
	c.offset = start + int64(n)
	c.mu.Unlock()
	return n, err
}
