package fault

import (
	"packetgame/internal/codec"
)

// StreamStats counts the faults a Stream has injected.
type StreamStats struct {
	Packets   int64 // packets drawn from the wrapped camera
	Corrupted int64
	Truncated int64
	Lost      int64
	Stalls    int64 // stall episodes begun
	Stalled   int64 // rounds spent stalled
}

// Stream wraps a synthetic camera and injects ingest-side faults: payload
// corruption (a permanent decode poison pill), truncation (zeroed size
// metadata, poisoning the predictor's feature window), packet loss, and
// multi-round stalls. Next returns nil for lost packets and stalled rounds,
// which the pipeline already treats as an idle stream.
//
// Faults are keyed by the wrapped stream's packet sequence numbers, so the
// injected sequence is independent of wall-clock timing and of the other
// streams in the fleet.
type Stream struct {
	inner *codec.Stream
	in    *Injector
	id    int
	// targeted caches the per-stream fault-target draw.
	targeted bool
	// stall is the number of upcoming rounds to swallow.
	stall int
	stats StreamStats
}

// WrapStream wraps one camera. id is the stream's fleet index (used as the
// fault key; it should match the packet StreamID the camera emits).
func (in *Injector) WrapStream(id int, s *codec.Stream) *Stream {
	return &Stream{inner: s, in: in, id: id, targeted: in.Targeted(id)}
}

// WrapFleet wraps every camera of a fleet, indexed by position.
func (in *Injector) WrapFleet(fleet []*codec.Stream) []*Stream {
	out := make([]*Stream, len(fleet))
	for i, s := range fleet {
		out[i] = in.WrapStream(i, s)
	}
	return out
}

// Inner returns the wrapped camera.
func (s *Stream) Inner() *codec.Stream { return s.inner }

// Stats returns the injection counters. Call it only between rounds or
// after the run: Next and Stats share unsynchronized state.
func (s *Stream) Stats() StreamStats { return s.stats }

// Truth returns the ground-truth scene of the most recent packet the
// underlying camera produced (pipeline.Camera protocol).
func (s *Stream) Truth() (codec.Scene, bool) { return s.inner.LastScene, true }

// Next produces the stream's next packet, nil when the round's packet was
// lost or the stream is stalled.
func (s *Stream) Next() *codec.Packet {
	if s.stall > 0 {
		// A stalled camera produces nothing: the underlying stream does
		// not advance, so content resumes where it left off.
		s.stall--
		s.stats.Stalled++
		return nil
	}
	p := s.inner.Next()
	s.stats.Packets++
	if !s.targeted {
		return p
	}
	prof := s.in.prof
	key := uint64(s.id)
	seq := uint64(p.Seq)
	if s.in.hit(kindStall, key, seq, prof.StallRate) {
		// The packet that triggered the stall is itself swallowed.
		s.stall = prof.StallRounds - 1
		s.stats.Stalls++
		s.stats.Stalled++
		return nil
	}
	if s.in.hit(kindLoss, key, seq, prof.LossRate) {
		s.stats.Lost++
		return nil
	}
	if s.in.hit(kindTruncate, key, seq, prof.TruncateRate) {
		TruncatePacket(p)
		s.stats.Truncated++
		return p
	}
	if s.in.hit(kindCorrupt, key, seq, prof.CorruptRate) {
		CorruptPacket(p)
		s.stats.Corrupted++
		return p
	}
	return p
}

// CorruptPacket damages p's payload in place so that every decode of it
// fails (the payload magic is destroyed), while the gating metadata stays
// intact — the gate cannot tell the packet is poisoned.
func CorruptPacket(p *codec.Packet) {
	for i := range p.Payload {
		if i >= 8 {
			break
		}
		p.Payload[i] ^= 0xA5
	}
}

// TruncatePacket models a framing-level truncation: the payload is cut and
// the size metadata zeroed, so both the decoder (short payload) and the
// predictor's size features (a zero-size run) observe the damage.
func TruncatePacket(p *codec.Packet) {
	if len(p.Payload) > 4 {
		p.Payload = p.Payload[:4]
	}
	p.Size = 0
}
