package fault

import (
	"bytes"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

func mkCamera(seed int64) *codec.Stream {
	return codec.NewStream(codec.SceneConfig{BaseActivity: 0.4, PersonRate: 0.3},
		codec.EncoderConfig{GOPSize: 10}, seed)
}

// drawSequence records the fault classification of n packets from a wrapped
// stream (nil, corrupt-decode, ok).
func drawSequence(in *Injector, n int) []string {
	s := in.WrapStream(0, mkCamera(7))
	d := in.WrapDecoder(decode.NewDecoder(decode.DefaultCosts))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := s.Next()
		if p == nil {
			out = append(out, "nil")
			continue
		}
		if _, err := d.Decode(p); err != nil {
			out = append(out, "fail")
		} else {
			out = append(out, "ok")
		}
	}
	return out
}

func TestInjectionDeterministic(t *testing.T) {
	prof := Profile{Seed: 42, CorruptRate: 0.1, TruncateRate: 0.05, LossRate: 0.05,
		StallRate: 0.01, StallRounds: 5, DecodeFailRate: 0.1}
	a := drawSequence(NewInjector(prof), 500)
	b := drawSequence(NewInjector(prof), 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at packet %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := drawSequence(NewInjector(Profile{Seed: 43, CorruptRate: 0.1, TruncateRate: 0.05,
		LossRate: 0.05, StallRate: 0.01, StallRounds: 5, DecodeFailRate: 0.1}), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRatesRoughlyHonored(t *testing.T) {
	in := NewInjector(Profile{Seed: 1, CorruptRate: 0.2})
	s := in.WrapStream(0, mkCamera(3))
	const n = 2000
	for i := 0; i < n; i++ {
		s.Next()
	}
	got := float64(s.Stats().Corrupted) / float64(n)
	if math.Abs(got-0.2) > 0.04 {
		t.Fatalf("corrupt rate %.3f, want ~0.2", got)
	}
}

func TestTargetFractionSparesStreams(t *testing.T) {
	in := NewInjector(Profile{Seed: 5, CorruptRate: 1, TargetFraction: 0.25})
	targeted := 0
	for id := 0; id < 64; id++ {
		if in.Targeted(id) {
			targeted++
		} else {
			s := in.WrapStream(id, mkCamera(int64(id)))
			for i := 0; i < 50; i++ {
				if p := s.Next(); p == nil {
					t.Fatalf("untargeted stream %d lost a packet", id)
				}
			}
			if st := s.Stats(); st.Corrupted+st.Truncated+st.Lost+st.Stalls != 0 {
				t.Fatalf("untargeted stream %d was faulted: %+v", id, st)
			}
		}
	}
	if targeted == 0 || targeted == 64 {
		t.Fatalf("targeted %d/64 streams, want a strict subset", targeted)
	}
}

func TestCorruptPacketPoisonsDecode(t *testing.T) {
	p := mkCamera(9).Next()
	CorruptPacket(p)
	d := decode.NewDecoder(decode.DefaultCosts)
	if _, err := d.Decode(p); err == nil {
		t.Fatal("corrupted payload decoded successfully")
	}
	// Retries never fix a poison pill.
	r := decode.NewRetrier(d, decode.RetryPolicy{MaxRetries: 3, Backoff: time.Microsecond})
	_, err := r.Decode(p)
	var poison *decode.PoisonError
	if !errors.As(err, &poison) {
		t.Fatalf("want PoisonError, got %v", err)
	}
	if poison.Attempts != 4 {
		t.Fatalf("poison after %d attempts, want 4", poison.Attempts)
	}
}

func TestTruncatePacketZeroesMetadata(t *testing.T) {
	p := mkCamera(11).Next()
	TruncatePacket(p)
	if p.Size != 0 {
		t.Fatalf("truncated packet size %d, want 0", p.Size)
	}
	if _, err := decode.NewDecoder(decode.DefaultCosts).Decode(p); err == nil {
		t.Fatal("truncated payload decoded successfully")
	}
}

func TestTransientDecodeFailureRecoversUnderRetry(t *testing.T) {
	// With a 50% per-attempt failure rate and 6 retries, nearly every
	// packet eventually decodes; without retries many fail.
	in := NewInjector(Profile{Seed: 2, DecodeFailRate: 0.5})
	d := in.WrapDecoder(decode.NewDecoder(decode.DefaultCosts))
	r := decode.NewRetrier(d, decode.RetryPolicy{MaxRetries: 6, Backoff: time.Microsecond})
	cam := mkCamera(13)
	fails := 0
	for i := 0; i < 200; i++ {
		if _, err := r.Decode(cam.Next()); err != nil {
			fails++
		}
	}
	if fails > 5 {
		t.Fatalf("%d/200 packets failed under retry, want ≤5", fails)
	}
}

func TestStallSwallowsRounds(t *testing.T) {
	in := NewInjector(Profile{Seed: 3, StallRate: 0.05, StallRounds: 10})
	s := in.WrapStream(0, mkCamera(17))
	nils := 0
	for i := 0; i < 500; i++ {
		if s.Next() == nil {
			nils++
		}
	}
	st := s.Stats()
	if st.Stalls == 0 {
		t.Fatal("no stall episodes in 500 rounds at rate 0.05")
	}
	if int64(nils) != st.Stalled {
		t.Fatalf("nil rounds %d != stalled counter %d", nils, st.Stalled)
	}
}

func TestConnResetAndCorruption(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	in := NewInjector(Profile{Seed: 4, ResetAfterBytes: 64})
	wrapped := in.WrapConn(a)
	payload := bytes.Repeat([]byte{0xEE}, 256)
	go func() {
		b.Write(payload)
	}()
	var got []byte
	buf := make([]byte, 32)
	var readErr error
	for {
		n, err := wrapped.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			readErr = err
			break
		}
	}
	if !errors.Is(readErr, ErrInjectedReset) {
		t.Fatalf("want ErrInjectedReset, got %v", readErr)
	}
	if len(got) != 64 {
		t.Fatalf("read %d bytes before reset, want exactly 64", len(got))
	}

	// Second wrapped conn carries no reset.
	c, d := net.Pipe()
	defer d.Close()
	w2 := in.WrapConn(c)
	go d.Write(payload[:16])
	n, err := w2.Read(make([]byte, 16))
	if err != nil || n != 16 {
		t.Fatalf("second conn read = %d, %v; want 16, nil", n, err)
	}
}

func TestWireCorruptionDeterministic(t *testing.T) {
	read := func(seed int64) []byte {
		a, b := net.Pipe()
		defer a.Close()
		defer b.Close()
		in := NewInjector(Profile{Seed: seed, WireCorruptRate: 0.05})
		w := in.WrapConn(a)
		go b.Write(bytes.Repeat([]byte{0x00}, 512))
		out := make([]byte, 0, 512)
		buf := make([]byte, 64)
		for len(out) < 512 {
			n, err := w.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				t.Fatal(err)
			}
		}
		return out
	}
	x, y := read(21), read(21)
	if !bytes.Equal(x, y) {
		t.Fatal("wire corruption not deterministic at equal seed")
	}
	flips := 0
	for _, v := range x {
		if v != 0 {
			flips++
		}
	}
	if flips == 0 {
		t.Fatal("no bytes flipped at rate 0.05 over 512 bytes")
	}
}

func TestParseProfile(t *testing.T) {
	p, err := ParseProfile("chaos", 9)
	if err != nil || p.Name != "chaos" || p.Seed != 9 || p.CorruptRate != 0.10 {
		t.Fatalf("chaos profile = %+v, err %v", p, err)
	}
	p, err = ParseProfile("corrupt=0.3,decodefail=0.1,target=0.5,stallrounds=7", 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.CorruptRate != 0.3 || p.DecodeFailRate != 0.1 || p.TargetFraction != 0.5 || p.StallRounds != 7 {
		t.Fatalf("custom profile = %+v", p)
	}
	if _, err := ParseProfile("bogus=1", 1); err == nil {
		t.Fatal("unknown key must error")
	}
	if _, err := ParseProfile("corrupt", 1); err == nil {
		t.Fatal("missing value must error")
	}
}

func TestDeadlineCatchesSpike(t *testing.T) {
	in := NewInjector(Profile{Seed: 6, DecodeSpikeRate: 1, DecodeSpike: 50 * time.Millisecond})
	d := in.WrapDecoder(decode.NewDecoder(decode.DefaultCosts))
	r := decode.NewRetrier(d, decode.RetryPolicy{Deadline: 5 * time.Millisecond, Backoff: time.Microsecond})
	start := time.Now()
	_, err := r.Decode(mkCamera(23).Next())
	var poison *decode.PoisonError
	if !errors.As(err, &poison) || !errors.Is(poison.Last, decode.ErrDeadline) {
		t.Fatalf("want deadline poison, got %v", err)
	}
	if time.Since(start) > 40*time.Millisecond {
		t.Fatalf("deadline did not cut the spike short (%v)", time.Since(start))
	}
}
