package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

// ErrInjectedDecode marks a decode failure injected by a fault profile.
var ErrInjectedDecode = errors.New("fault: injected decode failure")

// DecoderStats counts the faults a Decoder has injected.
type DecoderStats struct {
	Attempts int64
	Failed   int64 // attempts failed by injection
	Spiked   int64 // attempts delayed by a latency spike
}

// Decoder wraps a decoder and injects per-attempt decode failures and
// latency spikes. Failures are independent draws per (stream, seq, attempt),
// so a bounded retry has a real chance of succeeding — exactly the
// transient-fault model the retry layer exists for. A packet whose payload
// was corrupted upstream keeps failing inside the wrapped decoder itself,
// which is the permanent (poison pill) case.
//
// Decoder is safe for concurrent use; the per-packet attempt counters are
// the only shared state and are lock-protected.
type Decoder struct {
	inner decode.PacketDecoder
	in    *Injector

	mu       sync.Mutex
	attempts map[attemptKey]uint64
	stats    DecoderStats
}

type attemptKey struct {
	stream int
	seq    int64
}

// WrapDecoder wraps a decoder with the injector's decode faults.
func (in *Injector) WrapDecoder(d decode.PacketDecoder) *Decoder {
	return &Decoder{inner: d, in: in, attempts: make(map[attemptKey]uint64)}
}

// Stats returns the injection counters.
func (d *Decoder) Stats() DecoderStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// nextAttempt returns the attempt ordinal for this packet and bumps it.
func (d *Decoder) nextAttempt(p *codec.Packet) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	k := attemptKey{p.StreamID, p.Seq}
	n := d.attempts[k]
	d.attempts[k] = n + 1
	d.stats.Attempts++
	return n
}

// forget drops a packet's attempt counter once it decodes, bounding the map.
func (d *Decoder) forget(p *codec.Packet) {
	d.mu.Lock()
	delete(d.attempts, attemptKey{p.StreamID, p.Seq})
	d.mu.Unlock()
}

// Decode implements decode.PacketDecoder with injected faults.
func (d *Decoder) Decode(p *codec.Packet) (decode.Frame, error) {
	if !d.in.Targeted(p.StreamID) {
		return d.inner.Decode(p)
	}
	attempt := d.nextAttempt(p)
	prof := d.in.prof
	// The attempt ordinal is folded into the seq key so each attempt is an
	// independent deterministic draw.
	key := uint64(p.StreamID)
	seq := uint64(p.Seq)<<8 | (attempt & 0xFF)
	if d.in.hit(kindDecodeSpike, key, seq, prof.DecodeSpikeRate) {
		d.mu.Lock()
		d.stats.Spiked++
		d.mu.Unlock()
		time.Sleep(prof.DecodeSpike)
	}
	if d.in.hit(kindDecodeFail, key, seq, prof.DecodeFailRate) {
		d.mu.Lock()
		d.stats.Failed++
		d.mu.Unlock()
		return decode.Frame{}, fmt.Errorf("%w: stream %d seq %d attempt %d",
			ErrInjectedDecode, p.StreamID, p.Seq, attempt+1)
	}
	f, err := d.inner.Decode(p)
	if err == nil {
		d.forget(p)
	}
	return f, err
}
