// Package accel models inference acceleration (TensorRT in the paper):
// a throughput multiplier on the inference model, obtained by quantization,
// layer fusion, and parallel execution. It is orthogonal to packet gating;
// the paper combines the two in Table 5.
package accel

import (
	"fmt"
	"time"
)

// Accelerator scales an inference model's throughput.
type Accelerator struct {
	// Name identifies the technique in reports.
	Name string
	// Speedup multiplies the base throughput. The paper's YOLOX numbers,
	// 27.7 → 753.9 FPS, give 27.2×.
	Speedup float64
}

// TensorRT returns the paper-calibrated accelerator (Fig 2a).
func TensorRT() Accelerator {
	return Accelerator{Name: "TRT", Speedup: 753.9 / 27.7}
}

// None is the identity accelerator.
func None() Accelerator { return Accelerator{Name: "none", Speedup: 1} }

// Measure builds an accelerator whose Speedup is measured rather than
// assumed: base and fast each run iters times under the wall clock, and the
// resulting ratio becomes the Speedup. This is how software acceleration
// (e.g. the compiled float32 inference graph) plugs into the same Table 5
// throughput model as the paper's constant-factor TensorRT entry. Both
// closures run once before timing as a warmup.
func Measure(name string, iters int, base, fast func()) (Accelerator, error) {
	if iters <= 0 {
		return Accelerator{}, fmt.Errorf("accel: iters must be positive, got %d", iters)
	}
	if base == nil || fast == nil {
		return Accelerator{}, fmt.Errorf("accel: base and fast functions are required")
	}
	clock := func(f func()) time.Duration {
		f() // warmup
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			f()
		}
		return time.Since(t0)
	}
	bd := clock(base)
	fd := clock(fast)
	if fd <= 0 || bd <= 0 {
		return Accelerator{}, fmt.Errorf("accel: measured durations must be positive (base %v, fast %v)", bd, fd)
	}
	return Accelerator{Name: name, Speedup: float64(bd) / float64(fd)}, nil
}

// Apply returns the accelerated throughput for a base FPS.
func (a Accelerator) Apply(baseFPS float64) (float64, error) {
	if baseFPS <= 0 {
		return 0, fmt.Errorf("accel: base FPS must be positive, got %v", baseFPS)
	}
	if a.Speedup <= 0 {
		return 0, fmt.Errorf("accel: speedup must be positive, got %v", a.Speedup)
	}
	return baseFPS * a.Speedup, nil
}
