// Package accel models inference acceleration (TensorRT in the paper):
// a throughput multiplier on the inference model, obtained by quantization,
// layer fusion, and parallel execution. It is orthogonal to packet gating;
// the paper combines the two in Table 5.
package accel

import "fmt"

// Accelerator scales an inference model's throughput.
type Accelerator struct {
	// Name identifies the technique in reports.
	Name string
	// Speedup multiplies the base throughput. The paper's YOLOX numbers,
	// 27.7 → 753.9 FPS, give 27.2×.
	Speedup float64
}

// TensorRT returns the paper-calibrated accelerator (Fig 2a).
func TensorRT() Accelerator {
	return Accelerator{Name: "TRT", Speedup: 753.9 / 27.7}
}

// None is the identity accelerator.
func None() Accelerator { return Accelerator{Name: "none", Speedup: 1} }

// Apply returns the accelerated throughput for a base FPS.
func (a Accelerator) Apply(baseFPS float64) (float64, error) {
	if baseFPS <= 0 {
		return 0, fmt.Errorf("accel: base FPS must be positive, got %v", baseFPS)
	}
	if a.Speedup <= 0 {
		return 0, fmt.Errorf("accel: speedup must be positive, got %v", a.Speedup)
	}
	return baseFPS * a.Speedup, nil
}
