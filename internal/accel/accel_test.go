package accel

import (
	"math"
	"testing"
)

func TestTensorRTCalibration(t *testing.T) {
	a := TensorRT()
	got, err := a.Apply(27.7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 2a: YOLOX 27.7 → 753.9 FPS.
	if math.Abs(got-753.9) > 1e-9 {
		t.Errorf("TRT(27.7) = %v, want 753.9", got)
	}
}

func TestNoneIsIdentity(t *testing.T) {
	got, err := None().Apply(100)
	if err != nil || got != 100 {
		t.Errorf("None().Apply(100) = %v, %v", got, err)
	}
}

func TestMeasure(t *testing.T) {
	slow := func() {
		var s float64
		for i := 0; i < 200_000; i++ {
			s += float64(i)
		}
		sinkF = s
	}
	fast := func() {
		var s float64
		for i := 0; i < 1_000; i++ {
			s += float64(i)
		}
		sinkF = s
	}
	a, err := Measure("loop", 20, slow, fast)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "loop" {
		t.Errorf("name = %q", a.Name)
	}
	// The exact ratio is host-dependent; 200x the work should measure
	// clearly faster.
	if a.Speedup <= 1 {
		t.Errorf("speedup = %v, want > 1 for 200x less work", a.Speedup)
	}
	if _, err := a.Apply(100); err != nil {
		t.Errorf("measured accelerator must Apply cleanly: %v", err)
	}
}

var sinkF float64

func TestMeasureValidation(t *testing.T) {
	f := func() {}
	if _, err := Measure("x", 0, f, f); err == nil {
		t.Error("zero iters must error")
	}
	if _, err := Measure("x", 1, nil, f); err == nil {
		t.Error("nil base must error")
	}
	if _, err := Measure("x", 1, f, nil); err == nil {
		t.Error("nil fast must error")
	}
}

func TestApplyValidation(t *testing.T) {
	if _, err := TensorRT().Apply(0); err == nil {
		t.Error("zero FPS must error")
	}
	if _, err := (Accelerator{Speedup: 0}).Apply(10); err == nil {
		t.Error("zero speedup must error")
	}
}
