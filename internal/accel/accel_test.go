package accel

import (
	"math"
	"testing"
)

func TestTensorRTCalibration(t *testing.T) {
	a := TensorRT()
	got, err := a.Apply(27.7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 2a: YOLOX 27.7 → 753.9 FPS.
	if math.Abs(got-753.9) > 1e-9 {
		t.Errorf("TRT(27.7) = %v, want 753.9", got)
	}
}

func TestNoneIsIdentity(t *testing.T) {
	got, err := None().Apply(100)
	if err != nil || got != 100 {
		t.Errorf("None().Apply(100) = %v, %v", got, err)
	}
}

func TestApplyValidation(t *testing.T) {
	if _, err := TensorRT().Apply(0); err == nil {
		t.Error("zero FPS must error")
	}
	if _, err := (Accelerator{Speedup: 0}).Apply(10); err == nil {
		t.Error("zero speedup must error")
	}
}
