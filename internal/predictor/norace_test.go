//go:build !race

package predictor

// raceEnabled is false without -race; see race_test.go.
const raceEnabled = false
