package predictor

import (
	"fmt"
	"math"
)

// RowState is one stream's portable slice of a Store: both size windows in
// canonical oldest-first order plus the cursors and counters that make
// pushes, epochs, and the score cache behave identically after a migration.
// The ring's absolute slot positions are NOT part of the state — an import
// re-bases the ring at the canonical cursor — so two stores that agree on a
// stream's push history export byte-identical rows.
type RowState struct {
	// IValues and PValues are the normalized size windows, oldest first,
	// each exactly w long.
	IValues []float64
	PValues []float64
	// IRun and PRun are the trailing runs of equal pushed values per ring,
	// capped at w+1 (the saturation sentinel).
	IRun, PRun int32
	// Last is the last pushed picture type ordinal.
	Last uint8
	// Pushes counts packets folded into the windows; Epoch is the feature
	// epoch the score cache keys on.
	Pushes int64
	Epoch  uint64
	// LastRaw and LastNorm memoize the last NormalizeSize evaluation.
	LastRaw  int64
	LastNorm float64
}

// ExportRow extracts stream i's feature state. The store is unchanged.
func (s *Store) ExportRow(i int) (RowState, error) {
	if i < 0 || i >= s.n {
		return RowState{}, fmt.Errorf("predictor: export row %d out of range [0,%d)", i, s.n)
	}
	w := s.w
	iRow := s.iBuf[i*2*w : (i+1)*2*w]
	pRow := s.pBuf[i*2*w : (i+1)*2*w]
	st := RowState{
		IValues:  append([]float64(nil), iRow[s.iPos[i]+1:int(s.iPos[i])+1+w]...),
		PValues:  append([]float64(nil), pRow[s.pPos[i]+1:int(s.pPos[i])+1+w]...),
		IRun:     s.iRun[i],
		PRun:     s.pRun[i],
		Last:     s.last[i],
		Pushes:   s.pushes[i],
		Epoch:    s.epoch[i],
		LastRaw:  s.lastRaw[i],
		LastNorm: s.lastNorm[i],
	}
	return st, nil
}

// ImportRow installs an exported row for stream i, overwriting whatever the
// row held. The ring is re-based at the canonical cursor (pos = w-1) with
// the double-write invariant restored, and the nonzero/non-finite counters
// are recomputed from the imported windows, so Features, Poisoned, and
// subsequent pushes behave bit-identically to the donor store.
func (s *Store) ImportRow(i int, st RowState) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("predictor: import row %d out of range [0,%d)", i, s.n)
	}
	w := s.w
	if len(st.IValues) != w || len(st.PValues) != w {
		return fmt.Errorf("predictor: import row: window lengths %d/%d, want %d", len(st.IValues), len(st.PValues), w)
	}
	if st.IRun < 0 || st.IRun > int32(w+1) || st.PRun < 0 || st.PRun > int32(w+1) {
		return fmt.Errorf("predictor: import row: runs %d/%d outside [0,%d]", st.IRun, st.PRun, w+1)
	}
	iRow := s.iBuf[i*2*w : (i+1)*2*w]
	pRow := s.pBuf[i*2*w : (i+1)*2*w]
	var iNZ, pNZ, iBad, pBad int32
	for j := 0; j < w; j++ {
		iv, pv := st.IValues[j], st.PValues[j]
		iRow[j], iRow[j+w] = iv, iv
		pRow[j], pRow[j+w] = pv, pv
		if iv != 0 {
			iNZ++
		}
		if pv != 0 {
			pNZ++
		}
		if math.IsNaN(iv) {
			iBad++
		}
		if math.IsNaN(pv) {
			pBad++
		}
	}
	s.iPos[i], s.pPos[i] = int32(w-1), int32(w-1)
	s.iRun[i], s.pRun[i] = st.IRun, st.PRun
	s.iNZ[i], s.pNZ[i] = iNZ, pNZ
	s.iBad[i], s.pBad[i] = iBad, pBad
	s.last[i] = st.Last
	s.pushes[i] = st.Pushes
	s.epoch[i] = st.Epoch
	s.lastRaw[i] = st.LastRaw
	s.lastNorm[i] = st.LastNorm
	return nil
}

// ResetRow returns stream i's row to the fresh (never-pushed) state.
func (s *Store) ResetRow(i int) error {
	if i < 0 || i >= s.n {
		return fmt.Errorf("predictor: reset row %d out of range [0,%d)", i, s.n)
	}
	w := s.w
	iRow := s.iBuf[i*2*w : (i+1)*2*w]
	pRow := s.pBuf[i*2*w : (i+1)*2*w]
	for j := range iRow {
		iRow[j] = 0
		pRow[j] = 0
	}
	s.iPos[i], s.pPos[i] = int32(w-1), int32(w-1)
	s.iRun[i], s.pRun[i] = 0, 0
	s.iNZ[i], s.pNZ[i] = 0, 0
	s.iBad[i], s.pBad[i] = 0, 0
	s.last[i] = 0
	s.pushes[i] = 0
	s.epoch[i] = 0
	s.lastRaw[i] = 0
	s.lastNorm[i] = 0
	return nil
}
