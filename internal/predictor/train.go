package predictor

import (
	"fmt"
	"math"
	"math/rand"

	"packetgame/internal/nn"
)

// Sample is one training example: features plus one 0-1 normalized
// redundancy label per task head. Use math.NaN() for task heads this sample
// carries no label for (multi-task training across domains).
type Sample struct {
	F      Features
	Labels []float64
}

// TrainOptions configures offline training (§6.1 defaults: RMSprop,
// batch 2048, learning rate 0.001).
type TrainOptions struct {
	Epochs    int     // default 20
	BatchSize int     // default 2048
	LR        float64 // default 0.001
	Seed      int64   // shuffle seed
	// Progress, if non-nil, receives (epoch, meanLoss) after each epoch.
	Progress func(epoch int, loss float64)
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Epochs == 0 {
		o.Epochs = 20
	}
	if o.BatchSize == 0 {
		o.BatchSize = 2048
	}
	if o.LR == 0 {
		o.LR = 0.001
	}
	return o
}

// Train fits the predictor on samples with binary cross-entropy and RMSprop.
// It returns the final epoch's mean loss.
func (p *Predictor) Train(samples []Sample, opts TrainOptions) (float64, error) {
	opts = opts.withDefaults()
	if len(samples) == 0 {
		return 0, fmt.Errorf("predictor: no training samples")
	}
	for i, s := range samples {
		if len(s.Labels) != p.cfg.Tasks {
			return 0, fmt.Errorf("predictor: sample %d has %d labels, model has %d tasks",
				i, len(s.Labels), p.cfg.Tasks)
		}
		if len(s.F.ISizes) != p.cfg.Window || len(s.F.PSizes) != p.cfg.Window {
			return 0, fmt.Errorf("predictor: sample %d feature window %d/%d, model window %d",
				i, len(s.F.ISizes), len(s.F.PSizes), p.cfg.Window)
		}
	}
	rng := rand.New(rand.NewSource(opts.Seed + 104729))
	opt := nn.NewRMSprop(opts.LR)
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	batch := make([]Features, 0, opts.BatchSize)
	var lastLoss float64
	for epoch := 0; epoch < opts.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		var epochLoss float64
		batches := 0
		for start := 0; start < len(idx); start += opts.BatchSize {
			end := start + opts.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch = batch[:0]
			target := nn.NewTensor(end-start, p.cfg.Tasks)
			for bi, si := range idx[start:end] {
				batch = append(batch, samples[si].F)
				copy(target.Data[bi*p.cfg.Tasks:(bi+1)*p.cfg.Tasks], samples[si].Labels)
			}
			pred := p.forwardBatch(batch)
			loss, grad := nn.BCE(pred, target)
			nn.ZeroGrads(p.Params())
			p.backwardBatch(len(batch), grad)
			opt.Step(p.Params())
			epochLoss += loss
			batches++
		}
		lastLoss = epochLoss / float64(batches)
		if opts.Progress != nil {
			opts.Progress(epoch, lastLoss)
		}
	}
	p.invalidateFast()
	return lastLoss, nil
}

// Evaluate returns the per-task classification accuracy of the predictor on
// samples at the given confidence threshold. NaN labels are skipped.
func (p *Predictor) Evaluate(samples []Sample, threshold float64) []float64 {
	correct := make([]float64, p.cfg.Tasks)
	total := make([]float64, p.cfg.Tasks)
	const chunk = 4096
	for start := 0; start < len(samples); start += chunk {
		end := start + chunk
		if end > len(samples) {
			end = len(samples)
		}
		batch := make([]Features, 0, end-start)
		for _, s := range samples[start:end] {
			batch = append(batch, s.F)
		}
		out := p.forwardBatch(batch)
		for bi, s := range samples[start:end] {
			for ti := 0; ti < p.cfg.Tasks; ti++ {
				r := s.Labels[ti]
				if math.IsNaN(r) {
					continue
				}
				pred := out.Data[bi*p.cfg.Tasks+ti] >= threshold
				want := r >= 0.5
				if pred == want {
					correct[ti]++
				}
				total[ti]++
			}
		}
	}
	acc := make([]float64, p.cfg.Tasks)
	for ti := range acc {
		if total[ti] > 0 {
			acc[ti] = correct[ti] / total[ti]
		}
	}
	return acc
}

// Scores returns the task-ti confidence for every sample (for ROC and
// threshold-sweep analysis).
func (p *Predictor) Scores(samples []Sample, ti int) []float64 {
	scores := make([]float64, 0, len(samples))
	const chunk = 4096
	for start := 0; start < len(samples); start += chunk {
		end := start + chunk
		if end > len(samples) {
			end = len(samples)
		}
		batch := make([]Features, 0, end-start)
		for _, s := range samples[start:end] {
			batch = append(batch, s.F)
		}
		out := p.forwardBatch(batch)
		for bi := range batch {
			scores = append(scores, out.Data[bi*p.cfg.Tasks+ti])
		}
	}
	return scores
}
