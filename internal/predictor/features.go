// Package predictor implements PacketGame's contextual predictor (§5.2): a
// multi-view neural network over packet metadata. View #1 embeds the packet
// sizes of independent (I) frames, view #2 the sizes of predicted (P/B)
// frames, and view #3 fuses the temporal estimator's output; the current
// picture type joins the fusion as a one-hot vector (Fig 7).
package predictor

import (
	"math"

	"packetgame/internal/codec"
)

// NormalizeSize maps a packet size in bytes to a stable (0,1)-ish feature
// via log scaling; video packet sizes span several orders of magnitude.
// The affine range is tuned so that typical P-frame sizes (1-100 KB) spread
// across the middle of the range, keeping gradients well-scaled.
func NormalizeSize(size int) float64 {
	if size <= 0 {
		return 0
	}
	v := (math.Log1p(float64(size)) - 5) / 9
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Features is one gating decision's input: the two size views, the temporal
// estimate, and the current packet's picture type.
type Features struct {
	// ISizes holds the normalized sizes of the w most recent independent
	// frames, oldest first.
	ISizes []float64
	// PSizes holds the normalized sizes of the w most recent predicted
	// (P/B) frames, oldest first.
	PSizes []float64
	// Temporal is the temporal estimator's exploitation output for the
	// stream (the metadata-feedback fusion view).
	Temporal float64
	// Pict is the one-hot picture type of the current packet (I, P, B).
	Pict [3]float64
}

// sizeRing is a double-write ring of window length w: every value is stored
// at its slot and again w slots later, so the oldest-first window is always
// one contiguous subslice and a push is O(1) instead of the O(w) shift of a
// plain sliding buffer. view is that subslice — callers read it zero-copy.
type sizeRing struct {
	buf  []float64 // length 2w; invariant buf[i] == buf[i-w] for i ≥ w
	pos  int       // slot of the most recent push
	view []float64 // buf[pos+1 : pos+1+w], oldest first
}

func newSizeRing(w int) sizeRing {
	buf := make([]float64, 2*w)
	return sizeRing{buf: buf, pos: w - 1, view: buf[w : 2*w]}
}

func (r *sizeRing) w() int { return len(r.buf) / 2 }

func (r *sizeRing) push(v float64) {
	w := r.w()
	r.pos++
	if r.pos == w {
		r.pos = 0
	}
	r.buf[r.pos] = v
	r.buf[r.pos+w] = v
	r.view = r.buf[r.pos+1 : r.pos+1+w]
}

// Window maintains the per-stream sliding feature window. Push each parsed
// packet (the current one included) before asking for Features.
type Window struct {
	w      int
	iRing  sizeRing
	pRing  sizeRing
	last   codec.PictureType
	pushes int64
}

// NewWindow creates a feature window of length w.
func NewWindow(w int) *Window {
	if w < 1 {
		w = 1
	}
	return &Window{w: w, iRing: newSizeRing(w), pRing: newSizeRing(w)}
}

// W returns the window length.
func (fw *Window) W() int { return fw.w }

// Push folds one parsed packet into the window. It is O(1): the ring's
// double-write keeps the oldest-first view contiguous without shifting.
func (fw *Window) Push(p *codec.Packet) {
	v := NormalizeSize(p.Size)
	if p.Type == codec.PictureI {
		fw.iRing.push(v)
	} else {
		fw.pRing.push(v)
	}
	fw.last = p.Type
	fw.pushes++
}

// Pushes returns the number of packets folded into the window so far.
func (fw *Window) Pushes() int64 { return fw.pushes }

// Poisoned reports whether the window's contents cannot be trusted as
// predictor input: any non-finite value, or — once the window has seen at
// least w packets — a full window of zero sizes, the signature of
// truncated/zeroed metadata. A fault-aware gate degrades such streams to
// the temporal-only estimate instead of feeding garbage to the network.
func (fw *Window) Poisoned() bool {
	zeros := true
	for _, s := range [2][]float64{fw.iRing.view, fw.pRing.view} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			if v != 0 {
				zeros = false
			}
		}
	}
	return zeros && fw.pushes >= int64(fw.w)
}

// Features builds the input features using the given temporal estimate.
// It is allocation-free: the returned slices are zero-copy views into the
// window's ring buffers, oldest first. Callers that retain them across Push
// calls must copy (Clone, or a Slab for bulk retention).
func (fw *Window) Features(temporal float64) Features {
	f := Features{
		ISizes:   fw.iRing.view,
		PSizes:   fw.pRing.view,
		Temporal: temporal,
	}
	f.Pict[int(fw.last)] = 1
	return f
}

// Clone returns an independent copy of the features (for dataset assembly).
func (f Features) Clone() Features {
	c := f
	c.ISizes = append([]float64(nil), f.ISizes...)
	c.PSizes = append([]float64(nil), f.PSizes...)
	return c
}

// Slab clones Features into chunked backing storage so that retaining one
// round's features costs zero steady-state allocations: a slab is acquired
// per round (see GetSlab), filled with CloneInto, and recycled once the
// round's feedback retires. Earlier clones stay valid as the slab grows —
// chunks are never reallocated, only appended.
type Slab struct {
	cur    []float64
	chunks [][]float64
}

const slabChunk = 4096

func (s *Slab) alloc(n int) []float64 {
	if cap(s.cur)-len(s.cur) < n {
		size := slabChunk
		if n > size {
			size = n
		}
		s.cur = make([]float64, 0, size)
		s.chunks = append(s.chunks, s.cur)
	}
	off := len(s.cur)
	s.cur = s.cur[:off+n]
	return s.cur[off : off+n : off+n]
}

// Alloc returns an n-element slice of slab storage (capacity-capped, so
// appends never clobber neighbors). Valid until Reset.
func (s *Slab) Alloc(n int) []float64 { return s.alloc(n) }

// CloneInto copies f's slices into the slab and returns the detached copy.
func (s *Slab) CloneInto(f Features) Features {
	c := f
	c.ISizes = s.alloc(len(f.ISizes))
	copy(c.ISizes, f.ISizes)
	c.PSizes = s.alloc(len(f.PSizes))
	copy(c.PSizes, f.PSizes)
	return c
}

// Reset discards the slab's contents, keeping its largest chunk so a
// recycled slab serves the next round without allocating.
func (s *Slab) Reset() {
	var best []float64
	for _, ch := range s.chunks {
		if cap(ch) > cap(best) {
			best = ch
		}
	}
	s.chunks = s.chunks[:0]
	if best != nil {
		s.cur = best[:0]
		s.chunks = append(s.chunks, s.cur)
	} else {
		s.cur = nil
	}
}
