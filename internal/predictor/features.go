// Package predictor implements PacketGame's contextual predictor (§5.2): a
// multi-view neural network over packet metadata. View #1 embeds the packet
// sizes of independent (I) frames, view #2 the sizes of predicted (P/B)
// frames, and view #3 fuses the temporal estimator's output; the current
// picture type joins the fusion as a one-hot vector (Fig 7).
package predictor

import (
	"math"

	"packetgame/internal/codec"
)

// NormalizeSize maps a packet size in bytes to a stable (0,1)-ish feature
// via log scaling; video packet sizes span several orders of magnitude.
// The affine range is tuned so that typical P-frame sizes (1-100 KB) spread
// across the middle of the range, keeping gradients well-scaled.
func NormalizeSize(size int) float64 {
	if size <= 0 {
		return 0
	}
	v := (math.Log1p(float64(size)) - 5) / 9
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Features is one gating decision's input: the two size views, the temporal
// estimate, and the current packet's picture type.
type Features struct {
	// ISizes holds the normalized sizes of the w most recent independent
	// frames, oldest first.
	ISizes []float64
	// PSizes holds the normalized sizes of the w most recent predicted
	// (P/B) frames, oldest first.
	PSizes []float64
	// Temporal is the temporal estimator's exploitation output for the
	// stream (the metadata-feedback fusion view).
	Temporal float64
	// Pict is the one-hot picture type of the current packet (I, P, B).
	Pict [3]float64
}

// Window maintains the per-stream sliding feature window. Push each parsed
// packet (the current one included) before asking for Features.
type Window struct {
	w      int
	iSizes []float64
	pSizes []float64
	last   codec.PictureType
	pushes int64
}

// NewWindow creates a feature window of length w.
func NewWindow(w int) *Window {
	if w < 1 {
		w = 1
	}
	return &Window{
		w:      w,
		iSizes: make([]float64, w),
		pSizes: make([]float64, w),
	}
}

// W returns the window length.
func (fw *Window) W() int { return fw.w }

// Push folds one parsed packet into the window.
func (fw *Window) Push(p *codec.Packet) {
	v := NormalizeSize(p.Size)
	if p.Type == codec.PictureI {
		shiftIn(fw.iSizes, v)
	} else {
		shiftIn(fw.pSizes, v)
	}
	fw.last = p.Type
	fw.pushes++
}

// Pushes returns the number of packets folded into the window so far.
func (fw *Window) Pushes() int64 { return fw.pushes }

// Poisoned reports whether the window's contents cannot be trusted as
// predictor input: any non-finite value, or — once the window has seen at
// least w packets — a full window of zero sizes, the signature of
// truncated/zeroed metadata. A fault-aware gate degrades such streams to
// the temporal-only estimate instead of feeding garbage to the network.
func (fw *Window) Poisoned() bool {
	zeros := true
	for _, s := range [2][]float64{fw.iSizes, fw.pSizes} {
		for _, v := range s {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			if v != 0 {
				zeros = false
			}
		}
	}
	return zeros && fw.pushes >= int64(fw.w)
}

func shiftIn(s []float64, v float64) {
	copy(s, s[1:])
	s[len(s)-1] = v
}

// Features builds the input features using the given temporal estimate.
// The returned slices alias the window's buffers; callers that retain them
// across Push calls must copy.
func (fw *Window) Features(temporal float64) Features {
	f := Features{
		ISizes:   fw.iSizes,
		PSizes:   fw.pSizes,
		Temporal: temporal,
	}
	f.Pict[int(fw.last)] = 1
	return f
}

// Clone returns an independent copy of the features (for dataset assembly).
func (f Features) Clone() Features {
	c := f
	c.ISizes = append([]float64(nil), f.ISizes...)
	c.PSizes = append([]float64(nil), f.PSizes...)
	return c
}
