package predictor

import "packetgame/internal/codec"

// Store is the struct-of-arrays feature state for a fleet of streams: every
// stream's two double-write size rings live in one contiguous slab, with the
// per-stream cursors and counters in parallel arrays. It replaces a slice of
// per-stream *Window pointers in the gating hot loop so that
//
//   - pushing a round of packets walks flat arrays instead of chasing one
//     heap object per stream, and
//   - the batched forward over the round's dirty subset reads its feature
//     windows from contiguous rows (each stream's oldest-first view is one
//     subslice of the slab, exactly like Window's rings).
//
// On top of the layout, the Store tracks a per-stream *feature epoch*: a
// counter that advances only when a push actually changes what Features
// would return. A push leaves the features unchanged iff the pushed ring
// already held w copies of the same normalized value, the new value equals
// it, and the packet's picture type matches the previous one (constant-rate
// feeds — padded CBR surveillance cameras — hit this constantly). Score
// caches key on the epoch: an unchanged epoch plus unchanged fused inputs
// means the cached network output is bit-identical to a recompute.
//
// Poisoned state is maintained incrementally (non-finite and nonzero counts
// updated on push/evict), so the per-stream check is O(1) instead of an
// O(w) window scan. A Store is not safe for concurrent use; the gate
// serializes access per shard.
type Store struct {
	n, w int

	// Ring slabs, n rows × 2w values each: row i occupies
	// buf[i*2w : (i+1)*2w] with the double-write invariant of sizeRing.
	iBuf, pBuf []float64
	// Most recent slot per ring, in [0, w).
	iPos, pPos []int32
	// Trailing run of equal pushed values per ring, capped at w+1.
	iRun, pRun []int32
	// Nonzero and non-finite value counts within the current w-window.
	iNZ, pNZ   []int32
	iBad, pBad []int32

	last   []uint8 // last pushed picture type
	pushes []int64
	epoch  []uint64

	// NormalizeSize memo: constant-rate feeds repeat the same raw size for
	// rounds on end, and the log-affine normalization is the single most
	// expensive instruction sequence in an unchanged push. Zero values are
	// consistent from the start: NormalizeSize(0) == 0.
	lastRaw  []int64
	lastNorm []float64
}

// NewStore creates feature state for n streams with window length w.
func NewStore(n, w int) *Store {
	if w < 1 {
		w = 1
	}
	if n < 0 {
		n = 0
	}
	s := &Store{
		n: n, w: w,
		iBuf: make([]float64, n*2*w),
		pBuf: make([]float64, n*2*w),
		iPos: make([]int32, n), pPos: make([]int32, n),
		iRun: make([]int32, n), pRun: make([]int32, n),
		iNZ: make([]int32, n), pNZ: make([]int32, n),
		iBad: make([]int32, n), pBad: make([]int32, n),
		last:     make([]uint8, n),
		pushes:   make([]int64, n),
		epoch:    make([]uint64, n),
		lastRaw:  make([]int64, n),
		lastNorm: make([]float64, n),
	}
	for i := range s.iPos {
		s.iPos[i] = int32(w - 1)
		s.pPos[i] = int32(w - 1)
	}
	return s
}

// W returns the window length.
func (s *Store) W() int { return s.w }

// Streams returns the number of streams.
func (s *Store) Streams() int { return s.n }

// Epoch returns stream i's feature epoch: it advances exactly when a Push
// changed the stream's Features-visible state.
func (s *Store) Epoch(i int) uint64 { return s.epoch[i] }

// Pushes returns the number of packets folded into stream i's windows.
func (s *Store) Pushes(i int) int64 { return s.pushes[i] }

// pushRing folds v into one ring row and reports whether the w-window's
// contents changed. run/nz/bad are the ring's per-stream counter columns.
func (s *Store) pushRing(buf []float64, pos, run, nz, bad []int32, i int, v float64) bool {
	w := s.w
	row := buf[i*2*w : (i+1)*2*w]
	p := int(pos[i])
	prev := row[p]
	// Saturated identical push: the whole w-window already holds v, so the
	// write, the eviction, and every counter update are all no-ops.
	if v == prev && run[i] > int32(w) {
		return false
	}
	// The value evicted from the w-window is the current view's oldest
	// element, stored canonically at slot (p+1) mod w.
	ev := row[(p+1)%w]
	if ev != 0 {
		nz[i]--
	}
	if v != 0 {
		nz[i]++
	}
	if ev != ev { // NaN; Inf cannot survive NormalizeSize's clamp
		bad[i]--
	}
	if v != v {
		bad[i]++
	}
	if v == prev {
		if run[i] <= int32(w) {
			run[i]++
		}
	} else {
		run[i] = 1
	}
	p++
	if p == w {
		p = 0
	}
	row[p] = v
	row[p+w] = v
	pos[i] = int32(p)
	// Unchanged iff the previous w pushes (the outgoing view) were all v
	// and the new value is v again: run counts the current push too, so
	// that is run >= w+1.
	return run[i] < int32(s.w+1)
}

// Push folds one parsed packet into stream i's windows, advancing the
// feature epoch only if the Features-visible state changed. O(1).
func (s *Store) Push(i int, p *codec.Packet) {
	var v float64
	if int64(p.Size) == s.lastRaw[i] {
		v = s.lastNorm[i]
	} else {
		v = NormalizeSize(p.Size)
		s.lastRaw[i] = int64(p.Size)
		s.lastNorm[i] = v
	}
	var changed bool
	if p.Type == codec.PictureI {
		changed = s.pushRing(s.iBuf, s.iPos, s.iRun, s.iNZ, s.iBad, i, v)
	} else {
		changed = s.pushRing(s.pBuf, s.pPos, s.pRun, s.pNZ, s.pBad, i, v)
	}
	if s.last[i] != uint8(p.Type) {
		s.last[i] = uint8(p.Type)
		changed = true
	}
	s.pushes[i]++
	if changed {
		s.epoch[i]++
	}
}

// Features builds stream i's predictor input with the given temporal
// estimate. Allocation-free: the size views alias the store's slab, oldest
// first, and stay valid until the stream's next Push.
func (s *Store) Features(i int, temporal float64) Features {
	w := s.w
	iRow := s.iBuf[i*2*w : (i+1)*2*w]
	pRow := s.pBuf[i*2*w : (i+1)*2*w]
	f := Features{
		ISizes:   iRow[s.iPos[i]+1 : int(s.iPos[i])+1+w],
		PSizes:   pRow[s.pPos[i]+1 : int(s.pPos[i])+1+w],
		Temporal: temporal,
	}
	f.Pict[s.last[i]] = 1
	return f
}

// Poisoned reports whether stream i's windows cannot be trusted as
// predictor input, with Window.Poisoned's exact semantics (any non-finite
// value, or a full all-zero window after w pushes) evaluated from the
// incrementally maintained counters in O(1).
func (s *Store) Poisoned(i int) bool {
	if s.iBad[i] > 0 || s.pBad[i] > 0 {
		return true
	}
	return s.iNZ[i] == 0 && s.pNZ[i] == 0 && s.pushes[i] >= int64(s.w)
}
