package predictor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"packetgame/internal/codec"
)

// packetSeq builds a GOP-shaped packet sequence for window tests.
func packetSeq(n int) []*codec.Packet {
	pkts := make([]*codec.Packet, n)
	for i := range pkts {
		p := &codec.Packet{Type: codec.PictureP, Size: 1000 + i*37}
		if i%25 == 0 {
			p.Type = codec.PictureI
			p.Size *= 8
		}
		pkts[i] = p
	}
	return pkts
}

// randFeats builds a batch of random features matching cfg's enabled views.
func randFeats(cfg Config, n int, rng *rand.Rand) []Features {
	cfg = cfg.withDefaults()
	out := make([]Features, n)
	for i := range out {
		f := Features{Temporal: rng.Float64()}
		f.ISizes = make([]float64, cfg.Window)
		f.PSizes = make([]float64, cfg.Window)
		for j := 0; j < cfg.Window; j++ {
			f.ISizes[j] = rng.Float64()
			f.PSizes[j] = rng.Float64()
		}
		f.Pict[rng.Intn(3)] = 1
		out[i] = f
	}
	return out
}

// maxErrVsBatch compares PredictInto-style output against PredictBatch.
func maxErrVsBatch(got []float64, want [][]float64, tasks int) float64 {
	var worst float64
	for i := range want {
		for j := 0; j < tasks; j++ {
			if d := math.Abs(got[i*tasks+j] - want[i][j]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestPredictIntoMatchesPredictBatch is the fast-path equivalence property
// test: across window lengths, view ablations, and multi-task heads, the
// compiled float32 batch must match the float64 reference within float32
// rounding (sigmoid outputs, so absolute error is the right metric).
func TestPredictIntoMatchesPredictBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		name string
		cfg  Config
	}{
		{"default", DefaultConfig()},
		{"w1", Config{Window: 1, UseIView: true, UsePView: true, UseTemporal: true}},
		{"w2", Config{Window: 2, UseIView: true, UsePView: true}},
		{"w25", Config{Window: 25, UseIView: true, UsePView: true, UseTemporal: true}},
		{"iview-only", Config{UseIView: true}},
		{"pview-temporal", Config{UsePView: true, UseTemporal: true}},
		{"temporal-only", Config{UseTemporal: true}},
		{"multi-task", Config{UseIView: true, UsePView: true, UseTemporal: true, Tasks: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Seed = rng.Int63()
			p, err := New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			tasks := p.Config().Tasks
			for _, n := range []int{1, 7, 128} {
				feats := randFeats(tc.cfg, n, rng)
				want := p.PredictBatch(feats)
				got := make([]float64, n*tasks)
				if err := p.PredictInto(feats, got); err != nil {
					t.Fatalf("PredictInto: %v", err)
				}
				if worst := maxErrVsBatch(got, want, tasks); worst > 1e-6 {
					t.Fatalf("n=%d: fast path max abs err %g vs PredictBatch", n, worst)
				}
			}
		})
	}
}

// TestPredictIntoZeroAlloc: the steady-state batched forward allocates
// nothing (pools are warm after the first call).
func TestPredictIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	rng := rand.New(rand.NewSource(23))
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Compile(); err != nil {
		t.Fatal(err)
	}
	const n = 32
	feats := randFeats(p.Config(), n, rng)
	out := make([]float64, n)
	if err := p.PredictInto(feats, out); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := p.PredictInto(feats, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PredictInto allocates %v times per run, want 0", allocs)
	}
}

// TestWindowZeroAlloc: Push and Features are allocation-free after
// construction — the ring's double-write keeps the views contiguous.
func TestWindowZeroAlloc(t *testing.T) {
	w := NewWindow(5)
	pkts := packetSeq(64)
	for _, p := range pkts {
		w.Push(p)
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		w.Push(pkts[i%len(pkts)])
		f := w.Features(0.5)
		if len(f.ISizes) != 5 || len(f.PSizes) != 5 {
			t.Fatal("bad view length")
		}
		i++
	})
	if allocs != 0 {
		t.Fatalf("Push+Features allocates %v times per run, want 0", allocs)
	}
}

// TestFastPathInvalidatedByTraining: weight changes via Train, Trainer.Step,
// and Load must drop the compiled snapshot, so the fast path tracks the
// current weights instead of serving stale compilations.
func TestFastPathInvalidatedByTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	cfg := DefaultConfig()
	cfg.Seed = 9
	newP := func() *Predictor {
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	check := func(name string, p *Predictor, mutate func(p *Predictor)) {
		feats := randFeats(cfg, 16, rng)
		out := make([]float64, 16)
		if err := p.PredictInto(feats, out); err != nil { // compile against old weights
			t.Fatalf("%s: %v", name, err)
		}
		mutate(p)
		want := p.PredictBatch(feats)
		if err := p.PredictInto(feats, out); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if worst := maxErrVsBatch(out, want, 1); worst > 1e-5 {
			t.Fatalf("%s: fast path stale after weight change (max err %g)", name, worst)
		}
	}
	samples := synthSamples(64, cfg.Window, 1, 31)
	check("Train", newP(), func(p *Predictor) {
		if _, err := p.Train(samples, TrainOptions{Epochs: 2, Seed: 5}); err != nil {
			t.Fatal(err)
		}
	})
	check("Trainer.Step", newP(), func(p *Predictor) {
		if _, err := NewTrainer(p, 0.01).Step(samples[:16]); err != nil {
			t.Fatal(err)
		}
	})
	check("Load", newP(), func(p *Predictor) {
		donor := newP()
		if _, err := donor.Train(samples, TrainOptions{Epochs: 2, Seed: 6}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := donor.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := p.Load(&buf); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPredictIntoValidation: malformed windows and short outputs error
// instead of corrupting the packed batch.
func TestPredictIntoValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	feats := randFeats(p.Config(), 4, rng)
	if err := p.PredictInto(feats, make([]float64, 3)); err == nil {
		t.Fatal("expected error for short out buffer")
	}
	bad := append([]Features(nil), feats...)
	bad[2].ISizes = bad[2].ISizes[:3]
	if err := p.PredictInto(bad, make([]float64, 4)); err == nil {
		t.Fatal("expected error for wrong I-window length")
	}
	bad = append([]Features(nil), feats...)
	bad[1].PSizes = nil
	if err := p.PredictInto(bad, make([]float64, 4)); err == nil {
		t.Fatal("expected error for missing P-window")
	}
	if err := p.PredictInto(nil, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
}

// TestSlabCloneInto: slab clones are detached from their sources and from
// each other, survive slab growth, and Reset recycles storage.
func TestSlabCloneInto(t *testing.T) {
	s := &Slab{}
	src := Features{ISizes: []float64{1, 2, 3}, PSizes: []float64{4, 5, 6}, Temporal: 0.5}
	clones := make([]Features, 0, 2000)
	for i := 0; i < 2000; i++ { // force multiple chunks
		clones = append(clones, s.CloneInto(src))
	}
	src.ISizes[0] = 99 // mutating the source must not reach the clones
	for i, c := range clones {
		if c.ISizes[0] != 1 || c.PSizes[2] != 6 || c.Temporal != 0.5 {
			t.Fatalf("clone %d corrupted: %+v", i, c)
		}
	}
	// Alloc'd slices are capacity-capped: appending must not clobber later
	// slab contents.
	a := s.Alloc(2)
	b := s.Alloc(2)
	_ = append(a, 7)
	if b[0] == 7 {
		t.Fatal("append to a capacity-capped slab slice clobbered its neighbor")
	}

	s.Reset()
	warm := testing.AllocsPerRun(10, func() {
		s.CloneInto(src)
		s.Reset()
	})
	if warm != 0 {
		t.Fatalf("recycled slab allocates %v times per clone round, want 0", warm)
	}
}
