package predictor

import (
	"fmt"
	"sync"

	"packetgame/internal/nn"
)

// This file is the predictor's batched inference fast path (§5.2 deployment
// budget: the plug-in must cost orders of magnitude less than the decodes it
// saves). The trained multi-view network is compiled once into flat float32
// graphs (nn.Compile); every gating round then packs all m streams' feature
// windows into one [m × views × w] batch, runs the two towers and the head
// through the fused kernels, and writes confidences into caller scratch.
// All round-scoped buffers come from sync.Pools, so the steady-state path
// performs zero allocations and is safe for concurrent callers as long as
// the weights are frozen (the gate serializes training against prediction).

// fastPath is one compiled snapshot of the predictor's weights.
type fastPath struct {
	iTower *nn.Compiled
	pTower *nn.Compiled
	head   *nn.Compiled
}

func (p *Predictor) compileFast() (*fastPath, error) {
	fp := &fastPath{}
	var err error
	if p.iTower != nil {
		if fp.iTower, err = nn.Compile(p.iTower, []int{1, p.cfg.Window}); err != nil {
			return nil, err
		}
	}
	if p.pTower != nil {
		if fp.pTower, err = nn.Compile(p.pTower, []int{1, p.cfg.Window}); err != nil {
			return nil, err
		}
	}
	if fp.head, err = nn.Compile(p.head, []int{p.fusedDim}); err != nil {
		return nil, err
	}
	return fp, nil
}

// fast returns the compiled snapshot, rebuilding lazily after any weight
// change (Train, Trainer.Step, Load invalidate it).
func (p *Predictor) fast() (*fastPath, error) {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	if p.fp == nil {
		fp, err := p.compileFast()
		if err != nil {
			return nil, err
		}
		p.fp = fp
	}
	return p.fp, nil
}

// invalidateFast drops the compiled snapshot so the next fast-path call
// recompiles against the current weights, and advances the weights version.
func (p *Predictor) invalidateFast() {
	p.fpMu.Lock()
	p.fp = nil
	p.version++
	p.fpMu.Unlock()
}

// Version identifies the current weights: it advances on every mutation
// (Train, Trainer.Step, Load). Score caches key cached confidences on it —
// a cached output is reusable only while the version that produced it is
// still current, since the compiled forward is deterministic for fixed
// weights and input.
func (p *Predictor) Version() uint64 {
	p.fpMu.Lock()
	defer p.fpMu.Unlock()
	return p.version
}

// Compile eagerly builds the float32 inference graph (otherwise built on the
// first PredictInto) and reports any compilation error up front.
func (p *Predictor) Compile() error {
	_, err := p.fast()
	return err
}

// batchScratch holds one round's packed batch buffers.
type batchScratch struct {
	xi, xp, iOut, pOut, fused, conf []float32
}

var batchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

func grow32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// PredictInto runs the batched compiled forward for feats, writing the
// [len(feats) × Tasks] confidences row-major into out. It allocates nothing
// in steady state and matches forwardBatch to float32 precision (the
// equivalence is property-tested). Feature windows must have the model's
// window length for every enabled size view.
func (p *Predictor) PredictInto(feats []Features, out []float64) error {
	fp, err := p.fast()
	if err != nil {
		return err
	}
	n := len(feats)
	if n == 0 {
		return nil
	}
	w, cu, tasks := p.cfg.Window, p.cfg.ConvUnits, p.cfg.Tasks
	if len(out) < n*tasks {
		return fmt.Errorf("predictor: out holds %d values, batch needs %d", len(out), n*tasks)
	}
	for k := range feats {
		if fp.iTower != nil && len(feats[k].ISizes) != w {
			return fmt.Errorf("predictor: sample %d I-window %d, model window %d", k, len(feats[k].ISizes), w)
		}
		if fp.pTower != nil && len(feats[k].PSizes) != w {
			return fmt.Errorf("predictor: sample %d P-window %d, model window %d", k, len(feats[k].PSizes), w)
		}
	}
	sc := batchPool.Get().(*batchScratch)
	var iOut, pOut []float32
	if fp.iTower != nil {
		sc.xi = grow32(sc.xi, n*w)
		for k := range feats {
			row := sc.xi[k*w : (k+1)*w]
			for j, v := range feats[k].ISizes {
				row[j] = float32(v)
			}
		}
		sc.iOut = grow32(sc.iOut, n*cu)
		fp.iTower.Forward(n, sc.xi, sc.iOut)
		iOut = sc.iOut
	}
	if fp.pTower != nil {
		sc.xp = grow32(sc.xp, n*w)
		for k := range feats {
			row := sc.xp[k*w : (k+1)*w]
			for j, v := range feats[k].PSizes {
				row[j] = float32(v)
			}
		}
		sc.pOut = grow32(sc.pOut, n*cu)
		fp.pTower.Forward(n, sc.xp, sc.pOut)
		pOut = sc.pOut
	}
	sc.fused = grow32(sc.fused, n*p.fusedDim)
	for k := range feats {
		off := k * p.fusedDim
		if iOut != nil {
			copy(sc.fused[off:off+cu], iOut[k*cu:(k+1)*cu])
			off += cu
		}
		if pOut != nil {
			copy(sc.fused[off:off+cu], pOut[k*cu:(k+1)*cu])
			off += cu
		}
		if p.cfg.UseTemporal {
			sc.fused[off] = float32(feats[k].Temporal)
			off++
		}
		sc.fused[off] = float32(feats[k].Pict[0])
		sc.fused[off+1] = float32(feats[k].Pict[1])
		sc.fused[off+2] = float32(feats[k].Pict[2])
	}
	sc.conf = grow32(sc.conf, n*tasks)
	fp.head.Forward(n, sc.fused, sc.conf)
	for i, v := range sc.conf[:n*tasks] {
		out[i] = float64(v)
	}
	batchPool.Put(sc)
	return nil
}

var slabPool = sync.Pool{New: func() interface{} { return new(Slab) }}

// GetSlab returns a recycled feature slab for round-scoped Features
// retention (online learning keeps the decision features until feedback).
func GetSlab() *Slab { return slabPool.Get().(*Slab) }

// PutSlab resets and recycles a slab once its round has retired.
func PutSlab(s *Slab) {
	s.Reset()
	slabPool.Put(s)
}
