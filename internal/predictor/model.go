package predictor

import (
	"fmt"
	"io"
	"math/rand"
	"sync"

	"packetgame/internal/nn"
)

// Config parameterizes the contextual predictor. Zero values take the
// paper's defaults (§6.1): window 5, 2 conv layers of 32 units, 128 dense
// units, single task.
type Config struct {
	// Window is the temporal window length w.
	Window int
	// ConvUnits is the number of filters per conv layer.
	ConvUnits int
	// ConvLayers is the number of Conv1D+ReLU blocks per view tower.
	ConvLayers int
	// DenseUnits is the width of the fusion layer.
	DenseUnits int
	// Tasks is the number of output heads (multi-task extension, §5.2).
	Tasks int
	// UseIView / UsePView enable the two size views. The paper drops a
	// size view for intra-only codecs (Fig 14) and studies each alone in
	// ablations.
	UseIView, UsePView bool
	// UseTemporal fuses the temporal estimator output (view #3). Disabling
	// it yields the "Contextual" ablation of Table 3.
	UseTemporal bool
	// Seed initializes the weights.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 5
	}
	if c.ConvUnits == 0 {
		c.ConvUnits = 32
	}
	if c.ConvLayers == 0 {
		c.ConvLayers = 2
	}
	if c.DenseUnits == 0 {
		c.DenseUnits = 128
	}
	if c.Tasks == 0 {
		c.Tasks = 1
	}
	return c
}

// DefaultConfig returns the paper's hyper-parameters with both size views
// and the temporal fusion enabled.
func DefaultConfig() Config {
	return Config{UseIView: true, UsePView: true, UseTemporal: true}.withDefaults()
}

// Predictor is the multi-view contextual predictor.
type Predictor struct {
	cfg Config

	iTower *nn.Sequential // view #1 embedding
	pTower *nn.Sequential // view #2 embedding
	head   *nn.Sequential // fusion dense layers + sigmoid

	fusedDim int

	// Compiled inference snapshot, built lazily by the fast path and
	// dropped whenever the weights change; version counts those weight
	// changes so score caches can tell a stale confidence from a fresh
	// one. Guarded by fpMu.
	fpMu    sync.Mutex
	fp      *fastPath
	version uint64
}

// New builds a predictor from the config.
func New(cfg Config) (*Predictor, error) {
	cfg = cfg.withDefaults()
	if !cfg.UseIView && !cfg.UsePView && !cfg.UseTemporal {
		return nil, fmt.Errorf("predictor: at least one view must be enabled")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7919))
	p := &Predictor{cfg: cfg}

	buildTower := func(name string) *nn.Sequential {
		var layers []nn.Layer
		l := cfg.Window
		in := 1
		for i := 0; i < cfg.ConvLayers; i++ {
			k := 3
			if k > l {
				k = l
			}
			layers = append(layers,
				nn.NewConv1D(fmt.Sprintf("%s.conv%d", name, i), in, cfg.ConvUnits, k, rng),
				nn.NewReLU(fmt.Sprintf("%s.relu%d", name, i)))
			l = l - k + 1
			in = cfg.ConvUnits
		}
		layers = append(layers, nn.NewGlobalMaxPool1D(name+".pool"))
		return nn.NewSequential(name, layers...)
	}

	fused := 3 // picture-type one-hot always joins the fusion
	if cfg.UseIView {
		p.iTower = buildTower("iview")
		fused += cfg.ConvUnits
	}
	if cfg.UsePView {
		p.pTower = buildTower("pview")
		fused += cfg.ConvUnits
	}
	if cfg.UseTemporal {
		fused++
	}
	p.fusedDim = fused
	p.head = nn.NewSequential("head",
		nn.NewDense("head.fc1", fused, cfg.DenseUnits, rng),
		nn.NewReLU("head.relu"),
		nn.NewDense("head.out", cfg.DenseUnits, cfg.Tasks, rng),
		nn.NewSigmoid("head.sigmoid"),
	)
	return p, nil
}

// Config returns the effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Params returns all trainable parameters.
func (p *Predictor) Params() []*nn.Param {
	var ps []*nn.Param
	if p.iTower != nil {
		ps = append(ps, p.iTower.Params()...)
	}
	if p.pTower != nil {
		ps = append(ps, p.pTower.Params()...)
	}
	return append(ps, p.head.Params()...)
}

// NumParams returns the trainable parameter count.
func (p *Predictor) NumParams() int { return nn.NumParams(p.Params()) }

// FLOPs returns floating-point operations per single-sample inference,
// the paper's Tab 4 overhead metric.
func (p *Predictor) FLOPs() int64 {
	var f int64
	if p.iTower != nil {
		f += p.iTower.FLOPs([]int{1, p.cfg.Window})
	}
	if p.pTower != nil {
		f += p.pTower.FLOPs([]int{1, p.cfg.Window})
	}
	return f + p.head.FLOPs([]int{p.fusedDim})
}

// forwardBatch runs the full forward pass for a batch of features and
// returns the [N, Tasks] prediction tensor. When train is true the
// intermediate activations are retained for backwardBatch.
func (p *Predictor) forwardBatch(batch []Features) *nn.Tensor {
	n := len(batch)
	w := p.cfg.Window
	var iOut, pOut *nn.Tensor
	if p.iTower != nil {
		xi := nn.NewTensor(n, 1, w)
		for bi, f := range batch {
			copy(xi.Data[bi*w:(bi+1)*w], f.ISizes)
		}
		iOut = p.iTower.Forward(xi)
	}
	if p.pTower != nil {
		xp := nn.NewTensor(n, 1, w)
		for bi, f := range batch {
			copy(xp.Data[bi*w:(bi+1)*w], f.PSizes)
		}
		pOut = p.pTower.Forward(xp)
	}
	fused := nn.NewTensor(n, p.fusedDim)
	for bi, f := range batch {
		off := bi * p.fusedDim
		if iOut != nil {
			copy(fused.Data[off:off+p.cfg.ConvUnits], iOut.Data[bi*p.cfg.ConvUnits:(bi+1)*p.cfg.ConvUnits])
			off += p.cfg.ConvUnits
		}
		if pOut != nil {
			copy(fused.Data[off:off+p.cfg.ConvUnits], pOut.Data[bi*p.cfg.ConvUnits:(bi+1)*p.cfg.ConvUnits])
			off += p.cfg.ConvUnits
		}
		if p.cfg.UseTemporal {
			fused.Data[off] = f.Temporal
			off++
		}
		fused.Data[off] = f.Pict[0]
		fused.Data[off+1] = f.Pict[1]
		fused.Data[off+2] = f.Pict[2]
	}
	return p.head.Forward(fused)
}

// backwardBatch propagates the loss gradient through head and towers.
// It must follow a forwardBatch with the same batch size.
func (p *Predictor) backwardBatch(n int, grad *nn.Tensor) {
	gFused := p.head.Backward(grad)
	cu := p.cfg.ConvUnits
	off := 0
	if p.iTower != nil {
		gi := nn.NewTensor(n, cu)
		for bi := 0; bi < n; bi++ {
			copy(gi.Data[bi*cu:(bi+1)*cu], gFused.Data[bi*p.fusedDim+off:bi*p.fusedDim+off+cu])
		}
		p.iTower.Backward(gi)
		off += cu
	}
	if p.pTower != nil {
		gp := nn.NewTensor(n, cu)
		for bi := 0; bi < n; bi++ {
			copy(gp.Data[bi*cu:(bi+1)*cu], gFused.Data[bi*p.fusedDim+off:bi*p.fusedDim+off+cu])
		}
		p.pTower.Backward(gp)
	}
	// Temporal and picture-type inputs are leaves: their gradients stop.
}

// Predict returns the gating confidences (one per task) for a single
// feature vector. The returned slice aliases an internal buffer that is
// overwritten by the next forward pass: copy it if you need to retain it.
// Not safe for concurrent use; use PredictBatch for bulk evaluation.
func (p *Predictor) Predict(f Features) []float64 {
	out := p.forwardBatch([]Features{f})
	return out.Data[:p.cfg.Tasks]
}

// PredictBatch returns an [N][Tasks] confidence matrix.
func (p *Predictor) PredictBatch(batch []Features) [][]float64 {
	out := p.forwardBatch(batch)
	res := make([][]float64, len(batch))
	for i := range res {
		res[i] = append([]float64(nil), out.Data[i*p.cfg.Tasks:(i+1)*p.cfg.Tasks]...)
	}
	return res
}

// Save writes the predictor weights as a binary runtime file.
func (p *Predictor) Save(w io.Writer) error { return nn.SaveParams(w, p.Params()) }

// Load restores weights produced by Save on an identically configured
// predictor.
func (p *Predictor) Load(r io.Reader) error {
	if err := nn.LoadParams(r, p.Params()); err != nil {
		return err
	}
	p.invalidateFast()
	return nil
}
