package predictor

import (
	"math/rand"
	"testing"

	"packetgame/internal/codec"
)

// randPacket draws a packet whose metadata exercises the store's change
// detection: constant-size runs (cache-friendly), zero-size runs (poison),
// and picture-type churn.
func randPacket(rng *rand.Rand, constSize int) *codec.Packet {
	p := &codec.Packet{}
	switch rng.Intn(10) {
	case 0:
		p.Type = codec.PictureI
	case 1:
		p.Type = codec.PictureB
	default:
		p.Type = codec.PictureP
	}
	switch rng.Intn(4) {
	case 0:
		p.Size = constSize // repeated value: no feature change once the ring fills
	case 1:
		p.Size = 0 // zero-size run: poisons the window
	default:
		p.Size = 100 + rng.Intn(5000)
	}
	return p
}

func featuresEqual(a, b Features) bool {
	if a.Temporal != b.Temporal || a.Pict != b.Pict {
		return false
	}
	if len(a.ISizes) != len(b.ISizes) || len(a.PSizes) != len(b.PSizes) {
		return false
	}
	for i := range a.ISizes {
		if a.ISizes[i] != b.ISizes[i] {
			return false
		}
	}
	for i := range a.PSizes {
		if a.PSizes[i] != b.PSizes[i] {
			return false
		}
	}
	return true
}

// TestStoreMatchesWindows drives a Store and a fleet of standalone Windows
// with identical random push sequences and demands bit-identical Features
// views, Poisoned verdicts, and push counts after every push — the SoA
// store must be observationally indistinguishable from per-stream windows.
// It also enforces the epoch contract: the epoch advances exactly when the
// Features view content changed.
func TestStoreMatchesWindows(t *testing.T) {
	const (
		n     = 7
		w     = 5
		steps = 4000
	)
	rng := rand.New(rand.NewSource(42))
	st := NewStore(n, w)
	wins := make([]*Window, n)
	for i := range wins {
		wins[i] = NewWindow(w)
	}
	if st.W() != w || st.Streams() != n {
		t.Fatalf("store shape = (%d, %d), want (%d, %d)", st.Streams(), st.W(), n, w)
	}

	prev := make([]Features, n) // deep copy of last Features view per stream
	havePrev := make([]bool, n)
	for s := 0; s < steps; s++ {
		i := rng.Intn(n)
		p := randPacket(rng, 777)
		epochBefore := st.Epoch(i)
		st.Push(i, p)
		wins[i].Push(p)

		temporal := rng.Float64()
		got := st.Features(i, temporal)
		want := wins[i].Features(temporal)
		if !featuresEqual(got, want) {
			t.Fatalf("step %d stream %d: store features %+v != window features %+v", s, i, got, want)
		}
		if gp, wp := st.Poisoned(i), wins[i].Poisoned(); gp != wp {
			t.Fatalf("step %d stream %d: store poisoned=%v, window poisoned=%v", s, i, gp, wp)
		}
		if gp, wp := st.Pushes(i), wins[i].Pushes(); gp != wp {
			t.Fatalf("step %d stream %d: store pushes=%d, window pushes=%d", s, i, gp, wp)
		}

		// Epoch contract: advanced iff the Features-visible content moved.
		changed := !havePrev[i] || !featuresEqual(stripTemporal(got), stripTemporal(prev[i]))
		advanced := st.Epoch(i) != epochBefore
		if changed && !advanced {
			t.Fatalf("step %d stream %d: features changed but epoch stayed %d", s, i, epochBefore)
		}
		if !changed && advanced {
			t.Fatalf("step %d stream %d: features unchanged but epoch advanced %d→%d", s, i, epochBefore, st.Epoch(i))
		}
		prev[i] = got.Clone()
		havePrev[i] = true
	}
}

// stripTemporal zeroes the temporal fusion input, which is not part of the
// store's change detection (the gate keys its cache on it separately).
func stripTemporal(f Features) Features {
	f.Temporal = 0
	return f
}

// TestStoreEpochStableUnderConstantInput pins the cache-hit scenario the
// scale benchmark relies on: a stream pushing the same (type, size) packet
// every round stops advancing its epoch once the rings are saturated.
func TestStoreEpochStableUnderConstantInput(t *testing.T) {
	const w = 5
	st := NewStore(1, w)
	p := &codec.Packet{Type: codec.PictureP, Size: 1234}
	// Saturation needs w+1 identical pushes (double-write rings).
	for k := 0; k < w+1; k++ {
		st.Push(0, p)
	}
	e := st.Epoch(0)
	for k := 0; k < 50; k++ {
		st.Push(0, p)
		if st.Epoch(0) != e {
			t.Fatalf("push %d: epoch advanced %d→%d under constant input", k, e, st.Epoch(0))
		}
	}
	// Any visible change must advance it again.
	st.Push(0, &codec.Packet{Type: codec.PictureP, Size: 9999})
	if st.Epoch(0) == e {
		t.Fatalf("epoch did not advance on size change")
	}
	e = st.Epoch(0)
	st.Push(0, &codec.Packet{Type: codec.PictureI, Size: 9999})
	if st.Epoch(0) == e {
		t.Fatalf("epoch did not advance on picture-type change")
	}
}
