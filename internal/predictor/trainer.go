package predictor

import (
	"fmt"

	"packetgame/internal/nn"
)

// Trainer performs incremental (online) parameter updates on a predictor,
// keeping RMSprop state across steps. The paper trains offline and deploys
// frozen weights, listing online optimization as future work (§5.2); this
// trainer implements that extension so the gate can keep adapting to
// content drift from its own redundancy feedback.
type Trainer struct {
	p   *Predictor
	opt *nn.RMSprop
}

// NewTrainer creates a trainer with the given learning rate (0 = paper
// default 0.001).
func NewTrainer(p *Predictor, lr float64) *Trainer {
	return &Trainer{p: p, opt: nn.NewRMSprop(lr)}
}

// Step applies one gradient update on a minibatch and returns its loss.
func (t *Trainer) Step(batch []Sample) (float64, error) {
	if len(batch) == 0 {
		return 0, fmt.Errorf("predictor: empty online batch")
	}
	tasks := t.p.cfg.Tasks
	feats := make([]Features, len(batch))
	target := nn.NewTensor(len(batch), tasks)
	for i, s := range batch {
		if len(s.Labels) != tasks {
			return 0, fmt.Errorf("predictor: online sample %d has %d labels, model has %d tasks",
				i, len(s.Labels), tasks)
		}
		feats[i] = s.F
		copy(target.Data[i*tasks:(i+1)*tasks], s.Labels)
	}
	pred := t.p.forwardBatch(feats)
	loss, grad := nn.BCE(pred, target)
	nn.ZeroGrads(t.p.Params())
	t.p.backwardBatch(len(batch), grad)
	t.opt.Step(t.p.Params())
	t.p.invalidateFast()
	return loss, nil
}
