package predictor

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"packetgame/internal/codec"
)

func TestNormalizeSize(t *testing.T) {
	if NormalizeSize(0) != 0 || NormalizeSize(-5) != 0 {
		t.Error("nonpositive sizes must map to 0")
	}
	small, big := NormalizeSize(500), NormalizeSize(500_000)
	if !(0 < small && small < big && big < 1.0) {
		t.Errorf("ordering violated: small=%v big=%v", small, big)
	}
}

func TestWindowPushAndFeatures(t *testing.T) {
	w := NewWindow(3)
	if w.W() != 3 {
		t.Fatalf("W = %d", w.W())
	}
	w.Push(&codec.Packet{Type: codec.PictureI, Size: 1000})
	w.Push(&codec.Packet{Type: codec.PictureP, Size: 100})
	w.Push(&codec.Packet{Type: codec.PictureP, Size: 200})
	f := w.Features(0.7)
	if f.Temporal != 0.7 {
		t.Errorf("temporal = %v", f.Temporal)
	}
	// Last pushed was P: one-hot must mark P.
	if f.Pict != [3]float64{0, 1, 0} {
		t.Errorf("pict = %v", f.Pict)
	}
	// I view: only one I seen, at the end.
	if f.ISizes[0] != 0 || f.ISizes[1] != 0 || f.ISizes[2] != NormalizeSize(1000) {
		t.Errorf("ISizes = %v", f.ISizes)
	}
	// P view: two Ps, most recent last.
	if f.PSizes[1] != NormalizeSize(100) || f.PSizes[2] != NormalizeSize(200) {
		t.Errorf("PSizes = %v", f.PSizes)
	}
}

func TestWindowEvictsOldest(t *testing.T) {
	w := NewWindow(2)
	for _, size := range []int{10, 20, 30} {
		w.Push(&codec.Packet{Type: codec.PictureP, Size: size})
	}
	f := w.Features(0)
	if f.PSizes[0] != NormalizeSize(20) || f.PSizes[1] != NormalizeSize(30) {
		t.Errorf("PSizes = %v, want sizes 20,30", f.PSizes)
	}
}

func TestWindowMinLength(t *testing.T) {
	if NewWindow(0).W() != 1 {
		t.Error("window must clamp to 1")
	}
}

func TestFeaturesClone(t *testing.T) {
	w := NewWindow(2)
	w.Push(&codec.Packet{Type: codec.PictureI, Size: 100})
	f := w.Features(0).Clone()
	w.Push(&codec.Packet{Type: codec.PictureI, Size: 900})
	if f.ISizes[1] != NormalizeSize(100) {
		t.Error("Clone must not alias the window buffers")
	}
}

func TestNewValidatesViews(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("all views disabled must error")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Window != 5 || cfg.ConvUnits != 32 || cfg.ConvLayers != 2 ||
		cfg.DenseUnits != 128 || cfg.Tasks != 1 {
		t.Errorf("default config = %+v", cfg)
	}
	if !cfg.UseIView || !cfg.UsePView || !cfg.UseTemporal {
		t.Error("default config must enable all three views")
	}
}

func TestPredictShapeAndRange(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	f := Features{ISizes: make([]float64, 5), PSizes: make([]float64, 5), Temporal: 0.3}
	f.Pict[1] = 1
	out := p.Predict(f)
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if out[0] <= 0 || out[0] >= 1 {
		t.Errorf("confidence %v outside (0,1)", out[0])
	}
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mk := func() Features {
		f := Features{ISizes: make([]float64, 5), PSizes: make([]float64, 5), Temporal: rng.Float64()}
		for i := range f.ISizes {
			f.ISizes[i] = rng.Float64()
			f.PSizes[i] = rng.Float64()
		}
		f.Pict[rng.Intn(3)] = 1
		return f
	}
	fs := []Features{mk(), mk(), mk()}
	batch := p.PredictBatch(fs)
	for i, f := range fs {
		single := p.Predict(f)
		if math.Abs(batch[i][0]-single[0]) > 1e-12 {
			t.Errorf("sample %d: batch %v vs single %v", i, batch[i][0], single[0])
		}
	}
}

// synthSamples builds a learnable dataset: the label is 1 when the recent
// P-sizes are large (content change), matching the encoder's size coupling.
func synthSamples(n, w int, tasks int, seed int64) []Sample {
	rng := rand.New(rand.NewSource(seed))
	samples := make([]Sample, n)
	for i := range samples {
		f := Features{ISizes: make([]float64, w), PSizes: make([]float64, w)}
		positive := rng.Intn(2) == 1
		for j := 0; j < w; j++ {
			f.ISizes[j] = 0.55 + rng.NormFloat64()*0.03
			if positive {
				f.PSizes[j] = 0.52 + rng.NormFloat64()*0.02
			} else {
				f.PSizes[j] = 0.38 + rng.NormFloat64()*0.02
			}
		}
		f.Pict[1] = 1
		f.Temporal = 0.5
		labels := make([]float64, tasks)
		for ti := range labels {
			if positive {
				labels[ti] = 1
			}
		}
		samples[i] = Sample{F: f, Labels: labels}
	}
	return samples
}

func TestTrainingLearnsSizeSignal(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	train := synthSamples(2000, 5, 1, 1)
	test := synthSamples(500, 5, 1, 2)
	if _, err := p.Train(train, TrainOptions{Epochs: 30, BatchSize: 256, LR: 0.005}); err != nil {
		t.Fatal(err)
	}
	acc := p.Evaluate(test, 0.5)[0]
	if acc < 0.95 {
		t.Errorf("test accuracy = %.3f, want ≥0.95 on a separable problem", acc)
	}
}

func TestTrainValidation(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(nil, TrainOptions{}); err == nil {
		t.Error("empty training set must error")
	}
	bad := synthSamples(1, 5, 2, 1) // 2 labels for a 1-task model
	if _, err := p.Train(bad, TrainOptions{}); err == nil {
		t.Error("label-count mismatch must error")
	}
	shortWin := synthSamples(1, 3, 1, 1)
	if _, err := p.Train(shortWin, TrainOptions{}); err == nil {
		t.Error("feature-window mismatch must error")
	}
}

func TestMultiTaskHeads(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Tasks = 2
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	train := synthSamples(1500, 5, 2, 3)
	// Mask task 1 on half the samples: multi-domain training.
	for i := range train {
		if i%2 == 0 {
			train[i].Labels[1] = math.NaN()
		}
	}
	if _, err := p.Train(train, TrainOptions{Epochs: 25, BatchSize: 256, LR: 0.005}); err != nil {
		t.Fatal(err)
	}
	test := synthSamples(400, 5, 2, 4)
	accs := p.Evaluate(test, 0.5)
	if len(accs) != 2 {
		t.Fatalf("accs = %v", accs)
	}
	for ti, acc := range accs {
		if acc < 0.9 {
			t.Errorf("task %d accuracy = %.3f, want ≥0.9", ti, acc)
		}
	}
}

func TestViewAblations(t *testing.T) {
	// A P-view-only and an I-view-only model must build and run; the
	// P-only model should learn the (P-size driven) synthetic signal,
	// the I-only model should not beat chance by much.
	mk := func(iView, pView bool) float64 {
		cfg := DefaultConfig()
		cfg.UseIView, cfg.UsePView = iView, pView
		p, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Train(synthSamples(1500, 5, 1, 5), TrainOptions{Epochs: 20, BatchSize: 256, LR: 0.005}); err != nil {
			t.Fatal(err)
		}
		return p.Evaluate(synthSamples(400, 5, 1, 6), 0.5)[0]
	}
	pOnly := mk(false, true)
	iOnly := mk(true, false)
	if pOnly < 0.85 {
		t.Errorf("P-view-only accuracy = %.3f, want ≥0.85", pOnly)
	}
	if iOnly > pOnly {
		t.Errorf("I-view-only (%.3f) should not beat P-view-only (%.3f) on a P-size signal", iOnly, pOnly)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(synthSamples(500, 5, 1, 7), TrainOptions{Epochs: 5, BatchSize: 128}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99 // different init; load must overwrite
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	f := synthSamples(1, 5, 1, 8)[0].F
	if got, want := b.Predict(f)[0], a.Predict(f)[0]; got != want {
		t.Errorf("loaded model predicts %v, original %v", got, want)
	}
}

func TestFLOPsAndParamsScaleWithWindow(t *testing.T) {
	mk := func(w int) (*Predictor, error) {
		cfg := DefaultConfig()
		cfg.Window = w
		return New(cfg)
	}
	p5, err := mk(5)
	if err != nil {
		t.Fatal(err)
	}
	p25, err := mk(25)
	if err != nil {
		t.Fatal(err)
	}
	if p5.FLOPs() <= 0 || p25.FLOPs() <= p5.FLOPs() {
		t.Errorf("FLOPs: w5=%d w25=%d", p5.FLOPs(), p25.FLOPs())
	}
	if p5.NumParams() <= 0 {
		t.Errorf("NumParams = %d", p5.NumParams())
	}
	// Tiny windows must still build (kernel clamps to window).
	for _, w := range []int{1, 2} {
		if _, err := mk(w); err != nil {
			t.Errorf("window %d: %v", w, err)
		}
	}
}

func TestScores(t *testing.T) {
	p, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	samples := synthSamples(100, 5, 1, 9)
	scores := p.Scores(samples, 0)
	if len(scores) != 100 {
		t.Fatalf("scores len = %d", len(scores))
	}
	for _, s := range scores {
		if s <= 0 || s >= 1 {
			t.Fatalf("score %v outside (0,1)", s)
		}
	}
}

// TestEndToEndStreamLearning trains on a real synthetic camera stream with
// person-counting necessity labels and checks the predictor beats chance by
// a solid margin — the core claim behind Fig 9.
func TestEndToEndStreamLearning(t *testing.T) {
	task := struct{ necessary func(prev, cur int) bool }{func(prev, cur int) bool { return prev != cur }}
	collect := func(seed int64, n int) []Sample {
		st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.6, PersonRate: 0.5},
			codec.EncoderConfig{GOPSize: 25}, seed)
		w := NewWindow(5)
		var samples []Sample
		prev := 0
		for i := 0; i < n; i++ {
			p := st.Next()
			w.Push(p)
			label := 0.0
			if task.necessary(prev, st.LastScene.PersonCount) {
				label = 1
			}
			prev = st.LastScene.PersonCount
			samples = append(samples, Sample{F: w.Features(0).Clone(), Labels: []float64{label}})
		}
		return samples
	}
	train := balance(collect(100, 60000), 0)
	test := balance(collect(200, 30000), 1)
	cfg := DefaultConfig()
	cfg.UseTemporal = false // pure contextual: harder
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Train(train, TrainOptions{Epochs: 60, BatchSize: 256, LR: 0.003}); err != nil {
		t.Fatal(err)
	}
	acc := p.Evaluate(test, 0.5)[0]
	if acc < 0.8 {
		t.Errorf("stream accuracy = %.3f, want ≥0.8 (chance = 0.5)", acc)
	}
}

// balance subsamples to a 1:1 positive:negative ratio (the paper's offline
// protocol) with a deterministic order.
func balance(samples []Sample, seed int64) []Sample {
	var pos, neg []Sample
	for _, s := range samples {
		if s.Labels[0] >= 0.5 {
			pos = append(pos, s)
		} else {
			neg = append(neg, s)
		}
	}
	n := len(pos)
	if len(neg) < n {
		n = len(neg)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pos), func(a, b int) { pos[a], pos[b] = pos[b], pos[a] })
	rng.Shuffle(len(neg), func(a, b int) { neg[a], neg[b] = neg[b], neg[a] })
	out := append(append([]Sample(nil), pos[:n]...), neg[:n]...)
	rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	return out
}
