//go:build race

package predictor

// raceEnabled reports that the race detector is on. sync.Pool intentionally
// drops items under -race to shake out lifecycle bugs, so allocation-count
// tests (testing.AllocsPerRun over pool-backed paths) are skipped; they run
// in the unraced `make test` and `make alloc-smoke` legs instead.
const raceEnabled = true
