package compress

import (
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

func TestGraceDefaults(t *testing.T) {
	g := Grace()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.Name != "Grace" {
		t.Errorf("name = %q", g.Name)
	}
}

func TestValidate(t *testing.T) {
	bad := []Compressor{
		{SizeRatio: 0, DecodeSpeedup: 1},
		{SizeRatio: 1.5, DecodeSpeedup: 1},
		{SizeRatio: 0.5, DecodeSpeedup: 0.5},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
}

func TestApplyShrinksSizeKeepsPayload(t *testing.T) {
	g := Grace()
	st := codec.NewStream(codec.SceneConfig{}, codec.EncoderConfig{GOPSize: 5}, 9)
	p := st.Next()
	orig := p.Size
	g.Apply(p)
	if p.Size >= orig {
		t.Errorf("size %d not reduced from %d", p.Size, orig)
	}
	// Inference-relevant content survives.
	s, err := codec.DecodePayload(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if s != st.LastScene {
		t.Error("compression corrupted the scene payload")
	}
}

func TestApplyFloorsAtOne(t *testing.T) {
	c := Compressor{SizeRatio: 0.001, DecodeSpeedup: 1}
	p := &codec.Packet{Size: 10}
	c.Apply(p)
	if p.Size < 1 {
		t.Errorf("size = %d", p.Size)
	}
}

func TestScaleCosts(t *testing.T) {
	g := Grace()
	scaled := g.ScaleCosts(decode.DefaultCosts)
	if scaled.I >= decode.DefaultCosts.I || scaled.P >= decode.DefaultCosts.P || scaled.B >= decode.DefaultCosts.B {
		t.Errorf("costs not reduced: %+v", scaled)
	}
	wantI := decode.DefaultCosts.I / g.DecodeSpeedup
	if scaled.I != wantI {
		t.Errorf("I = %v, want %v", scaled.I, wantI)
	}
}
