// Package compress models inference-aware video compression (Grace in the
// paper): the codec is tuned for a target inference model rather than human
// perception, shrinking packets (and hence bandwidth and decode work per
// frame) without hurting inference accuracy. Unlike frame filtering it does
// not reduce the number of frames the decoder and model must process.
package compress

import (
	"fmt"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
)

// Compressor rewrites a packet stream with inference-aware compression.
type Compressor struct {
	// Name identifies the technique in reports.
	Name string
	// SizeRatio scales packet sizes (0 < ratio ≤ 1).
	SizeRatio float64
	// DecodeSpeedup divides per-frame decode cost: smaller packets decode
	// faster. Grace-style compression yields a modest speedup because the
	// pixel pipeline still runs per frame.
	DecodeSpeedup float64
}

// Grace returns a Grace-like compressor: ~45% bandwidth saving and a 1.3×
// decode speedup, with no frame filtering.
func Grace() Compressor {
	return Compressor{Name: "Grace", SizeRatio: 0.55, DecodeSpeedup: 1.3}
}

// Validate checks the configuration.
func (c Compressor) Validate() error {
	if c.SizeRatio <= 0 || c.SizeRatio > 1 {
		return fmt.Errorf("compress: SizeRatio %v outside (0,1]", c.SizeRatio)
	}
	if c.DecodeSpeedup < 1 {
		return fmt.Errorf("compress: DecodeSpeedup %v below 1", c.DecodeSpeedup)
	}
	return nil
}

// Apply rewrites one packet in place: the payload semantics (the carried
// scene) are preserved — inference-aware compression loses no inference-
// relevant information — but the metadata size shrinks.
func (c Compressor) Apply(p *codec.Packet) {
	p.Size = int(float64(p.Size) * c.SizeRatio)
	if p.Size < 1 {
		p.Size = 1
	}
}

// ScaleCosts returns the decode cost model under this compression: every
// per-picture cost is divided by the decode speedup.
func (c Compressor) ScaleCosts(base decode.CostModel) decode.CostModel {
	return decode.CostModel{
		I: base.I / c.DecodeSpeedup,
		P: base.P / c.DecodeSpeedup,
		B: base.B / c.DecodeSpeedup,
	}
}
