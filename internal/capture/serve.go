package capture

import (
	"bufio"
	"net"
	"sync"
	"time"

	"packetgame/internal/container"
	"packetgame/internal/stream"
)

// ReplayServer serves a directory of captures as live PGSP sessions: every
// accepted connection gets one session muxing all captures, each replayed
// by its own worker goroutine that preserves that capture's inter-round
// timing (scaled by Speedup). Stream slots are concatenated in capture
// order; round indices are renumbered onto one monotone session counter, so
// concurrently replaying captures interleave as distinct rounds (each round
// carries packets from exactly one capture, the other slots idle) — the
// same shape a bursty multi-source ingest presents to the gate.
type ReplayServer struct {
	captures []*Capture
	infos    []stream.StreamInfo
	base     []int // capture i's first stream slot
	opts     ReplayOptions

	ln   net.Listener
	wg   sync.WaitGroup
	mu   sync.Mutex
	done bool
}

// ServeReplay starts serving the captures on ln. Close stops it.
func ServeReplay(ln net.Listener, captures []*Capture, opts ReplayOptions) (*ReplayServer, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &ReplayServer{captures: captures, opts: opts, ln: ln}
	for _, c := range captures {
		infos, err := c.Meta.Infos()
		if err != nil {
			return nil, err
		}
		s.base = append(s.base, len(s.infos))
		s.infos = append(s.infos, infos...)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listener address.
func (s *ReplayServer) Addr() net.Addr { return s.ln.Addr() }

// Streams returns the muxed session's stream count.
func (s *ReplayServer) Streams() int { return len(s.infos) }

// Close stops accepting and waits for active replays to finish writing.
func (s *ReplayServer) Close() error {
	s.mu.Lock()
	s.done = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *ReplayServer) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = s.serveConn(conn)
		}()
	}
}

// mux serializes frame writes from the per-capture workers onto one
// connection and hands out global round numbers.
type mux struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	round uint64
	body  []byte
	frame []byte
	err   error
}

// emitRound writes one replayed round (all packets of one capture's round)
// as a fresh global round.
func (m *mux) emitRound(base int, r *RecordedRound) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	gr := m.round
	m.round++
	for i, p := range r.Pkts {
		if p == nil {
			continue
		}
		m.body = container.MarshalPacket(m.body[:0], p)
		m.frame = stream.AppendFrame(m.frame[:0], gr, uint32(base+i), m.body)
		if _, err := m.bw.Write(m.frame); err != nil {
			m.err = err
			return err
		}
	}
	m.err = m.bw.Flush()
	return m.err
}

func (s *ReplayServer) serveConn(conn net.Conn) error {
	bw := bufio.NewWriterSize(conn, 64<<10)
	if err := stream.WriteHandshake(bw, s.infos); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	m := &mux{bw: bw}
	var workers sync.WaitGroup
	for ci, c := range s.captures {
		rounds, due, err := schedule(c, s.opts)
		if err != nil {
			return err
		}
		workers.Add(1)
		go func(base int, rounds []RecordedRound, due []time.Duration) {
			defer workers.Done()
			clock := s.opts.Clock
			start := clock.Now()
			for i := range rounds {
				if s.stopped() {
					return
				}
				if d := start.Add(due[i]).Sub(clock.Now()); d > 0 {
					clock.Sleep(d)
				}
				if err := m.emitRound(base, &rounds[i]); err != nil {
					return
				}
			}
		}(s.base[ci], rounds, due)
	}
	workers.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	if _, err := bw.Write(stream.AppendGoodbye(nil, m.round)); err != nil {
		return err
	}
	return bw.Flush()
}

func (s *ReplayServer) stopped() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.done
}
