package capture

import (
	"fmt"
	"io"
	"sort"

	"packetgame/internal/core"
	"packetgame/internal/overload"
	"packetgame/internal/trace"
)

// AuditOptions parameterizes a determinism audit.
type AuditOptions struct {
	// Verbose, when non-nil, receives a line per divergent round (capped
	// at MaxReport).
	Verbose io.Writer
	// MaxReport caps the verbose divergence lines (default 10).
	MaxReport int
}

// AuditResult summarizes a determinism audit.
type AuditResult struct {
	// Rounds is the number of audited rounds (paired packet rounds and
	// decision records).
	Rounds int
	// Divergent counts rounds whose selected set differed from the
	// recorded decision trace.
	Divergent int
	// FirstDivergence is the first divergent round index, or -1.
	FirstDivergence int
	// ExtraRounds / ExtraDecisions count unpaired records (a pipelined or
	// cut-short recording can leave a tail of undecided packets).
	ExtraRounds    int
	ExtraDecisions int
}

// Ok reports whether the audit found the replay bit-identical.
func (r AuditResult) Ok() bool { return r.Divergent == 0 && r.ExtraDecisions == 0 }

// Audit replays a capture's packets through a freshly built gate and diffs
// every round's selected set against the capture's recorded decision trace.
// The gate is reconstructed from the capture's GateMeta; each round's
// effective budget and degradation mode are pinned from the recorded trace
// (overload.Scripted), and the recorded feedback verdicts are fed back, so
// the only free variable is the gate's decision logic itself. Any
// divergence means a behavior change in the gate — exactly what a
// regression audit should fail loudly on.
func Audit(c *Capture, opts AuditOptions) (AuditResult, error) {
	res := AuditResult{FirstDivergence: -1}
	if opts.MaxReport == 0 {
		opts.MaxReport = 10
	}
	gm := c.Meta.Gate
	if gm == nil {
		return res, fmt.Errorf("capture: no gate metadata recorded; this capture cannot be audited")
	}
	if len(c.Decisions) == 0 {
		return res, fmt.Errorf("capture: no decision trace recorded")
	}
	planner := overload.NewScripted(gm.Budget)
	cfg, err := configFromMeta(c.Meta)
	if err != nil {
		return res, err
	}
	cfg.Planner = planner
	gate, err := core.NewGate(cfg)
	if err != nil {
		return res, fmt.Errorf("capture: rebuilding recorded gate: %w", err)
	}

	n := len(c.Rounds)
	if len(c.Decisions) < n {
		n = len(c.Decisions)
	}
	res.ExtraRounds = len(c.Rounds) - n
	res.ExtraDecisions = len(c.Decisions) - n

	var sel []int
	for i := 0; i < n; i++ {
		rec := c.Decisions[i]
		mode, err := overload.ParseMode(rec.Mode)
		if err != nil {
			return res, fmt.Errorf("capture: decision %d: %w", i, err)
		}
		planner.Set(rec.Budget, mode)
		sel, err = gate.DecideAppend(c.Rounds[i].Pkts, sel[:0])
		if err != nil {
			return res, fmt.Errorf("capture: replaying round %d: %w", i, err)
		}
		res.Rounds++

		// Diff the selected set against the recorded one.
		recorded := map[int]trace.Decision{}
		var recSel []int
		for _, d := range rec.Decisions {
			if d.Selected {
				recorded[d.Stream] = d
				recSel = append(recSel, d.Stream)
			}
		}
		if !sameSet(sel, recSel) {
			if res.Divergent == 0 {
				res.FirstDivergence = i
			}
			res.Divergent++
			if opts.Verbose != nil && res.Divergent <= opts.MaxReport {
				fmt.Fprintf(opts.Verbose, "round %d: replay selected %v, recorded %v (B_eff %.3f, mode %s)\n",
					i, sorted(sel), sorted(recSel), rec.Budget, rec.Mode)
			}
		}

		// Feed back the recorded verdicts so the estimator state follows
		// the recorded trajectory. Slots the recording never selected have
		// no verdict; they only occur on divergent rounds, where the audit
		// has already failed — false keeps the replay well-defined.
		necessary := make([]bool, len(sel))
		failed := make([]bool, len(sel))
		deferred := make([]bool, len(sel))
		for k, s := range sel {
			if d, ok := recorded[s]; ok {
				necessary[k] = d.Necessary
				failed[k] = d.Failed
				deferred[k] = d.Deferred
			}
		}
		if err := gate.FeedbackFull(sel, necessary, failed, deferred); err != nil {
			return res, fmt.Errorf("capture: feedback for round %d: %w", i, err)
		}
	}
	return res, nil
}

func sorted(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func sameSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	sa, sb := sorted(a), sorted(b)
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}
