package capture

import (
	"encoding/binary"
	"hash/crc32"
)

// The CRC record discipline (kind·length·crc32·body, all big-endian) is
// shared beyond capture files: the cluster coordinator's fail-over journal
// frames its snapshot/round/membership records the same way so one battle-
// tested reader model — fail cleanly on truncation, corruption, or
// implausible lengths; never over-read — covers both. These helpers are the
// exported, allocation-friendly form of that framing.

// RecordHeaderLen is the fixed framing overhead of one record.
const RecordHeaderLen = recHeaderLen

// AppendRecord appends one framed CRC-protected record to dst.
func AppendRecord(dst []byte, kind uint8, body []byte) []byte {
	hdr := recordHeader(kind, body)
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// recordHeader builds the 9-byte record header for a body.
func recordHeader(kind uint8, body []byte) [recHeaderLen]byte {
	var hdr [recHeaderLen]byte
	hdr[0] = kind
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(body)))
	binary.BigEndian.PutUint32(hdr[5:], crc32.ChecksumIEEE(body))
	return hdr
}

// NextRecord parses the first record from buf and returns its kind, body,
// and the remaining bytes. limit bounds the claimed body length (corrupt
// length fields must not drive huge allocations or over-reads). Errors wrap
// ErrCorrupt; a buffer that ends mid-record is corrupt at this layer —
// callers that tolerate torn tails (journal recovery) distinguish "no full
// header" / "body short" via the returned rest slice being exactly buf.
func NextRecord(buf []byte, limit uint32) (kind uint8, body, rest []byte, err error) {
	if len(buf) < recHeaderLen {
		return 0, nil, buf, corruptf("truncated record header (%d bytes)", len(buf))
	}
	kind = buf[0]
	length := binary.BigEndian.Uint32(buf[1:])
	sum := binary.BigEndian.Uint32(buf[5:])
	if length > limit {
		return 0, nil, buf, corruptf("record kind %d claims %d bytes (limit %d)", kind, length, limit)
	}
	if uint32(len(buf)-recHeaderLen) < length {
		return 0, nil, buf, corruptf("record kind %d truncated: %d of %d body bytes", kind, len(buf)-recHeaderLen, length)
	}
	body = buf[recHeaderLen : recHeaderLen+int(length)]
	if crc32.ChecksumIEEE(body) != sum {
		return 0, nil, buf, corruptf("record kind %d CRC mismatch", kind)
	}
	return kind, body, buf[recHeaderLen+int(length):], nil
}
