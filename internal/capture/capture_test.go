package capture

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"packetgame/internal/codec"
)

// testMeta builds a small session header for synthetic captures.
func testMeta(streams int, gate *GateMeta) SessionMeta {
	m := SessionMeta{Label: "test"}
	for i := 0; i < streams; i++ {
		m.Streams = append(m.Streams, StreamMeta{Codec: "h264", FPS: 25, GOPSize: 25})
	}
	m.Gate = gate
	return m
}

// writeRounds writes `rounds` dense rounds of one packet per stream at the
// given timestamps (len(ts) == rounds).
func writeRounds(t *testing.T, w *Writer, streams int, ts []time.Duration) {
	t.Helper()
	seq := int64(0)
	for r, at := range ts {
		for s := 0; s < streams; s++ {
			p := &codec.Packet{
				StreamID: s, Seq: seq, Type: codec.PictureP, Size: 1000 + 100*s,
				GOPIndex: r % 25, GOPSize: 25, Payload: []byte{1, 2, 3},
			}
			if r%25 == 0 {
				p.Type = codec.PictureI
			}
			if err := w.WritePacket(at, int64(r), p); err != nil {
				t.Fatalf("WritePacket(r=%d s=%d): %v", r, s, err)
			}
			seq++
		}
	}
}

func TestCaptureRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(3, nil))
	if err != nil {
		t.Fatal(err)
	}
	ts := []time.Duration{0, 40 * time.Millisecond, 80 * time.Millisecond, 520 * time.Millisecond}
	writeRounds(t, w, 3, ts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rounds) != 4 {
		t.Fatalf("rounds = %d, want 4", len(c.Rounds))
	}
	for i, r := range c.Rounds {
		if r.TS != ts[i] {
			t.Errorf("round %d TS = %v, want %v", i, r.TS, ts[i])
		}
		if len(r.Pkts) != 3 {
			t.Fatalf("round %d has %d slots", i, len(r.Pkts))
		}
		for s, p := range r.Pkts {
			if p == nil || p.StreamID != s {
				t.Fatalf("round %d slot %d: bad packet %+v", i, s, p)
			}
			if !bytes.Equal(p.Payload, []byte{1, 2, 3}) {
				t.Fatalf("round %d slot %d: payload not preserved", i, s)
			}
		}
	}
	if c.Index == nil {
		t.Fatal("no index")
	}
	if c.Index.Packets != 12 || c.Index.Rounds != 4 {
		t.Fatalf("index says %d packets / %d rounds", c.Index.Packets, c.Index.Rounds)
	}
	if got := c.Index.Duration(); got != 520*time.Millisecond {
		t.Fatalf("index duration %v", got)
	}
}

func TestCaptureStripPayloads(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	w.StripPayloads = true
	writeRounds(t, w, 2, []time.Duration{0, time.Millisecond})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Rounds[0].Pkts[0]
	if len(p.Payload) != 0 {
		t.Fatalf("payload survived stripping: %d bytes", len(p.Payload))
	}
	if p.Size != 1000 {
		t.Fatalf("size metadata lost: %d", p.Size)
	}
}

func TestWriterRejectsRegressingTime(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	p := &codec.Packet{StreamID: 0, Type: codec.PictureP, Size: 10}
	if err := w.WritePacket(time.Second, 5, p); err != nil {
		t.Fatal(err)
	}
	if err := w.WritePacket(time.Millisecond, 6, p); err == nil {
		t.Fatal("regressing timestamp accepted")
	}
	if err := w.WritePacket(time.Second, 4, p); err == nil {
		t.Fatal("regressing round at equal timestamp accepted")
	}
}

func TestReadIndexFastPath(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, &GateMeta{Budget: 3, Window: 5}))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 2, []time.Duration{0, 100 * time.Millisecond})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	meta, idx, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if meta.Gate == nil || meta.Gate.Budget != 3 {
		t.Fatalf("gate meta lost: %+v", meta.Gate)
	}
	if idx.Packets != 4 || idx.Rounds != 2 {
		t.Fatalf("index %+v", idx)
	}
	if len(idx.PerStream) != 2 || idx.PerStream[1].Packets != 2 {
		t.Fatalf("per-stream stats %+v", idx.PerStream)
	}
}

func TestFilterStreamsKeepsSlots(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 4, []time.Duration{0, 10 * time.Millisecond})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.FilterStreams([]int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got.Rounds {
		if r.Pkts[0] != nil || r.Pkts[2] != nil {
			t.Fatal("dropped stream still present")
		}
		if r.Pkts[1] == nil || r.Pkts[3] == nil {
			t.Fatal("kept stream missing")
		}
	}
	if _, err := c.FilterStreams([]int{9}); err == nil {
		t.Fatal("out-of-range stream accepted")
	}
}

func TestSaveRoundtripsFilteredCapture(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	ts := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	writeRounds(t, w, 2, ts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cut := c.FilterWindow(Window{From: time.Second, To: 3 * time.Second}, true)
	if len(cut.Rounds) != 2 {
		t.Fatalf("window kept %d rounds, want 2", len(cut.Rounds))
	}
	if cut.Rounds[0].TS != 0 || cut.Rounds[1].TS != time.Second {
		t.Fatalf("rebase failed: %v %v", cut.Rounds[0].TS, cut.Rounds[1].TS)
	}
	var out bytes.Buffer
	if err := cut.Save(&out); err != nil {
		t.Fatal(err)
	}
	back, err := Load(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rounds) != 2 || back.Rounds[1].TS != time.Second {
		t.Fatalf("saved capture mismatched: %d rounds", len(back.Rounds))
	}
}

func TestAuditRequiresGateMeta(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 2, []time.Duration{0})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(c, AuditOptions{}); err == nil {
		t.Fatal("audit of a packets-only capture should error")
	}
}

// TestAuditDetectsTamperedTrace flips one recorded decision and expects the
// audit to fail loudly — the property the golden corpus test relies on.
func TestAuditDetectsTamperedTrace(t *testing.T) {
	spec := DefaultCorpus()[1] // corpus-steady: small, ungoverned
	var buf bytes.Buffer
	if err := GenerateCorpus(&buf, spec); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: untampered audit passes.
	res, err := Audit(c, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ok() {
		t.Fatalf("clean corpus diverged: %+v", res)
	}
	// Tamper: flip the Selected bit of one mid-capture decision.
	tampered := 40
	flipped := false
	for d := range c.Decisions[tampered].Decisions {
		c.Decisions[tampered].Decisions[d].Selected = !c.Decisions[tampered].Decisions[d].Selected
		flipped = true
		break
	}
	if !flipped {
		t.Fatal("no decision to tamper with")
	}
	res, err = Audit(c, AuditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ok() {
		t.Fatal("tampered trace passed the audit")
	}
	if res.FirstDivergence != tampered {
		t.Fatalf("first divergence at %d, want %d", res.FirstDivergence, tampered)
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 2, []time.Duration{0, time.Millisecond})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(full) - 1, len(full) - footerLen, len(full) / 2, 5, 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d bytes accepted", cut)
		} else if !errors.Is(err, ErrCorrupt) {
			// io errors (unexpected EOF) are fine too, but structural
			// detections must wrap ErrCorrupt; either way it must not pass.
			t.Logf("cut %d: %v", cut, err)
		}
	}
}
