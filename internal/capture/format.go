// Package capture implements PGC, the PacketGame capture container: a
// compact indexed recording of a live PGSP session. A capture holds every
// packet of the session with its arrival timestamp and round index, the
// gate's decision trace (per-round selected set, effective budget B_eff,
// degradation-ladder mode, and feedback verdicts) interleaved at the
// position it was settled, and a trailing index with per-stream metadata
// (packet rate, GOP structure, size histograms, priority tier) so tools can
// map a capture directory without scanning packet bodies.
//
// Captures turn the synthetic-generator-driven test and bench layer into a
// corpus-driven one, the way GopherCap does for PCAPs: replaying a capture
// with its recorded inter-packet timing preserves the bursts that actually
// stress the system (a flat average rate provably flattens them), and
// replaying its packets through a fresh gate while diffing against the
// embedded decision trace is a free determinism audit.
//
// File layout (all integers big-endian):
//
//	magic   "PGC1" (4 bytes)
//	version byte   (currently 1)
//	records until EOF or footer, each:
//	    kind    uint8    // recSession | recPacket | recTrace | recIndex
//	    length  uint32   // body length in bytes
//	    crc     uint32   // CRC32 (IEEE) of the body
//	    body    [length]byte
//	footer  "PGCX" (4 bytes) + uint64 offset of the index record
//
// The first record must be recSession (JSON SessionMeta); the last is
// recIndex (JSON Index), addressed by the footer so indexed opens never
// scan. recPacket bodies are binary:
//
//	stream  uint32
//	round   uint64
//	ts      uint64   // nanoseconds since capture start
//	record  ...      // container.MarshalPacket encoding
//
// recTrace bodies are the JSON encoding of one trace.Round. Every body is
// CRC-protected; a reader must fail cleanly on truncation, corruption, or
// implausible lengths — never panic or over-read (FuzzCaptureContainer).
package capture

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/bits"
	"sync"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/container"
	"packetgame/internal/stream"
	"packetgame/internal/trace"
)

// Magic identifies PGC capture files.
var Magic = [4]byte{'P', 'G', 'C', '1'}

// footerMagic opens the 12-byte footer that addresses the index record.
var footerMagic = [4]byte{'P', 'G', 'C', 'X'}

// Version is the current container version.
const Version = 1

// RecordKind tags one record in a capture.
type RecordKind uint8

const (
	// RecSession is the JSON session header (first record).
	RecSession RecordKind = 1
	// RecPacket is one captured packet with timestamp and round.
	RecPacket RecordKind = 2
	// RecTrace is one decision-trace round (JSON trace.Round).
	RecTrace RecordKind = 3
	// RecIndex is the JSON index (last record).
	RecIndex RecordKind = 4
)

const (
	recHeaderLen = 9
	footerLen    = 12
	// maxJSONBody bounds session/trace/index records; larger means corrupt.
	maxJSONBody = 16 << 20
	// maxPacketBody bounds packet records, matching the PGV/PGSP limits.
	maxPacketBody = 64 << 20
	// packetPrefixLen is the binary prefix of a recPacket body.
	packetPrefixLen = 20
)

// ErrCorrupt wraps every structural failure a capture reader detects, so
// callers can distinguish "bad file" from I/O errors.
var ErrCorrupt = errors.New("capture: corrupt capture")

func corruptf(format string, args ...interface{}) error {
	return fmt.Errorf("%w: "+format, append([]interface{}{ErrCorrupt}, args...)...)
}

// StreamMeta describes one captured stream (mirrors the PGSP handshake).
type StreamMeta struct {
	Codec   string `json:"codec"`
	FPS     int    `json:"fps"`
	GOPSize int    `json:"gop"`
}

// GateMeta pins the gate configuration of the recorded run, enough for an
// audit to rebuild a bit-identical gate. Only deterministic configurations
// are representable: gates with a trained predictor or online learning
// record no GateMeta and cannot be audited from the capture alone.
type GateMeta struct {
	Window          int     `json:"window"`
	Budget          float64 `json:"budget"`
	UseTemporal     bool    `json:"use_temporal"`
	Explore         bool    `json:"explore"`
	DependencyAware bool    `json:"dependency_aware"`
	Priorities      []uint8 `json:"priorities,omitempty"`
	// Governed records that the run planned against an overload governor:
	// an audit must pin each round's B_eff and mode from the decision
	// trace instead of re-running the control loop against wall-clock
	// latencies that will never reproduce.
	Governed bool `json:"governed,omitempty"`
}

// SessionMeta is the capture's session header.
type SessionMeta struct {
	// Label is a free-form capture name.
	Label string `json:"label,omitempty"`
	// StartUnixNanos is the wall-clock capture start (0 for virtual-time
	// captures, whose timestamps are synthetic but exactly reproducible).
	StartUnixNanos int64 `json:"start_unix_nanos,omitempty"`
	// Streams describes each captured stream slot.
	Streams []StreamMeta `json:"streams"`
	// Gate, when present, is the recorded gate configuration for audits.
	Gate *GateMeta `json:"gate,omitempty"`
}

// Infos converts the stream metadata to PGSP handshake entries.
func (m SessionMeta) Infos() ([]stream.StreamInfo, error) {
	infos := make([]stream.StreamInfo, len(m.Streams))
	for i, sm := range m.Streams {
		c, err := codec.ParseCodec(sm.Codec)
		if err != nil {
			return nil, fmt.Errorf("capture: stream %d: %w", i, err)
		}
		infos[i] = stream.StreamInfo{Codec: c, FPS: sm.FPS, GOPSize: sm.GOPSize}
	}
	return infos, nil
}

// sizeHistBuckets is the number of log2 size-histogram buckets: bucket b
// counts packets with Size in [256·2^b, 256·2^(b+1)), with the first and
// last buckets absorbing the tails.
const sizeHistBuckets = 12

// sizeBucket maps a packet size to its histogram bucket.
func sizeBucket(size int) int {
	if size < 256 {
		return 0
	}
	b := bits.Len(uint(size)) - 9 // 256 = 1<<8 → bucket 0 covers len 9
	if b < 0 {
		b = 0
	}
	if b >= sizeHistBuckets {
		b = sizeHistBuckets - 1
	}
	return b
}

// StreamStats is the per-stream index entry.
type StreamStats struct {
	ID        int     `json:"id"`
	Packets   int64   `json:"packets"`
	Bytes     int64   `json:"bytes"` // sum of Size metadata, not payload bytes
	Keyframes int64   `json:"keyframes"`
	GOPSize   int     `json:"gop"`       // largest GOP observed
	MeanRate  float64 `json:"mean_rate"` // packets/second over the stream's span
	SizeMin   int     `json:"size_min"`
	SizeMax   int     `json:"size_max"`
	// SizeHist counts packets per log2 size bucket starting at 256 B.
	SizeHist [sizeHistBuckets]int64 `json:"size_hist"`
	// Tier is the stream's admission-control tier (from GateMeta).
	Tier         uint8 `json:"tier,omitempty"`
	FirstTSNanos int64 `json:"first_ts"`
	LastTSNanos  int64 `json:"last_ts"`
}

// Index is the capture's trailing index.
type Index struct {
	Packets       int64         `json:"packets"`
	Rounds        int64         `json:"rounds"`
	Decisions     int64         `json:"decisions"`
	DurationNanos int64         `json:"duration_nanos"`
	PerStream     []StreamStats `json:"per_stream"`
}

// Duration returns the capture's packet time span.
func (ix Index) Duration() time.Duration { return time.Duration(ix.DurationNanos) }

// Writer writes a PGC capture. Safe for concurrent use: a pipelined
// recording writes packets from the source goroutine while the gate's
// feedback path appends decision-trace rounds.
type Writer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	meta   SessionMeta
	off    int64 // bytes written so far
	buf    []byte
	closed bool

	// StripPayloads drops packet payloads from the capture (metadata-only
	// corpus files: the gate and the replay timing model never read
	// payloads, and committed corpora stay small). Set before the first
	// WritePacket.
	StripPayloads bool

	idx       Index
	stats     []StreamStats
	lastRound int64
	lastTS    time.Duration
	haveRound bool
}

// NewWriter starts a capture with the given session header.
func NewWriter(w io.Writer, meta SessionMeta) (*Writer, error) {
	if len(meta.Streams) == 0 {
		return nil, fmt.Errorf("capture: session has no streams")
	}
	cw := &Writer{w: bufio.NewWriterSize(w, 64<<10), meta: meta}
	cw.stats = make([]StreamStats, len(meta.Streams))
	for i := range cw.stats {
		cw.stats[i] = StreamStats{ID: i, SizeMin: -1}
		if meta.Gate != nil && i < len(meta.Gate.Priorities) {
			cw.stats[i].Tier = meta.Gate.Priorities[i]
		}
	}
	if _, err := cw.w.Write(Magic[:]); err != nil {
		return nil, err
	}
	if err := cw.w.WriteByte(Version); err != nil {
		return nil, err
	}
	cw.off = 5
	body, err := json.Marshal(meta)
	if err != nil {
		return nil, err
	}
	return cw, cw.writeRecord(RecSession, body)
}

// Session returns the session header.
func (cw *Writer) Session() SessionMeta { return cw.meta }

// writeRecord appends one framed record. Callers hold mu (or are still
// single-goroutine, during construction/close).
func (cw *Writer) writeRecord(kind RecordKind, body []byte) error {
	hdr := recordHeader(byte(kind), body)
	if _, err := cw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := cw.w.Write(body); err != nil {
		return err
	}
	cw.off += int64(recHeaderLen + len(body))
	return nil
}

// WritePacket appends one captured packet. ts is the packet's offset from
// capture start; packets must arrive in non-decreasing (ts, round) order —
// replay streams captures without buffering, so out-of-order input is an
// error at write time rather than a surprise at replay time.
func (cw *Writer) WritePacket(ts time.Duration, round int64, p *codec.Packet) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.closed {
		return errors.New("capture: writer closed")
	}
	if p.StreamID < 0 || p.StreamID >= len(cw.stats) {
		return fmt.Errorf("capture: packet for stream %d of %d", p.StreamID, len(cw.stats))
	}
	if ts < 0 {
		return fmt.Errorf("capture: negative timestamp %v", ts)
	}
	if cw.idx.Packets > 0 && (ts < cw.lastTS || round < cw.lastRound) {
		return fmt.Errorf("capture: out-of-order packet (ts %v round %d after ts %v round %d)",
			ts, round, cw.lastTS, cw.lastRound)
	}
	if !cw.haveRound || round != cw.lastRound {
		cw.idx.Rounds++
		cw.haveRound = true
	}
	cw.lastTS, cw.lastRound = ts, round

	var prefix [packetPrefixLen]byte
	binary.BigEndian.PutUint32(prefix[0:], uint32(p.StreamID))
	binary.BigEndian.PutUint64(prefix[4:], uint64(round))
	binary.BigEndian.PutUint64(prefix[12:], uint64(ts))
	cw.buf = append(cw.buf[:0], prefix[:]...)
	if cw.StripPayloads && len(p.Payload) > 0 {
		stripped := *p
		stripped.Payload = nil
		cw.buf = container.MarshalPacket(cw.buf, &stripped)
	} else {
		cw.buf = container.MarshalPacket(cw.buf, p)
	}
	if err := cw.writeRecord(RecPacket, cw.buf); err != nil {
		return err
	}

	st := &cw.stats[p.StreamID]
	if st.Packets == 0 {
		st.FirstTSNanos = ts.Nanoseconds()
	}
	st.LastTSNanos = ts.Nanoseconds()
	st.Packets++
	st.Bytes += int64(p.Size)
	if p.Keyframe() {
		st.Keyframes++
	}
	if p.GOPSize > st.GOPSize {
		st.GOPSize = p.GOPSize
	}
	if st.SizeMin < 0 || p.Size < st.SizeMin {
		st.SizeMin = p.Size
	}
	if p.Size > st.SizeMax {
		st.SizeMax = p.Size
	}
	st.SizeHist[sizeBucket(p.Size)]++
	cw.idx.Packets++
	if ns := ts.Nanoseconds(); ns > cw.idx.DurationNanos {
		cw.idx.DurationNanos = ns
	}
	return nil
}

// WriteDecision appends one decision-trace round.
func (cw *Writer) WriteDecision(r trace.Round) error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.closed {
		return errors.New("capture: writer closed")
	}
	body, err := json.Marshal(r)
	if err != nil {
		return err
	}
	if err := cw.writeRecord(RecTrace, body); err != nil {
		return err
	}
	cw.idx.Decisions++
	return nil
}

// Write implements trace.Sink, so a gate's Config.Trace can point straight
// at the capture writer and the decision trace lands next to the packets.
func (cw *Writer) Write(r trace.Round) error { return cw.WriteDecision(r) }

// Index returns the index as accumulated so far.
func (cw *Writer) Index() Index {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.indexLocked()
}

func (cw *Writer) indexLocked() Index {
	ix := cw.idx
	ix.PerStream = make([]StreamStats, len(cw.stats))
	copy(ix.PerStream, cw.stats)
	for i := range ix.PerStream {
		st := &ix.PerStream[i]
		if st.SizeMin < 0 {
			st.SizeMin = 0
		}
		if span := st.LastTSNanos - st.FirstTSNanos; span > 0 && st.Packets > 1 {
			st.MeanRate = float64(st.Packets-1) / (float64(span) / 1e9)
		}
	}
	return ix
}

// Close writes the index record and footer and flushes. The writer must not
// be reused.
func (cw *Writer) Close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if cw.closed {
		return nil
	}
	cw.closed = true
	idxOff := cw.off
	body, err := json.Marshal(cw.indexLocked())
	if err != nil {
		return err
	}
	if err := cw.writeRecord(RecIndex, body); err != nil {
		return err
	}
	var footer [footerLen]byte
	copy(footer[:4], footerMagic[:])
	binary.BigEndian.PutUint64(footer[4:], uint64(idxOff))
	if _, err := cw.w.Write(footer[:]); err != nil {
		return err
	}
	return cw.w.Flush()
}

// Record is one decoded capture record.
type Record struct {
	Kind RecordKind

	// Packet fields (RecPacket).
	StreamID int
	Round    int64
	TS       time.Duration
	Packet   *codec.Packet

	// Trace holds the decision round (RecTrace).
	Trace *trace.Round

	// Index holds the trailing index (RecIndex).
	Index *Index
}

// Reader reads a capture sequentially. It validates framing, CRCs, and
// plausibility bounds on every record: a truncated or corrupted capture
// yields an error wrapping ErrCorrupt, never a panic or an unbounded
// allocation.
type Reader struct {
	r       *bufio.Reader
	meta    SessionMeta
	buf     []byte
	sawIdx  bool
	done    bool
	packets int64
}

// NewReader opens a capture stream and parses its session header.
func NewReader(r io.Reader) (*Reader, error) {
	cr := &Reader{r: bufio.NewReaderSize(r, 64<<10)}
	var magic [5]byte
	if _, err := io.ReadFull(cr.r, magic[:]); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	if [4]byte(magic[:4]) != Magic {
		return nil, corruptf("bad magic %q", magic[:4])
	}
	if magic[4] != Version {
		return nil, corruptf("unsupported version %d", magic[4])
	}
	kind, body, err := cr.readRecord()
	if err != nil {
		return nil, err
	}
	if kind != RecSession {
		return nil, corruptf("first record is kind %d, want session header", kind)
	}
	if err := json.Unmarshal(body, &cr.meta); err != nil {
		return nil, corruptf("session header: %v", err)
	}
	if len(cr.meta.Streams) == 0 {
		return nil, corruptf("session header has no streams")
	}
	if len(cr.meta.Streams) > 1<<20 {
		return nil, corruptf("implausible stream count %d", len(cr.meta.Streams))
	}
	return cr, nil
}

// Session returns the session header.
func (cr *Reader) Session() SessionMeta { return cr.meta }

// Packets returns the number of packet records read so far.
func (cr *Reader) Packets() int64 { return cr.packets }

// readRecord reads one framed record, reusing the body buffer.
func (cr *Reader) readRecord() (RecordKind, []byte, error) {
	var hdr [recHeaderLen]byte
	if _, err := io.ReadFull(cr.r, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, corruptf("record header: %v", err)
	}
	kind := RecordKind(hdr[0])
	n := binary.BigEndian.Uint32(hdr[1:])
	crc := binary.BigEndian.Uint32(hdr[5:])
	limit := uint32(maxJSONBody)
	if kind == RecPacket {
		limit = maxPacketBody
	}
	if n > limit {
		return 0, nil, corruptf("record of %d bytes exceeds limit", n)
	}
	// Large bodies are read in chunks rather than trusting the length field
	// with one huge upfront allocation: a corrupt header claiming 64 MB on
	// a 100-byte file fails after reading what actually exists.
	if n <= 1<<20 {
		if cap(cr.buf) < int(n) {
			cr.buf = make([]byte, n)
		}
		cr.buf = cr.buf[:n]
		if _, err := io.ReadFull(cr.r, cr.buf); err != nil {
			return 0, nil, corruptf("record body: %v", err)
		}
	} else {
		cr.buf = cr.buf[:0]
		chunk := make([]byte, 1<<20)
		for remaining := int(n); remaining > 0; {
			c := chunk
			if remaining < len(c) {
				c = c[:remaining]
			}
			m, err := io.ReadFull(cr.r, c)
			cr.buf = append(cr.buf, c[:m]...)
			if err != nil {
				return 0, nil, corruptf("record body: %v", err)
			}
			remaining -= m
		}
	}
	if crc32.ChecksumIEEE(cr.buf) != crc {
		return 0, nil, corruptf("record CRC mismatch")
	}
	return kind, cr.buf, nil
}

// Next returns the next record, or io.EOF after the footer (or a clean
// truncation at a record boundary with no index — a capture cut mid-write
// is still readable up to its last intact record, but Index records the
// loss by its absence).
func (cr *Reader) Next() (Record, error) {
	if cr.done {
		return Record{}, io.EOF
	}
	if cr.sawIdx {
		// Only the 12-byte footer may follow the index record.
		var footer [footerLen]byte
		if _, err := io.ReadFull(cr.r, footer[:]); err != nil {
			return Record{}, corruptf("footer: %v", err)
		}
		if [4]byte(footer[:4]) != footerMagic {
			return Record{}, corruptf("bad footer magic %q", footer[:4])
		}
		if _, err := cr.r.ReadByte(); err != io.EOF {
			return Record{}, corruptf("trailing bytes after footer")
		}
		cr.done = true
		return Record{}, io.EOF
	}
	kind, body, err := cr.readRecord()
	if err == io.EOF {
		cr.done = true
		return Record{}, io.EOF
	}
	if err != nil {
		return Record{}, err
	}
	switch kind {
	case RecPacket:
		rec, err := cr.decodePacket(body)
		if err != nil {
			return Record{}, err
		}
		cr.packets++
		return rec, nil
	case RecTrace:
		var tr trace.Round
		if err := json.Unmarshal(body, &tr); err != nil {
			return Record{}, corruptf("trace record: %v", err)
		}
		return Record{Kind: RecTrace, Trace: &tr}, nil
	case RecIndex:
		var ix Index
		if err := json.Unmarshal(body, &ix); err != nil {
			return Record{}, corruptf("index record: %v", err)
		}
		if err := validateIndex(&ix, len(cr.meta.Streams)); err != nil {
			return Record{}, err
		}
		cr.sawIdx = true
		return Record{Kind: RecIndex, Index: &ix}, nil
	case RecSession:
		return Record{}, corruptf("duplicate session header")
	default:
		return Record{}, corruptf("unknown record kind %d", kind)
	}
}

func (cr *Reader) decodePacket(body []byte) (Record, error) {
	if len(body) < packetPrefixLen {
		return Record{}, corruptf("packet record truncated: %d bytes", len(body))
	}
	id := binary.BigEndian.Uint32(body[0:])
	round := int64(binary.BigEndian.Uint64(body[4:]))
	ts := int64(binary.BigEndian.Uint64(body[12:]))
	if int(id) >= len(cr.meta.Streams) {
		return Record{}, corruptf("packet for unknown stream %d", id)
	}
	if round < 0 || ts < 0 {
		return Record{}, corruptf("packet with negative round/timestamp")
	}
	p, used, err := container.UnmarshalPacket(body[packetPrefixLen:])
	if err != nil {
		return Record{}, corruptf("packet body: %v", err)
	}
	if used != len(body)-packetPrefixLen {
		return Record{}, corruptf("packet record has trailing bytes")
	}
	p.StreamID = int(id)
	if c, err := codec.ParseCodec(cr.meta.Streams[id].Codec); err == nil {
		p.Codec = c
	}
	return Record{Kind: RecPacket, StreamID: int(id), Round: round,
		TS: time.Duration(ts), Packet: p}, nil
}

// validateIndex sanity-checks an index against the session header.
func validateIndex(ix *Index, streams int) error {
	if ix.Packets < 0 || ix.Rounds < 0 || ix.Decisions < 0 || ix.DurationNanos < 0 {
		return corruptf("index with negative counters")
	}
	if len(ix.PerStream) > streams {
		return corruptf("index covers %d streams, session has %d", len(ix.PerStream), streams)
	}
	var total int64
	for i := range ix.PerStream {
		st := &ix.PerStream[i]
		if st.ID < 0 || st.ID >= streams {
			return corruptf("index entry for unknown stream %d", st.ID)
		}
		if st.Packets < 0 || st.Bytes < 0 || st.Keyframes < 0 ||
			st.SizeMin < 0 || st.SizeMax < 0 || st.FirstTSNanos < 0 || st.LastTSNanos < st.FirstTSNanos {
			return corruptf("index entry for stream %d has negative fields", st.ID)
		}
		total += st.Packets
	}
	if total != ix.Packets {
		return corruptf("index packet counts disagree: %d per-stream vs %d total", total, ix.Packets)
	}
	return nil
}

// ReadIndex opens a capture by its footer: it reads the session header and
// seeks straight to the index record, never touching packet bodies — the
// fast path behind the `pgcap map` verb.
func ReadIndex(rs io.ReadSeeker) (SessionMeta, Index, error) {
	cr, err := NewReader(rs)
	if err != nil {
		return SessionMeta{}, Index{}, err
	}
	end, err := rs.Seek(0, io.SeekEnd)
	if err != nil {
		return SessionMeta{}, Index{}, err
	}
	if end < footerLen {
		return SessionMeta{}, Index{}, corruptf("file too short for a footer")
	}
	if _, err := rs.Seek(end-footerLen, io.SeekStart); err != nil {
		return SessionMeta{}, Index{}, err
	}
	var footer [footerLen]byte
	if _, err := io.ReadFull(rs, footer[:]); err != nil {
		return SessionMeta{}, Index{}, corruptf("footer: %v", err)
	}
	if [4]byte(footer[:4]) != footerMagic {
		return SessionMeta{}, Index{}, corruptf("bad footer magic %q", footer[:4])
	}
	off := binary.BigEndian.Uint64(footer[4:])
	if off > uint64(end-footerLen-recHeaderLen) || off < 5 {
		return SessionMeta{}, Index{}, corruptf("index offset %d out of bounds", off)
	}
	if _, err := rs.Seek(int64(off), io.SeekStart); err != nil {
		return SessionMeta{}, Index{}, err
	}
	ir := &Reader{r: bufio.NewReader(io.LimitReader(rs, end-footerLen-int64(off))), meta: cr.meta}
	kind, body, err := ir.readRecord()
	if err != nil {
		return SessionMeta{}, Index{}, err
	}
	if kind != RecIndex {
		return SessionMeta{}, Index{}, corruptf("footer points at kind-%d record, want index", kind)
	}
	var ix Index
	if err := json.Unmarshal(body, &ix); err != nil {
		return SessionMeta{}, Index{}, corruptf("index record: %v", err)
	}
	if err := validateIndex(&ix, len(cr.meta.Streams)); err != nil {
		return SessionMeta{}, Index{}, err
	}
	return cr.meta, ix, nil
}
