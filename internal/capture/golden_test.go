package capture

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// corpusDir is the committed corpus location relative to this package.
var corpusDir = filepath.Join("..", "..", "testdata", "captures")

// TestGoldenCorpusBytes regenerates every committed corpus capture in
// memory and requires the bytes on disk to match exactly. A mismatch means
// either the capture format or the deterministic generator changed — both
// need a deliberate `make corpus` refresh committed alongside the change.
func TestGoldenCorpusBytes(t *testing.T) {
	for _, spec := range DefaultCorpus() {
		path := filepath.Join(corpusDir, spec.Name+".pgc")
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("committed corpus missing (run `make corpus`): %v", err)
		}
		var got bytes.Buffer
		if err := GenerateCorpus(&got, spec); err != nil {
			t.Fatalf("%s: regenerate: %v", spec.Name, err)
		}
		if !bytes.Equal(got.Bytes(), want) {
			t.Errorf("%s: committed capture differs from regeneration (%d vs %d bytes); if intentional, refresh with `make corpus`",
				spec.Name, len(want), got.Len())
		}
	}
}

// TestGoldenCorpusAudit is the decision-trace regression gate: replaying
// each committed capture's packets through today's gate must reproduce the
// recorded decisions bit-identically. Any gate behavior change trips this.
func TestGoldenCorpusAudit(t *testing.T) {
	for _, spec := range DefaultCorpus() {
		path := filepath.Join(corpusDir, spec.Name+".pgc")
		c, err := LoadFile(path)
		if err != nil {
			t.Fatalf("committed corpus missing (run `make corpus`): %v", err)
		}
		var diag bytes.Buffer
		res, err := Audit(c, AuditOptions{Verbose: &diag})
		if err != nil {
			t.Fatalf("%s: audit: %v", spec.Name, err)
		}
		if !res.Ok() {
			t.Errorf("%s: %d/%d rounds diverged from the recorded decision trace (first at round %d)\n%s",
				spec.Name, res.Divergent, res.Rounds, res.FirstDivergence, diag.String())
		}
		if res.Rounds == 0 {
			t.Errorf("%s: audited zero rounds", spec.Name)
		}
	}
}

// TestGoldenCorpusShape pins the structural claims the replay experiment
// depends on: the burst corpus really is bursty and governed, the steady
// corpus is uniform and ungoverned.
func TestGoldenCorpusShape(t *testing.T) {
	burst, err := LoadFile(filepath.Join(corpusDir, "corpus-burst.pgc"))
	if err != nil {
		t.Fatal(err)
	}
	var ts []int64
	for _, r := range burst.Rounds {
		ts = append(ts, int64(r.TS))
	}
	if b := burstinessNanos(ts); b < 4 {
		t.Fatalf("corpus-burst max/mean gap = %.2f, want bursty (>4)", b)
	}
	if burst.Meta.Gate == nil || !burst.Meta.Gate.Governed {
		t.Fatal("corpus-burst should record a governed gate")
	}
	modes := map[string]bool{}
	for _, d := range burst.Decisions {
		modes[d.Mode] = true
	}
	if len(modes) < 2 {
		t.Fatalf("corpus-burst should span multiple ladder modes, got %v", modes)
	}

	steady, err := LoadFile(filepath.Join(corpusDir, "corpus-steady.pgc"))
	if err != nil {
		t.Fatal(err)
	}
	ts = ts[:0]
	for _, r := range steady.Rounds {
		ts = append(ts, int64(r.TS))
	}
	if b := burstinessNanos(ts); b > 1.01 {
		t.Fatalf("corpus-steady max/mean gap = %.2f, want uniform", b)
	}
	if steady.Meta.Gate == nil || steady.Meta.Gate.Governed {
		t.Fatal("corpus-steady should record an ungoverned gate")
	}
}

func burstinessNanos(ts []int64) float64 {
	if len(ts) < 2 {
		return 1
	}
	var maxGap int64
	for i := 1; i < len(ts); i++ {
		if g := ts[i] - ts[i-1]; g > maxGap {
			maxGap = g
		}
	}
	mean := float64(ts[len(ts)-1]-ts[0]) / float64(len(ts)-1)
	return float64(maxGap) / mean
}
