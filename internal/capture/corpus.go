package capture

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/overload"
)

// CorpusSpec parameterizes one deterministic corpus capture: a synthetic
// fleet gated sequentially with virtual bursty timestamps, every input
// derived from the seed, so regenerating the spec reproduces the capture
// byte for byte. The committed files under testdata/captures/ are exactly
// DefaultCorpus() written by `make corpus`.
type CorpusSpec struct {
	// Name is the file stem (Name + ".pgc").
	Name string
	// Streams, Rounds size the capture.
	Streams int
	Rounds  int
	// Seed drives the synthetic fleet and the necessity labels.
	Seed int64
	// Budget and Window configure the recorded gate.
	Budget float64
	Window int
	// Tiers, when non-empty, stripes admission tiers over the fleet
	// (stream i gets Tiers[i mod len]).
	Tiers []uint8
	// FPS paces the virtual timestamps within a burst.
	FPS int
	// BurstRounds and IdleGap shape the recorded timing: BurstRounds
	// rounds at FPS pacing, then an IdleGap pause, repeated. IdleGap 0
	// yields steady pacing. These bursts are what flat-rate replay
	// flattens and timestamp-preserving replay keeps.
	BurstRounds int
	IdleGap     time.Duration
	// DipFrom/DipTo (round indices, half-open) script an overload episode:
	// the planner pins budget·DipBudgetFrac and DipMode for those rounds,
	// so the corpus exercises B_eff and ladder pinning in audits.
	DipFrom, DipTo int
	DipBudgetFrac  float64
	DipMode        overload.Mode
}

// DefaultCorpus lists the committed regression corpus.
func DefaultCorpus() []CorpusSpec {
	return []CorpusSpec{
		{
			Name: "corpus-burst", Streams: 10, Rounds: 120, Seed: 42,
			Budget: 6, Window: 5, Tiers: []uint8{0, 1, 2},
			FPS: 25, BurstRounds: 20, IdleGap: 400 * time.Millisecond,
			DipFrom: 60, DipTo: 84, DipBudgetFrac: 0.5, DipMode: overload.ModeKeyframeOnly,
		},
		{
			Name: "corpus-steady", Streams: 6, Rounds: 100, Seed: 7,
			Budget: 4, Window: 5,
			FPS: 10, BurstRounds: 100,
		},
	}
}

// corpusFleet builds the spec's deterministic synthetic fleet, varying the
// scene and codec per stream so sizes, GOP phases, and activity differ.
func corpusFleet(spec CorpusSpec) []*codec.Stream {
	codecs := []codec.Codec{codec.H264, codec.H265, codec.VP9}
	fleet := make([]*codec.Stream, spec.Streams)
	for i := range fleet {
		fleet[i] = codec.NewStream(
			codec.SceneConfig{
				BaseActivity: 0.25 + 0.1*float64(i%4),
				PersonRate:   0.1 + 0.05*float64(i%3),
				AnomalyRate:  float64(40 + 10*(i%5)),
				FPS:          spec.FPS,
			},
			codec.EncoderConfig{
				StreamID: i,
				Codec:    codecs[i%len(codecs)],
				GOPSize:  20 + 5*(i%2),
				GOPPhase: i * 7,
				FPS:      spec.FPS,
			},
			spec.Seed+int64(i)*7919)
	}
	return fleet
}

// necessity is the corpus's deterministic redundancy verdict: a seeded hash
// of (stream, seq) giving a ~60% necessary rate, so the temporal estimator
// sees mixed rewards without depending on decoder internals.
func necessity(seed int64, p *codec.Packet) bool {
	h := uint64(p.Seq)*2654435761 + uint64(p.StreamID)*7919 + uint64(seed)*1e9+7
	return h%5 < 3
}

// sessionMeta builds the capture header for a spec, with the gate's
// *effective* configuration pinned so audits rebuild it exactly.
func sessionMeta(spec CorpusSpec, fleet []*codec.Stream, cfg core.Config) SessionMeta {
	meta := SessionMeta{Label: spec.Name}
	for _, st := range fleet {
		ec := st.Encoder.Config()
		meta.Streams = append(meta.Streams, StreamMeta{
			Codec: ec.Codec.String(), FPS: ec.FPS, GOPSize: ec.GOPSize,
		})
	}
	meta.Gate = &GateMeta{
		Window:          cfg.Window,
		Budget:          cfg.Budget,
		UseTemporal:     cfg.UseTemporal,
		Explore:         *cfg.Explore,
		DependencyAware: *cfg.DependencyAware,
		Priorities:      cfg.Priorities,
		Governed:        spec.DipTo > spec.DipFrom,
	}
	return meta
}

// configFromMeta rebuilds the recorded gate configuration. Audit and the
// corpus generator share it, so what generation ran is exactly what audits
// rerun. Callers attach their own Planner/Trace before NewGate.
func configFromMeta(meta SessionMeta) (core.Config, error) {
	gm := meta.Gate
	if gm == nil {
		return core.Config{}, fmt.Errorf("capture: no gate metadata recorded")
	}
	explore := gm.Explore
	depAware := gm.DependencyAware
	return core.Config{
		Streams:         len(meta.Streams),
		Window:          gm.Window,
		Budget:          gm.Budget,
		UseTemporal:     gm.UseTemporal,
		Explore:         &explore,
		DependencyAware: &depAware,
		Priorities:      gm.Priorities,
	}, nil
}

// GenerateCorpus writes one corpus capture. Everything — packets,
// timestamps, decisions, verdicts — is a pure function of the spec, so the
// output bytes are reproducible (the golden regeneration test holds the
// committed corpus to exactly this).
func GenerateCorpus(w io.Writer, spec CorpusSpec) error {
	if spec.Streams <= 0 || spec.Rounds <= 0 {
		return fmt.Errorf("capture: corpus needs positive streams/rounds")
	}
	if spec.FPS <= 0 {
		spec.FPS = 25
	}
	if spec.BurstRounds <= 0 {
		spec.BurstRounds = spec.Rounds
	}
	if spec.DipBudgetFrac == 0 {
		spec.DipBudgetFrac = 1
	}
	fleet := corpusFleet(spec)

	var prio []uint8
	if len(spec.Tiers) > 0 {
		prio = make([]uint8, spec.Streams)
		for i := range prio {
			prio[i] = spec.Tiers[i%len(spec.Tiers)]
		}
	}
	baseCfg := core.Config{
		Streams: spec.Streams, Window: spec.Window, Budget: spec.Budget,
		UseTemporal: true, Priorities: prio,
	}
	// Probe-build once to resolve defaults, then record the effective
	// config in the header and build the real gate from that header — the
	// exact code path Audit uses.
	probe, err := core.NewGate(baseCfg)
	if err != nil {
		return err
	}
	meta := sessionMeta(spec, fleet, probe.Config())

	cw, err := NewWriter(w, meta)
	if err != nil {
		return err
	}
	cw.StripPayloads = true

	planner := overload.NewScripted(spec.Budget)
	gcfg, err := configFromMeta(meta)
	if err != nil {
		return err
	}
	gcfg.Planner = planner
	gcfg.Trace = cw
	gate, err := core.NewGate(gcfg)
	if err != nil {
		return err
	}

	step := time.Second / time.Duration(spec.FPS)
	var ts time.Duration
	pkts := make([]*codec.Packet, spec.Streams)
	var sel []int
	for r := 0; r < spec.Rounds; r++ {
		if r > 0 {
			ts += step
			if spec.IdleGap > 0 && r%spec.BurstRounds == 0 {
				ts += spec.IdleGap
			}
		}
		bEff, mode := spec.Budget, overload.ModeFull
		if r >= spec.DipFrom && r < spec.DipTo {
			bEff, mode = spec.Budget*spec.DipBudgetFrac, spec.DipMode
		}
		planner.Set(bEff, mode)
		for i, st := range fleet {
			pkts[i] = st.Next()
			if err := cw.WritePacket(ts, int64(r), pkts[i]); err != nil {
				return err
			}
		}
		sel, err = gate.DecideAppend(pkts, sel[:0])
		if err != nil {
			return err
		}
		necessary := make([]bool, len(sel))
		for k, i := range sel {
			necessary[k] = necessity(spec.Seed, pkts[i])
		}
		if err := gate.Feedback(sel, necessary); err != nil {
			return err
		}
	}
	return cw.Close()
}

// WriteCorpusDir regenerates the default corpus into dir, returning the
// file paths written. This is the `make corpus` recipe.
func WriteCorpusDir(dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, spec := range DefaultCorpus() {
		path := filepath.Join(dir, spec.Name+".pgc")
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		if err := GenerateCorpus(f, spec); err != nil {
			f.Close()
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
