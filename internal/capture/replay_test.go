package capture

import (
	"bytes"
	"io"
	"math"
	"testing"
	"time"

	"packetgame/internal/codec"
)

// buildCapture makes an in-memory capture with one stream and the given
// round timestamps.
func buildCapture(t *testing.T, ts []time.Duration) *Capture {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 1, ts)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drain runs a TimedSource to EOF and returns its emission offsets.
func drain(t *testing.T, s *TimedSource) []time.Duration {
	t.Helper()
	for {
		_, err := s.NextRound()
		if err == io.EOF {
			return s.Emitted()
		}
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestReplaySpeedupPreservesGapRatios is the timing property test: replaying
// a bursty schedule at speedup k must reproduce every recorded inter-round
// gap scaled by exactly 1/k — on the virtual clock this is exact arithmetic,
// so the tolerance only absorbs the integer-nanosecond division.
func TestReplaySpeedupPreservesGapRatios(t *testing.T) {
	// Bursty recording: three tight bursts separated by long idle gaps.
	var ts []time.Duration
	at := time.Duration(0)
	for burst := 0; burst < 3; burst++ {
		for i := 0; i < 5; i++ {
			ts = append(ts, at)
			at += 40 * time.Millisecond
		}
		at += 2 * time.Second
	}
	c := buildCapture(t, ts)
	for _, speedup := range []float64{0.5, 1, 2, 7.5} {
		clock := &VirtualClock{}
		src, err := NewTimedSource(c, ReplayOptions{Speedup: speedup, Clock: clock})
		if err != nil {
			t.Fatal(err)
		}
		emitted := drain(t, src)
		if len(emitted) != len(ts) {
			t.Fatalf("speedup %v: emitted %d rounds, want %d", speedup, len(emitted), len(ts))
		}
		for i := 1; i < len(ts); i++ {
			recGap := ts[i] - ts[i-1]
			gotGap := emitted[i] - emitted[i-1]
			want := float64(recGap) / speedup
			if math.Abs(float64(gotGap)-want) > 1 { // ≤1ns integer division slack
				t.Fatalf("speedup %v: gap %d = %v, want %v (recorded %v)",
					speedup, i, gotGap, time.Duration(want), recGap)
			}
		}
	}
}

// TestReplayFlatFlattensBursts checks the control arm: flat replay spends
// the same total span but equalizes every gap, destroying the recorded
// burst structure (max gap over mean gap collapses to 1).
func TestReplayFlatFlattensBursts(t *testing.T) {
	ts := []time.Duration{0, 10 * time.Millisecond, 20 * time.Millisecond,
		2 * time.Second, 2010 * time.Millisecond, 2020 * time.Millisecond}
	c := buildCapture(t, ts)

	clock := &VirtualClock{}
	src, err := NewTimedSource(c, ReplayOptions{Flat: true, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	emitted := drain(t, src)
	span := emitted[len(emitted)-1] - emitted[0]
	if span != ts[len(ts)-1]-ts[0] {
		t.Fatalf("flat replay span %v, want %v", span, ts[len(ts)-1]-ts[0])
	}
	var maxGap, minGap time.Duration = 0, time.Hour
	for i := 1; i < len(emitted); i++ {
		g := emitted[i] - emitted[i-1]
		if g > maxGap {
			maxGap = g
		}
		if g < minGap {
			minGap = g
		}
	}
	if maxGap-minGap > 1 {
		t.Fatalf("flat replay gaps not uniform: min %v max %v", minGap, maxGap)
	}
	// And the recorded schedule really was bursty — otherwise this control
	// proves nothing.
	if burstiness(ts) < 4 {
		t.Fatalf("test schedule not bursty enough: %v", burstiness(ts))
	}
	if b := burstiness(emitted); b > 1.01 {
		t.Fatalf("flat replay still bursty: max/mean gap = %v", b)
	}
}

// burstiness is max inter-round gap over mean gap (1 = perfectly uniform).
func burstiness(ts []time.Duration) float64 {
	if len(ts) < 2 {
		return 1
	}
	var maxGap time.Duration
	for i := 1; i < len(ts); i++ {
		if g := ts[i] - ts[i-1]; g > maxGap {
			maxGap = g
		}
	}
	mean := float64(ts[len(ts)-1]-ts[0]) / float64(len(ts)-1)
	return float64(maxGap) / mean
}

// TestReplayWindowing is the table-driven boundary test for window
// filtering: half-open [From, To), exact at edges, with the degenerate
// shapes called out in the issue.
func TestReplayWindowing(t *testing.T) {
	ts := []time.Duration{0, time.Second, 2 * time.Second, 3 * time.Second}
	c := buildCapture(t, ts)
	cases := []struct {
		name string
		w    Window
		want []time.Duration
	}{
		{"open", Window{}, ts},
		{"half-open upper edge", Window{From: 0, To: 2 * time.Second}, ts[:2]},
		{"inclusive lower edge", Window{From: time.Second, To: 3 * time.Second}, ts[1:3]},
		{"single packet", Window{From: time.Second, To: time.Second + time.Nanosecond}, ts[1:2]},
		{"empty window", Window{From: time.Second, To: time.Second}, nil},
		{"window past EOF", Window{From: time.Minute, To: 2 * time.Minute}, nil},
		{"tail open-ended", Window{From: 2 * time.Second}, ts[2:]},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := &VirtualClock{}
			src, err := NewTimedSource(c, ReplayOptions{Window: tc.w, Clock: clock})
			if err != nil {
				t.Fatal(err)
			}
			if src.Rounds() != len(tc.want) {
				t.Fatalf("window %+v kept %d rounds, want %d", tc.w, src.Rounds(), len(tc.want))
			}
			var got []*codec.Packet
			for {
				pkts, err := src.NextRound()
				if err == io.EOF {
					break
				}
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, pkts...)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("emitted %d packets, want %d", len(got), len(tc.want))
			}
		})
	}
}

func TestReplayRejectsNegativeSpeedup(t *testing.T) {
	c := buildCapture(t, []time.Duration{0, time.Second})
	if _, err := NewTimedSource(c, ReplayOptions{Speedup: -1}); err == nil {
		t.Fatal("negative speedup accepted")
	}
}
