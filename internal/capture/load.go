package capture

import (
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/trace"
)

// RecordedRound is one round of a loaded capture: a dense per-stream packet
// slice (nil = idle slot) plus per-slot capture timestamps.
type RecordedRound struct {
	// Round is the recorded round index.
	Round int64
	// TS is the round's scheduling timestamp: the earliest packet
	// timestamp in the round.
	TS time.Duration
	// Pkts is indexed by stream slot; nil entries are idle streams.
	Pkts []*codec.Packet
	// PktTS holds each slot's capture timestamp (zero for nil slots).
	PktTS []time.Duration
}

// Packets counts the non-idle slots.
func (r *RecordedRound) Packets() int {
	n := 0
	for _, p := range r.Pkts {
		if p != nil {
			n++
		}
	}
	return n
}

// Capture is a fully loaded capture file.
type Capture struct {
	Meta      SessionMeta
	Rounds    []RecordedRound
	Decisions []trace.Round
	// Index is the trailing index, or nil when the capture was truncated
	// before its index was written (still loadable up to the cut).
	Index *Index
}

// Duration returns the packet time span of the loaded rounds.
func (c *Capture) Duration() time.Duration {
	if len(c.Rounds) == 0 {
		return 0
	}
	last := c.Rounds[len(c.Rounds)-1]
	max := last.TS
	for _, ts := range last.PktTS {
		if ts > max {
			max = ts
		}
	}
	return max - c.Rounds[0].TS
}

// Load reads a whole capture into memory, grouping packets into rounds.
func Load(r io.Reader) (*Capture, error) {
	cr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	c := &Capture{Meta: cr.Session()}
	m := len(c.Meta.Streams)
	var cur *RecordedRound
	for {
		rec, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch rec.Kind {
		case RecPacket:
			if cur == nil || rec.Round != cur.Round {
				c.Rounds = append(c.Rounds, RecordedRound{
					Round: rec.Round,
					TS:    rec.TS,
					Pkts:  make([]*codec.Packet, m),
					PktTS: make([]time.Duration, m),
				})
				cur = &c.Rounds[len(c.Rounds)-1]
			}
			if cur.Pkts[rec.StreamID] != nil {
				return nil, corruptf("duplicate packet for stream %d in round %d", rec.StreamID, rec.Round)
			}
			cur.Pkts[rec.StreamID] = rec.Packet
			cur.PktTS[rec.StreamID] = rec.TS
			if rec.TS < cur.TS {
				cur.TS = rec.TS
			}
		case RecTrace:
			c.Decisions = append(c.Decisions, *rec.Trace)
		case RecIndex:
			c.Index = rec.Index
		}
	}
	return c, nil
}

// LoadFile loads a capture from disk.
func LoadFile(path string) (*Capture, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return c, nil
}

// FilterWindow returns a copy of the capture restricted to the half-open
// capture-time window [w.From, w.To): a packet survives iff its own
// timestamp satisfies w.Contains, exactly at the boundaries, and rounds
// left with no surviving packets are dropped. When rebase is true the
// surviving timestamps are shifted so the earliest becomes zero and rounds
// renumber from zero.
//
// The decision trace is NOT carried over: recorded decisions are only valid
// against the full recorded workload (budget competition spans all streams
// and rounds), so a filtered capture is a packet corpus, not an auditable
// session.
func (c *Capture) FilterWindow(w Window, rebase bool) *Capture {
	out := &Capture{Meta: c.Meta}
	out.Meta.Gate = nil // decisions dropped: the gate config no longer attests anything
	var base time.Duration
	var baseRound int64
	first := true
	for _, r := range c.Rounds {
		var nr *RecordedRound
		for i, p := range r.Pkts {
			if p == nil || !w.Contains(r.PktTS[i]) {
				continue
			}
			if first {
				base = r.PktTS[i]
				baseRound = r.Round
				first = false
			}
			if nr == nil {
				out.Rounds = append(out.Rounds, RecordedRound{
					Round: r.Round,
					TS:    r.PktTS[i],
					Pkts:  make([]*codec.Packet, len(r.Pkts)),
					PktTS: make([]time.Duration, len(r.Pkts)),
				})
				nr = &out.Rounds[len(out.Rounds)-1]
			}
			nr.Pkts[i] = p
			nr.PktTS[i] = r.PktTS[i]
			if r.PktTS[i] < nr.TS {
				nr.TS = r.PktTS[i]
			}
		}
	}
	if rebase {
		for i := range out.Rounds {
			r := &out.Rounds[i]
			r.Round -= baseRound
			r.TS -= base
			for s := range r.PktTS {
				if r.Pkts[s] != nil {
					r.PktTS[s] -= base
				} else {
					r.PktTS[s] = 0
				}
			}
		}
	}
	return out
}

// FilterStreams returns a copy keeping only the given stream slots (others
// become idle). Slot numbering is preserved so packets keep their stream
// identity; the decision trace is dropped for the same reason as in
// FilterWindow.
func (c *Capture) FilterStreams(keep []int) (*Capture, error) {
	sel := make([]bool, len(c.Meta.Streams))
	for _, i := range keep {
		if i < 0 || i >= len(sel) {
			return nil, fmt.Errorf("capture: stream %d out of range (capture has %d)", i, len(sel))
		}
		sel[i] = true
	}
	out := &Capture{Meta: c.Meta}
	out.Meta.Gate = nil
	for _, r := range c.Rounds {
		var nr *RecordedRound
		for i, p := range r.Pkts {
			if p == nil || !sel[i] {
				continue
			}
			if nr == nil {
				out.Rounds = append(out.Rounds, RecordedRound{
					Round: r.Round,
					TS:    r.PktTS[i],
					Pkts:  make([]*codec.Packet, len(r.Pkts)),
					PktTS: make([]time.Duration, len(r.Pkts)),
				})
				nr = &out.Rounds[len(out.Rounds)-1]
			}
			nr.Pkts[i] = p
			nr.PktTS[i] = r.PktTS[i]
			if r.PktTS[i] < nr.TS {
				nr.TS = r.PktTS[i]
			}
		}
	}
	return out, nil
}

// Save writes the capture back out as a PGC file (used by the filter verb).
// Decision traces survive a plain save (no filtering applied since load).
func (c *Capture) Save(w io.Writer) error {
	cw, err := NewWriter(w, c.Meta)
	if err != nil {
		return err
	}
	// Interleave decisions at their recorded positions: decision k follows
	// the k-th round's packets, mirroring a sequential recording.
	d := 0
	var order []int
	for _, r := range c.Rounds {
		// Emit the round's packets in timestamp order (slot order as the
		// tiebreak): the writer enforces non-decreasing timestamps, and a
		// network-recorded round may have per-slot arrival skew.
		order = order[:0]
		for i, p := range r.Pkts {
			if p != nil {
				order = append(order, i)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return r.PktTS[order[a]] < r.PktTS[order[b]]
		})
		for _, i := range order {
			if err := cw.WritePacket(r.PktTS[i], r.Round, r.Pkts[i]); err != nil {
				return err
			}
		}
		if d < len(c.Decisions) {
			if err := cw.WriteDecision(c.Decisions[d]); err != nil {
				return err
			}
			d++
		}
	}
	for ; d < len(c.Decisions); d++ {
		if err := cw.WriteDecision(c.Decisions[d]); err != nil {
			return err
		}
	}
	return cw.Close()
}
