package capture

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"packetgame/internal/codec"
)

// fuzzSeed builds a small valid capture for the fuzz corpus.
func fuzzSeed(tb testing.TB) []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, &GateMeta{Budget: 2, Window: 3, UseTemporal: true}))
	if err != nil {
		tb.Fatal(err)
	}
	for r := 0; r < 2; r++ {
		for s := 0; s < 2; s++ {
			p := &codec.Packet{
				StreamID: s, Seq: int64(r*2 + s), Type: codec.PictureP,
				Size: 1000 + s, GOPIndex: r, GOPSize: 25, Payload: []byte{9, 8, 7},
			}
			if r == 0 {
				p.Type = codec.PictureI
			}
			if err := w.WritePacket(time.Duration(r)*40*time.Millisecond, int64(r), p); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzCaptureContainer feeds arbitrary bytes to the capture reader. The
// reader must either produce a capture or return an error — never panic,
// never over-allocate from a lying length header, never read past the
// buffer. Seeds cover the interesting structured mutations: truncations at
// every record boundary class, corrupted index offsets, and flipped CRCs.
func FuzzCaptureContainer(f *testing.F) {
	valid := fuzzSeed(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("PGC1"))
	f.Add(append([]byte("PGC1"), 0xFF))           // bad version
	f.Add(append([]byte("NOPE"), valid[4:]...))   // bad magic
	f.Add(valid[:len(valid)-1])                   // cut footer
	f.Add(valid[:len(valid)-footerLen])           // footer gone entirely
	f.Add(valid[:len(valid)/2])                   // mid-record cut
	f.Add(valid[:5])                              // header only
	for _, off := range []uint64{0, 1, 1 << 40} { // corrupt index offsets
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint64(b[len(b)-8:], off)
		f.Add(b)
	}
	{ // flip one byte inside a record body: CRC must catch it
		b := append([]byte(nil), valid...)
		b[len(b)/2] ^= 0x40
		f.Add(b)
	}
	{ // huge claimed record length on a tiny file
		b := append([]byte(nil), valid[:5]...)
		b = append(b, byte(RecPacket))
		var lenb [8]byte
		binary.BigEndian.PutUint32(lenb[:4], 60<<20)
		b = append(b, lenb[:]...)
		f.Add(b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly: that's the contract
		}
		// Anything the reader accepts must be internally consistent enough
		// to traverse and re-save without panicking.
		_ = c.Duration()
		for _, r := range c.Rounds {
			_ = r.Packets()
		}
		var out bytes.Buffer
		_ = c.Save(&out)
		// The index fast path must agree about acceptance on a seekable
		// reader (it may reject files Load accepts only if the trailing
		// index is damaged — but it must not panic).
		_, _, _ = ReadIndex(bytes.NewReader(data))
	})
}

// TestFuzzSeedsNonFuzzing replays the structured fuzz seeds as a plain test
// so `go test` (and make replay / make verify) exercises them without the
// fuzz engine.
func TestFuzzSeedsNonFuzzing(t *testing.T) {
	valid := fuzzSeed(t)
	seeds := [][]byte{
		valid,
		{},
		[]byte("PGC1"),
		append([]byte("PGC1"), 0xFF),
		append([]byte("NOPE"), valid[4:]...),
		valid[:len(valid)-1],
		valid[:len(valid)-footerLen],
		valid[:len(valid)/2],
		valid[:5],
	}
	for _, off := range []uint64{0, 1, 1 << 40} {
		b := append([]byte(nil), valid...)
		binary.BigEndian.PutUint64(b[len(b)-8:], off)
		seeds = append(seeds, b)
	}
	b := append([]byte(nil), valid...)
	b[len(b)/2] ^= 0x40
	seeds = append(seeds, b)

	for i, seed := range seeds {
		c, err := Load(bytes.NewReader(seed))
		if i == 0 {
			if err != nil {
				t.Fatalf("valid seed rejected: %v", err)
			}
			continue
		}
		if err == nil {
			// Mutations may still parse if they only damaged the index
			// region in a recoverable way; what matters is no panic and a
			// traversable result.
			_ = c.Duration()
			continue
		}
	}
	// The flipped-byte seed specifically must be caught by a CRC.
	if _, err := Load(bytes.NewReader(b)); err == nil {
		t.Fatal("bit flip inside a record body went undetected")
	}
}
