package capture

import (
	"io"
	"time"

	"packetgame/internal/codec"
)

// RoundSource is the round-iteration protocol of the pipeline engine,
// restated structurally so this package stays below internal/pipeline in
// the dependency order. *pipeline.LocalSource, *CameraSource, *NetSource,
// and this package's TimedSource all satisfy it.
type RoundSource interface {
	NextRound() ([]*codec.Packet, error)
	Truth(i int) (codec.Scene, bool)
}

// Tap wraps a RoundSource and records every packet flowing through it into
// a capture — the pggate-side record hook: the engine ingests rounds
// exactly as before while the tap writes them (and, with the gate's Trace
// pointed at the same Writer, the decision trace) to disk.
type Tap struct {
	src   RoundSource
	w     *Writer
	clock Clock
	// step, when positive, stamps virtual timestamps (round·step) instead
	// of wall-clock arrival offsets: deterministic captures for corpora.
	step    time.Duration
	started bool
	start   time.Time
	round   int64
}

// NewTap wraps src, recording into w. virtualStep > 0 selects deterministic
// virtual timestamps at that per-round interval; 0 records wall-clock
// arrival offsets. clock defaults to RealClock.
func NewTap(src RoundSource, w *Writer, virtualStep time.Duration, clock Clock) *Tap {
	if clock == nil {
		clock = RealClock
	}
	return &Tap{src: src, w: w, clock: clock, step: virtualStep}
}

// Rounds returns the number of rounds recorded so far.
func (t *Tap) Rounds() int64 { return t.round }

// NextRound implements RoundSource, recording as it forwards.
func (t *Tap) NextRound() ([]*codec.Packet, error) {
	pkts, err := t.src.NextRound()
	if err != nil {
		return pkts, err
	}
	var ts time.Duration
	if t.step > 0 {
		ts = time.Duration(t.round) * t.step
	} else {
		if !t.started {
			t.start = t.clock.Now()
			t.started = true
		}
		ts = t.clock.Now().Sub(t.start)
	}
	for _, p := range pkts {
		if p == nil {
			continue
		}
		if err := t.w.WritePacket(ts, t.round, p); err != nil {
			return nil, err
		}
	}
	t.round++
	return pkts, nil
}

// Truth implements RoundSource by delegation.
func (t *Tap) Truth(i int) (codec.Scene, bool) { return t.src.Truth(i) }

// RecordRounds drains a round iterator (a PGSP client's NextRound) into the
// writer, up to maxRounds (0 = until EOF). Timestamps follow the Tap rules.
// It returns the number of rounds recorded.
func RecordRounds(next func() ([]*codec.Packet, error), w *Writer, maxRounds int64, virtualStep time.Duration, clock Clock) (int64, error) {
	if clock == nil {
		clock = RealClock
	}
	var start time.Time
	var rounds int64
	for maxRounds == 0 || rounds < maxRounds {
		pkts, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rounds, err
		}
		var ts time.Duration
		if virtualStep > 0 {
			ts = time.Duration(rounds) * virtualStep
		} else {
			if rounds == 0 {
				start = clock.Now()
			}
			ts = clock.Now().Sub(start)
		}
		for _, p := range pkts {
			if p == nil {
				continue
			}
			if err := w.WritePacket(ts, rounds, p); err != nil {
				return rounds, err
			}
		}
		rounds++
	}
	return rounds, nil
}
