package capture

import (
	"fmt"
	"io"
	"time"

	"packetgame/internal/codec"
)

// Clock abstracts wall time so replay timing is testable against a virtual
// clock (and so the timing property tests are exact, not flaky).
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

type realClock struct{}

func (realClock) Now() time.Time        { return time.Now() }
func (realClock) Sleep(d time.Duration) { time.Sleep(d) }

// RealClock is the wall-clock Clock.
var RealClock Clock = realClock{}

// VirtualClock is a deterministic Clock that jumps instantly on Sleep —
// replay schedules become exact arithmetic over it. The zero value starts
// at the zero time.
type VirtualClock struct {
	T time.Time
}

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Time { return c.T }

// Sleep advances the virtual time (negative durations are ignored, matching
// time.Sleep).
func (c *VirtualClock) Sleep(d time.Duration) {
	if d > 0 {
		c.T = c.T.Add(d)
	}
}

// Window selects the half-open capture-time interval [From, To). To <= 0
// leaves the window open-ended; From == To (positive) is the empty window.
type Window struct {
	From, To time.Duration
}

// Bounded reports whether the window has an upper edge.
func (w Window) Bounded() bool { return w.To > 0 }

// Contains reports whether a capture timestamp falls inside the window.
// Boundary semantics are exact: ts == From is in, ts == To is out.
func (w Window) Contains(ts time.Duration) bool {
	if ts < w.From {
		return false
	}
	if w.Bounded() && ts >= w.To {
		return false
	}
	return true
}

// ReplayOptions parameterizes a timed replay.
type ReplayOptions struct {
	// Speedup scales recorded time: 2 halves every inter-round gap, 0.5
	// doubles them. 0 defaults to 1 (original timing).
	Speedup float64
	// Window restricts the replay to a capture-time interval.
	Window Window
	// Flat replaces the recorded schedule with a uniform one at the same
	// average round rate — the tcpreplay-style control that demonstrably
	// flattens recorded bursts (the reason this package exists).
	Flat bool
	// Clock defaults to RealClock.
	Clock Clock
}

func (o ReplayOptions) withDefaults() (ReplayOptions, error) {
	if o.Speedup == 0 {
		o.Speedup = 1
	}
	if o.Speedup < 0 {
		return o, fmt.Errorf("capture: negative speedup %v", o.Speedup)
	}
	if o.Clock == nil {
		o.Clock = RealClock
	}
	return o, nil
}

// schedule precomputes each surviving round's emission offset from replay
// start, honoring window, speedup, and the flat-rate control.
func schedule(c *Capture, o ReplayOptions) ([]RecordedRound, []time.Duration, error) {
	rounds := c.Rounds
	if o.Window != (Window{}) {
		rounds = c.FilterWindow(o.Window, false).Rounds
	}
	if len(rounds) == 0 {
		return nil, nil, nil
	}
	due := make([]time.Duration, len(rounds))
	base := rounds[0].TS
	if o.Flat {
		// Uniform gaps at the capture's average round rate over the same
		// (speedup-scaled) span.
		span := rounds[len(rounds)-1].TS - base
		gap := time.Duration(0)
		if len(rounds) > 1 {
			gap = time.Duration(float64(span) / float64(len(rounds)-1) / o.Speedup)
		}
		for i := range due {
			due[i] = time.Duration(i) * gap
		}
	} else {
		for i, r := range rounds {
			due[i] = time.Duration(float64(r.TS-base) / o.Speedup)
		}
	}
	return rounds, due, nil
}

// TimedSource replays a loaded capture's rounds at their recorded times —
// scaled by Speedup, restricted by Window, or flattened by Flat — blocking
// in NextRound until each round is due. It satisfies the pipeline engine's
// RoundSource interface, so a capture can drive the exact ingest path a
// live PGSP session does.
type TimedSource struct {
	rounds []RecordedRound
	due    []time.Duration
	clock  Clock
	start  time.Time
	i      int
	// Emitted records each round's actual emission offset from replay
	// start (clock time), for timing verification.
	emitted []time.Duration
}

// NewTimedSource builds a timed replay source over a loaded capture.
func NewTimedSource(c *Capture, opts ReplayOptions) (*TimedSource, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	rounds, due, err := schedule(c, opts)
	if err != nil {
		return nil, err
	}
	return &TimedSource{rounds: rounds, due: due, clock: opts.Clock}, nil
}

// Rounds returns the number of rounds the replay will emit.
func (s *TimedSource) Rounds() int { return len(s.rounds) }

// Emitted returns the per-round emission offsets observed so far.
func (s *TimedSource) Emitted() []time.Duration { return s.emitted }

// NextRound implements the pipeline RoundSource protocol: it sleeps until
// the next round is due, then returns its packets.
func (s *TimedSource) NextRound() ([]*codec.Packet, error) {
	if s.i >= len(s.rounds) {
		return nil, io.EOF
	}
	if s.i == 0 {
		s.start = s.clock.Now()
	}
	target := s.start.Add(s.due[s.i])
	if d := target.Sub(s.clock.Now()); d > 0 {
		s.clock.Sleep(d)
	}
	s.emitted = append(s.emitted, s.clock.Now().Sub(s.start))
	r := &s.rounds[s.i]
	s.i++
	return r.Pkts, nil
}

// Truth implements the pipeline RoundSource protocol: captures carry no
// side-channel ground truth.
func (s *TimedSource) Truth(i int) (codec.Scene, bool) { return codec.Scene{}, false }
