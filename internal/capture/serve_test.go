package capture

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"packetgame/internal/stream"
)

// TestServeReplayMuxesCaptures serves two captures over a real PGSP
// listener and checks the muxed session a client sees: concatenated stream
// slots, every recorded round delivered exactly once (renumbered onto one
// monotone counter), and a clean goodbye at the end.
func TestServeReplayMuxesCaptures(t *testing.T) {
	a := buildCapture(t, []time.Duration{0, 5 * time.Millisecond, 10 * time.Millisecond})
	// Second capture with two streams and two rounds.
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testMeta(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	writeRounds(t, w, 2, []time.Duration{0, 8 * time.Millisecond})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeReplay(ln, []*Capture{a, b}, ReplayOptions{Speedup: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Streams() != 3 {
		t.Fatalf("muxed %d streams, want 3", srv.Streams())
	}

	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	client, err := stream.NewClient(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(client.Streams()); got != 3 {
		t.Fatalf("handshake advertised %d streams, want 3", got)
	}

	rounds, packets := 0, 0
	slotSeen := make([]int, 3)
	for {
		pkts, err := client.NextRound()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		nonNil := 0
		for slot, p := range pkts {
			if p == nil {
				continue
			}
			nonNil++
			packets++
			slotSeen[slot]++
		}
		if nonNil == 0 {
			t.Fatal("empty round delivered")
		}
	}
	// 3 rounds of capture A (1 stream) + 2 rounds of capture B (2 streams),
	// each emitted as its own global round.
	if rounds != 5 {
		t.Fatalf("client saw %d rounds, want 5", rounds)
	}
	if packets != 3+4 {
		t.Fatalf("client saw %d packets, want 7", packets)
	}
	if slotSeen[0] != 3 || slotSeen[1] != 2 || slotSeen[2] != 2 {
		t.Fatalf("per-slot packet counts %v, want [3 2 2]", slotSeen)
	}
}
