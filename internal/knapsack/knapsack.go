// Package knapsack implements the combinatorial optimizer of PacketGame
// (§5.3) and the schedulers it is compared against: greedy selection by
// confidence/cost ratio (with the paper's 1−c/B approximation guarantee for
// approximately fractional costs), an exact dynamic-programming oracle, a
// fractional upper bound, round-robin, and random selection.
package knapsack

import (
	"math"
	"math/rand"
	"sort"
)

// Item is one selectable packet: its gating confidence (value) and its
// dependency-inclusive decode cost.
type Item struct {
	Value float64
	Cost  float64
}

// Selector chooses a subset of items whose total cost fits the budget.
// Implementations may keep state across rounds (e.g. round-robin's cursor).
type Selector interface {
	// Name identifies the policy in reports.
	Name() string
	// Select returns the indices of the chosen items, in selection order.
	Select(items []Item, budget float64) []int
}

// SelectAppender is an optional Selector extension for hot loops: the chosen
// indices are appended to dst (which may be nil) so a caller that recycles
// its selection buffer pays no allocation per round.
type SelectAppender interface {
	SelectAppend(dst []int, items []Item, budget float64) []int
}

// Candidate is one sparse knapsack candidate: the stream it stands for plus
// its gating value and dependency-inclusive cost. It is the compact form of
// a dense []Item slot — an Item array is indexed by stream, a Candidate
// carries its stream with it.
type Candidate struct {
	Stream int32
	Value  float64
	Cost   float64
}

// SparseSelector is an optional Selector extension for sparse fleets: the
// candidate list names only the streams in play this round (strictly
// ascending by Stream), so the selector touches O(active) state instead of
// an O(m) dense item array. Selected stream ids are appended to dst in
// selection order. Because candidates arrive in ascending stream order, a
// ratio sort with positional tie-break over the compact array selects
// exactly the streams the dense Greedy would (dense index order == compact
// position order), so sparse and dense paths stay bit-identical.
type SparseSelector interface {
	SelectSparseAppend(dst []int, cands []Candidate, budget float64) []int
}

// TotalValue sums the values of the selected indices.
func TotalValue(items []Item, sel []int) float64 {
	var v float64
	for _, i := range sel {
		v += items[i].Value
	}
	return v
}

// TotalCost sums the costs of the selected indices.
func TotalCost(items []Item, sel []int) float64 {
	var c float64
	for _, i := range sel {
		c += items[i].Cost
	}
	return c
}

// MaxCost returns the largest single-item cost (the c in 1−c/B).
func MaxCost(items []Item) float64 {
	var m float64
	for _, it := range items {
		if it.Cost > m {
			m = it.Cost
		}
	}
	return m
}

// Greedy is the paper's optimizer: items are ranked by value/cost ratio and
// taken while the budget lasts; remaining budget is then filled with any
// later items that still fit ("decode as many as possible packets that the
// current prioritized packet refers to" generalizes to this fill pass once
// reference costs are folded into Item.Cost by the dependency tracker).
//
// For approximately fractional costs it guarantees value ≥ (1−c/B)·OPT
// (Lemma 1). Complexity is O(m log m) per round.
type Greedy struct {
	// scratch reused across rounds: candidate order, per-item ratios, and the
	// sorter view over both. Safe because the gate serializes Select calls
	// under decideMu.
	rank ratioRank
}

// Name implements Selector.
func (*Greedy) Name() string { return "greedy" }

// Select implements Selector.
func (g *Greedy) Select(items []Item, budget float64) []int {
	return g.SelectAppend(nil, items, budget)
}

// SelectAppend implements SelectAppender: selection indices are appended to
// dst and the only steady-state cost is the O(m log m) sort.
func (g *Greedy) SelectAppend(dst []int, items []Item, budget float64) []int {
	g.rank.sortByRatio(items)
	remaining := budget
	for _, i := range g.rank.order {
		if items[i].Cost <= remaining {
			dst = append(dst, i)
			remaining -= items[i].Cost
		}
	}
	return dst
}

// SelectSparseAppend implements SparseSelector: the compact-candidate form
// of SelectAppend. Candidates arrive in ascending stream order, so the
// positional tie-break reproduces the dense index tie-break exactly and the
// appended stream ids match SelectAppend's on the equivalent dense array
// (zero slots omitted) in selection order.
func (g *Greedy) SelectSparseAppend(dst []int, cands []Candidate, budget float64) []int {
	g.rank.sortSparseByRatio(cands)
	remaining := budget
	for _, k := range g.rank.order {
		if cands[k].Cost <= remaining {
			dst = append(dst, int(cands[k].Stream))
			remaining -= cands[k].Cost
		}
	}
	return dst
}

// ratioRank is the shared ratio-ordering scratch: positive-value candidates
// ranked by descending value/cost ratio (zero-cost first), index tie-break.
// Ratios are precomputed so the sort comparator is two loads, and the sorter
// is a pointer receiver on persistent state so sort.Sort allocates nothing.
type ratioRank struct {
	order  []int
	ratios []float64
}

// rankShrinkFloor is the capacity below which ratioRank scratch is never
// reallocated downward: shrinking tiny buffers only causes churn.
const rankShrinkFloor = 1024

// ensure sizes the scratch for n items: it grows on demand and — so a
// transient m spike does not pin a giant buffer for the process lifetime —
// reallocates downward once the working size drops below a quarter of the
// retained capacity.
func (r *ratioRank) ensure(n int) {
	if c := cap(r.order); c < n || (c > rankShrinkFloor && n < c/4) {
		r.order = make([]int, 0, n)
		r.ratios = make([]float64, n)
	}
}

func (r *ratioRank) sortByRatio(items []Item) {
	r.ensure(len(items))
	r.order = r.order[:0]
	r.ratios = r.ratios[:len(items)]
	for i, it := range items {
		if it.Value > 0 {
			r.order = append(r.order, i)
			r.ratios[i] = ratio(it)
		}
	}
	sort.Sort(r)
}

func (r *ratioRank) sortSparseByRatio(cands []Candidate) {
	r.ensure(len(cands))
	r.order = r.order[:0]
	r.ratios = r.ratios[:len(cands)]
	for k, c := range cands {
		if c.Value > 0 {
			r.order = append(r.order, k)
			r.ratios[k] = ratio(Item{Value: c.Value, Cost: c.Cost})
		}
	}
	sort.Sort(r)
}

func (r *ratioRank) Len() int { return len(r.order) }

func (r *ratioRank) Less(a, b int) bool {
	ra, rb := r.ratios[r.order[a]], r.ratios[r.order[b]]
	if ra != rb {
		return ra > rb
	}
	return r.order[a] < r.order[b]
}

func (r *ratioRank) Swap(a, b int) { r.order[a], r.order[b] = r.order[b], r.order[a] }

func ratio(it Item) float64 {
	if it.Cost == 0 {
		return math.Inf(1)
	}
	return it.Value / it.Cost
}

// GreedyPrefix is Greedy without the fill pass: it stops at the first item
// that does not fit. It exists to ablate the fill pass and to match the
// textbook analysis exactly.
type GreedyPrefix struct{ rank ratioRank }

// Name implements Selector.
func (*GreedyPrefix) Name() string { return "greedy-prefix" }

// Select implements Selector.
func (g *GreedyPrefix) Select(items []Item, budget float64) []int {
	g.rank.sortByRatio(items)
	var sel []int
	remaining := budget
	for _, i := range g.rank.order {
		if items[i].Cost > remaining {
			break
		}
		sel = append(sel, i)
		remaining -= items[i].Cost
	}
	return sel
}

// RoundRobin is the stream-agnostic baseline of §3.2: it cycles through
// streams in fixed order, decoding as many as the budget allows each round,
// regardless of content.
type RoundRobin struct {
	cursor int
}

// Name implements Selector.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements Selector.
func (r *RoundRobin) Select(items []Item, budget float64) []int {
	m := len(items)
	if m == 0 {
		return nil
	}
	var sel []int
	remaining := budget
	for k := 0; k < m; k++ {
		i := (r.cursor + k) % m
		it := items[i]
		if it.Cost == 0 && it.Value == 0 {
			continue // idle stream
		}
		if it.Cost <= remaining {
			sel = append(sel, i)
			remaining -= it.Cost
			continue
		}
		if it.Cost > budget {
			// Unservable even with the whole budget (e.g. a dependency
			// chain longer than the budget): waiting would starve the
			// rotation forever, so skip past it this round.
			continue
		}
		// Budget exhausted for this stream; resume here next round.
		r.cursor = i
		return sel
	}
	r.cursor = (r.cursor + m) % m
	return sel
}

// Random selects a uniformly random feasible subset by shuffling and taking
// items while the budget lasts.
type Random struct {
	rng *rand.Rand
	idx []int
}

// NewRandom creates a random selector with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Selector.
func (*Random) Name() string { return "random" }

// Select implements Selector.
func (r *Random) Select(items []Item, budget float64) []int {
	if cap(r.idx) < len(items) {
		r.idx = make([]int, 0, len(items))
	}
	r.idx = r.idx[:0]
	for i, it := range items {
		if it.Cost > 0 || it.Value > 0 {
			r.idx = append(r.idx, i)
		}
	}
	r.rng.Shuffle(len(r.idx), func(a, b int) { r.idx[a], r.idx[b] = r.idx[b], r.idx[a] })
	var sel []int
	remaining := budget
	for _, i := range r.idx {
		if items[i].Cost <= remaining {
			sel = append(sel, i)
			remaining -= items[i].Cost
		}
	}
	return sel
}

// ExactDP solves the 0/1 knapsack exactly by dynamic programming over a
// discretized budget. It is exponentially cheaper than enumeration but still
// only suitable for small instances (tests and ablations, not production).
type ExactDP struct {
	// Scale discretizes costs: cost units per DP cell. Default 0.01.
	Scale float64
}

// Name implements Selector.
func (*ExactDP) Name() string { return "exact-dp" }

// Select implements Selector.
func (d *ExactDP) Select(items []Item, budget float64) []int {
	scale := d.Scale
	if scale <= 0 {
		scale = 0.01
	}
	w := int(math.Floor(budget/scale + 1e-9))
	if w < 0 {
		return nil
	}
	n := len(items)
	costs := make([]int, n)
	for i, it := range items {
		costs[i] = int(math.Ceil(it.Cost/scale - 1e-9))
	}
	// dp[j] = best value at capacity j; keep[i][j] records choices.
	dp := make([]float64, w+1)
	keep := make([][]bool, n)
	for i := 0; i < n; i++ {
		keep[i] = make([]bool, w+1)
		if items[i].Value <= 0 {
			continue
		}
		ci := costs[i]
		for j := w; j >= ci; j-- {
			if cand := dp[j-ci] + items[i].Value; cand > dp[j] {
				dp[j] = cand
				keep[i][j] = true
			}
		}
	}
	// Reconstruct.
	var sel []int
	j := w
	for i := n - 1; i >= 0; i-- {
		if keep[i][j] {
			sel = append(sel, i)
			j -= costs[i]
		}
	}
	// Reverse to ascending order for stable output.
	for a, b := 0, len(sel)-1; a < b; a, b = a+1, b-1 {
		sel[a], sel[b] = sel[b], sel[a]
	}
	return sel
}

// FractionalOPT returns the optimal value of the *fractional* relaxation:
// items sorted by ratio, the last one taken partially. It upper-bounds every
// 0/1 solution and is the opt_F of the Lemma 1 proof.
func FractionalOPT(items []Item, budget float64) float64 {
	order := make([]int, 0, len(items))
	for i, it := range items {
		if it.Value > 0 {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		return ratio(items[order[a]]) > ratio(items[order[b]])
	})
	var v float64
	remaining := budget
	for _, i := range order {
		it := items[i]
		if it.Cost <= remaining {
			v += it.Value
			remaining -= it.Cost
			continue
		}
		if it.Cost > 0 && remaining > 0 {
			v += it.Value * remaining / it.Cost
		}
		break
	}
	return v
}
