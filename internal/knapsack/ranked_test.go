package knapsack

import (
	"math/rand"
	"testing"
)

// TestRankedMatchesGreedy drives Ranked through many rounds of randomized
// churn — values drifting, candidates disappearing and reviving, exact ratio
// ties — and asserts the selection is identical (same ids, same order) to a
// from-scratch Greedy solve over the equivalent dense item set every round.
func TestRankedMatchesGreedy(t *testing.T) {
	const m = 64
	rng := rand.New(rand.NewSource(7))
	rk := NewRanked(m)
	g := &Greedy{}
	items := make([]Item, m)
	vals := make([]float64, m)
	costs := make([]float64, m)
	for i := range vals {
		vals[i] = rng.Float64()
		costs[i] = rng.Float64() * 3
	}
	for round := 0; round < 500; round++ {
		// Churn a random subset; occasionally force ties and zero costs.
		for n := rng.Intn(m / 2); n > 0; n-- {
			i := rng.Intn(m)
			switch rng.Intn(10) {
			case 0:
				vals[i] = 0 // drops out entirely
			case 1:
				costs[i] = 0 // infinite ratio
			case 2:
				j := rng.Intn(m)
				vals[i], costs[i] = vals[j], costs[j] // exact ratio tie
			default:
				vals[i] = rng.Float64()
				costs[i] = rng.Float64() * 3
			}
		}
		present := make([]bool, m)
		for i := range present {
			present[i] = rng.Intn(5) != 0 // ~20% idle per round
		}
		budget := rng.Float64() * 20

		for i := range items {
			items[i] = Item{}
			if present[i] {
				items[i] = Item{Value: vals[i], Cost: costs[i]}
			}
		}
		want := g.SelectAppend(nil, items, budget)

		rk.BeginRound()
		for i := 0; i < m; i++ {
			if present[i] {
				rk.Offer(i, vals[i], costs[i], 0)
			}
		}
		got := rk.SelectAppend(nil, 1, budget)

		if len(got) != len(want) {
			t.Fatalf("round %d: ranked chose %d items, greedy %d (%v vs %v)", round, len(got), len(want), got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("round %d: selection diverged at position %d: %v vs %v", round, k, got, want)
			}
		}
	}
}

// TestRankedMatchesTiered is the same property against the strict-priority
// cascade, including budget exhaustion skipping lower tiers.
func TestRankedMatchesTiered(t *testing.T) {
	const m, numTiers = 48, 3
	rng := rand.New(rand.NewSource(11))
	rk := NewRanked(m)
	td := &Tiered{}
	items := make([]Item, m)
	tiers := make([]uint8, m)
	vals := make([]float64, m)
	costs := make([]float64, m)
	for i := range vals {
		vals[i] = rng.Float64()
		costs[i] = rng.Float64() * 3
		tiers[i] = uint8(rng.Intn(numTiers))
	}
	for round := 0; round < 500; round++ {
		for n := rng.Intn(m / 2); n > 0; n-- {
			i := rng.Intn(m)
			if rng.Intn(8) == 0 {
				vals[i] = 0
			} else {
				vals[i] = rng.Float64()
				costs[i] = rng.Float64() * 3
			}
		}
		present := make([]bool, m)
		for i := range present {
			present[i] = rng.Intn(4) != 0
		}
		// Include tiny budgets so the tier-skip guard is exercised.
		budget := rng.Float64() * 6

		for i := range items {
			items[i] = Item{}
			if present[i] {
				items[i] = Item{Value: vals[i], Cost: costs[i]}
			}
		}
		want := td.SelectAppend(nil, items, tiers, numTiers, budget)

		rk.BeginRound()
		for i := 0; i < m; i++ {
			if present[i] {
				rk.Offer(i, vals[i], costs[i], tiers[i])
			}
		}
		got := rk.SelectAppend(nil, numTiers, budget)

		if len(got) != len(want) {
			t.Fatalf("round %d: ranked chose %d items, tiered %d (%v vs %v)", round, len(got), len(want), got, want)
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("round %d: selection diverged at position %d: %v vs %v", round, k, got, want)
			}
		}
	}
}

// TestRankedSteadyStateAllocFree: once buffers have grown, rounds with churn
// must not allocate.
func TestRankedSteadyStateAllocFree(t *testing.T) {
	const m = 256
	rk := NewRanked(m)
	dst := make([]int, 0, m)
	run := func(round int) {
		rk.BeginRound()
		for i := 0; i < m; i++ {
			v := float64((i*31+round*17)%97) / 97
			rk.Offer(i, v+0.01, float64(i%7)+1, uint8(i%2))
		}
		dst = rk.SelectAppend(dst[:0], 2, 64)
	}
	for r := 0; r < 8; r++ {
		run(r)
	}
	round := 8
	avg := testing.AllocsPerRun(100, func() {
		run(round)
		round++
	})
	if avg != 0 {
		t.Fatalf("steady-state Ranked round allocated %.1f times", avg)
	}
}

// TestRatioRankShrinks: the shared sort scratch must release memory after a
// transient m spike instead of pinning the high-water mark forever.
func TestRatioRankShrinks(t *testing.T) {
	g := &Greedy{}
	big := make([]Item, 100_000)
	for i := range big {
		big[i] = Item{Value: 1, Cost: 1}
	}
	g.SelectAppend(nil, big, 10)
	if cap(g.rank.order) < len(big) {
		t.Fatalf("scratch did not grow to the spike: cap %d", cap(g.rank.order))
	}
	small := big[:2000]
	g.SelectAppend(nil, small, 10)
	if cap(g.rank.order) > len(big)/4 {
		t.Fatalf("scratch still pinned at spike size: cap %d after m=%d round", cap(g.rank.order), len(small))
	}
	// And it must still produce correct selections after shrinking.
	sel := g.SelectAppend(nil, small, 3)
	if len(sel) != 3 {
		t.Fatalf("post-shrink selection wrong: %v", sel)
	}
}
