package knapsack

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// naiveTiered is an independent reimplementation of the strict-priority
// semantics used as a reference oracle: per tier, sort a copied index list
// by ratio and take greedily with fill.
func naiveTiered(items []Item, tiers []uint8, numTiers int, budget float64) []int {
	var sel []int
	remaining := budget
	for t := 0; t < numTiers; t++ {
		var order []int
		for i, it := range items {
			if it.Value > 0 && clampTier(tiers[i], numTiers) == t {
				order = append(order, i)
			}
		}
		// Insertion sort by descending ratio, index tie-break — deliberately
		// a different algorithm from the production sort.Sort path.
		for a := 1; a < len(order); a++ {
			for b := a; b > 0; b-- {
				ra, rb := ratio(items[order[b]]), ratio(items[order[b-1]])
				if ra > rb || (ra == rb && order[b] < order[b-1]) {
					order[b], order[b-1] = order[b-1], order[b]
				} else {
					break
				}
			}
		}
		for _, i := range order {
			if items[i].Cost <= remaining {
				sel = append(sel, i)
				remaining -= items[i].Cost
			}
		}
	}
	return sel
}

func randTieredInstance(rng *rand.Rand, numTiers int) ([]Item, []uint8) {
	n := 4 + rng.Intn(20)
	items := make([]Item, n)
	tiers := make([]uint8, n)
	for i := range items {
		items[i] = Item{Value: 0.05 + rng.Float64(), Cost: 0.5 + 2.5*rng.Float64()}
		tiers[i] = uint8(rng.Intn(numTiers))
		if rng.Float64() < 0.15 {
			items[i] = Item{} // idle/quarantined slot
		}
	}
	return items, tiers
}

func TestTieredMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := &Tiered{}
	for trial := 0; trial < 300; trial++ {
		numTiers := 1 + rng.Intn(4)
		items, tiers := randTieredInstance(rng, numTiers)
		budget := 1 + rng.Float64()*12
		got := s.SelectAppend(nil, items, tiers, numTiers, budget)
		want := naiveTiered(items, tiers, numTiers, budget)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: tiered %v != naive %v", trial, got, want)
		}
	}
}

func TestTieredSingleTierEqualsGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tiered := &Tiered{}
	greedy := &Greedy{}
	for trial := 0; trial < 200; trial++ {
		items, _ := randTieredInstance(rng, 1)
		tiers := make([]uint8, len(items))
		budget := 1 + rng.Float64()*10
		got := tiered.SelectAppend(nil, items, tiers, 1, budget)
		want := greedy.SelectAppend(nil, items, budget)
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: tiered %v != greedy %v", trial, got, want)
		}
	}
}

// TestTieredStrictPriority: a higher tier is never starved by a lower one —
// any tier-t item left unselected must not fit in the budget remaining at
// its tier's turn, regardless of how attractive lower-tier items are.
func TestTieredStrictPriority(t *testing.T) {
	items := []Item{
		{Value: 0.1, Cost: 3},  // tier 0, terrible ratio
		{Value: 0.9, Cost: 1},  // tier 1, great ratio
		{Value: 0.8, Cost: 1},  // tier 1
		{Value: 0.99, Cost: 1}, // tier 2, best ratio of all
	}
	tiers := []uint8{0, 1, 1, 2}
	s := &Tiered{}
	sel := s.SelectAppend(nil, items, tiers, 3, 4)
	// Tier 0 takes its item first (cost 3), leaving 1 for tier 1's best; the
	// tier-2 item — the best global ratio — is shed.
	want := []int{0, 1}
	if !reflect.DeepEqual(sel, want) {
		t.Fatalf("sel = %v, want %v", sel, want)
	}
}

// TestTieredPerTierLemmaBound: within each tier, the value taken satisfies
// value_t ≥ (1 − c_t/B_t)·OPT_t against the budget B_t the tier saw.
func TestTieredPerTierLemmaBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := &Tiered{}
	dp := &ExactDP{Scale: 0.01}
	for trial := 0; trial < 150; trial++ {
		numTiers := 2 + rng.Intn(3)
		items, tiers := randTieredInstance(rng, numTiers)
		budget := 2 + rng.Float64()*10
		sel := s.SelectAppend(nil, items, tiers, numTiers, budget)
		inSel := make([]bool, len(items))
		for _, i := range sel {
			inSel[i] = true
		}
		remaining := budget
		for tier := 0; tier < numTiers; tier++ {
			var sub []Item
			var got, c float64
			for i, it := range items {
				if clampTier(tiers[i], numTiers) != tier || it.Value <= 0 {
					continue
				}
				sub = append(sub, it)
				if it.Cost > c {
					c = it.Cost
				}
				if inSel[i] {
					got += it.Value
				}
			}
			if len(sub) == 0 {
				continue
			}
			opt := TotalValue(sub, dp.Select(sub, remaining))
			if remaining > 0 && c < remaining {
				if bound := (1 - c/remaining) * opt; got < bound-1e-6 {
					t.Fatalf("trial %d tier %d: value %v < (1-%v/%v)·OPT = %v",
						trial, tier, got, c, remaining, bound)
				}
			}
			for i, it := range items {
				if inSel[i] && clampTier(tiers[i], numTiers) == tier {
					remaining -= it.Cost
				}
			}
		}
	}
}

// TestTieredInTierBudgetFlow is the breaker/governor interplay guarantee:
// when a stream is quarantined (its item zeroed), the budget it frees is
// offered to its own tier's remaining members before anything cascades to
// lower tiers. Lower tiers may gain only from the residue.
func TestTieredInTierBudgetFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := &Tiered{}
	for trial := 0; trial < 200; trial++ {
		numTiers := 2 + rng.Intn(3)
		items, tiers := randTieredInstance(rng, numTiers)
		budget := 2 + rng.Float64()*8
		base := s.SelectAppend(nil, items, tiers, numTiers, budget)
		if len(base) == 0 {
			continue
		}
		// Quarantine one selected stream.
		q := base[rng.Intn(len(base))]
		qTier := clampTier(tiers[q], numTiers)
		mixed := make([]Item, len(items))
		copy(mixed, items)
		mixed[q] = Item{}
		after := s.SelectAppend(nil, mixed, tiers, numTiers, budget)

		tierValue := func(sel []int, tier int, skip int) float64 {
			var v float64
			for _, i := range sel {
				if i != skip && clampTier(tiers[i], numTiers) == tier {
					v += items[i].Value
				}
			}
			return v
		}
		// The quarantined stream's own tier (minus the stream itself) must
		// not lose value — its freed budget stays in-tier first.
		if before, now := tierValue(base, qTier, q), tierValue(after, qTier, -1); now < before-1e-9 {
			t.Fatalf("trial %d: tier %d value dropped %v → %v after quarantining stream %d",
				trial, qTier, before, now, q)
		}
		// Tiers above the quarantined one are budget-upstream: their solve
		// saw the same remaining budget, so their selection is unchanged.
		for tier := 0; tier < qTier; tier++ {
			if b, a := tierValue(base, tier, -1), tierValue(after, tier, -1); math.Abs(b-a) > 1e-9 {
				t.Fatalf("trial %d: upstream tier %d changed %v → %v", trial, tier, b, a)
			}
		}
	}
}

func TestTieredQuarantinedNeverSelected(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	s := &Tiered{}
	for trial := 0; trial < 200; trial++ {
		numTiers := 1 + rng.Intn(4)
		items, tiers := randTieredInstance(rng, numTiers)
		quarantined := make([]bool, len(items))
		for i := range items {
			if rng.Float64() < 0.3 {
				quarantined[i] = true
				items[i] = Item{}
			}
		}
		for _, i := range s.SelectAppend(nil, items, tiers, numTiers, 1+rng.Float64()*10) {
			if quarantined[i] {
				t.Fatalf("trial %d: picked quarantined item %d", trial, i)
			}
		}
	}
}

func TestTieredClampsOutOfRangeTiers(t *testing.T) {
	items := []Item{{Value: 1, Cost: 1}, {Value: 1, Cost: 1}}
	tiers := []uint8{0, 9} // 9 clamps to lowest priority (numTiers-1 = 1)
	s := &Tiered{}
	sel := s.SelectAppend(nil, items, tiers, 2, 1)
	if !reflect.DeepEqual(sel, []int{0}) {
		t.Fatalf("sel = %v, want [0] (clamped tier loses the tie)", sel)
	}
}

func TestTieredSelectAppendZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	const n = 256
	items := make([]Item, n)
	tiers := make([]uint8, n)
	for i := range items {
		items[i] = Item{Value: rng.Float64(), Cost: 0.5 + rng.Float64()}
		tiers[i] = uint8(rng.Intn(4))
	}
	s := &Tiered{}
	dst := make([]int, 0, n)
	// Warm the persistent scratch.
	dst = s.SelectAppend(dst[:0], items, tiers, 4, 64)
	allocs := testing.AllocsPerRun(100, func() {
		dst = s.SelectAppend(dst[:0], items, tiers, 4, 64)
	})
	if allocs != 0 {
		t.Fatalf("SelectAppend allocates %v/op in steady state, want 0", allocs)
	}
}
