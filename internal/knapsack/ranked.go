package knapsack

import "sort"

// Ranked is the incremental counterpart of Greedy and Tiered: a persistent
// score-ordered candidate list that survives across rounds so the per-round
// sorting cost scales with *churn* (candidates whose value or cost changed
// since the previous round) instead of the fleet size.
//
// Protocol per round:
//
//	rk.BeginRound()
//	for every selectable candidate: rk.Offer(id, value, cost)
//	sel = rk.SelectAppend(dst, tiers, numTiers, budget)
//
// Offer compares the candidate against its stored (value, cost): unchanged
// candidates that were also offered last round keep their position in the
// ordered list for free; changed or newly (re)appearing candidates are
// staged. SelectAppend sorts only the staged set — O(d·log d) for d dirty
// candidates — and merges it with the surviving span of last round's order
// in one linear pass. Candidates *not* offered this round drop out during
// the merge, so absence (idle stream, quarantine, admission shed) needs no
// explicit delete call and a revived candidate is simply re-staged.
//
// The resulting order is bit-identical to a from-scratch sort because the
// comparator is a strict total order — ratio descending (zero-cost = +Inf),
// id ascending on ties — so a merge of two internally sorted disjoint
// sequences reproduces the full sort exactly. The selection walk then
// replicates Greedy's ratio-order fill pass (numTiers == 1) or Tiered's
// strict-priority cascade (per-tier lists, lower tiers skipped once the
// remaining budget is exhausted), preserving the Lemma-1 bound per pool.
//
// Zero values ride the same rule as sortByRatio: candidates with value <= 0
// are never listed. All state is persistent and index-addressed, so
// steady-state rounds allocate nothing. Not safe for concurrent use.
type Ranked struct {
	n     int
	round int64

	// Per-candidate state, indexed by id.
	value  []float64
	cost   []float64
	ratios []float64
	tier   []uint8
	stamp  []int64 // round the candidate was last offered with value > 0
	dirty  []bool  // staged this round (changed / re-appeared)

	// Per-tier ordered candidate lists from the last completed round, plus
	// this round's staged ids and the merge scratch.
	live   [][]int32
	staged [][]int32
	merge  []int32

	sorter stagedSorter
}

// NewRanked creates an incremental selector for ids in [0, n).
func NewRanked(n int) *Ranked {
	return &Ranked{
		n:      n,
		value:  make([]float64, n),
		cost:   make([]float64, n),
		ratios: make([]float64, n),
		tier:   make([]uint8, n),
		stamp:  make([]int64, n),
		dirty:  make([]bool, n),
	}
}

// Name identifies the policy in reports.
func (*Ranked) Name() string { return "ranked-incremental" }

// BeginRound opens a new round; every candidate for this round must then be
// Offered before SelectAppend.
func (r *Ranked) BeginRound() {
	r.round++
}

// tierList grows the per-tier lists to cover tier t and returns staged[t]
// for appending.
func (r *Ranked) growTiers(numTiers int) {
	for len(r.live) < numTiers {
		r.live = append(r.live, nil)
		r.staged = append(r.staged, nil)
	}
}

// Offer registers candidate id for this round's selection with the given
// value, cost, and priority tier. A candidate whose (value, cost, tier) is
// unchanged since last round's offer keeps its ordered position for free;
// anything else is staged for the incremental re-sort. Offers with
// value <= 0 are dropped (matching Greedy's positive-value rule). ids must
// be unique within a round; tier must be < the numTiers later passed to
// SelectAppend.
func (r *Ranked) Offer(id int, value, cost float64, tier uint8) {
	if value <= 0 {
		return
	}
	prev := r.stamp[id]
	r.stamp[id] = r.round
	if prev == r.round-1 && r.value[id] == value && r.cost[id] == cost &&
		r.tier[id] == tier && !r.dirty[id] {
		// Survivor: same score as the position it already holds in live.
		return
	}
	r.value[id] = value
	r.cost[id] = cost
	r.ratios[id] = ratio(Item{Value: value, Cost: cost})
	r.tier[id] = tier
	r.dirty[id] = true
	r.growTiers(int(tier) + 1)
	r.staged[tier] = append(r.staged[tier], int32(id))
}

// less is the strict total order shared with ratioRank: ratio descending,
// id ascending on exact ties.
func (r *Ranked) less(a, b int32) bool {
	ra, rb := r.ratios[a], r.ratios[b]
	if ra != rb {
		return ra > rb
	}
	return a < b
}

// stagedSorter sorts one tier's staged ids without allocating.
type stagedSorter struct {
	r   *Ranked
	ids []int32
}

func (s *stagedSorter) Len() int           { return len(s.ids) }
func (s *stagedSorter) Less(a, b int) bool { return s.r.less(s.ids[a], s.ids[b]) }
func (s *stagedSorter) Swap(a, b int)      { s.ids[a], s.ids[b] = s.ids[b], s.ids[a] }

// mergeTier folds tier t's staged ids into its live order: survivors of the
// previous order (offered again this round, not re-staged) keep their
// relative positions, dead entries drop, staged entries merge in sorted
// position. Returns the new live list.
func (r *Ranked) mergeTier(t int) []int32 {
	st := r.staged[t]
	if len(st) > 1 {
		r.sorter.r, r.sorter.ids = r, st
		sort.Sort(&r.sorter)
		r.sorter.ids = nil
	}
	old := r.live[t]
	out := r.merge[:0]
	oi, si := 0, 0
	for oi < len(old) && si < len(st) {
		o := old[oi]
		if r.stamp[o] != r.round || r.dirty[o] {
			oi++ // dead or re-staged: drop from the surviving span
			continue
		}
		if r.less(o, st[si]) {
			out = append(out, o)
			oi++
		} else {
			out = append(out, st[si])
			si++
		}
	}
	for ; oi < len(old); oi++ {
		if o := old[oi]; r.stamp[o] == r.round && !r.dirty[o] {
			out = append(out, o)
		}
	}
	out = append(out, st[si:]...)
	// Swap buffers: old becomes next round's merge scratch.
	r.merge = old[:0]
	r.live[t] = out
	for _, id := range st {
		r.dirty[id] = false
	}
	r.staged[t] = st[:0]
	return out
}

// SelectAppend closes the round: it folds the staged candidates into the
// persistent order and appends the chosen ids to dst. With numTiers == 1
// the walk is exactly Greedy.SelectAppend over the offered candidates; with
// more tiers it is Tiered.SelectAppend's strict-priority cascade, including
// its rule that once the remaining budget hits zero, lower tiers are not
// visited at all.
func (r *Ranked) SelectAppend(dst []int, numTiers int, budget float64) []int {
	if numTiers < 1 {
		numTiers = 1
	}
	r.growTiers(numTiers)
	if len(r.live) > numTiers {
		numTiers = len(r.live) // still merge tiers seen in earlier rounds
	}
	remaining := budget
	for t := 0; t < numTiers; t++ {
		if t > 0 && remaining <= 0 {
			// Tiered's guard: later tiers never run on an exhausted budget
			// (a single-pool Greedy walk, by contrast, always completes and
			// may still pick zero-cost candidates).
			if len(r.staged[t]) > 0 || len(r.live[t]) > 0 {
				r.mergeTier(t) // keep persistence current even when skipped
			}
			continue
		}
		for _, id := range r.mergeTier(t) {
			if r.cost[id] <= remaining {
				dst = append(dst, int(id))
				remaining -= r.cost[id]
			}
		}
	}
	return dst
}
