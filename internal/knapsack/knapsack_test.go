package knapsack

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyBasic(t *testing.T) {
	items := []Item{
		{Value: 0.9, Cost: 1},   // ratio 0.9
		{Value: 0.5, Cost: 2.9}, // ratio ~0.17
		{Value: 0.8, Cost: 1},   // ratio 0.8
		{Value: 0.1, Cost: 0.8}, // ratio 0.125
	}
	g := &Greedy{}
	sel := g.Select(items, 2.0)
	if len(sel) != 2 || sel[0] != 0 || sel[1] != 2 {
		t.Errorf("sel = %v, want [0 2]", sel)
	}
	if v := TotalValue(items, sel); math.Abs(v-1.7) > 1e-12 {
		t.Errorf("value = %v", v)
	}
	if c := TotalCost(items, sel); c != 2 {
		t.Errorf("cost = %v", c)
	}
}

func TestGreedySkipsZeroValue(t *testing.T) {
	items := []Item{{Value: 0, Cost: 1}, {Value: 0.1, Cost: 1}}
	sel := (&Greedy{}).Select(items, 5)
	if len(sel) != 1 || sel[0] != 1 {
		t.Errorf("sel = %v, want [1]", sel)
	}
}

func TestGreedyZeroCostFirst(t *testing.T) {
	items := []Item{{Value: 0.1, Cost: 1}, {Value: 0.01, Cost: 0}}
	sel := (&Greedy{}).Select(items, 1)
	if len(sel) != 2 || sel[0] != 1 {
		t.Errorf("sel = %v, want zero-cost item first", sel)
	}
}

func TestGreedyFillPassBeatsPrefix(t *testing.T) {
	// Prefix greedy stops at the big item; fill greedy skips past it and
	// takes the small one.
	items := []Item{
		{Value: 1.0, Cost: 1},   // taken by both
		{Value: 0.9, Cost: 2.5}, // doesn't fit after item 0 (budget 2)
		{Value: 0.3, Cost: 1},   // fill pass takes this
	}
	prefix := (&GreedyPrefix{}).Select(items, 2)
	fill := (&Greedy{}).Select(items, 2)
	if TotalValue(items, fill) <= TotalValue(items, prefix) {
		t.Errorf("fill (%v) must beat prefix (%v)", fill, prefix)
	}
}

func TestGreedyEmptyAndInfeasible(t *testing.T) {
	g := &Greedy{}
	if sel := g.Select(nil, 10); len(sel) != 0 {
		t.Errorf("empty items: %v", sel)
	}
	items := []Item{{Value: 1, Cost: 5}}
	if sel := g.Select(items, 1); len(sel) != 0 {
		t.Errorf("infeasible item selected: %v", sel)
	}
}

func TestExactDPOptimal(t *testing.T) {
	// Classic instance where greedy-by-ratio is suboptimal.
	items := []Item{
		{Value: 0.6, Cost: 1}, // ratio 0.6
		{Value: 1.0, Cost: 2}, // ratio 0.5
		{Value: 1.0, Cost: 2}, // ratio 0.5
	}
	dp := &ExactDP{}
	sel := dp.Select(items, 4)
	if v := TotalValue(items, sel); math.Abs(v-2.0) > 1e-9 {
		t.Errorf("DP value = %v, want 2.0 (items 1+2)", v)
	}
}

func TestFractionalOPTUpperBounds(t *testing.T) {
	items := []Item{{Value: 1, Cost: 2}, {Value: 1, Cost: 2}, {Value: 0.3, Cost: 1}}
	opt := FractionalOPT(items, 3)
	// Takes item0 (cost 2) + half of item1: 1 + 0.5 = 1.5.
	if math.Abs(opt-1.5) > 1e-12 {
		t.Errorf("fractional OPT = %v, want 1.5", opt)
	}
	dp := (&ExactDP{}).Select(items, 3)
	if TotalValue(items, dp) > opt+1e-9 {
		t.Errorf("DP %v exceeds fractional bound %v", TotalValue(items, dp), opt)
	}
}

// TestLemma1ApproximationRatio is the paper's Lemma 1 as a property test:
// on random instances with video-like costs, greedy value ≥ (1−c/B)·OPT.
func TestLemma1ApproximationRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	costs := []float64{2.9, 1.0, 0.8} // I, P, B
	g := &GreedyPrefix{}
	dp := &ExactDP{Scale: 0.1}
	for trial := 0; trial < 300; trial++ {
		n := 3 + rng.Intn(12)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{
				Value: rng.Float64(),
				Cost:  costs[rng.Intn(len(costs))],
			}
		}
		budget := 3 + rng.Float64()*12
		vg := TotalValue(items, g.Select(items, budget))
		opt := FractionalOPT(items, budget)
		if opt == 0 {
			continue
		}
		bound := (1 - MaxCost(items)/budget) * opt
		if vg < bound-1e-9 {
			t.Fatalf("trial %d: greedy %v < (1-c/B)·opt_F %v (items=%v budget=%v)",
				trial, vg, bound, items, budget)
		}
		// The fill-pass greedy can only do better.
		if vf := TotalValue(items, (&Greedy{}).Select(items, budget)); vf < vg-1e-9 {
			t.Fatalf("trial %d: fill greedy %v below prefix greedy %v", trial, vf, vg)
		}
		// And the DP optimum respects the fractional bound.
		if vdp := TotalValue(items, dp.Select(items, budget)); vdp > opt+1e-6 {
			t.Fatalf("trial %d: DP %v above fractional %v", trial, vdp, opt)
		}
	}
}

func TestSelectorsRespectBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	selectors := []Selector{&Greedy{}, &GreedyPrefix{}, &RoundRobin{}, NewRandom(1), &ExactDP{Scale: 0.1}}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{Value: rng.Float64(), Cost: 0.5 + rng.Float64()*3}
		}
		budget := rng.Float64() * 8
		for _, s := range selectors {
			sel := s.Select(items, budget)
			if c := TotalCost(items, sel); c > budget+1e-9 {
				t.Errorf("%s: cost %v exceeds budget %v", s.Name(), c, budget)
			}
			seen := map[int]bool{}
			for _, i := range sel {
				if i < 0 || i >= n || seen[i] {
					t.Errorf("%s: invalid/duplicate index %d in %v", s.Name(), i, sel)
				}
				seen[i] = true
			}
		}
	}
}

func TestRoundRobinCyclesFairly(t *testing.T) {
	items := make([]Item, 6)
	for i := range items {
		items[i] = Item{Value: 1, Cost: 1}
	}
	rr := &RoundRobin{}
	counts := make([]int, 6)
	// Budget 2 per round: each round decodes 2 streams, cursor advances.
	for round := 0; round < 9; round++ {
		for _, i := range rr.Select(items, 2) {
			counts[i]++
		}
	}
	for i, c := range counts {
		if c != 3 {
			t.Errorf("stream %d selected %d times, want 3 (fair rotation)", i, c)
		}
	}
}

func TestRoundRobinIgnoresValues(t *testing.T) {
	items := []Item{{Value: 0.001, Cost: 1}, {Value: 0.999, Cost: 1}}
	rr := &RoundRobin{}
	sel := rr.Select(items, 1)
	if len(sel) != 1 || sel[0] != 0 {
		t.Errorf("round-robin must start at stream 0 regardless of value: %v", sel)
	}
}

func TestRoundRobinSkipsIdleStreams(t *testing.T) {
	items := []Item{{}, {Value: 0.5, Cost: 1}, {}}
	rr := &RoundRobin{}
	sel := rr.Select(items, 5)
	if len(sel) != 1 || sel[0] != 1 {
		t.Errorf("sel = %v, want only the active stream", sel)
	}
}

func TestRandomSelectorDeterministicSeed(t *testing.T) {
	items := make([]Item, 20)
	for i := range items {
		items[i] = Item{Value: 1, Cost: 1}
	}
	a, b := NewRandom(5), NewRandom(5)
	for round := 0; round < 10; round++ {
		sa, sb := a.Select(items, 7), b.Select(items, 7)
		if len(sa) != len(sb) {
			t.Fatalf("round %d: diverged", round)
		}
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("round %d: diverged at %d", round, i)
			}
		}
	}
}

func TestRandomCoversAllStreamsEventually(t *testing.T) {
	items := make([]Item, 10)
	for i := range items {
		items[i] = Item{Value: 1, Cost: 1}
	}
	r := NewRandom(3)
	seen := map[int]bool{}
	for round := 0; round < 200; round++ {
		for _, i := range r.Select(items, 3) {
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("random selector covered %d/10 streams", len(seen))
	}
}

func TestMaxCost(t *testing.T) {
	items := []Item{{Cost: 1}, {Cost: 2.9}, {Cost: 0.8}}
	if got := MaxCost(items); got != 2.9 {
		t.Errorf("MaxCost = %v", got)
	}
	if got := MaxCost(nil); got != 0 {
		t.Errorf("MaxCost(nil) = %v", got)
	}
}

// Property: greedy never selects an item that individually exceeds budget,
// and the selection is always feasible.
func TestGreedyFeasibilityProperty(t *testing.T) {
	f := func(vals []float64, budgetRaw float64) bool {
		items := make([]Item, len(vals))
		for i, v := range vals {
			items[i] = Item{Value: math.Abs(math.Mod(v, 1)), Cost: 0.5 + math.Abs(math.Mod(v*3, 3))}
		}
		budget := math.Abs(math.Mod(budgetRaw, 20))
		sel := (&Greedy{}).Select(items, budget)
		return TotalCost(items, sel) <= budget+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundRobinSkipsUnservable(t *testing.T) {
	// Stream 0's dependency chain exceeds the whole budget: round-robin
	// must not starve behind it.
	items := []Item{
		{Value: 1, Cost: 10}, // unservable at budget 3
		{Value: 1, Cost: 1},
		{Value: 1, Cost: 1},
	}
	rr := &RoundRobin{}
	sel := rr.Select(items, 3)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Errorf("sel = %v, want [1 2] (skipping the unservable stream)", sel)
	}
}
