package knapsack

import (
	"math"
	"math/rand"
	"testing"
)

// bruteOPT enumerates all 2^m subsets and returns the best feasible value —
// the true 0/1 optimum, tractable for the small m used here.
func bruteOPT(items []Item, budget float64) float64 {
	best := 0.0
	for mask := 0; mask < 1<<len(items); mask++ {
		var v, c float64
		for i := range items {
			if mask&(1<<i) != 0 {
				v += items[i].Value
				c += items[i].Cost
			}
		}
		if c <= budget+1e-9 && v > best {
			best = v
		}
	}
	return best
}

// randInstance draws a small video-like knapsack instance: costs from the
// calibrated picture-type set (occasionally perturbed to a tenth of a unit),
// values in [0,1] with some zeros (idle/hopeless streams), and a budget that
// can afford at least the largest single item.
func randInstance(rng *rand.Rand) ([]Item, float64) {
	m := 1 + rng.Intn(12)
	items := make([]Item, m)
	costChoices := []float64{0.8, 1.0, 2.9}
	for i := range items {
		c := costChoices[rng.Intn(len(costChoices))]
		if rng.Float64() < 0.3 {
			// Dependency-inflated cost: a chain of undecoded references.
			c += 0.1 * float64(rng.Intn(40))
		}
		v := rng.Float64()
		if rng.Float64() < 0.15 {
			v = 0
		}
		items[i] = Item{Value: v, Cost: math.Round(c*10) / 10}
	}
	var total float64
	for _, it := range items {
		total += it.Cost
	}
	lo := MaxCost(items)
	budget := lo + rng.Float64()*(total-lo+1)
	return items, math.Round(budget*10) / 10
}

// TestGreedyLemma1PropertyVsBruteForce checks, on randomized instances, the
// chain of Lemma 1 guarantees against the exhaustive optimum:
//
//	greedy ≥ prefix ≥ (1−c/B)·opt_F ≥ (1−c/B)·OPT
//
// plus feasibility of every returned selection and that the DP oracle
// matches the brute force.
func TestGreedyLemma1PropertyVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const eps = 1e-9
	for trial := 0; trial < 500; trial++ {
		items, budget := randInstance(rng)
		c := MaxCost(items)
		if c > budget {
			t.Fatalf("trial %d: instance generator broke its own invariant (c=%v > B=%v)", trial, c, budget)
		}
		bound := 1 - c/budget

		opt := bruteOPT(items, budget)
		fracOPT := FractionalOPT(items, budget)
		if fracOPT < opt-1e-6 {
			t.Fatalf("trial %d: fractional OPT %v below integral OPT %v", trial, fracOPT, opt)
		}

		greedySel := new(Greedy).Select(items, budget)
		prefixSel := new(GreedyPrefix).Select(items, budget)
		dpSel := new(ExactDP).Select(items, budget)
		for name, sel := range map[string][]int{"greedy": greedySel, "prefix": prefixSel, "dp": dpSel} {
			if got := TotalCost(items, sel); got > budget+eps {
				t.Fatalf("trial %d: %s overspent: %v > %v", trial, name, got, budget)
			}
		}

		greedyVal := TotalValue(items, greedySel)
		prefixVal := TotalValue(items, prefixSel)
		if greedyVal < prefixVal-eps {
			t.Fatalf("trial %d: fill pass lost value: greedy %v < prefix %v", trial, greedyVal, prefixVal)
		}
		if prefixVal < bound*fracOPT-1e-6 {
			t.Fatalf("trial %d: Lemma 1 violated: prefix %v < (1-%v/%v)·opt_F=%v\nitems=%+v budget=%v",
				trial, prefixVal, c, budget, bound*fracOPT, items, budget)
		}
		if greedyVal < bound*opt-1e-6 {
			t.Fatalf("trial %d: greedy %v < (1-c/B)·OPT = %v (OPT=%v)\nitems=%+v budget=%v",
				trial, greedyVal, bound*opt, opt, items, budget)
		}
		if dpVal := TotalValue(items, dpSel); math.Abs(dpVal-opt) > 1e-6 {
			t.Fatalf("trial %d: ExactDP %v != brute-force OPT %v\nitems=%+v budget=%v",
				trial, dpVal, opt, items, budget)
		}
	}
}

// TestSparseGreedyMatchesDense is the compact-solve equivalence property:
// on random instances, SelectSparseAppend over the non-zero slots (in
// ascending stream order) must return exactly SelectAppend's selection over
// the dense array, including ratio ties and the fill pass.
func TestSparseGreedyMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var g, gs Greedy
	for trial := 0; trial < 300; trial++ {
		m := 1 + rng.Intn(64)
		items := make([]Item, m)
		var cands []Candidate
		for i := range items {
			if rng.Float64() < 0.4 {
				continue // idle slot
			}
			v := float64(rng.Intn(5)) / 4 // includes 0 and duplicate ratios
			c := float64(1+rng.Intn(4)) / 2
			if rng.Float64() < 0.1 {
				c = 0
			}
			items[i] = Item{Value: v, Cost: c}
			if v != 0 || c != 0 {
				cands = append(cands, Candidate{Stream: int32(i), Value: v, Cost: c})
			}
		}
		budget := rng.Float64() * 8
		dense := g.SelectAppend(nil, items, budget)
		sparse := gs.SelectSparseAppend(nil, cands, budget)
		if len(dense) != len(sparse) {
			t.Fatalf("trial %d: dense %v vs sparse %v", trial, dense, sparse)
		}
		for k := range dense {
			if dense[k] != sparse[k] {
				t.Fatalf("trial %d: dense %v vs sparse %v", trial, dense, sparse)
			}
		}
		cands = cands[:0]
	}
}
