package knapsack

import "sort"

// Tiered is the admission-control variant of Greedy used under overload:
// every item carries a priority tier (0 = highest, e.g. fire detection), and
// the solve proceeds tier by tier in strict priority order — tier 0 solves
// over the whole budget, each lower tier over whatever the tiers above left
// behind. When the governor shrinks the effective budget, the remainder
// reaching low tiers shrinks first, so low-priority streams are shed first.
//
// The in-tier budget-flow guarantee falls out of the ordering: within a
// tier the solve is exactly Greedy (ratio order + fill), so the budget a
// breaker-quarantined stream would have consumed is first offered to the
// other members of its own tier — they are filled before the residue
// cascades — and never leaks straight to the global pool where lower tiers
// would bid on it.
//
// Within each tier the Lemma-1 guarantee holds against the budget the tier
// actually saw: tier t's selected value is ≥ (1−c_t/B_t)·OPT_t for
// approximately fractional costs, where B_t is the budget remaining when
// tier t solved and c_t the tier's largest item cost.
//
// With numTiers == 1 the result is identical to Greedy.SelectAppend. All
// scratch is persistent: steady-state rounds allocate nothing beyond growth
// of the caller's dst.
type Tiered struct {
	sub ratioRank // per-tier ratio order, reused across tiers and rounds
}

// Name identifies the policy in reports.
func (*Tiered) Name() string { return "tiered-greedy" }

// SelectAppend appends the chosen indices to dst, solving tiers in priority
// order. tiers[i] is item i's tier and must be < numTiers (out-of-range
// tiers are clamped to the lowest priority); len(tiers) must equal
// len(items).
func (s *Tiered) SelectAppend(dst []int, items []Item, tiers []uint8, numTiers int, budget float64) []int {
	if len(items) == 0 || numTiers <= 0 {
		return dst
	}
	remaining := budget
	for t := 0; t < numTiers && remaining > 0; t++ {
		s.sub.sortTier(items, tiers, uint8(t), numTiers)
		for _, i := range s.sub.order {
			if items[i].Cost <= remaining {
				dst = append(dst, i)
				remaining -= items[i].Cost
			}
		}
	}
	return dst
}

func clampTier(t uint8, numTiers int) int {
	if int(t) >= numTiers {
		return numTiers - 1
	}
	return int(t)
}

// sortTier ranks tier-t positive-value candidates by descending ratio,
// sharing the ratioRank zero-alloc machinery.
func (r *ratioRank) sortTier(items []Item, tiers []uint8, t uint8, numTiers int) {
	r.ensure(len(items))
	r.order = r.order[:0]
	r.ratios = r.ratios[:len(items)]
	for i, it := range items {
		if it.Value > 0 && clampTier(tiers[i], numTiers) == int(t) {
			r.order = append(r.order, i)
			r.ratios[i] = ratio(it)
		}
	}
	sort.Sort(r)
}
