package bandit

import "fmt"

// StreamState is one stream's portable slice of a TemporalEstimator: the
// window entries (which of the last w rounds selected the stream, with their
// rewards) plus the last-selection clock. It is the unit of state transfer
// when a stream migrates between gates in a cluster.
//
// The representation is canonical — entries ascend by round and carry
// absolute 1-based round numbers — so two estimators that agree on the
// stream's history export byte-identical states regardless of the order in
// which other streams were pushed around it. Rebuilding the aggregates from
// an import replays the additions in round order; because the gate's rewards
// are exactly representable (0 or 1), the rebuilt rewardSum is bit-identical
// to the donor's running total.
type StreamState struct {
	// Rounds holds the absolute rounds within the window (t-w, t] in which
	// the stream was selected, strictly ascending. Rewards is aligned.
	Rounds  []int64
	Rewards []float64
	// LastSel is the 1-based round of the stream's most recent selection
	// ever (0 = never). It may predate the window.
	LastSel int64
}

// slotRound returns the absolute round currently mapped to ring slot s, or 0
// if no round in the live window (t-w, t] maps there. Round r lives in slot
// (r-1) mod w, so each live slot holds exactly one round.
func (e *TemporalEstimator) slotRound(s int) int64 {
	if e.t == 0 {
		return 0
	}
	// The unique r in [t-w+1, t] with (r-1) mod w == s is r = t - d where
	// d = (t-1-s) mod w.
	d := (e.t - 1 - int64(s)) % int64(e.w)
	if d < 0 {
		d += int64(e.w)
	}
	r := e.t - d
	if r < 1 {
		return 0
	}
	return r
}

// ExportStream extracts stream i's window entries and selection clock in
// canonical (round-ascending) order. The estimator is unchanged.
func (e *TemporalEstimator) ExportStream(i int) (StreamState, error) {
	if i < 0 || i >= e.m {
		return StreamState{}, fmt.Errorf("bandit: export stream %d out of range [0,%d)", i, e.m)
	}
	st := StreamState{LastSel: e.lastSel[i]}
	lo := e.t - int64(e.w)
	if lo < 0 {
		lo = 0
	}
	for r := lo + 1; r <= e.t; r++ {
		s := int((r - 1) % int64(e.w))
		for k, id := range e.slotIDs[s] {
			if int(id) == i {
				st.Rounds = append(st.Rounds, r)
				st.Rewards = append(st.Rewards, e.slotReward[s][k])
				break
			}
		}
	}
	return st, nil
}

// ImportStream installs an exported state for stream i, which must currently
// be empty (freshly reset or never selected): the estimator clock t is NOT
// changed, so the caller must have aligned it (AdvanceTo) with the donor's
// clock before importing. Entries are folded in ascending round order,
// reproducing the donor's aggregate arithmetic exactly.
func (e *TemporalEstimator) ImportStream(i int, st StreamState) error {
	if i < 0 || i >= e.m {
		return fmt.Errorf("bandit: import stream %d out of range [0,%d)", i, e.m)
	}
	if e.selCount[i] != 0 || e.rewardSum[i] != 0 || e.lastSel[i] != 0 {
		return fmt.Errorf("bandit: import into non-empty stream %d", i)
	}
	if len(st.Rounds) != len(st.Rewards) {
		return fmt.Errorf("bandit: import: %d rounds with %d rewards", len(st.Rounds), len(st.Rewards))
	}
	if st.LastSel > e.t {
		return fmt.Errorf("bandit: import: lastSel %d ahead of clock %d", st.LastSel, e.t)
	}
	lo := e.t - int64(e.w)
	prev := int64(0)
	for k, r := range st.Rounds {
		if r <= lo || r > e.t || r < 1 {
			return fmt.Errorf("bandit: import: round %d outside window (%d,%d]", r, lo, e.t)
		}
		if r <= prev {
			return fmt.Errorf("bandit: import: rounds not strictly ascending at %d", r)
		}
		prev = r
		if k == len(st.Rounds)-1 && st.LastSel != r {
			return fmt.Errorf("bandit: import: lastSel %d disagrees with newest entry %d", st.LastSel, r)
		}
	}
	for k, r := range st.Rounds {
		s := int((r - 1) % int64(e.w))
		e.slotIDs[s] = append(e.slotIDs[s], int32(i))
		e.slotReward[s] = append(e.slotReward[s], st.Rewards[k])
		e.selCount[i]++
		e.rewardSum[i] += st.Rewards[k]
	}
	e.lastSel[i] = st.LastSel
	return nil
}

// RemoveStream erases stream i's window entries and aggregates, returning it
// to the never-selected state. The estimator clock is unchanged. Used when a
// stream migrates away from this gate.
func (e *TemporalEstimator) RemoveStream(i int) error {
	if i < 0 || i >= e.m {
		return fmt.Errorf("bandit: remove stream %d out of range [0,%d)", i, e.m)
	}
	for s := 0; s < e.w; s++ {
		ids, rew := e.slotIDs[s], e.slotReward[s]
		out := 0
		for k, id := range ids {
			if int(id) == i {
				continue
			}
			ids[out], rew[out] = ids[k], rew[k]
			out++
		}
		e.slotIDs[s], e.slotReward[s] = ids[:out], rew[:out]
	}
	e.rewardSum[i] = 0
	e.selCount[i] = 0
	e.lastSel[i] = 0
	return nil
}

// AdvanceTo fast-forwards the estimator clock to absolute round T without
// observing any selections, as if T-t empty rounds had been pushed: slots
// whose rounds fall out of the new window (T-w, T] are evicted and the write
// cursor is realigned. A gate joining a cluster mid-run uses this to align a
// fresh estimator with the cluster clock before importing stream states.
func (e *TemporalEstimator) AdvanceTo(T int64) error {
	if T < e.t {
		return fmt.Errorf("bandit: cannot advance clock backward from %d to %d", e.t, T)
	}
	if T == e.t {
		return nil
	}
	for s := 0; s < e.w; s++ {
		r := e.slotRound(s)
		if r == 0 || len(e.slotIDs[s]) == 0 {
			continue
		}
		if r <= T-int64(e.w) {
			for k, id := range e.slotIDs[s] {
				e.selCount[id]--
				e.rewardSum[id] -= e.slotReward[s][k]
			}
			e.slotIDs[s] = e.slotIDs[s][:0]
			e.slotReward[s] = e.slotReward[s][:0]
		}
	}
	e.pos = int(T % int64(e.w))
	e.t = T
	return nil
}
