package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func mustEstimator(t *testing.T, m, w int) *TemporalEstimator {
	t.Helper()
	e, err := NewTemporalEstimator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewTemporalEstimatorValidation(t *testing.T) {
	if _, err := NewTemporalEstimator(0, 5); err == nil {
		t.Error("m=0 must error")
	}
	if _, err := NewTemporalEstimator(5, 0); err == nil {
		t.Error("w=0 must error")
	}
	e := mustEstimator(t, 3, 7)
	if e.Streams() != 3 || e.Window() != 7 || e.Round() != 0 {
		t.Errorf("fresh estimator: m=%d w=%d t=%d", e.Streams(), e.Window(), e.Round())
	}
}

func TestPushLengthMismatch(t *testing.T) {
	e := mustEstimator(t, 2, 3)
	if err := e.Push([]bool{true}, []float64{1, 0}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestNeverSelectedOutranksZeroReward(t *testing.T) {
	e := mustEstimator(t, 2, 5)
	for i := 0; i < 10; i++ {
		if err := e.Push([]bool{true, false}, []float64{0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Stream 1 was never selected: its bonus must dominate stream 0's,
	// which is selected every round with zero reward.
	if e.Estimate(1) <= e.Estimate(0) {
		t.Errorf("never-selected stream (%v) must outrank zero-reward regular (%v)",
			e.Estimate(1), e.Estimate(0))
	}
	if e.Bonus(1) > ExplorationCap {
		t.Errorf("bonus %v exceeds cap", e.Bonus(1))
	}
}

func TestBonusGrowsWithAge(t *testing.T) {
	e := mustEstimator(t, 2, 5)
	// Select stream 1 once, then starve it.
	e.Push([]bool{false, true}, []float64{0, 0})
	ages := []float64{}
	for i := 0; i < 50; i++ {
		e.Push([]bool{true, false}, []float64{0, 0})
		ages = append(ages, e.Bonus(1))
	}
	for i := 1; i < len(ages); i++ {
		if ages[i] < ages[i-1] {
			t.Fatalf("bonus must be non-decreasing in age: %v then %v", ages[i-1], ages[i])
		}
	}
	if ages[len(ages)-1] <= ages[0] {
		t.Error("bonus must strictly grow over a long starvation")
	}
}

func TestExploitationTracksSelectionMean(t *testing.T) {
	e := mustEstimator(t, 1, 4)
	rewards := []float64{1, 0, 1, 1}
	for _, r := range rewards {
		if err := e.Push([]bool{true}, []float64{r}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Exploit(0); got != 0.75 {
		t.Errorf("Exploit = %v, want 0.75", got)
	}
}

func TestWindowEviction(t *testing.T) {
	e := mustEstimator(t, 1, 3)
	// Rewards 1,1,1 then 0,0,0: after six pushes only zeros remain.
	for _, r := range []float64{1, 1, 1, 0, 0, 0} {
		if err := e.Push([]bool{true}, []float64{r}); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Exploit(0); got != 0 {
		t.Errorf("after eviction Exploit = %v, want 0", got)
	}
	// Selected in the most recent round: age 0, window count 3.
	want := ExplorationScale * math.Sqrt(math.Log(2)/4)
	if bonus := e.Bonus(0); math.Abs(bonus-want) > 1e-12 {
		t.Errorf("bonus = %v, want %v", bonus, want)
	}
}

func TestUnselectedRoundsDoNotDiluteReward(t *testing.T) {
	// The exploitation term is the per-selection mean: skipping rounds
	// must not dilute a stream's observed reward rate (see the package
	// comment for why this deviates from the paper's /w form).
	e := mustEstimator(t, 1, 4)
	e.Push([]bool{true}, []float64{1})
	e.Push([]bool{false}, []float64{0})
	e.Push([]bool{false}, []float64{0})
	e.Push([]bool{true}, []float64{1})
	if got := e.Exploit(0); got != 1 {
		t.Errorf("Exploit = %v, want 1 (2 rewards over 2 selections)", got)
	}
	// Never-selected stream: no reward estimate.
	e2 := mustEstimator(t, 1, 4)
	e2.Push([]bool{false}, []float64{0})
	if got := e2.Exploit(0); got != 0 {
		t.Errorf("never-selected Exploit = %v, want 0", got)
	}
}

func TestEstimatesBulk(t *testing.T) {
	e := mustEstimator(t, 3, 2)
	e.Push([]bool{true, false, true}, []float64{1, 0, 0})
	got := e.Estimates(nil)
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i := range got {
		if got[i] != e.Estimate(i) {
			t.Errorf("bulk[%d] = %v, want %v", i, got[i], e.Estimate(i))
		}
	}
	// Reuse path.
	dst := make([]float64, 3)
	if out := e.Estimates(dst); &out[0] != &dst[0] {
		t.Error("Estimates should reuse the provided slice")
	}
}

func TestExplorationFavorsRarelySelected(t *testing.T) {
	// Two streams with identical reward when selected; one selected 10x
	// more often. The rare one must carry a larger exploration bonus.
	e := mustEstimator(t, 2, 100)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		sel := []bool{true, rng.Intn(10) == 0}
		e.Push(sel, []float64{0.5, 0.5})
	}
	bonus0 := e.Estimate(0) - e.Exploit(0)
	bonus1 := e.Estimate(1) - e.Exploit(1)
	if bonus1 <= bonus0 {
		t.Errorf("rare stream bonus %v must exceed frequent stream bonus %v", bonus1, bonus0)
	}
}

func TestTemporalEstimatorLearnsPersistentEvents(t *testing.T) {
	// A stream whose necessity turns on for long stretches: the estimator
	// should score it higher during stretches than in quiet periods.
	e := mustEstimator(t, 1, 5)
	// Quiet for 50 rounds.
	for i := 0; i < 50; i++ {
		e.Push([]bool{true}, []float64{0})
	}
	quiet := e.Estimate(0)
	// Event for 50 rounds.
	for i := 0; i < 50; i++ {
		e.Push([]bool{true}, []float64{1})
	}
	busy := e.Estimate(0)
	if busy <= quiet {
		t.Errorf("busy estimate %v must exceed quiet estimate %v", busy, quiet)
	}
}

func TestRegretMeter(t *testing.T) {
	var r RegretMeter
	r.Add(1, 0.4)
	r.Add(1, 1)
	r.Add(0.5, 0.9) // negative gap: the algorithm beat the comparator
	if got := r.Total(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Total = %v, want 0.2", got)
	}
	if r.Rounds() != 3 {
		t.Errorf("Rounds = %d", r.Rounds())
	}
	if len(r.History()) != 3 || r.History()[2] != r.Total() {
		t.Errorf("History = %v", r.History())
	}
}

func TestGrowthExponentSqrt(t *testing.T) {
	// Synthetic √T regret must fit b ≈ 0.5.
	var r RegretMeter
	prev := 0.0
	for t1 := 1; t1 <= 10000; t1++ {
		c := math.Sqrt(float64(t1))
		r.Add(c-prev, 0)
		prev = c
	}
	if b := r.GrowthExponent(); math.Abs(b-0.5) > 0.05 {
		t.Errorf("exponent = %v, want ~0.5", b)
	}
}

func TestGrowthExponentLinear(t *testing.T) {
	var r RegretMeter
	for t1 := 0; t1 < 5000; t1++ {
		r.Add(1, 0)
	}
	if b := r.GrowthExponent(); math.Abs(b-1) > 0.05 {
		t.Errorf("exponent = %v, want ~1", b)
	}
}

func TestGrowthExponentDegenerate(t *testing.T) {
	var r RegretMeter
	if b := r.GrowthExponent(); b != 0 {
		t.Errorf("empty meter exponent = %v", b)
	}
	r.Add(1, 1) // zero regret
	if b := r.GrowthExponent(); b != 0 {
		t.Errorf("zero-regret exponent = %v", b)
	}
}
