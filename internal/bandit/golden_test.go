package bandit

import (
	"math"
	"testing"
)

// naiveEstimate recomputes μ̂ᵢ from the raw selection/reward history by
// literally evaluating the documented formula over the last w rounds —
// no ring buffers, no running aggregates. It is the independent reference
// the estimator is frozen against.
//
//	μ̂ᵢ = rewardSum_{w,i}/T_{w,i} + min(cap, s·sqrt(ln(2+ageᵢ)/(1+T_{w,i})))
func naiveEstimate(sel [][]bool, r [][]float64, w, i int) float64 {
	t := len(sel)
	lo := t - w
	if lo < 0 {
		lo = 0
	}
	count := 0
	sum := 0.0
	for j := lo; j < t; j++ {
		if sel[j][i] {
			count++
			sum += r[j][i]
		}
	}
	exploit := 0.0
	if count > 0 {
		exploit = sum / float64(count)
	}
	last := int64(0) // 1-based round of last selection, over the full history
	for j := 0; j < t; j++ {
		if sel[j][i] {
			last = int64(j + 1)
		}
	}
	age := float64(int64(t) - last)
	bonus := ExplorationScale * math.Sqrt(math.Log(2+age)/float64(1+count))
	if bonus > ExplorationCap {
		bonus = ExplorationCap
	}
	return exploit + bonus
}

// TestTemporalEstimatorGoldenValues pins the estimator to hand-computed
// values of the §5.1 formula on a fixed reward sequence, so refactors of
// the feedback path cannot silently drift the UCB math.
func TestTemporalEstimatorGoldenValues(t *testing.T) {
	e, err := NewTemporalEstimator(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	push := func(sel []bool, r []float64) {
		t.Helper()
		if err := e.Push(sel, r); err != nil {
			t.Fatal(err)
		}
	}
	push([]bool{true, true, false}, []float64{1, 0, 0})
	push([]bool{true, false, false}, []float64{0, 0, 0})

	// After round 2 (window holds rounds 1-2, t=2):
	//  s0: T=2, sum=1 → exploit 1/2; age 0 → bonus 0.35·sqrt(ln2/3)
	//  s1: T=1, sum=0 → exploit 0;   age 1 → bonus 0.35·sqrt(ln3/2)
	//  s2: T=0        → exploit 0;   age 2 → bonus 0.35·sqrt(ln4/1)
	golden2 := []float64{
		0.5 + 0.16823646,
		0.0 + 0.25940317,
		0.0 + 0.41209351,
	}
	for i, want := range golden2 {
		if got := e.Estimate(i); math.Abs(got-want) > 1e-7 {
			t.Errorf("round 2, stream %d: μ̂ = %.8f, want %.8f", i, got, want)
		}
	}

	push([]bool{false, true, false}, []float64{0, 1, 0})
	push([]bool{true, false, false}, []float64{1, 0, 0})
	push([]bool{false, false, false}, []float64{0, 0, 0})

	// After round 5 (window holds rounds 3-5: round 1-2 evicted, t=5):
	//  s0: T=1 (round 4), sum=1 → exploit 1; age 1 → bonus 0.35·sqrt(ln3/2)
	//  s1: T=1 (round 3), sum=1 → exploit 1; age 2 → bonus 0.35·sqrt(ln4/2)
	//  s2: T=0, never selected  → exploit 0; age 5 → bonus 0.35·sqrt(ln7/1)
	golden5 := []float64{
		1.0 + 0.25940317,
		1.0 + 0.29139408,
		0.0 + 0.48823558,
	}
	for i, want := range golden5 {
		if got := e.Estimate(i); math.Abs(got-want) > 1e-7 {
			t.Errorf("round 5, stream %d: μ̂ = %.8f, want %.8f", i, got, want)
		}
	}
}

// TestTemporalEstimatorMatchesNaiveRecomputation drives the estimator over
// a long deterministic sequence and checks every round's estimate for every
// stream against the from-scratch recomputation of the formula, exercising
// ring-buffer eviction, idle rounds, and the age term together.
func TestTemporalEstimatorMatchesNaiveRecomputation(t *testing.T) {
	const m, w, rounds = 7, 5, 200
	e, err := NewTemporalEstimator(m, w)
	if err != nil {
		t.Fatal(err)
	}
	var histSel [][]bool
	var histR [][]float64
	// Deterministic pseudo-random schedule: stream i is selected on round
	// j when (j*7+i*13)%5 < 2, with reward 1 when (j+i)%3 == 0.
	for j := 0; j < rounds; j++ {
		sel := make([]bool, m)
		r := make([]float64, m)
		for i := 0; i < m; i++ {
			sel[i] = (j*7+i*13)%5 < 2
			if sel[i] && (j+i)%3 == 0 {
				r[i] = 1
			}
		}
		if err := e.Push(sel, r); err != nil {
			t.Fatal(err)
		}
		histSel = append(histSel, sel)
		histR = append(histR, r)
		for i := 0; i < m; i++ {
			want := naiveEstimate(histSel, histR, w, i)
			if got := e.Estimate(i); math.Abs(got-want) > 1e-9 {
				t.Fatalf("round %d, stream %d: μ̂ = %v, naive recompute = %v", j+1, i, got, want)
			}
		}
	}
}
