// Package bandit implements the online-learning machinery of PacketGame:
// the sliding-window temporal estimator (§5.1) that trades off exploitation
// of recent redundancy feedback against exploration of rarely selected
// streams, and regret accounting used to validate the O(√T) bound (Thm 1).
package bandit

import (
	"fmt"
	"math"
)

// ExplorationCap bounds the UCB exploration bonus. Estimates therefore live
// in [0, 1+ExplorationCap].
const ExplorationCap = 2.0

// ExplorationScale weights the exploration bonus against the exploitation
// term (whose range is [0,1]).
const ExplorationScale = 0.35

// TemporalEstimator predicts each stream's selection probability for the
// next round from the recent feedback history:
//
//	μ̂ᵢ = (1/T_{w,i})·Σⱼ₌₁..w r_{t−j,i}  +  s·sqrt(ln(2+ageᵢ) / (1+T_{w,i}))
//
// where r is the redundancy feedback of selected rounds, T_{w,i} counts
// selections of stream i in the last w rounds, and ageᵢ counts rounds since
// stream i was last selected. The first term exploits recent reward; the
// second explores streams with few recent attempts (§5.1, following
// combinatorial semi-bandit results).
//
// Two terms deviate from the paper's literal formula, which degenerates at
// deployment scale (m ≫ B·w: 1000 streams, budget ≈ 32, window 5):
//
//   - The paper divides the reward sum by w. When a stream is selected in
//     only a few of the last w rounds — the common case under a tight
//     budget — that dilutes every stream's exploitation term toward zero
//     and exploration drowns the signal. We use the standard per-selection
//     empirical mean (divide by T_{w,i}) instead.
//   - The paper's bonus sqrt(3·lnT / (2·T_{w,i})) is unbounded for the
//     (majority of) streams with T_{w,i}=0, collapsing selection into
//     arbitrary tie-breaking. Substituting ln(2+age) keeps the logarithmic
//     growth and count discount while differentiating unexplored streams by
//     how long they have been starved, guaranteeing bounded staleness.
//
// The non-stationary semi-bandit analysis the paper cites tolerates this
// windowed/aged variant.
// Storage is churn-proportional: instead of per-stream ring buffers (O(m·w)
// memory, O(m) per push even when almost every stream sat the round out),
// each of the w ring slots holds the *list* of streams selected that round
// with their rewards. Evicting a slot and folding in a new round both cost
// O(selections), so a sparse fleet (m ≫ budget) pays for the streams that
// actually moved, not for m. The per-stream aggregates (rewardSum, selCount,
// lastSel) are maintained incrementally with the exact same sequence of
// additions and subtractions the dense layout performed, so every Exploit
// and Bonus value is bit-identical.
type TemporalEstimator struct {
	w int
	m int
	t int64 // rounds observed

	// Ring of per-round selection lists, length w: slotIDs[pos] holds the
	// streams selected in that round, slotReward[pos] their rewards.
	slotIDs    [][]int32
	slotReward [][]float64
	pos        int

	// Running window aggregates per stream.
	rewardSum []float64
	selCount  []int
	// lastSel is the 1-based round at which each stream was last selected
	// (0 = never).
	lastSel []int64

	// pushScratch backs the dense-Push compatibility shim.
	pushScratch []int32
	rewScratch  []float64
}

// NewTemporalEstimator creates an estimator for m streams with window
// length w.
func NewTemporalEstimator(m, w int) (*TemporalEstimator, error) {
	if m <= 0 || w <= 0 {
		return nil, fmt.Errorf("bandit: need m>0 and w>0, got m=%d w=%d", m, w)
	}
	e := &TemporalEstimator{
		w:          w,
		m:          m,
		slotIDs:    make([][]int32, w),
		slotReward: make([][]float64, w),
		rewardSum:  make([]float64, m),
		selCount:   make([]int, m),
		lastSel:    make([]int64, m),
	}
	return e, nil
}

// Window returns the window length w.
func (e *TemporalEstimator) Window() int { return e.w }

// Streams returns the number of streams m.
func (e *TemporalEstimator) Streams() int { return e.m }

// Round returns the number of rounds pushed so far.
func (e *TemporalEstimator) Round() int64 { return e.t }

// Push records one completed round: sel[i] reports whether stream i was
// selected, r[i] its feedback reward (ignored when unselected). It is the
// dense compatibility shim over PushSparse and costs an O(m) scan; hot
// callers that already know the selected set should call PushSparse.
func (e *TemporalEstimator) Push(sel []bool, r []float64) error {
	if len(sel) != e.m || len(r) != e.m {
		return fmt.Errorf("bandit: push length mismatch: %d/%d for %d streams", len(sel), len(r), e.m)
	}
	e.pushScratch = e.pushScratch[:0]
	e.rewScratch = e.rewScratch[:0]
	for i, on := range sel {
		if on {
			e.pushScratch = append(e.pushScratch, int32(i))
			e.rewScratch = append(e.rewScratch, r[i])
		}
	}
	return e.PushSparse(e.pushScratch, e.rewScratch)
}

// PushSparse records one completed round from its selection list: ids are
// the selected streams, rewards their aligned feedback rewards; every other
// stream is recorded as unselected. An empty round still advances the
// estimator clock (every stream's age grows). Cost is O(len(ids)) plus the
// eviction of the round leaving the window — churn-proportional, never
// O(m). ids may repeat across calls but must not repeat within one call.
func (e *TemporalEstimator) PushSparse(ids []int32, rewards []float64) error {
	if len(ids) != len(rewards) {
		return fmt.Errorf("bandit: sparse push: %d ids with %d rewards", len(ids), len(rewards))
	}
	for _, i := range ids {
		if i < 0 || int(i) >= e.m {
			return fmt.Errorf("bandit: sparse push: stream %d out of range [0,%d)", i, e.m)
		}
	}
	// Evict the round leaving the window from the aggregates.
	evIDs, evRew := e.slotIDs[e.pos], e.slotReward[e.pos]
	for k, i := range evIDs {
		e.selCount[i]--
		e.rewardSum[i] -= evRew[k]
	}
	evIDs = evIDs[:0]
	evRew = evRew[:0]
	for k, i := range ids {
		rv := rewards[k]
		e.selCount[i]++
		e.rewardSum[i] += rv
		e.lastSel[i] = e.t + 1
		evIDs = append(evIDs, i)
		evRew = append(evRew, rv)
	}
	e.slotIDs[e.pos], e.slotReward[e.pos] = evIDs, evRew
	e.pos = (e.pos + 1) % e.w
	e.t++
	return nil
}

// Estimate returns μ̂ᵢ for stream i.
func (e *TemporalEstimator) Estimate(i int) float64 {
	return e.Exploit(i) + e.Bonus(i)
}

// Bonus returns the exploration term for stream i: it grows logarithmically
// with the rounds since the stream was last selected and shrinks with the
// number of recent selections.
func (e *TemporalEstimator) Bonus(i int) float64 {
	age := float64(e.t - e.lastSel[i])
	b := ExplorationScale * math.Sqrt(math.Log(2+age)/float64(1+e.selCount[i]))
	if b > ExplorationCap {
		b = ExplorationCap
	}
	return b
}

// Exploit returns only the exploitation term — the mean reward over the
// stream's selections within the window (0 if never selected there); the
// contextual predictor consumes this as its feedback view.
func (e *TemporalEstimator) Exploit(i int) float64 {
	if e.selCount[i] == 0 {
		return 0
	}
	return e.rewardSum[i] / float64(e.selCount[i])
}

// Estimates fills dst (allocating if nil) with μ̂ for all streams.
func (e *TemporalEstimator) Estimates(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, e.m)
	}
	for i := 0; i < e.m; i++ {
		dst[i] = e.Estimate(i)
	}
	return dst
}

// RegretMeter accumulates per-round regret: the gap between the best
// achievable reward and the algorithm's reward.
type RegretMeter struct {
	rounds     int64
	cumulative float64
	history    []float64 // cumulative regret after each round
}

// Add records one round. The gap may be negative (the algorithm beat the
// comparator this round); cumulative regret is the running sum, as in the
// standard bandit definition.
func (r *RegretMeter) Add(optimal, achieved float64) {
	r.cumulative += optimal - achieved
	r.rounds++
	r.history = append(r.history, r.cumulative)
}

// Total returns the cumulative regret.
func (r *RegretMeter) Total() float64 { return r.cumulative }

// Rounds returns the number of rounds recorded.
func (r *RegretMeter) Rounds() int64 { return r.rounds }

// History returns cumulative regret after each round (shared slice).
func (r *RegretMeter) History() []float64 { return r.history }

// GrowthExponent fits cumulative regret ≈ a·T^b over the recorded history by
// least squares on log-log points and returns b. A sublinear bandit should
// show b well below 1; the paper's O(√T) bound predicts b ≈ 0.5. The first
// 20% of rounds are excluded (warm-up rounds with near-zero regret otherwise
// inflate the slope); rounds with zero cumulative regret are skipped; it
// returns 0 if fewer than two usable points exist.
func (r *RegretMeter) GrowthExponent() float64 {
	var xs, ys []float64
	for t, c := range r.history {
		if c <= 0 || t < len(r.history)/5 {
			continue
		}
		xs = append(xs, math.Log(float64(t+1)))
		ys = append(ys, math.Log(c))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
