// Package bandit implements the online-learning machinery of PacketGame:
// the sliding-window temporal estimator (§5.1) that trades off exploitation
// of recent redundancy feedback against exploration of rarely selected
// streams, and regret accounting used to validate the O(√T) bound (Thm 1).
package bandit

import (
	"fmt"
	"math"
)

// ExplorationCap bounds the UCB exploration bonus. Estimates therefore live
// in [0, 1+ExplorationCap].
const ExplorationCap = 2.0

// ExplorationScale weights the exploration bonus against the exploitation
// term (whose range is [0,1]).
const ExplorationScale = 0.35

// TemporalEstimator predicts each stream's selection probability for the
// next round from the recent feedback history:
//
//	μ̂ᵢ = (1/T_{w,i})·Σⱼ₌₁..w r_{t−j,i}  +  s·sqrt(ln(2+ageᵢ) / (1+T_{w,i}))
//
// where r is the redundancy feedback of selected rounds, T_{w,i} counts
// selections of stream i in the last w rounds, and ageᵢ counts rounds since
// stream i was last selected. The first term exploits recent reward; the
// second explores streams with few recent attempts (§5.1, following
// combinatorial semi-bandit results).
//
// Two terms deviate from the paper's literal formula, which degenerates at
// deployment scale (m ≫ B·w: 1000 streams, budget ≈ 32, window 5):
//
//   - The paper divides the reward sum by w. When a stream is selected in
//     only a few of the last w rounds — the common case under a tight
//     budget — that dilutes every stream's exploitation term toward zero
//     and exploration drowns the signal. We use the standard per-selection
//     empirical mean (divide by T_{w,i}) instead.
//   - The paper's bonus sqrt(3·lnT / (2·T_{w,i})) is unbounded for the
//     (majority of) streams with T_{w,i}=0, collapsing selection into
//     arbitrary tie-breaking. Substituting ln(2+age) keeps the logarithmic
//     growth and count discount while differentiating unexplored streams by
//     how long they have been starved, guaranteeing bounded staleness.
//
// The non-stationary semi-bandit analysis the paper cites tolerates this
// windowed/aged variant.
type TemporalEstimator struct {
	w int
	t int64 // rounds observed

	// Ring buffers per stream, length w.
	selected [][]bool
	reward   [][]float64
	pos      int
	filled   int

	// Running window aggregates per stream.
	rewardSum []float64
	selCount  []int
	// lastSel is the 1-based round at which each stream was last selected
	// (0 = never).
	lastSel []int64
}

// NewTemporalEstimator creates an estimator for m streams with window
// length w.
func NewTemporalEstimator(m, w int) (*TemporalEstimator, error) {
	if m <= 0 || w <= 0 {
		return nil, fmt.Errorf("bandit: need m>0 and w>0, got m=%d w=%d", m, w)
	}
	e := &TemporalEstimator{
		w:         w,
		selected:  make([][]bool, m),
		reward:    make([][]float64, m),
		rewardSum: make([]float64, m),
		selCount:  make([]int, m),
		lastSel:   make([]int64, m),
	}
	for i := 0; i < m; i++ {
		e.selected[i] = make([]bool, w)
		e.reward[i] = make([]float64, w)
	}
	return e, nil
}

// Window returns the window length w.
func (e *TemporalEstimator) Window() int { return e.w }

// Streams returns the number of streams m.
func (e *TemporalEstimator) Streams() int { return len(e.selected) }

// Round returns the number of rounds pushed so far.
func (e *TemporalEstimator) Round() int64 { return e.t }

// Push records one completed round: sel[i] reports whether stream i was
// selected, r[i] its feedback reward (ignored when unselected).
func (e *TemporalEstimator) Push(sel []bool, r []float64) error {
	m := len(e.selected)
	if len(sel) != m || len(r) != m {
		return fmt.Errorf("bandit: push length mismatch: %d/%d for %d streams", len(sel), len(r), m)
	}
	for i := 0; i < m; i++ {
		// Evict the oldest slot from the aggregates.
		if e.filled == e.w {
			if e.selected[i][e.pos] {
				e.selCount[i]--
				e.rewardSum[i] -= e.reward[i][e.pos]
			}
		}
		rv := 0.0
		if sel[i] {
			rv = r[i]
			e.selCount[i]++
			e.rewardSum[i] += rv
			e.lastSel[i] = e.t + 1
		}
		e.selected[i][e.pos] = sel[i]
		e.reward[i][e.pos] = rv
	}
	e.pos = (e.pos + 1) % e.w
	if e.filled < e.w {
		e.filled++
	}
	e.t++
	return nil
}

// Estimate returns μ̂ᵢ for stream i.
func (e *TemporalEstimator) Estimate(i int) float64 {
	return e.Exploit(i) + e.Bonus(i)
}

// Bonus returns the exploration term for stream i: it grows logarithmically
// with the rounds since the stream was last selected and shrinks with the
// number of recent selections.
func (e *TemporalEstimator) Bonus(i int) float64 {
	age := float64(e.t - e.lastSel[i])
	b := ExplorationScale * math.Sqrt(math.Log(2+age)/float64(1+e.selCount[i]))
	if b > ExplorationCap {
		b = ExplorationCap
	}
	return b
}

// Exploit returns only the exploitation term — the mean reward over the
// stream's selections within the window (0 if never selected there); the
// contextual predictor consumes this as its feedback view.
func (e *TemporalEstimator) Exploit(i int) float64 {
	if e.selCount[i] == 0 {
		return 0
	}
	return e.rewardSum[i] / float64(e.selCount[i])
}

// Estimates fills dst (allocating if nil) with μ̂ for all streams.
func (e *TemporalEstimator) Estimates(dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(e.selected))
	}
	for i := range e.selected {
		dst[i] = e.Estimate(i)
	}
	return dst
}

// RegretMeter accumulates per-round regret: the gap between the best
// achievable reward and the algorithm's reward.
type RegretMeter struct {
	rounds     int64
	cumulative float64
	history    []float64 // cumulative regret after each round
}

// Add records one round. The gap may be negative (the algorithm beat the
// comparator this round); cumulative regret is the running sum, as in the
// standard bandit definition.
func (r *RegretMeter) Add(optimal, achieved float64) {
	r.cumulative += optimal - achieved
	r.rounds++
	r.history = append(r.history, r.cumulative)
}

// Total returns the cumulative regret.
func (r *RegretMeter) Total() float64 { return r.cumulative }

// Rounds returns the number of rounds recorded.
func (r *RegretMeter) Rounds() int64 { return r.rounds }

// History returns cumulative regret after each round (shared slice).
func (r *RegretMeter) History() []float64 { return r.history }

// GrowthExponent fits cumulative regret ≈ a·T^b over the recorded history by
// least squares on log-log points and returns b. A sublinear bandit should
// show b well below 1; the paper's O(√T) bound predicts b ≈ 0.5. The first
// 20% of rounds are excluded (warm-up rounds with near-zero regret otherwise
// inflate the slope); rounds with zero cumulative regret are skipped; it
// returns 0 if fewer than two usable points exist.
func (r *RegretMeter) GrowthExponent() float64 {
	var xs, ys []float64
	for t, c := range r.history {
		if c <= 0 || t < len(r.history)/5 {
			continue
		}
		xs = append(xs, math.Log(float64(t+1)))
		ys = append(ys, math.Log(c))
	}
	if len(xs) < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	n := float64(len(xs))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
