package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v", m)
	}
	if s := Std(xs); math.Abs(s-2) > 1e-12 {
		t.Errorf("Std = %v, want 2", s)
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Std([]float64{1}) != 0 {
		t.Error("degenerate inputs must return 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := map[float64]float64{0: 1, 0.5: 3, 1: 5, 0.25: 2}
	for q, want := range cases {
		if got := Quantile(xs, q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile must be 0")
	}
	// Input must not be mutated.
	if xs[0] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String() = %q", s.String())
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary must be zero")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if c := h.BucketCenter(0); c != 1 {
		t.Errorf("center(0) = %v", c)
	}
	if f := h.Fraction(0); math.Abs(f-2.0/7) > 1e-12 {
		t.Errorf("fraction(0) = %v", f)
	}
	if out := h.Render(10); !strings.Contains(out, "#") {
		t.Errorf("render lacks bars:\n%s", out)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range must error")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets must error")
	}
}

func TestSeries(t *testing.T) {
	out := Series("x", "y", []float64{1, 2}, []float64{10, 20})
	if !strings.Contains(out, "x") || !strings.Contains(out, "20") {
		t.Errorf("series output:\n%s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Errorf("series has %d lines, want 3", lines)
	}
}
