// Package stats provides the small statistical toolkit the benchmarks use:
// summaries, histograms, and text rendering of distributions and curves.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary holds the usual descriptive statistics.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Median, Max float64
	P10, P90         float64
}

// Summarize computes a Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N: len(xs), Mean: Mean(xs), Std: Std(xs),
		Min: Quantile(xs, 0), Median: Quantile(xs, 0.5), Max: Quantile(xs, 1),
		P10: Quantile(xs, 0.1), P90: Quantile(xs, 0.9),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p10=%.4g med=%.4g p90=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P10, s.Median, s.P90, s.Max)
}

// Histogram is a fixed-range equal-width histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with the given range and bucket count.
func NewHistogram(lo, hi float64, buckets int) (*Histogram, error) {
	if !(lo < hi) || buckets <= 0 {
		return nil, fmt.Errorf("stats: invalid histogram [%v,%v) x%d", lo, hi, buckets)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, buckets)}, nil
}

// Add folds a value into the histogram.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
		if i >= len(h.Counts) {
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of added values.
func (h *Histogram) Total() int { return h.total }

// Fraction returns the fraction of values in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.total)
}

// BucketCenter returns the midpoint of bucket i.
func (h *Histogram) BucketCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram as ASCII rows ("center  count  bar").
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	for i, c := range h.Counts {
		bar := strings.Repeat("#", c*width/maxC)
		fmt.Fprintf(&b, "%12.4g %7d %s\n", h.BucketCenter(i), c, bar)
	}
	return b.String()
}

// Series renders (x, y) pairs as aligned text columns — the benchmark
// harness's "figure" output format.
func Series(xName, yName string, xs, ys []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%16s %16s\n", xName, yName)
	n := len(xs)
	if len(ys) < n {
		n = len(ys)
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%16.6g %16.6g\n", xs[i], ys[i])
	}
	return b.String()
}
