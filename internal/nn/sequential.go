package nn

// Sequential chains layers into one differentiable block.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential creates a named layer chain.
func NewSequential(name string, layers ...Layer) *Sequential {
	return &Sequential{name: name, layers: layers}
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.name }

// Layers returns the contained layers.
func (s *Sequential) Layers() []Layer { return s.layers }

// Forward implements Layer.
func (s *Sequential) Forward(x *Tensor) *Tensor {
	for _, l := range s.layers {
		x = l.Forward(x)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *Tensor) *Tensor {
	for i := len(s.layers) - 1; i >= 0; i-- {
		grad = s.layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// OutShape implements Layer.
func (s *Sequential) OutShape(in []int) []int {
	for _, l := range s.layers {
		in = l.OutShape(in)
	}
	return in
}

// FLOPs implements Layer, threading the shape through the chain.
func (s *Sequential) FLOPs(in []int) int64 {
	var total int64
	for _, l := range s.layers {
		total += l.FLOPs(in)
		in = l.OutShape(in)
	}
	return total
}
