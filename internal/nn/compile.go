package nn

import (
	"fmt"
	"math"
	"sync"
)

// This file implements the inference-only fast path: Compile snapshots a
// trained Sequential into a flat float32 graph of fused forward kernels.
// The compiled graph never allocates on the forward path (scratch comes
// from a sync.Pool), never builds im2col matrices (Conv1D walks the input
// windows directly with the weights flattened row-major), and fuses ReLU /
// Sigmoid into the preceding Conv1D or Dense so activations are applied in
// the same pass that produces them. Training stays on the autodiff Layer
// stack; the gate's hot loop runs here.

// Activation is an activation fused into a compiled op.
type Activation uint8

// Fusable activations.
const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
)

type opKind uint8

const (
	opConv opKind = iota
	opDense
	opPool
)

// compiledOp is one fused stage of the inference graph. Weights live in a
// flat row-major []float32 (filter-major for conv: [out][in][k]).
//
// There is deliberately no int8 variant: a quantized path existed and
// honestly measured 0.28× the float32 kernels (BENCH_hotpath `int8-vs-f32`
// before its removal), because scalar Go has no way to amortize the int8
// widening multiplies while the float32 path already runs 4-row
// register-blocked — see DESIGN.md for the full rationale.
type compiledOp struct {
	kind opKind
	act  Activation

	in, out  int // channels (conv) or features (dense); pool: in == channels
	k        int // conv kernel width
	inL, outLen int // conv: input/output length; pool: inL

	w []float32
	b []float32
}

func (op *compiledOp) inSize() int {
	switch op.kind {
	case opConv:
		return op.in * op.inL
	case opPool:
		return op.in * op.inL
	default:
		return op.in
	}
}

func (op *compiledOp) outSize() int {
	switch op.kind {
	case opConv:
		return op.out * op.outLen
	case opPool:
		return op.in
	default:
		return op.out
	}
}

// Compiled is an immutable inference snapshot of a Sequential. Forward is
// safe for concurrent use: all mutable state is pooled per call.
type Compiled struct {
	name   string
	ops    []compiledOp
	inDim  int
	outDim int
}

// InDim returns the per-example input element count.
func (c *Compiled) InDim() int { return c.inDim }

// OutDim returns the per-example output element count.
func (c *Compiled) OutDim() int { return c.outDim }

// Compile snapshots the Sequential's current parameters into a float32
// inference graph for the given per-example input shape. Supported layers:
// Conv1D, Dense, GlobalMaxPool1D, Flatten, ReLU, Sigmoid; ReLU/Sigmoid
// directly after a Conv1D or Dense are fused into it. The snapshot is
// decoupled from the live parameters: training after Compile requires a
// fresh Compile to be observed.
func Compile(s *Sequential, inShape []int) (*Compiled, error) {
	return compile(s, inShape)
}

func compile(s *Sequential, inShape []int) (*Compiled, error) {
	if s == nil {
		return nil, fmt.Errorf("nn: compile: nil sequential")
	}
	inDim := 1
	for _, d := range inShape {
		if d <= 0 {
			return nil, fmt.Errorf("nn: compile %s: bad input shape %v", s.Name(), inShape)
		}
		inDim *= d
	}
	c := &Compiled{name: s.Name(), inDim: inDim}
	shape := append([]int(nil), inShape...)
	layers := s.Layers()
	for idx := 0; idx < len(layers); idx++ {
		l := layers[idx]
		// Fusable activation lookahead.
		fuse := func() Activation {
			if idx+1 < len(layers) {
				switch layers[idx+1].(type) {
				case *ReLU:
					idx++
					return ActReLU
				case *Sigmoid:
					idx++
					return ActSigmoid
				}
			}
			return ActNone
		}
		switch lt := l.(type) {
		case *Conv1D:
			if len(shape) != 2 || shape[0] != lt.in || shape[1] < lt.k {
				return nil, fmt.Errorf("nn: compile %s: conv %s: input shape %v", c.name, lt.name, shape)
			}
			op := compiledOp{
				kind: opConv, in: lt.in, out: lt.out, k: lt.k,
				inL: shape[1], outLen: shape[1] - lt.k + 1,
			}
			fillWeights(&op, lt.w.W.Data, lt.b.W.Data)
			shape = []int{lt.out, op.outLen}
			op.act = fuse()
			c.ops = append(c.ops, op)
		case *Dense:
			if len(shape) != 1 || shape[0] != lt.in {
				return nil, fmt.Errorf("nn: compile %s: dense %s: input shape %v", c.name, lt.name, shape)
			}
			op := compiledOp{kind: opDense, in: lt.in, out: lt.out}
			fillWeights(&op, lt.w.W.Data, lt.b.W.Data)
			shape = []int{lt.out}
			op.act = fuse()
			c.ops = append(c.ops, op)
		case *GlobalMaxPool1D:
			if len(shape) != 2 {
				return nil, fmt.Errorf("nn: compile %s: pool %s: input shape %v", c.name, lt.name, shape)
			}
			c.ops = append(c.ops, compiledOp{kind: opPool, in: shape[0], inL: shape[1]})
			shape = []int{shape[0]}
		case *Flatten:
			// Row-major data is already flat; shape bookkeeping only.
			shape = lt.OutShape(shape)
		case *ReLU, *Sigmoid:
			// Unfused activation (graph starts with one, or two in a row):
			// attach to a pass-through on the previous op if possible,
			// otherwise reject — the predictor's architectures never need it.
			return nil, fmt.Errorf("nn: compile %s: unfused activation %s", c.name, l.Name())
		default:
			return nil, fmt.Errorf("nn: compile %s: unsupported layer %T", c.name, l)
		}
	}
	if len(c.ops) == 0 {
		return nil, fmt.Errorf("nn: compile %s: empty graph", c.name)
	}
	out := 1
	for _, d := range shape {
		out *= d
	}
	c.outDim = out
	return c, nil
}

// fillWeights snapshots one layer's parameters into float32.
func fillWeights(op *compiledOp, w, b []float64) {
	op.w = make([]float32, len(w))
	for i, v := range w {
		op.w[i] = float32(v)
	}
	op.b = make([]float32, len(b))
	for i, v := range b {
		op.b[i] = float32(v)
	}
}

// fwdScratch is the pooled per-call state of Compiled.Forward: two
// ping-pong activation buffers. Pooling keeps Forward allocation-free in
// steady state and safe for concurrent callers.
type fwdScratch struct {
	a, b []float32
}

var fwdPool = sync.Pool{New: func() interface{} { return new(fwdScratch) }}

func growF32(buf []float32, n int) []float32 {
	if cap(buf) < n {
		return make([]float32, n)
	}
	return buf[:n]
}

// Forward runs the compiled graph on n examples packed row-major in x
// (n·InDim values), writing the n·OutDim outputs into out. It panics on a
// size mismatch, mirroring the Layer stack's shape checks.
func (c *Compiled) Forward(n int, x []float32, out []float32) {
	if len(x) < n*c.inDim {
		panic(fmt.Sprintf("nn: compiled %s: %d inputs for batch %d×%d", c.name, len(x), n, c.inDim))
	}
	if len(out) < n*c.outDim {
		panic(fmt.Sprintf("nn: compiled %s: %d outputs for batch %d×%d", c.name, len(out), n, c.outDim))
	}
	sc := fwdPool.Get().(*fwdScratch)
	src := x[:n*c.inDim]
	useA := true
	for oi := range c.ops {
		op := &c.ops[oi]
		var dst []float32
		if oi == len(c.ops)-1 {
			dst = out[:n*c.outDim]
		} else if useA {
			sc.a = growF32(sc.a, n*op.outSize())
			dst = sc.a
			useA = false
		} else {
			sc.b = growF32(sc.b, n*op.outSize())
			dst = sc.b
			useA = true
		}
		switch op.kind {
		case opConv:
			convForward(op, n, src, dst)
		case opDense:
			denseForward(op, n, src, dst)
		default:
			poolForward(op, n, src, dst)
		}
		src = dst
	}
	fwdPool.Put(sc)
}

// activate applies the fused activation to one scalar. The transcendental
// lives in sigmoid32 so this stays under the inlining budget — the kernels
// call it once per output value, so a real call here costs ~10% of a round.
func activate(act Activation, v float32) float32 {
	if act == ActReLU {
		if v < 0 {
			return 0
		}
		return v
	}
	if act == ActSigmoid {
		return sigmoid32(v)
	}
	return v
}

// sigmoid32 is kept out of line so activate's own inline cost stays low: the
// ReLU path (tower outputs, ~100× more calls than sigmoid) then folds into
// the kernel loops.
//
//go:noinline
func sigmoid32(v float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(v))))
}

// convForward is the im2col-free fused Conv1D kernel. Two layout facts make
// the predictor's convs cheap: when inL == k there is a single output
// position and the [in][inL] input block lines up element-for-element with
// the [in][k] filter row, so the conv is one long dot; and the common k = 3
// is unrolled with direct indexing instead of per-channel subslices (whose
// setup cost dwarfs three multiplies).
func convForward(op *compiledOp, n int, x, y []float32) {
	in, out, k, inL, outL := op.in, op.out, op.k, op.inL, op.outLen
	if inL == k {
		for bi := 0; bi < n; bi++ {
			matvec(op.w, op.b, x[bi*in*inL:(bi+1)*in*inL], y[bi*out:(bi+1)*out], in*k, out, op.act)
		}
		return
	}
	if k == 3 && in == 1 {
		// Single input channel (the towers' first conv): the three filter
		// taps live in registers across the whole position sweep.
		for bi := 0; bi < n; bi++ {
			xb := x[bi*inL : bi*inL+inL]
			yb := y[bi*out*outL : (bi+1)*out*outL]
			for f := 0; f < out; f++ {
				w0, w1, w2 := op.w[f*3], op.w[f*3+1], op.w[f*3+2]
				bias := op.b[f]
				yo := yb[f*outL : f*outL+outL]
				for p := range yo {
					yo[p] = activate(op.act, bias+w0*xb[p]+w1*xb[p+1]+w2*xb[p+2])
				}
			}
		}
		return
	}
	if k == 3 {
		for bi := 0; bi < n; bi++ {
			xb := x[bi*in*inL : (bi+1)*in*inL]
			yb := y[bi*out*outL : (bi+1)*out*outL]
			for f := 0; f < out; f++ {
				wf := op.w[f*in*3 : (f+1)*in*3]
				bias := op.b[f]
				for ol := 0; ol < outL; ol++ {
					var s0, s1 float32
					for ci := 0; ci < in; ci++ {
						wo := ci * 3
						xo := ci*inL + ol
						s0 += wf[wo]*xb[xo] + wf[wo+2]*xb[xo+2]
						s1 += wf[wo+1] * xb[xo+1]
					}
					yb[f*outL+ol] = activate(op.act, bias+s0+s1)
				}
			}
		}
		return
	}
	for bi := 0; bi < n; bi++ {
		xb := x[bi*in*inL : (bi+1)*in*inL]
		yb := y[bi*out*outL : (bi+1)*out*outL]
		for f := 0; f < out; f++ {
			wf := op.w[f*in*k : (f+1)*in*k]
			bias := op.b[f]
			for ol := 0; ol < outL; ol++ {
				var s0, s1 float32
				ci := 0
				for ; ci+1 < in; ci += 2 {
					w0 := wf[ci*k : ci*k+k]
					x0 := xb[ci*inL+ol : ci*inL+ol+k]
					w1 := wf[(ci+1)*k : (ci+1)*k+k]
					x1 := xb[(ci+1)*inL+ol : (ci+1)*inL+ol+k]
					var a, b float32
					for kk := 0; kk < k; kk++ {
						a += w0[kk] * x0[kk]
						b += w1[kk] * x1[kk]
					}
					s0 += a
					s1 += b
				}
				if ci < in {
					w0 := wf[ci*k : ci*k+k]
					x0 := xb[ci*inL+ol : ci*inL+ol+k]
					var a float32
					for kk := 0; kk < k; kk++ {
						a += w0[kk] * x0[kk]
					}
					s0 += a
				}
				yb[f*outL+ol] = activate(op.act, bias+s0+s1)
			}
		}
	}
}

// dot is the 4-way unrolled float32 dot product (four independent
// accumulators give the out-of-order core real instruction parallelism).
func dot(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// denseForward is the fused Dense kernel: a register-blocked matvec per
// example.
func denseForward(op *compiledOp, n int, x, y []float32) {
	in, out := op.in, op.out
	for bi := 0; bi < n; bi++ {
		matvec(op.w, op.b, x[bi*in:(bi+1)*in], y[bi*out:(bi+1)*out], in, out, op.act)
	}
}

// matvec computes y[o] = act(b[o] + w[o]·x) with 4-row register blocking:
// every x element loaded feeds four output rows, so the kernel is bound by
// multiply throughput instead of load ports (a lone dot spends two loads per
// multiply; this spends five loads per four multiplies).
func matvec(w, b, x, y []float32, in, out int, act Activation) {
	xr := x[:in]
	o := 0
	for ; o+3 < out; o += 4 {
		w0 := w[o*in : o*in+in]
		w1 := w[(o+1)*in : (o+1)*in+in]
		w2 := w[(o+2)*in : (o+2)*in+in]
		w3 := w[(o+3)*in : (o+3)*in+in]
		var s0, s1, s2, s3 float32
		for i, xv := range xr {
			s0 += w0[i] * xv
			s1 += w1[i] * xv
			s2 += w2[i] * xv
			s3 += w3[i] * xv
		}
		y[o] = activate(act, b[o]+s0)
		y[o+1] = activate(act, b[o+1]+s1)
		y[o+2] = activate(act, b[o+2]+s2)
		y[o+3] = activate(act, b[o+3]+s3)
	}
	for ; o < out; o++ {
		y[o] = activate(act, b[o]+dot(w[o*in:(o+1)*in], xr))
	}
}

// poolForward is GlobalMaxPool1D: [N, C, L] → [N, C].
func poolForward(op *compiledOp, n int, x, y []float32) {
	c, l := op.in, op.inL
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			row := x[(bi*c+ci)*l : (bi*c+ci+1)*l]
			best := row[0]
			for _, v := range row[1:] {
				if v > best {
					best = v
				}
			}
			y[bi*c+ci] = best
		}
	}
}
