//go:build !race

package nn

// raceEnabled is false without -race; see race_test.go.
const raceEnabled = false
