package nn

import "math"

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and is expected to be followed by ZeroGrads.
	Step(params []*Param)
}

// RMSprop is the optimizer the paper trains the contextual predictor with
// (§6.1, learning rate 0.001).
type RMSprop struct {
	// LR is the learning rate. Default 0.001.
	LR float64
	// Rho is the moving-average decay. Default 0.9.
	Rho float64
	// Eps stabilizes the division. Default 1e-8.
	Eps float64

	cache map[*Param][]float64
}

// NewRMSprop creates an RMSprop optimizer with the paper's defaults.
func NewRMSprop(lr float64) *RMSprop {
	if lr == 0 {
		lr = 0.001
	}
	return &RMSprop{LR: lr, Rho: 0.9, Eps: 1e-8, cache: map[*Param][]float64{}}
}

// Step implements Optimizer.
func (o *RMSprop) Step(params []*Param) {
	for _, p := range params {
		c, ok := o.cache[p]
		if !ok {
			c = make([]float64, p.W.Len())
			o.cache[p] = c
		}
		for i, g := range p.G.Data {
			c[i] = o.Rho*c[i] + (1-o.Rho)*g*g
			p.W.Data[i] -= o.LR * g / (math.Sqrt(c[i]) + o.Eps)
		}
	}
}

// SGD is plain stochastic gradient descent (used in tests and ablations).
type SGD struct {
	LR float64
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i, g := range p.G.Data {
			p.W.Data[i] -= o.LR * g
		}
	}
}
