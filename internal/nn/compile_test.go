package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// buildTower mirrors the predictor's conv tower: Conv1D+ReLU blocks followed
// by a global max pool.
func buildTower(w, units, layers int, rng *rand.Rand) *Sequential {
	var ls []Layer
	l := w
	in := 1
	for i := 0; i < layers; i++ {
		k := 3
		if k > l {
			k = l
		}
		ls = append(ls,
			NewConv1D(fmt.Sprintf("conv%d", i), in, units, k, rng),
			NewReLU(fmt.Sprintf("relu%d", i)))
		l = l - k + 1
		in = units
	}
	ls = append(ls, NewGlobalMaxPool1D("pool"))
	return NewSequential("tower", ls...)
}

// buildHead mirrors the predictor's fusion head.
func buildHead(in, hidden, tasks int, rng *rand.Rand) *Sequential {
	return NewSequential("head",
		NewDense("fc1", in, hidden, rng),
		NewReLU("relu"),
		NewDense("out", hidden, tasks, rng),
		NewSigmoid("sigmoid"),
	)
}

// refForward runs the float64 Layer stack on a float32 batch and returns the
// float64 outputs.
func refForward(s *Sequential, inShape []int, n int, x []float32) []float64 {
	shape := append([]int{n}, inShape...)
	t := NewTensor(shape...)
	for i, v := range x[:t.Len()] {
		t.Data[i] = float64(v)
	}
	return s.Forward(t).Data
}

func randInput(n int, rng *rand.Rand) []float32 {
	x := make([]float32, n)
	for i := range x {
		x[i] = float32(rng.Float64())
	}
	return x
}

func maxAbsErr(got []float32, want []float64) float64 {
	var worst float64
	for i := range got {
		if d := math.Abs(float64(got[i]) - want[i]); d > worst {
			worst = d
		}
	}
	return worst
}

// TestCompiledMatchesReference is the equivalence property test: across
// window sizes, tower depths, and multi-task heads, the compiled float32
// graph must match the float64 autodiff stack within float32 rounding.
func TestCompiledMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name    string
		build   func() *Sequential
		inShape []int
	}{
		{"tower-w5", func() *Sequential { return buildTower(5, 8, 2, rng) }, []int{1, 5}},
		{"tower-w1", func() *Sequential { return buildTower(1, 4, 1, rng) }, []int{1, 1}},
		{"tower-w25-deep", func() *Sequential { return buildTower(25, 16, 3, rng) }, []int{1, 25}},
		{"head-1task", func() *Sequential { return buildHead(20, 32, 1, rng) }, []int{20}},
		{"head-4task", func() *Sequential { return buildHead(68, 128, 4, rng) }, []int{68}},
		{"flatten-mix", func() *Sequential {
			return NewSequential("mix",
				NewConv1D("c", 2, 6, 3, rng),
				NewReLU("r"),
				NewFlatten("flat"),
				NewDense("d", 6*4, 3, rng),
				NewSigmoid("s"),
			)
		}, []int{2, 6}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.build()
			c, err := Compile(s, tc.inShape)
			if err != nil {
				t.Fatalf("Compile: %v", err)
			}
			for _, n := range []int{1, 3, 64} {
				x := randInput(n*c.InDim(), rng)
				out := make([]float32, n*c.OutDim())
				c.Forward(n, x, out)
				want := refForward(s, tc.inShape, n, x)
				if err := maxAbsErr(out, want); err > 1e-5 {
					t.Fatalf("n=%d: compiled vs reference max abs err %g", n, err)
				}
			}
		})
	}
}

// TestCompiledBatchMatchesSingle: batching must be bit-exact — running n
// examples in one Forward equals n single-example Forwards.
func TestCompiledBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := buildTower(5, 8, 2, rng)
	c, err := Compile(s, []int{1, 5})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const n = 17
	x := randInput(n*c.InDim(), rng)
	batch := make([]float32, n*c.OutDim())
	c.Forward(n, x, batch)
	single := make([]float32, c.OutDim())
	for i := 0; i < n; i++ {
		c.Forward(1, x[i*c.InDim():(i+1)*c.InDim()], single)
		for j, v := range single {
			if v != batch[i*c.OutDim()+j] {
				t.Fatalf("example %d output %d: batch %v != single %v", i, j, batch[i*c.OutDim()+j], v)
			}
		}
	}
}

// TestCompileRecompileDeterministic: compiling the same frozen weights twice
// yields bit-identical outputs.
func TestCompileRecompileDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := buildHead(10, 16, 2, rng)
	c1, err := Compile(s, []int{10})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	c2, err := Compile(s, []int{10})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	x := randInput(4*c1.InDim(), rng)
	o1 := make([]float32, 4*c1.OutDim())
	o2 := make([]float32, 4*c2.OutDim())
	c1.Forward(4, x, o1)
	c2.Forward(4, x, o2)
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("output %d: %v != %v across recompiles", i, o1[i], o2[i])
		}
	}
}

// TestCompileRejectsUnsupported: unfused activations and unknown layers must
// fail compilation rather than silently mis-run.
func TestCompileRejectsUnsupported(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Compile(NewSequential("bad", NewReLU("r"), NewDense("d", 4, 2, rng)), []int{4}); err == nil {
		t.Fatal("expected error for graph starting with an unfused activation")
	}
	if _, err := Compile(NewSequential("bad2",
		NewDense("d", 4, 2, rng), NewReLU("r1"), NewReLU("r2")), []int{4}); err == nil {
		t.Fatal("expected error for double activation")
	}
	if _, err := Compile(nil, []int{4}); err == nil {
		t.Fatal("expected error for nil sequential")
	}
	if _, err := Compile(NewSequential("shape", NewDense("d", 4, 2, rng)), []int{5}); err == nil {
		t.Fatal("expected error for shape mismatch")
	}
	if _, err := Compile(NewSequential("empty"), []int{4}); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

// TestCompiledForwardZeroAlloc: the steady-state forward must not allocate.
func TestCompiledForwardZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	rng := rand.New(rand.NewSource(3))
	s := buildTower(5, 32, 2, rng)
	c, err := Compile(s, []int{1, 5})
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	const n = 64
	x := randInput(n*c.InDim(), rng)
	out := make([]float32, n*c.OutDim())
	c.Forward(n, x, out) // warm the scratch pool
	allocs := testing.AllocsPerRun(50, func() {
		c.Forward(n, x, out)
	})
	if allocs != 0 {
		t.Fatalf("compiled forward allocates %v times per run, want 0", allocs)
	}
}

func benchGraphs(b *testing.B) (*Sequential, *Compiled) {
	rng := rand.New(rand.NewSource(5))
	s := buildTower(5, 32, 2, rng)
	c, err := Compile(s, []int{1, 5})
	if err != nil {
		b.Fatalf("Compile: %v", err)
	}
	return s, c
}

func BenchmarkCompiledForward256(b *testing.B) {
	_, c := benchGraphs(b)
	rng := rand.New(rand.NewSource(6))
	const n = 256
	x := randInput(n*c.InDim(), rng)
	out := make([]float32, n*c.OutDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Forward(n, x, out)
	}
}

func BenchmarkReferenceForward256(b *testing.B) {
	s, c := benchGraphs(b)
	rng := rand.New(rand.NewSource(6))
	const n = 256
	x := randInput(n*c.InDim(), rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = refForward(s, []int{1, 5}, n, x)
	}
}

