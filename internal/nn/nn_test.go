package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestTensorBasics(t *testing.T) {
	x := NewTensor(2, 3)
	if x.Len() != 6 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("shape bookkeeping wrong: %+v", x)
	}
	x.Set(5, 1, 2)
	if x.At(1, 2) != 5 {
		t.Error("At/Set round trip failed")
	}
	c := x.Clone()
	c.Set(9, 0, 0)
	if x.At(0, 0) == 9 {
		t.Error("Clone must not alias")
	}
	x.Zero()
	if x.At(1, 2) != 0 {
		t.Error("Zero failed")
	}
}

func TestTensorPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("bad shape", func() { NewTensor(0) })
	expectPanic("bad FromSlice", func() { FromSlice([]float64{1, 2}, 3) })
	x := NewTensor(2, 2)
	expectPanic("bad index count", func() { x.At(1) })
	expectPanic("out of range", func() { x.At(2, 0) })
}

func TestSameShape(t *testing.T) {
	if !SameShape(NewTensor(2, 3), NewTensor(2, 3)) {
		t.Error("equal shapes reported different")
	}
	if SameShape(NewTensor(2, 3), NewTensor(3, 2)) || SameShape(NewTensor(2), NewTensor(2, 1)) {
		t.Error("different shapes reported equal")
	}
}

// scalarLoss runs a forward pass and returns 0.5·Σy² — a simple scalar whose
// gradient w.r.t. y is y itself.
func scalarLoss(l Layer, x *Tensor) float64 {
	y := l.Forward(x)
	var s float64
	for _, v := range y.Data {
		s += 0.5 * v * v
	}
	return s
}

// checkGradients verifies analytic gradients against central differences for
// both the input and every parameter of the layer.
func checkGradients(t *testing.T, l Layer, x *Tensor, tol float64) {
	t.Helper()
	// Analytic pass.
	y := l.Forward(x)
	ZeroGrads(l.Params())
	dx := l.Backward(y.Clone()) // dLoss/dy = y for the 0.5·Σy² loss

	const h = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + h
		lp := scalarLoss(l, x)
		x.Data[i] = orig - h
		lm := scalarLoss(l, x)
		x.Data[i] = orig
		num := (lp - lm) / (2 * h)
		if math.Abs(num-dx.Data[i]) > tol*(1+math.Abs(num)) {
			t.Fatalf("%s: input grad [%d]: analytic %v vs numeric %v", l.Name(), i, dx.Data[i], num)
		}
	}
	// Restore saved-forward state then re-run analytic backward for params.
	y = l.Forward(x)
	ZeroGrads(l.Params())
	l.Backward(y.Clone())
	for _, p := range l.Params() {
		for i := range p.W.Data {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + h
			lp := scalarLoss(l, x)
			p.W.Data[i] = orig - h
			lm := scalarLoss(l, x)
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * h)
			if math.Abs(num-p.G.Data[i]) > tol*(1+math.Abs(num)) {
				t.Fatalf("%s: param %s grad [%d]: analytic %v vs numeric %v",
					l.Name(), p.Name, i, p.G.Data[i], num)
			}
		}
	}
}

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	x := NewTensor(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestConv1DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewConv1D("conv", 2, 3, 3, rng)
	checkGradients(t, l, randTensor(rng, 2, 2, 7), 1e-6)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewDense("fc", 4, 3, rng)
	checkGradients(t, l, randTensor(rng, 3, 4), 1e-6)
}

func TestReLUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	l := NewReLU("relu")
	x := randTensor(rng, 2, 5)
	// Keep values away from the kink for finite differences.
	for i := range x.Data {
		if math.Abs(x.Data[i]) < 0.05 {
			x.Data[i] = 0.5
		}
	}
	checkGradients(t, l, x, 1e-6)
}

func TestSigmoidGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewSigmoid("sig")
	checkGradients(t, l, randTensor(rng, 2, 4), 1e-5)
}

func TestGlobalMaxPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewGlobalMaxPool1D("pool")
	x := randTensor(rng, 2, 3, 6)
	// Perturbations must not change the argmax: spread the values.
	for i := range x.Data {
		x.Data[i] *= 10
	}
	checkGradients(t, l, x, 1e-6)
}

func TestSequentialGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewSequential("tower",
		NewConv1D("c1", 1, 4, 3, rng),
		NewReLU("r1"),
		NewConv1D("c2", 4, 4, 3, rng),
		NewReLU("r2"),
		NewGlobalMaxPool1D("pool"),
		NewDense("fc", 4, 2, rng),
		NewSigmoid("out"),
	)
	x := randTensor(rng, 2, 1, 9)
	for i := range x.Data {
		x.Data[i] *= 3
	}
	checkGradients(t, l, x, 1e-4)
}

func TestOutShapeAndFLOPs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seq := NewSequential("t",
		NewConv1D("c1", 1, 32, 3, rng),
		NewReLU("r"),
		NewGlobalMaxPool1D("p"),
		NewDense("d", 32, 1, rng),
		NewSigmoid("s"),
	)
	out := seq.OutShape([]int{1, 5})
	if len(out) != 1 || out[0] != 1 {
		t.Fatalf("OutShape = %v", out)
	}
	// Forward shape must agree with OutShape.
	y := seq.Forward(randTensor(rng, 4, 1, 5))
	if y.Shape[0] != 4 || y.Shape[1] != 1 {
		t.Fatalf("forward shape = %v", y.Shape)
	}
	if f := seq.FLOPs([]int{1, 5}); f <= 0 {
		t.Errorf("FLOPs = %d", f)
	}
	// Conv FLOPs: outL=3, F=32, (2·1·3+1)=7 → 3·32·7 = 672.
	if f := NewConv1D("c", 1, 32, 3, rng).FLOPs([]int{1, 5}); f != 672 {
		t.Errorf("conv FLOPs = %d, want 672", f)
	}
	// Dense FLOPs: 1·(2·32+1) = 65.
	if f := NewDense("d", 32, 1, rng).FLOPs([]int{32}); f != 65 {
		t.Errorf("dense FLOPs = %d, want 65", f)
	}
}

func TestNumParams(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	seq := NewSequential("t", NewConv1D("c", 1, 2, 3, rng), NewDense("d", 2, 1, rng))
	// Conv: 2·1·3 + 2 = 8; Dense: 1·2 + 1 = 3.
	if n := NumParams(seq.Params()); n != 11 {
		t.Errorf("NumParams = %d, want 11", n)
	}
}

func TestBCELossAndGrad(t *testing.T) {
	pred := FromSlice([]float64{0.9, 0.1}, 2, 1)
	target := FromSlice([]float64{1, 0}, 2, 1)
	loss, grad := BCE(pred, target)
	want := -(math.Log(0.9) + math.Log(0.9)) / 2
	if math.Abs(loss-want) > 1e-9 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	// dL/dy for y=0.9,r=1: (y-r)/(y(1-y))/n = (-0.1)/(0.09)/2.
	if math.Abs(grad.Data[0]-(-0.1/0.09/2)) > 1e-9 {
		t.Errorf("grad[0] = %v", grad.Data[0])
	}
}

func TestBCEMasksNaNTargets(t *testing.T) {
	pred := FromSlice([]float64{0.9, 0.5}, 1, 2)
	target := FromSlice([]float64{1, math.NaN()}, 1, 2)
	loss, grad := BCE(pred, target)
	if grad.Data[1] != 0 {
		t.Errorf("masked grad = %v, want 0", grad.Data[1])
	}
	want := -math.Log(0.9)
	if math.Abs(loss-want) > 1e-9 {
		t.Errorf("masked loss = %v, want %v", loss, want)
	}
	// All-masked batch must not divide by zero.
	allNaN := FromSlice([]float64{math.NaN(), math.NaN()}, 1, 2)
	if l, _ := BCE(pred, allNaN); l != 0 {
		t.Errorf("all-masked loss = %v", l)
	}
}

func TestBCEClampsExtremes(t *testing.T) {
	pred := FromSlice([]float64{0, 1}, 2, 1)
	target := FromSlice([]float64{1, 0}, 2, 1)
	loss, grad := BCE(pred, target)
	if math.IsInf(loss, 0) || math.IsNaN(loss) {
		t.Errorf("loss not clamped: %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsInf(g, 0) || math.IsNaN(g) {
			t.Errorf("grad not clamped: %v", grad.Data)
		}
	}
}

func TestMSE(t *testing.T) {
	pred := FromSlice([]float64{1, 2}, 2, 1)
	target := FromSlice([]float64{0, 2}, 2, 1)
	loss, grad := MSE(pred, target)
	if math.Abs(loss-0.5) > 1e-12 {
		t.Errorf("loss = %v, want 0.5", loss)
	}
	if grad.Data[0] != 1 || grad.Data[1] != 0 {
		t.Errorf("grad = %v", grad.Data)
	}
}

// TestTrainingLearnsXORLike trains a tiny net on a nonlinear binary problem
// and requires near-perfect accuracy: end-to-end proof that forward,
// backward, loss, and RMSprop compose correctly.
func TestTrainingLearnsXORLike(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	model := NewSequential("xor",
		NewDense("h1", 2, 16, rng),
		NewReLU("r1"),
		NewDense("h2", 16, 1, rng),
		NewSigmoid("out"),
	)
	opt := NewRMSprop(0.01)
	xs := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	ys := []float64{0, 1, 1, 0}
	x := NewTensor(4, 2)
	yt := NewTensor(4, 1)
	for i := range xs {
		copy(x.Data[i*2:], xs[i])
		yt.Data[i] = ys[i]
	}
	for epoch := 0; epoch < 2000; epoch++ {
		pred := model.Forward(x)
		_, grad := BCE(pred, yt)
		ZeroGrads(model.Params())
		model.Backward(grad)
		opt.Step(model.Params())
	}
	pred := model.Forward(x)
	for i, want := range ys {
		got := pred.Data[i]
		if math.Abs(got-want) > 0.2 {
			t.Errorf("xor(%v) = %.3f, want %v", xs[i], got, want)
		}
	}
}

func TestSGDStep(t *testing.T) {
	p := newParam("w", 2)
	p.W.Data[0], p.W.Data[1] = 1, 2
	p.G.Data[0], p.G.Data[1] = 0.5, -0.5
	(&SGD{LR: 0.1}).Step([]*Param{p})
	if math.Abs(p.W.Data[0]-0.95) > 1e-12 || math.Abs(p.W.Data[1]-2.05) > 1e-12 {
		t.Errorf("SGD step wrong: %v", p.W.Data)
	}
}

func TestRMSpropConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)² by gradient steps.
	p := newParam("w", 1)
	opt := NewRMSprop(0.05)
	for i := 0; i < 2000; i++ {
		p.G.Data[0] = 2 * (p.W.Data[0] - 3)
		opt.Step([]*Param{p})
	}
	if math.Abs(p.W.Data[0]-3) > 0.05 {
		t.Errorf("w = %v, want ~3", p.W.Data[0])
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	f := NewFlatten("flat")
	x := randTensor(rng, 2, 3, 4)
	y := f.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 12 {
		t.Fatalf("flatten shape = %v", y.Shape)
	}
	back := f.Backward(y)
	if !SameShape(back, x) {
		t.Errorf("backward shape = %v", back.Shape)
	}
}
