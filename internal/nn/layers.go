package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Layer is one differentiable network stage. Forward must be called before
// Backward; Backward accumulates parameter gradients and returns the
// gradient with respect to the layer input.
type Layer interface {
	// Name identifies the layer (used in weight files).
	Name() string
	// Forward computes the layer output for a batched input.
	Forward(x *Tensor) *Tensor
	// Backward propagates the output gradient, accumulating parameter
	// gradients, and returns the input gradient.
	Backward(grad *Tensor) *Tensor
	// Params returns the trainable parameters (may be empty).
	Params() []*Param
	// OutShape maps a per-example input shape to the output shape.
	OutShape(in []int) []int
	// FLOPs counts floating-point operations per example for the given
	// per-example input shape.
	FLOPs(in []int) int64
}

// Conv1D is a 1-D convolution with valid padding and stride 1.
// Input [N, C, L] → output [N, F, L-K+1].
type Conv1D struct {
	name    string
	in, out int // channels
	k       int // kernel width
	w       *Param
	b       *Param

	x  *Tensor // saved input
	y  *Tensor // reusable output buffer
	dx *Tensor // reusable input-gradient buffer
}

// NewConv1D creates a Conv1D layer with He-uniform initialization.
func NewConv1D(name string, inChannels, outChannels, kernel int, rng *rand.Rand) *Conv1D {
	c := &Conv1D{
		name: name,
		in:   inChannels, out: outChannels, k: kernel,
		w: newParam(name+".w", outChannels, inChannels, kernel),
		b: newParam(name+".b", outChannels),
	}
	c.w.initUniform(rng, inChannels*kernel)
	return c
}

// Name implements Layer.
func (c *Conv1D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv1D) Params() []*Param { return []*Param{c.w, c.b} }

// OutShape implements Layer.
func (c *Conv1D) OutShape(in []int) []int {
	if len(in) != 2 || in[0] != c.in || in[1] < c.k {
		panic(fmt.Sprintf("nn: conv1d %s: bad input shape %v (in=%d k=%d)", c.name, in, c.in, c.k))
	}
	return []int{c.out, in[1] - c.k + 1}
}

// FLOPs implements Layer: 2·C·K multiply-adds per output element plus bias.
func (c *Conv1D) FLOPs(in []int) int64 {
	outL := int64(in[1] - c.k + 1)
	return outL * int64(c.out) * (2*int64(c.in)*int64(c.k) + 1)
}

// Forward implements Layer.
func (c *Conv1D) Forward(x *Tensor) *Tensor {
	n, ch, l := x.Shape[0], x.Shape[1], x.Shape[2]
	if ch != c.in || l < c.k {
		panic(fmt.Sprintf("nn: conv1d %s: input shape %v", c.name, x.Shape))
	}
	outL := l - c.k + 1
	c.y = ensure(c.y, n, c.out, outL)
	y := c.y
	c.x = x
	w, b := c.w.W.Data, c.b.W.Data
	for bi := 0; bi < n; bi++ {
		xoff := bi * ch * l
		yoff := bi * c.out * outL
		for f := 0; f < c.out; f++ {
			wf := w[f*c.in*c.k : (f+1)*c.in*c.k]
			for ol := 0; ol < outL; ol++ {
				sum := b[f]
				for ci := 0; ci < ch; ci++ {
					xrow := xoff + ci*l + ol
					wrow := ci * c.k
					for kk := 0; kk < c.k; kk++ {
						sum += wf[wrow+kk] * x.Data[xrow+kk]
					}
				}
				y.Data[yoff+f*outL+ol] = sum
			}
		}
	}
	return y
}

// Backward implements Layer.
func (c *Conv1D) Backward(grad *Tensor) *Tensor {
	x := c.x
	n, ch, l := x.Shape[0], x.Shape[1], x.Shape[2]
	outL := l - c.k + 1
	c.dx = ensure(c.dx, n, ch, l)
	dx := c.dx
	dx.Zero()
	w := c.w.W.Data
	gw, gb := c.w.G.Data, c.b.G.Data
	for bi := 0; bi < n; bi++ {
		xoff := bi * ch * l
		goff := bi * c.out * outL
		for f := 0; f < c.out; f++ {
			wf := w[f*c.in*c.k : (f+1)*c.in*c.k]
			gwf := gw[f*c.in*c.k : (f+1)*c.in*c.k]
			for ol := 0; ol < outL; ol++ {
				g := grad.Data[goff+f*outL+ol]
				if g == 0 {
					continue
				}
				gb[f] += g
				for ci := 0; ci < ch; ci++ {
					xrow := xoff + ci*l + ol
					wrow := ci * c.k
					for kk := 0; kk < c.k; kk++ {
						gwf[wrow+kk] += g * x.Data[xrow+kk]
						dx.Data[xrow+kk] += g * wf[wrow+kk]
					}
				}
			}
		}
	}
	return dx
}

// Dense is a fully connected layer: input [N, in] → output [N, out].
type Dense struct {
	name    string
	in, out int
	w       *Param
	b       *Param

	x  *Tensor
	y  *Tensor
	dx *Tensor
}

// NewDense creates a Dense layer with He-uniform initialization.
func NewDense(name string, in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		name: name, in: in, out: out,
		w: newParam(name+".w", out, in),
		b: newParam(name+".b", out),
	}
	d.w.initUniform(rng, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// OutShape implements Layer.
func (d *Dense) OutShape(in []int) []int {
	if len(in) != 1 || in[0] != d.in {
		panic(fmt.Sprintf("nn: dense %s: bad input shape %v (in=%d)", d.name, in, d.in))
	}
	return []int{d.out}
}

// FLOPs implements Layer.
func (d *Dense) FLOPs(in []int) int64 {
	return int64(d.out) * (2*int64(d.in) + 1)
}

// Forward implements Layer.
func (d *Dense) Forward(x *Tensor) *Tensor {
	n := x.Shape[0]
	if x.Shape[1] != d.in {
		panic(fmt.Sprintf("nn: dense %s: input shape %v", d.name, x.Shape))
	}
	d.x = x
	d.y = ensure(d.y, n, d.out)
	y := d.y
	w, b := d.w.W.Data, d.b.W.Data
	for bi := 0; bi < n; bi++ {
		xr := x.Data[bi*d.in : (bi+1)*d.in]
		yr := y.Data[bi*d.out : (bi+1)*d.out]
		for o := 0; o < d.out; o++ {
			sum := b[o]
			wr := w[o*d.in : (o+1)*d.in]
			for i, xv := range xr {
				sum += wr[i] * xv
			}
			yr[o] = sum
		}
	}
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *Tensor) *Tensor {
	n := grad.Shape[0]
	d.dx = ensure(d.dx, n, d.in)
	dx := d.dx
	dx.Zero()
	w := d.w.W.Data
	gw, gb := d.w.G.Data, d.b.G.Data
	for bi := 0; bi < n; bi++ {
		xr := d.x.Data[bi*d.in : (bi+1)*d.in]
		gr := grad.Data[bi*d.out : (bi+1)*d.out]
		dxr := dx.Data[bi*d.in : (bi+1)*d.in]
		for o := 0; o < d.out; o++ {
			g := gr[o]
			if g == 0 {
				continue
			}
			gb[o] += g
			wr := w[o*d.in : (o+1)*d.in]
			gwr := gw[o*d.in : (o+1)*d.in]
			for i := range xr {
				gwr[i] += g * xr[i]
				dxr[i] += g * wr[i]
			}
		}
	}
	return dx
}

// ReLU is the rectified linear activation.
type ReLU struct {
	name string
	mask []bool
	y    *Tensor
	dx   *Tensor
}

// NewReLU creates a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// OutShape implements Layer.
func (r *ReLU) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (r *ReLU) FLOPs(in []int) int64 {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return n
}

// Forward implements Layer.
func (r *ReLU) Forward(x *Tensor) *Tensor {
	r.y = ensure(r.y, x.Shape...)
	y := r.y
	if cap(r.mask) < len(y.Data) {
		r.mask = make([]bool, len(y.Data))
	}
	r.mask = r.mask[:len(y.Data)]
	for i, v := range x.Data {
		if v <= 0 {
			y.Data[i] = 0
			r.mask[i] = false
		} else {
			y.Data[i] = v
			r.mask[i] = true
		}
	}
	return y
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *Tensor) *Tensor {
	r.dx = ensure(r.dx, grad.Shape...)
	dx := r.dx
	for i, g := range grad.Data {
		if r.mask[i] {
			dx.Data[i] = g
		} else {
			dx.Data[i] = 0
		}
	}
	return dx
}

// Sigmoid is the logistic activation.
type Sigmoid struct {
	name string
	y    *Tensor
	dx   *Tensor
}

// NewSigmoid creates a Sigmoid layer.
func NewSigmoid(name string) *Sigmoid { return &Sigmoid{name: name} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return s.name }

// Params implements Layer.
func (s *Sigmoid) Params() []*Param { return nil }

// OutShape implements Layer.
func (s *Sigmoid) OutShape(in []int) []int { return in }

// FLOPs implements Layer: ~4 ops per element.
func (s *Sigmoid) FLOPs(in []int) int64 {
	n := int64(1)
	for _, d := range in {
		n *= int64(d)
	}
	return 4 * n
}

// Forward implements Layer.
func (s *Sigmoid) Forward(x *Tensor) *Tensor {
	s.y = ensure(s.y, x.Shape...)
	for i, v := range x.Data {
		s.y.Data[i] = 1 / (1 + math.Exp(-v))
	}
	return s.y
}

// Backward implements Layer.
func (s *Sigmoid) Backward(grad *Tensor) *Tensor {
	s.dx = ensure(s.dx, grad.Shape...)
	for i, g := range grad.Data {
		yv := s.y.Data[i]
		s.dx.Data[i] = g * yv * (1 - yv)
	}
	return s.dx
}

// GlobalMaxPool1D reduces [N, C, L] → [N, C] by max over the length axis,
// the paper's embedding-block pooling (§5.2).
type GlobalMaxPool1D struct {
	name   string
	argmax []int
	inL    int
	y      *Tensor
	dx     *Tensor
}

// NewGlobalMaxPool1D creates the pooling layer.
func NewGlobalMaxPool1D(name string) *GlobalMaxPool1D { return &GlobalMaxPool1D{name: name} }

// Name implements Layer.
func (g *GlobalMaxPool1D) Name() string { return g.name }

// Params implements Layer.
func (g *GlobalMaxPool1D) Params() []*Param { return nil }

// OutShape implements Layer.
func (g *GlobalMaxPool1D) OutShape(in []int) []int {
	if len(in) != 2 {
		panic(fmt.Sprintf("nn: %s: bad input shape %v", g.name, in))
	}
	return []int{in[0]}
}

// FLOPs implements Layer.
func (g *GlobalMaxPool1D) FLOPs(in []int) int64 { return int64(in[0]) * int64(in[1]) }

// Forward implements Layer.
func (g *GlobalMaxPool1D) Forward(x *Tensor) *Tensor {
	n, c, l := x.Shape[0], x.Shape[1], x.Shape[2]
	g.inL = l
	g.y = ensure(g.y, n, c)
	y := g.y
	if cap(g.argmax) < n*c {
		g.argmax = make([]int, n*c)
	}
	g.argmax = g.argmax[:n*c]
	for bi := 0; bi < n; bi++ {
		for ci := 0; ci < c; ci++ {
			row := x.Data[(bi*c+ci)*l : (bi*c+ci+1)*l]
			best, bestAt := row[0], 0
			for j, v := range row[1:] {
				if v > best {
					best, bestAt = v, j+1
				}
			}
			y.Data[bi*c+ci] = best
			g.argmax[bi*c+ci] = bestAt
		}
	}
	return y
}

// Backward implements Layer.
func (g *GlobalMaxPool1D) Backward(grad *Tensor) *Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	g.dx = ensure(g.dx, n, c, g.inL)
	dx := g.dx
	dx.Zero()
	for i, at := range g.argmax {
		dx.Data[i*g.inL+at] = grad.Data[i]
	}
	return dx
}

// Flatten reshapes [N, d1, d2, ...] → [N, d1·d2·...].
type Flatten struct {
	name string
	in   []int
}

// NewFlatten creates a Flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// OutShape implements Layer.
func (f *Flatten) OutShape(in []int) []int {
	n := 1
	for _, d := range in {
		n *= d
	}
	return []int{n}
}

// FLOPs implements Layer.
func (f *Flatten) FLOPs(in []int) int64 { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(x *Tensor) *Tensor {
	f.in = append(f.in[:0], x.Shape...)
	n := x.Shape[0]
	return FromSlice(x.Data, n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *Tensor) *Tensor {
	return FromSlice(grad.Data, f.in...)
}
