package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Weight files are the "binary runtime file" of the paper's deployment
// workflow (§5.2): the predictor is trained offline, its weights exported,
// and the frozen file loaded for real-time gating.
//
// Format (big-endian):
//
//	magic "PGW1"
//	uint32 param count
//	per param: uint16 name length, name bytes,
//	           uint8 ndim, ndim × uint32 dims,
//	           dims-product × float64 bits
var weightMagic = [4]byte{'P', 'G', 'W', '1'}

// SaveParams writes the parameter values to w.
func SaveParams(w io.Writer, params []*Param) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(weightMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.BigEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if len(p.Name) > 65535 {
			return fmt.Errorf("nn: parameter name too long: %d bytes", len(p.Name))
		}
		if err := binary.Write(bw, binary.BigEndian, uint16(len(p.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(p.Name); err != nil {
			return err
		}
		if len(p.W.Shape) > 255 {
			return fmt.Errorf("nn: parameter %s has %d dims", p.Name, len(p.W.Shape))
		}
		if err := bw.WriteByte(byte(len(p.W.Shape))); err != nil {
			return err
		}
		for _, d := range p.W.Shape {
			if err := binary.Write(bw, binary.BigEndian, uint32(d)); err != nil {
				return err
			}
		}
		for _, v := range p.W.Data {
			if err := binary.Write(bw, binary.BigEndian, math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadParams reads parameter values from r into params. Names, order, and
// shapes must match what was saved; gradients are untouched.
func LoadParams(r io.Reader, params []*Param) error {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("nn: reading magic: %w", err)
	}
	if magic != weightMagic {
		return fmt.Errorf("nn: bad weight file magic %q", magic[:])
	}
	var count uint32
	if err := binary.Read(br, binary.BigEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: weight file has %d params, model has %d", count, len(params))
	}
	for _, p := range params {
		var nameLen uint16
		if err := binary.Read(br, binary.BigEndian, &nameLen); err != nil {
			return err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return err
		}
		if string(name) != p.Name {
			return fmt.Errorf("nn: weight file param %q, model expects %q", name, p.Name)
		}
		ndim, err := br.ReadByte()
		if err != nil {
			return err
		}
		if int(ndim) != len(p.W.Shape) {
			return fmt.Errorf("nn: param %s: %d dims in file, %d in model", p.Name, ndim, len(p.W.Shape))
		}
		for i := 0; i < int(ndim); i++ {
			var d uint32
			if err := binary.Read(br, binary.BigEndian, &d); err != nil {
				return err
			}
			if int(d) != p.W.Shape[i] {
				return fmt.Errorf("nn: param %s: dim %d is %d in file, %d in model", p.Name, i, d, p.W.Shape[i])
			}
		}
		for i := range p.W.Data {
			var bits uint64
			if err := binary.Read(br, binary.BigEndian, &bits); err != nil {
				return err
			}
			p.W.Data[i] = math.Float64frombits(bits)
		}
	}
	return nil
}
