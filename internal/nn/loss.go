package nn

import (
	"fmt"
	"math"
)

// bceEps clamps predictions away from 0/1 for numerical stability.
const bceEps = 1e-7

// BCE computes the mean binary cross-entropy loss between predictions in
// (0,1) and binary (or soft, 0-1 normalized) targets, along with the loss
// gradient with respect to the predictions. Shapes must match; the loss is
// averaged over every element, matching the paper's per-task normalization
// (§5.2). Entries with target NaN are masked out (multi-task training where
// a sample carries labels for only some heads).
func BCE(pred, target *Tensor) (float64, *Tensor) {
	if !SameShape(pred, target) {
		panic(fmt.Sprintf("nn: BCE shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	grad := NewTensor(pred.Shape...)
	var loss float64
	n := 0
	for i, y := range pred.Data {
		r := target.Data[i]
		if math.IsNaN(r) {
			continue
		}
		if y < bceEps {
			y = bceEps
		} else if y > 1-bceEps {
			y = 1 - bceEps
		}
		loss += -(r*math.Log(y) + (1-r)*math.Log(1-y))
		grad.Data[i] = (y - r) / (y * (1 - y))
		n++
	}
	if n == 0 {
		return 0, grad
	}
	inv := 1 / float64(n)
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return loss * inv, grad
}

// MSE computes mean squared error and its gradient.
func MSE(pred, target *Tensor) (float64, *Tensor) {
	if !SameShape(pred, target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape, target.Shape))
	}
	grad := NewTensor(pred.Shape...)
	var loss float64
	for i, y := range pred.Data {
		d := y - target.Data[i]
		loss += d * d
		grad.Data[i] = 2 * d
	}
	inv := 1 / float64(len(pred.Data))
	for i := range grad.Data {
		grad.Data[i] *= inv
	}
	return loss * inv, grad
}
