// Package nn is a small, dependency-free neural network library sufficient
// to train and deploy PacketGame's contextual predictor (§5.2): tensors,
// Conv1D / Dense / GlobalMaxPool / ReLU / Sigmoid layers with full
// backpropagation, binary cross-entropy loss, the RMSprop optimizer the
// paper uses, analytic FLOP counting, and binary weight (de)serialization
// for the train-offline / deploy-frozen workflow of §6.1.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// NewTensor allocates a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("nn: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data with the given shape, validating the element count.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("nn: %d elements for shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := NewTensor(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero resets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// At returns the element at the given multi-index (row-major).
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.offset(idx)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("nn: %d indices for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("nn: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Param is one trainable parameter tensor with its gradient accumulator.
type Param struct {
	Name string
	W    *Tensor
	G    *Tensor
}

// newParam allocates a parameter and its gradient.
func newParam(name string, shape ...int) *Param {
	return &Param{Name: name, W: NewTensor(shape...), G: NewTensor(shape...)}
}

// initUniform fills W with He-style uniform noise scaled by fanIn.
func (p *Param) initUniform(rng *rand.Rand, fanIn int) {
	limit := math.Sqrt(6.0 / float64(fanIn))
	for i := range p.W.Data {
		p.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ensure returns t if it matches the shape, otherwise a fresh tensor.
// Layers use it to reuse output buffers across forward passes: the training
// loop always runs backward immediately after forward, so overwriting the
// previous pass's buffers is safe and removes steady-state allocation from
// the hot gating path.
func ensure(t *Tensor, shape ...int) *Tensor {
	if t != nil && len(t.Shape) == len(shape) {
		same := true
		for i := range shape {
			if t.Shape[i] != shape[i] {
				same = false
				break
			}
		}
		if same {
			return t
		}
	}
	return NewTensor(shape...)
}

// NumParams sums the element counts of a parameter list.
func NumParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.W.Len()
	}
	return n
}

// ZeroGrads clears the gradients of all parameters.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.G.Zero()
	}
}
