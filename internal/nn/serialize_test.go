package nn

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func buildModel(seed int64) *Sequential {
	rng := rand.New(rand.NewSource(seed))
	return NewSequential("m",
		NewConv1D("c1", 1, 4, 2, rng),
		NewReLU("r"),
		NewGlobalMaxPool1D("p"),
		NewDense("d", 4, 1, rng),
		NewSigmoid("s"),
	)
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildModel(1)
	dst := buildModel(2) // different init

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	// Same weights → same outputs.
	x := randTensor(rand.New(rand.NewSource(3)), 2, 1, 6)
	ya, yb := src.Forward(x), dst.Forward(x)
	for i := range ya.Data {
		if ya.Data[i] != yb.Data[i] {
			t.Fatalf("output %d differs after load: %v vs %v", i, ya.Data[i], yb.Data[i])
		}
	}
}

func TestLoadRejectsBadMagic(t *testing.T) {
	m := buildModel(1)
	err := LoadParams(strings.NewReader("NOPE????????"), m.Params())
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want magic error", err)
	}
}

func TestLoadRejectsParamCountMismatch(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := buildModel(1)
	if err := LoadParams(&buf, dst.Params()[:2]); err == nil {
		t.Error("param count mismatch must error")
	}
}

func TestLoadRejectsNameMismatch(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := buildModel(1)
	dst.Params()[0].Name = "other"
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Error("name mismatch must error")
	}
}

func TestLoadRejectsShapeMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	src := NewDense("d", 3, 2, rng)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	dst := NewDense("d", 2, 2, rng) // wrong input width
	if err := LoadParams(&buf, dst.Params()); err == nil {
		t.Error("shape mismatch must error")
	}
}

func TestLoadTruncatedFile(t *testing.T) {
	src := buildModel(1)
	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	dst := buildModel(1)
	if err := LoadParams(bytes.NewReader(raw[:len(raw)/2]), dst.Params()); err == nil {
		t.Error("truncated file must error")
	}
}
