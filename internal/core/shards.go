package core

import (
	"sync"

	"packetgame/internal/bandit"
	"packetgame/internal/decode"
	"packetgame/internal/predictor"
)

// streamShard holds the per-stream gate state of one shard: the temporal
// estimator counters, the predictor context windows, and the decoding
// dependency trackers of every stream whose ID hashes to this shard
// (stream i lives in shard i mod S, at local index i div S).
//
// Each shard carries its own lock so redundancy feedback for completed
// rounds (which mutates the estimator) can land while a new round is being
// admitted on other shards, instead of serializing on one gate-wide mutex.
// The estimators stay mathematically identical to a single unsharded one:
// every Feedback pushes one round into every shard, so all shard clocks
// advance in lockstep, and the per-stream UCB terms only read the stream's
// own counters plus the shard clock.
type streamShard struct {
	mu sync.Mutex

	// ids maps local index -> global stream ID.
	ids []int
	// est is the shard's slice of the temporal estimator (nil when neither
	// the temporal term nor the exploration bonus is enabled).
	est *bandit.TemporalEstimator
	// windows are the contextual predictor's per-stream feature windows.
	windows []*predictor.Window
	// trackers are the per-stream GOP dependency trackers (Fig 6).
	trackers []*decode.Tracker

	// Push scratch, guarded by mu.
	sel    []bool
	reward []float64
}

// streamShards is the sharded per-stream state container keyed by stream ID.
type streamShards struct {
	shards []*streamShard
	n      int // stream count
}

// newStreamShards partitions m streams over s shards and allocates their
// per-stream state. needEst controls whether temporal estimators are built.
func newStreamShards(m, s, window int, needEst bool, cm decode.CostModel) (*streamShards, error) {
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}
	ss := &streamShards{shards: make([]*streamShard, s), n: m}
	for k := range ss.shards {
		ss.shards[k] = &streamShard{}
	}
	for i := 0; i < m; i++ {
		sh := ss.shards[i%s]
		sh.ids = append(sh.ids, i)
	}
	for _, sh := range ss.shards {
		local := len(sh.ids)
		sh.windows = make([]*predictor.Window, local)
		sh.trackers = make([]*decode.Tracker, local)
		sh.sel = make([]bool, local)
		sh.reward = make([]float64, local)
		for li := range sh.windows {
			sh.windows[li] = predictor.NewWindow(window)
			sh.trackers[li] = decode.NewTracker(cm)
		}
		if needEst && local > 0 {
			est, err := bandit.NewTemporalEstimator(local, window)
			if err != nil {
				return nil, err
			}
			sh.est = est
		}
	}
	return ss, nil
}

// shardOf returns the shard holding stream i and i's local index within it.
func (ss *streamShards) shardOf(i int) (*streamShard, int) {
	s := len(ss.shards)
	return ss.shards[i%s], i / s
}

// window returns stream i's feature window. Windows are only touched by
// Decide, which the gate serializes, so no shard lock is needed here.
func (ss *streamShards) window(i int) *predictor.Window {
	sh, li := ss.shardOf(i)
	return sh.windows[li]
}

// push records one completed round into every shard's estimator: selBools
// and rewards are indexed by global stream ID. Shards are locked one at a
// time, so a concurrent Decide only ever contends on a single shard.
func (ss *streamShards) push(selBools []bool, rewards []float64) error {
	for _, sh := range ss.shards {
		if sh.est == nil {
			continue
		}
		sh.mu.Lock()
		for li, i := range sh.ids {
			sh.sel[li] = selBools[i]
			sh.reward[li] = rewards[i]
		}
		err := sh.est.Push(sh.sel, sh.reward)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
