package core

import (
	"sync"

	"packetgame/internal/bandit"
	"packetgame/internal/decode"
	"packetgame/internal/predictor"
)

// streamShard holds the per-stream gate state of one shard: the temporal
// estimator counters, the predictor feature store, and the decoding
// dependency trackers of every stream whose ID hashes to this shard
// (stream i lives in shard i mod S, at local index i div S).
//
// Each shard carries its own lock so redundancy feedback for completed
// rounds (which mutates the estimator) can land while a new round is being
// admitted on other shards, instead of serializing on one gate-wide mutex.
// The estimators stay mathematically identical to a single unsharded one:
// every Feedback pushes one round into every shard, so all shard clocks
// advance in lockstep, and the per-stream UCB terms only read the stream's
// own counters plus the shard clock.
type streamShard struct {
	mu sync.Mutex

	// ids maps local index -> global stream ID.
	ids []int
	// est is the shard's slice of the temporal estimator (nil when neither
	// the temporal term nor the exploration bonus is enabled).
	est *bandit.TemporalEstimator
	// store is the contextual predictor's struct-of-arrays feature state
	// (size rings, poison counters, and the per-stream feature epochs the
	// gate's score cache keys on), indexed by local stream index.
	store *predictor.Store
	// trackers are the per-stream GOP dependency trackers (Fig 6).
	trackers []*decode.Tracker

	// Sparse feedback scratch: the round's selected (local index, reward)
	// pairs for this shard's estimator. Built and consumed under the gate's
	// ackMu (Feedback is serialized), so it needs no extra lock of its own.
	pushIDs []int32
	pushRew []float64
}

// streamShards is the sharded per-stream state container keyed by stream ID.
type streamShards struct {
	shards []*streamShard
	n      int // stream count
}

// newStreamShards partitions m streams over s shards and allocates their
// per-stream state. needEst controls whether temporal estimators are built.
func newStreamShards(m, s, window int, needEst bool, cm decode.CostModel) (*streamShards, error) {
	if s < 1 {
		s = 1
	}
	if s > m {
		s = m
	}
	ss := &streamShards{shards: make([]*streamShard, s), n: m}
	for k := range ss.shards {
		ss.shards[k] = &streamShard{}
	}
	for i := 0; i < m; i++ {
		sh := ss.shards[i%s]
		sh.ids = append(sh.ids, i)
	}
	for _, sh := range ss.shards {
		local := len(sh.ids)
		sh.store = predictor.NewStore(local, window)
		sh.trackers = make([]*decode.Tracker, local)
		for li := range sh.trackers {
			sh.trackers[li] = decode.NewTracker(cm)
		}
		if needEst && local > 0 {
			est, err := bandit.NewTemporalEstimator(local, window)
			if err != nil {
				return nil, err
			}
			sh.est = est
		}
	}
	return ss, nil
}

// shardOf returns the shard holding stream i and i's local index within it.
func (ss *streamShards) shardOf(i int) (*streamShard, int) {
	s := len(ss.shards)
	return ss.shards[i%s], i / s
}

// pushSparse records one completed round into every shard's estimator from
// the per-shard (pushIDs, pushRew) scratch the caller filled. Every
// est-bearing shard is pushed — with an empty list when none of its streams
// were selected — so all shard clocks advance in lockstep and per-stream
// ages keep growing, exactly as the dense per-stream push did. Shard locks
// are taken one at a time, so a concurrent Decide only ever contends on a
// single shard. Cost is O(shards + selections), not O(m).
func (ss *streamShards) pushSparse() error {
	for _, sh := range ss.shards {
		if sh.est == nil {
			continue
		}
		sh.mu.Lock()
		err := sh.est.PushSparse(sh.pushIDs, sh.pushRew)
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}
