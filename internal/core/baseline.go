package core

import (
	"fmt"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/knapsack"
)

// Decider is the round-based gating protocol shared by the PacketGame Gate
// and the baseline policies: Decide selects packets, Feedback reports the
// redundancy outcome of the decoded ones.
type Decider interface {
	Decide(pkts []*codec.Packet) ([]int, error)
	Feedback(selected []int, necessary []bool) error
}

// ValueFunc assigns a selection value to each stream's current packet.
// It is how oracle baselines peek at ground truth.
type ValueFunc func(pkts []*codec.Packet) []float64

// BaselineGate wraps a knapsack selector into the Decider protocol with
// dependency-aware costs but externally supplied values. With a nil
// ValueFunc every active packet has value 1, which turns value-agnostic
// selectors (round-robin, random) into the §3.2 baselines; with an oracle
// ValueFunc and the greedy selector it is the "Optimal" policy of Figs 4/9.
type BaselineGate struct {
	selector knapsack.Selector
	tracker  *decode.MultiTracker
	values   ValueFunc
	budget   float64
	items    []knapsack.Item
	selected []bool
	costs    []float64
	stats    Stats
}

// NewBaselineGate builds a baseline policy over m streams with a fixed
// per-round budget.
func NewBaselineGate(m int, cm decode.CostModel, sel knapsack.Selector, values ValueFunc, budget float64) *BaselineGate {
	return &BaselineGate{
		selector: sel,
		tracker:  decode.NewMultiTracker(m, cm),
		values:   values,
		budget:   budget,
		items:    make([]knapsack.Item, m),
		selected: make([]bool, m),
	}
}

// Budget returns the per-round budget.
func (b *BaselineGate) Budget() float64 { return b.budget }

// Stats returns lifetime counters.
func (b *BaselineGate) Stats() Stats { return b.stats }

// Decide implements Decider.
func (b *BaselineGate) Decide(pkts []*codec.Packet) ([]int, error) {
	if len(pkts) != len(b.selected) {
		return nil, fmt.Errorf("core: %d packets for %d streams", len(pkts), len(b.selected))
	}
	costs, err := b.tracker.CostsAppend(b.costs[:0], pkts)
	b.costs = costs
	if err != nil {
		return nil, err
	}
	var vals []float64
	if b.values != nil {
		vals = b.values(pkts)
	}
	for i := range b.items {
		b.items[i] = knapsack.Item{}
		if pkts[i] == nil {
			continue
		}
		b.stats.Packets++
		v := 1.0
		if vals != nil {
			v = vals[i]
		}
		b.items[i] = knapsack.Item{Value: v, Cost: costs[i]}
	}
	sel := b.selector.Select(b.items, b.budget)
	for i := range b.selected {
		b.selected[i] = false
	}
	for _, i := range sel {
		b.selected[i] = true
		b.stats.Decoded++
		b.stats.CostSpent += costs[i]
	}
	if err := b.tracker.Commit(pkts, b.selected); err != nil {
		return nil, err
	}
	b.stats.Rounds++
	return sel, nil
}

// Feedback implements Decider. Baselines ignore feedback.
func (b *BaselineGate) Feedback(selected []int, necessary []bool) error { return nil }
