package core

import (
	"bytes"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/knapsack"
	"packetgame/internal/predictor"
	"packetgame/internal/trace"
)

// adTask is the anomaly-detection task used throughout these tests.
type adTask = infer.AnomalyDetection

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no streams", Config{Budget: 5, UseTemporal: true}},
		{"no budget", Config{Streams: 3, UseTemporal: true}},
		{"no scorer", Config{Streams: 3, Budget: 5}},
	}
	for _, c := range cases {
		if _, err := NewGate(c.cfg); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestConfigPredictorWindowMismatch(t *testing.T) {
	pcfg := predictor.DefaultConfig()
	pcfg.Window = 10
	p, err := predictor.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGate(Config{Streams: 2, Budget: 5, Window: 5, Predictor: p}); err == nil {
		t.Error("window mismatch must error")
	}
	if _, err := NewGate(Config{Streams: 2, Budget: 5, Window: 10, Predictor: p, TaskIndex: 3}); err == nil {
		t.Error("task index out of range must error")
	}
}

func TestGateProtocolEnforced(t *testing.T) {
	g, err := NewGate(Config{Streams: 2, Budget: 5, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Feedback(nil, nil); err == nil {
		t.Error("Feedback before Decide must error")
	}
	pkts := []*codec.Packet{
		{Type: codec.PictureI, GOPIndex: 0, GOPSize: 5, Size: 1000},
		{Type: codec.PictureI, GOPIndex: 0, GOPSize: 5, Size: 1000},
	}
	sel, err := g.Decide(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Decide(pkts); err == nil {
		t.Error("second Decide without Feedback must error")
	}
	nec := make([]bool, len(sel))
	if err := g.Feedback(sel, nec[:0]); err == nil && len(sel) > 0 {
		t.Error("feedback length mismatch must error")
	}
	if err := g.Feedback(sel, nec); err != nil {
		t.Fatal(err)
	}
	if err := g.Feedback(sel, nec); err == nil {
		t.Error("double Feedback must error")
	}
}

func TestGateRejectsWrongPacketCount(t *testing.T) {
	g, err := NewGate(Config{Streams: 3, Budget: 5, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Decide(make([]*codec.Packet, 2)); err == nil {
		t.Error("packet count mismatch must error")
	}
}

func TestGateRespectsBudgetPerRound(t *testing.T) {
	const m = 10
	g, err := NewGate(Config{Streams: m, Budget: 4, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(codec.SceneConfig{BaseActivity: 0.7},
			codec.EncoderConfig{StreamID: i, GOPSize: 10}, int64(i))
	}
	for round := 0; round < 100; round++ {
		pkts := make([]*codec.Packet, m)
		for i, st := range streams {
			pkts[i] = st.Next()
		}
		before := g.Stats().CostSpent
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatal(err)
		}
		if spent := g.Stats().CostSpent - before; spent > 4+1e-9 {
			t.Fatalf("round %d spent %v > budget 4", round, spent)
		}
		if err := g.Feedback(sel, make([]bool, len(sel))); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Stats()
	if st.Rounds != 100 || st.Packets != 100*m {
		t.Errorf("stats = %+v", st)
	}
	if st.Decoded == 0 {
		t.Error("gate decoded nothing")
	}
}

func TestGateIdleStreamsNeverSelected(t *testing.T) {
	g, err := NewGate(Config{Streams: 3, Budget: 10, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	pkts := []*codec.Packet{
		nil,
		{Type: codec.PictureI, GOPIndex: 0, GOPSize: 5, Size: 500},
		nil,
	}
	sel, err := g.Decide(pkts)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range sel {
		if i != 1 {
			t.Errorf("idle stream %d selected", i)
		}
	}
	if err := g.Feedback(sel, make([]bool, len(sel))); err != nil {
		t.Fatal(err)
	}
}

// mkStreams builds m synthetic cameras with anomalies for AD experiments.
func mkStreams(m int, seed int64) []*codec.Stream {
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(
			codec.SceneConfig{BaseActivity: 0.4, AnomalyRate: 40, AnomalyDuration: 30},
			codec.EncoderConfig{StreamID: i, GOPSize: 25},
			seed+int64(i)*101)
	}
	return streams
}

func runPolicy(t *testing.T, d Decider, m int, rounds int, seed int64) Result {
	t.Helper()
	sim := NewSimulation(mkStreams(m, seed), inferAD{}, decode.DefaultCosts)
	sim.SetDecider(d)
	res, err := sim.Run(rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// inferAD is a tiny local alias to avoid repeated struct literals.
type inferAD = adTask

// mkHetStreams builds a fleet where half the cameras are busy (frequent
// person-count changes) and half are quiet — the regime where cross-stream
// coordination pays off (§3.2).
func mkHetStreams(m int, seed int64) []*codec.Stream {
	streams := make([]*codec.Stream, m)
	for i := range streams {
		sc := codec.SceneConfig{BaseActivity: 0.05, PersonRate: 0.02}
		if i%2 == 0 {
			sc = codec.SceneConfig{BaseActivity: 0.95, PersonRate: 1.2, PersonStay: 4}
		}
		streams[i] = codec.NewStream(sc,
			codec.EncoderConfig{StreamID: i, GOPSize: 25, GOPPhase: i * 7},
			seed+int64(i)*101)
	}
	return streams
}

func TestTemporalGateBeatsRandomOnBurstyPC(t *testing.T) {
	const m, rounds, budget = 20, 3000, 4.0
	run := func(d Decider) Result {
		sim := NewSimulation(mkHetStreams(m, 9000), infer.PersonCounting{}, decode.DefaultCosts)
		sim.SetDecider(d)
		res, err := sim.Run(rounds, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gate, err := NewGate(Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	pg := run(gate)
	rnd := run(NewBaselineGate(m, decode.DefaultCosts, knapsack.NewRandom(1), nil, budget))
	if pg.BalancedAccuracy <= rnd.BalancedAccuracy {
		t.Errorf("temporal gate balanced accuracy %.3f must beat random %.3f",
			pg.BalancedAccuracy, rnd.BalancedAccuracy)
	}
}

func TestOracleDominatesEverything(t *testing.T) {
	const m, rounds, budget = 20, 1000, 5.0
	oracleSim := NewSimulation(mkStreams(m, 5000), adTask{}, decode.DefaultCosts)
	oracle := NewBaselineGate(m, decode.DefaultCosts, &knapsack.Greedy{}, oracleSim.OracleValues, budget)
	oracleSim.SetDecider(oracle)
	oracleRes, err := oracleSim.Run(rounds, 0)
	if err != nil {
		t.Fatal(err)
	}
	gate, err := NewGate(Config{Streams: m, Budget: budget, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	pg := runPolicy(t, gate, m, rounds, 5000)
	if oracleRes.Accuracy < pg.Accuracy-0.02 {
		t.Errorf("oracle %.3f should not lose to PacketGame %.3f", oracleRes.Accuracy, pg.Accuracy)
	}
	if oracleRes.Accuracy < 0.9 {
		t.Errorf("oracle accuracy %.3f suspiciously low", oracleRes.Accuracy)
	}
}

func TestSimulationValidation(t *testing.T) {
	sim := NewSimulation(mkStreams(2, 1), adTask{}, decode.DefaultCosts)
	if _, err := sim.Run(10, 0); err == nil {
		t.Error("run without decider must error")
	}
	g, err := NewGate(Config{Streams: 2, Budget: 5, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetDecider(g)
	if _, err := sim.Run(0, 0); err == nil {
		t.Error("zero rounds must error")
	}
}

func TestSimulationSegments(t *testing.T) {
	const m, rounds = 5, 120
	sim := NewSimulation(mkStreams(m, 77), adTask{}, decode.DefaultCosts)
	g, err := NewGate(Config{Streams: m, Budget: 3, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetDecider(g)
	res, err := sim.Run(rounds, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SegmentAccuracy) != 6 {
		t.Fatalf("segments = %d, want 6", len(res.SegmentAccuracy))
	}
	for i, a := range res.SegmentAccuracy {
		if a < 0 || a > 1 {
			t.Errorf("segment %d accuracy %v out of range", i, a)
		}
	}
	if res.FilterRate <= 0 || res.FilterRate >= 1 {
		t.Errorf("filter rate = %v", res.FilterRate)
	}
}

func TestBaselineGateStats(t *testing.T) {
	const m = 4
	b := NewBaselineGate(m, decode.DefaultCosts, &knapsack.RoundRobin{}, nil, 2)
	if b.Budget() != 2 {
		t.Errorf("budget = %v", b.Budget())
	}
	pkts := make([]*codec.Packet, m)
	for i := range pkts {
		pkts[i] = &codec.Packet{Type: codec.PictureI, GOPIndex: 0, GOPSize: 5, Size: 100}
	}
	sel, err := b.Decide(pkts)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Feedback(sel, make([]bool, len(sel))); err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	if st.Rounds != 1 || st.Packets != m {
		t.Errorf("stats = %+v", st)
	}
}

func TestBaselineGateWrongLength(t *testing.T) {
	b := NewBaselineGate(3, decode.DefaultCosts, &knapsack.RoundRobin{}, nil, 2)
	if _, err := b.Decide(make([]*codec.Packet, 2)); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestDependencyAwareAblation(t *testing.T) {
	// With dependency awareness off, the gate must still run and respect
	// the (bare-cost) budget.
	off := false
	g, err := NewGate(Config{Streams: 5, Budget: 3, UseTemporal: true, DependencyAware: &off})
	if err != nil {
		t.Fatal(err)
	}
	streams := mkStreams(5, 31)
	for round := 0; round < 50; round++ {
		pkts := make([]*codec.Packet, 5)
		for i, st := range streams {
			pkts[i] = st.Next()
		}
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Feedback(sel, make([]bool, len(sel))); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().Decoded == 0 {
		t.Error("no packets decoded")
	}
}

func TestGateTraceRecordsDecisions(t *testing.T) {
	var buf bytes.Buffer
	tw := trace.NewWriter(&buf)
	g, err := NewGate(Config{Streams: 3, Budget: 6, UseTemporal: true, Trace: tw})
	if err != nil {
		t.Fatal(err)
	}
	streams := mkStreams(3, 77)
	const rounds = 20
	for r := 0; r < rounds; r++ {
		pkts := make([]*codec.Packet, 3)
		for i, st := range streams {
			pkts[i] = st.Next()
		}
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatal(err)
		}
		nec := make([]bool, len(sel))
		for k := range nec {
			nec[k] = k%2 == 0
		}
		if err := g.Feedback(sel, nec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	sum, err := trace.Summarize(trace.NewReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Rounds != rounds {
		t.Errorf("trace rounds = %d, want %d", sum.Rounds, rounds)
	}
	if sum.Packets != 3*rounds {
		t.Errorf("trace packets = %d, want %d", sum.Packets, 3*rounds)
	}
	if sum.Selected == 0 || sum.Selected != g.Stats().Decoded {
		t.Errorf("trace selected = %d, gate decoded = %d", sum.Selected, g.Stats().Decoded)
	}
	if sum.BudgetUtilization <= 0 || sum.BudgetUtilization > 1 {
		t.Errorf("budget utilization = %v", sum.BudgetUtilization)
	}
}
