package core

import (
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/predictor"
)

func TestOnlineLearningRequiresPredictor(t *testing.T) {
	_, err := NewGate(Config{Streams: 2, Budget: 5, UseTemporal: true, OnlineLR: 0.001})
	if err == nil {
		t.Error("online learning without a predictor must error")
	}
}

// TestOnlineLearningAdaptsFromScratch starts from an untrained predictor and
// lets the gate fine-tune it online from its own redundancy feedback; the
// online gate must end up beating an identically-initialized frozen gate.
func TestOnlineLearningAdaptsFromScratch(t *testing.T) {
	const m, rounds, budget = 16, 4000, 4.0
	mkStreams := func() []*codec.Stream {
		streams := make([]*codec.Stream, m)
		for i := range streams {
			sc := codec.SceneConfig{BaseActivity: 0.05, PersonRate: 0.02}
			if i%2 == 0 {
				sc = codec.SceneConfig{BaseActivity: 0.9, PersonRate: 1.0, PersonStay: 4}
			}
			streams[i] = codec.NewStream(sc, codec.EncoderConfig{StreamID: i, GOPSize: 25},
				int64(i)*311)
		}
		return streams
	}
	run := func(online bool) Result {
		p, err := predictor.New(predictor.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Streams: m, Budget: budget, Predictor: p, UseTemporal: true}
		if online {
			cfg.OnlineLR = 0.002
			cfg.OnlineBatch = 128
		}
		gate, err := NewGate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		sim := NewSimulation(mkStreams(), infer.PersonCounting{}, decode.DefaultCosts)
		sim.SetDecider(gate)
		res, err := sim.Run(rounds, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	frozen := run(false)
	online := run(true)
	t.Logf("frozen %.4f vs online %.4f balanced accuracy", frozen.BalancedAccuracy, online.BalancedAccuracy)
	if online.BalancedAccuracy < frozen.BalancedAccuracy-0.02 {
		t.Errorf("online learning hurt: %.4f vs frozen %.4f",
			online.BalancedAccuracy, frozen.BalancedAccuracy)
	}
}

func TestTrainerStepReducesLoss(t *testing.T) {
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := predictor.NewTrainer(p, 0.01)
	// A separable batch: positives have large recent P sizes.
	mk := func(pos bool) predictor.Sample {
		f := predictor.Features{ISizes: make([]float64, 5), PSizes: make([]float64, 5)}
		for i := range f.PSizes {
			if pos {
				f.PSizes[i] = 0.8
			} else {
				f.PSizes[i] = 0.2
			}
		}
		f.Pict[1] = 1
		label := 0.0
		if pos {
			label = 1
		}
		return predictor.Sample{F: f, Labels: []float64{label}}
	}
	batch := []predictor.Sample{mk(true), mk(false), mk(true), mk(false)}
	first, err := tr.Step(batch)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < 200; i++ {
		last, err = tr.Step(batch)
		if err != nil {
			t.Fatal(err)
		}
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %.4f last %.4f", first, last)
	}
}

func TestTrainerValidation(t *testing.T) {
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := predictor.NewTrainer(p, 0)
	if _, err := tr.Step(nil); err == nil {
		t.Error("empty batch must error")
	}
	bad := predictor.Sample{
		F:      predictor.Features{ISizes: make([]float64, 5), PSizes: make([]float64, 5)},
		Labels: []float64{1, 0}, // two labels for one head
	}
	if _, err := tr.Step([]predictor.Sample{bad}); err == nil {
		t.Error("label-count mismatch must error")
	}
}

func TestAllTasksAggregation(t *testing.T) {
	pcfg := predictor.DefaultConfig()
	pcfg.Tasks = 2
	p, err := predictor.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGate(Config{Streams: 4, Budget: 8, Predictor: p, TaskIndex: AllTasks})
	if err != nil {
		t.Fatal(err)
	}
	streams := mkStreams(4, 3)
	for r := 0; r < 30; r++ {
		pkts := make([]*codec.Packet, 4)
		for i, st := range streams {
			pkts[i] = st.Next()
		}
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatal(err)
		}
		// The aggregated confidence must be at least either head's value.
		if err := g.Feedback(sel, make([]bool, len(sel))); err != nil {
			t.Fatal(err)
		}
	}
	if g.Stats().Decoded == 0 {
		t.Error("multi-task gate decoded nothing")
	}
	// Online learning cannot target all heads at once.
	if _, err := NewGate(Config{Streams: 2, Budget: 5, Predictor: p, TaskIndex: AllTasks, OnlineLR: 0.01}); err == nil {
		t.Error("AllTasks + online learning must error")
	}
}
