// Package core implements the paper's primary contribution: the
// multi-stream packet gating algorithm (Alg. 1). Each round the Gate takes
// one parsed packet per stream, scores it with the temporal estimator (§5.1)
// and the contextual predictor (§5.2), selects a budget-feasible subset with
// the combinatorial optimizer (§5.3), and later consumes the redundancy
// feedback of the decoded packets to update its state.
package core

import (
	"fmt"
	"math"

	"packetgame/internal/bandit"
	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/knapsack"
	"packetgame/internal/predictor"
	"packetgame/internal/trace"
)

// Config parameterizes a Gate.
type Config struct {
	// Streams is the number of concurrent streams m.
	Streams int
	// Window is the temporal window length w (default 5).
	Window int
	// Budget is the per-round decoding budget B in decode units. A budget
	// below Costs.I starves every stream: no keyframe is ever affordable,
	// and predicted frames owe their reference chains on top.
	Budget float64
	// Costs is the decode cost model (default decode.DefaultCosts).
	Costs decode.CostModel
	// Predictor is the trained contextual predictor. Nil yields the
	// "Temporal" ablation: confidence comes from the estimator alone.
	Predictor *predictor.Predictor
	// TaskIndex selects the predictor output head (multi-task models).
	// Set to AllTasks to gate on the maximum confidence across heads: a
	// packet is worth decoding if any of the co-deployed models needs it
	// (the smart-city multi-model deployment of §5.2).
	TaskIndex int
	// UseTemporal enables the temporal estimator. Disabling it (with a
	// predictor present) yields the "Contextual" ablation of Table 3.
	UseTemporal bool
	// Explore adds the UCB exploration bonus to the final confidence,
	// preserving the regret guarantee (§5.4). Defaults to the value of
	// UseTemporal.
	Explore *bool
	// Selector is the combinatorial optimizer (default knapsack.Greedy).
	Selector knapsack.Selector
	// DependencyAware folds undecoded reference chains into packet costs
	// (Fig 6). Disabling it is a design ablation: costs become the bare
	// per-picture-type costs. Default true.
	DependencyAware *bool
	// OnlineLR enables online fine-tuning of the predictor from live
	// redundancy feedback (the paper's stated future work, §5.2): every
	// OnlineBatch feedback samples trigger one RMSprop step at this
	// learning rate. 0 disables (the paper's frozen-weights deployment).
	OnlineLR float64
	// OnlineBatch is the minibatch size for online updates (default 64).
	OnlineBatch int
	// Trace, when non-nil, records every round's confidences, costs, and
	// decisions as a JSON Lines audit trail (written at Feedback time,
	// once redundancy outcomes are known).
	Trace *trace.Writer
}

func (c Config) withDefaults() (Config, error) {
	if c.Streams <= 0 {
		return c, fmt.Errorf("core: Streams must be positive, got %d", c.Streams)
	}
	if c.Budget <= 0 {
		return c, fmt.Errorf("core: Budget must be positive, got %v", c.Budget)
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Costs == (decode.CostModel{}) {
		c.Costs = decode.DefaultCosts
	}
	if c.Selector == nil {
		c.Selector = &knapsack.Greedy{}
	}
	if c.Predictor == nil && !c.UseTemporal {
		return c, fmt.Errorf("core: need a predictor, the temporal estimator, or both")
	}
	if c.Explore == nil {
		e := c.UseTemporal
		c.Explore = &e
	}
	if c.DependencyAware == nil {
		d := true
		c.DependencyAware = &d
	}
	if c.OnlineLR > 0 && c.Predictor == nil {
		return c, fmt.Errorf("core: online learning requires a predictor")
	}
	if c.OnlineBatch == 0 {
		c.OnlineBatch = 64
	}
	if c.Predictor != nil {
		pc := c.Predictor.Config()
		if pc.Window != c.Window {
			return c, fmt.Errorf("core: predictor window %d != gate window %d", pc.Window, c.Window)
		}
		if c.TaskIndex != AllTasks && (c.TaskIndex < 0 || c.TaskIndex >= pc.Tasks) {
			return c, fmt.Errorf("core: task index %d out of range for %d-task predictor", c.TaskIndex, pc.Tasks)
		}
		if c.TaskIndex == AllTasks && c.OnlineLR > 0 {
			return c, fmt.Errorf("core: online learning needs a concrete TaskIndex, not AllTasks")
		}
	}
	return c, nil
}

// AllTasks is a TaskIndex sentinel: aggregate confidence as the maximum
// over all predictor heads.
const AllTasks = -1

// Stats aggregates a Gate's lifetime counters.
type Stats struct {
	Rounds    int64
	Packets   int64 // non-idle packets observed
	Decoded   int64 // packets selected for decoding
	CostSpent float64
}

// Gate is the PacketGame plug-in between parser and decoder.
type Gate struct {
	cfg     Config
	est     *bandit.TemporalEstimator
	windows []*predictor.Window
	tracker *decode.MultiTracker

	// Round state.
	pending  bool
	selected []bool

	// Scratch buffers.
	items  []knapsack.Item
	feats  []predictor.Features
	active []int // stream index per feats entry
	conf   []float64
	reward []float64

	// Pending trace record (Trace != nil).
	pendingTrace *trace.Round

	// Online learning (OnlineLR > 0).
	trainer *predictor.Trainer
	buffer  []predictor.Sample
	// lastFeats maps stream index to the features used for this round's
	// decision, retained (cloned) only when online learning is on.
	lastFeats map[int]predictor.Features

	stats Stats
}

// NewGate builds a gate from the config.
func NewGate(cfg Config) (*Gate, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	g := &Gate{
		cfg:      cfg,
		windows:  make([]*predictor.Window, cfg.Streams),
		tracker:  decode.NewMultiTracker(cfg.Streams, cfg.Costs),
		selected: make([]bool, cfg.Streams),
		items:    make([]knapsack.Item, cfg.Streams),
		conf:     make([]float64, cfg.Streams),
		reward:   make([]float64, cfg.Streams),
	}
	if cfg.UseTemporal || *cfg.Explore {
		g.est, err = bandit.NewTemporalEstimator(cfg.Streams, cfg.Window)
		if err != nil {
			return nil, err
		}
	}
	for i := range g.windows {
		g.windows[i] = predictor.NewWindow(cfg.Window)
	}
	if cfg.OnlineLR > 0 {
		g.trainer = predictor.NewTrainer(cfg.Predictor, cfg.OnlineLR)
		g.lastFeats = make(map[int]predictor.Features)
	}
	return g, nil
}

// Config returns the gate's effective configuration.
func (g *Gate) Config() Config { return g.cfg }

// Stats returns the lifetime counters.
func (g *Gate) Stats() Stats { return g.stats }

// Decide runs one gating round. pkts holds one parsed packet per stream
// (nil for streams with no packet this round) and must have length
// Config.Streams. It returns the indices of the streams whose packets should
// be decoded. Feedback must be called before the next Decide.
func (g *Gate) Decide(pkts []*codec.Packet) ([]int, error) {
	if g.pending {
		return nil, fmt.Errorf("core: Decide called before Feedback for the previous round")
	}
	if len(pkts) != g.cfg.Streams {
		return nil, fmt.Errorf("core: %d packets for %d streams", len(pkts), g.cfg.Streams)
	}

	// 1. Fold packet metadata into the per-stream feature windows.
	g.feats = g.feats[:0]
	g.active = g.active[:0]
	for i, p := range pkts {
		if p == nil {
			continue
		}
		g.windows[i].Push(p)
		g.stats.Packets++
		g.active = append(g.active, i)
	}

	// 2. Confidence per stream: contextual predictor fused with the
	// temporal estimate, plus the exploration bonus (Alg. 1 line 5-6).
	for i := range g.conf {
		g.conf[i] = 0
	}
	if g.cfg.Predictor != nil {
		for _, i := range g.active {
			temporal := 0.0
			if g.cfg.UseTemporal {
				temporal = g.est.Exploit(i)
			}
			g.feats = append(g.feats, g.windows[i].Features(temporal))
		}
		if len(g.feats) > 0 {
			preds := g.cfg.Predictor.PredictBatch(g.feats)
			for k, i := range g.active {
				if g.cfg.TaskIndex == AllTasks {
					best := 0.0
					for _, v := range preds[k] {
						if v > best {
							best = v
						}
					}
					g.conf[i] = best
				} else {
					g.conf[i] = preds[k][g.cfg.TaskIndex]
				}
			}
		}
		if g.trainer != nil {
			clear(g.lastFeats)
			for k, i := range g.active {
				g.lastFeats[i] = g.feats[k].Clone()
			}
		}
	} else {
		for _, i := range g.active {
			g.conf[i] = g.est.Exploit(i)
		}
	}
	if *g.cfg.Explore {
		for _, i := range g.active {
			g.conf[i] += g.est.Bonus(i)
		}
	}

	// 3. Dependency-inclusive costs (Fig 6).
	var costs []float64
	var err error
	if *g.cfg.DependencyAware {
		costs, err = g.tracker.Costs(pkts)
		if err != nil {
			return nil, err
		}
	} else {
		costs = make([]float64, len(pkts))
		for i, p := range pkts {
			if p != nil {
				costs[i] = g.cfg.Costs.Of(p.Type)
			}
		}
	}

	// 4. Combinatorial selection under the budget.
	for i := range g.items {
		g.items[i] = knapsack.Item{}
		if pkts[i] != nil {
			g.items[i] = knapsack.Item{Value: g.conf[i], Cost: costs[i]}
		}
	}
	sel := g.cfg.Selector.Select(g.items, g.cfg.Budget)

	// 5. Commit decisions to the dependency tracker.
	for i := range g.selected {
		g.selected[i] = false
	}
	for _, i := range sel {
		g.selected[i] = true
		g.stats.Decoded++
		g.stats.CostSpent += costs[i]
	}
	if err := g.tracker.Commit(pkts, g.selected); err != nil {
		return nil, err
	}
	if g.cfg.Trace != nil {
		rec := &trace.Round{T: g.stats.Rounds, Budget: g.cfg.Budget}
		for _, i := range g.active {
			d := trace.Decision{
				Stream:     i,
				Type:       pkts[i].Type.String(),
				Size:       pkts[i].Size,
				Confidence: g.conf[i],
				Cost:       costs[i],
				Selected:   g.selected[i],
			}
			if g.selected[i] {
				rec.Spent += costs[i]
			}
			rec.Decisions = append(rec.Decisions, d)
		}
		g.pendingTrace = rec
	}
	g.stats.Rounds++
	g.pending = true
	return sel, nil
}

// Confidence returns the last computed confidence for stream i (diagnostic).
func (g *Gate) Confidence(i int) float64 { return g.conf[i] }

// Feedback closes the round opened by Decide: necessary[i] is the redundancy
// feedback for stream selected[i] (aligned with Decide's return value).
func (g *Gate) Feedback(selected []int, necessary []bool) error {
	if !g.pending {
		return fmt.Errorf("core: Feedback without a pending round")
	}
	if len(selected) != len(necessary) {
		return fmt.Errorf("core: %d selections with %d feedback values", len(selected), len(necessary))
	}
	g.pending = false
	if g.est == nil {
		return nil
	}
	for i := range g.reward {
		g.reward[i] = 0
	}
	for k, i := range selected {
		if i < 0 || i >= g.cfg.Streams {
			return fmt.Errorf("core: feedback for invalid stream %d", i)
		}
		if necessary[k] {
			g.reward[i] = 1
		}
		if g.trainer != nil {
			if f, ok := g.lastFeats[i]; ok {
				labels := make([]float64, g.cfg.Predictor.Config().Tasks)
				for t := range labels {
					labels[t] = math.NaN() // only this gate's head gets a label
				}
				labels[g.cfg.TaskIndex] = g.reward[i]
				g.buffer = append(g.buffer, predictor.Sample{F: f, Labels: labels})
			}
		}
	}
	if g.trainer != nil && len(g.buffer) >= g.cfg.OnlineBatch {
		if _, err := g.trainer.Step(g.buffer); err != nil {
			return err
		}
		g.buffer = g.buffer[:0]
	}
	if g.pendingTrace != nil {
		nec := map[int]bool{}
		for k, i := range selected {
			nec[i] = necessary[k]
		}
		for d := range g.pendingTrace.Decisions {
			if g.pendingTrace.Decisions[d].Selected {
				g.pendingTrace.Decisions[d].Necessary = nec[g.pendingTrace.Decisions[d].Stream]
			}
		}
		if err := g.cfg.Trace.Write(*g.pendingTrace); err != nil {
			return err
		}
		g.pendingTrace = nil
	}
	return g.est.Push(g.selected, g.reward)
}
