// Package core implements the paper's primary contribution: the
// multi-stream packet gating algorithm (Alg. 1). Each round the Gate takes
// one parsed packet per stream, scores it with the temporal estimator (§5.1)
// and the contextual predictor (§5.2), selects a budget-feasible subset with
// the combinatorial optimizer (§5.3), and later consumes the redundancy
// feedback of the decoded packets to update its state.
//
// Round cost scales with churn, not fleet size: every per-round loop walks
// the streams that delivered a packet (and, for the network forward, only
// the subset whose feature windows actually changed — the rest replay from
// the score cache), so a 100k-stream fleet where 1% of windows move per
// round pays roughly 1% of the dense recompute. Config.NoIncremental turns
// all of it off and recomputes everything every round; the two paths are
// bit-identical, which the incremental property tests enforce.
package core

import (
	"fmt"
	"math"
	"sync"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/knapsack"
	"packetgame/internal/metrics"
	"packetgame/internal/overload"
	"packetgame/internal/predictor"
	"packetgame/internal/trace"
)

// Config parameterizes a Gate.
type Config struct {
	// Streams is the number of concurrent streams m.
	Streams int
	// Window is the temporal window length w (default 5).
	Window int
	// Budget is the per-round decoding budget B in decode units. A budget
	// below Costs.I starves every stream: no keyframe is ever affordable,
	// and predicted frames owe their reference chains on top.
	Budget float64
	// Costs is the decode cost model (default decode.DefaultCosts).
	Costs decode.CostModel
	// Predictor is the trained contextual predictor. Nil yields the
	// "Temporal" ablation: confidence comes from the estimator alone.
	Predictor *predictor.Predictor
	// TaskIndex selects the predictor output head (multi-task models).
	// Set to AllTasks to gate on the maximum confidence across heads: a
	// packet is worth decoding if any of the co-deployed models needs it
	// (the smart-city multi-model deployment of §5.2).
	TaskIndex int
	// UseTemporal enables the temporal estimator. Disabling it (with a
	// predictor present) yields the "Contextual" ablation of Table 3.
	UseTemporal bool
	// Explore adds the UCB exploration bonus to the final confidence,
	// preserving the regret guarantee (§5.4). Defaults to the value of
	// UseTemporal.
	Explore *bool
	// Selector is the combinatorial optimizer (default knapsack.Greedy).
	// Supplying a custom Selector routes every round through the dense
	// per-round solve (the incremental ranked structure assumes the
	// greedy/tiered semantics it replicates).
	Selector knapsack.Selector
	// DependencyAware folds undecoded reference chains into packet costs
	// (Fig 6). Disabling it is a design ablation: costs become the bare
	// per-picture-type costs. Default true.
	DependencyAware *bool
	// OnlineLR enables online fine-tuning of the predictor from live
	// redundancy feedback (the paper's stated future work, §5.2): every
	// OnlineBatch feedback samples trigger one RMSprop step at this
	// learning rate. 0 disables (the paper's frozen-weights deployment).
	OnlineLR float64
	// OnlineBatch is the minibatch size for online updates (default 64).
	OnlineBatch int
	// Shards partitions the per-stream gate state (temporal counters,
	// predictor feature store, dependency trackers) into independently
	// locked shards keyed by stream ID, so redundancy feedback from
	// completed rounds lands without serializing against admission of new
	// rounds. Purely a concurrency knob: decisions are identical for any
	// shard count. Default min(8, Streams).
	Shards int
	// MaxPending is the number of decided-but-unacked rounds the gate
	// tolerates before Decide fails. The default 1 enforces the paper's
	// strict Decide/Feedback alternation; the pipelined engine raises it
	// to its in-flight round bound. Feedback always acks the oldest
	// pending round, so UCB windows never observe out-of-order rewards.
	MaxPending int
	// Breaker, when non-nil, arms per-stream circuit breakers: streams
	// whose decodes keep failing (or that disappear for longer than the
	// gap threshold) are quarantined out of Decide until a half-open probe
	// succeeds, and streams with poisoned metadata windows (NaN or
	// zero-size runs) degrade from the contextual predictor to the
	// temporal-only estimate. The budget a quarantined stream would have
	// consumed flows to the healthy streams through the optimizer, which
	// preserves the Lemma-1 1−c/B bound over the healthy subset. Nil
	// keeps the fault-oblivious behavior (bit-identical decisions to
	// earlier versions).
	Breaker *BreakerConfig
	// Priorities assigns each stream an admission-control tier (0 =
	// highest, e.g. fire detection). When set it must have length Streams
	// and switches selection to the strict-priority tiered solver: low
	// tiers are shed first when the effective budget shrinks, and a
	// quarantined stream's freed budget flows to its own tier before
	// cascading down. Incompatible with a custom Selector. Nil keeps the
	// single-pool greedy solve.
	Priorities []uint8
	// Governor, when non-nil, closes the overload control loop: each
	// Decide plans against the governor's current effective budget B_eff
	// (instead of the fixed Budget) and degradation mode — full →
	// temporal-only (contextual predictor skipped) → keyframe-only (only
	// I-packets admitted) → shed (only tier-0 I-packets admitted). The
	// caller feeds observed round latencies into the governor; streams
	// refused admission by a brownout mode are simply not selected, which
	// the temporal estimator already treats as "no evidence" — load
	// shedding never fabricates necessity labels.
	Governor *overload.Governor
	// Overload, when non-nil, receives admission-control counters (packets
	// shed by brownout modes, feedback slots settled as deferred).
	Overload *metrics.OverloadStats
	// Planner, when non-nil, overrides Governor as the source of the
	// per-round effective budget and degradation mode. Replay audits use
	// an overload.Scripted planner here to pin each round to the recorded
	// run's overload state instead of re-running the control loop.
	Planner overload.Planner
	// Trace, when non-nil, records every round's confidences, costs, and
	// decisions as an audit trail (written at Feedback time, once
	// redundancy outcomes are known). *trace.Writer streams JSON Lines; a
	// capture recorder embeds the same records next to the packets.
	Trace trace.Sink
	// NoFastPath disables the compiled batched inference fast path and
	// scores streams through the reference float64 forwardBatch instead.
	// Decisions are equivalent up to float32 rounding on exact confidence
	// ties; the knob exists for A/B benchmarking and debugging.
	NoFastPath bool
	// NoIncremental disables the churn-scaled machinery: every round
	// re-runs the predictor forward for every scored stream (no score
	// cache) and solves the knapsack from a dense per-round item build and
	// sort, exactly like the pre-incremental gate. Decisions and traces
	// are bit-identical either way — the incremental property tests use
	// this knob as their oracle — so the only reason to set it is A/B
	// benchmarking the incremental machinery itself.
	NoIncremental bool

	// customSelector records whether the caller supplied Selector (set by
	// withDefaults); such gates keep the dense per-round solve.
	customSelector bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Streams <= 0 {
		return c, fmt.Errorf("core: Streams must be positive, got %d", c.Streams)
	}
	if c.Budget <= 0 {
		return c, fmt.Errorf("core: Budget must be positive, got %v", c.Budget)
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Costs == (decode.CostModel{}) {
		c.Costs = decode.DefaultCosts
	}
	if len(c.Priorities) != 0 {
		if len(c.Priorities) != c.Streams {
			return c, fmt.Errorf("core: %d priorities for %d streams", len(c.Priorities), c.Streams)
		}
		if c.Selector != nil {
			return c, fmt.Errorf("core: Priorities require the tiered solver and cannot combine with a custom Selector")
		}
	}
	c.customSelector = c.Selector != nil
	if c.Selector == nil {
		c.Selector = &knapsack.Greedy{}
	}
	if c.Predictor == nil && !c.UseTemporal {
		return c, fmt.Errorf("core: need a predictor, the temporal estimator, or both")
	}
	if c.Explore == nil {
		e := c.UseTemporal
		c.Explore = &e
	}
	if c.DependencyAware == nil {
		d := true
		c.DependencyAware = &d
	}
	if c.OnlineLR > 0 && c.Predictor == nil {
		return c, fmt.Errorf("core: online learning requires a predictor")
	}
	if c.OnlineBatch == 0 {
		c.OnlineBatch = 64
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("core: Shards must be non-negative, got %d", c.Shards)
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Shards > c.Streams {
		c.Shards = c.Streams
	}
	if c.MaxPending < 0 {
		return c, fmt.Errorf("core: MaxPending must be non-negative, got %d", c.MaxPending)
	}
	if c.MaxPending == 0 {
		c.MaxPending = 1
	}
	if c.Predictor != nil {
		pc := c.Predictor.Config()
		if pc.Window != c.Window {
			return c, fmt.Errorf("core: predictor window %d != gate window %d", pc.Window, c.Window)
		}
		if c.TaskIndex != AllTasks && (c.TaskIndex < 0 || c.TaskIndex >= pc.Tasks) {
			return c, fmt.Errorf("core: task index %d out of range for %d-task predictor", c.TaskIndex, pc.Tasks)
		}
		if c.TaskIndex == AllTasks && c.OnlineLR > 0 {
			return c, fmt.Errorf("core: online learning needs a concrete TaskIndex, not AllTasks")
		}
	}
	return c, nil
}

// AllTasks is a TaskIndex sentinel: aggregate confidence as the maximum
// over all predictor heads.
const AllTasks = -1

// Stats aggregates a Gate's lifetime counters.
type Stats struct {
	Rounds    int64
	Packets   int64 // non-idle packets observed
	Decoded   int64 // packets selected for decoding
	CostSpent float64
}

// IncrementalStats counts the scoring work the churn-scaled Decide path
// actually performed. Scored is the stream-rounds that needed a confidence
// (admitted, non-quarantined); every one was served either by a network
// forward (Forwards) or by the score cache (CacheHits), so
// Scored = Forwards + CacheHits + temporal-only degradations.
type IncrementalStats struct {
	Scored    int64
	Forwards  int64
	CacheHits int64
}

// pendingRound is one decided round awaiting its redundancy feedback. Its
// buffers come from the gate's free lists and return there when the round
// retires, so steady-state rounds recycle rather than allocate.
type pendingRound struct {
	sel      []int  // decode set, as returned by Decide
	selBools []bool // per-stream selection flags (all-false outside sel)
	trace    *trace.Round
	// feats maps stream index to the features used for the decision,
	// retained (cloned into slab) only when online learning is on.
	feats map[int]predictor.Features
	slab  *predictor.Slab
}

// Gate is the PacketGame plug-in between parser and decoder.
//
// Concurrency: the Gate is safe for concurrent use. Decide calls serialize
// against each other, Feedback calls serialize against each other, and a
// Decide may run concurrently with a Feedback — the per-stream state they
// share (the temporal estimator counters) is sharded behind per-shard locks
// (Config.Shards), so feedback lands without stalling admission. Feedback
// acks pending rounds strictly in decision order (FIFO), which keeps the
// UCB reward windows ordered even when rounds complete out of order
// downstream. Up to Config.MaxPending rounds may be awaiting feedback.
type Gate struct {
	cfg Config

	// decideMu serializes Decide and guards the decision scratch buffers,
	// the predictor forward pass, and the online trainer's weight updates.
	decideMu sync.Mutex
	// ackMu serializes Feedback and guards the reward scratch.
	ackMu sync.Mutex
	// pendMu guards the pending-round FIFO, lifetime stats, the trace
	// writer, and the online-sample buffer. Innermost lock.
	pendMu sync.Mutex

	shards *streamShards

	// breakers is the per-stream circuit-breaker set (nil when disabled).
	// It carries its own lock: Decide advances it under decideMu while
	// FeedbackExt folds outcomes in under ackMu.
	breakers *breakerSet

	// pending is a ring FIFO: pendHead indexes the oldest unacked round,
	// the tail is appended to. Retired rounds recycle their buffers through
	// the free lists below (all under pendMu). freeBool buffers keep the
	// all-false invariant while on the free list.
	pending    []pendingRound
	pendHead   int
	maxPending int
	freeSel    [][]int
	freeBool   [][]bool
	freeFeats  []map[int]predictor.Features

	// Decision scratch (decideMu). The per-stream arrays (conf, costs,
	// temporal, bonus, degraded, shed, selected) are m-length but only the
	// entries of streams the round touches are written; `touched` remembers
	// them so the next round resets exactly those — every other entry is
	// still at its zero value, making the reset equivalent to the dense
	// full-array zeroing without the O(m) walk.
	items      []knapsack.Item
	feats      []predictor.Features
	active     []int   // admitted streams, ascending (scored this round)
	fresh      []int   // active subset re-scored through the network
	nonIdleBuf []int32 // scanned non-idle list when the caller supplies none
	sweep      []int32 // non-quarantined non-idle (windows advance)
	touched    []int32
	shardIDs   [][]int32 // per-shard grouping scratch
	conf       []float64
	costs      []float64
	temporal   []float64
	bonus      []float64
	predOut    []float64 // [len(fresh) × tasks] confidences, row-major
	selOut     []int     // SelectAppend scratch
	selected   []bool    // all-false between rounds
	degraded   []bool    // poisoned-window streams scored temporal-only this round
	shed       []bool    // streams refused admission by the brownout mode this round
	tasks      int       // predictor head count (0 without a predictor)
	selApp     knapsack.SelectAppender // non-nil when Selector supports append
	selSparse  knapsack.SparseSelector // non-nil when Selector supports sparse candidates
	cands      []knapsack.Candidate    // sparse candidate scratch (active streams only)
	pktAt      []*codec.Packet         // sparse-round scatter scratch (m-length, nil between rounds)

	// Incremental machinery. ranked is the persistent score-ordered
	// candidate structure (nil with NoIncremental or a custom Selector);
	// the cache arrays memoize the network confidence per stream, keyed by
	// (feature epoch, temporal input, weights version). inc gates cache
	// use: it is false when NoIncremental or without a predictor.
	ranked       *knapsack.Ranked
	inc          bool
	cacheConf    []float64
	cacheEpoch   []uint64
	cacheTemp    []float64
	cachePredVer []uint64
	cacheValid   []bool
	incStats     IncrementalStats

	// Tiered admission control (Config.Priorities). tiers is the clamped
	// per-stream tier table, fixed at construction.
	tiered   *knapsack.Tiered
	tiers    []uint8
	numTiers int

	// warmTarget, when allocated (first fresh import), marks streams
	// adopted without transferred state: entry i > 0 degrades stream i to
	// the temporal-only estimate until its feature store reaches that many
	// pushes (decideMu).
	warmTarget []int64

	// Feedback scratch (ackMu). reward is m-length, all-zero between
	// rounds: entries are set for a feedback's selections and cleared
	// again after the estimator push lists are built.
	reward []float64

	// Online learning (OnlineLR > 0). Weight updates take decideMu; the
	// slab backs buffered samples and resets after every trainer step.
	trainer   *predictor.Trainer
	buffer    []predictor.Sample
	trainSlab *predictor.Slab

	stats Stats
}

// NewGate builds a gate from the config.
func NewGate(cfg Config) (*Gate, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	needEst := cfg.UseTemporal || *cfg.Explore
	shards, err := newStreamShards(cfg.Streams, cfg.Shards, cfg.Window, needEst, cfg.Costs)
	if err != nil {
		return nil, err
	}
	g := &Gate{
		cfg:        cfg,
		shards:     shards,
		maxPending: cfg.MaxPending,
		items:      make([]knapsack.Item, cfg.Streams),
		conf:       make([]float64, cfg.Streams),
		costs:      make([]float64, cfg.Streams),
		temporal:   make([]float64, cfg.Streams),
		bonus:      make([]float64, cfg.Streams),
		selected:   make([]bool, cfg.Streams),
		degraded:   make([]bool, cfg.Streams),
		shed:       make([]bool, cfg.Streams),
		reward:     make([]float64, cfg.Streams),
		shardIDs:   make([][]int32, len(shards.shards)),
	}
	if len(cfg.Priorities) != 0 {
		g.numTiers = 1
		for _, t := range cfg.Priorities {
			if int(t)+1 > g.numTiers {
				g.numTiers = int(t) + 1
			}
		}
		g.tiers = append([]uint8(nil), cfg.Priorities...)
		g.tiered = &knapsack.Tiered{}
	}
	if cfg.Predictor != nil {
		g.tasks = cfg.Predictor.Config().Tasks
		if !cfg.NoFastPath {
			if err := cfg.Predictor.Compile(); err != nil {
				return nil, fmt.Errorf("core: compiling inference fast path: %w", err)
			}
		}
		g.inc = !cfg.NoIncremental
		if g.inc {
			g.cacheConf = make([]float64, cfg.Streams)
			g.cacheEpoch = make([]uint64, cfg.Streams)
			g.cacheTemp = make([]float64, cfg.Streams)
			g.cachePredVer = make([]uint64, cfg.Streams)
			g.cacheValid = make([]bool, cfg.Streams)
		}
	}
	if !cfg.NoIncremental && !cfg.customSelector {
		g.ranked = knapsack.NewRanked(cfg.Streams)
	}
	g.selApp, _ = cfg.Selector.(knapsack.SelectAppender)
	g.selSparse, _ = cfg.Selector.(knapsack.SparseSelector)
	if cfg.OnlineLR > 0 {
		g.trainer = predictor.NewTrainer(cfg.Predictor, cfg.OnlineLR)
		g.trainSlab = &predictor.Slab{}
	}
	if cfg.Breaker != nil {
		g.breakers = newBreakerSet(cfg.Streams, *cfg.Breaker)
	}
	return g, nil
}

// Breakers returns every stream's circuit-breaker snapshot, or nil when
// Config.Breaker is unset.
func (g *Gate) Breakers() []BreakerSnapshot {
	if g.breakers == nil {
		return nil
	}
	return g.breakers.snapshots()
}

// Quarantined returns the number of streams whose breaker is currently open.
func (g *Gate) Quarantined() int {
	n := 0
	for _, b := range g.Breakers() {
		if b.State == BreakerOpen {
			n++
		}
	}
	return n
}

// Config returns the gate's effective configuration.
func (g *Gate) Config() Config { return g.cfg }

// Stats returns the lifetime counters.
func (g *Gate) Stats() Stats {
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	return g.stats
}

// Incremental returns the churn-scaled path's lifetime work counters.
func (g *Gate) Incremental() IncrementalStats {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	return g.incStats
}

// Pending returns the number of decided rounds still awaiting feedback.
func (g *Gate) Pending() int {
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	return len(g.pending) - g.pendHead
}

// SetMaxPending raises (or lowers, min 1) the decided-but-unacked round
// bound. The pipelined engine calls this with its MaxInFlight depth.
func (g *Gate) SetMaxPending(k int) {
	if k < 1 {
		k = 1
	}
	g.pendMu.Lock()
	g.maxPending = k
	g.pendMu.Unlock()
}

// Decide runs one gating round. pkts holds one parsed packet per stream
// (nil for streams with no packet this round) and must have length
// Config.Streams. It returns the indices of the streams whose packets should
// be decoded. At most MaxPending rounds may be outstanding: with the default
// of 1, Feedback must be called before the next Decide.
func (g *Gate) Decide(pkts []*codec.Packet) ([]int, error) {
	return g.DecideAppend(pkts, nil)
}

// DecideAppend is Decide appending the selection into dst (which may be
// nil): callers that recycle dst across rounds pay zero allocations for the
// result. On error the returned slice is nil.
func (g *Gate) DecideAppend(pkts []*codec.Packet, dst []int) ([]int, error) {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	if err := g.decideLocked(pkts, nil); err != nil {
		return nil, err
	}
	return append(dst, g.selOut...), nil
}

// DecideRoundAppend is DecideAppend for callers that already know which
// streams delivered a packet this round: nonIdle must list exactly the
// indices i with pkts[i] != nil, strictly ascending. Producers that assemble
// the round (the pipelined engine, replay) build this list for free while
// placing packets, and handing it over lets the gate skip its own O(m) scan
// — with a small fleet slice active inside a large configured fleet, the
// whole round then costs O(non-idle), not O(m). The list is only read for
// the duration of the call.
func (g *Gate) DecideRoundAppend(pkts []*codec.Packet, nonIdle []int32, dst []int) ([]int, error) {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	last := int32(-1)
	for _, i := range nonIdle {
		if i <= last {
			return nil, fmt.Errorf("core: nonIdle must be strictly ascending (%d after %d)", i, last)
		}
		if int(i) >= len(pkts) || pkts[i] == nil {
			return nil, fmt.Errorf("core: nonIdle lists stream %d, which has no packet", i)
		}
		last = i
	}
	if err := g.decideLocked(pkts, nonIdle); err != nil {
		return nil, err
	}
	return append(dst, g.selOut...), nil
}

// DecideSparseAppend is DecideRoundAppend over a sparse round: only the
// streams in r exist this round. The round's packets are scattered into a
// persistent m-length array (so the scoring core keeps its by-stream
// indexing) and un-scattered afterwards — both O(active) — which makes the
// whole call O(active) for a mostly-idle fleet while remaining bit-identical
// to handing the dense equivalent to Decide.
func (g *Gate) DecideSparseAppend(r *codec.Round, dst []int) ([]int, error) {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	if r.M != g.cfg.Streams {
		return nil, fmt.Errorf("core: sparse round width %d for %d streams", r.M, g.cfg.Streams)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if g.pktAt == nil {
		g.pktAt = make([]*codec.Packet, g.cfg.Streams)
	}
	r.Scatter(g.pktAt)
	err := g.decideLocked(g.pktAt, r.IDs)
	r.ClearScatter(g.pktAt)
	if err != nil {
		return nil, err
	}
	return append(dst, g.selOut...), nil
}

// groupByShard splits ids (ascending stream IDs) into g.shardIDs by shard.
func (g *Gate) groupByShard(ids []int32) {
	s := int32(len(g.shards.shards))
	for k := range g.shardIDs {
		g.shardIDs[k] = g.shardIDs[k][:0]
	}
	for _, i := range ids {
		g.shardIDs[i%s] = append(g.shardIDs[i%s], i)
	}
}

func (g *Gate) decideLocked(pkts []*codec.Packet, nonIdle []int32) error {
	if len(pkts) != g.cfg.Streams {
		return fmt.Errorf("core: %d packets for %d streams", len(pkts), g.cfg.Streams)
	}
	g.pendMu.Lock()
	if n := len(g.pending) - g.pendHead; n >= g.maxPending {
		g.pendMu.Unlock()
		return fmt.Errorf("core: Decide called with %d unacked rounds (MaxPending %d): Feedback must close the oldest round first", n, g.maxPending)
	}
	g.pendMu.Unlock()

	// 0. Plan against the overload governor (when armed): the round runs
	// with the governor's effective budget and degradation mode instead of
	// the fixed nominal budget.
	bEff := g.cfg.Budget
	mode := overload.ModeFull
	if g.cfg.Planner != nil {
		bEff, mode = g.cfg.Planner.Plan()
	} else if g.cfg.Governor != nil {
		bEff, mode = g.cfg.Governor.Plan()
	}

	if nonIdle == nil {
		g.nonIdleBuf = g.nonIdleBuf[:0]
		for i, p := range pkts {
			if p != nil {
				g.nonIdleBuf = append(g.nonIdleBuf, int32(i))
			}
		}
		nonIdle = g.nonIdleBuf
	}

	// Reset the per-stream scratch entries the previous round wrote; all
	// other entries still hold their zero values.
	for _, i := range g.touched {
		g.conf[i] = 0
		g.costs[i] = 0
		g.temporal[i] = 0
		g.bonus[i] = 0
		g.degraded[i] = false
		g.shed[i] = false
	}
	g.touched = g.touched[:0]

	// 1. Advance the circuit breakers (when armed) and fold packet
	// metadata into the per-stream feature store, reading the sharded
	// per-stream state (temporal estimate, exploration bonus,
	// dependency-inclusive cost) one shard lock at a time. Quarantined
	// streams are observed but excluded: their windows stay frozen
	// (untrusted metadata), their packets never enter the selection, and
	// the budget they would have consumed flows to the healthy streams.
	// Brownout modes shed packets at admission here too — shed streams
	// still push their (trusted) windows so context stays warm for
	// recovery, but they are excluded from scoring and selection.
	var quar []bool
	if g.breakers != nil {
		quar = g.breakers.beginRoundSparse(nonIdle)
	}
	g.sweep = g.sweep[:0]
	g.active = g.active[:0]
	shedCount := 0
	for _, i32 := range nonIdle {
		i := int(i32)
		if quar != nil && quar[i] {
			continue
		}
		g.sweep = append(g.sweep, i32)
		g.touched = append(g.touched, i32)
		if !g.admit(mode, i, pkts[i]) {
			g.shed[i] = true
			shedCount++
			continue
		}
		g.active = append(g.active, i)
	}
	if shedCount > 0 {
		g.cfg.Overload.AddShed(int64(shedCount))
	}
	numShards := len(g.shards.shards)
	depAware := *g.cfg.DependencyAware
	g.groupByShard(g.sweep)
	for k, sh := range g.shards.shards {
		lst := g.shardIDs[k]
		if len(lst) == 0 {
			continue
		}
		sh.mu.Lock()
		for _, i32 := range lst {
			i := int(i32)
			li := i / numShards
			p := pkts[i]
			sh.store.Push(li, p)
			if sh.est != nil {
				g.temporal[i] = sh.est.Exploit(li)
				g.bonus[i] = sh.est.Bonus(li)
			}
			if depAware {
				g.costs[i] = sh.trackers[li].Cost(p)
			} else {
				g.costs[i] = g.cfg.Costs.Of(p.Type)
			}
		}
		sh.mu.Unlock()
	}

	// 2. Confidence per stream: contextual predictor fused with the
	// temporal estimate, plus the exploration bonus (Alg. 1 line 5-6).
	// Streams whose score-cache key still matches — feature epoch,
	// temporal input, and predictor weights version all unchanged — reuse
	// their cached network confidence; only the rest (`fresh`) run through
	// the compiled batched forward, whose kernels are row-independent, so
	// the partial batch is bit-identical to scoring everyone. Brownout
	// modes below full skip the predictor entirely — the temporal-only
	// rung is exactly the poisoned-window degradation applied fleet-wide,
	// and the deeper rungs inherit it — which also suspends
	// online-training retention (no predictor features were used, so
	// there is nothing truthful to train on).
	var roundFeats map[int]predictor.Features
	var roundSlab *predictor.Slab
	if g.cfg.Predictor != nil && mode == overload.ModeFull {
		pVer := g.cfg.Predictor.Version()
		g.feats = g.feats[:0]
		g.fresh = g.fresh[:0]
		for _, i := range g.active {
			sh, li := g.shards.shardOf(i)
			// Fault-aware gates degrade streams whose metadata windows
			// are poisoned to the temporal-only estimate instead of
			// trusting the network on garbage input.
			if g.breakers != nil && sh.store.Poisoned(li) {
				g.degraded[i] = true
				g.conf[i] = g.temporal[i]
				continue
			}
			// Streams adopted without transferred state (fresh import
			// after a lost migration) stay temporal-only until their
			// feature windows refill: the predictor never scores cold
			// windows.
			if g.warmTarget != nil && g.warmTarget[i] > 0 {
				if sh.store.Pushes(li) >= g.warmTarget[i] {
					g.warmTarget[i] = 0
				} else {
					g.degraded[i] = true
					g.conf[i] = g.temporal[i]
					continue
				}
			}
			t := 0.0
			if g.cfg.UseTemporal {
				t = g.temporal[i]
			}
			if g.inc {
				if g.cacheValid[i] && g.cacheEpoch[i] == sh.store.Epoch(li) &&
					g.cacheTemp[i] == t && g.cachePredVer[i] == pVer {
					g.conf[i] = g.cacheConf[i]
					g.incStats.CacheHits++
					continue
				}
				g.cacheValid[i] = false
				g.cacheEpoch[i] = sh.store.Epoch(li)
				g.cacheTemp[i] = t
				g.cachePredVer[i] = pVer
			}
			g.fresh = append(g.fresh, i)
			g.feats = append(g.feats, sh.store.Features(li, t))
		}
		if len(g.feats) > 0 {
			if cap(g.predOut) < len(g.feats)*g.tasks {
				g.predOut = make([]float64, len(g.feats)*g.tasks)
			}
			preds := g.predOut[:len(g.feats)*g.tasks]
			if g.cfg.NoFastPath {
				for k, row := range g.cfg.Predictor.PredictBatch(g.feats) {
					copy(preds[k*g.tasks:(k+1)*g.tasks], row)
				}
			} else if err := g.cfg.Predictor.PredictInto(g.feats, preds); err != nil {
				return fmt.Errorf("core: fast-path inference: %w", err)
			}
			for k, i := range g.fresh {
				row := preds[k*g.tasks : (k+1)*g.tasks]
				var net float64
				if g.cfg.TaskIndex == AllTasks {
					for _, v := range row {
						if v > net {
							net = v
						}
					}
				} else {
					net = row[g.cfg.TaskIndex]
				}
				g.conf[i] = net
				if g.inc {
					g.cacheConf[i] = net
					g.cacheValid[i] = true
				}
			}
		}
		g.incStats.Scored += int64(len(g.active))
		g.incStats.Forwards += int64(len(g.fresh))
		if g.trainer != nil {
			roundFeats = g.grabFeatsMap(len(g.active))
			roundSlab = predictor.GetSlab()
			for _, i := range g.active {
				if g.degraded[i] {
					continue // poisoned features must not train the net
				}
				sh, li := g.shards.shardOf(i)
				t := 0.0
				if g.cfg.UseTemporal {
					t = g.temporal[i]
				}
				roundFeats[i] = roundSlab.CloneInto(sh.store.Features(li, t))
			}
		}
	} else {
		for _, i := range g.active {
			g.conf[i] = g.temporal[i]
		}
	}
	if *g.cfg.Explore {
		for _, i := range g.active {
			g.conf[i] += g.bonus[i]
		}
	}

	// 3. Combinatorial selection under the effective budget. The ranked
	// incremental structure re-ranks only the streams whose (value, cost)
	// moved since their last offer and merges them into its persistent
	// order — O(churn·log churn + selections) per round, provably the
	// same selection as the dense greedy/tiered sort (knapsack tests).
	// The dense path re-builds and re-sorts everything: it serves custom
	// Selectors and the NoIncremental oracle. Quarantined and
	// brownout-shed streams are simply never offered (dense: zero-value
	// items), so their budget flows to the healthy streams.
	if g.ranked != nil {
		nt := g.numTiers
		if nt == 0 {
			nt = 1
		}
		g.ranked.BeginRound()
		for _, i := range g.active {
			var tier uint8
			if g.tiers != nil {
				tier = g.tiers[i]
			}
			g.ranked.Offer(i, g.conf[i], g.costs[i], tier)
		}
		g.selOut = g.ranked.SelectAppend(g.selOut[:0], nt, bEff)
	} else if g.selSparse != nil && g.tiered == nil && !g.cfg.NoIncremental {
		// Sparse custom selectors (the cluster worker's remote solve) get a
		// compact candidate list instead of the O(m) dense item build: the
		// active list is ascending by stream id, so positional tie-breaks in
		// the selector match dense index tie-breaks exactly.
		g.cands = g.cands[:0]
		for _, i := range g.active {
			g.cands = append(g.cands, knapsack.Candidate{Stream: int32(i), Value: g.conf[i], Cost: g.costs[i]})
		}
		g.selOut = g.selSparse.SelectSparseAppend(g.selOut[:0], g.cands, bEff)
	} else {
		for i := range g.items {
			g.items[i] = knapsack.Item{}
			if pkts[i] != nil && (quar == nil || !quar[i]) && !g.shed[i] {
				g.items[i] = knapsack.Item{Value: g.conf[i], Cost: g.costs[i]}
			}
		}
		if g.tiered != nil {
			g.selOut = g.tiered.SelectAppend(g.selOut[:0], g.items, g.tiers, g.numTiers, bEff)
		} else if g.selApp != nil {
			g.selOut = g.selApp.SelectAppend(g.selOut[:0], g.items, bEff)
		} else {
			g.selOut = append(g.selOut[:0], g.cfg.Selector.Select(g.items, bEff)...)
		}
	}
	sel := g.selOut

	// 4. Commit decisions to the dependency trackers, shard by shard.
	// Every non-idle packet commits — including quarantined and shed ones
	// (as unselected), which keeps reference-chain debts truthful. With
	// dependency-aware costing off the trackers have no consumer (Cost
	// above took the bare per-type cost), so the whole pass is skipped —
	// an O(m) saving per round that cannot affect any decision.
	for _, i := range sel {
		g.selected[i] = true
	}
	if depAware {
		g.groupByShard(nonIdle)
		for k, sh := range g.shards.shards {
			lst := g.shardIDs[k]
			if len(lst) == 0 {
				continue
			}
			sh.mu.Lock()
			for _, i32 := range lst {
				i := int(i32)
				sh.trackers[i/numShards].Commit(pkts[i], g.selected[i])
			}
			sh.mu.Unlock()
		}
	}

	// 5. Enqueue the round on the feedback FIFO and update counters. The
	// round's retention buffers come from the free lists under pendMu.
	var spent float64
	for _, i := range sel {
		spent += g.costs[i]
	}
	g.pendMu.Lock()
	bools := g.grabBools()
	for _, i := range sel {
		bools[i] = true
	}
	pr := pendingRound{
		sel:      append(g.grabSel(), sel...),
		selBools: bools,
		feats:    roundFeats,
		slab:     roundSlab,
	}
	if g.cfg.Trace != nil {
		rec := &trace.Round{T: g.stats.Rounds, Budget: bEff, Spent: spent, Mode: mode.String()}
		for _, i := range g.active {
			rec.Decisions = append(rec.Decisions, trace.Decision{
				Stream:     i,
				Type:       pkts[i].Type.String(),
				Size:       pkts[i].Size,
				Confidence: g.conf[i],
				Cost:       g.costs[i],
				Selected:   g.selected[i],
			})
		}
		pr.trace = rec
	}
	g.stats.Rounds++
	g.stats.Packets += int64(len(nonIdle))
	g.stats.Decoded += int64(len(sel))
	g.stats.CostSpent += spent
	if g.pendHead > 0 && len(g.pending) == cap(g.pending) {
		n := copy(g.pending, g.pending[g.pendHead:])
		for j := n; j < len(g.pending); j++ {
			g.pending[j] = pendingRound{}
		}
		g.pending = g.pending[:n]
		g.pendHead = 0
	}
	g.pending = append(g.pending, pr)
	g.pendMu.Unlock()
	// Restore the all-false invariant on the selection mask.
	for _, i := range sel {
		g.selected[i] = false
	}
	return nil
}

// admit applies the degradation ladder's admission rule to one packet:
// keyframe-only admits independent pictures, shed admits only top-tier
// (priority 0) independent pictures. Without Priorities every stream is
// tier 0, so shed degenerates to keyframe-only.
func (g *Gate) admit(mode overload.Mode, i int, p *codec.Packet) bool {
	switch mode {
	case overload.ModeKeyframeOnly:
		return p.Type.Independent()
	case overload.ModeShed:
		return p.Type.Independent() && (g.tiers == nil || g.tiers[i] == 0)
	default:
		return true
	}
}

// grabSel / grabBools / grabFeatsMap recycle retired pending-round buffers.
// grabSel and grabBools require pendMu; grabFeatsMap takes it itself.
func (g *Gate) grabSel() []int {
	if n := len(g.freeSel); n > 0 {
		s := g.freeSel[n-1]
		g.freeSel = g.freeSel[:n-1]
		return s[:0]
	}
	return nil
}

// grabBools returns an all-false m-length mask: recycled buffers were
// cleared entry-by-entry when their round retired, so no O(m) zeroing
// happens here.
func (g *Gate) grabBools() []bool {
	if n := len(g.freeBool); n > 0 {
		s := g.freeBool[n-1]
		g.freeBool = g.freeBool[:n-1]
		return s
	}
	return make([]bool, g.cfg.Streams)
}

func (g *Gate) grabFeatsMap(sizeHint int) map[int]predictor.Features {
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	if n := len(g.freeFeats); n > 0 {
		m := g.freeFeats[n-1]
		g.freeFeats = g.freeFeats[:n-1]
		return m
	}
	return make(map[int]predictor.Features, sizeHint)
}

// Confidence returns the confidence computed for stream i in the most
// recent round that scored it (diagnostic).
func (g *Gate) Confidence(i int) float64 {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	return g.conf[i]
}

// Feedback acks the oldest pending round: necessary[k] is the redundancy
// feedback for stream selected[k] (aligned with that round's Decide return
// value). Rounds must be acked in decision order; the gate verifies the ack
// against the queued round so out-of-order or mismatched feedback fails fast
// instead of corrupting the UCB reward windows.
func (g *Gate) Feedback(selected []int, necessary []bool) error {
	return g.FeedbackExt(selected, necessary, nil)
}

// FeedbackExt is Feedback with per-selection decode outcomes: failed[k]
// marks a selection whose decode never produced a frame (poison pill,
// exhausted retries). Failed selections drive the circuit breakers, are
// excluded from online training (their labels are unverified), and carry
// whatever conservative necessary[k] the pipeline settled on so the UCB
// reward windows stay well-defined over partial rounds. failed may be nil
// (no failures), which is exactly Feedback.
func (g *Gate) FeedbackExt(selected []int, necessary []bool, failed []bool) error {
	return g.FeedbackFull(selected, necessary, failed, nil)
}

// FeedbackFull is FeedbackExt with load-shedding outcomes: deferred[k]
// marks a selection the pipeline abandoned to meet a round deadline. A
// deferred slot's outcome is *unknown* — not a failure, not a redundancy
// verdict — so it must not leave a trace in any learned state: the slot is
// recorded as unselected in the temporal estimator's reward window (no
// reward, no selection count — only its age grows, exactly as if the
// optimizer had passed it over), it never reaches the online trainer, and
// it does not drive the stream's circuit breaker (the stream did nothing
// wrong). necessary[k] is ignored for deferred slots. deferred may be nil
// (nothing abandoned), which is exactly FeedbackExt.
//
// One deliberate approximation: the dependency tracker committed the
// selection at Decide time, so an abandoned decode leaves the tracker
// optimistic about the reference chain until the stream's next keyframe
// resets it — the GOP bounds the error window.
func (g *Gate) FeedbackFull(selected []int, necessary, failed, deferred []bool) error {
	g.ackMu.Lock()
	defer g.ackMu.Unlock()
	g.pendMu.Lock()
	if len(g.pending) == g.pendHead {
		g.pendMu.Unlock()
		return fmt.Errorf("core: Feedback without a pending round")
	}
	pr := g.pending[g.pendHead]
	g.pendMu.Unlock()
	if len(selected) != len(necessary) {
		return fmt.Errorf("core: %d selections with %d feedback values", len(selected), len(necessary))
	}
	if failed != nil && len(failed) != len(selected) {
		return fmt.Errorf("core: %d selections with %d failure flags", len(selected), len(failed))
	}
	if deferred != nil && len(deferred) != len(selected) {
		return fmt.Errorf("core: %d selections with %d deferral flags", len(selected), len(deferred))
	}
	if len(selected) != len(pr.sel) {
		return fmt.Errorf("core: feedback for %d selections, pending round selected %d", len(selected), len(pr.sel))
	}
	for _, i := range selected {
		if i < 0 || i >= g.cfg.Streams {
			return fmt.Errorf("core: feedback for invalid stream %d", i)
		}
		if !pr.selBools[i] {
			return fmt.Errorf("core: feedback for stream %d, which the pending round did not select", i)
		}
	}
	// The reward scratch is all-zero between feedbacks; set exactly the
	// rewarded entries and clear them again once the estimator push lists
	// below are built.
	for k, i := range selected {
		if necessary[k] && (deferred == nil || !deferred[k]) {
			g.reward[i] = 1
		}
	}
	// Deferred slots are recorded as unselected before the estimator push:
	// the round's selBools buffer is about to be recycled anyway, and the
	// cleared flag is what keeps abandoned decodes out of the UCB windows.
	if deferred != nil {
		var n int64
		for k, i := range selected {
			if deferred[k] {
				pr.selBools[i] = false
				n++
			}
		}
		g.cfg.Overload.AddDeferred(n)
	}

	// Fold decode outcomes into the circuit breakers: a failure run opens
	// the breaker, a success closes a half-open probe. Deferred slots skip
	// this — abandoning a decode says nothing about the stream's health.
	if g.breakers != nil {
		for k, i := range selected {
			if deferred != nil && deferred[k] {
				continue
			}
			g.breakers.outcome(i, failed != nil && failed[k])
		}
	}

	// Push the round into every shard's estimator, visiting only the
	// round's selections instead of all m streams. Shard locks are taken
	// one at a time, so a concurrent Decide proceeds on the other shards.
	numShards := len(g.shards.shards)
	for _, sh := range g.shards.shards {
		sh.pushIDs = sh.pushIDs[:0]
		sh.pushRew = sh.pushRew[:0]
	}
	for _, i := range pr.sel {
		if !pr.selBools[i] {
			continue // settled as deferred
		}
		sh := g.shards.shards[i%numShards]
		sh.pushIDs = append(sh.pushIDs, int32(i/numShards))
		sh.pushRew = append(sh.pushRew, g.reward[i])
	}
	for _, i := range selected {
		g.reward[i] = 0
	}
	if err := g.shards.pushSparse(); err != nil {
		return err
	}

	// Online fine-tuning: weight updates share decideMu with the forward
	// pass so training never races a concurrent prediction.
	if g.trainer != nil {
		g.decideMu.Lock()
		for k, i := range selected {
			if failed != nil && failed[k] {
				continue // unverified label: never train on it
			}
			if deferred != nil && deferred[k] {
				continue // abandoned decode: no label exists at all
			}
			f, ok := pr.feats[i]
			if !ok {
				continue
			}
			// Deep-copy into the training slab: the round's own slab is
			// recycled when the round retires below, but buffered samples
			// must survive until the next trainer step.
			labels := g.trainSlab.Alloc(g.tasks)
			for t := range labels {
				labels[t] = math.NaN() // only this gate's head gets a label
			}
			r := 0.0
			if necessary[k] {
				r = 1
			}
			labels[g.cfg.TaskIndex] = r
			g.buffer = append(g.buffer, predictor.Sample{F: g.trainSlab.CloneInto(f), Labels: labels})
		}
		var stepErr error
		if len(g.buffer) >= g.cfg.OnlineBatch {
			_, stepErr = g.trainer.Step(g.buffer)
			g.buffer = g.buffer[:0]
			g.trainSlab.Reset()
		}
		g.decideMu.Unlock()
		if stepErr != nil {
			return stepErr
		}
	}

	// Retire the round: write its trace record, recycle its buffers, and
	// advance the FIFO head.
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	if pr.trace != nil {
		nec := map[int]bool{}
		def := map[int]bool{}
		fld := map[int]bool{}
		for k, i := range selected {
			nec[i] = necessary[k] && (deferred == nil || !deferred[k])
			def[i] = deferred != nil && deferred[k]
			fld[i] = failed != nil && failed[k]
		}
		for d := range pr.trace.Decisions {
			if pr.trace.Decisions[d].Selected {
				pr.trace.Decisions[d].Necessary = nec[pr.trace.Decisions[d].Stream]
				pr.trace.Decisions[d].Deferred = def[pr.trace.Decisions[d].Stream]
				pr.trace.Decisions[d].Failed = fld[pr.trace.Decisions[d].Stream]
			}
		}
		if err := g.cfg.Trace.Write(*pr.trace); err != nil {
			return err
		}
	}
	// Clear the mask entry-by-entry so the recycled buffer keeps the
	// all-false free-list invariant without an O(m) wipe.
	for _, i := range pr.sel {
		pr.selBools[i] = false
	}
	g.freeSel = append(g.freeSel, pr.sel)
	g.freeBool = append(g.freeBool, pr.selBools)
	if pr.feats != nil {
		clear(pr.feats)
		g.freeFeats = append(g.freeFeats, pr.feats)
	}
	if pr.slab != nil {
		predictor.PutSlab(pr.slab)
	}
	g.pending[g.pendHead] = pendingRound{}
	g.pendHead++
	if g.pendHead == len(g.pending) {
		g.pending = g.pending[:0]
		g.pendHead = 0
	}
	return nil
}
