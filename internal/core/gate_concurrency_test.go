package core

import (
	"sync"
	"testing"

	"packetgame/internal/codec"
)

// concFleet builds m deterministic synthetic cameras.
func concFleet(m int, seed int64) []*codec.Stream {
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(
			codec.SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
			codec.EncoderConfig{StreamID: i, GOPSize: 8},
			seed+int64(i)*31)
	}
	return streams
}

func nextRoundPkts(streams []*codec.Stream) []*codec.Packet {
	pkts := make([]*codec.Packet, len(streams))
	for i, st := range streams {
		pkts[i] = st.Next()
	}
	return pkts
}

// syntheticNecessary is a deterministic stand-in for redundancy feedback.
func syntheticNecessary(round int, sel []int) []bool {
	nec := make([]bool, len(sel))
	for k, i := range sel {
		nec[k] = (round+i)%3 == 0
	}
	return nec
}

// TestGateShardCountInvariance verifies that sharding is purely a
// concurrency knob: gates differing only in shard count make identical
// decisions on an identical packet and feedback sequence.
func TestGateShardCountInvariance(t *testing.T) {
	const m, rounds = 13, 120
	mk := func(shards int) *Gate {
		g, err := NewGate(Config{Streams: m, Budget: 6, UseTemporal: true, Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gates := []*Gate{mk(1), mk(5), mk(m)}
	streams := concFleet(m, 77)
	for r := 0; r < rounds; r++ {
		pkts := nextRoundPkts(streams)
		var ref []int
		for gi, g := range gates {
			sel, err := g.Decide(pkts)
			if err != nil {
				t.Fatal(err)
			}
			if gi == 0 {
				ref = sel
			} else if len(sel) != len(ref) {
				t.Fatalf("round %d: gate with %d shards selected %v, 1-shard gate %v", r, g.Config().Shards, sel, ref)
			} else {
				for k := range sel {
					if sel[k] != ref[k] {
						t.Fatalf("round %d: gate with %d shards selected %v, 1-shard gate %v", r, g.Config().Shards, sel, ref)
					}
				}
			}
			if err := g.Feedback(sel, syntheticNecessary(r, sel)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ref := gates[0].Stats()
	for _, g := range gates[1:] {
		if g.Stats() != ref {
			t.Errorf("stats diverged across shard counts: %+v vs %+v", g.Stats(), ref)
		}
	}
}

// TestGateMultiPendingQueue exercises the decided-but-unacked FIFO: up to
// MaxPending rounds may be outstanding, the next Decide fails, and feedback
// retires rounds strictly in decision order.
func TestGateMultiPendingQueue(t *testing.T) {
	const m, k = 6, 3
	g, err := NewGate(Config{Streams: m, Budget: 4, UseTemporal: true, MaxPending: k})
	if err != nil {
		t.Fatal(err)
	}
	streams := concFleet(m, 5)
	var sels [][]int
	for r := 0; r < k; r++ {
		sel, err := g.Decide(nextRoundPkts(streams))
		if err != nil {
			t.Fatalf("decide %d of %d: %v", r+1, k, err)
		}
		sels = append(sels, sel)
	}
	if g.Pending() != k {
		t.Fatalf("pending = %d, want %d", g.Pending(), k)
	}
	if _, err := g.Decide(nextRoundPkts(streams)); err == nil {
		t.Fatal("Decide beyond MaxPending must fail")
	}
	// Acking a round whose selection does not match the oldest pending
	// round must fail without consuming it (out-of-order ack guard).
	if len(sels[0]) > 0 {
		bad := make([]bool, len(sels[0])+1)
		if err := g.Feedback(append(append([]int(nil), sels[0]...), sels[0][0]), bad); err == nil {
			t.Fatal("mismatched feedback length must fail")
		}
		if g.Pending() != k {
			t.Fatalf("failed feedback consumed a round: pending = %d", g.Pending())
		}
	}
	for r, sel := range sels {
		if err := g.Feedback(sel, syntheticNecessary(r, sel)); err != nil {
			t.Fatalf("feedback %d: %v", r, err)
		}
	}
	if g.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", g.Pending())
	}
	// SetMaxPending takes effect for subsequent rounds.
	g.SetMaxPending(1)
	if _, err := g.Decide(nextRoundPkts(streams)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Decide(nextRoundPkts(streams)); err == nil {
		t.Fatal("Decide beyond lowered MaxPending must fail")
	}
}

// TestGateConcurrentDecideFeedback runs a producer goroutine deciding
// rounds against a consumer goroutine acking them (the staged engine's
// topology), with concurrent Stats/Pending/Confidence readers. Run under
// -race this validates the sharded gate's locking.
func TestGateConcurrentDecideFeedback(t *testing.T) {
	const m, k, rounds = 32, 4, 300
	g, err := NewGate(Config{Streams: m, Budget: 10, UseTemporal: true, MaxPending: k, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	streams := concFleet(m, 11)

	type decided struct {
		round int
		sel   []int
	}
	// At Decide time the unacked rounds are those queued here plus at most
	// one the consumer has popped but not yet fed back, so a buffer of k−2
	// keeps pending ≤ k−1 before each Decide and ≤ k after it.
	acks := make(chan decided, k-2)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = g.Stats()
				_ = g.Pending()
				_ = g.Confidence(w)
			}
		}(w)
	}
	var consumer sync.WaitGroup
	consumer.Add(1)
	consumerErr := make(chan error, 1)
	go func() {
		defer consumer.Done()
		for d := range acks {
			if err := g.Feedback(d.sel, syntheticNecessary(d.round, d.sel)); err != nil {
				select {
				case consumerErr <- err:
				default:
				}
				return
			}
		}
	}()

	for r := 0; r < rounds; r++ {
		sel, err := g.Decide(nextRoundPkts(streams))
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		acks <- decided{round: r, sel: sel}
	}
	close(acks)
	consumer.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-consumerErr:
		t.Fatal(err)
	default:
	}
	st := g.Stats()
	if st.Rounds != rounds {
		t.Errorf("rounds = %d, want %d", st.Rounds, rounds)
	}
	if g.Pending() != 0 {
		t.Errorf("pending = %d after drain", g.Pending())
	}
}
