package core

import (
	"math"
	"math/rand"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/knapsack"
	"packetgame/internal/predictor"
)

func iPacket(size int) *codec.Packet {
	return &codec.Packet{Type: codec.PictureI, GOPIndex: 0, GOPSize: 5, Size: size}
}

// advance runs beginRound with one live packet for every stream and returns
// the quarantine mask.
func advance(s *breakerSet, streams int) []bool {
	pkts := make([]*codec.Packet, streams)
	for i := range pkts {
		pkts[i] = iPacket(1000)
	}
	return s.beginRound(pkts)
}

func TestBreakerStateMachine(t *testing.T) {
	s := newBreakerSet(1, BreakerConfig{FailureThreshold: 2, GapThreshold: -1, Cooldown: 3, MaxCooldown: 6})

	// Closed: one failure is tolerated, the second opens.
	s.outcome(0, true)
	if st := s.snapshots()[0]; st.State != BreakerClosed || st.ConsecutiveFails != 1 {
		t.Fatalf("after 1 failure: %+v", st)
	}
	s.outcome(0, true)
	if st := s.snapshots()[0]; st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("after 2 failures: %+v", st)
	}

	// Open: quarantined for the cooldown, then half-open probe.
	quarantined := 0
	for r := 0; r < 3; r++ {
		if advance(s, 1)[0] {
			quarantined++
		}
	}
	if st := s.snapshots()[0]; st.State != BreakerHalfOpen {
		t.Fatalf("after cooldown: %+v", st)
	}
	if quarantined != 2 {
		t.Fatalf("quarantined %d rounds during cooldown 3, want 2 (last round is the probe)", quarantined)
	}
	if st := s.snapshots()[0]; st.QuarantinedRounds != 3 {
		t.Fatalf("QuarantinedRounds = %d, want 3", st.QuarantinedRounds)
	}

	// Failed probe: reopen with doubled cooldown.
	s.outcome(0, true)
	st := s.snapshots()[0]
	if st.State != BreakerOpen || st.Reopens != 1 || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	rounds := 0
	for s.snapshots()[0].State == BreakerOpen {
		advance(s, 1)
		rounds++
		if rounds > 20 {
			t.Fatal("breaker never half-opened after reopen")
		}
	}
	if rounds != 6 {
		t.Fatalf("reopen cooldown = %d rounds, want doubled to 6", rounds)
	}

	// Successful probe: closed, cooldown reset, counters updated.
	s.outcome(0, false)
	st = s.snapshots()[0]
	if st.State != BreakerClosed || st.Recoveries != 1 || st.ConsecutiveFails != 0 {
		t.Fatalf("after successful probe: %+v", st)
	}

	// A lone failure after recovery does not reopen; a success clears it.
	s.outcome(0, true)
	s.outcome(0, false)
	if st := s.snapshots()[0]; st.State != BreakerClosed || st.ConsecutiveFails != 0 {
		t.Fatalf("fail+success after recovery: %+v", st)
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	s := newBreakerSet(1, BreakerConfig{FailureThreshold: 1, GapThreshold: -1, Cooldown: 2, MaxCooldown: 5})
	s.outcome(0, true) // open with cooldown 2
	for probe := 0; probe < 4; probe++ {
		for s.snapshots()[0].State == BreakerOpen {
			advance(s, 1)
		}
		s.outcome(0, true) // fail every probe: 2 → 4 → 5 → 5 (capped)
	}
	openRounds := 0
	for s.snapshots()[0].State == BreakerOpen {
		advance(s, 1)
		openRounds++
		if openRounds > 50 {
			t.Fatal("breaker stuck open")
		}
	}
	if openRounds != 5 {
		t.Fatalf("cooldown after repeated failed probes = %d, want capped at 5", openRounds)
	}
}

func TestBreakerGapOpens(t *testing.T) {
	s := newBreakerSet(2, BreakerConfig{FailureThreshold: 3, GapThreshold: 3, Cooldown: 2})
	// Stream 0 goes silent; stream 1 keeps sending.
	for r := 0; r < 4; r++ {
		s.beginRound([]*codec.Packet{nil, iPacket(500)})
	}
	snaps := s.snapshots()
	if snaps[0].State != BreakerOpen || snaps[0].GapOpens != 1 {
		t.Fatalf("silent stream: %+v", snaps[0])
	}
	if snaps[1].State != BreakerClosed || snaps[1].Opens != 0 {
		t.Fatalf("live stream: %+v", snaps[1])
	}

	// Negative threshold disables gap detection entirely.
	s2 := newBreakerSet(1, BreakerConfig{GapThreshold: -1})
	for r := 0; r < 200; r++ {
		s2.beginRound([]*codec.Packet{nil})
	}
	if st := s2.snapshots()[0]; st.State != BreakerClosed {
		t.Fatalf("gap detection disabled but breaker opened: %+v", st)
	}
}

// TestGateQuarantineAndRecovery drives the full gate: decode failures open a
// stream's breaker, the open stream vanishes from Decide (its budget share
// flows to the healthy streams), and a clean half-open probe closes it again.
func TestGateQuarantineAndRecovery(t *testing.T) {
	const m = 4
	g, err := NewGate(Config{
		Streams:     m,
		Budget:      12, // room for every I-frame (4 × 2.9): all streams decode each round
		UseTemporal: true,
		Breaker:     &BreakerConfig{FailureThreshold: 2, Cooldown: 3, GapThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]*codec.Packet, m)
	round := func(failStream int) []int {
		t.Helper()
		for i := range pkts {
			pkts[i] = iPacket(1000 + 100*i)
		}
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatal(err)
		}
		nec := make([]bool, len(sel))
		failed := make([]bool, len(sel))
		for k, i := range sel {
			nec[k] = true
			if i == failStream {
				failed[k] = true
				nec[k] = false
			}
		}
		if err := g.FeedbackExt(sel, nec, failed); err != nil {
			t.Fatal(err)
		}
		return sel
	}
	contains := func(sel []int, i int) bool {
		for _, s := range sel {
			if s == i {
				return true
			}
		}
		return false
	}

	// Fail stream 0's decodes until its breaker opens (2 consecutive fails).
	opened := false
	for r := 0; r < 10 && !opened; r++ {
		round(0)
		opened = g.Breakers()[0].State == BreakerOpen
	}
	if !opened {
		t.Fatal("breaker never opened under repeated decode failures")
	}
	if got := g.Quarantined(); got != 1 {
		t.Fatalf("Quarantined() = %d, want 1", got)
	}

	// While open, stream 0 is quarantined: it vanishes from the selection
	// while the healthy streams keep decoding. After the cooldown the
	// breaker half-opens, the probe decode succeeds, and it closes again.
	quarRounds := 0
	for r := 0; r < 20 && g.Breakers()[0].State != BreakerClosed; r++ {
		sel := round(-1)
		if contains(sel, 0) {
			// Only the half-open probe readmits the stream, and its clean
			// decode must close the breaker within the same round.
			if st := g.Breakers()[0]; st.State != BreakerClosed {
				t.Fatalf("stream 0 selected while quarantined: %+v", st)
			}
		} else {
			quarRounds++
			if len(sel) != 3 {
				t.Fatalf("healthy streams lost budget share: selected %v", sel)
			}
		}
	}
	st := g.Breakers()[0]
	if st.State != BreakerClosed || st.Recoveries < 1 {
		t.Fatalf("breaker did not recover: %+v", st)
	}
	if quarRounds < 2 || st.QuarantinedRounds < 2 {
		t.Fatalf("quarantined for %d rounds (snapshot %d), want ≥ 2 under cooldown 3", quarRounds, st.QuarantinedRounds)
	}
}

// TestQuarantineKnapsackBound checks the budget-reallocation guarantee: with
// quarantined streams zeroed out exactly as Decide does (zero-value items),
// greedy selection over the mixed item set (a) never picks a quarantined
// stream, (b) matches the selection over the healthy subset alone, and (c)
// keeps the Lemma-1 value bound ≥ (1 − c/B)·OPT over the healthy subset.
func TestQuarantineKnapsackBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	greedy := &knapsack.Greedy{}
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(12)
		healthy := make([]knapsack.Item, 0, n)
		mixed := make([]knapsack.Item, n)
		quarantined := make([]bool, n)
		for i := 0; i < n; i++ {
			it := knapsack.Item{Value: 0.05 + rng.Float64(), Cost: 0.8 + 2.2*rng.Float64()}
			if rng.Float64() < 0.3 {
				quarantined[i] = true
				mixed[i] = knapsack.Item{} // what Decide emits for open breakers
				continue
			}
			mixed[i] = it
			healthy = append(healthy, it)
		}
		budget := 2.9 + rng.Float64()*6
		sel := greedy.Select(mixed, budget)
		for _, i := range sel {
			if quarantined[i] {
				t.Fatalf("trial %d: greedy picked quarantined stream %d", trial, i)
			}
		}
		if len(healthy) == 0 {
			continue
		}
		got := knapsack.TotalValue(mixed, sel)
		healthySel := greedy.Select(healthy, budget)
		if want := knapsack.TotalValue(healthy, healthySel); math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: mixed-set value %v != healthy-subset value %v", trial, got, want)
		}
		opt := knapsack.TotalValue(healthy, (&knapsack.ExactDP{Scale: 0.01}).Select(healthy, budget))
		c := knapsack.MaxCost(healthy)
		if bound := (1 - c/budget) * opt; got < bound-1e-6 {
			t.Fatalf("trial %d: value %v < (1-%v/%v)·OPT = %v over healthy subset", trial, got, c, budget, bound)
		}
	}
}

// TestQuarantineTieredKnapsackBound extends the budget-reallocation
// guarantee to the tiered (priority-class) solver: with quarantined streams
// zeroed exactly as Decide does, (a) no quarantined stream is ever picked,
// (b) the quarantined stream's tier keeps or improves its value net of the
// quarantined member — the freed budget flows in-tier before cascading —
// while tiers above it are untouched, and (c) the per-tier Lemma-1 bound
// holds against the budget each tier saw over the healthy subset.
func TestQuarantineTieredKnapsackBound(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	tiered := &knapsack.Tiered{}
	dp := &knapsack.ExactDP{Scale: 0.01}
	const numTiers = 4
	for trial := 0; trial < 200; trial++ {
		n := 4 + rng.Intn(12)
		items := make([]knapsack.Item, n)
		tiers := make([]uint8, n)
		for i := 0; i < n; i++ {
			items[i] = knapsack.Item{Value: 0.05 + rng.Float64(), Cost: 0.8 + 2.2*rng.Float64()}
			tiers[i] = uint8(rng.Intn(numTiers))
		}
		budget := 2.9 + rng.Float64()*6
		base := tiered.SelectAppend(nil, items, tiers, numTiers, budget)
		if len(base) == 0 {
			continue
		}
		q := base[rng.Intn(len(base))]
		qTier := int(tiers[q])
		mixed := make([]knapsack.Item, n)
		copy(mixed, items)
		mixed[q] = knapsack.Item{} // what Decide emits for open breakers
		sel := tiered.SelectAppend(nil, mixed, tiers, numTiers, budget)
		for _, i := range sel {
			if i == q {
				t.Fatalf("trial %d: tiered picked quarantined stream %d", trial, q)
			}
		}
		tierValue := func(selIdx []int, tier, skip int) float64 {
			var v float64
			for _, i := range selIdx {
				if i != skip && int(tiers[i]) == tier {
					v += items[i].Value
				}
			}
			return v
		}
		for tier := 0; tier < qTier; tier++ {
			if b, a := tierValue(base, tier, -1), tierValue(sel, tier, -1); math.Abs(b-a) > 1e-9 {
				t.Fatalf("trial %d: quarantine in tier %d disturbed upstream tier %d (%v → %v)",
					trial, qTier, tier, b, a)
			}
		}
		if before, now := tierValue(base, qTier, q), tierValue(sel, qTier, -1); now < before-1e-9 {
			t.Fatalf("trial %d: tier %d lost in-tier value %v → %v after quarantine",
				trial, qTier, before, now)
		}
		// Per-tier Lemma-1 over the healthy subset, replaying the cascade.
		remaining := budget
		for tier := 0; tier < numTiers; tier++ {
			var healthy []knapsack.Item
			var got float64
			for i, it := range mixed {
				if int(tiers[i]) != tier || it.Value <= 0 {
					continue
				}
				healthy = append(healthy, it)
			}
			got = tierValue(sel, tier, -1)
			if len(healthy) > 0 && remaining > 0 {
				if c := knapsack.MaxCost(healthy); c < remaining {
					opt := knapsack.TotalValue(healthy, dp.Select(healthy, remaining))
					if bound := (1 - c/remaining) * opt; got < bound-1e-6 {
						t.Fatalf("trial %d tier %d: value %v < (1-%v/%v)·OPT = %v",
							trial, tier, got, c, remaining, bound)
					}
				}
			}
			for _, i := range sel {
				if int(tiers[i]) == tier {
					remaining -= mixed[i].Cost
				}
			}
		}
	}
}

// TestPoisonedWindowDegradesToTemporal feeds a stream zero-size packets (the
// truncation signature): the fault-aware gate must flag its feature window as
// poisoned and score it with the temporal-only estimate, while a
// fault-oblivious gate keeps trusting the predictor on the garbage input and
// the healthy stream's score is untouched by the degradation.
func TestPoisonedWindowDegradesToTemporal(t *testing.T) {
	pcfg := predictor.DefaultConfig()
	pcfg.Window = 3
	pcfg.Seed = 7
	p, err := predictor.New(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	noExplore := false
	mk := func(brk *BreakerConfig) *Gate {
		g, err := NewGate(Config{Streams: 2, Budget: 100, Window: 3, Predictor: p,
			UseTemporal: true, Explore: &noExplore, Breaker: brk})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	armed := mk(&BreakerConfig{})
	oblivious := mk(nil)

	for r := 0; r < 8; r++ {
		pkts := []*codec.Packet{iPacket(0), iPacket(4000)} // stream 0 truncated to zero size
		for _, g := range []*Gate{armed, oblivious} {
			sel, err := g.Decide(pkts)
			if err != nil {
				t.Fatal(err)
			}
			nec := make([]bool, len(sel))
			for k := range nec {
				nec[k] = true
			}
			if err := g.Feedback(sel, nec); err != nil {
				t.Fatal(err)
			}
		}
	}
	if !armed.degraded[0] {
		t.Fatal("stream 0's window is all zeros but the armed gate did not degrade it")
	}
	if armed.degraded[1] {
		t.Fatal("healthy stream wrongly degraded")
	}
	if oblivious.degraded[0] {
		t.Fatal("fault-oblivious gate must never degrade")
	}
	if got, want := armed.Confidence(0), armed.temporal[0]; got != want {
		t.Fatalf("degraded stream scored %v, want its temporal estimate %v", got, want)
	}
	// Both gates saw identical selections and feedback, so their predictor
	// and estimator states match: the degraded score must differ from the
	// predictor's, and the healthy stream's score must be identical.
	if armed.Confidence(0) == oblivious.Confidence(0) {
		t.Fatal("degraded score coincides with the predictor output")
	}
	if got, want := armed.Confidence(1), oblivious.Confidence(1); got != want {
		t.Fatalf("healthy stream confidence diverged: %v vs %v", got, want)
	}
}

func TestFeedbackExtValidation(t *testing.T) {
	g, err := NewGate(Config{Streams: 2, Budget: 10, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sel, err := g.Decide([]*codec.Packet{iPacket(1000), iPacket(1000)})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) == 0 {
		t.Fatal("nothing selected")
	}
	nec := make([]bool, len(sel))
	if err := g.FeedbackExt(sel, nec, make([]bool, len(sel)+1)); err == nil {
		t.Fatal("failed-mask length mismatch must error")
	}
	if err := g.FeedbackExt(sel, nec, make([]bool, len(sel))); err != nil {
		t.Fatal(err)
	}
}
