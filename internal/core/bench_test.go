package core

import (
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/predictor"
)

// The Decide-round benchmarks measure the gating hot loop in isolation:
// packet rounds are pregenerated so the codec substrate stays off the
// clock, and feedback reuses one necessary mask. The Reference variants run
// the same gate with NoFastPath (float64 autodiff forward), which is the
// pre-fast-path baseline recorded in BENCH_hotpath.json.

func benchGate(tb testing.TB, m int, noFast bool) (*Gate, [][]*codec.Packet) {
	tb.Helper()
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		tb.Fatal(err)
	}
	g, err := NewGate(Config{
		Streams: m, Budget: float64(m) / 25, Predictor: p,
		UseTemporal: true, NoFastPath: noFast,
	})
	if err != nil {
		tb.Fatal(err)
	}
	const rounds = 32
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(codec.SceneConfig{BaseActivity: 0.4},
			codec.EncoderConfig{StreamID: i, GOPSize: 25}, int64(i))
	}
	pre := make([][]*codec.Packet, rounds)
	for r := range pre {
		pre[r] = make([]*codec.Packet, m)
		for j, st := range streams {
			pre[r][j] = st.Next()
		}
	}
	return g, pre
}

func benchDecideRound(b *testing.B, m int, noFast bool) {
	b.Helper()
	g, pre := benchGate(b, m, noFast)
	var sel []int
	necessary := make([]bool, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		sel, err = g.DecideAppend(pre[i%len(pre)], sel[:0])
		if err != nil {
			b.Fatal(err)
		}
		if err := g.FeedbackExt(sel, necessary[:len(sel)], nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecideRound64(b *testing.B)   { benchDecideRound(b, 64, false) }
func BenchmarkDecideRound256(b *testing.B)  { benchDecideRound(b, 256, false) }
func BenchmarkDecideRound1024(b *testing.B) { benchDecideRound(b, 1024, false) }

func BenchmarkDecideRoundReference64(b *testing.B)   { benchDecideRound(b, 64, true) }
func BenchmarkDecideRoundReference256(b *testing.B)  { benchDecideRound(b, 256, true) }
func BenchmarkDecideRoundReference1024(b *testing.B) { benchDecideRound(b, 1024, true) }

// TestDecideRoundAllocCeiling is the verify-gate smoke bench: after warmup,
// a steady-state Decide+Feedback round must stay under a small allocs/op
// ceiling (sync.Pool churn and map internals give a little slack; the target
// is "no per-stream or per-buffer allocation scales with m").
func TestDecideRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	const m = 128
	g, pre := benchGate(t, m, false)
	var sel []int
	necessary := make([]bool, m)
	round := 0
	run := func() {
		var err error
		sel, err = g.DecideAppend(pre[round%len(pre)], sel[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := g.FeedbackExt(sel, necessary[:len(sel)], nil); err != nil {
			t.Fatal(err)
		}
		round++
	}
	for i := 0; i < 8; i++ {
		run() // warm scratch, pools, and free lists
	}
	allocs := testing.AllocsPerRun(24, run)
	const ceiling = 8
	if allocs > ceiling {
		t.Fatalf("steady-state Decide round allocates %.1f times/op, ceiling %d", allocs, ceiling)
	}
}

// TestFastPathMatchesReferenceDecisions runs fast and reference gates over
// identical packet rounds and checks the decisions agree in aggregate: the
// float32 fast path may flip exact near-ties in greedy ordering, so we bound
// the per-round symmetric-difference rate rather than demand identity.
func TestFastPathMatchesReferenceDecisions(t *testing.T) {
	const m, rounds = 96, 60
	fast, pre := benchGate(t, m, false)
	ref, _ := benchGate(t, m, true)
	necessary := make([]bool, m)
	var diff, total int
	selB := make([]bool, m)
	for r := 0; r < rounds; r++ {
		fs, err := fast.Decide(pre[r%len(pre)])
		if err != nil {
			t.Fatal(err)
		}
		rs, err := ref.Decide(pre[r%len(pre)])
		if err != nil {
			t.Fatal(err)
		}
		for i := range selB {
			selB[i] = false
		}
		for _, i := range fs {
			selB[i] = true
		}
		for _, i := range rs {
			if !selB[i] {
				diff++
			} else {
				selB[i] = false
			}
		}
		for _, on := range selB {
			if on {
				diff++
			}
		}
		total += len(rs)
		if err := fast.Feedback(fs, necessary[:len(fs)]); err != nil {
			t.Fatal(err)
		}
		if err := ref.Feedback(rs, necessary[:len(rs)]); err != nil {
			t.Fatal(err)
		}
	}
	if total == 0 {
		t.Fatal("reference gate selected nothing")
	}
	if rate := float64(diff) / float64(total); rate > 0.05 {
		t.Fatalf("fast vs reference decisions diverge on %.1f%% of selections (diff %d / %d)", rate*100, diff, total)
	}
}
