package core

import (
	"fmt"
	"sync"

	"packetgame/internal/codec"
)

// BreakerState is a per-stream circuit breaker state.
type BreakerState uint8

const (
	// BreakerClosed: the stream is healthy and fully participates.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the stream is quarantined out of Decide — its packets
	// are excluded from selection (and its budget share therefore flows to
	// the healthy streams through the knapsack).
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the stream competes again and
	// its next decode outcome decides between closing and reopening.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// BreakerConfig parameterizes the gate's per-stream circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive decode failures that
	// opens a closed breaker (default 3).
	FailureThreshold int
	// GapThreshold opens a closed breaker after this many consecutive
	// rounds without a packet from the stream — a stalled camera must
	// re-prove itself through a half-open probe before it is trusted
	// again (default 50; negative disables gap detection).
	GapThreshold int
	// Cooldown is the number of rounds an open breaker waits before
	// half-opening (default 25).
	Cooldown int
	// MaxCooldown caps the exponential reopen backoff: every failed
	// half-open probe doubles the next cooldown up to this bound
	// (default 8×Cooldown).
	MaxCooldown int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.GapThreshold == 0 {
		c.GapThreshold = 50
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 25
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
	return c
}

// BreakerSnapshot is one stream's breaker state and lifetime counters.
type BreakerSnapshot struct {
	State BreakerState
	// ConsecutiveFails is the current run of decode failures.
	ConsecutiveFails int
	// Opens counts closed→open transitions (failures and gaps).
	Opens int
	// GapOpens counts the subset of Opens caused by feedback gaps.
	GapOpens int
	// Reopens counts half-open probes that failed (open again, with a
	// doubled cooldown).
	Reopens int
	// Recoveries counts half-open probes that succeeded (closed again).
	Recoveries int
	// QuarantinedRounds is the total rounds spent open.
	QuarantinedRounds int64
}

// breaker is one stream's state machine, advanced lazily: instead of being
// ticked every round, it records the last round it was brought current to
// (asOf) and the round of its most recent packet (lastPkt), and fast-forwards
// through the intervening packet-free rounds in closed form when it is next
// touched. The round-by-round gap counter of the eager formulation is
// implicit: gap(r) = r − lastPkt.
type breaker struct {
	state    BreakerState
	fails    int   // consecutive decode failures
	cooldown int   // current open-state cooldown length
	openLeft int   // rounds left before open → half-open
	lastPkt  int64 // round of the stream's most recent packet (0 = never)
	asOf     int64 // breaker state is current through this round
	snapshot BreakerSnapshot
}

// breakerSet is the gate's per-stream breaker array. It has its own lock:
// Decide consults it under decideMu and the feedback path updates it under
// ackMu, and those two run concurrently by design.
//
// Per-round cost is O(streams with packets), not O(m): only streams that
// deliver a packet (and streams whose decode outcomes arrive) are touched,
// and each touch replays the stream's packet-free span in closed form —
// round-for-round identical to ticking every breaker every round, which the
// equivalence test in breaker_test.go enforces against the dense shim.
type breakerSet struct {
	cfg BreakerConfig

	mu    sync.Mutex
	bs    []breaker
	round int64   // rounds begun so far
	quar  []bool  // quarantine mask; entries listed in quarList are live
	qlist []int32 // streams whose quar entry was set this round
	dense []int32 // beginRound shim scratch
}

func newBreakerSet(streams int, cfg BreakerConfig) *breakerSet {
	return &breakerSet{
		cfg:  cfg.withDefaults(),
		bs:   make([]breaker, streams),
		quar: make([]bool, streams),
	}
}

// fastForward brings b current through round `to`, simulating the rounds
// (b.asOf, to] in which the stream delivered no packet. Equivalent to the
// eager per-round walk: while closed, the gap reaches GapThreshold+1 at
// round lastPkt+GapThreshold+1 and the breaker opens there (never earlier
// than asOf+1 — a breaker closed by a late probe outcome with an already
// stale lastPkt gap-opens on the very next packet-free round, as the eager
// walk would); while open, each round counts quarantine time and burns one
// cooldown round until the breaker half-opens; half-open is inert without a
// packet or an outcome.
func (s *breakerSet) fastForward(b *breaker, to int64) {
	if to <= b.asOf {
		return
	}
	if b.state == BreakerClosed && s.cfg.GapThreshold >= 0 {
		r0 := b.lastPkt + int64(s.cfg.GapThreshold) + 1
		if r0 <= b.asOf {
			r0 = b.asOf + 1
		}
		if r0 <= to {
			s.open(b, true)
			s.runOpen(b, to-r0+1)
			b.asOf = to
			return
		}
	}
	if b.state == BreakerOpen {
		s.runOpen(b, to-b.asOf)
	}
	b.asOf = to
}

// runOpen burns k packet-free open rounds: each counts quarantine time and
// one cooldown round; exhausting the cooldown half-opens the breaker and
// any remaining rounds are inert. Callers hold s.mu.
func (s *breakerSet) runOpen(b *breaker, k int64) {
	n := int64(b.openLeft)
	if k < n {
		n = k
	}
	b.snapshot.QuarantinedRounds += n
	b.openLeft -= int(n)
	if b.openLeft <= 0 {
		b.state = BreakerHalfOpen
	}
}

// packetRound folds a packet arrival at round r into b: the gap resets, and
// an open breaker still counts the round against its cooldown (half-opening
// exactly when it expires, in which case the packet participates this round).
// Returns whether the stream is quarantined this round. Callers hold s.mu.
func (s *breakerSet) packetRound(b *breaker, r int64) bool {
	s.fastForward(b, r-1)
	b.lastPkt = r
	b.asOf = r
	if b.state == BreakerOpen {
		b.snapshot.QuarantinedRounds++
		b.openLeft--
		if b.openLeft <= 0 {
			b.state = BreakerHalfOpen
			return false
		}
		return true
	}
	return false
}

// beginRoundSparse starts a new round and advances the breakers of exactly
// the streams that delivered a packet (nonIdle, ascending stream IDs). It
// returns the quarantine mask: quar[i] is true when stream i's packet must
// be excluded from this round's selection. Only entries for nonIdle streams
// are maintained — idle streams have no packet to quarantine. The mask is
// scratch owned by the set, valid until the next round begins.
func (s *breakerSet) beginRoundSparse(nonIdle []int32) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.beginRoundSparseLocked(nonIdle)
}

func (s *breakerSet) beginRoundSparseLocked(nonIdle []int32) []bool {
	s.round++
	for _, i := range s.qlist {
		s.quar[i] = false
	}
	s.qlist = s.qlist[:0]
	for _, i := range nonIdle {
		if s.packetRound(&s.bs[i], s.round) {
			s.quar[i] = true
			s.qlist = append(s.qlist, i)
		}
	}
	return s.quar
}

// beginRound is the dense equivalent of beginRoundSparse: it advances every
// breaker (idle ones included) and fills the mask for all streams, exactly
// like the pre-lazy eager formulation. The gate itself uses the sparse
// entry point; this one serves tests and diagnostics that want the full
// per-stream view each round.
func (s *breakerSet) beginRound(pkts []*codec.Packet) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dense = s.dense[:0]
	for i := range s.bs {
		if i < len(pkts) && pkts[i] != nil {
			s.dense = append(s.dense, int32(i))
		}
	}
	quar := s.beginRoundSparseLocked(s.dense)
	for i := range s.bs {
		b := &s.bs[i]
		s.fastForward(b, s.round)
		if b.state == BreakerOpen && !quar[i] {
			quar[i] = true
			s.qlist = append(s.qlist, int32(i))
		}
	}
	return quar
}

// open transitions a breaker to open and starts its cooldown. gapCaused
// marks feedback-gap opens in the counters. Callers hold s.mu.
func (s *breakerSet) open(b *breaker, gapCaused bool) {
	if b.cooldown == 0 {
		b.cooldown = s.cfg.Cooldown
	}
	b.state = BreakerOpen
	b.openLeft = b.cooldown
	b.fails = 0
	b.snapshot.Opens++
	if gapCaused {
		b.snapshot.GapOpens++
	}
}

// outcome folds one decode outcome for stream i into its breaker.
func (s *breakerSet) outcome(i int, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.bs) {
		return
	}
	b := &s.bs[i]
	s.fastForward(b, s.round)
	if failed {
		switch b.state {
		case BreakerHalfOpen:
			// Failed probe: reopen with doubled cooldown.
			b.cooldown *= 2
			if b.cooldown > s.cfg.MaxCooldown {
				b.cooldown = s.cfg.MaxCooldown
			}
			s.open(b, false)
			b.snapshot.Reopens++
		case BreakerClosed:
			b.fails++
			if b.fails >= s.cfg.FailureThreshold {
				s.open(b, false)
			}
		}
		b.snapshot.ConsecutiveFails = b.fails
		return
	}
	// Success.
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.cooldown = 0
		b.snapshot.Recoveries++
	case BreakerClosed:
		b.fails = 0
	}
	b.snapshot.ConsecutiveFails = b.fails
}

// snapshots returns every stream's breaker snapshot, fast-forwarding each
// breaker to the current round first so lazily deferred quarantine rounds
// and gap-opens are reflected. O(m); diagnostic path only.
func (s *breakerSet) snapshots() []BreakerSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BreakerSnapshot, len(s.bs))
	for i := range s.bs {
		b := &s.bs[i]
		s.fastForward(b, s.round)
		out[i] = b.snapshot
		out[i].State = b.state
		out[i].ConsecutiveFails = b.fails
	}
	return out
}
