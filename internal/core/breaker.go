package core

import (
	"fmt"
	"sync"

	"packetgame/internal/codec"
)

// BreakerState is a per-stream circuit breaker state.
type BreakerState uint8

const (
	// BreakerClosed: the stream is healthy and fully participates.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the stream is quarantined out of Decide — its packets
	// are excluded from selection (and its budget share therefore flows to
	// the healthy streams through the knapsack).
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed; the stream competes again and
	// its next decode outcome decides between closing and reopening.
	BreakerHalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", uint8(s))
	}
}

// BreakerConfig parameterizes the gate's per-stream circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive decode failures that
	// opens a closed breaker (default 3).
	FailureThreshold int
	// GapThreshold opens a closed breaker after this many consecutive
	// rounds without a packet from the stream — a stalled camera must
	// re-prove itself through a half-open probe before it is trusted
	// again (default 50; negative disables gap detection).
	GapThreshold int
	// Cooldown is the number of rounds an open breaker waits before
	// half-opening (default 25).
	Cooldown int
	// MaxCooldown caps the exponential reopen backoff: every failed
	// half-open probe doubles the next cooldown up to this bound
	// (default 8×Cooldown).
	MaxCooldown int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.GapThreshold == 0 {
		c.GapThreshold = 50
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 25
	}
	if c.MaxCooldown <= 0 {
		c.MaxCooldown = 8 * c.Cooldown
	}
	return c
}

// BreakerSnapshot is one stream's breaker state and lifetime counters.
type BreakerSnapshot struct {
	State BreakerState
	// ConsecutiveFails is the current run of decode failures.
	ConsecutiveFails int
	// Opens counts closed→open transitions (failures and gaps).
	Opens int
	// GapOpens counts the subset of Opens caused by feedback gaps.
	GapOpens int
	// Reopens counts half-open probes that failed (open again, with a
	// doubled cooldown).
	Reopens int
	// Recoveries counts half-open probes that succeeded (closed again).
	Recoveries int
	// QuarantinedRounds is the total rounds spent open.
	QuarantinedRounds int64
}

// breaker is one stream's state machine.
type breaker struct {
	state    BreakerState
	fails    int   // consecutive decode failures
	cooldown int   // current open-state cooldown length
	openLeft int   // rounds left before open → half-open
	gap      int   // consecutive rounds without a packet
	snapshot BreakerSnapshot
}

// breakerSet is the gate's per-stream breaker array. It has its own lock:
// Decide consults it under decideMu and the feedback path updates it under
// ackMu, and those two run concurrently by design.
type breakerSet struct {
	cfg BreakerConfig

	mu   sync.Mutex
	bs   []breaker
	quar []bool // beginRound scratch; consumed under decideMu before the next round
}

func newBreakerSet(streams int, cfg BreakerConfig) *breakerSet {
	return &breakerSet{cfg: cfg.withDefaults(), bs: make([]breaker, streams)}
}

// beginRound advances every breaker by one round and returns the quarantine
// mask: quarantined[i] is true when stream i's packet (if any) must be
// excluded from this round's selection. pkts carries the round's packets
// (nil = idle stream). The mask is scratch owned by the set, valid until the
// next beginRound — callers (Decide, serialized) must not retain it.
func (s *breakerSet) beginRound(pkts []*codec.Packet) []bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cap(s.quar) < len(s.bs) {
		s.quar = make([]bool, len(s.bs))
	}
	quarantined := s.quar[:len(s.bs)]
	for i := range quarantined {
		quarantined[i] = false
	}
	for i := range s.bs {
		b := &s.bs[i]
		if i < len(pkts) && pkts[i] != nil {
			b.gap = 0
		} else {
			b.gap++
			if b.state == BreakerClosed && s.cfg.GapThreshold >= 0 && b.gap > s.cfg.GapThreshold {
				s.open(b, true)
			}
		}
		if b.state == BreakerOpen {
			b.snapshot.QuarantinedRounds++
			b.openLeft--
			if b.openLeft <= 0 {
				b.state = BreakerHalfOpen
			} else {
				quarantined[i] = true
			}
		}
	}
	return quarantined
}

// open transitions a breaker to open and starts its cooldown. gapCaused
// marks feedback-gap opens in the counters. Callers hold s.mu.
func (s *breakerSet) open(b *breaker, gapCaused bool) {
	if b.cooldown == 0 {
		b.cooldown = s.cfg.Cooldown
	}
	b.state = BreakerOpen
	b.openLeft = b.cooldown
	b.fails = 0
	b.snapshot.Opens++
	if gapCaused {
		b.snapshot.GapOpens++
	}
}

// outcome folds one decode outcome for stream i into its breaker.
func (s *breakerSet) outcome(i int, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.bs) {
		return
	}
	b := &s.bs[i]
	if failed {
		switch b.state {
		case BreakerHalfOpen:
			// Failed probe: reopen with doubled cooldown.
			b.cooldown *= 2
			if b.cooldown > s.cfg.MaxCooldown {
				b.cooldown = s.cfg.MaxCooldown
			}
			s.open(b, false)
			b.snapshot.Reopens++
		case BreakerClosed:
			b.fails++
			if b.fails >= s.cfg.FailureThreshold {
				s.open(b, false)
			}
		}
		b.snapshot.ConsecutiveFails = b.fails
		return
	}
	// Success.
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.cooldown = 0
		b.snapshot.Recoveries++
	case BreakerClosed:
		b.fails = 0
	}
	b.snapshot.ConsecutiveFails = b.fails
}

// snapshots returns every stream's breaker snapshot.
func (s *breakerSet) snapshots() []BreakerSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BreakerSnapshot, len(s.bs))
	for i := range s.bs {
		out[i] = s.bs[i].snapshot
		out[i].State = s.bs[i].state
		out[i].ConsecutiveFails = s.bs[i].fails
	}
	return out
}
