package core

import (
	"testing"
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/knapsack"
	"packetgame/internal/metrics"
	"packetgame/internal/overload"
	"packetgame/internal/predictor"
)

func overloadStreams(m int, seed int64) []*codec.Stream {
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(codec.SceneConfig{BaseActivity: 0.5},
			codec.EncoderConfig{StreamID: i, GOPSize: 5}, seed+int64(i))
	}
	return streams
}

func nextRound(streams []*codec.Stream) []*codec.Packet {
	pkts := make([]*codec.Packet, len(streams))
	for i, s := range streams {
		pkts[i] = s.Next()
	}
	return pkts
}

func TestGatePriorityValidation(t *testing.T) {
	if _, err := NewGate(Config{Streams: 4, Budget: 2, UseTemporal: true,
		Priorities: []uint8{0, 1}}); err == nil {
		t.Fatal("length-mismatched Priorities accepted")
	}
	if _, err := NewGate(Config{Streams: 4, Budget: 2, UseTemporal: true,
		Priorities: []uint8{0, 1, 2, 3}, Selector: &knapsack.RoundRobin{}}); err == nil {
		t.Fatal("Priorities combined with a custom Selector accepted")
	}
	g, err := NewGate(Config{Streams: 4, Budget: 2, UseTemporal: true,
		Priorities: []uint8{0, 1, 2, 3}})
	if err != nil {
		t.Fatalf("valid tiered gate rejected: %v", err)
	}
	if g.numTiers != 4 {
		t.Fatalf("numTiers = %d, want 4", g.numTiers)
	}
}

// driveMode steps a fresh governor down the ladder to the target mode.
func driveMode(t *testing.T, gov *overload.Governor, target overload.Mode) {
	t.Helper()
	slo := gov.Config().SLO
	for i := 0; i < 3*int(target)+3; i++ {
		if _, m := gov.Plan(); m == target {
			return
		}
		gov.Observe(3*slo, 0)
	}
	if _, m := gov.Plan(); m != target {
		t.Fatalf("could not drive governor to %v, stuck at %v", target, m)
	}
}

// TestGateBrownoutAdmission checks the admission rule of each ladder rung:
// keyframe-only selects only independent pictures, shed additionally only
// tier-0 streams, and both still produce work when affordable.
func TestGateBrownoutAdmission(t *testing.T) {
	for _, target := range []overload.Mode{overload.ModeKeyframeOnly, overload.ModeShed} {
		t.Run(target.String(), func(t *testing.T) {
			var stats metrics.OverloadStats
			gov, err := overload.NewGovernor(overload.Config{
				SLO: 10 * time.Millisecond, Budget: 1000, EnterAfter: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			driveMode(t, gov, target)
			const m = 8
			g, err := NewGate(Config{
				Streams: m, Budget: 1000, UseTemporal: true,
				Priorities: []uint8{0, 0, 1, 1, 2, 2, 3, 3},
				Governor:   gov, Overload: &stats,
			})
			if err != nil {
				t.Fatal(err)
			}
			streams := overloadStreams(m, 11)
			necessary := make([]bool, m)
			sawP, selRounds := false, 0
			for r := 0; r < 20; r++ {
				pkts := nextRound(streams)
				for _, p := range pkts {
					if p != nil && !p.Type.Independent() {
						sawP = true
					}
				}
				sel, err := g.Decide(pkts)
				if err != nil {
					t.Fatal(err)
				}
				for _, i := range sel {
					if !pkts[i].Type.Independent() {
						t.Fatalf("round %d: %v admitted predicted picture from stream %d", r, target, i)
					}
					if target == overload.ModeShed && g.tiers[i] != 0 {
						t.Fatalf("round %d: shed mode admitted tier-%d stream %d", r, g.tiers[i], i)
					}
				}
				if len(sel) > 0 {
					selRounds++
				}
				if err := g.Feedback(sel, necessary[:len(sel)]); err != nil {
					t.Fatal(err)
				}
			}
			if !sawP {
				t.Fatal("test never produced a predicted picture; admission rule untested")
			}
			if selRounds == 0 {
				t.Fatalf("%v mode never selected anything despite an ample budget", target)
			}
			if stats.Snapshot().Shed == 0 {
				t.Fatalf("%v mode shed nothing despite predicted pictures arriving", target)
			}
		})
	}
}

// TestGateTemporalOnlyModeSkipsPredictor: a predictor-armed gate forced to
// the temporal-only rung must make the same decisions as a gate that has no
// predictor at all.
func TestGateTemporalOnlyModeSkipsPredictor(t *testing.T) {
	// MinBudget pins B_eff at the nominal budget so the mode's effect is
	// isolated from the AIMD cuts driveMode's pressure rounds would cause.
	gov, err := overload.NewGovernor(overload.Config{
		SLO: 10 * time.Millisecond, Budget: 6, MinBudget: 6,
		EnterAfter: 1, ExitAfter: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	driveMode(t, gov, overload.ModeTemporalOnly)
	const m = 12
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	withPred, err := NewGate(Config{
		Streams: m, Budget: 6, Predictor: p, UseTemporal: true, Governor: gov,
	})
	if err != nil {
		t.Fatal(err)
	}
	noPred, err := NewGate(Config{Streams: m, Budget: 6, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := overloadStreams(m, 23), overloadStreams(m, 23)
	necessary := make([]bool, m)
	for r := 0; r < 30; r++ {
		selA, err := withPred.Decide(nextRound(sa))
		if err != nil {
			t.Fatal(err)
		}
		selB, err := noPred.Decide(nextRound(sb))
		if err != nil {
			t.Fatal(err)
		}
		if len(selA) != len(selB) {
			t.Fatalf("round %d: temporal-only gate selected %v, predictor-free gate %v", r, selA, selB)
		}
		for k := range selA {
			if selA[k] != selB[k] {
				t.Fatalf("round %d: temporal-only gate selected %v, predictor-free gate %v", r, selA, selB)
			}
		}
		for k := range necessary[:len(selA)] {
			necessary[k] = (r+selA[k])%3 == 0
		}
		if err := withPred.Feedback(selA, necessary[:len(selA)]); err != nil {
			t.Fatal(err)
		}
		if err := noPred.Feedback(selB, necessary[:len(selB)]); err != nil {
			t.Fatal(err)
		}
	}
}

// exploitSnapshot reads every stream's current temporal exploitation term.
func exploitSnapshot(g *Gate) []float64 {
	out := make([]float64, g.cfg.Streams)
	for _, sh := range g.shards.shards {
		if sh.est == nil {
			continue
		}
		sh.mu.Lock()
		for li, i := range sh.ids {
			out[i] = sh.est.Exploit(li)
		}
		sh.mu.Unlock()
	}
	return out
}

// TestDeferredFeedbackDoesNotPoisonEstimator is the load-shedding purity
// property: a round whose selections are all settled as Deferred must (a)
// leave every stream's exploitation term exactly where it was — deferred
// slots are recorded as unselected, only ages advance — and (b) make the
// accompanying necessary labels unobservable: two gates fed opposite labels
// under an all-deferred mask stay bit-identical forever after.
func TestDeferredFeedbackDoesNotPoisonEstimator(t *testing.T) {
	// Window outlasts the test so the UCB ring never evicts: any change to
	// an exploitation term can then only come from the round being pushed,
	// which is exactly the contribution deferred slots must not make.
	mk := func() (*Gate, []*codec.Stream) {
		g, err := NewGate(Config{Streams: 16, Budget: 5, Window: 64, UseTemporal: true})
		if err != nil {
			t.Fatal(err)
		}
		return g, overloadStreams(16, 37)
	}
	a, sa := mk()
	b, sb := mk()
	necessary := make([]bool, 16)
	step := func(g *Gate, streams []*codec.Stream, r int, defAll, necVal bool) []int {
		t.Helper()
		sel, err := g.Decide(nextRound(streams))
		if err != nil {
			t.Fatal(err)
		}
		var deferred []bool
		for k := range sel {
			necessary[k] = (r+sel[k])%2 == 0
		}
		if defAll {
			deferred = make([]bool, len(sel))
			for k := range deferred {
				deferred[k] = true
				necessary[k] = necVal
			}
		}
		if err := g.FeedbackFull(sel, necessary[:len(sel)], nil, deferred); err != nil {
			t.Fatal(err)
		}
		return sel
	}
	for r := 0; r < 10; r++ {
		step(a, sa, r, false, false)
		step(b, sb, r, false, false)
	}

	before := exploitSnapshot(a)
	selA := step(a, sa, 10, true, true) // all deferred, labels all true
	step(b, sb, 10, true, false)        // all deferred, labels all false
	if len(selA) == 0 {
		t.Fatal("deferred round selected nothing; property untested")
	}
	after := exploitSnapshot(a)
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("stream %d exploitation term mutated by deferred feedback: %v → %v", i, before[i], after[i])
		}
	}
	for r := 11; r < 40; r++ {
		sa2 := step(a, sa, r, false, false)
		sb2 := step(b, sb, r, false, false)
		if len(sa2) != len(sb2) {
			t.Fatalf("round %d: gates diverged after deferred labels: %v vs %v", r, sa2, sb2)
		}
		for k := range sa2 {
			if sa2[k] != sb2[k] {
				t.Fatalf("round %d: gates diverged after deferred labels: %v vs %v", r, sa2, sb2)
			}
		}
	}
}

// TestDeferredFeedbackSkipsTrainerAndBreakers: deferred slots never reach
// the online-training buffer, and never drive breaker outcomes even when
// flagged failed.
func TestDeferredFeedbackSkipsTrainerAndBreakers(t *testing.T) {
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const m = 8
	g, err := NewGate(Config{
		Streams: m, Budget: 4, Predictor: p, UseTemporal: true, TaskIndex: 0,
		OnlineLR: 0.01, OnlineBatch: 64,
		Breaker: &BreakerConfig{FailureThreshold: 2, Cooldown: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := overloadStreams(m, 53)
	necessary := make([]bool, m)
	failed := make([]bool, m)
	for k := range failed {
		failed[k] = true
	}
	for r := 0; r < 12; r++ {
		sel, err := g.Decide(nextRound(streams))
		if err != nil {
			t.Fatal(err)
		}
		deferred := make([]bool, len(sel))
		for k := range deferred {
			deferred[k] = true
		}
		if err := g.FeedbackFull(sel, necessary[:len(sel)], failed[:len(sel)], deferred); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(g.buffer); n != 0 {
		t.Fatalf("deferred slots buffered %d training samples, want 0", n)
	}
	for i, b := range g.Breakers() {
		if b.State != BreakerClosed || b.Opens != 0 || b.ConsecutiveFails != 0 {
			t.Fatalf("stream %d breaker tripped by deferred decodes: %+v", i, b)
		}
	}
}

// TestGovernedDecideRoundAllocCeiling is the overload analog of
// TestDecideRoundAllocCeiling: a steady-state governed round — tiered
// solve, governor Plan/Observe, deferred feedback slots — must stay under
// the same small allocation ceiling.
func TestGovernedDecideRoundAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are meaningless")
	}
	const m = 128
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var stats metrics.OverloadStats
	gov, err := overload.NewGovernor(overload.Config{
		SLO: 100 * time.Millisecond, Budget: float64(m) / 25, Stats: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	prios := make([]uint8, m)
	for i := range prios {
		prios[i] = uint8(i % 4)
	}
	g, err := NewGate(Config{
		Streams: m, Budget: float64(m) / 25, Predictor: p, UseTemporal: true,
		Priorities: prios, Governor: gov, Overload: &stats,
	})
	if err != nil {
		t.Fatal(err)
	}
	streams := overloadStreams(m, 71)
	const rounds = 32
	pre := make([][]*codec.Packet, rounds)
	for r := range pre {
		pre[r] = nextRound(streams)
	}
	var sel []int
	necessary := make([]bool, m)
	deferred := make([]bool, m)
	round := 0
	run := func() {
		var err error
		sel, err = g.DecideAppend(pre[round%rounds], sel[:0])
		if err != nil {
			t.Fatal(err)
		}
		for k := range sel {
			deferred[k] = k&3 == 0
		}
		if err := g.FeedbackFull(sel, necessary[:len(sel)], nil, deferred[:len(sel)]); err != nil {
			t.Fatal(err)
		}
		gov.Observe(20*time.Millisecond, len(sel))
		round++
	}
	for i := 0; i < 8; i++ {
		run()
	}
	allocs := testing.AllocsPerRun(24, run)
	const ceiling = 8
	if allocs > ceiling {
		t.Fatalf("steady-state governed round allocates %.1f times/op, ceiling %d", allocs, ceiling)
	}
}
