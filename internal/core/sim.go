package core

import (
	"fmt"

	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
)

// Simulation drives the full round-based ingest loop of the paper's
// formalization (§4.1): per round, one packet arrives per stream, the
// Decider gates them, selected packets are decoded and inferred, monitors
// produce redundancy feedback, and the feedback closes the round.
type Simulation struct {
	streams []*codec.Stream
	decider Decider
	task    infer.Task
	fleet   *infer.Fleet
	dec     *decode.Decoder
	// truth tracker: charges the real dependency-inclusive decode cost of
	// every selection, independent of what the policy believed it would
	// cost. Mispricing policies (the dependency-blind ablation) therefore
	// show their true spend in Result.CostSpent.
	costs    *decode.MultiTracker
	trueCost float64

	pkts     []*codec.Packet
	truth    []codec.Scene
	vals     []float64
	costsBuf []float64

	// Fast-slow path probing (§4.1): every probeEvery rounds the slow path
	// virtually decodes everything to measure how many necessary packets
	// the gate actually selected (online recall estimation, the LiveNet-
	// style complement to the selective feedback).
	probeEvery  int
	probeNeeded int64
	probeCaught int64
	probeRounds int64
}

// NewSimulation wires streams and a task; set the policy with SetDecider
// before Run (this two-step construction lets oracle baselines close over
// the simulation's ground truth via OracleValues).
func NewSimulation(streams []*codec.Stream, task infer.Task, cm decode.CostModel) *Simulation {
	return &Simulation{
		streams: streams,
		task:    task,
		fleet:   infer.NewFleet(task, len(streams)),
		dec:     decode.NewDecoder(cm),
		costs:   decode.NewMultiTracker(len(streams), cm),
		pkts:    make([]*codec.Packet, len(streams)),
		truth:   make([]codec.Scene, len(streams)),
		vals:    make([]float64, len(streams)),
	}
}

// SetDecider installs the gating policy.
func (s *Simulation) SetDecider(d Decider) { s.decider = d }

// SetProbeEvery enables the fast-slow path recall probe: every n rounds the
// slow path evaluates all streams against ground truth to estimate the
// gate's recall of necessary packets. 0 disables probing.
func (s *Simulation) SetProbeEvery(n int) { s.probeEvery = n }

// Fleet exposes the per-stream monitors.
func (s *Simulation) Fleet() *infer.Fleet { return s.fleet }

// Task returns the simulated inference task.
func (s *Simulation) Task() infer.Task { return s.task }

// OracleValues is a ValueFunc that scores each packet 1 if decoding it now
// would be a necessary inference given the stream's currently emitted
// result, and a small epsilon otherwise. Plugged into a BaselineGate with
// the greedy selector, it is the clairvoyant "Optimal" policy.
func (s *Simulation) OracleValues(pkts []*codec.Packet) []float64 {
	for i := range s.vals {
		s.vals[i] = 0
		if pkts[i] == nil {
			continue
		}
		cur := s.task.ResultOf(s.truth[i])
		prev, started := s.fleet.Stream(i).Emitted()
		if !started || s.task.Necessary(prev, cur) {
			s.vals[i] = 1
		} else {
			s.vals[i] = 1e-6
		}
	}
	return s.vals
}

// Result summarizes a simulation run. SegmentAccuracy entries are balanced
// accuracies per time segment.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int64
	// Packets counts packets observed; Decoded counts packets decoded.
	Packets, Decoded int64
	// NecessaryDecoded counts decoded packets whose inference was
	// necessary (the paper's objective, Eq. 1).
	NecessaryDecoded int64
	// CostSpent is the total decode cost in decode units, including the
	// reference chains of packets whose dependencies were skipped (Fig 6):
	// the true spend, whatever costs the policy assumed.
	CostSpent float64
	// Accuracy is the mean emitted-result accuracy across streams.
	Accuracy float64
	// BalancedAccuracy averages accuracy over event-positive and
	// event-negative rounds, so rare-event tasks cannot score well by
	// never decoding (the 90%-target experiments use this).
	BalancedAccuracy float64
	// FilterRate is 1 − Decoded/Packets.
	FilterRate float64
	// SegmentAccuracy holds per-time-segment accuracy when Run was asked
	// for segments (Fig 10).
	SegmentAccuracy []float64
	// ProbedRecall is the slow path's estimate of the fraction of
	// necessary packets the gate decoded, over the probed rounds
	// (-1 when probing is off or nothing was necessary).
	ProbedRecall float64
	// ProbeRounds counts the rounds the slow path evaluated.
	ProbeRounds int64
}

// Run executes the given number of rounds, optionally splitting accuracy
// accounting into segments (pass 0 for none).
func (s *Simulation) Run(rounds, segments int) (Result, error) {
	if s.decider == nil {
		return Result{}, fmt.Errorf("core: simulation has no decider")
	}
	if rounds <= 0 {
		return Result{}, fmt.Errorf("core: rounds must be positive, got %d", rounds)
	}
	var res Result
	var segNR, segNC, segPR, segPC int64
	segEvery := 0
	if segments > 0 {
		segEvery = rounds / segments
		if segEvery == 0 {
			segEvery = 1
		}
	}
	var necessary []bool
	for t := 0; t < rounds; t++ {
		for i, st := range s.streams {
			s.pkts[i] = st.Next()
			s.truth[i] = st.LastScene
		}
		// Slow-path probe: evaluate necessity for every stream before the
		// decisions are applied.
		probing := s.probeEvery > 0 && t%s.probeEvery == 0
		var probeNeed []bool
		if probing {
			probeNeed = make([]bool, len(s.streams))
			for i := range s.streams {
				cur := s.task.ResultOf(s.truth[i])
				prev, started := s.fleet.Stream(i).Emitted()
				probeNeed[i] = !started || s.task.Necessary(prev, cur)
			}
		}
		sel, err := s.decider.Decide(s.pkts)
		if err != nil {
			return res, fmt.Errorf("core: round %d: %w", t, err)
		}
		necessary = necessary[:0]
		isSel := make(map[int]bool, len(sel))
		selFlags := make([]bool, len(s.streams))
		for _, i := range sel {
			selFlags[i] = true
		}
		trueCosts, err := s.costs.CostsAppend(s.costsBuf[:0], s.pkts)
		s.costsBuf = trueCosts
		if err != nil {
			return res, fmt.Errorf("core: round %d cost tracking: %w", t, err)
		}
		for _, i := range sel {
			s.trueCost += trueCosts[i]
		}
		if err := s.costs.Commit(s.pkts, selFlags); err != nil {
			return res, fmt.Errorf("core: round %d cost tracking: %w", t, err)
		}
		for _, i := range sel {
			isSel[i] = true
			frame, err := s.dec.Decode(s.pkts[i])
			if err != nil {
				return res, fmt.Errorf("core: round %d stream %d: %w", t, i, err)
			}
			nec := s.fleet.Stream(i).ObserveDecoded(s.truth[i], frame.Scene)
			necessary = append(necessary, nec)
			if nec {
				res.NecessaryDecoded++
			}
		}
		for i := range s.streams {
			if !isSel[i] {
				s.fleet.Stream(i).ObserveSkipped(s.truth[i])
			}
		}
		if probing {
			s.probeRounds++
			for i, need := range probeNeed {
				if need {
					s.probeNeeded++
					if isSel[i] {
						s.probeCaught++
					}
				}
			}
		}
		if err := s.decider.Feedback(sel, necessary); err != nil {
			return res, fmt.Errorf("core: round %d feedback: %w", t, err)
		}
		res.Rounds++
		res.Packets += int64(len(s.streams))
		res.Decoded += int64(len(sel))

		if segEvery > 0 && (t+1)%segEvery == 0 {
			nr, nc, pr, pc := s.fleet.ClassTotals()
			dnr, dnc, dpr, dpc := nr-segNR, nc-segNC, pr-segPR, pc-segPC
			segNR, segNC, segPR, segPC = nr, nc, pr, pc
			var sum float64
			classes := 0
			if dnr > 0 {
				sum += float64(dnc) / float64(dnr)
				classes++
			}
			if dpr > 0 {
				sum += float64(dpc) / float64(dpr)
				classes++
			}
			if classes > 0 {
				res.SegmentAccuracy = append(res.SegmentAccuracy, sum/float64(classes))
			}
		}
	}
	res.CostSpent = s.trueCost
	res.Accuracy = s.fleet.Accuracy()
	res.BalancedAccuracy = s.fleet.BalancedAccuracy()
	if res.Packets > 0 {
		res.FilterRate = 1 - float64(res.Decoded)/float64(res.Packets)
	}
	res.ProbedRecall = -1
	res.ProbeRounds = s.probeRounds
	if s.probeNeeded > 0 {
		res.ProbedRecall = float64(s.probeCaught) / float64(s.probeNeeded)
	}
	return res, nil
}
