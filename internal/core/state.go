package core

import (
	"fmt"

	"packetgame/internal/bandit"
	"packetgame/internal/decode"
	"packetgame/internal/predictor"
)

// BreakerStreamState is one stream's portable circuit-breaker phase: the
// state machine fields plus the lifetime counters. The breaker is brought
// current (fast-forwarded) to the gate clock before export, so asOf is
// implicitly the exporting gate's round and is not part of the state.
type BreakerStreamState struct {
	State    BreakerState
	Fails    int
	Cooldown int
	OpenLeft int
	LastPkt  int64
	Snapshot BreakerSnapshot
}

// StreamState is one stream's complete portable gate state: everything a
// peer gate needs to continue the stream's decision history bit-identically.
// It is the unit of state transfer when a stream migrates between workers in
// a gating cluster.
type StreamState struct {
	// Round is the exporting gate's completed-round clock. An import
	// requires the importing gate's clock to match.
	Round int64
	// Temporal is the UCB estimator's window slice for the stream.
	Temporal bandit.StreamState
	// Row is the predictor feature-store row (windows, epoch, cursors).
	Row predictor.RowState
	// Tracker is the dependency-cost tracker state.
	Tracker decode.TrackerState
	// Breaker is the circuit-breaker phase; HasBreaker records whether the
	// exporting gate had breakers armed.
	HasBreaker bool
	Breaker    BreakerStreamState
	// WarmTarget, when non-zero, marks a stream still in the degraded
	// "temporal-only until warm" mode after a fresh (state-lost) import:
	// the stream scores without the contextual predictor until its feature
	// store has absorbed WarmTarget pushes.
	WarmTarget int64
}

func (s *breakerSet) exportStream(i int) BreakerStreamState {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &s.bs[i]
	s.fastForward(b, s.round)
	return BreakerStreamState{
		State:    b.state,
		Fails:    b.fails,
		Cooldown: b.cooldown,
		OpenLeft: b.openLeft,
		LastPkt:  b.lastPkt,
		Snapshot: b.snapshot,
	}
}

func (s *breakerSet) importStream(i int, st BreakerStreamState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bs[i] = breaker{
		state:    st.State,
		fails:    st.Fails,
		cooldown: st.Cooldown,
		openLeft: st.OpenLeft,
		lastPkt:  st.LastPkt,
		asOf:     s.round,
		snapshot: st.Snapshot,
	}
}

// resetStream clears stream i's breaker. With fresh set, the packet clock is
// pinned to the current round so a state-lost stream does not instantly
// gap-open against a zero lastPkt it never had a chance to refresh.
func (s *breakerSet) resetStream(i int, fresh bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bs[i] = breaker{}
	if fresh {
		s.bs[i].lastPkt = s.round
		s.bs[i].asOf = s.round
	}
}

// ClockRound returns the gate's completed-round clock (rounds decided so
// far). Stream state export/import is only meaningful between rounds, with
// no round pending feedback.
func (g *Gate) ClockRound() int64 {
	g.pendMu.Lock()
	defer g.pendMu.Unlock()
	return g.stats.Rounds
}

// lockQuiescent takes the decide and ack locks and verifies no round is
// awaiting feedback — the only window in which per-stream state is coherent
// enough to move. The returned func releases the locks.
func (g *Gate) lockQuiescent(op string) (func(), error) {
	g.decideMu.Lock()
	g.ackMu.Lock()
	g.pendMu.Lock()
	pending := len(g.pending) - g.pendHead
	g.pendMu.Unlock()
	if pending != 0 {
		g.ackMu.Unlock()
		g.decideMu.Unlock()
		return nil, fmt.Errorf("core: %s with %d rounds pending feedback", op, pending)
	}
	return func() {
		g.ackMu.Unlock()
		g.decideMu.Unlock()
	}, nil
}

// ExportStream extracts stream i's complete gate state (estimator window,
// feature row, dependency tracker, breaker phase, warm-up mode). The gate is
// unchanged. It must be called between rounds (no pending feedback).
func (g *Gate) ExportStream(i int) (StreamState, error) {
	if i < 0 || i >= g.cfg.Streams {
		return StreamState{}, fmt.Errorf("core: export stream %d out of range [0,%d)", i, g.cfg.Streams)
	}
	unlock, err := g.lockQuiescent("ExportStream")
	if err != nil {
		return StreamState{}, err
	}
	defer unlock()
	st := StreamState{Round: g.stats.Rounds}
	sh, li := g.shards.shardOf(i)
	sh.mu.Lock()
	if sh.est != nil {
		st.Temporal, err = sh.est.ExportStream(li)
	}
	if err == nil {
		st.Row, err = sh.store.ExportRow(li)
	}
	if err == nil {
		st.Tracker = sh.trackers[li].Export()
	}
	sh.mu.Unlock()
	if err != nil {
		return StreamState{}, err
	}
	if g.breakers != nil {
		st.HasBreaker = true
		st.Breaker = g.breakers.exportStream(i)
	}
	if g.warmTarget != nil {
		st.WarmTarget = g.warmTarget[i]
	}
	return st, nil
}

// RetireStream erases stream i's per-stream state, returning its slot to the
// fresh (never-seen) condition: the stream has migrated away and this gate
// will no longer receive its packets. Must be called between rounds.
func (g *Gate) RetireStream(i int) error {
	if i < 0 || i >= g.cfg.Streams {
		return fmt.Errorf("core: retire stream %d out of range [0,%d)", i, g.cfg.Streams)
	}
	unlock, err := g.lockQuiescent("RetireStream")
	if err != nil {
		return err
	}
	defer unlock()
	return g.resetStreamLocked(i, false)
}

// resetStreamLocked clears stream i's state under the quiescent locks.
func (g *Gate) resetStreamLocked(i int, fresh bool) error {
	sh, li := g.shards.shardOf(i)
	sh.mu.Lock()
	var err error
	if sh.est != nil {
		err = sh.est.RemoveStream(li)
	}
	if err == nil {
		err = sh.store.ResetRow(li)
	}
	if err == nil {
		sh.trackers[li].Reset()
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if g.breakers != nil {
		g.breakers.resetStream(i, fresh)
	}
	if g.cacheValid != nil {
		g.cacheValid[i] = false
	}
	if g.warmTarget != nil {
		g.warmTarget[i] = 0
	}
	return nil
}

// ImportStream installs an exported state into stream i's slot, which is
// reset first. The exporting gate's clock must match this gate's clock: the
// estimator window rounds, breaker phase, and feature epochs are all
// round-anchored. After a successful import the stream's decisions continue
// bit-identically to a gate that had owned it all along.
func (g *Gate) ImportStream(i int, st StreamState) error {
	if i < 0 || i >= g.cfg.Streams {
		return fmt.Errorf("core: import stream %d out of range [0,%d)", i, g.cfg.Streams)
	}
	unlock, err := g.lockQuiescent("ImportStream")
	if err != nil {
		return err
	}
	defer unlock()
	if st.Round != g.stats.Rounds {
		return fmt.Errorf("core: import stream %d at round %d into gate at round %d", i, st.Round, g.stats.Rounds)
	}
	if err := g.resetStreamLocked(i, false); err != nil {
		return err
	}
	sh, li := g.shards.shardOf(i)
	sh.mu.Lock()
	if sh.est != nil {
		err = sh.est.ImportStream(li, st.Temporal)
	}
	if err == nil {
		err = sh.store.ImportRow(li, st.Row)
	}
	if err == nil {
		sh.trackers[li].Import(st.Tracker)
	}
	sh.mu.Unlock()
	if err != nil {
		return err
	}
	if g.breakers != nil && st.HasBreaker {
		g.breakers.importStream(i, st.Breaker)
	}
	if st.WarmTarget != 0 {
		g.ensureWarmTargets()
		g.warmTarget[i] = st.WarmTarget
	}
	return nil
}

// ImportFreshStream adopts stream i with no transferred state — its donor
// crashed or the state-transfer was dropped. The slot is reset, the breaker
// packet clock is pinned to the current round (no instant gap-open), and the
// stream enters the degraded temporal-only mode until its feature windows
// refill (Window pushes): the contextual predictor never scores cold
// windows, and the fresh estimator honestly reports "no evidence" (zero
// exploitation, full exploration bonus) rather than fabricating feedback.
func (g *Gate) ImportFreshStream(i int) error {
	if i < 0 || i >= g.cfg.Streams {
		return fmt.Errorf("core: fresh-import stream %d out of range [0,%d)", i, g.cfg.Streams)
	}
	unlock, err := g.lockQuiescent("ImportFreshStream")
	if err != nil {
		return err
	}
	defer unlock()
	if err := g.resetStreamLocked(i, true); err != nil {
		return err
	}
	if g.cfg.Predictor != nil {
		g.ensureWarmTargets()
		g.warmTarget[i] = int64(g.cfg.Window)
	}
	return nil
}

func (g *Gate) ensureWarmTargets() {
	if g.warmTarget == nil {
		g.warmTarget = make([]int64, g.cfg.Streams)
	}
}

// Warming reports whether stream i is in the post-fresh-import degraded
// mode (scored temporal-only until its feature windows refill).
func (g *Gate) Warming(i int) bool {
	g.decideMu.Lock()
	defer g.decideMu.Unlock()
	return g.warmTarget != nil && g.warmTarget[i] > 0
}

// AdvanceTo fast-forwards a freshly built gate's clock to absolute round T,
// as if T empty rounds had been decided and acked: the estimator clocks, the
// breaker round, and the round counter all land on T. A worker joining a
// cluster mid-run uses this to align with the cluster clock before importing
// stream states. Only valid on a gate that has decided no rounds.
func (g *Gate) AdvanceTo(T int64) error {
	unlock, err := g.lockQuiescent("AdvanceTo")
	if err != nil {
		return err
	}
	defer unlock()
	if g.stats.Rounds != 0 {
		return fmt.Errorf("core: AdvanceTo on a gate that already decided %d rounds", g.stats.Rounds)
	}
	if T < 0 {
		return fmt.Errorf("core: AdvanceTo(%d): negative round", T)
	}
	for _, sh := range g.shards.shards {
		sh.mu.Lock()
		if sh.est != nil {
			err = sh.est.AdvanceTo(T)
		}
		sh.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if g.breakers != nil {
		g.breakers.mu.Lock()
		g.breakers.round = T
		g.breakers.mu.Unlock()
	}
	g.pendMu.Lock()
	g.stats.Rounds = T
	g.pendMu.Unlock()
	return nil
}
