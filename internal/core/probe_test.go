package core

import (
	"testing"

	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/knapsack"
)

func TestProbeDisabledByDefault(t *testing.T) {
	sim := NewSimulation(mkStreams(4, 1), infer.AnomalyDetection{}, decode.DefaultCosts)
	g, err := NewGate(Config{Streams: 4, Budget: 3, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetDecider(g)
	res, err := sim.Run(50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedRecall != -1 || res.ProbeRounds != 0 {
		t.Errorf("probe stats without probing: %v / %d", res.ProbedRecall, res.ProbeRounds)
	}
}

func TestProbeCountsRounds(t *testing.T) {
	sim := NewSimulation(mkStreams(4, 2), infer.AnomalyDetection{}, decode.DefaultCosts)
	g, err := NewGate(Config{Streams: 4, Budget: 3, UseTemporal: true})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetDecider(g)
	sim.SetProbeEvery(10)
	res, err := sim.Run(100, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbeRounds != 10 {
		t.Errorf("probe rounds = %d, want 10", res.ProbeRounds)
	}
	if res.ProbedRecall < 0 || res.ProbedRecall > 1 {
		t.Errorf("probed recall = %v", res.ProbedRecall)
	}
}

func TestProbeRecallPerfectWithUnlimitedBudget(t *testing.T) {
	// With budget to decode everything, recall must be 1: every necessary
	// packet is decoded.
	sim := NewSimulation(mkStreams(4, 3), infer.PersonCounting{}, decode.DefaultCosts)
	sim.SetDecider(NewBaselineGate(4, decode.DefaultCosts, &knapsack.Greedy{}, nil, 1e9))
	sim.SetProbeEvery(5)
	res, err := sim.Run(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProbedRecall != 1 {
		t.Errorf("recall with unlimited budget = %v, want 1", res.ProbedRecall)
	}
}

func TestProbeOracleOutperformsRandomRecall(t *testing.T) {
	run := func(mk func(sim *Simulation) Decider) float64 {
		sim := NewSimulation(mkStreams(12, 4), infer.AnomalyDetection{}, decode.DefaultCosts)
		sim.SetDecider(mk(sim))
		sim.SetProbeEvery(3)
		res, err := sim.Run(900, 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.ProbedRecall
	}
	oracle := run(func(sim *Simulation) Decider {
		return NewBaselineGate(12, decode.DefaultCosts, &knapsack.Greedy{}, sim.OracleValues, 4)
	})
	random := run(func(sim *Simulation) Decider {
		return NewBaselineGate(12, decode.DefaultCosts, knapsack.NewRandom(1), nil, 4)
	})
	if oracle <= random {
		t.Errorf("oracle recall %.3f must beat random %.3f", oracle, random)
	}
}
