package core

import (
	"math/rand"
	"reflect"
	"testing"

	"packetgame/internal/codec"
)

// driveStateRounds advances the gate through deterministic rounds with mixed
// idle streams, GOP structure, decode failures, and 0/1 feedback.
func driveStateRounds(t *testing.T, g *Gate, m, rounds int, seed int64, gopIdx []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pkts := make([]*codec.Packet, m)
	for r := 0; r < rounds; r++ {
		for i := range pkts {
			pkts[i] = nil
			if rng.Float64() < 0.25 {
				continue
			}
			p := &codec.Packet{StreamID: i, GOPSize: 8, GOPIndex: gopIdx[i], Size: 200 + rng.Intn(4000)}
			if gopIdx[i] == 0 {
				p.Type = codec.PictureI
			} else {
				p.Type = codec.PictureP
			}
			gopIdx[i] = (gopIdx[i] + 1) % 8
			pkts[i] = p
		}
		sel, err := g.Decide(pkts)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		necessary := make([]bool, len(sel))
		failed := make([]bool, len(sel))
		for k, i := range sel {
			necessary[k] = (r+i)%3 != 0
			failed[k] = (r+i)%17 == 0
		}
		if err := g.FeedbackExt(sel, necessary, failed); err != nil {
			t.Fatalf("round %d feedback: %v", r, err)
		}
	}
}

func stateTestGate(t *testing.T, m int, withPred bool) *Gate {
	t.Helper()
	cfg := Config{
		Streams: m, Window: 4, Budget: 9, UseTemporal: true, Shards: 3,
		Breaker: &BreakerConfig{FailureThreshold: 2, GapThreshold: 6, Cooldown: 4},
	}
	if withPred {
		cfg.Predictor = tinyPredictor(t, 1, true)
	}
	g, err := NewGate(cfg)
	if err != nil {
		t.Fatalf("NewGate: %v", err)
	}
	return g
}

// TestStreamStateMigrationEquivalence is the lossless-migration contract:
// after N rounds, exporting every stream from a donor gate into a fresh gate
// (clock-aligned via AdvanceTo) must (a) re-export byte-identical states and
// (b) leave the recipient making bit-identical decisions to the donor for
// all subsequent rounds.
func TestStreamStateMigrationEquivalence(t *testing.T) {
	for _, withPred := range []bool{false, true} {
		name := "temporal-only"
		if withPred {
			name = "with-predictor"
		}
		t.Run(name, func(t *testing.T) {
			const m, warm, tail = 24, 60, 200
			donor := stateTestGate(t, m, withPred)
			gop := make([]int, m)
			driveStateRounds(t, donor, m, warm, 77, gop)

			recip := stateTestGate(t, m, withPred)
			if err := recip.AdvanceTo(donor.ClockRound()); err != nil {
				t.Fatalf("AdvanceTo: %v", err)
			}
			for i := 0; i < m; i++ {
				st, err := donor.ExportStream(i)
				if err != nil {
					t.Fatalf("export %d: %v", i, err)
				}
				if err := recip.ImportStream(i, st); err != nil {
					t.Fatalf("import %d: %v", i, err)
				}
				back, err := recip.ExportStream(i)
				if err != nil {
					t.Fatalf("re-export %d: %v", i, err)
				}
				if !reflect.DeepEqual(st, back) {
					t.Fatalf("stream %d state not preserved\nexported: %+v\nreimport: %+v", i, st, back)
				}
			}

			// Both gates continue from identical state: same packets, same
			// feedback, identical selections every round.
			rng := rand.New(rand.NewSource(99))
			pkts := make([]*codec.Packet, m)
			gop2 := append([]int(nil), gop...)
			for r := 0; r < tail; r++ {
				for i := range pkts {
					pkts[i] = nil
					if rng.Float64() < 0.25 {
						continue
					}
					p := &codec.Packet{StreamID: i, GOPSize: 8, GOPIndex: gop2[i], Size: 200 + rng.Intn(4000)}
					if gop2[i] == 0 {
						p.Type = codec.PictureI
					} else {
						p.Type = codec.PictureP
					}
					gop2[i] = (gop2[i] + 1) % 8
					pkts[i] = p
				}
				selD, err1 := donor.Decide(pkts)
				selR, err2 := recip.Decide(pkts)
				if err1 != nil || err2 != nil {
					t.Fatalf("tail round %d: donor=%v recipient=%v", r, err1, err2)
				}
				if !reflect.DeepEqual(selD, selR) {
					t.Fatalf("tail round %d: selections diverged\ndonor:     %v\nrecipient: %v", r, selD, selR)
				}
				necessary := make([]bool, len(selD))
				failed := make([]bool, len(selD))
				for k, i := range selD {
					necessary[k] = (r+i)%3 != 0
					failed[k] = (r+i)%23 == 0
				}
				if err := donor.FeedbackExt(selD, necessary, failed); err != nil {
					t.Fatalf("donor feedback %d: %v", r, err)
				}
				if err := recip.FeedbackExt(selR, necessary, failed); err != nil {
					t.Fatalf("recipient feedback %d: %v", r, err)
				}
			}
		})
	}
}

// TestImportFreshStream verifies the fail-safe path for lost transfers: the
// adopted stream starts from honest zero state (no fabricated feedback), is
// scored temporal-only until its feature windows refill, and its breaker
// does not instantly gap-open against a packet clock it never had.
func TestImportFreshStream(t *testing.T) {
	const m = 8
	g := stateTestGate(t, m, true)
	gop := make([]int, m)
	driveStateRounds(t, g, m, 40, 5, gop)

	const victim = 3
	if err := g.ImportFreshStream(victim); err != nil {
		t.Fatalf("ImportFreshStream: %v", err)
	}
	if !g.Warming(victim) {
		t.Fatalf("fresh-imported stream not in warming mode")
	}
	st, err := g.ExportStream(victim)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	if len(st.Temporal.Rounds) != 0 || st.Temporal.LastSel != 0 {
		t.Fatalf("fresh import retained estimator evidence: %+v", st.Temporal)
	}
	if st.Row.Pushes != 0 || st.Row.Epoch != 0 {
		t.Fatalf("fresh import retained feature state: %+v", st.Row)
	}
	if st.Breaker.LastPkt != st.Round {
		t.Fatalf("fresh breaker clock %d, want current round %d", st.Breaker.LastPkt, st.Round)
	}

	// The stream must not gap-open within the threshold, and warming must
	// clear after Window pushes of real packets.
	driveStateRounds(t, g, m, int(g.Config().Window)*4, 6, gop)
	if g.Warming(victim) {
		t.Fatalf("warming did not clear after window refill")
	}
	for _, s := range g.Breakers()[victim : victim+1] {
		if s.GapOpens != 0 {
			t.Fatalf("fresh-imported stream gap-opened: %+v", s)
		}
	}
}

// TestExportRequiresQuiescence: stream state cannot move mid-round.
func TestExportRequiresQuiescence(t *testing.T) {
	g := stateTestGate(t, 4, false)
	pkts := []*codec.Packet{{Type: codec.PictureI, GOPSize: 8}, nil, nil, nil}
	if _, err := g.Decide(pkts); err != nil {
		t.Fatalf("decide: %v", err)
	}
	if _, err := g.ExportStream(0); err == nil {
		t.Fatalf("ExportStream succeeded with a round pending feedback")
	}
	if err := g.RetireStream(0); err == nil {
		t.Fatalf("RetireStream succeeded with a round pending feedback")
	}
}
