package core

import (
	"math/rand"
	"reflect"
	"testing"

	"packetgame/internal/codec"
	"packetgame/internal/overload"
	"packetgame/internal/predictor"
	"packetgame/internal/trace"
)

// memSink buffers trace rounds in memory for post-run comparison.
type memSink struct{ rounds []trace.Round }

func (s *memSink) Write(r trace.Round) error {
	cp := r
	cp.Decisions = append([]trace.Decision(nil), r.Decisions...)
	s.rounds = append(s.rounds, cp)
	return nil
}

// TestBreakerSparseDenseEquivalence drives two breaker sets with identical
// random packet patterns and decode outcomes — one through the lazy sparse
// entry point, one through the dense per-round shim — and demands identical
// quarantine decisions every round and identical snapshots (state machine
// positions and all lifetime counters) throughout. This is the contract the
// lazy fast-forward must honor: closed-form gap/cooldown advancement is
// round-for-round equal to ticking every breaker every round.
func TestBreakerSparseDenseEquivalence(t *testing.T) {
	const m = 16
	cfg := BreakerConfig{FailureThreshold: 2, GapThreshold: 4, Cooldown: 3, MaxCooldown: 12}
	sparse := newBreakerSet(m, cfg)
	dense := newBreakerSet(m, cfg)
	rng := rand.New(rand.NewSource(7))
	pkts := make([]*codec.Packet, m)
	var nonIdle []int32
	for r := 0; r < 2500; r++ {
		nonIdle = nonIdle[:0]
		for i := range pkts {
			pkts[i] = nil
			// Stream m-1 idles in long runs to exercise multi-round
			// fast-forward spans (gap-open deep inside a span, cooldown
			// burn-down across it).
			idleP := 0.6
			if i == m-1 {
				idleP = 0.95
			}
			if rng.Float64() > idleP {
				pkts[i] = &codec.Packet{Type: codec.PictureP}
				nonIdle = append(nonIdle, int32(i))
			}
		}
		qs := sparse.beginRoundSparse(nonIdle)
		qd := dense.beginRound(pkts)
		for _, i := range nonIdle {
			if qs[i] != qd[i] {
				t.Fatalf("round %d stream %d: sparse quar=%v dense quar=%v", r, i, qs[i], qd[i])
			}
		}
		// Decode outcomes for a subset of the non-quarantined packet
		// streams, exactly as the gate's feedback path would deliver them.
		for _, i := range nonIdle {
			if qs[i] {
				continue
			}
			if rng.Float64() < 0.5 {
				failed := rng.Float64() < 0.35
				sparse.outcome(int(i), failed)
				dense.outcome(int(i), failed)
			}
		}
		if r%97 == 0 || r == 2499 {
			ss, ds := sparse.snapshots(), dense.snapshots()
			if !reflect.DeepEqual(ss, ds) {
				t.Fatalf("round %d: snapshots diverged\nsparse: %+v\ndense:  %+v", r, ss, ds)
			}
		}
	}
}

// oracleCase is one twin-gate configuration for the incremental-vs-dense
// property test.
type oracleCase struct {
	name      string
	m         int
	rounds    int
	seed      int64
	poison    int  // the first `poison` streams always push zero-size packets
	withFail  bool // random decode failures in feedback
	withDefer bool // random deferred slots in feedback
	wantHits  bool // assert the score cache actually fired
	cfg       func(m int) Config
}

func tinyPredictor(t *testing.T, tasks int, useTemporal bool) *predictor.Predictor {
	t.Helper()
	p, err := predictor.New(predictor.Config{
		Window: 4, ConvUnits: 4, ConvLayers: 1, DenseUnits: 8,
		Tasks: tasks, UseIView: true, UsePView: true,
		UseTemporal: useTemporal, Seed: 5,
	})
	if err != nil {
		t.Fatalf("predictor: %v", err)
	}
	return p
}

func boolPtr(b bool) *bool { return &b }

// TestIncrementalMatchesDenseOracle is the tentpole's bit-identity contract:
// for every configuration, an incremental gate (score cache, ranked
// selection, lazy breakers, sparse feedback) and a NoIncremental oracle gate
// driven with identical packets, feedback, and overload schedules must
// produce identical selections every round, identical decision traces,
// identical lifetime stats, and identical breaker snapshots.
func TestIncrementalMatchesDenseOracle(t *testing.T) {
	cases := []oracleCase{
		{
			name: "temporal-only", m: 24, rounds: 1000, seed: 11,
			cfg: func(m int) Config {
				return Config{Streams: m, Window: 4, Budget: 10, UseTemporal: true, Shards: 3}
			},
		},
		{
			name: "fused-alltasks", m: 24, rounds: 1000, seed: 12,
			cfg: func(m int) Config {
				return Config{Streams: m, Window: 4, Budget: 10, UseTemporal: true,
					TaskIndex: AllTasks, Shards: 3}
			},
		},
		{
			name: "predictor-only", m: 24, rounds: 1000, seed: 13, wantHits: true,
			cfg: func(m int) Config {
				return Config{Streams: m, Window: 4, Budget: 10, UseTemporal: false,
					Explore: boolPtr(false), DependencyAware: boolPtr(false), Shards: 4}
			},
		},
		{
			name: "breakers-tiers-poison", m: 24, rounds: 1000, seed: 14,
			poison: 2, withFail: true, withDefer: true,
			cfg: func(m int) Config {
				prio := make([]uint8, m)
				for i := range prio {
					prio[i] = uint8(i % 3)
				}
				return Config{Streams: m, Window: 4, Budget: 10, UseTemporal: true,
					Breaker:    &BreakerConfig{FailureThreshold: 2, GapThreshold: 5, Cooldown: 4},
					Priorities: prio, Shards: 3}
			},
		},
		{
			name: "online-learning", m: 24, rounds: 800, seed: 15,
			cfg: func(m int) Config {
				return Config{Streams: m, Window: 4, Budget: 10, UseTemporal: true,
					OnlineLR: 0.05, OnlineBatch: 16, TaskIndex: 0, Shards: 3}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) { runOracleCase(t, tc) })
	}
}

func runOracleCase(t *testing.T, tc oracleCase) {
	mk := func(noInc bool) (*Gate, *memSink, *overload.Scripted) {
		cfg := tc.cfg(tc.m)
		switch tc.name {
		case "temporal-only":
			// no predictor: exercises ranked selection + sparse loops alone
		case "predictor-only":
			cfg.Predictor = tinyPredictor(t, 1, false)
		case "fused-alltasks":
			cfg.Predictor = tinyPredictor(t, 2, true)
		default:
			cfg.Predictor = tinyPredictor(t, 1, true)
		}
		sink := &memSink{}
		plan := overload.NewScripted(cfg.Budget)
		cfg.Trace = sink
		cfg.Planner = plan
		cfg.NoIncremental = noInc
		g, err := NewGate(cfg)
		if err != nil {
			t.Fatalf("NewGate(noInc=%v): %v", noInc, err)
		}
		return g, sink, plan
	}
	inc, incSink, incPlan := mk(false)
	ora, oraSink, oraPlan := mk(true)

	rng := rand.New(rand.NewSource(tc.seed))
	modes := []overload.Mode{overload.ModeFull, overload.ModeFull, overload.ModeFull,
		overload.ModeTemporalOnly, overload.ModeKeyframeOnly, overload.ModeShed}
	gopIdx := make([]int, tc.m)
	constSize := make([]int, tc.m) // 0 = per-round random sizes
	for i := range constSize {
		if i >= tc.poison && i%3 == 0 {
			constSize[i] = 500 + 100*i // constant feed: feature window freezes
		}
	}
	pkts := make([]*codec.Packet, tc.m)
	var nonIdle []int32

	for r := 0; r < tc.rounds; r++ {
		// Overload schedule steps: both planners move in lockstep.
		if r%41 == 40 {
			b := []float64{4, 8, 10, 16}[rng.Intn(4)]
			md := modes[rng.Intn(len(modes))]
			incPlan.Set(b, md)
			oraPlan.Set(b, md)
		}
		nonIdle = nonIdle[:0]
		for i := range pkts {
			pkts[i] = nil
			if rng.Float64() < 0.3 {
				continue // idle round for this stream
			}
			p := &codec.Packet{StreamID: i, GOPSize: 8, GOPIndex: gopIdx[i]}
			if gopIdx[i] == 0 {
				p.Type = codec.PictureI
			} else {
				p.Type = codec.PictureP
			}
			gopIdx[i] = (gopIdx[i] + 1) % 8
			switch {
			case i < tc.poison:
				p.Size = 0 // poisoned metadata feed
			case constSize[i] != 0:
				p.Size = constSize[i]
			default:
				p.Size = 200 + rng.Intn(4000)
			}
			pkts[i] = p
			nonIdle = append(nonIdle, int32(i))
		}

		// Alternate entry points: the churn-scaled caller-supplied list and
		// the self-scanning Decide must behave identically.
		var selInc, selOra []int
		var err1, err2 error
		if r%3 == 0 {
			selInc, err1 = inc.DecideRoundAppend(pkts, nonIdle, nil)
			selOra, err2 = ora.DecideRoundAppend(pkts, nonIdle, nil)
		} else {
			selInc, err1 = inc.Decide(pkts)
			selOra, err2 = ora.Decide(pkts)
		}
		if err1 != nil || err2 != nil {
			t.Fatalf("round %d: decide errors inc=%v oracle=%v", r, err1, err2)
		}
		if !reflect.DeepEqual(selInc, selOra) {
			t.Fatalf("round %d: selections diverged\ninc:    %v\noracle: %v", r, selInc, selOra)
		}

		necessary := make([]bool, len(selInc))
		for k := range necessary {
			necessary[k] = rng.Float64() < 0.5
		}
		var failed, deferred []bool
		if tc.withFail && rng.Float64() < 0.7 {
			failed = make([]bool, len(selInc))
			for k := range failed {
				failed[k] = rng.Float64() < 0.25
			}
		}
		if tc.withDefer && rng.Float64() < 0.3 {
			deferred = make([]bool, len(selInc))
			for k := range deferred {
				deferred[k] = rng.Float64() < 0.2
			}
		}
		if err := inc.FeedbackFull(selInc, necessary, failed, deferred); err != nil {
			t.Fatalf("round %d: inc feedback: %v", r, err)
		}
		if err := ora.FeedbackFull(selOra, necessary, failed, deferred); err != nil {
			t.Fatalf("round %d: oracle feedback: %v", r, err)
		}
	}

	if len(incSink.rounds) != tc.rounds || len(oraSink.rounds) != tc.rounds {
		t.Fatalf("trace lengths: inc=%d oracle=%d want %d", len(incSink.rounds), len(oraSink.rounds), tc.rounds)
	}
	for r := range incSink.rounds {
		if !reflect.DeepEqual(incSink.rounds[r], oraSink.rounds[r]) {
			t.Fatalf("trace round %d diverged\ninc:    %+v\noracle: %+v", r, incSink.rounds[r], oraSink.rounds[r])
		}
	}
	if is, os := inc.Stats(), ora.Stats(); is != os {
		t.Fatalf("stats diverged: inc=%+v oracle=%+v", is, os)
	}
	if !reflect.DeepEqual(inc.Breakers(), ora.Breakers()) {
		t.Fatalf("breaker snapshots diverged")
	}

	st := inc.Incremental()
	if tc.wantHits {
		if st.CacheHits == 0 {
			t.Fatalf("score cache never hit: %+v", st)
		}
		if st.Forwards >= st.Scored {
			t.Fatalf("no forward was saved: %+v", st)
		}
	}
	if ost := ora.Incremental(); ost.CacheHits != 0 {
		t.Fatalf("oracle gate used the cache: %+v", ost)
	}
}

// TestIncrementalDecideAllocCeiling pins the steady-state allocation
// behavior of the churn-scaled hot loop: with warm scratch and free lists, a
// low-churn Decide+Feedback round through the caller-supplied non-idle list
// — cache hits, ranked merge, sparse feedback and all — must allocate
// (essentially) nothing.
func TestIncrementalDecideAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector; covered by make alloc-smoke")
	}
	const m = 256
	no := false
	g, err := NewGate(Config{
		Streams: m, Window: 4, Budget: 10, Predictor: tinyPredictor(t, 1, false),
		UseTemporal: false, Explore: &no, DependencyAware: &no,
	})
	if err != nil {
		t.Fatal(err)
	}
	pkts := make([]*codec.Packet, m)
	nonIdle := make([]int32, m)
	for i := range pkts {
		pkts[i] = &codec.Packet{StreamID: i, Type: codec.PictureP, Size: 900 + i%333, GOPSize: 25, GOPIndex: 1}
		nonIdle[i] = int32(i)
	}
	necessary := make([]bool, m)
	var sel []int
	lcg := uint64(9)
	run := func() {
		// ~1% churn: a few streams move their packet sizes, the rest replay
		// from the score cache.
		for i := 0; i < 3; i++ {
			lcg = lcg*6364136223846793005 + 1442695040888963407
			pkts[i].Size = 200 + int(lcg>>40)%60000
		}
		var err error
		sel, err = g.DecideRoundAppend(pkts, nonIdle, sel[:0])
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Feedback(sel, necessary[:len(sel)]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		run() // saturate feature rings, scratch, and free lists
	}
	allocs := testing.AllocsPerRun(24, run)
	const ceiling = 2
	if allocs > ceiling {
		t.Fatalf("steady-state incremental round allocates %.1f times/op, ceiling %d", allocs, ceiling)
	}
	if st := g.Incremental(); st.CacheHits == 0 {
		t.Fatalf("cache never hit during the alloc run: %+v", st)
	}
}
