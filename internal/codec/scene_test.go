package codec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDiurnalActivityShape(t *testing.T) {
	night := DiurnalActivity(3)
	morning := DiurnalActivity(8.5)
	noon := DiurnalActivity(13)
	evening := DiurnalActivity(17.5)
	if morning <= night || evening <= night {
		t.Errorf("peaks must exceed night: night=%.3f morning=%.3f evening=%.3f",
			night, morning, evening)
	}
	if morning <= noon || evening <= noon {
		t.Errorf("commute peaks must exceed midday plateau: noon=%.3f morning=%.3f evening=%.3f",
			noon, morning, evening)
	}
}

func TestDiurnalActivityBoundsAndPeriodicity(t *testing.T) {
	f := func(h float64) bool {
		if math.IsNaN(h) || math.IsInf(h, 0) {
			return true
		}
		a := DiurnalActivity(h)
		if a < 0 || a > 1 {
			return false
		}
		// 24h periodic.
		return math.Abs(DiurnalActivity(h+24)-a) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSceneModelDeterminism(t *testing.T) {
	cfg := SceneConfig{FireRate: 10, QualityDropRate: 10}
	a := NewSceneModel(cfg, 42)
	b := NewSceneModel(cfg, 42)
	for i := 0; i < 500; i++ {
		sa, sb := a.Next(), b.Next()
		if sa != sb {
			t.Fatalf("frame %d: same seed diverged: %+v vs %+v", i, sa, sb)
		}
	}
}

func TestSceneModelInvariants(t *testing.T) {
	m := NewSceneModel(SceneConfig{FireRate: 40, QualityDropRate: 40, BaseActivity: 0.8}, 7)
	for i := int64(0); i < 5000; i++ {
		s := m.Next()
		if s.Frame != i {
			t.Fatalf("frame counter: got %d want %d", s.Frame, i)
		}
		if s.Motion < 0 || s.Motion > 1 {
			t.Fatalf("motion out of range: %f", s.Motion)
		}
		if s.Activity < 0 || s.Activity > 1 {
			t.Fatalf("activity out of range: %f", s.Activity)
		}
		if s.PersonCount < 0 {
			t.Fatalf("negative person count: %d", s.PersonCount)
		}
	}
}

func TestSceneModelEventsOccurAndPersist(t *testing.T) {
	// With high rates over a long run, every event type should occur, and
	// events should persist across consecutive frames (temporal continuity
	// is what the temporal estimator exploits).
	m := NewSceneModel(SceneConfig{
		BaseActivity: 0.9, AnomalyRate: 200, FireRate: 200, QualityDropRate: 200,
	}, 11)
	var sawAnomaly, sawFire, sawDrop bool
	var anomalyRuns, anomalyFrames int
	prevAnomaly := false
	for i := 0; i < 25*3600; i++ {
		s := m.Next()
		sawAnomaly = sawAnomaly || s.Anomaly
		sawFire = sawFire || s.Fire
		sawDrop = sawDrop || s.QualityDrop
		if s.Anomaly {
			anomalyFrames++
			if !prevAnomaly {
				anomalyRuns++
			}
		}
		prevAnomaly = s.Anomaly
	}
	if !sawAnomaly || !sawFire || !sawDrop {
		t.Fatalf("events missing: anomaly=%v fire=%v drop=%v", sawAnomaly, sawFire, sawDrop)
	}
	if anomalyRuns == 0 || anomalyFrames/anomalyRuns < 25 {
		t.Errorf("anomalies should persist ~20s: %d frames over %d runs",
			anomalyFrames, anomalyRuns)
	}
}

func TestSceneModelDiurnalModulatesLoad(t *testing.T) {
	// A diurnal model starting at 03:00 should see far fewer people than
	// one starting at 17:00.
	countPeople := func(startHour float64) int {
		m := NewSceneModel(SceneConfig{Diurnal: true, StartHour: startHour, PersonRate: 1}, 3)
		total := 0
		for i := 0; i < 25*600; i++ { // 10 simulated minutes
			total += m.Next().PersonCount
		}
		return total
	}
	night, evening := countPeople(3), countPeople(17.5)
	if evening < night*3 {
		t.Errorf("evening load (%d) should dwarf night load (%d)", evening, night)
	}
}

func TestMotionRespondsToEvents(t *testing.T) {
	// Frames during fire should carry more motion than quiet frames.
	m := NewSceneModel(SceneConfig{FireRate: 500, BaseActivity: 0.1, PersonRate: 0.001}, 5)
	var fireSum, quietSum float64
	var fireN, quietN int
	for i := 0; i < 25*1200; i++ {
		s := m.Next()
		if s.Fire {
			fireSum += s.Motion
			fireN++
		} else if s.PersonCount == 0 && !s.Anomaly {
			quietSum += s.Motion
			quietN++
		}
	}
	if fireN == 0 || quietN == 0 {
		t.Skip("not enough samples of both classes")
	}
	if fireSum/float64(fireN) <= quietSum/float64(quietN) {
		t.Errorf("fire motion %.3f should exceed quiet motion %.3f",
			fireSum/float64(fireN), quietSum/float64(quietN))
	}
}

func TestTimeCompressAcceleratesDay(t *testing.T) {
	// With TimeCompress=1440, one minute of frames spans a full day, so a
	// diurnal model must traverse both night and peak activity levels.
	m := NewSceneModel(SceneConfig{Diurnal: true, TimeCompress: 1440, StartHour: 0}, 5)
	var lo, hi = 2.0, -1.0
	for i := 0; i < 25*60; i++ {
		s := m.Next()
		if s.Activity < lo {
			lo = s.Activity
		}
		if s.Activity > hi {
			hi = s.Activity
		}
	}
	if hi-lo < 0.3 {
		t.Errorf("compressed day shows too little activity range: [%v, %v]", lo, hi)
	}
}

func TestTimeCompressLeavesEventDynamicsAlone(t *testing.T) {
	// Compression accelerates only the diurnal clock; event durations keep
	// their natural frame length.
	frames := func(compress float64) int {
		m := NewSceneModel(SceneConfig{
			AnomalyRate: 600, AnomalyDuration: 40, TimeCompress: compress,
			BaseActivity: 0.9,
		}, 9)
		total, runs := 0, 0
		prev := false
		for i := 0; i < 25*1200; i++ {
			s := m.Next()
			if s.Anomaly {
				total++
				if !prev {
					runs++
				}
			}
			prev = s.Anomaly
		}
		if runs == 0 {
			return 0
		}
		return total / runs
	}
	normal, fast := frames(1), frames(10)
	if fast == 0 || normal == 0 {
		t.Skip("no anomalies sampled")
	}
	ratio := float64(fast) / float64(normal)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("event durations must not scale with clock compression: normal=%d fast=%d", normal, fast)
	}
}
