package codec

// Residual estimates the frame-residual feature of prior work on selective
// super-resolution (paper ref [52]): the per-frame prediction residual
// approximated from packet sizes as the ratio of a predicted-frame packet's
// size to the size of the most recent independent frame. Fig 3b of the paper
// shows this handcrafted feature discriminates necessary packets poorly; the
// Fig 3 benchmark reproduces that comparison against PacketGame's learned
// representation.
type Residual struct {
	lastISize float64
}

// Observe folds one packet into the estimator and returns the residual
// feature value for the packet. I-frames reset the reference size and report
// a residual of 1. Before any I-frame is seen, the packet's own size is used
// as the reference.
func (r *Residual) Observe(p *Packet) float64 {
	if p.Type == PictureI {
		r.lastISize = float64(p.Size)
		return 1
	}
	if r.lastISize <= 0 {
		r.lastISize = float64(p.Size)
	}
	return float64(p.Size) / r.lastISize
}
