package codec

import (
	"math"
	"math/rand"
)

// Scene is the latent ground-truth content of one video frame. The encoder
// maps scenes to packet sizes; the decoder recovers scenes from payloads; the
// inference simulators (internal/infer) read scenes to produce task results.
//
// A Scene is what "the pixels" are in this reproduction: downstream code may
// only observe it after paying decode cost.
type Scene struct {
	// Frame is the frame index within the stream.
	Frame int64
	// Richness is the static visual detail of the camera view in [0,1];
	// it drives I-frame sizes.
	Richness float64
	// Motion is the instantaneous amount of change versus the previous
	// frame in [0,1]; it drives P/B-frame sizes.
	Motion float64
	// PersonCount is the number of visible people (person-counting task).
	PersonCount int
	// Anomaly reports an abnormal event in view (anomaly-detection task).
	Anomaly bool
	// Fire reports visible fire (fire-detection task).
	Fire bool
	// QualityDrop reports a bandwidth-induced quality drop that makes the
	// frame worth enhancing (super-resolution task).
	QualityDrop bool
	// Activity is the ambient human-activity level in [0,1] (diurnal).
	Activity float64
}

// SceneConfig parameterizes a SceneModel.
type SceneConfig struct {
	// FPS is the frame rate of the stream. Default 25.
	FPS int
	// Richness is the static richness of the camera view in [0,1].
	// Default 0.5.
	Richness float64
	// BaseActivity is the mean ambient activity level in [0,1]. The diurnal
	// profile modulates it. Default 0.3.
	BaseActivity float64
	// Diurnal enables the two-peak (morning/evening) daily activity profile
	// observed on the campus deployment (Fig 4a). When false, activity
	// stays at BaseActivity.
	Diurnal bool
	// StartHour is the local hour of day at frame 0 (0-23). Only meaningful
	// with Diurnal.
	StartHour float64
	// TimeCompress accelerates the diurnal clock relative to frames: with
	// TimeCompress=1440, one real minute of frames sweeps the activity
	// profile of 24 hours. Event dynamics (arrivals, stays, event
	// durations) keep their natural per-second pace — only the slow daily
	// modulation is compressed, so day-long load patterns can be studied
	// in short simulations without distorting the fast dynamics the gate
	// reacts to. Default 1.
	TimeCompress float64
	// PersonRate is the expected number of person arrivals per second at
	// activity level 1.0. Default 0.2.
	PersonRate float64
	// PersonStay is the mean seconds a person stays in view. Default 8.
	PersonStay float64
	// AnomalyRate is the expected anomalies per hour at activity 1.0.
	// Default 2.
	AnomalyRate float64
	// AnomalyDuration is the mean seconds an anomaly persists. Default 20.
	AnomalyDuration float64
	// FireRate is the expected fire events per hour. Zero disables fire.
	FireRate float64
	// FireDuration is the mean seconds a fire persists. Default 45.
	FireDuration float64
	// QualityDropRate is the expected bandwidth-drop events per hour.
	// Zero disables drops.
	QualityDropRate float64
	// QualityDropDuration is the mean seconds a quality drop lasts.
	// Default 15.
	QualityDropDuration float64
	// MotionNoise is the standard deviation of frame-to-frame motion noise.
	// Default 0.05.
	MotionNoise float64
}

func (c *SceneConfig) defaults() {
	if c.FPS == 0 {
		c.FPS = 25
	}
	if c.Richness == 0 {
		c.Richness = 0.5
	}
	if c.BaseActivity == 0 {
		c.BaseActivity = 0.3
	}
	if c.PersonRate == 0 {
		c.PersonRate = 0.2
	}
	if c.PersonStay == 0 {
		c.PersonStay = 8
	}
	if c.AnomalyRate == 0 {
		c.AnomalyRate = 2
	}
	if c.AnomalyDuration == 0 {
		c.AnomalyDuration = 20
	}
	if c.FireDuration == 0 {
		c.FireDuration = 45
	}
	if c.QualityDropDuration == 0 {
		c.QualityDropDuration = 15
	}
	if c.MotionNoise == 0 {
		c.MotionNoise = 0.05
	}
	if c.TimeCompress == 0 {
		c.TimeCompress = 1
	}
}

// SceneModel generates a temporally coherent sequence of Scenes for one
// stream. Events (people entering/leaving, anomalies, fires, quality drops)
// arrive as Poisson processes modulated by the activity level and persist for
// exponentially distributed durations, giving inference necessity the
// temporal continuity the paper's temporal estimator exploits (§5.1).
type SceneModel struct {
	cfg SceneConfig
	rng *rand.Rand

	frame        int64
	people       []int64 // departure frame of each person in view
	anomalyUntil int64
	fireUntil    int64
	dropUntil    int64
	lastCount    int
	pulse        int64   // frames of change-pulse remaining
	pulseMag     float64 // magnitude of the current change pulse
	motion       float64
}

// NewSceneModel creates a scene model with the given config and seed.
func NewSceneModel(cfg SceneConfig, seed int64) *SceneModel {
	cfg.defaults()
	return &SceneModel{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// DiurnalActivity is the two-peak daily activity profile: low at night,
// peaks around 08:30 and 17:30 local time. Hour may be fractional and is
// taken modulo 24. The returned level is in [0,1].
func DiurnalActivity(hour float64) float64 {
	hour = math.Mod(hour, 24)
	if hour < 0 {
		hour += 24
	}
	peak := func(center, width float64) float64 {
		d := hour - center
		return math.Exp(-d * d / (2 * width * width))
	}
	// Morning and evening commute peaks over a daytime plateau.
	level := 0.08 + 0.75*peak(8.5, 1.4) + 0.85*peak(17.5, 1.6) + 0.25*peak(13, 3.5)
	if level > 1 {
		level = 1
	}
	return level
}

// activity returns the current ambient activity level.
func (m *SceneModel) activity() float64 {
	if !m.cfg.Diurnal {
		return m.cfg.BaseActivity
	}
	hour := m.cfg.StartHour + float64(m.frame)/float64(m.cfg.FPS)/3600*m.cfg.TimeCompress
	a := m.cfg.BaseActivity / 0.3 * DiurnalActivity(hour)
	if a > 1 {
		a = 1
	}
	return a
}

// poisson returns true with probability rate*dt (thinned Poisson arrival).
func (m *SceneModel) poisson(ratePerSec float64) bool {
	p := ratePerSec / float64(m.cfg.FPS)
	if p > 1 {
		p = 1
	}
	return m.rng.Float64() < p
}

// expFrames draws an exponentially distributed duration in frames.
func (m *SceneModel) expFrames(meanSec float64) int64 {
	d := m.rng.ExpFloat64() * meanSec * float64(m.cfg.FPS)
	if d < 1 {
		d = 1
	}
	return int64(d)
}

// Next advances the model one frame and returns the scene.
func (m *SceneModel) Next() Scene {
	act := m.activity()

	// People arrive at a rate proportional to activity and stay for an
	// exponential duration.
	if m.poisson(m.cfg.PersonRate * act) {
		m.people = append(m.people, m.frame+m.expFrames(m.cfg.PersonStay))
	}
	alive := m.people[:0]
	for _, until := range m.people {
		if until > m.frame {
			alive = append(alive, until)
		}
	}
	m.people = alive

	// Rare persistent events.
	if m.anomalyUntil <= m.frame && m.poisson(m.cfg.AnomalyRate*act/3600) {
		m.anomalyUntil = m.frame + m.expFrames(m.cfg.AnomalyDuration)
	}
	if m.cfg.FireRate > 0 && m.fireUntil <= m.frame && m.poisson(m.cfg.FireRate/3600) {
		m.fireUntil = m.frame + m.expFrames(m.cfg.FireDuration)
	}
	if m.cfg.QualityDropRate > 0 && m.dropUntil <= m.frame && m.poisson(m.cfg.QualityDropRate/3600) {
		m.dropUntil = m.frame + m.expFrames(m.cfg.QualityDropDuration)
	}

	count := len(m.people)
	anomaly := m.anomalyUntil > m.frame
	fire := m.fireUntil > m.frame
	drop := m.dropUntil > m.frame

	// Motion tracks content change: ambient activity, count changes, and
	// events all perturb it; an AR(1) term keeps it temporally smooth.
	// A person entering or leaving produces a short motion pulse — the
	// size signature the contextual predictor learns for PC (Fig 3a). The
	// magnitude varies per event: some changes are obvious (someone walks
	// through the middle of the frame), some subtle (a figure at the
	// edge), which is what keeps single-feature filters from being
	// perfect discriminators.
	if count != m.lastCount {
		m.pulse = 2
		m.pulseMag = 0.12 + 0.55*m.rng.Float64()
	}
	m.lastCount = count
	target := 0.06*act + 0.08*math.Min(float64(count), 4)/4
	if m.pulse > 0 {
		target += m.pulseMag
		m.pulse--
	}
	// Anomalies and fire perturb motion only mildly: most of their
	// necessity signal is temporal (persistence), matching the paper's
	// finding that the temporal estimator dominates on AD/SR/FD while the
	// contextual size views dominate on PC (Tab 3 discussion).
	if anomaly {
		target += 0.06
	}
	if fire {
		target += 0.09
	}
	m.motion = 0.35*m.motion + 0.65*target + m.rng.NormFloat64()*m.cfg.MotionNoise
	if m.motion < 0 {
		m.motion = 0
	}
	if m.motion > 1 {
		m.motion = 1
	}

	s := Scene{
		Frame:       m.frame,
		Richness:    m.cfg.Richness,
		Motion:      m.motion,
		PersonCount: count,
		Anomaly:     anomaly,
		Fire:        fire,
		QualityDrop: drop,
		Activity:    act,
	}
	m.frame++
	return s
}
