package codec

import (
	"strings"
	"testing"
)

func TestPictureTypeString(t *testing.T) {
	cases := []struct {
		pt   PictureType
		want string
	}{
		{PictureI, "I"},
		{PictureP, "P"},
		{PictureB, "B"},
		{PictureType(9), "PictureType(9)"},
	}
	for _, c := range cases {
		if got := c.pt.String(); got != c.want {
			t.Errorf("PictureType(%d).String() = %q, want %q", c.pt, got, c.want)
		}
	}
}

func TestPictureTypeIndependent(t *testing.T) {
	if !PictureI.Independent() {
		t.Error("I-frames must be independent")
	}
	if PictureP.Independent() || PictureB.Independent() {
		t.Error("P/B-frames must not be independent")
	}
}

func TestCodecString(t *testing.T) {
	for c, want := range map[Codec]string{
		H264: "h264", H265: "h265", VP9: "vp9", JPEG2000: "jpeg2000",
	} {
		if got := c.String(); got != want {
			t.Errorf("Codec(%d).String() = %q, want %q", c, got, want)
		}
	}
	if got := Codec(99).String(); got != "Codec(99)" {
		t.Errorf("unknown codec string = %q", got)
	}
}

func TestParseCodec(t *testing.T) {
	for _, name := range []string{"h264", "h265", "vp9", "jpeg2000"} {
		c, err := ParseCodec(name)
		if err != nil {
			t.Fatalf("ParseCodec(%q): %v", name, err)
		}
		if c.String() != name {
			t.Errorf("ParseCodec(%q) round-trip = %q", name, c)
		}
	}
	if _, err := ParseCodec("mpeg2"); err == nil {
		t.Error("ParseCodec should reject unknown names")
	}
}

func TestIntraOnly(t *testing.T) {
	if !JPEG2000.IntraOnly() {
		t.Error("JPEG2000 must be intra-only")
	}
	for _, c := range []Codec{H264, H265, VP9} {
		if c.IntraOnly() {
			t.Errorf("%v must not be intra-only", c)
		}
	}
}

func TestPacketKeyframeAndString(t *testing.T) {
	p := &Packet{StreamID: 3, Seq: 7, PTS: 280, Type: PictureI, Codec: H265,
		Size: 50_000, GOPIndex: 0, GOPSize: 25}
	if !p.Keyframe() {
		t.Error("GOPIndex 0 must be a keyframe")
	}
	p.GOPIndex = 1
	if p.Keyframe() {
		t.Error("GOPIndex 1 must not be a keyframe")
	}
	s := p.String()
	for _, want := range []string{"stream=3", "seq=7", "h265", "50000B"} {
		if !strings.Contains(s, want) {
			t.Errorf("Packet.String() = %q missing %q", s, want)
		}
	}
}
