// Package codec implements the synthetic video substrate PacketGame gates:
// a scene model that evolves per-stream content over time, an encoder that
// turns scene states into GOP-structured video packets with content-driven
// packet sizes, per-codec size profiles, and an Annex-B-like bitstream
// serialization with start codes and emulation-prevention bytes.
//
// The packet *metadata* (size, picture type, codec) is what the gate sees;
// the packet *payload* carries the encoded scene state, which only a decoder
// (internal/decode) may recover, mirroring how a real pipeline separates
// parsed metadata from decoded pixels.
package codec

import "fmt"

// PictureType identifies how a packet's frame was encoded.
type PictureType uint8

const (
	// PictureI is an independent (intra-coded) frame: decodable by itself.
	PictureI PictureType = iota
	// PictureP is a predicted frame: depends on the previous reference
	// (I or P) in its GOP.
	PictureP
	// PictureB is a bidirectionally predicted frame: depends on the previous
	// reference and the next reference in its GOP.
	PictureB
)

// String returns the conventional one-letter name of the picture type.
func (p PictureType) String() string {
	switch p {
	case PictureI:
		return "I"
	case PictureP:
		return "P"
	case PictureB:
		return "B"
	default:
		return fmt.Sprintf("PictureType(%d)", uint8(p))
	}
}

// Independent reports whether the picture type can be decoded without
// reference frames.
func (p PictureType) Independent() bool { return p == PictureI }

// Codec identifies the video codec that produced a stream.
type Codec uint8

const (
	// H264 is the baseline codec profile (AVC).
	H264 Codec = iota
	// H265 compresses roughly 40% better than H264 (HEVC).
	H265
	// VP9 compresses roughly 30% better than H264.
	VP9
	// JPEG2000 is an intra-only codec: every frame is independent.
	JPEG2000
)

var codecNames = [...]string{"h264", "h265", "vp9", "jpeg2000"}

// String returns the lowercase codec name.
func (c Codec) String() string {
	if int(c) < len(codecNames) {
		return codecNames[c]
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// ParseCodec maps a codec name to its Codec value.
func ParseCodec(name string) (Codec, error) {
	for i, n := range codecNames {
		if n == name {
			return Codec(i), nil
		}
	}
	return 0, fmt.Errorf("codec: unknown codec %q", name)
}

// IntraOnly reports whether the codec emits only independent frames.
func (c Codec) IntraOnly() bool { return c == JPEG2000 }

// Packet is one parsed video packet. Everything in this struct is metadata a
// parser can recover without decoding; the gate makes its decision from these
// fields alone (size and picture type, per the paper's feature vector x).
type Packet struct {
	// StreamID identifies the source stream within a session.
	StreamID int
	// Seq is the per-stream packet sequence number, starting at 0.
	Seq int64
	// PTS is the presentation timestamp in milliseconds since stream start.
	PTS int64
	// Type is the picture type (I/P/B).
	Type PictureType
	// Codec is the codec that produced the packet.
	Codec Codec
	// Size is the encoded payload size in bytes. This is the primary gating
	// feature: it reflects frame richness for I-frames and content change
	// for P/B-frames.
	Size int
	// GOPIndex is the packet's position within its GOP (0 = the I-frame).
	GOPIndex int
	// GOPSize is the length of the GOP this packet belongs to.
	GOPSize int
	// Payload is the encoded bitstream body (scene state + padding). The
	// gate MUST NOT inspect it; only internal/decode may.
	Payload []byte
}

// Keyframe reports whether the packet starts a GOP.
func (p *Packet) Keyframe() bool { return p.GOPIndex == 0 }

// String summarizes the packet metadata for logs and tests.
func (p *Packet) String() string {
	return fmt.Sprintf("stream=%d seq=%d pts=%dms %s/%s size=%dB gop=%d/%d",
		p.StreamID, p.Seq, p.PTS, p.Codec, p.Type, p.Size, p.GOPIndex, p.GOPSize)
}
