package codec

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEncoderGOPPattern(t *testing.T) {
	e := NewEncoder(EncoderConfig{GOPSize: 5}, 1)
	want := []PictureType{PictureI, PictureP, PictureP, PictureP, PictureP,
		PictureI, PictureP}
	for i, w := range want {
		p := e.Encode(Scene{Frame: int64(i)})
		if p.Type != w {
			t.Errorf("packet %d: type %v, want %v", i, p.Type, w)
		}
		if p.GOPIndex != i%5 {
			t.Errorf("packet %d: GOPIndex %d, want %d", i, p.GOPIndex, i%5)
		}
	}
}

func TestEncoderBFramePattern(t *testing.T) {
	e := NewEncoder(EncoderConfig{GOPSize: 7, BFrames: 2}, 1)
	// I, then B B P B B P repeating within the GOP.
	want := []PictureType{PictureI, PictureB, PictureB, PictureP,
		PictureB, PictureB, PictureP, PictureI}
	for i, w := range want {
		p := e.Encode(Scene{})
		if p.Type != w {
			t.Errorf("packet %d: type %v, want %v", i, p.Type, w)
		}
	}
}

func TestEncoderIntraOnlyCodec(t *testing.T) {
	e := NewEncoder(EncoderConfig{Codec: JPEG2000, GOPSize: 25, BFrames: 2}, 1)
	for i := 0; i < 10; i++ {
		p := e.Encode(Scene{})
		if p.Type != PictureI {
			t.Fatalf("packet %d: JPEG2000 must emit only I frames, got %v", i, p.Type)
		}
		if p.GOPSize != 1 {
			t.Fatalf("packet %d: intra-only GOPSize = %d, want 1", i, p.GOPSize)
		}
	}
}

func TestEncoderSeqAndPTS(t *testing.T) {
	e := NewEncoder(EncoderConfig{FPS: 25}, 1)
	for i := int64(0); i < 50; i++ {
		p := e.Encode(Scene{})
		if p.Seq != i {
			t.Fatalf("seq = %d, want %d", p.Seq, i)
		}
		if p.PTS != i*40 {
			t.Fatalf("pts = %d, want %d", p.PTS, i*40)
		}
	}
}

// meanSizes encodes n frames of the given scene and returns mean size per type.
func meanSizes(t *testing.T, cfg EncoderConfig, s Scene, n int) map[PictureType]float64 {
	t.Helper()
	e := NewEncoder(cfg, 99)
	sum := map[PictureType]float64{}
	cnt := map[PictureType]float64{}
	for i := 0; i < n; i++ {
		p := e.Encode(s)
		sum[p.Type] += float64(p.Size)
		cnt[p.Type]++
	}
	for k := range sum {
		sum[k] /= cnt[k]
	}
	return sum
}

func TestSizeModelIVsPScale(t *testing.T) {
	m := meanSizes(t, EncoderConfig{GOPSize: 10}, Scene{Richness: 0.5, Motion: 0.3}, 5000)
	if m[PictureI] < 3*m[PictureP] {
		t.Errorf("I frames should dwarf P frames: I=%.0f P=%.0f", m[PictureI], m[PictureP])
	}
}

func TestSizeModelMotionDrivesPSize(t *testing.T) {
	low := meanSizes(t, EncoderConfig{GOPSize: 10}, Scene{Motion: 0.05}, 3000)
	high := meanSizes(t, EncoderConfig{GOPSize: 10}, Scene{Motion: 0.9}, 3000)
	if high[PictureP] < 2*low[PictureP] {
		t.Errorf("high-motion P frames should be much larger: low=%.0f high=%.0f",
			low[PictureP], high[PictureP])
	}
	// But I-frame sizes should be nearly unaffected by motion.
	ratio := high[PictureI] / low[PictureI]
	if ratio > 1.5 || ratio < 0.67 {
		t.Errorf("I size should not track motion: ratio=%.2f", ratio)
	}
}

func TestSizeModelRichnessDrivesISize(t *testing.T) {
	plain := meanSizes(t, EncoderConfig{GOPSize: 2}, Scene{Richness: 0.1}, 3000)
	rich := meanSizes(t, EncoderConfig{GOPSize: 2}, Scene{Richness: 0.9}, 3000)
	if rich[PictureI] < 1.5*plain[PictureI] {
		t.Errorf("rich scenes need bigger I frames: plain=%.0f rich=%.0f",
			plain[PictureI], rich[PictureI])
	}
}

func TestSizeModelBitrateScaling(t *testing.T) {
	s := Scene{Richness: 0.5, Motion: 0.5}
	full := meanSizes(t, EncoderConfig{GOPSize: 10, Bitrate: 4_000_000}, s, 2000)
	half := meanSizes(t, EncoderConfig{GOPSize: 10, Bitrate: 2_000_000}, s, 2000)
	ratio := half[PictureP] / full[PictureP]
	if ratio < 0.4 || ratio > 0.65 {
		t.Errorf("halving bitrate should roughly halve P sizes: ratio=%.2f", ratio)
	}
}

func TestExtremeLowBitrateDestroysSignal(t *testing.T) {
	// At 100 Kbps the size gap between quiet and busy frames should
	// collapse versus the reference bitrate (extreme case 1, §6.4).
	gap := func(bitrate int) float64 {
		quiet := meanSizes(t, EncoderConfig{GOPSize: 25, Bitrate: bitrate}, Scene{Motion: 0.05}, 2000)
		busy := meanSizes(t, EncoderConfig{GOPSize: 25, Bitrate: bitrate}, Scene{Motion: 0.9}, 2000)
		return busy[PictureP] / quiet[PictureP]
	}
	if fullGap, lowGap := gap(4_000_000), gap(100_000); lowGap > (fullGap+1)/2 {
		t.Errorf("low bitrate should collapse the motion-size gap: full=%.2f low=%.2f",
			fullGap, lowGap)
	}
}

func TestCodecProfilesOrdering(t *testing.T) {
	s := Scene{Richness: 0.5, Motion: 0.4}
	h264 := meanSizes(t, EncoderConfig{Codec: H264, GOPSize: 10}, s, 2000)
	h265 := meanSizes(t, EncoderConfig{Codec: H265, GOPSize: 10}, s, 2000)
	if h265[PictureP] >= h264[PictureP] || h265[PictureI] >= h264[PictureI] {
		t.Errorf("H.265 should compress better than H.264: %v vs %v", h265, h264)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	f := func(frame int64, richness, motion, activity float64, count uint8, anomaly, fire, drop bool) bool {
		s := Scene{
			Frame:    frame,
			Richness: clamp01(richness), Motion: clamp01(motion),
			Activity:    clamp01(activity),
			PersonCount: int(count),
			Anomaly:     anomaly, Fire: fire, QualityDrop: drop,
		}
		payload := encodePayload(s, 4096, true)
		got, err := DecodePayload(payload)
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	return math.Abs(math.Mod(v, 1))
}

func TestDecodePayloadErrors(t *testing.T) {
	if _, err := DecodePayload([]byte{1, 2, 3}); err == nil {
		t.Error("short payload must error")
	}
	bad := encodePayload(Scene{}, 64, true)
	bad[0] = 'X'
	if _, err := DecodePayload(bad); err == nil {
		t.Error("bad magic must error")
	}
}

func TestEncoderDeterminism(t *testing.T) {
	mk := func() []int {
		e := NewEncoder(EncoderConfig{GOPSize: 8}, 5)
		var sizes []int
		for i := 0; i < 100; i++ {
			sizes = append(sizes, e.Encode(Scene{Richness: 0.4, Motion: 0.3}).Size)
		}
		return sizes
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d size diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStreamProducesPackets(t *testing.T) {
	st := NewStream(SceneConfig{}, EncoderConfig{StreamID: 4, GOPSize: 25}, 123)
	for i := int64(0); i < 60; i++ {
		p := st.Next()
		if p.StreamID != 4 || p.Seq != i {
			t.Fatalf("packet %d: id=%d seq=%d", i, p.StreamID, p.Seq)
		}
		if p.Size <= 0 {
			t.Fatalf("packet %d: nonpositive size %d", i, p.Size)
		}
		if st.LastScene.Frame != i {
			t.Fatalf("LastScene.Frame = %d, want %d", st.LastScene.Frame, i)
		}
	}
}

func TestResidualFeature(t *testing.T) {
	var r Residual
	i := &Packet{Type: PictureI, Size: 1000}
	p := &Packet{Type: PictureP, Size: 250}
	if got := r.Observe(i); got != 1 {
		t.Errorf("I residual = %v, want 1", got)
	}
	if got := r.Observe(p); got != 0.25 {
		t.Errorf("P residual = %v, want 0.25", got)
	}
	// Before any I-frame, the packet itself is the reference.
	var r2 Residual
	if got := r2.Observe(p); got != 1 {
		t.Errorf("first-P residual = %v, want 1", got)
	}
}

func TestGOPPhaseShiftsKeyframes(t *testing.T) {
	e := NewEncoder(EncoderConfig{GOPSize: 5, GOPPhase: 3}, 1)
	// Phase 3 of a 5-GOP: two more predicted frames, then the I.
	want := []PictureType{PictureP, PictureP, PictureI, PictureP, PictureP}
	for i, w := range want {
		if got := e.Encode(Scene{}).Type; got != w {
			t.Errorf("packet %d: type %v, want %v", i, got, w)
		}
	}
}

func TestGOPPhaseNormalized(t *testing.T) {
	// Phase ≥ GOPSize wraps; negative clamps to 0.
	e := NewEncoder(EncoderConfig{GOPSize: 4, GOPPhase: 9}, 1)
	if e.Config().GOPPhase != 1 {
		t.Errorf("phase = %d, want 1", e.Config().GOPPhase)
	}
	e = NewEncoder(EncoderConfig{GOPSize: 4, GOPPhase: -2}, 1)
	if e.Config().GOPPhase != 0 {
		t.Errorf("negative phase = %d, want 0", e.Config().GOPPhase)
	}
}

func TestFleetGOPPhasesSpreadKeyframes(t *testing.T) {
	// A phased fleet must not emit all its I-frames in the same round.
	const m, gop = 10, 25
	streams := make([]*Stream, m)
	for i := range streams {
		streams[i] = NewStream(SceneConfig{},
			EncoderConfig{StreamID: i, GOPSize: gop, GOPPhase: i * 7}, int64(i))
	}
	maxPerRound := 0
	for r := 0; r < gop; r++ {
		iFrames := 0
		for _, st := range streams {
			if st.Next().Type == PictureI {
				iFrames++
			}
		}
		if iFrames > maxPerRound {
			maxPerRound = iFrames
		}
	}
	if maxPerRound > 3 {
		t.Errorf("keyframe burst of %d in one round; phases should spread them", maxPerRound)
	}
}
