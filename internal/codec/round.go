package codec

import (
	"fmt"
	"sort"
)

// Round is the sparse per-round packet set: only the streams that actually
// produced a packet this round appear, as a strictly-ascending id list with
// a parallel packet slice. It is the O(active) replacement for the dense
// `[]*Packet` round array (nil-padded to fleet width) that every producer
// used to allocate and every consumer used to walk: a 1%-active fleet now
// touches 1% of the entries end-to-end.
//
// Invariants (checked by Validate):
//   - IDs is strictly ascending, every id in [0, M)
//   - len(IDs) == len(Pkts) and no Pkts entry is nil
//
// A Round is a reusable scratch value: Reset + Append refill it without
// allocating once the slices have grown to steady-state capacity.
type Round struct {
	// M is the fleet width the round was drawn from — the length the dense
	// representation of this round would have.
	M int
	// IDs holds the active stream ids, strictly ascending.
	IDs []int32
	// Pkts holds the packets, parallel to IDs; Pkts[k] is stream IDs[k]'s
	// packet and is never nil.
	Pkts []*Packet
}

// Reset clears the round for reuse at fleet width m, keeping capacity.
func (r *Round) Reset(m int) {
	r.M = m
	r.IDs = r.IDs[:0]
	// Drop packet refs so a pooled Round does not pin the previous round's
	// payloads alive.
	for i := range r.Pkts {
		r.Pkts[i] = nil
	}
	r.Pkts = r.Pkts[:0]
}

// Len returns the number of active streams in the round.
func (r *Round) Len() int { return len(r.IDs) }

// Append adds one (id, packet) entry. Ids must be appended in strictly
// ascending order; Validate catches violations.
func (r *Round) Append(id int32, p *Packet) {
	r.IDs = append(r.IDs, id)
	r.Pkts = append(r.Pkts, p)
}

// Find returns the position of id in IDs, or -1 when the stream is idle
// this round.
func (r *Round) Find(id int32) int {
	k := sort.Search(len(r.IDs), func(i int) bool { return r.IDs[i] >= id })
	if k < len(r.IDs) && r.IDs[k] == id {
		return k
	}
	return -1
}

// Get returns stream id's packet, or nil when the stream is idle this round.
func (r *Round) Get(id int32) *Packet {
	if k := r.Find(id); k >= 0 {
		return r.Pkts[k]
	}
	return nil
}

// Validate checks the Round invariants.
func (r *Round) Validate() error {
	if len(r.IDs) != len(r.Pkts) {
		return fmt.Errorf("codec: round ids/pkts length mismatch: %d vs %d", len(r.IDs), len(r.Pkts))
	}
	prev := int32(-1)
	for k, id := range r.IDs {
		if id < 0 || int(id) >= r.M {
			return fmt.Errorf("codec: round stream id %d out of range [0,%d)", id, r.M)
		}
		if id <= prev {
			return fmt.Errorf("codec: round stream ids not strictly ascending at %d (%d after %d)", k, id, prev)
		}
		if r.Pkts[k] == nil {
			return fmt.Errorf("codec: round stream %d has nil packet", id)
		}
		prev = id
	}
	return nil
}

// FromDense refills the round from a dense nil-padded packet array. This is
// the adapter for producers that have not gone sparse; it is O(m) by nature.
func (r *Round) FromDense(pkts []*Packet) {
	r.Reset(len(pkts))
	for i, p := range pkts {
		if p != nil {
			r.Append(int32(i), p)
		}
	}
}

// Scatter writes the round's packets into a dense array of width M (dst[id]
// = packet). dst must have length r.M. Use ClearScatter afterwards to undo
// in O(active).
func (r *Round) Scatter(dst []*Packet) {
	for k, id := range r.IDs {
		dst[id] = r.Pkts[k]
	}
}

// ClearScatter nils out exactly the entries Scatter wrote.
func (r *Round) ClearScatter(dst []*Packet) {
	for _, id := range r.IDs {
		dst[id] = nil
	}
}
