package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Profile captures the size characteristics of one codec at a reference
// bitrate. Values are bytes per packet for a 1080p25 stream at the reference
// bitrate of 4 Mbps; actual sizes scale with the configured bitrate.
type Profile struct {
	// BaseI is the mean I-frame packet size at richness 0.5.
	BaseI float64
	// BaseP is the mean P-frame packet size at motion 0.5.
	BaseP float64
	// BRatio scales B-frame sizes relative to P-frames.
	BRatio float64
	// Sigma is the lognormal size-noise scale.
	Sigma float64
}

// profiles holds the per-codec size profiles. H.265 and VP9 compress better
// than H.264; JPEG2000 is intra-only with larger, flatter sizes (Fig 14a).
var profiles = map[Codec]Profile{
	H264:     {BaseI: 90_000, BaseP: 14_000, BRatio: 0.6, Sigma: 0.22},
	H265:     {BaseI: 55_000, BaseP: 8_500, BRatio: 0.6, Sigma: 0.20},
	VP9:      {BaseI: 65_000, BaseP: 10_000, BRatio: 0.6, Sigma: 0.21},
	JPEG2000: {BaseI: 130_000, BaseP: 130_000, BRatio: 1.0, Sigma: 0.12},
}

// CodecProfile returns the size profile for a codec.
func CodecProfile(c Codec) Profile { return profiles[c] }

// ReferenceBitrate is the bitrate (bits/s) the profiles are calibrated at.
const ReferenceBitrate = 4_000_000

// EncoderConfig parameterizes a synthetic encoder.
type EncoderConfig struct {
	// StreamID is stamped on every emitted packet.
	StreamID int
	// Codec selects the size profile and GOP behaviour. Default H264.
	Codec Codec
	// FPS is the frame rate. Default 25.
	FPS int
	// GOPSize is the number of frames per GOP. Default 25. Intra-only
	// codecs ignore it (every frame starts a GOP of size 1).
	GOPSize int
	// BFrames is the number of B-frames between consecutive references.
	// Default 0. Ignored by intra-only codecs.
	BFrames int
	// GOPPhase shifts the GOP grid: the stream starts GOPPhase frames into
	// its first GOP (mod GOPSize). Real camera fleets have unaligned GOPs;
	// leaving every stream at phase 0 creates synchronized I-frame bursts
	// that no real deployment sees. Default 0.
	GOPPhase int
	// Bitrate is the target bitrate in bits/s. Packet sizes scale linearly
	// with it. Default ReferenceBitrate. At extreme-low bitrates the
	// content signal in packet sizes collapses into the noise floor
	// (§6.4 extreme case 1).
	Bitrate int
	// MinPacket is the floor packet size in bytes (container/NAL overhead
	// plus the codec's minimum syntax). Default 600. At extreme-low
	// bitrates most packets collapse to this floor, erasing the content
	// signal from packet sizes (§6.4 extreme case 1).
	MinPacket int
	// PayloadData controls whether packets carry their full-size payload
	// bytes. When false, packets carry only the encoded scene header
	// (Size still reports the modeled size); this keeps large-scale
	// simulations memory-light. Default false.
	PayloadData bool
}

func (c *EncoderConfig) defaults() {
	if c.FPS == 0 {
		c.FPS = 25
	}
	if c.GOPSize == 0 {
		c.GOPSize = 25
	}
	if c.Bitrate == 0 {
		c.Bitrate = ReferenceBitrate
	}
	if c.MinPacket == 0 {
		c.MinPacket = 600
	}
	if c.Codec.IntraOnly() {
		c.GOPSize = 1
		c.BFrames = 0
	}
	if c.GOPPhase < 0 {
		c.GOPPhase = 0
	}
	c.GOPPhase %= c.GOPSize
}

// Encoder turns a sequence of Scenes into video Packets. It models the two
// couplings the contextual predictor learns (§5.2): I-frame size reflects
// frame richness, P/B-frame size reflects change against the reference.
type Encoder struct {
	cfg EncoderConfig
	rng *rand.Rand

	seq       int64
	gopIndex  int
	prevScene Scene
	hasPrev   bool
}

// NewEncoder creates an encoder with the given config and noise seed.
func NewEncoder(cfg EncoderConfig, seed int64) *Encoder {
	cfg.defaults()
	return &Encoder{cfg: cfg, rng: rand.New(rand.NewSource(seed)), gopIndex: cfg.GOPPhase}
}

// Config returns the encoder's effective configuration.
func (e *Encoder) Config() EncoderConfig { return e.cfg }

// pictureType returns the picture type for the current GOP index.
func (e *Encoder) pictureType() PictureType {
	if e.gopIndex == 0 {
		return PictureI
	}
	if e.cfg.BFrames > 0 {
		// Pattern after I: B..B P B..B P ... (BFrames B's between refs).
		if (e.gopIndex-1)%(e.cfg.BFrames+1) < e.cfg.BFrames {
			return PictureB
		}
	}
	return PictureP
}

// sizeFor models the encoded size of a frame.
func (e *Encoder) sizeFor(t PictureType, s Scene) int {
	p := profiles[e.cfg.Codec]
	scale := float64(e.cfg.Bitrate) / ReferenceBitrate
	var mean float64
	switch t {
	case PictureI:
		// Richness plus a little ambient texture from activity.
		mean = p.BaseI * (0.35 + 1.1*s.Richness + 0.25*s.Activity)
	case PictureP:
		mean = p.BaseP * (0.15 + 2.2*s.Motion)
	case PictureB:
		mean = p.BaseP * p.BRatio * (0.15 + 2.2*s.Motion)
	}
	mean *= scale
	// Lognormal multiplicative noise.
	noise := math.Exp(e.rng.NormFloat64() * p.Sigma)
	size := mean * noise
	// The floor is NOT scaled by bitrate: at extreme-low bitrates every
	// packet collapses to near the floor and the content signal vanishes.
	if size < float64(e.cfg.MinPacket) {
		size = float64(e.cfg.MinPacket) * math.Exp(e.rng.NormFloat64()*0.08)
	}
	return int(size)
}

// Encode consumes one scene and emits its packet.
func (e *Encoder) Encode(s Scene) *Packet {
	t := e.pictureType()
	size := e.sizeFor(t, s)
	pkt := &Packet{
		StreamID: e.cfg.StreamID,
		Seq:      e.seq,
		PTS:      e.seq * 1000 / int64(e.cfg.FPS),
		Type:     t,
		Codec:    e.cfg.Codec,
		Size:     size,
		GOPIndex: e.gopIndex,
		GOPSize:  e.cfg.GOPSize,
	}
	pkt.Payload = encodePayload(s, size, e.cfg.PayloadData)

	e.seq++
	e.gopIndex++
	if e.gopIndex >= e.cfg.GOPSize {
		e.gopIndex = 0
	}
	e.prevScene, e.hasPrev = s, true
	return pkt
}

// payloadHeaderSize is the fixed size of the encoded scene header inside a
// packet payload.
const payloadHeaderSize = 2 + 8 + 8 + 8 + 4 + 1 + 8

// payload flag bits.
const (
	flagAnomaly = 1 << iota
	flagFire
	flagQualityDrop
)

var payloadMagic = [2]byte{'S', 'C'}

// encodePayload serializes the scene into the packet payload. When full is
// true the payload is padded with deterministic filler bytes up to size so
// the bitstream writer emits realistically sized packets.
func encodePayload(s Scene, size int, full bool) []byte {
	n := payloadHeaderSize
	if full && size > n {
		n = size
	}
	buf := make([]byte, n)
	copy(buf[0:2], payloadMagic[:])
	binary.BigEndian.PutUint64(buf[2:], uint64(s.Frame))
	binary.BigEndian.PutUint64(buf[10:], math.Float64bits(s.Richness))
	binary.BigEndian.PutUint64(buf[18:], math.Float64bits(s.Motion))
	binary.BigEndian.PutUint32(buf[26:], uint32(s.PersonCount))
	var flags byte
	if s.Anomaly {
		flags |= flagAnomaly
	}
	if s.Fire {
		flags |= flagFire
	}
	if s.QualityDrop {
		flags |= flagQualityDrop
	}
	buf[30] = flags
	binary.BigEndian.PutUint64(buf[31:], math.Float64bits(s.Activity))
	if full {
		fillPadding(buf[payloadHeaderSize:], s.Frame)
	}
	return buf
}

// fillPadding writes pseudorandom (but deterministic) filler that never
// contains a zero byte, so payloads cannot alias bitstream start codes.
func fillPadding(p []byte, seed int64) {
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := range p {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x%255) + 1
	}
}

// DecodePayload recovers the scene from a packet payload. It is used by
// internal/decode only; gating code must never call it.
func DecodePayload(payload []byte) (Scene, error) {
	if len(payload) < payloadHeaderSize {
		return Scene{}, fmt.Errorf("codec: payload too short: %d bytes", len(payload))
	}
	if payload[0] != payloadMagic[0] || payload[1] != payloadMagic[1] {
		return Scene{}, fmt.Errorf("codec: bad payload magic %q", payload[0:2])
	}
	s := Scene{
		Frame:       int64(binary.BigEndian.Uint64(payload[2:])),
		Richness:    math.Float64frombits(binary.BigEndian.Uint64(payload[10:])),
		Motion:      math.Float64frombits(binary.BigEndian.Uint64(payload[18:])),
		PersonCount: int(binary.BigEndian.Uint32(payload[26:])),
	}
	flags := payload[30]
	s.Anomaly = flags&flagAnomaly != 0
	s.Fire = flags&flagFire != 0
	s.QualityDrop = flags&flagQualityDrop != 0
	s.Activity = math.Float64frombits(binary.BigEndian.Uint64(payload[31:]))
	return s, nil
}

// Stream couples a scene model with an encoder: a complete synthetic camera.
type Stream struct {
	Model   *SceneModel
	Encoder *Encoder
	// LastScene is the most recent ground-truth scene (for oracles and
	// metrics; the gate must not read it).
	LastScene Scene
}

// NewStream builds a camera from scene and encoder configs sharing a seed
// namespace.
func NewStream(sc SceneConfig, ec EncoderConfig, seed int64) *Stream {
	return &Stream{
		Model:   NewSceneModel(sc, seed),
		Encoder: NewEncoder(ec, seed+1_000_003),
	}
}

// Next produces the next packet of the stream.
func (s *Stream) Next() *Packet {
	sc := s.Model.Next()
	s.LastScene = sc
	return s.Encoder.Encode(sc)
}
