package codec

import "testing"

func TestRoundValidate(t *testing.T) {
	p := &Packet{}
	valid := &Round{M: 8, IDs: []int32{0, 3, 7}, Pkts: []*Packet{p, p, p}}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid round rejected: %v", err)
	}
	cases := map[string]*Round{
		"length mismatch": {M: 8, IDs: []int32{0, 1}, Pkts: []*Packet{p}},
		"out of range":    {M: 8, IDs: []int32{8}, Pkts: []*Packet{p}},
		"negative":        {M: 8, IDs: []int32{-1}, Pkts: []*Packet{p}},
		"duplicate":       {M: 8, IDs: []int32{2, 2}, Pkts: []*Packet{p, p}},
		"descending":      {M: 8, IDs: []int32{3, 1}, Pkts: []*Packet{p, p}},
		"nil packet":      {M: 8, IDs: []int32{4}, Pkts: []*Packet{nil}},
	}
	for name, r := range cases {
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid round", name)
		}
	}
}

func TestRoundScatterRoundTrip(t *testing.T) {
	dense := make([]*Packet, 10)
	for _, i := range []int{1, 4, 9} {
		dense[i] = &Packet{StreamID: i}
	}
	var r Round
	r.FromDense(dense)
	if r.Len() != 3 || r.M != 10 {
		t.Fatalf("FromDense: len %d m %d", r.Len(), r.M)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("FromDense produced invalid round: %v", err)
	}
	scatter := make([]*Packet, 10)
	r.Scatter(scatter)
	for i := range dense {
		if scatter[i] != dense[i] {
			t.Fatalf("scatter[%d] mismatch", i)
		}
	}
	r.ClearScatter(scatter)
	for i, p := range scatter {
		if p != nil {
			t.Fatalf("ClearScatter left entry %d", i)
		}
	}
	if got := r.Get(4); got == nil || got.StreamID != 4 {
		t.Fatalf("Get(4) = %v", got)
	}
	if r.Get(5) != nil || r.Find(0) != -1 {
		t.Fatalf("idle lookups should miss")
	}
	r.Reset(6)
	if r.Len() != 0 || r.M != 6 {
		t.Fatalf("Reset: len %d m %d", r.Len(), r.M)
	}
}
