package codec

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEmulationEscapeRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		escaped := EscapeEmulation(nil, data)
		back := UnescapeEmulation(nil, escaped)
		return bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapePreventsStartCodes(t *testing.T) {
	nasty := [][]byte{
		{0, 0, 0, 1},
		{0, 0, 1},
		{0, 0, 0, 0, 0, 1, 0, 0, 2, 0, 0, 3},
		bytes.Repeat([]byte{0}, 64),
	}
	for _, data := range nasty {
		escaped := EscapeEmulation(nil, data)
		if bytes.Contains(escaped, []byte{0, 0, 0}) ||
			bytes.Contains(escaped, []byte{0, 0, 1}) ||
			bytes.Contains(escaped, []byte{0, 0, 2}) {
			t.Errorf("escaped %v still contains a start-code prefix: %v", data, escaped)
		}
		if back := UnescapeEmulation(nil, escaped); !bytes.Equal(back, data) {
			t.Errorf("round trip of %v = %v", data, back)
		}
	}
}

func TestEscapeLeavesCleanDataAlone(t *testing.T) {
	data := []byte{1, 2, 3, 0, 5, 0, 6, 255}
	if got := EscapeEmulation(nil, data); !bytes.Equal(got, data) {
		t.Errorf("clean data was modified: %v", got)
	}
}

func TestUnitHeaderRoundTrip(t *testing.T) {
	p := &Packet{Codec: VP9, Type: PictureB, Seq: 70000, GOPIndex: 300, GOPSize: 301}
	var buf bytes.Buffer
	bw := NewBitstreamWriter(&buf)
	p.Size = 256
	if err := bw.WritePacket(p); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if !bytes.HasPrefix(raw, StartCode) {
		t.Fatal("stream must begin with a start code")
	}
	body := UnescapeEmulation(nil, raw[len(StartCode):])
	c, typ, seq, gi, gs, err := DecodeUnitHeader(body)
	if err != nil {
		t.Fatal(err)
	}
	if c != VP9 || typ != PictureB || seq != 70000 || gi != 300 || gs != 301 {
		t.Errorf("header round trip: codec=%v type=%v seq=%d gop=%d/%d", c, typ, seq, gi, gs)
	}
	if got := len(body) - UnitHeaderSize; got != p.Size {
		t.Errorf("body payload = %d bytes, want padded to Size=%d", got, p.Size)
	}
}

func TestDecodeUnitHeaderErrors(t *testing.T) {
	if _, _, _, _, _, err := DecodeUnitHeader([]byte{1, 2}); err == nil {
		t.Error("short header must error")
	}
	bad := make([]byte, UnitHeaderSize)
	bad[0] = 0x0f // picture type 15
	if _, _, _, _, _, err := DecodeUnitHeader(bad); err == nil {
		t.Error("invalid picture type must error")
	}
}

func TestWritePacketPadsToModeledSize(t *testing.T) {
	// Encoders with PayloadData=false carry only the scene header; the
	// writer must pad the on-wire body to the modeled Size.
	e := NewEncoder(EncoderConfig{GOPSize: 5}, 3)
	p := e.Encode(Scene{Richness: 0.6, Motion: 0.4})
	if len(p.Payload) >= p.Size {
		t.Skip("payload unexpectedly full-size")
	}
	var buf bytes.Buffer
	if err := NewBitstreamWriter(&buf).WritePacket(p); err != nil {
		t.Fatal(err)
	}
	body := UnescapeEmulation(nil, buf.Bytes()[len(StartCode):])
	if got := len(body) - UnitHeaderSize; got != p.Size {
		t.Errorf("on-wire size %d != modeled size %d", got, p.Size)
	}
	// The padded payload must still decode to the original scene.
	s, err := DecodePayload(body[UnitHeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	orig, err := DecodePayload(p.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if s != orig {
		t.Errorf("scene corrupted by padding: %+v vs %+v", s, orig)
	}
}
