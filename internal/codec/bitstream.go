package codec

import (
	"fmt"
	"io"
)

// The bitstream format mirrors H.264 Annex-B: each packet is an access unit
// introduced by a 4-byte start code, followed by a 9-byte unit header and the
// escaped payload. Three-byte emulation-prevention (0x00 0x00 0x03) keeps
// payload bytes from aliasing start codes, exactly as real codecs do.

// StartCode is the 4-byte access-unit delimiter.
var StartCode = []byte{0x00, 0x00, 0x00, 0x01}

// UnitHeaderSize is the size of the unit header that follows a start code
// (before escaping): codec/type byte, 4-byte seq, 2-byte GOP index,
// 2-byte GOP size.
const UnitHeaderSize = 9

// EscapeEmulation returns data with emulation-prevention bytes inserted:
// any 0x00 0x00 followed by a byte <= 0x03 gets a 0x03 inserted before that
// byte. dst may be nil; the escaped bytes are appended to it.
func EscapeEmulation(dst, data []byte) []byte {
	zeros := 0
	for _, b := range data {
		if zeros >= 2 && b <= 0x03 {
			dst = append(dst, 0x03)
			zeros = 0
		}
		dst = append(dst, b)
		if b == 0x00 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return dst
}

// UnescapeEmulation removes emulation-prevention bytes inserted by
// EscapeEmulation. dst may be nil; the unescaped bytes are appended to it.
func UnescapeEmulation(dst, data []byte) []byte {
	zeros := 0
	for i := 0; i < len(data); i++ {
		b := data[i]
		if zeros >= 2 && b == 0x03 && i+1 < len(data) && data[i+1] <= 0x03 {
			zeros = 0
			continue // drop the emulation-prevention byte
		}
		dst = append(dst, b)
		if b == 0x00 {
			zeros++
		} else {
			zeros = 0
		}
	}
	return dst
}

// BitstreamWriter serializes packets of a single elementary stream to an
// io.Writer in the Annex-B-like format.
type BitstreamWriter struct {
	w   io.Writer
	buf []byte
}

// NewBitstreamWriter wraps w.
func NewBitstreamWriter(w io.Writer) *BitstreamWriter {
	return &BitstreamWriter{w: w}
}

// WritePacket emits one packet. If the packet carries fewer payload bytes
// than its modeled Size (PayloadData=false encoders), the writer pads it to
// Size with deterministic filler so on-wire sizes match the model.
func (bw *BitstreamWriter) WritePacket(p *Packet) error {
	body := p.Payload
	if len(body) < p.Size {
		padded := make([]byte, p.Size)
		copy(padded, body)
		fillPadding(padded[len(body):], p.Seq)
		body = padded
	}

	bw.buf = bw.buf[:0]
	bw.buf = append(bw.buf, StartCode...)

	var hdr [UnitHeaderSize]byte
	hdr[0] = byte(p.Codec)<<4 | byte(p.Type)
	hdr[1] = byte(p.Seq >> 24)
	hdr[2] = byte(p.Seq >> 16)
	hdr[3] = byte(p.Seq >> 8)
	hdr[4] = byte(p.Seq)
	hdr[5] = byte(p.GOPIndex >> 8)
	hdr[6] = byte(p.GOPIndex)
	hdr[7] = byte(p.GOPSize >> 8)
	hdr[8] = byte(p.GOPSize)

	bw.buf = EscapeEmulation(bw.buf, hdr[:])
	bw.buf = EscapeEmulation(bw.buf, body)

	_, err := bw.w.Write(bw.buf)
	return err
}

// DecodeUnitHeader parses an unescaped unit header.
func DecodeUnitHeader(hdr []byte) (c Codec, t PictureType, seq int64, gopIndex, gopSize int, err error) {
	if len(hdr) < UnitHeaderSize {
		return 0, 0, 0, 0, 0, fmt.Errorf("codec: unit header too short: %d bytes", len(hdr))
	}
	c = Codec(hdr[0] >> 4)
	t = PictureType(hdr[0] & 0x0f)
	if t > PictureB {
		return 0, 0, 0, 0, 0, fmt.Errorf("codec: invalid picture type %d", t)
	}
	seq = int64(hdr[1])<<24 | int64(hdr[2])<<16 | int64(hdr[3])<<8 | int64(hdr[4])
	gopIndex = int(hdr[5])<<8 | int(hdr[6])
	gopSize = int(hdr[7])<<8 | int(hdr[8])
	return c, t, seq, gopIndex, gopSize, nil
}
