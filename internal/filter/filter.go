// Package filter models the frame-filtering baselines the paper compares
// against: Reducto-style on-camera filtering on low-level frame-difference
// features, and InFi-style learned on-server filtering on decoded frames.
// Both operate on (decoded or camera-local) frame content — unlike packet
// gating they cannot run before the decoder on the server.
package filter

import (
	"fmt"
	"math/rand"

	"packetgame/internal/codec"
	"packetgame/internal/nn"
)

// FrameFilter decides whether a frame proceeds to inference.
type FrameFilter interface {
	// Name identifies the filter in reports.
	Name() string
	// Pass reports whether the frame should be inferred.
	Pass(s codec.Scene) bool
	// Throughput is the standalone filter throughput in FPS (Fig 2a/Tab 4).
	Throughput() float64
}

// Reducto is the on-camera filter: it thresholds a low-level frame
// difference feature (here the scene's motion plus sensor noise, standing in
// for Reducto's pixel/area features) and only ships frames above the
// threshold. It adapts per segment by scaling its threshold toward a target
// pass rate, a cheap stand-in for Reducto's profiling server.
type Reducto struct {
	threshold float64
	rng       *rand.Rand

	// Adaptation state.
	targetPass float64
	passed     int
	seen       int
}

// NewReducto creates a filter with the given initial difference threshold.
// targetPass, if positive, enables per-segment threshold adaptation toward
// that pass rate.
func NewReducto(threshold, targetPass float64, seed int64) *Reducto {
	return &Reducto{threshold: threshold, targetPass: targetPass,
		rng: rand.New(rand.NewSource(seed))}
}

// Name implements FrameFilter.
func (r *Reducto) Name() string { return "Reducto" }

// Throughput implements FrameFilter: ~0.9 ms per frame on the edge (Tab 4).
func (r *Reducto) Throughput() float64 { return 1111 }

// Threshold returns the current adaptive threshold.
func (r *Reducto) Threshold() float64 { return r.threshold }

// adaptEvery is the segment length (frames) between threshold updates.
const adaptEvery = 250

// Pass implements FrameFilter.
func (r *Reducto) Pass(s codec.Scene) bool {
	diff := s.Motion + r.rng.NormFloat64()*0.03
	pass := diff > r.threshold
	if r.targetPass > 0 {
		r.seen++
		if pass {
			r.passed++
		}
		if r.seen >= adaptEvery {
			rate := float64(r.passed) / float64(r.seen)
			// Nudge the threshold toward the target pass rate.
			if rate > r.targetPass {
				r.threshold *= 1.15
			} else if rate < r.targetPass*0.8 {
				r.threshold *= 0.9
			}
			r.passed, r.seen = 0, 0
		}
	}
	return pass
}

// InFi is the learned on-server filter: a small MLP over decoded-frame
// features trained end-to-end on necessity labels, mirroring InFi-Skip's
// learnable input filter.
type InFi struct {
	model     *nn.Sequential
	threshold float64
}

// InFiSample is one training example for the InFi filter.
type InFiSample struct {
	Scene     codec.Scene
	Necessary bool
}

// NewInFi creates an untrained filter with decision threshold 0.5.
func NewInFi(seed int64) *InFi {
	rng := rand.New(rand.NewSource(seed + 41))
	return &InFi{
		threshold: 0.5,
		model: nn.NewSequential("infi",
			nn.NewDense("infi.fc1", len(frameFeatures(codec.Scene{})), 32, rng),
			nn.NewReLU("infi.relu1"),
			nn.NewDense("infi.fc2", 32, 1, rng),
			nn.NewSigmoid("infi.out"),
		),
	}
}

// frameFeatures embeds a decoded frame for the filter. InFi sees pixels;
// our stand-in sees the scene fields a lightweight CNN could extract.
func frameFeatures(s codec.Scene) []float64 {
	count := float64(s.PersonCount)
	if count > 10 {
		count = 10
	}
	return []float64{s.Motion, s.Richness, count / 10, s.Activity}
}

// Name implements FrameFilter.
func (f *InFi) Name() string { return "InFi" }

// Throughput implements FrameFilter: 3569.4 FPS on the edge (Fig 2a).
func (f *InFi) Throughput() float64 { return 3569.4 }

// SetThreshold adjusts the decision threshold (higher = more filtering).
func (f *InFi) SetThreshold(t float64) { f.threshold = t }

// Score returns the filter confidence for a frame.
func (f *InFi) Score(s codec.Scene) float64 {
	feat := frameFeatures(s)
	x := nn.FromSlice(feat, 1, len(feat))
	return f.model.Forward(x).Data[0]
}

// Pass implements FrameFilter.
func (f *InFi) Pass(s codec.Scene) bool { return f.Score(s) >= f.threshold }

// Train fits the filter on labeled frames.
func (f *InFi) Train(samples []InFiSample, epochs int, lr float64, seed int64) error {
	if len(samples) == 0 {
		return fmt.Errorf("filter: no training samples")
	}
	if epochs <= 0 {
		epochs = 30
	}
	if lr <= 0 {
		lr = 0.005
	}
	opt := nn.NewRMSprop(lr)
	rng := rand.New(rand.NewSource(seed + 97))
	idx := rng.Perm(len(samples))
	const batchSize = 256
	dim := len(frameFeatures(codec.Scene{}))
	for epoch := 0; epoch < epochs; epoch++ {
		rng.Shuffle(len(idx), func(a, b int) { idx[a], idx[b] = idx[b], idx[a] })
		for start := 0; start < len(idx); start += batchSize {
			end := start + batchSize
			if end > len(idx) {
				end = len(idx)
			}
			x := nn.NewTensor(end-start, dim)
			y := nn.NewTensor(end-start, 1)
			for bi, si := range idx[start:end] {
				copy(x.Data[bi*dim:(bi+1)*dim], frameFeatures(samples[si].Scene))
				if samples[si].Necessary {
					y.Data[bi] = 1
				}
			}
			pred := f.model.Forward(x)
			_, grad := nn.BCE(pred, y)
			nn.ZeroGrads(f.model.Params())
			f.model.Backward(grad)
			opt.Step(f.model.Params())
		}
	}
	return nil
}
