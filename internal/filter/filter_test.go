package filter

import (
	"testing"

	"packetgame/internal/codec"
)

func TestReductoThresholding(t *testing.T) {
	r := NewReducto(0.5, 0, 1)
	pass, block := 0, 0
	for i := 0; i < 1000; i++ {
		if r.Pass(codec.Scene{Motion: 0.9}) {
			pass++
		}
		if !r.Pass(codec.Scene{Motion: 0.1}) {
			block++
		}
	}
	if pass < 950 {
		t.Errorf("high-motion pass rate %d/1000", pass)
	}
	if block < 950 {
		t.Errorf("low-motion block rate %d/1000", block)
	}
}

func TestReductoAdaptsTowardTargetPassRate(t *testing.T) {
	// Start with a threshold that passes everything; adaptation should
	// raise it until roughly the target pass rate holds.
	r := NewReducto(0.01, 0.3, 2)
	st := codec.NewSceneModel(codec.SceneConfig{BaseActivity: 0.6, PersonRate: 0.5}, 3)
	var passed, seen int
	for i := 0; i < 25_000; i++ {
		s := st.Next()
		if r.Pass(s) {
			passed++
		}
		seen++
	}
	if r.Threshold() <= 0.01 {
		t.Errorf("threshold never adapted: %v", r.Threshold())
	}
	// Late-window pass rate should be near the target.
	passed, seen = 0, 0
	for i := 0; i < 5000; i++ {
		if r.Pass(st.Next()) {
			passed++
		}
		seen++
	}
	rate := float64(passed) / float64(seen)
	if rate > 0.6 {
		t.Errorf("adapted pass rate %.2f still far above target 0.3", rate)
	}
}

func TestReductoName(t *testing.T) {
	r := NewReducto(0.5, 0, 1)
	if r.Name() != "Reducto" || r.Throughput() <= 0 {
		t.Errorf("identity: %s %v", r.Name(), r.Throughput())
	}
}

func TestInFiLearnsNecessity(t *testing.T) {
	// Necessity driven by motion: InFi must learn to pass busy frames.
	model := codec.NewSceneModel(codec.SceneConfig{BaseActivity: 0.7, PersonRate: 0.6}, 4)
	var samples []InFiSample
	for i := 0; i < 6000; i++ {
		s := model.Next()
		samples = append(samples, InFiSample{Scene: s, Necessary: s.Motion > 0.35})
	}
	f := NewInFi(5)
	if err := f.Train(samples, 25, 0.005, 1); err != nil {
		t.Fatal(err)
	}
	correct, total := 0, 0
	eval := codec.NewSceneModel(codec.SceneConfig{BaseActivity: 0.7, PersonRate: 0.6}, 6)
	for i := 0; i < 2000; i++ {
		s := eval.Next()
		if f.Pass(s) == (s.Motion > 0.35) {
			correct++
		}
		total++
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("InFi accuracy %.3f, want ≥0.9", acc)
	}
}

func TestInFiTrainValidation(t *testing.T) {
	f := NewInFi(1)
	if err := f.Train(nil, 10, 0.01, 1); err == nil {
		t.Error("empty training set must error")
	}
}

func TestInFiThreshold(t *testing.T) {
	f := NewInFi(2)
	s := codec.Scene{Motion: 0.5}
	f.SetThreshold(0)
	if !f.Pass(s) {
		t.Error("threshold 0 must pass everything")
	}
	f.SetThreshold(1.1)
	if f.Pass(s) {
		t.Error("threshold >1 must block everything")
	}
	if f.Name() != "InFi" || f.Throughput() != 3569.4 {
		t.Errorf("identity: %s %v", f.Name(), f.Throughput())
	}
	if sc := f.Score(s); sc <= 0 || sc >= 1 {
		t.Errorf("score %v outside (0,1)", sc)
	}
}

func TestFrameFilterInterfaceCompliance(t *testing.T) {
	var filters = []FrameFilter{NewReducto(0.5, 0, 1), NewInFi(1)}
	for _, f := range filters {
		if f.Name() == "" || f.Throughput() <= 0 {
			t.Errorf("bad filter identity: %q %v", f.Name(), f.Throughput())
		}
	}
}
