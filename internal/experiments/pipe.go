package experiments

import (
	"fmt"

	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
	"packetgame/internal/pipeline"
)

// Pipe measures the staged engine against the sequential reference: round
// throughput at increasing in-flight depth under the offloaded-decoder
// latency model (visible on any host) and the CPU-burning model (visible
// with enough cores), confirming decisions stay identical throughout.
func Pipe(o Options) error {
	o = o.withDefaults()
	const workers = 8
	m := o.scaled(64, 16)
	rounds := o.scaled(300, 60)
	// Keep the budget above the I-frame cost at every scale, else nothing
	// is ever affordable once dependency debt accrues.
	budget := 3 + float64(m)/20

	mkFleet := func() []*codec.Stream {
		fleet := make([]*codec.Stream, m)
		for i := range fleet {
			fleet[i] = codec.NewStream(
				codec.SceneConfig{BaseActivity: 0.5, PersonRate: 0.4},
				codec.EncoderConfig{StreamID: i, GOPSize: 25},
				o.Seed+int64(i)*7919)
		}
		return fleet
	}
	run := func(pipelined bool, k int, latency int64) (pipeline.Report, [][]int, *metrics.StageSet, error) {
		g, err := core.NewGate(core.Config{Streams: m, Budget: budget, UseTemporal: true})
		if err != nil {
			return pipeline.Report{}, nil, nil, err
		}
		var decisions [][]int
		stages := &metrics.StageSet{}
		eng, err := pipeline.New(pipeline.Config{
			Source:              pipeline.NewLocalSource(mkFleet(), rounds),
			Gate:                g,
			Task:                infer.PersonCounting{},
			Workers:             workers,
			MaxInFlight:         k,
			Pipelined:           pipelined,
			LatencyNanosPerUnit: latency,
			Stages:              stages,
			OnRound: func(_ int64, sel []int) {
				decisions = append(decisions, sel)
			},
		})
		if err != nil {
			return pipeline.Report{}, nil, nil, err
		}
		rep, err := eng.Run(0)
		return rep, decisions, stages, err
	}
	identical := func(a, b [][]int) bool {
		if len(a) != len(b) {
			return false
		}
		for r := range a {
			if len(a[r]) != len(b[r]) {
				return false
			}
			for i := range a[r] {
				if a[r][i] != b[r][i] {
					return false
				}
			}
		}
		return true
	}

	const latency = int64(500_000) // 0.5ms per decode unit
	o.printf("=== Staged engine: pipelined vs sequential (m=%d, budget=%.1f, workers=%d) ===\n", m, budget, workers)
	o.printf("offloaded-decoder model, %.1fms per decode unit, %d rounds\n\n", float64(latency)/1e6, rounds)
	o.printf("%-22s %12s %12s %10s %10s\n", "engine", "rounds/s", "decodes/s", "gain", "decisions")

	repSeq, selSeq, _, err := run(false, 1, latency)
	if err != nil {
		return err
	}
	seqRPS := float64(repSeq.Rounds) / repSeq.Elapsed.Seconds()
	o.printf("%-22s %12.1f %12.0f %10s %10s\n", "sequential k=1", seqRPS, repSeq.DecodedFPS, "1.00x", "ref")

	for _, k := range []int{1, 2, 4, 8} {
		rep, sel, stages, err := run(true, k, latency)
		if err != nil {
			return err
		}
		rps := float64(rep.Rounds) / rep.Elapsed.Seconds()
		// A deeper lag legitimately changes decisions vs the k=1
		// reference, so compare against a sequential run at the same k.
		refSel := selSeq
		if k > 1 {
			_, refSel, _, err = run(false, k, 0)
			if err != nil {
				return err
			}
		}
		match := "DIFFER"
		if identical(refSel, sel) {
			match = "identical"
		}
		o.printf("%-22s %12.1f %12.0f %9.2fx %10s   (decode depth ≤%d, mean %.2fms)\n",
			fmt.Sprintf("pipelined k=%d", k), rps, rep.DecodedFPS, rps/seqRPS, match,
			stages.Decode.Snapshot().MaxDepth, stages.Decode.Snapshot().MeanNanos()/1e6)
	}
	o.printf("\n(k is the feedback lag: Decide(t) sees redundancy feedback through round t−k.\n")
	o.printf(" Pipelined and sequential engines make identical decisions at equal k;\n")
	o.printf(" wall-clock gains come purely from overlapping gate, decode, and infer stages.)\n")
	return nil
}
