package experiments

import (
	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/dataset"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/knapsack"
)

// roundBudget870 is the per-round decode budget corresponding to the
// paper's 870-FPS software decoder at 25 rounds per second.
const roundBudget870 = paperDecode12CPU / 25

// Fig4 reproduces the cross-stream coordination motivation: (a) necessary
// inference over one day shows two peaks and stays below the 870-FPS decode
// capacity (540.8 FPS max), so perfect gating would fit the budget; (b)
// round-robin degrades quickly with stream count while the optimal
// cross-stream policy scales to thousands of streams.
func Fig4(o Options) error {
	o = o.withDefaults()

	// (a) Diurnal necessary-inference profile, extrapolated to 1108
	// cameras: each hour of the day is sampled with a short window of
	// real-time frames at that hour's activity level.
	o.printf("=== Fig 4a: necessary inference over one day (PC, 1108-camera equivalent) ===\n")
	m := o.scaled(40, 10)
	windowRounds := o.scaled(25*30, 25*6) // frames sampled per hour
	task := infer.PersonCounting{}
	o.printf("%6s %22s   (decode capacity: 870 FPS; paper max: 540.8 FPS)\n",
		"hour", "necessary FPS (1108 cams)")
	peak := 0.0
	for h := 0; h < 24; h++ {
		streams := make([]*codec.Stream, m)
		for i := range streams {
			streams[i] = codec.NewStream(codec.SceneConfig{
				Diurnal: true, StartHour: float64(h),
				BaseActivity: 0.35, PersonRate: 0.3,
			}, codec.EncoderConfig{StreamID: i, Codec: codec.H265, GOPSize: 25, GOPPhase: i * 7},
				o.Seed+int64(h*1000+i)*131)
		}
		prev := make([]infer.Result, m)
		started := make([]bool, m)
		necessary, rounds := 0.0, 0.0
		for t := 0; t < windowRounds; t++ {
			for i, st := range streams {
				st.Next()
				cur := task.ResultOf(st.LastScene)
				if !started[i] || task.Necessary(prev[i], cur) {
					necessary++
				}
				prev[i], started[i] = cur, true
				rounds++
			}
		}
		fps := necessary / rounds * 25 * 1108
		if fps > peak {
			peak = fps
		}
		o.printf("%6d %22.1f\n", h, fps)
	}
	o.printf("peak necessary load: %.1f FPS vs decode capacity %.0f FPS\n", peak, paperDecode12CPU)

	// (b) Round-robin vs optimal accuracy as stream count grows, at the
	// fixed 870-FPS budget.
	o.printf("\n=== Fig 4b: balanced accuracy vs number of streams (budget %.1f units/round) ===\n", roundBudget870)
	o.printf("%8s %12s %12s\n", "streams", "round-robin", "optimal")
	rounds := o.scaled(800, 200)
	for _, mm := range []int{25, 50, 100, 200, 400, 800} {
		mm = o.scaled(mm, mm/8+1)
		rr := runFig4Policy(o, mm, rounds, func(sim *core.Simulation) core.Decider {
			return core.NewBaselineGate(mm, decode.DefaultCosts, &knapsack.RoundRobin{}, nil, roundBudget870)
		})
		opt := runFig4Policy(o, mm, rounds, func(sim *core.Simulation) core.Decider {
			return core.NewBaselineGate(mm, decode.DefaultCosts, &knapsack.Greedy{}, sim.OracleValues, roundBudget870)
		})
		o.printf("%8d %12.3f %12.3f\n", mm, rr, opt)
	}
	o.printf("(paper: optimal sustains ~2000 streams at 90%% accuracy, round-robin ~30)\n")
	return nil
}

// runFig4Policy runs one Fig 4b cell and returns mean accuracy.
func runFig4Policy(o Options, m, rounds int, mk func(*core.Simulation) core.Decider) float64 {
	streams := dataset.Campus1K(dataset.Campus1KConfig{Cameras: m, Seed: o.Seed + 900})
	// Busy non-diurnal cameras keep the workload stationary across cells.
	for i := range streams {
		streams[i] = codec.NewStream(codec.SceneConfig{
			BaseActivity: 0.4, PersonRate: 0.25,
		}, codec.EncoderConfig{StreamID: i, Codec: codec.H265, GOPSize: 25, GOPPhase: i * 7},
			o.Seed+int64(i)*977)
	}
	sim := core.NewSimulation(streams, infer.PersonCounting{}, decode.DefaultCosts)
	sim.SetDecider(mk(sim))
	res, err := sim.Run(rounds, 0)
	if err != nil {
		return -1
	}
	return res.BalancedAccuracy
}
