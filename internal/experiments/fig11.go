package experiments

import (
	"math"

	"packetgame/internal/dataset"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
	"packetgame/internal/predictor"
)

// Fig11 reproduces the multi-task extension study: a contextual predictor
// trained on one domain (PC or AD) degrades when tested on the other, while
// a shared multi-task head (PC+AD) slightly beats both single-task models.
func Fig11(o Options) error {
	o = o.withDefaults()

	// Collect PC+AD labels from the same campus streams.
	mk := func(seed int64, rounds int) ([]predictor.Sample, error) {
		streams := streamsFor(infer.PersonCounting{}, o.scaled(16, 6), seed)
		return dataset.Collect(streams,
			[]infer.Task{infer.PersonCounting{}, infer.AnomalyDetection{}}, 5, rounds)
	}
	trainRaw, err := mk(o.Seed+700, o.scaled(5000, 800))
	if err != nil {
		return err
	}
	testRaw, err := mk(o.Seed+800, o.scaled(2500, 400))
	if err != nil {
		return err
	}
	epochs := o.scaled(35, 10)

	// Single-task models: project out one label.
	single := func(ti int, seed int64) (*predictor.Predictor, error) {
		samples := make([]predictor.Sample, len(trainRaw))
		for i, s := range trainRaw {
			samples[i] = predictor.Sample{F: s.F, Labels: []float64{s.Labels[ti]}}
		}
		return trainPredictor(predictor.DefaultConfig(), dataset.Balance(samples, 0, seed), epochs, seed)
	}
	pcModel, err := single(0, o.Seed+21)
	if err != nil {
		return err
	}
	adModel, err := single(1, o.Seed+22)
	if err != nil {
		return err
	}
	// Multi-task model: the union of a PC-balanced subsample (AD labels
	// masked) and an AD-balanced subsample (PC labels masked), so each
	// head trains on its own balanced distribution while the trunk shares
	// both domains (§5.2 multi-domain training).
	mask := func(samples []predictor.Sample, keep int) []predictor.Sample {
		out := make([]predictor.Sample, len(samples))
		for i, s := range samples {
			labels := make([]float64, len(s.Labels))
			for t := range labels {
				if t == keep {
					labels[t] = s.Labels[t]
				} else {
					labels[t] = math.NaN()
				}
			}
			out[i] = predictor.Sample{F: s.F, Labels: labels}
		}
		return out
	}
	mtTrain := append(mask(dataset.Balance(trainRaw, 0, o.Seed+23), 0),
		mask(dataset.Balance(trainRaw, 1, o.Seed+26), 1)...)
	mtCfg := predictor.DefaultConfig()
	mtCfg.Tasks = 2
	mtModel, err := trainPredictor(mtCfg, mtTrain, epochs, o.Seed+23)
	if err != nil {
		return err
	}

	// Filtering rate at 90% accuracy of each model on each test domain.
	rateOn := func(scores []float64, samples []predictor.Sample, ti int) float64 {
		curve, err := metrics.Curve(scores, dataset.Labels(samples, ti))
		if err != nil {
			return math.NaN()
		}
		r, _ := metrics.FilterRateAt(curve, 0.9)
		return r
	}
	pcTest := dataset.Balance(testRaw, 0, o.Seed+24)
	adTest := dataset.Balance(testRaw, 1, o.Seed+25)

	rows := []struct {
		name       string
		onPC, onAD float64
	}{
		{"train PC", rateOn(pcModel.Scores(pcTest, 0), pcTest, 0), rateOn(pcModel.Scores(adTest, 0), adTest, 1)},
		{"train AD", rateOn(adModel.Scores(pcTest, 0), pcTest, 0), rateOn(adModel.Scores(adTest, 0), adTest, 1)},
		{"train PC+AD", rateOn(mtModel.Scores(pcTest, 0), pcTest, 0), rateOn(mtModel.Scores(adTest, 1), adTest, 1)},
	}

	o.printf("=== Fig 11a: offline filtering rate at 90%% accuracy ===\n")
	o.printf("%-14s %10s %10s\n", "model", "test PC", "test AD")
	for _, r := range rows {
		o.printf("%-14s %10.3f %10.3f\n", r.name, r.onPC, r.onAD)
	}
	o.printf("(paper: cross-domain drops 16.3%% on PC / 6.9%% on AD; PC+AD beats single-task by 2.1%%/1.7%%)\n")

	// Fig 11b: the implied online concurrency at the fixed 870-FPS budget:
	// streams ≈ budget / (avgCost·(1−filter rate)).
	avgCost := (2.9 + 24.0) / 25 // H.265 GOP-25 fleet mean cost
	o.printf("\n=== Fig 11b: implied concurrency at budget %.1f units/round ===\n", roundBudget870)
	o.printf("%-14s %10s %10s\n", "model", "on PC", "on AD")
	conc := func(rate float64) int {
		if rate >= 1 {
			rate = 0.999
		}
		return int(roundBudget870 / (avgCost * (1 - rate)))
	}
	for _, r := range rows {
		o.printf("%-14s %10d %10d\n", r.name, conc(r.onPC), conc(r.onAD))
	}
	return nil
}
