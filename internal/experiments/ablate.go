package experiments

import (
	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/knapsack"
)

// Ablate exercises the design choices DESIGN.md calls out, beyond the
// paper's own Temporal/Contextual ablation (Tab 3): dependency-aware vs
// dependency-blind cost accounting, exploration on vs off, and the fill-pass
// vs prefix greedy optimizer. Each variant runs the same PC workload at the
// same budget; balanced accuracy is the score.
func Ablate(o Options) error {
	o = o.withDefaults()
	m := o.scaled(60, 16)
	rounds := o.scaled(2500, 600)
	budget := float64(m) / 5

	s, err := newOnlineSetup(o, infer.PersonCounting{})
	if err != nil {
		return err
	}

	run := func(mutate func(*core.Config)) (core.Result, error) {
		cfg := core.Config{
			Streams: m, Budget: budget,
			Predictor: s.pg, UseTemporal: true,
		}
		mutate(&cfg)
		gate, err := core.NewGate(cfg)
		if err != nil {
			return core.Result{}, err
		}
		sim := core.NewSimulation(streamsFor(infer.PersonCounting{}, m, o.Seed+550),
			infer.PersonCounting{}, decode.DefaultCosts)
		sim.SetDecider(gate)
		sim.SetProbeEvery(10)
		return sim.Run(rounds, 0)
	}

	off := false
	variants := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"full system", func(c *core.Config) {}},
		{"dependency-blind costs", func(c *core.Config) { c.DependencyAware = &off }},
		{"no exploration bonus", func(c *core.Config) { c.Explore = &off }},
		{"prefix greedy (no fill)", func(c *core.Config) { c.Selector = &knapsack.GreedyPrefix{} }},
		{"round-robin selector", func(c *core.Config) { c.Selector = &knapsack.RoundRobin{} }},
		{"online learning", func(c *core.Config) { c.OnlineLR = 0.001 }},
	}

	o.printf("=== Design-choice ablations (PC, %d streams, budget %.1f) ===\n", m, budget)
	o.printf("%-26s %10s %10s %10s %12s %10s\n", "variant", "bal.acc", "filter", "recall", "true cost", "overrun")
	nominal := budget * float64(rounds)
	for _, v := range variants {
		res, err := run(v.mutate)
		if err != nil {
			return err
		}
		o.printf("%-26s %10.3f %10.3f %10.3f %12.0f %9.0f%%\n",
			v.name, res.BalancedAccuracy, res.FilterRate, res.ProbedRecall,
			res.CostSpent, (res.CostSpent/nominal-1)*100)
	}
	o.printf("(true cost charges skipped reference chains; a variant with positive\n")
	o.printf(" overrun is spending beyond its nominal budget — the dependency-blind\n")
	o.printf(" pricing \"wins\" accuracy only by overdrawing the decoder)\n")
	return nil
}
