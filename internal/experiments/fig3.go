package experiments

import (
	"packetgame/internal/codec"
	"packetgame/internal/dataset"
	"packetgame/internal/infer"
	"packetgame/internal/metrics"
	"packetgame/internal/predictor"
)

// Fig3 reproduces the packet-representation motivation: (a) packet sizes
// carry a temporal, non-linear person signal; (b) the handcrafted residual
// feature discriminates necessity poorly (paper: 6.1% TPR at 10% FPR)
// while PacketGame's learned representation does well (76.6%).
func Fig3(o Options) error {
	o = o.withDefaults()

	// (a) One busy PC clip: packet index, size, person-present.
	o.printf("=== Fig 3a: packet sizes of a person-counting clip ===\n")
	st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.5, PersonRate: 0.3},
		codec.EncoderConfig{GOPSize: 25}, o.Seed+5)
	o.printf("%8s %6s %10s %8s %10s\n", "packet", "type", "size(B)", "person", "residual")
	var res codec.Residual
	clip := o.scaled(450, 100)
	for i := 0; i < clip; i++ {
		p := st.Next()
		r := res.Observe(p)
		person := 0
		if st.LastScene.PersonCount > 0 {
			person = 1
		}
		if i%10 == 0 { // decimate for readable output
			o.printf("%8d %6s %10d %8d %10.3f\n", i, p.Type, p.Size, person, r)
		}
	}

	// (b) Discriminability: residual feature vs trained PacketGame scores
	// on balanced PC necessity labels. The contextual-only ablation is
	// shown too: the temporal view quantizes scores into ties that hurt
	// the strict low-FPR operating point this metric probes.
	o.printf("\n=== Fig 3b: TPR at 10%% FPR (necessity discrimination) ===\n")
	td, err := collectTaskData(infer.PersonCounting{}, o, o.scaled(24, 8), o.scaled(6000, 1200))
	if err != nil {
		return err
	}
	p, err := trainPredictor(predictor.DefaultConfig(), td.train, o.scaled(50, 25), o.Seed)
	if err != nil {
		return err
	}
	ctxCfg := predictor.DefaultConfig()
	ctxCfg.UseTemporal = false
	ctx, err := trainPredictor(ctxCfg, td.train, o.scaled(50, 25), o.Seed+1)
	if err != nil {
		return err
	}
	pgScores := sampleScores(p, td.test)
	ctxScores := sampleScores(ctx, td.test)

	// Residual scores for the same test set: approximate the residual from
	// the P-size view (last P size over last I size), the estimator of
	// paper ref [52].
	resScores := make([]float64, len(td.test))
	for i, s := range td.test {
		iSize := s.F.ISizes[len(s.F.ISizes)-1]
		pSize := s.F.PSizes[len(s.F.PSizes)-1]
		if iSize <= 0 {
			resScores[i] = 1
		} else {
			resScores[i] = pSize / iSize
		}
	}
	labels := dataset.Labels(td.test, 0)
	pgTPR, err := metrics.TPRAtFPR(pgScores, labels, 0.10)
	if err != nil {
		return err
	}
	ctxTPR, err := metrics.TPRAtFPR(ctxScores, labels, 0.10)
	if err != nil {
		return err
	}
	resTPR, err := metrics.TPRAtFPR(resScores, labels, 0.10)
	if err != nil {
		return err
	}
	o.printf("%-22s %10s %10s\n", "method", "TPR@10%FPR", "paper")
	o.printf("%-22s %10.3f %10s\n", "residual feature", resTPR, "0.061")
	o.printf("%-22s %10.3f %10s\n", "Contextual only", ctxTPR, "-")
	o.printf("%-22s %10.3f %10s\n", "PacketGame", pgTPR, "0.766")
	o.printf("(note: on this substrate P-frame sizes are residual-driven by construction,\n")
	o.printf(" so the residual baseline is far stronger than on real video)\n")
	return nil
}
