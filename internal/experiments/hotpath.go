package experiments

import (
	"encoding/json"
	"os"
	"time"

	"packetgame/internal/accel"
	"packetgame/internal/codec"
	"packetgame/internal/core"
	"packetgame/internal/predictor"
)

// Hotpath benchmarks the gating hot loop: full Decide+Feedback rounds on the
// compiled float32 fast path versus the float64 autodiff reference, swept
// over fleet sizes, plus the compiled forward-pass micro leg as a measured
// accelerator. At full scale (-scale 1) it writes the results to
// BENCH_hotpath.json so the speedup-vs-baseline acceptance numbers are
// recorded alongside the repo. (An int8-quantized leg used to be measured
// here too; it held at ~0.28× the float32 kernels and the quantized path
// was removed — see DESIGN.md for the numbers and rationale.)
func Hotpath(o Options) error {
	o = o.withDefaults()
	var report hotpathReport

	o.printf("=== Hot path: Decide+Feedback rounds, fast vs reference gate ===\n")
	o.printf("%-7s %-10s %14s %14s %10s\n", "m", "path", "rounds/s", "ns/round", "speedup")
	for _, m := range []int{o.scaled(64, 8), o.scaled(256, 16), o.scaled(1024, 32)} {
		rounds := 16384 / m
		if rounds < 12 {
			rounds = 12
		}
		refNs, err := timeDecideRounds(m, rounds, true, o.Seed)
		if err != nil {
			return err
		}
		fastNs, err := timeDecideRounds(m, rounds, false, o.Seed)
		if err != nil {
			return err
		}
		for _, leg := range []struct {
			path string
			ns   float64
		}{{"reference", refNs}, {"fast", fastNs}} {
			e := hotpathEntry{
				M:            m,
				Path:         leg.path,
				RoundsPerSec: 1e9 / leg.ns,
				NsPerRound:   leg.ns,
				SpeedupVsRef: refNs / leg.ns,
			}
			report.DecideRounds = append(report.DecideRounds, e)
			o.printf("%-7d %-10s %14.1f %14.0f %9.2fx\n", m, e.Path, e.RoundsPerSec, e.NsPerRound, e.SpeedupVsRef)
		}
	}

	// Forward-pass micro leg as a measured accelerator: the compiled float32
	// graph against the autodiff reference. This plugs into the Table 5
	// throughput model exactly like the paper's constant-factor TensorRT
	// entry, but with the speedup measured on this host rather than assumed.
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		return err
	}
	n := o.scaled(256, 16)
	feats := benchFeatures(p.Config(), n, o.Seed)
	out := make([]float64, n)
	iters := o.scaled(30, 3)
	legs := []struct {
		name       string
		base, fast func()
	}{
		{"compiled-f32-vs-reference",
			func() { p.PredictBatch(feats) },
			func() {
				if err := p.PredictInto(feats, out); err != nil {
					panic(err)
				}
			}},
	}
	o.printf("\n=== Forward micro (batch %d, measured accel.Accelerator speedups) ===\n", n)
	for _, leg := range legs {
		acc, err := accel.Measure(leg.name, iters, leg.base, leg.fast)
		if err != nil {
			return err
		}
		report.ForwardMicro = append(report.ForwardMicro, hotpathForward{Name: acc.Name, Speedup: acc.Speedup})
		o.printf("%-28s %9.2fx\n", acc.Name, acc.Speedup)
	}

	if o.Scale >= 1 {
		report.Meta = benchMeta("hotpath")
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_hotpath.json", append(buf, '\n'), 0o644); err != nil {
			return err
		}
		o.printf("\nwrote BENCH_hotpath.json\n")
	} else {
		o.printf("\n(scale %.2f < 1: BENCH_hotpath.json not written)\n", o.Scale)
	}
	return nil
}

type hotpathEntry struct {
	M            int     `json:"m"`
	Path         string  `json:"path"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
	NsPerRound   float64 `json:"ns_per_round"`
	SpeedupVsRef float64 `json:"speedup_vs_reference"`
}

type hotpathForward struct {
	Name    string  `json:"name"`
	Speedup float64 `json:"speedup"`
}

type hotpathReport struct {
	Meta         BenchMeta        `json:"meta"`
	DecideRounds []hotpathEntry   `json:"decide_rounds"`
	ForwardMicro []hotpathForward `json:"forward_micro"`
}

// timeDecideRounds measures the mean wall-clock nanoseconds of one
// Decide+Feedback round over pregenerated packets (codec off the clock),
// after a short warmup that fills windows, pools, and free lists.
func timeDecideRounds(m, rounds int, noFast bool, seed int64) (float64, error) {
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		return 0, err
	}
	g, err := core.NewGate(core.Config{
		Streams: m, Budget: float64(m) / 25, Predictor: p,
		UseTemporal: true, NoFastPath: noFast,
	})
	if err != nil {
		return 0, err
	}
	const pre = 24
	streams := make([]*codec.Stream, m)
	for i := range streams {
		streams[i] = codec.NewStream(codec.SceneConfig{BaseActivity: 0.4},
			codec.EncoderConfig{StreamID: i, GOPSize: 25}, seed+int64(i)*7919)
	}
	pkts := make([][]*codec.Packet, pre)
	for r := range pkts {
		pkts[r] = make([]*codec.Packet, m)
		for j, st := range streams {
			pkts[r][j] = st.Next()
		}
	}
	necessary := make([]bool, m)
	var sel []int
	oneRound := func(r int) error {
		var err error
		sel, err = g.DecideAppend(pkts[r%pre], sel[:0])
		if err != nil {
			return err
		}
		return g.FeedbackExt(sel, necessary[:len(sel)], nil)
	}
	for r := 0; r < 8; r++ {
		if err := oneRound(r); err != nil {
			return 0, err
		}
	}
	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		if err := oneRound(r); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(rounds), nil
}

// benchFeatures builds a deterministic feature batch for the forward micro.
func benchFeatures(cfg predictor.Config, n int, seed int64) []predictor.Features {
	w := predictor.NewWindow(cfg.Window)
	feats := make([]predictor.Features, n)
	slab := &predictor.Slab{}
	for i := range feats {
		size := 800 + (i*int(seed%97)+i*i)%40000
		typ := codec.PictureP
		if i%25 == 0 {
			typ = codec.PictureI
		}
		w.Push(&codec.Packet{Type: typ, Size: size})
		feats[i] = slab.CloneInto(w.Features(float64(i%10) / 10))
	}
	return feats
}
