package experiments

import (
	"time"

	"packetgame/internal/accel"
	"packetgame/internal/codec"
	"packetgame/internal/decode"
	"packetgame/internal/filter"
	"packetgame/internal/metrics"
)

// Paper-calibrated module throughputs (Fig 2a, 25FPS 1080p streams).
const (
	paperDecode12CPU = 870.0  // software decoder on 12 CPUs
	paperDecode1GPU  = 460.6  // TITAN X hardware decoder
	paperFilterFPS   = 3569.4 // InFi-Skip frame filter
	paperYOLOX       = 27.7
	paperYOLOXTRT    = 753.9
)

// burnNanosPerUnit calibrates the CPU-burning decoder so that 12 workers
// sustain the paper's 870 P-frame-equivalents per second.
var burnNanosPerUnit = func() int64 {
	perUnit := 12e9 / paperDecode12CPU
	return int64(perUnit + 0.5)
}()

// Fig2 reproduces the module throughput benchmark (Fig 2a) and the
// potential-concurrency comparison (Fig 2b): decoding is the end-to-end
// bottleneck.
func Fig2(o Options) error {
	o = o.withDefaults()
	o.printf("=== Fig 2a: independent module throughput (25FPS 1080p) ===\n")

	// Measure the calibrated burn decoder on this machine (single worker,
	// scaled to 12) to show the substrate meets its calibration target.
	st := codec.NewStream(codec.SceneConfig{BaseActivity: 0.5},
		codec.EncoderConfig{GOPSize: 25}, o.Seed)
	bd := decode.NewBurnDecoder(decode.DefaultCosts, burnNanosPerUnit)
	n := o.scaled(96, 24)
	pkts := make([]*codec.Packet, n)
	for i := range pkts {
		pkts[i] = st.Next()
	}
	start := time.Now()
	var cost float64
	for _, p := range pkts {
		if _, err := bd.Decode(p); err != nil {
			return err
		}
		cost += decode.DefaultCosts.Of(p.Type)
	}
	elapsed := time.Since(start).Seconds()
	measured := cost / elapsed * 12 // P-unit FPS across 12 workers

	// InFi filter throughput on this machine.
	ff := filter.NewInFi(o.Seed)
	fn := o.scaled(20000, 2000)
	scene := codec.Scene{Motion: 0.4, Richness: 0.5}
	start = time.Now()
	for i := 0; i < fn; i++ {
		ff.Pass(scene)
	}
	filterFPS := float64(fn) / time.Since(start).Seconds()

	trt, err := accel.TensorRT().Apply(paperYOLOX)
	if err != nil {
		return err
	}
	o.printf("%-22s %14s %14s\n", "module", "paper FPS", "measured FPS")
	o.printf("%-22s %14.1f %14.1f\n", "decode (12 CPUs)", paperDecode12CPU, measured)
	o.printf("%-22s %14.1f %14s\n", "decode (1 GPU)", paperDecode1GPU, "n/a")
	o.printf("%-22s %14.1f %14.0f\n", "frame filter (InFi)", paperFilterFPS, filterFPS)
	o.printf("%-22s %14.1f %14s\n", "inference (YOLOX)", paperYOLOX, "n/a")
	o.printf("%-22s %14.1f %14.1f\n", "inference (YOLOX-TRT)", paperYOLOXTRT, trt)
	o.printf("(the decode row measures the calibrated CPU-burning decoder on this host —\n")
	o.printf(" the gap to 870 is this machine's clock; the filter row measures the InFi\n")
	o.printf(" stand-in MLP, far cheaper than the real CNN, so the concurrency math below\n")
	o.printf(" uses the paper's calibrated throughputs, not these host measurements)\n")

	o.printf("\n=== Fig 2b: potential concurrency per module (25FPS) ===\n")
	// Each module alone, at the load it would see in the deployed system
	// (the filter passes ~1%% of frames to inference).
	rows := []struct {
		name string
		mods []metrics.Module
	}{
		{"decode (12 CPUs)", []metrics.Module{{Name: "decode", Throughput: paperDecode12CPU, Load: 1}}},
		{"decode (1 GPU)", []metrics.Module{{Name: "decode", Throughput: paperDecode1GPU, Load: 1}}},
		{"frame filter", []metrics.Module{{Name: "filter", Throughput: paperFilterFPS, Load: 1}}},
		{"inference (TRT, 99% filtered)", []metrics.Module{{Name: "infer", Throughput: paperYOLOXTRT, Load: 0.01}}},
	}
	o.printf("%-32s %12s\n", "module", "streams")
	for _, r := range rows {
		c, _, err := metrics.Concurrency(25, r.mods)
		if err != nil {
			return err
		}
		o.printf("%-32s %12d\n", r.name, c)
	}
	c, bottleneck, err := metrics.Concurrency(25, []metrics.Module{
		{Name: "decode", Throughput: paperDecode12CPU, Load: 1},
		{Name: "filter", Throughput: paperFilterFPS, Load: 1},
		{Name: "infer", Throughput: paperYOLOXTRT, Load: 0.01},
	})
	if err != nil {
		return err
	}
	o.printf("%-32s %12d (bottleneck: %s; paper: 35, decode)\n", "end-to-end", c, bottleneck)
	return nil
}
