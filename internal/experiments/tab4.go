package experiments

import (
	"time"

	"packetgame/internal/codec"
	"packetgame/internal/filter"
	"packetgame/internal/predictor"
)

// Tab4 reproduces the plug-in overhead table: FLOPs and per-frame latency
// of PacketGame's contextual predictor versus MobileNetV1, the InFi filter,
// and the Reducto filter. The paper's headline: PacketGame needs ~5K FLOPs
// (0.004% of MobileNetV1) and ~7µs per frame on an edge CPU.
func Tab4(o Options) error {
	o = o.withDefaults()
	p, err := predictor.New(predictor.DefaultConfig())
	if err != nil {
		return err
	}
	f := predictor.Features{
		ISizes: make([]float64, 5), PSizes: make([]float64, 5), Temporal: 0.4,
	}
	f.Pict[1] = 1
	// Warm up, then time single-frame predictions.
	for i := 0; i < 100; i++ {
		p.Predict(f)
	}
	n := o.scaled(20000, 2000)
	start := time.Now()
	for i := 0; i < n; i++ {
		p.Predict(f)
	}
	pgLatency := time.Since(start) / time.Duration(n)

	inFi := filter.NewInFi(o.Seed)
	scene := codec.Scene{Motion: 0.4, Richness: 0.5}
	start = time.Now()
	for i := 0; i < n; i++ {
		inFi.Score(scene)
	}
	inFiLatency := time.Since(start) / time.Duration(n)

	reducto := filter.NewReducto(0.4, 0, o.Seed)
	start = time.Now()
	for i := 0; i < n; i++ {
		reducto.Pass(scene)
	}
	reductoLatency := time.Since(start) / time.Duration(n)

	const mobileNetFLOPs = 1_137_000_000 // MobileNetV1, paper Tab 4
	o.printf("=== Tab 4: plug-in overheads per frame ===\n")
	o.printf("%-14s %14s %14s %22s\n", "model", "FLOPs", "latency", "paper (FLOPs, edge)")
	o.printf("%-14s %14d %14s %22s\n", "MobileNetV1", int64(mobileNetFLOPs), "n/a", "1137M, 4ms")
	o.printf("%-14s %14s %14v %22s\n", "InFi (sim)", "~351M real", inFiLatency, "351M, 0.8ms")
	o.printf("%-14s %14s %14v %22s\n", "Reducto (sim)", "n/a", reductoLatency, "n/a, 0.9ms")
	o.printf("%-14s %14d %14v %22s\n", "PacketGame", p.FLOPs(), pgLatency, "5K, 7µs")
	o.printf("PacketGame FLOPs fraction of MobileNetV1: %.5f%% (paper: 0.004%%)\n",
		float64(p.FLOPs())/mobileNetFLOPs*100)
	o.printf("predictor parameters: %d\n", p.NumParams())
	return nil
}
