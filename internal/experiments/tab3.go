package experiments

import (
	"fmt"

	"packetgame/internal/core"
	"packetgame/internal/decode"
	"packetgame/internal/infer"
	"packetgame/internal/predictor"
)

// onlineSetup bundles everything needed to run online gating experiments
// for one task: the fleet factory and the trained (full and ablated)
// predictors.
type onlineSetup struct {
	o    Options
	task infer.Task
	pg   *predictor.Predictor // full (temporal fused)
	ctx  *predictor.Predictor // contextual-only ablation
	// avgCost is the measured mean per-packet decode cost of the fleet.
	avgCost float64
}

// newOnlineSetup trains the predictors for a task on its offline corpus.
func newOnlineSetup(o Options, task infer.Task) (*onlineSetup, error) {
	td, err := collectTaskData(task, o, o.scaled(16, 6), o.scaled(4000, 800))
	if err != nil {
		return nil, err
	}
	epochs := o.scaled(35, 10)
	ctxCfg := predictor.DefaultConfig()
	ctxCfg.UseTemporal = false
	ctx, err := trainPredictor(ctxCfg, td.train, epochs, o.Seed+11)
	if err != nil {
		return nil, err
	}
	pg, err := trainPredictor(predictor.DefaultConfig(), td.train, epochs, o.Seed+12)
	if err != nil {
		return nil, err
	}
	s := &onlineSetup{o: o, task: task, pg: pg, ctx: ctx}

	// Measure the fleet's mean per-packet cost.
	probe := streamsFor(task, 4, o.Seed+13)
	var cost float64
	n := 0
	for _, st := range probe {
		for i := 0; i < 200; i++ {
			cost += decode.DefaultCosts.Of(st.Next().Type)
			n++
		}
	}
	s.avgCost = cost / float64(n)
	return s, nil
}

// gateFor builds the gating policy of the named method over m streams.
func (s *onlineSetup) gateFor(method string, m int, budget float64) (core.Decider, error) {
	switch method {
	case "Temporal":
		return core.NewGate(core.Config{
			Streams: m, Budget: budget, UseTemporal: true,
		})
	case "Contextual":
		return core.NewGate(core.Config{
			Streams: m, Budget: budget, Predictor: s.ctx,
		})
	case "PacketGame":
		return core.NewGate(core.Config{
			Streams: m, Budget: budget, Predictor: s.pg, UseTemporal: true,
		})
	}
	return nil, fmt.Errorf("experiments: unknown method %q", method)
}

// accuracyAt runs one online simulation and returns the mean accuracy.
func (s *onlineSetup) accuracyAt(method string, m int, budget float64, rounds int) (float64, error) {
	streams := streamsFor(s.task, m, s.o.Seed+500)
	sim := core.NewSimulation(streams, s.task, decode.DefaultCosts)
	d, err := s.gateFor(method, m, budget)
	if err != nil {
		return 0, err
	}
	sim.SetDecider(d)
	res, err := sim.Run(rounds, 0)
	if err != nil {
		return 0, err
	}
	return res.BalancedAccuracy, nil
}

// minBudgetFor bisects the smallest per-round budget whose accuracy meets
// the target.
func (s *onlineSetup) minBudgetFor(method string, m int, target float64, rounds int) (float64, error) {
	full := float64(m) * s.avgCost
	lo, hi := 0.0, full
	// Verify the target is reachable at the full budget.
	if acc, err := s.accuracyAt(method, m, full, rounds); err != nil {
		return 0, err
	} else if acc < target {
		return full, nil
	}
	for iter := 0; iter < 7; iter++ {
		mid := (lo + hi) / 2
		acc, err := s.accuracyAt(method, m, mid, rounds)
		if err != nil {
			return 0, err
		}
		if acc >= target {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// maxStreamsFor searches the largest stream count sustaining the target
// accuracy at a fixed budget.
func (s *onlineSetup) maxStreamsFor(method string, budget, target float64, rounds int) (int, error) {
	// Doubling phase.
	lo := 1
	hi := 2
	for {
		acc, err := s.accuracyAt(method, hi, budget, rounds)
		if err != nil {
			return 0, err
		}
		if acc < target || hi >= s.o.scaled(2048, 256) {
			break
		}
		lo = hi
		hi *= 2
	}
	// Bisection phase.
	for hi-lo > 1+(lo/16) {
		mid := (lo + hi) / 2
		acc, err := s.accuracyAt(method, mid, budget, rounds)
		if err != nil {
			return 0, err
		}
		if acc >= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// tab3Methods fixes the report ordering.
var tab3Methods = []string{"Temporal", "Contextual", "PacketGame"}

// paper-reported Tab 3 cells: budget saving / concurrency factor.
var tab3Paper = map[string]map[string]string{
	"PC": {"Temporal": "52.6%/2.3x", "Contextual": "68.1%/2.9x", "PacketGame": "75.2%/3.6x"},
	"AD": {"Temporal": "71.8%/3.6x", "Contextual": "38.9%/1.7x", "PacketGame": "79.3%/4.8x"},
	"SR": {"Temporal": "75.8%/4.1x", "Contextual": "14.4%/1.1x", "PacketGame": "76.2%/4.3x"},
	"FD": {"Temporal": "50.5%/1.9x", "Contextual": "31.0%/1.5x", "PacketGame": "52.0%/2.1x"},
}

// Tab3 reproduces the overall efficiency table: decoding budget saved and
// maximal concurrency at 90% target accuracy, for the temporal-only and
// contextual-only ablations and the full system.
func Tab3(o Options) error {
	o = o.withDefaults()
	m := o.scaled(120, 20)
	rounds := o.scaled(1200, 300)
	budget := roundBudget870 * o.Scale
	if budget < 3 {
		budget = 3
	}
	o.printf("=== Tab 3: budget saving / concurrency at 90%% accuracy ===\n")
	o.printf("(fleet %d streams for budget search; fixed budget %.1f units/round for concurrency)\n", m, budget)
	for _, task := range infer.AllTasks() {
		s, err := newOnlineSetup(o, task)
		if err != nil {
			return err
		}
		full := float64(m) * s.avgCost
		// Original-workload concurrency: decode everything.
		base := int(budget / s.avgCost)
		if base < 1 {
			base = 1
		}
		o.printf("\n--- task %s (decode-all budget %.1f; original concurrency %d) ---\n",
			task.Name(), full, base)
		o.printf("%-12s %14s %14s %18s\n", "method", "budget saving", "concurrency", "paper (save/conc)")
		for _, method := range tab3Methods {
			minB, err := s.minBudgetFor(method, m, 0.9, rounds)
			if err != nil {
				return err
			}
			saving := 1 - minB/full
			maxM, err := s.maxStreamsFor(method, budget, 0.9, rounds)
			if err != nil {
				return err
			}
			o.printf("%-12s %13.1f%% %13.1fx %18s\n",
				method, saving*100, float64(maxM)/float64(base), tab3Paper[task.Name()][method])
		}
	}
	return nil
}
