package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"packetgame/internal/cluster"
	"packetgame/internal/core"
	"packetgame/internal/infer"
	"packetgame/internal/pipeline"
)

// Failover exercises coordinator fail-over end to end. Four legs, one
// scenario: a stable run with a warm standby that must stand down at clean
// completion sets the recall/p99 baseline; a pair of same-seed chaos legs
// kills the primary mid-scatter (the harshest crash point: half the fleet
// holds an unsolved round) with one worker armed for orphan mode, proving
// the takeover deterministic and the accounting crash-proof; and an
// ungoverned boundary-crash leg where every worker re-homes must continue
// the single-gate oracle's decision sequence bit-for-bit — zero rounds to
// re-converge, decision hash carried across the election unbroken. At full
// scale the acceptance bounds hold: chaos recall within 2% of stable, p99
// within the SLO through the takeover storm, and the report is written to
// BENCH_failover.json.
func Failover(o Options) error {
	o = o.withDefaults()
	m := o.scaled(1600, 96)
	const workers = 8
	rounds := o.scaled(300, 60)
	sc := failoverScenario{
		m: m, workers: workers, rounds: rounds,
		budget: 4 + float64(m)/8, window: 4, seed: o.Seed,
		crash: int64(rounds / 3), orphanRounds: 6,
	}

	o.printf("=== Coordinator fail-over: %d streams x %d workers + 1 standby, %d rounds, crash at %d, SLO %v ===\n",
		m, workers, rounds, sc.crash, clusterSLO)

	jdir, err := os.MkdirTemp("", "pgfailover")
	if err != nil {
		return err
	}
	defer os.RemoveAll(jdir)

	stable, err := failoverLegRun(sc, failoverLegOpts{governed: true, orphanID: -1})
	if err != nil {
		return fmt.Errorf("stable leg: %w", err)
	}
	if stable.TookOver {
		return fmt.Errorf("failover: standby took over a cleanly completing primary")
	}
	o.printf("stable (standby stands down): %s\n", stable.line())

	chOpts := failoverLegOpts{
		governed: true, crash: sc.crash, point: cluster.CrashMidScatter,
		orphanID: workers - 1,
		journal:  filepath.Join(jdir, "primary.pgj"), standbyJournal: filepath.Join(jdir, "standby.pgj"),
	}
	chaos1, err := failoverLegRun(sc, chOpts)
	if err != nil {
		return fmt.Errorf("failover leg: %w", err)
	}
	o.printf("failover:       %s takeover %.1fms orphan recall %0.4f\n",
		chaos1.line(), chaos1.TakeoverMs, chaos1.OrphanRecall)
	chaos2, err := failoverLegRun(sc, chOpts)
	if err != nil {
		return fmt.Errorf("failover repeat: %w", err)
	}
	deterministic := chaos1.DecisionHash == chaos2.DecisionHash
	o.printf("failover repeat: hash %s — determinism %v\n", chaos2.DecisionHash, deterministic)
	if !deterministic {
		return fmt.Errorf("failover: same-seed takeover runs diverged (%s vs %s)",
			chaos1.DecisionHash, chaos2.DecisionHash)
	}
	if !chaos1.TookOver {
		return fmt.Errorf("failover: standby never took over the killed primary")
	}
	if chaos1.Deaths != 1 {
		return fmt.Errorf("failover: deaths=%d, want exactly the reconciled orphan", chaos1.Deaths)
	}
	drift := chaos1.Recall - stable.Recall
	o.printf("recall drift vs stable: %+0.4f (bound at full scale: ±0.02)\n", drift)

	// The oracle leg: boundary crash, everyone re-homes, no governor — the
	// merged decision stream must equal the single-gate oracle exactly.
	oracle, oracleHash, err := failoverOracle(sc)
	if err != nil {
		return fmt.Errorf("oracle: %w", err)
	}
	orLeg, err := failoverLegRun(sc, failoverLegOpts{crash: sc.crash, point: cluster.CrashBoundary, orphanID: -1})
	if err != nil {
		return fmt.Errorf("oracle leg: %w", err)
	}
	reconverge := failoverReconverge(oracle, orLeg.sels, sc.crash)
	hashOK := orLeg.DecisionHash == fmt.Sprintf("%016x", oracleHash)
	o.printf("boundary crash vs oracle: rounds-to-reconverge %d, hash match %v (%s)\n",
		reconverge, hashOK, orLeg.DecisionHash)
	if reconverge != 0 || !hashOK {
		return fmt.Errorf("failover: boundary takeover did not continue the oracle (reconverge=%d hash=%s oracle=%016x)",
			reconverge, orLeg.DecisionHash, oracleHash)
	}

	if o.Scale >= 1 {
		if drift < -0.02 || drift > 0.02 {
			return fmt.Errorf("failover: chaos recall %0.4f vs stable %0.4f exceeds the 2%% bound",
				chaos1.Recall, stable.Recall)
		}
		sloNs := float64(clusterSLO.Nanoseconds())
		if float64(stable.P99Ms)*1e6 > sloNs || float64(chaos1.P99Ms)*1e6 > sloNs {
			return fmt.Errorf("failover: p99 breached the %v SLO (stable %.2fms, failover %.2fms)",
				clusterSLO, stable.P99Ms, chaos1.P99Ms)
		}
		rep := failoverReport{
			Meta: benchMeta("failover"),
			M:    m, Workers: workers, Rounds: rounds, Seed: o.Seed,
			SLOMs: float64(clusterSLO) / 1e6, CrashRound: sc.crash,
			OrphanRounds:  sc.orphanRounds,
			DeterminismOK: deterministic, RecallDrift: drift,
			TakeoverMs: chaos1.TakeoverMs, RoundsToReconverge: reconverge,
			OrphanRecall: chaos1.OrphanRecall,
			Stable:       stable.failoverLeg, Failover: chaos1.failoverLeg, Oracle: orLeg.failoverLeg,
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_failover.json", append(buf, '\n'), 0o644); err != nil {
			return err
		}
		o.printf("\nwrote BENCH_failover.json\n")
	} else {
		o.printf("\n(scale %.2f < 1: BENCH_failover.json not written)\n", o.Scale)
	}
	return nil
}

type failoverScenario struct {
	m, workers, rounds int
	budget             float64
	window             int
	seed               int64
	crash              int64
	orphanRounds       int64
}

type failoverLegOpts struct {
	governed       bool
	crash          int64
	point          cluster.CrashPoint
	orphanID       int // -1 (or out of range) disables orphan mode
	journal        string
	standbyJournal string
}

type failoverLeg struct {
	Rounds       int64   `json:"rounds"`
	Deaths       int     `json:"deaths"`
	Decoded      int64   `json:"decoded"`
	Recall       float64 `json:"recall"`
	Accuracy     float64 `json:"accuracy"`
	P99Ms        float64 `json:"p99_ms"`
	SLOMisses    int64   `json:"slo_misses"`
	DecisionHash string  `json:"decision_hash"`
}

func (l failoverLeg) line() string {
	return fmt.Sprintf("recall %0.4f acc %0.4f p99 %0.2fms misses %d decoded %d deaths %d hash %s",
		l.Recall, l.Accuracy, l.P99Ms, l.SLOMisses, l.Decoded, l.Deaths, l.DecisionHash)
}

// failoverLegResult carries the leg plus the fail-over-specific outcomes
// that only exist inside a run: the selection transcript, whether the
// standby was elected, the takeover latency, and the orphan's local recall.
type failoverLegResult struct {
	failoverLeg
	sels         [][]int
	TookOver     bool
	TakeoverMs   float64
	OrphanRecall float64
}

type failoverReport struct {
	Meta               BenchMeta   `json:"meta"`
	M                  int         `json:"m"`
	Workers            int         `json:"workers"`
	Rounds             int         `json:"rounds"`
	Seed               int64       `json:"seed"`
	SLOMs              float64     `json:"slo_ms"`
	CrashRound         int64       `json:"crash_round"`
	OrphanRounds       int64       `json:"orphan_rounds"`
	DeterminismOK      bool        `json:"determinism_ok"`
	RecallDrift        float64     `json:"recall_drift"`
	TakeoverMs         float64     `json:"takeover_ms"`
	RoundsToReconverge int         `json:"rounds_to_reconverge"`
	OrphanRecall       float64     `json:"orphan_recall"`
	Stable             failoverLeg `json:"stable"`
	Failover           failoverLeg `json:"failover"`
	Oracle             failoverLeg `json:"oracle"`
}

// failoverConfig builds one coordinator config for the scenario. Governed
// legs add the SLO and the deterministic virtual latency model the cluster
// benchmark uses; every call gets its own identically-seeded source.
func failoverConfig(sc failoverScenario, governed bool) cluster.CoordConfig {
	cfg := cluster.CoordConfig{
		Streams: sc.m, Window: sc.window, Budget: sc.budget,
		UseTemporal: true,
		Breaker:     &core.BreakerConfig{FailureThreshold: 3, GapThreshold: 50, Cooldown: 6},
		Task:        "pc", Rounds: sc.rounds, MinWorkers: sc.workers,
		Source: pipeline.NewLocalSource(clusterFleet(sc.m, sc.seed), 0),
		Lease:  30 * time.Second, Heartbeat: 100 * time.Millisecond,
	}
	if governed {
		cfg.SLO = clusterSLO
		cfg.LatencyModel = func(worker int, granted, offered float64) time.Duration {
			return time.Duration(granted * float64(40*time.Microsecond))
		}
	}
	return cfg
}

// failoverLegRun drives one primary+standby run over loopback TCP. With a
// crash injected the standby must win the election and finish the job; the
// merged report comes from whichever coordinator completed the run.
func failoverLegRun(sc failoverScenario, lo failoverLegOpts) (failoverLegResult, error) {
	var res failoverLegResult
	var firstPostTakeover atomic.Int64 // wall nanos of the standby's first solved round

	cfg := failoverConfig(sc, lo.governed)
	cfg.CrashAtRound = lo.crash
	cfg.CrashPoint = lo.point
	cfg.JournalPath = lo.journal
	cfg.OnRound = func(round int64, sel []int) {
		res.sels = append(res.sels, append([]int(nil), sel...))
	}

	scfg := failoverConfig(sc, lo.governed)
	scfg.JournalPath = lo.standbyJournal
	scfg.RejoinWait = 30 * time.Second
	scfg.OnRound = func(round int64, sel []int) {
		firstPostTakeover.CompareAndSwap(0, time.Now().UnixNano())
		res.sels = append(res.sels, append([]int(nil), sel...))
	}

	c, err := cluster.NewCoordinator(cfg)
	if err != nil {
		return res, err
	}
	type runResult struct {
		rep cluster.Report
		err error
	}
	primary := make(chan runResult, 1)
	go func() {
		rep, err := c.Run()
		primary <- runResult{rep, err}
	}()
	sb, err := cluster.NewStandby(c.Addr(), "sb0", scfg)
	if err != nil {
		return res, err
	}
	standby := make(chan runResult, 1)
	go func() {
		rep, err := sb.Run()
		standby <- runResult{rep, err}
	}()

	ws := make([]*cluster.Worker, sc.workers)
	for i := range ws {
		o := cluster.WorkerOptions{Name: fmt.Sprintf("w%d", i)}
		if i == lo.orphanID {
			o.Orphan = &cluster.OrphanOptions{
				Source: pipeline.NewLocalSource(clusterFleet(sc.m, sc.seed), 0),
				Rounds: sc.orphanRounds,
			}
		}
		w, err := cluster.Dial(c.Addr(), o)
		if err != nil {
			return res, fmt.Errorf("worker %d dial: %w", i, err)
		}
		ws[i] = w
	}

	var rep cluster.Report
	pres := <-primary
	if lo.crash > 0 {
		if pres.err != cluster.ErrCoordinatorKilled {
			return res, fmt.Errorf("primary ended with %v, want injected kill", pres.err)
		}
		killedAt := time.Now()
		sres := <-standby
		if sres.err != nil {
			return res, fmt.Errorf("standby takeover: %w", sres.err)
		}
		rep = sres.rep
		res.TookOver = sb.TookOver()
		if t := firstPostTakeover.Load(); t > 0 {
			res.TakeoverMs = float64(t-killedAt.UnixNano()) / 1e6
		}
	} else {
		if pres.err != nil {
			return res, pres.err
		}
		rep = pres.rep
		sres := <-standby // clean completion: the goodbye stands the standby down
		if sres.err != nil {
			return res, fmt.Errorf("standby stand-down: %w", sres.err)
		}
		res.TookOver = sb.TookOver()
	}
	for i, w := range ws {
		if err := w.Wait(); err != nil {
			return res, fmt.Errorf("worker %d: %w", i, err)
		}
	}
	if lo.orphanID >= 0 && lo.orphanID < len(ws) {
		or := ws[lo.orphanID].Orphan()
		if !or.Entered || !or.Reconciled {
			return res, fmt.Errorf("orphan worker entered=%v reconciled=%v", or.Entered, or.Reconciled)
		}
		if or.Deltas.PosRounds > 0 {
			res.OrphanRecall = float64(or.Deltas.PosCorrect) / float64(or.Deltas.PosRounds)
		}
	}
	res.failoverLeg = failoverLeg{
		Rounds: rep.Rounds, Deaths: rep.Deaths, Decoded: rep.Decoded,
		Recall: rep.Recall, Accuracy: rep.Accuracy,
		P99Ms: float64(rep.P99.Nanoseconds()) / 1e6, SLOMisses: rep.SLOMisses,
		DecisionHash: fmt.Sprintf("%016x", rep.DecisionHash),
	}
	return res, nil
}

// failoverOracle runs the single giant gate over an identically seeded
// fleet: the decision stream a boundary-crash takeover must continue, and
// the FNV fold of it (the hash the merged cluster report must land on).
func failoverOracle(sc failoverScenario) ([][]int, uint64, error) {
	gate, err := core.NewGate(core.Config{
		Streams: sc.m, Window: sc.window, Budget: sc.budget,
		UseTemporal: true,
		Breaker:     &core.BreakerConfig{FailureThreshold: 3, GapThreshold: 50, Cooldown: 6},
	})
	if err != nil {
		return nil, 0, err
	}
	var sels [][]int
	eng, err := pipeline.New(pipeline.Config{
		Source:      pipeline.NewLocalSource(clusterFleet(sc.m, sc.seed), 0),
		Gate:        gate,
		Task:        infer.PersonCounting{},
		Workers:     2,
		MaxInFlight: 1,
		OnRound: func(round int64, sel []int) {
			sels = append(sels, append([]int(nil), sel...))
		},
	})
	if err != nil {
		return nil, 0, err
	}
	if _, err := eng.Run(sc.rounds); err != nil {
		return nil, 0, err
	}
	hash := cluster.OracleHash(sels)
	return sels, hash, nil
}

// failoverReconverge counts post-crash rounds until the takeover's decision
// stream first matches the oracle's round exactly (0 = the standby continued
// the sequence without a single divergent round).
func failoverReconverge(oracle, sels [][]int, crash int64) int {
	n := 0
	for r := int(crash); r < len(oracle) && r < len(sels); r++ {
		if failoverSelEqual(oracle[r], sels[r]) {
			return n
		}
		n++
	}
	return n
}

func failoverSelEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
